#!/usr/bin/env bash
# Full local gate: the optimized tier-1 suite plus the same suite under
# ASan/UBSan in a separate Debug build tree, then the smoke batch (the
# fuzz oracles and the trace_smoke record+parse+invariant check). The
# robustness suite (budgets, cancellation, fault injection — label
# `robust`, docs/ROBUSTNESS.md) gates explicitly so a label mishap in
# tests/CMakeLists.txt cannot silently drop it, and again under a
# standalone UBSan build where the governor's unsigned accounting is
# most likely to trip. The daemon conformance suite (label `daemon`,
# docs/DAEMON.md) gets the same explicit gate: framing/protocol edge
# cases plus the daemon_smoke end-to-end byte-identity check (which
# now covers the 4-shard router topology), the src/client unit suite
# (test_client), and the in-process router suite (test_router), rerun
# under ASan (threaded dispatcher) and UBSan. The telemetry suite
# (label `metrics`, docs/OBSERVABILITY.md) gates the same way: the
# registry unit tests plus the stats-verb conformance and live
# msctool-stats round trips, rerun under both sanitizers (the metrics
# hot path is lock-free atomics — exactly where a race or overflow
# would hide).
#
#   scripts/check.sh            # everything
#   scripts/check.sh --fast     # optimized tier1 only (no sanitizers)
#
# Exits non-zero on the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc)
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run() { echo "== $*"; "$@"; }

# Stage 1: optimized build, tier-1 suite + robustness gate + smoke.
run cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
run cmake --build build -j "$JOBS"
run ctest --test-dir build -L tier1 -j "$JOBS" --output-on-failure
robust_count=$(ctest --test-dir build -L robust -N 2>/dev/null |
    sed -n 's/^Total Tests: //p')
if [[ -z "$robust_count" || "$robust_count" -lt 3 ]]; then
    echo "error: robust label matches ${robust_count:-0} tests" \
         "(expected >= 3) — check tests/CMakeLists.txt labels" >&2
    exit 1
fi
run ctest --test-dir build -L robust --output-on-failure
daemon_count=$(ctest --test-dir build -L daemon -N 2>/dev/null |
    sed -n 's/^Total Tests: //p')
if [[ -z "$daemon_count" || "$daemon_count" -lt 4 ]]; then
    echo "error: daemon label matches ${daemon_count:-0} tests" \
         "(expected >= 4: protocol, client, router, smoke) —" \
         "check tests/CMakeLists.txt labels" >&2
    exit 1
fi
run ctest --test-dir build -L daemon --output-on-failure
metrics_count=$(ctest --test-dir build -L metrics -N 2>/dev/null |
    sed -n 's/^Total Tests: //p')
if [[ -z "$metrics_count" || "$metrics_count" -lt 2 ]]; then
    echo "error: metrics label matches ${metrics_count:-0} tests" \
         "(expected >= 2) — check tests/CMakeLists.txt labels" >&2
    exit 1
fi
run ctest --test-dir build -L metrics --output-on-failure
run ctest --test-dir build -L smoke --output-on-failure

# Stage 1b: the two-core performance contract (docs/PERFORMANCE.md).
# test_eventcore proves cycle/event byte-identity across programs,
# workloads, the fuzz corpus, and Governor budget trips; the snapshot
# gate proves the event core actually pays for itself (byte-identical
# bench_smoke output AND not slower than the cycle core).
run ctest --test-dir build -L eventcore --output-on-failure
run scripts/bench_snapshot.sh --verify

if [[ "$FAST" == 1 ]]; then
    echo "== fast mode: skipping sanitizer stages"
    exit 0
fi

# Stage 2: Debug + ASan/UBSan, tier-1 suite and the fuzz tests again —
# memory errors in the harness itself should surface here, not in CI.
run cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DMSC_SANITIZE="address;undefined"
run cmake --build build-asan -j "$JOBS"
run ctest --test-dir build-asan -L tier1 -j "$JOBS" --output-on-failure
run ctest --test-dir build-asan -L daemon --output-on-failure
run ctest --test-dir build-asan -L metrics --output-on-failure
run ctest --test-dir build-asan -L smoke --output-on-failure

# Stage 3: standalone UBSan at optimization (catches overflow UB the
# Debug ASan tree masks), robustness + fuzz labels only.
run cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMSC_SANITIZE="undefined"
run cmake --build build-ubsan -j "$JOBS"
run ctest --test-dir build-ubsan -L robust -j "$JOBS" --output-on-failure
run ctest --test-dir build-ubsan -L daemon -j "$JOBS" --output-on-failure
run ctest --test-dir build-ubsan -L metrics -j "$JOBS" --output-on-failure
run ctest --test-dir build-ubsan -L fuzz -j "$JOBS" --output-on-failure

echo "== all checks passed"
