#!/usr/bin/env bash
# Full local gate: the optimized tier-1 suite plus the same suite under
# ASan/UBSan in a separate Debug build tree, then the smoke batch (the
# fuzz oracles and the trace_smoke record+parse+invariant check).
#
#   scripts/check.sh            # everything
#   scripts/check.sh --fast     # optimized tier1 only (no sanitizers)
#
# Exits non-zero on the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc)
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run() { echo "== $*"; "$@"; }

# Stage 1: optimized build, tier-1 suite + fuzz smoke.
run cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
run cmake --build build -j "$JOBS"
run ctest --test-dir build -L tier1 -j "$JOBS" --output-on-failure
run ctest --test-dir build -L smoke --output-on-failure

if [[ "$FAST" == 1 ]]; then
    echo "== fast mode: skipping sanitizer stage"
    exit 0
fi

# Stage 2: Debug + ASan/UBSan, tier-1 suite and the fuzz tests again —
# memory errors in the harness itself should surface here, not in CI.
run cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DMSC_SANITIZE="address;undefined"
run cmake --build build-asan -j "$JOBS"
run ctest --test-dir build-asan -L tier1 -j "$JOBS" --output-on-failure
run ctest --test-dir build-asan -L smoke --output-on-failure

echo "== all checks passed"
