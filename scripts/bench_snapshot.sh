#!/usr/bin/env bash
# Performance snapshot + regression gate for the two simulator cores
# (docs/PERFORMANCE.md describes the methodology and the JSON schema).
#
#   scripts/bench_snapshot.sh [--out FILE] [--jobs N] [--reps N]
#                             [--baseline-bin PATH] [--full]
#       Runs bench_figure5 under both cores, the quiescent
#       micro-benchmark, bench_smoke, and the bench_daemon serving
#       load generator (direct vs routed topology,
#       docs/DAEMON.md#sharding); checks the byte-identity contract
#       along the way; writes a BENCH_*.json snapshot (default
#       BENCH_pr10.json in the repo root).
#
#   scripts/bench_snapshot.sh --verify
#       Fast gate for scripts/check.sh: bench_smoke must produce
#       byte-identical sweep JSON under --core cycle and --core event,
#       and the event core must not be slower than the cycle core
#       (best-of-3, 10% guard band for machine noise).
#
# --baseline-bin names a bench_figure5 binary built from an older
# commit; when given, its wall-clock is recorded under "baseline" so
# the snapshot carries a cross-commit trajectory point (the committed
# BENCH_pr7.json uses the pre-event-core tree; PERFORMANCE.md shows
# how to rebuild one with `git worktree`).
#
# Benchmarks default to MSC_SMALL scale so the snapshot is cheap
# enough to refresh routinely; --full runs the paper-scale inputs.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=BENCH_pr10.json
JOBS=4
REPS=3
BASELINE_BIN=""
VERIFY=0
SMALL=1
while [[ $# -gt 0 ]]; do
    case "$1" in
        --out) OUT="$2"; shift 2 ;;
        --jobs) JOBS="$2"; shift 2 ;;
        --reps) REPS="$2"; shift 2 ;;
        --baseline-bin) BASELINE_BIN="$2"; shift 2 ;;
        --full) SMALL=0; shift ;;
        --verify) VERIFY=1; shift ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
done

export MSC_SMALL=$SMALL

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target \
    bench_figure5 bench_smoke bench_micro bench_daemon >/dev/null

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# wall <cmd...>: prints the wall-clock of one run in ms.
wall() {
    local t0 t1
    t0=$(date +%s%N)
    "$@" >/dev/null
    t1=$(date +%s%N)
    echo $(( (t1 - t0) / 1000000 ))
}

# best_of <n> <var-prefix> <cmd...>: runs the command n times; stores
# the per-run times in <prefix>_runs (comma-separated) and the minimum
# in <prefix>_best. Best-of-N is the committed figure: external load
# only ever adds time, so the minimum is the cleanest estimate.
best_of() {
    local n=$1 prefix=$2
    shift 2
    local best="" runs="" t
    for ((i = 0; i < n; ++i)); do
        t=$(wall "$@")
        runs="$runs${runs:+,}$t"
        [[ -z "$best" || "$t" -lt "$best" ]] && best=$t
    done
    printf -v "${prefix}_runs" '%s' "$runs"
    printf -v "${prefix}_best" '%s' "$best"
}

if [[ "$VERIFY" == 1 ]]; then
    echo "== bench_snapshot --verify: core equivalence + no-slower gate"
    best_of 3 smoke_cycle ./build/bench/bench_smoke --jobs 2 \
        --core cycle --json "$TMP/smoke_cycle.json"
    best_of 3 smoke_event ./build/bench/bench_smoke --jobs 2 \
        --core event --json "$TMP/smoke_event.json"
    if ! cmp -s "$TMP/smoke_cycle.json" "$TMP/smoke_event.json"; then
        echo "FAIL: bench_smoke sweep JSON differs between cores" >&2
        exit 1
    fi
    echo "   cycle best ${smoke_cycle_best}ms (runs ${smoke_cycle_runs})"
    echo "   event best ${smoke_event_best}ms (runs ${smoke_event_runs})"
    if (( smoke_event_best * 10 > smoke_cycle_best * 11 )); then
        echo "FAIL: event core slower than cycle core on bench_smoke" \
             "(${smoke_event_best}ms vs ${smoke_cycle_best}ms," \
             "guard band 10%)" >&2
        exit 1
    fi
    echo "   OK: byte-identical, event not slower"
    exit 0
fi

echo "== bench_figure5 (--jobs $JOBS, $REPS reps per core)"
best_of "$REPS" f5_cycle ./build/bench/bench_figure5 --jobs "$JOBS" \
    --core cycle --json "$TMP/f5_cycle.json"
best_of "$REPS" f5_event ./build/bench/bench_figure5 --jobs "$JOBS" \
    --core event --json "$TMP/f5_event.json"
if ! cmp -s "$TMP/f5_cycle.json" "$TMP/f5_event.json"; then
    echo "FAIL: bench_figure5 sweep JSON differs between cores" >&2
    exit 1
fi
echo "   cycle best ${f5_cycle_best}ms  event best ${f5_event_best}ms" \
     "(byte-identical output)"

BASE_RUNS=""
BASE_BEST=""
if [[ -n "$BASELINE_BIN" ]]; then
    echo "== baseline bench_figure5 ($BASELINE_BIN)"
    best_of "$REPS" f5_base "$BASELINE_BIN" --jobs "$JOBS" \
        --json "$TMP/f5_base.json"
    BASE_RUNS=$f5_base_runs
    BASE_BEST=$f5_base_best
    echo "   baseline best ${f5_base_best}ms"
fi

echo "== bench_micro quiescent simulation"
./build/bench/bench_micro --benchmark_filter=BM_QuiescentSimulation \
    --benchmark_min_time=0.2 \
    --json "$TMP/micro.json" >/dev/null 2>&1

echo "== bench_smoke"
best_of 3 smoke_cycle ./build/bench/bench_smoke --jobs 2 \
    --core cycle --json "$TMP/smoke_cycle.json"
best_of 3 smoke_event ./build/bench/bench_smoke --jobs 2 \
    --core event --json "$TMP/smoke_event.json"
cmp -s "$TMP/smoke_cycle.json" "$TMP/smoke_event.json" ||
    { echo "FAIL: bench_smoke JSON differs between cores" >&2; exit 1; }

echo "== bench_daemon serving overhead (direct vs routed)"
./build/bench/bench_daemon --requests 64 --shards 4 --jobs 2 \
    --json "$TMP/daemon.json"

python3 - "$TMP" "$OUT" "$JOBS" "$REPS" "$SMALL" \
    "$f5_cycle_runs" "$f5_cycle_best" "$f5_event_runs" \
    "$f5_event_best" "$BASE_RUNS" "$BASE_BEST" \
    "$smoke_cycle_best" "$smoke_event_best" <<'EOF'
import json, os, platform, subprocess, sys

(tmp, out, jobs, reps, small, fc_runs, fc_best, fe_runs, fe_best,
 base_runs, base_best, smoke_c, smoke_e) = sys.argv[1:]

def ints(csv):
    return [int(x) for x in csv.split(",")] if csv else []

sweep = json.load(open(os.path.join(tmp, "f5_event.json")))
cycles = insts = 0
cache = {k: 0 for k in ("l1i_accesses", "l1i_misses",
                        "l1d_accesses", "l1d_misses")}
for run in sweep["runs"]:
    m = run["metrics"]
    cycles += m["cycles"]
    insts += m["retired_insts"]
    for k in cache:
        cache[k] += m["memory"][k]

micro = json.load(open(os.path.join(tmp, "micro.json")))
quiescent = {}
for b in micro["benchmarks"]:
    core = "event" if b["name"].endswith("/event:1") else "cycle"
    quiescent[core] = {
        "sim_cycles_per_sec": b["items_per_second"],
        "skip_frac": b.get("skip_frac", 0.0),
    }

def cpu_model():
    try:
        for line in open("/proc/cpuinfo"):
            if line.startswith("model name"):
                return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor()

def git(*args):
    return subprocess.check_output(("git",) + args, text=True).strip()

fc, fe = int(fc_best), int(fe_best)
doc = {
    "schema": "msc.bench_snapshot",
    "schema_version": 2,
    "commit": git("rev-parse", "HEAD"),
    "host": {
        "uname": " ".join(platform.uname()),
        "cpu": cpu_model(),
        "nproc": os.cpu_count(),
        "loadavg_at_start": open("/proc/loadavg").read().split()[0],
    },
    "config": {
        "scale": "small" if small == "1" else "full",
        "jobs": int(jobs),
        "reps": int(reps),
        "timing": "best-of-N wall clock, ms",
    },
    "figure5": {
        "cycle_wall_ms": {"runs": ints(fc_runs), "best": fc},
        "event_wall_ms": {"runs": ints(fe_runs), "best": fe},
        "event_speedup_vs_cycle": round(fc / fe, 3),
        "json_byte_identical": True,
        "simulated_cycles": cycles,
        "retired_insts": insts,
        "event_sim_cycles_per_sec": round(cycles * 1000.0 / fe),
        "cache_counters": cache,
    },
    "micro_quiescent": quiescent,
    "smoke": {
        "cycle_wall_ms_best": int(smoke_c),
        "event_wall_ms_best": int(smoke_e),
        "json_byte_identical": True,
    },
    # bench_daemon's own msc.bench_daemon document, verbatim: warm
    # request latency through a direct daemon vs the 4-shard router
    # (docs/DAEMON.md#sharding).
    "daemon": json.load(open(os.path.join(tmp, "daemon.json"))),
}
if base_best:
    doc["baseline"] = {
        "description": "bench_figure5 built from the pre-event-core "
                       "commit (cycle core only); see "
                       "docs/PERFORMANCE.md for the rebuild recipe",
        "wall_ms": {"runs": ints(base_runs), "best": int(base_best)},
        "event_speedup_vs_baseline": round(int(base_best) / fe, 3),
    }

with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}: figure5 cycle {fc}ms / event {fe}ms "
      f"({fc / fe:.2f}x)"
      + (f", baseline {base_best}ms ({int(base_best) / fe:.2f}x)"
         if base_best else ""))
EOF
