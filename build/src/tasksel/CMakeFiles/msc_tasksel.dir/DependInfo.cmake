
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tasksel/grower.cc" "src/tasksel/CMakeFiles/msc_tasksel.dir/grower.cc.o" "gcc" "src/tasksel/CMakeFiles/msc_tasksel.dir/grower.cc.o.d"
  "/root/repo/src/tasksel/pverify.cc" "src/tasksel/CMakeFiles/msc_tasksel.dir/pverify.cc.o" "gcc" "src/tasksel/CMakeFiles/msc_tasksel.dir/pverify.cc.o.d"
  "/root/repo/src/tasksel/regcomm.cc" "src/tasksel/CMakeFiles/msc_tasksel.dir/regcomm.cc.o" "gcc" "src/tasksel/CMakeFiles/msc_tasksel.dir/regcomm.cc.o.d"
  "/root/repo/src/tasksel/selector.cc" "src/tasksel/CMakeFiles/msc_tasksel.dir/selector.cc.o" "gcc" "src/tasksel/CMakeFiles/msc_tasksel.dir/selector.cc.o.d"
  "/root/repo/src/tasksel/transforms.cc" "src/tasksel/CMakeFiles/msc_tasksel.dir/transforms.cc.o" "gcc" "src/tasksel/CMakeFiles/msc_tasksel.dir/transforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/msc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/msc_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/msc_profile.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
