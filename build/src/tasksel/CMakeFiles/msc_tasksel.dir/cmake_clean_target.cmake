file(REMOVE_RECURSE
  "libmsc_tasksel.a"
)
