# Empty dependencies file for msc_tasksel.
# This may be replaced when dependencies are built.
