file(REMOVE_RECURSE
  "CMakeFiles/msc_tasksel.dir/grower.cc.o"
  "CMakeFiles/msc_tasksel.dir/grower.cc.o.d"
  "CMakeFiles/msc_tasksel.dir/pverify.cc.o"
  "CMakeFiles/msc_tasksel.dir/pverify.cc.o.d"
  "CMakeFiles/msc_tasksel.dir/regcomm.cc.o"
  "CMakeFiles/msc_tasksel.dir/regcomm.cc.o.d"
  "CMakeFiles/msc_tasksel.dir/selector.cc.o"
  "CMakeFiles/msc_tasksel.dir/selector.cc.o.d"
  "CMakeFiles/msc_tasksel.dir/transforms.cc.o"
  "CMakeFiles/msc_tasksel.dir/transforms.cc.o.d"
  "libmsc_tasksel.a"
  "libmsc_tasksel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_tasksel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
