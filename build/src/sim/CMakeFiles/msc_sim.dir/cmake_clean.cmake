file(REMOVE_RECURSE
  "CMakeFiles/msc_sim.dir/runner.cc.o"
  "CMakeFiles/msc_sim.dir/runner.cc.o.d"
  "libmsc_sim.a"
  "libmsc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
