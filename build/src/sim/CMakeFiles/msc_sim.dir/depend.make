# Empty dependencies file for msc_sim.
# This may be replaced when dependencies are built.
