file(REMOVE_RECURSE
  "libmsc_sim.a"
)
