
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/defuse.cc" "src/cfg/CMakeFiles/msc_cfg.dir/defuse.cc.o" "gcc" "src/cfg/CMakeFiles/msc_cfg.dir/defuse.cc.o.d"
  "/root/repo/src/cfg/dfs.cc" "src/cfg/CMakeFiles/msc_cfg.dir/dfs.cc.o" "gcc" "src/cfg/CMakeFiles/msc_cfg.dir/dfs.cc.o.d"
  "/root/repo/src/cfg/dominators.cc" "src/cfg/CMakeFiles/msc_cfg.dir/dominators.cc.o" "gcc" "src/cfg/CMakeFiles/msc_cfg.dir/dominators.cc.o.d"
  "/root/repo/src/cfg/liveness.cc" "src/cfg/CMakeFiles/msc_cfg.dir/liveness.cc.o" "gcc" "src/cfg/CMakeFiles/msc_cfg.dir/liveness.cc.o.d"
  "/root/repo/src/cfg/loops.cc" "src/cfg/CMakeFiles/msc_cfg.dir/loops.cc.o" "gcc" "src/cfg/CMakeFiles/msc_cfg.dir/loops.cc.o.d"
  "/root/repo/src/cfg/reachability.cc" "src/cfg/CMakeFiles/msc_cfg.dir/reachability.cc.o" "gcc" "src/cfg/CMakeFiles/msc_cfg.dir/reachability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/msc_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
