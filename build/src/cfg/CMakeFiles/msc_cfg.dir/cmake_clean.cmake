file(REMOVE_RECURSE
  "CMakeFiles/msc_cfg.dir/defuse.cc.o"
  "CMakeFiles/msc_cfg.dir/defuse.cc.o.d"
  "CMakeFiles/msc_cfg.dir/dfs.cc.o"
  "CMakeFiles/msc_cfg.dir/dfs.cc.o.d"
  "CMakeFiles/msc_cfg.dir/dominators.cc.o"
  "CMakeFiles/msc_cfg.dir/dominators.cc.o.d"
  "CMakeFiles/msc_cfg.dir/liveness.cc.o"
  "CMakeFiles/msc_cfg.dir/liveness.cc.o.d"
  "CMakeFiles/msc_cfg.dir/loops.cc.o"
  "CMakeFiles/msc_cfg.dir/loops.cc.o.d"
  "CMakeFiles/msc_cfg.dir/reachability.cc.o"
  "CMakeFiles/msc_cfg.dir/reachability.cc.o.d"
  "libmsc_cfg.a"
  "libmsc_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
