# Empty compiler generated dependencies file for msc_cfg.
# This may be replaced when dependencies are built.
