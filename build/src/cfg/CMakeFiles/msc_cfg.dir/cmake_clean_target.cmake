file(REMOVE_RECURSE
  "libmsc_cfg.a"
)
