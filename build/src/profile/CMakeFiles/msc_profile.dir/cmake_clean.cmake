file(REMOVE_RECURSE
  "CMakeFiles/msc_profile.dir/profiler.cc.o"
  "CMakeFiles/msc_profile.dir/profiler.cc.o.d"
  "libmsc_profile.a"
  "libmsc_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
