file(REMOVE_RECURSE
  "libmsc_profile.a"
)
