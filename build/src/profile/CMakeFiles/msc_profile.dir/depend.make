# Empty dependencies file for msc_profile.
# This may be replaced when dependencies are built.
