
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/arb.cc" "src/arch/CMakeFiles/msc_arch.dir/arb.cc.o" "gcc" "src/arch/CMakeFiles/msc_arch.dir/arb.cc.o.d"
  "/root/repo/src/arch/cache.cc" "src/arch/CMakeFiles/msc_arch.dir/cache.cc.o" "gcc" "src/arch/CMakeFiles/msc_arch.dir/cache.cc.o.d"
  "/root/repo/src/arch/processor.cc" "src/arch/CMakeFiles/msc_arch.dir/processor.cc.o" "gcc" "src/arch/CMakeFiles/msc_arch.dir/processor.cc.o.d"
  "/root/repo/src/arch/stats.cc" "src/arch/CMakeFiles/msc_arch.dir/stats.cc.o" "gcc" "src/arch/CMakeFiles/msc_arch.dir/stats.cc.o.d"
  "/root/repo/src/arch/taskstream.cc" "src/arch/CMakeFiles/msc_arch.dir/taskstream.cc.o" "gcc" "src/arch/CMakeFiles/msc_arch.dir/taskstream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/msc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/msc_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/msc_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/tasksel/CMakeFiles/msc_tasksel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
