file(REMOVE_RECURSE
  "CMakeFiles/msc_arch.dir/arb.cc.o"
  "CMakeFiles/msc_arch.dir/arb.cc.o.d"
  "CMakeFiles/msc_arch.dir/cache.cc.o"
  "CMakeFiles/msc_arch.dir/cache.cc.o.d"
  "CMakeFiles/msc_arch.dir/processor.cc.o"
  "CMakeFiles/msc_arch.dir/processor.cc.o.d"
  "CMakeFiles/msc_arch.dir/stats.cc.o"
  "CMakeFiles/msc_arch.dir/stats.cc.o.d"
  "CMakeFiles/msc_arch.dir/taskstream.cc.o"
  "CMakeFiles/msc_arch.dir/taskstream.cc.o.d"
  "libmsc_arch.a"
  "libmsc_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
