# Empty dependencies file for msc_arch.
# This may be replaced when dependencies are built.
