file(REMOVE_RECURSE
  "libmsc_arch.a"
)
