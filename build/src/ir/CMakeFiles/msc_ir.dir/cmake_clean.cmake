file(REMOVE_RECURSE
  "CMakeFiles/msc_ir.dir/builder.cc.o"
  "CMakeFiles/msc_ir.dir/builder.cc.o.d"
  "CMakeFiles/msc_ir.dir/instruction.cc.o"
  "CMakeFiles/msc_ir.dir/instruction.cc.o.d"
  "CMakeFiles/msc_ir.dir/parser.cc.o"
  "CMakeFiles/msc_ir.dir/parser.cc.o.d"
  "CMakeFiles/msc_ir.dir/printer.cc.o"
  "CMakeFiles/msc_ir.dir/printer.cc.o.d"
  "CMakeFiles/msc_ir.dir/program.cc.o"
  "CMakeFiles/msc_ir.dir/program.cc.o.d"
  "CMakeFiles/msc_ir.dir/verifier.cc.o"
  "CMakeFiles/msc_ir.dir/verifier.cc.o.d"
  "libmsc_ir.a"
  "libmsc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
