# Empty compiler generated dependencies file for msc_workloads.
# This may be replaced when dependencies are built.
