file(REMOVE_RECURSE
  "CMakeFiles/msc_workloads.dir/fp_workloads.cc.o"
  "CMakeFiles/msc_workloads.dir/fp_workloads.cc.o.d"
  "CMakeFiles/msc_workloads.dir/int_workloads.cc.o"
  "CMakeFiles/msc_workloads.dir/int_workloads.cc.o.d"
  "CMakeFiles/msc_workloads.dir/registry.cc.o"
  "CMakeFiles/msc_workloads.dir/registry.cc.o.d"
  "libmsc_workloads.a"
  "libmsc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
