file(REMOVE_RECURSE
  "libmsc_workloads.a"
)
