# Empty compiler generated dependencies file for msctool.
# This may be replaced when dependencies are built.
