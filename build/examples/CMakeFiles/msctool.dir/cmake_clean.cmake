file(REMOVE_RECURSE
  "CMakeFiles/msctool.dir/msctool.cpp.o"
  "CMakeFiles/msctool.dir/msctool.cpp.o.d"
  "msctool"
  "msctool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msctool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
