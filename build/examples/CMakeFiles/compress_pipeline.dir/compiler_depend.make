# Empty compiler generated dependencies file for compress_pipeline.
# This may be replaced when dependencies are built.
