file(REMOVE_RECURSE
  "CMakeFiles/compress_pipeline.dir/compress_pipeline.cpp.o"
  "CMakeFiles/compress_pipeline.dir/compress_pipeline.cpp.o.d"
  "compress_pipeline"
  "compress_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
