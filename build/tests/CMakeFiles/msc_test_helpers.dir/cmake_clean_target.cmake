file(REMOVE_RECURSE
  "libmsc_test_helpers.a"
)
