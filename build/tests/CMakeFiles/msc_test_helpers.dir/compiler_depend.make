# Empty compiler generated dependencies file for msc_test_helpers.
# This may be replaced when dependencies are built.
