file(REMOVE_RECURSE
  "CMakeFiles/msc_test_helpers.dir/helpers.cc.o"
  "CMakeFiles/msc_test_helpers.dir/helpers.cc.o.d"
  "libmsc_test_helpers.a"
  "libmsc_test_helpers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_test_helpers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
