file(REMOVE_RECURSE
  "CMakeFiles/test_processor.dir/test_processor.cc.o"
  "CMakeFiles/test_processor.dir/test_processor.cc.o.d"
  "test_processor"
  "test_processor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_processor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
