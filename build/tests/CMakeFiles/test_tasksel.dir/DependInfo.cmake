
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_tasksel.cc" "tests/CMakeFiles/test_tasksel.dir/test_tasksel.cc.o" "gcc" "tests/CMakeFiles/test_tasksel.dir/test_tasksel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/msc_test_helpers.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/msc_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/tasksel/CMakeFiles/msc_tasksel.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/msc_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/msc_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/msc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/msc_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
