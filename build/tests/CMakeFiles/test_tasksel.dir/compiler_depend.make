# Empty compiler generated dependencies file for test_tasksel.
# This may be replaced when dependencies are built.
