file(REMOVE_RECURSE
  "CMakeFiles/test_tasksel.dir/test_tasksel.cc.o"
  "CMakeFiles/test_tasksel.dir/test_tasksel.cc.o.d"
  "test_tasksel"
  "test_tasksel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tasksel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
