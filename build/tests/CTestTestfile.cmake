# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_ir "/root/repo/build/tests/test_ir")
set_tests_properties(test_ir PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;msc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cfg "/root/repo/build/tests/test_cfg")
set_tests_properties(test_cfg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;13;msc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_interpreter "/root/repo/build/tests/test_interpreter")
set_tests_properties(test_interpreter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;14;msc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tasksel "/root/repo/build/tests/test_tasksel")
set_tests_properties(test_tasksel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;15;msc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_arch "/root/repo/build/tests/test_arch")
set_tests_properties(test_arch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;16;msc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_processor "/root/repo/build/tests/test_processor")
set_tests_properties(test_processor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;17;msc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workloads "/root/repo/build/tests/test_workloads")
set_tests_properties(test_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;18;msc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_pipeline "/root/repo/build/tests/test_pipeline")
set_tests_properties(test_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;19;msc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_parser "/root/repo/build/tests/test_parser")
set_tests_properties(test_parser PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;20;msc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;21;msc_add_test;/root/repo/tests/CMakeLists.txt;0;")
