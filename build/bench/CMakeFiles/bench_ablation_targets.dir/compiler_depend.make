# Empty compiler generated dependencies file for bench_ablation_targets.
# This may be replaced when dependencies are built.
