file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_targets.dir/bench_ablation_targets.cc.o"
  "CMakeFiles/bench_ablation_targets.dir/bench_ablation_targets.cc.o.d"
  "bench_ablation_targets"
  "bench_ablation_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
