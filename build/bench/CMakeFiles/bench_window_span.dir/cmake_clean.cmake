file(REMOVE_RECURSE
  "CMakeFiles/bench_window_span.dir/bench_window_span.cc.o"
  "CMakeFiles/bench_window_span.dir/bench_window_span.cc.o.d"
  "bench_window_span"
  "bench_window_span.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_window_span.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
