# Empty compiler generated dependencies file for bench_window_span.
# This may be replaced when dependencies are built.
