#include "tasksel/transforms.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "cfg/dfs.h"
#include "cfg/dominators.h"
#include "cfg/liveness.h"
#include "cfg/loops.h"
#include "ir/verifier.h"

namespace msc {
namespace tasksel {

namespace {

using namespace ir;

/** True when @p li has another loop nested inside it. */
bool
hasChildLoop(const cfg::LoopForest &forest, size_t li)
{
    for (size_t j = 0; j < forest.loops().size(); ++j)
        if (j != li && forest.loops()[j].parent == int(li))
            return true;
    return false;
}

/**
 * Unrolls one loop of @p f by factor @p k (k >= 2). Copies the loop
 * body k-1 times; edges to the header from copy j retarget copy j+1's
 * header, and the final copy's back edges return to the original
 * header.
 */
void
unrollLoop(Function &f, const cfg::Loop &loop, unsigned k)
{
    const std::vector<BlockId> &body = loop.blocks;
    std::vector<bool> in_loop(f.blocks.size(), false);
    for (BlockId b : body)
        in_loop[b] = true;

    // clone_id[j][i]: block id of copy j of body[i]; copy 0 = original.
    std::vector<std::vector<BlockId>> clone_id(k);
    clone_id[0] = body;
    for (unsigned j = 1; j < k; ++j) {
        clone_id[j].resize(body.size());
        for (size_t i = 0; i < body.size(); ++i) {
            BlockId nid = BlockId(f.blocks.size());
            clone_id[j][i] = nid;
            BasicBlock copy = f.blocks[body[i]];
            copy.id = nid;
            copy.succs.clear();
            copy.preds.clear();
            f.blocks.push_back(std::move(copy));
        }
    }

    // Index of a block within `body`, for remapping.
    std::vector<int> body_index(f.blocks.size(), -1);
    for (size_t i = 0; i < body.size(); ++i)
        body_index[body[i]] = int(i);

    // Remap edges of copy j: in-loop targets go to copy j, except the
    // header, which goes to copy (j+1) % k.
    auto remap = [&](BlockId t, unsigned j) -> BlockId {
        if (t == INVALID_BLOCK || t >= in_loop.size() || !in_loop[t])
            return t;
        unsigned tj = (t == loop.header) ? (j + 1) % k : j;
        return clone_id[tj][body_index[t]];
    };

    for (unsigned j = 0; j < k; ++j) {
        for (size_t i = 0; i < body.size(); ++i) {
            BasicBlock &bb = f.blocks[clone_id[j][i]];
            bb.fallthrough = remap(bb.fallthrough, j);
            if (!bb.insts.empty()) {
                Instruction &t = bb.insts.back();
                if (t.op == Opcode::Br || t.op == Opcode::BrZ ||
                    t.op == Opcode::Jmp) {
                    t.target = remap(t.target, j);
                }
            }
        }
    }
}

/** Registers referenced anywhere in @p f (defs or uses). */
std::vector<bool>
regsReferenced(const Function &f)
{
    std::vector<bool> used(NUM_REGS, false);
    std::vector<RegId> scratch;
    for (const auto &b : f.blocks) {
        for (const auto &in : b.insts) {
            scratch.clear();
            in.defs(scratch);
            in.uses(scratch);
            for (RegId r : scratch)
                used[r] = true;
            if (in.dst != NO_REG)
                used[in.dst] = true;
            if (in.src1 != NO_REG)
                used[in.src1] = true;
            if (in.src2 != NO_REG)
                used[in.src2] = true;
        }
    }
    return used;
}

/**
 * Attempts to hoist one induction variable in @p loop of @p f.
 * @return true when the transform was applied.
 */
bool
hoistOneLoop(Function &f, const cfg::Loop &loop, const cfg::Liveness &live)
{
    if (loop.latches.size() != 1)
        return false;
    BlockId latch = loop.latches[0];
    if (latch == loop.header)
        return false;  // Self-loop rotation is not value-preserving.

    BasicBlock &lb = f.blocks[latch];

    // Find the increment: add/sub i, i, #imm with no other def of i
    // anywhere in the loop.
    int inc_pos = -1;
    RegId iv = NO_REG;
    for (size_t i = 0; i < lb.insts.size(); ++i) {
        const Instruction &in = lb.insts[i];
        if ((in.op == Opcode::Add || in.op == Opcode::Sub) &&
            in.src2 == NO_REG && in.dst == in.src1 &&
            in.dst != NO_REG && in.dst != REG_ZERO &&
            !isFpReg(in.dst)) {
            inc_pos = int(i);
            iv = in.dst;
            break;
        }
    }
    if (inc_pos < 0)
        return false;

    // No other def of iv in the loop (including call clobbers).
    std::vector<RegId> scratch;
    for (BlockId b : loop.blocks) {
        const auto &bb = f.blocks[b];
        for (size_t i = 0; i < bb.insts.size(); ++i) {
            if (b == latch && int(i) == inc_pos)
                continue;
            scratch.clear();
            bb.insts[i].defs(scratch);
            for (RegId r : scratch)
                if (r == iv)
                    return false;
        }
    }

    // iv must not be live into any latch-exit successor (the rotated
    // value at a latch exit is one increment behind the original).
    for (BlockId s : lb.succs) {
        if (!loop.contains(s) && cfg::regTest(live.liveIn(s), iv))
            return false;
    }

    Instruction inc = lb.insts[inc_pos];

    // Rewrite latch uses of iv after the increment to a fresh temp.
    bool uses_after = false;
    for (size_t i = size_t(inc_pos) + 1; i < lb.insts.size(); ++i) {
        const Instruction &in = lb.insts[i];
        if ((in.info().readsSrc1 && in.src1 == iv) ||
            (in.info().readsSrc2 && in.src2 == iv) ||
            (in.op == Opcode::Ret || in.op == Opcode::Call)) {
            uses_after = true;  // Treat call/ret conservatively.
            break;
        }
    }

    RegId temp = NO_REG;
    if (uses_after) {
        auto used = regsReferenced(f);
        for (RegId r = 31; r >= 2; --r) {
            if (!used[r]) {
                temp = r;
                break;
            }
        }
        if (temp == NO_REG)
            return false;  // No free register for the rotation temp.
        // Calls/rets after the increment make the rewrite unsound
        // (the temp would need to cross the ABI boundary); bail out.
        for (size_t i = size_t(inc_pos) + 1; i < lb.insts.size(); ++i) {
            Opcode op = lb.insts[i].op;
            if (op == Opcode::Call || op == Opcode::Ret)
                return false;
        }
    }

    // 1. Replace/remove the latch increment.
    if (uses_after) {
        Instruction tmp_inc = inc;
        tmp_inc.dst = temp;
        lb.insts[inc_pos] = tmp_inc;
        for (size_t i = size_t(inc_pos) + 1; i < lb.insts.size(); ++i) {
            Instruction &in = lb.insts[i];
            if (in.info().readsSrc1 && in.src1 == iv)
                in.src1 = temp;
            if (in.info().readsSrc2 && in.src2 == iv)
                in.src2 = temp;
        }
    } else {
        lb.insts.erase(lb.insts.begin() + inc_pos);
        if (lb.insts.empty()) {
            Instruction nop;
            nop.op = Opcode::Nop;
            lb.insts.push_back(nop);
        }
    }

    // 2. Insert the increment at the top of the header.
    BasicBlock &hb = f.blocks[loop.header];
    hb.insts.insert(hb.insts.begin(), inc);

    // 3. Compensate on every loop-entry edge: split the edge with a
    //    block applying the inverse adjustment.
    Instruction inv = inc;
    inv.op = (inc.op == Opcode::Add) ? Opcode::Sub : Opcode::Add;

    BlockId fixup = BlockId(f.blocks.size());
    {
        BasicBlock nb;
        nb.id = fixup;
        nb.insts.push_back(inv);
        Instruction j;
        j.op = Opcode::Jmp;
        j.target = loop.header;
        nb.insts.push_back(j);
        f.blocks.push_back(std::move(nb));
    }

    bool used_fixup = false;
    for (auto &b : f.blocks) {
        if (b.id == fixup || loop.contains(b.id))
            continue;
        if (b.fallthrough == loop.header) {
            b.fallthrough = fixup;
            used_fixup = true;
        }
        if (!b.insts.empty()) {
            Instruction &t = b.insts.back();
            if ((t.op == Opcode::Br || t.op == Opcode::BrZ ||
                 t.op == Opcode::Jmp) && t.target == loop.header) {
                t.target = fixup;
                used_fixup = true;
            }
        }
    }
    if (f.entry == loop.header) {
        f.entry = fixup;
        used_fixup = true;
    }
    if (!used_fixup) {
        // No external entry found (unreachable loop); undo is complex,
        // but the fixup block is simply dead and harmless.
    }
    return true;
}

} // anonymous namespace

unsigned
unrollSmallLoops(ir::Program &prog, unsigned loop_thresh,
                 unsigned max_factor, runtime::Governor *gov)
{
    unsigned total = 0;
    for (auto &f : prog.functions) {
        // Iterate: unrolling may leave other small loops; recompute
        // analyses until nothing changes (bounded for safety).
        for (int pass = 0; pass < 8; ++pass) {
            if (gov)
                gov->checkPulse();
            f.computeCfg();
            cfg::DfsInfo dfs(f);
            cfg::DominatorTree dom(f, dfs);
            cfg::LoopForest forest(f, dfs, dom);

            int pick = -1;
            for (size_t li = 0; li < forest.loops().size(); ++li) {
                const auto &l = forest.loops()[li];
                if (hasChildLoop(forest, li))
                    continue;  // Innermost first.
                if (l.staticSize(f) < loop_thresh) {
                    pick = int(li);
                    break;
                }
            }
            if (pick < 0)
                break;

            const auto &l = forest.loops()[pick];
            size_t sz = l.staticSize(f);
            unsigned k = unsigned((loop_thresh + sz - 1) / sz);
            k = std::clamp(k, 2u, max_factor);
            unrollLoop(f, l, k);
            ++total;
        }
    }
    prog.computeCfg();
    std::string err;
    if (!ir::verify(prog, &err))
        throw runtime::StageError(
            runtime::ErrorKind::VerifyFailed, "transform",
            "unrollSmallLoops broke the IR: " + err);
    prog.layout();
    return total;
}

unsigned
hoistInductionVariables(ir::Program &prog, runtime::Governor *gov)
{
    unsigned total = 0;
    for (auto &f : prog.functions) {
        for (int pass = 0; pass < 16; ++pass) {
            if (gov)
                gov->checkPulse();
            f.computeCfg();
            cfg::DfsInfo dfs(f);
            cfg::DominatorTree dom(f, dfs);
            cfg::LoopForest forest(f, dfs, dom);
            cfg::Liveness live(f);

            bool did = false;
            for (const auto &l : forest.loops()) {
                if (hoistOneLoop(f, l, live)) {
                    ++total;
                    did = true;
                    break;  // Analyses are stale; recompute.
                }
            }
            if (!did)
                break;
        }
    }
    prog.computeCfg();
    std::string err;
    if (!ir::verify(prog, &err))
        throw runtime::StageError(
            runtime::ErrorKind::VerifyFailed, "transform",
            "hoistInductionVariables broke the IR: " + err);
    prog.layout();
    return total;
}

} // namespace tasksel
} // namespace msc
