/**
 * @file
 * Structural verification of task partitions.
 */

#pragma once

#include <string>

#include "tasksel/options.h"
#include "tasksel/task.h"

namespace msc {
namespace tasksel {

/**
 * Checks the invariants every partition must satisfy (§2.2):
 *  - every block of every function belongs to exactly one task;
 *  - each task is a connected subgraph containing its entry;
 *  - each task is single-entry: every predecessor of a non-entry
 *    member lies inside the task;
 *  - every exposed Block target is the entry of the task owning it;
 *  - multi-block tasks expose at most opts.maxTargets targets
 *    (basic-block tasks are exempt: the baseline ignores N).
 *
 * @param err when non-null receives a description of the first
 *        violation.
 * @return true when the partition is well-formed.
 */
bool verifyPartition(const TaskPartition &part,
                     const SelectionOptions &opts,
                     std::string *err = nullptr);

} // namespace tasksel
} // namespace msc
