#include "tasksel/selector.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>

#include "cfg/defuse.h"
#include "cfg/dfs.h"
#include "cfg/dominators.h"
#include "cfg/loops.h"
#include "cfg/reachability.h"
#include "tasksel/grower.h"
#include "tasksel/regcomm.h"

namespace msc {
namespace tasksel {

namespace {

using namespace ir;

const char *strategy_names[] = {"basic-block", "control-flow",
                                "data-dependence"};

/** Marks call sites whose callees are small enough to include. */
std::unordered_set<BlockRef>
markIncludedCalls(const Program &prog, const profile::Profile &prof,
                  const SelectionOptions &opts)
{
    std::unordered_set<BlockRef> included;
    if (!opts.taskSizeHeuristic)
        return included;
    for (const auto &f : prog.functions) {
        for (const auto &b : f.blocks) {
            if (!b.endsInCall())
                continue;
            FuncId callee = b.insts.back().callee;
            if (prof.avgCallInsts(callee) < double(opts.callThresh))
                included.insert({f.id, b.id});
        }
    }
    return included;
}

/** Commits one task's member blocks into the partition. */
void
commitTask(TaskPartition &part, const GrowthContext &ctx, FuncId func,
           BlockId entry, const std::vector<BlockId> &blocks)
{
    Task t;
    t.id = TaskId(part.tasks.size());
    t.func = func;
    t.entry = entry;
    t.blocks = blocks;
    t.targets = TaskGrower::computeTargets(ctx, entry, blocks);
    const Function &f = ctx.func();
    for (BlockId b : blocks) {
        t.staticInsts += uint32_t(f.blocks[b].insts.size());
        part.taskOf[func][b] = t.id;
    }
    part.tasks.push_back(std::move(t));
}

/** Basic-block partition: every block is its own task. */
void
partitionBasicBlocks(TaskPartition &part, const GrowthContext &ctx,
                     const Function &f)
{
    for (const auto &b : f.blocks)
        commitTask(part, ctx, f.id, b.id, {b.id});
}

/**
 * Control-flow partition of the blocks of @p f that are still
 * unassigned, seeded from @p seeds (plus a sweep for stragglers).
 */
void
partitionControlFlow(TaskPartition &part, GrowthContext &ctx,
                     const Function &f, std::deque<BlockId> seeds)
{
    // Ownership tags for in-progress growers start beyond any task id
    // that could be committed; we only ever have one live grower here,
    // so a single sentinel tag suffices.
    const int kGrowing = 1 << 30;

    while (true) {
        // Refill from the straggler sweep when the seed queue drains.
        if (seeds.empty()) {
            for (const auto &b : f.blocks) {
                if (part.taskOf[f.id][b.id] == INVALID_TASK &&
                    !ctx.owned(b.id)) {
                    seeds.push_back(b.id);
                    break;
                }
            }
            if (seeds.empty())
                break;
        }

        BlockId s = seeds.front();
        seeds.pop_front();
        if (ctx.owned(s))
            continue;

        TaskGrower g(ctx, kGrowing, s);
        g.explore(nullptr);
        std::vector<BlockId> dropped;
        std::vector<BlockId> blocks = g.finalize(dropped);
        commitTask(part, ctx, f.id, s, blocks);
        // Committed blocks stay owned (tag reused as "assigned").

        for (BlockId b : dropped)
            seeds.push_back(b);
        for (BlockId b : g.boundary())
            if (!ctx.owned(b))
                seeds.push_back(b);
    }
}

/** One profiled register dependence, ready for sorting. */
struct RankedDep
{
    uint64_t freq;
    BlockId producer;
    BlockId consumer;
};

/**
 * Data-dependence partition (§3.4, Figure 3): tasks are grown from
 * CFG-traversal seeds exactly like the control-flow heuristic, but
 * exploration is *steered*: a child block is explored only when it
 * lies in the codependent set of some profiled def-use dependence
 * whose producer is already inside the task ("the data dependence
 * heuristic ... includes a basic block only if it is dependent on
 * other basic blocks included in the task"). Dependences are
 * prioritized by profiled frequency; as blocks join the task, the
 * steering set is re-derived from the dependences they produce
 * (expand_task). Blocks on terminated paths seed further tasks, and
 * anything not covered by a dependence falls back to the control-flow
 * pass.
 */
void
partitionDataDependence(TaskPartition &part, GrowthContext &ctx,
                        const Function &f, const profile::Profile &prof,
                        const SelectionOptions &opts)
{
    cfg::DefUse du(f);
    cfg::Reachability reach(f);

    // Rank static def-use edges by their dynamic frequency, grouped
    // by producer block.
    std::vector<RankedDep> deps;
    for (const auto &e : du.edges()) {
        const auto &def = du.defSites()[e.def];
        auto it = prof.defUseCount.find({def.ref, e.use, e.reg});
        if (it == prof.defUseCount.end() || it->second == 0)
            continue;
        if (def.ref.block == e.use.block)
            continue;  // Same-block dependences are always internal.
        deps.push_back({it->second, def.ref.block, e.use.block});
    }
    std::sort(deps.begin(), deps.end(), [](const auto &a, const auto &b) {
        if (a.freq != b.freq)
            return a.freq > b.freq;
        if (a.producer != b.producer)
            return a.producer < b.producer;
        return a.consumer < b.consumer;
    });
    if (deps.size() > opts.maxDepsPerFunction)
        deps.resize(opts.maxDepsPerFunction);

    // Task entries are hoisted from producers to natural region heads:
    // walk up while a block has exactly one non-terminal in-edge whose
    // source can still extend a task. A producer inside a loop body
    // thus roots its task at the loop header — the entry the hardware
    // will actually dispatch.
    auto walkUp = [&](BlockId b) {
        for (int hops = 0; hops < 64; ++hops) {
            BlockId up = INVALID_BLOCK;
            unsigned live_in = 0;
            for (BlockId p : f.blocks[b].preds) {
                if (ctx.isTerminalEdge(p, b))
                    continue;
                ++live_in;
                up = p;
            }
            if (live_in != 1 || ctx.owned(up) ||
                ctx.isTerminalNode(up) || up == b) {
                break;
            }
            b = up;
        }
        return b;
    };

    // Open growers, keyed by ownership tag (expand_task of Figure 3).
    // Each remembers its accumulated dependence region so a final fill
    // round can complete it — the task covers its dependences but is
    // not grown past them (DD tasks come out smaller than CF tasks,
    // §4.3.2).
    std::vector<std::unique_ptr<TaskGrower>> growers;
    std::vector<cfg::DynBitset> regions;

    for (const auto &d : deps) {
        int owner = ctx.ownerOf(d.producer);
        if (owner >= 0) {
            // expand_task(u, including-task-of-u, (u,v)): steer from
            // the task's entry so the whole entry-to-consumer region
            // may join.
            cfg::DynBitset codep = reach.codependent(
                growers[owner]->entry(), d.consumer);
            codep.unionWith(
                reach.codependent(d.producer, d.consumer));
            if (codep.none())
                continue;
            growers[owner]->explore(&codep,
                opts.ddTerminateAtDependence ? d.consumer
                                             : INVALID_BLOCK);
            regions[owner].unionWith(codep);
        } else {
            // expand_task(u, new_task(u), (u,v)).
            BlockId entry = walkUp(d.producer);
            cfg::DynBitset codep = reach.codependent(entry, d.consumer);
            if (codep.none())
                continue;
            int tag = int(growers.size());
            growers.push_back(std::make_unique<TaskGrower>(
                ctx, tag, entry));
            regions.push_back(codep);
            growers.back()->explore(&codep,
                opts.ddTerminateAtDependence ? d.consumer
                                             : INVALID_BLOCK);
        }
    }

    // Demarcate all dependence tasks, collecting future seeds.
    std::deque<BlockId> seeds{f.entry};
    for (size_t gi = 0; gi < growers.size(); ++gi) {
        auto &g = growers[gi];
        if (!g->started())
            continue;
        // Fill round: complete the dependence region (reconverging
        // paths between producers and consumers) without exceeding it.
        g->explore(&regions[gi]);
        std::vector<BlockId> dropped;
        std::vector<BlockId> blocks = g->finalize(dropped);
        commitTask(part, ctx, f.id, g->entry(), blocks);
        for (BlockId b : dropped)
            seeds.push_back(b);
        for (BlockId b : g->boundary())
            seeds.push_back(b);
    }

    // Everything else: control-flow heuristic.
    partitionControlFlow(part, ctx, f, std::move(seeds));
}

} // anonymous namespace

const char *
strategyName(Strategy s)
{
    return strategy_names[size_t(s)];
}

TaskPartition
selectTasks(const Program &prog, const profile::Profile &prof,
            const SelectionOptions &opts, runtime::Governor *gov)
{
    TaskPartition part;
    part.prog = &prog;
    part.taskOf.resize(prog.functions.size());
    for (const auto &f : prog.functions)
        part.taskOf[f.id].assign(f.blocks.size(), INVALID_TASK);

    part.includedCalls = markIncludedCalls(prog, prof, opts);

    for (const auto &f : prog.functions) {
        if (gov)
            gov->checkPulse();
        cfg::DfsInfo dfs(f);
        cfg::DominatorTree dom(f, dfs);
        cfg::LoopForest loops(f, dfs, dom);
        GrowthContext ctx(prog, f, opts, part.includedCalls, dfs, loops);

        switch (opts.strategy) {
          case Strategy::BasicBlock:
            partitionBasicBlocks(part, ctx, f);
            break;
          case Strategy::ControlFlow:
            partitionControlFlow(part, ctx, f, {f.entry});
            break;
          case Strategy::DataDependence:
            partitionDataDependence(part, ctx, f, prof, opts);
            break;
        }
    }

    computeRegisterCommunication(part, opts);
    return part;
}

} // namespace tasksel
} // namespace msc
