/**
 * @file
 * Register-communication metadata: create masks and safe forward
 * points.
 *
 * In a Multiscalar processor, "in the case of inter-task register data
 * dependences, a producer task communicates the required value to the
 * consumer task when it has been computed" (§2.1, [3]). The hardware
 * needs to know (a) which registers a task may produce — the *create
 * mask* — so consumers know whom to wait for, and (b) when a value may
 * be forwarded — at the last possible definition. A definition may
 * forward immediately ("forward bit") only when no later definition of
 * the same register is statically possible within the task; registers
 * in the create mask that never hit a safe forward point are released
 * when the task completes.
 *
 * Dead-register analysis (§4.2) prunes registers that no successor
 * can read from the create mask, shrinking the wait sets.
 */

#pragma once

#include "tasksel/options.h"
#include "tasksel/task.h"

namespace msc {
namespace tasksel {

/**
 * Fills Task::createMask and TaskPartition::fwdSafe for every task of
 * @p part.
 */
void computeRegisterCommunication(TaskPartition &part,
                                  const SelectionOptions &opts);

} // namespace tasksel
} // namespace msc
