/**
 * @file
 * Greedy task growth with feasible-prefix tracking — the mechanism
 * shared by the control-flow and data-dependence heuristics (§3.3,
 * §3.4, Figure 3).
 *
 * A TaskGrower explores the CFG outward from a seed block, one block
 * per step, queueing children for further exploration exactly as the
 * paper's dependence_task() does. Terminal nodes stop exploration of
 * their children; terminal edges (loop back/entry/exit arcs) are never
 * crossed. Exploration is greedy: it continues even when the number of
 * exposed successor targets exceeds the hardware arity N, because
 * reconverging control flow later in the traversal can bring the
 * count back down. finalize() then demarcates the largest explored
 * prefix that is a connected, single-entry subgraph with at most N
 * targets — the paper's "feasible task".
 */

#pragma once

#include <deque>
#include <vector>

#include "cfg/bitset.h"
#include "tasksel/options.h"
#include "tasksel/task.h"

namespace msc {
namespace cfg {
class DfsInfo;
class LoopForest;
} // namespace cfg

namespace tasksel {

/**
 * Per-function context shared by all growers: terminal classification
 * and ownership of blocks by committed or in-progress tasks.
 */
class GrowthContext
{
  public:
    GrowthContext(const ir::Program &prog, const ir::Function &func,
                  const SelectionOptions &opts,
                  const std::unordered_set<ir::BlockRef> &included_calls,
                  const cfg::DfsInfo &dfs,
                  const cfg::LoopForest &loops);

    const ir::Function &func() const { return _func; }
    const ir::Program &prog() const { return _prog; }
    const SelectionOptions &opts() const { return _opts; }

    /** Paper's is_a_terminal_node(): exploration must not continue
     *  past this block. */
    bool isTerminalNode(ir::BlockId b) const;

    /** Paper's is_a_terminal_edge(): loop back edges and edges that
     *  enter or leave a loop. */
    bool isTerminalEdge(ir::BlockId from, ir::BlockId to) const;

    /** Block ownership (by any grower or committed task). */
    bool owned(ir::BlockId b) const { return _owner[b] >= 0; }
    int ownerOf(ir::BlockId b) const { return _owner[b]; }
    void setOwner(ir::BlockId b, int owner) { _owner[b] = owner; }

    bool
    callIncluded(ir::BlockId b) const
    {
        return _includedCalls.count({_func.id, b}) != 0;
    }

  private:
    const ir::Program &_prog;
    const ir::Function &_func;
    const SelectionOptions &_opts;
    const std::unordered_set<ir::BlockRef> &_includedCalls;
    const cfg::DfsInfo &_dfs;
    const cfg::LoopForest &_loops;
    std::vector<int> _owner;
};

/**
 * Grows a single task. Growth may resume with different steering sets
 * (the data-dependence heuristic expands a producer's task once per
 * dependence), so the explore queue persists across explore() calls.
 */
class TaskGrower
{
  public:
    /**
     * @param ctx shared function context.
     * @param tag ownership tag this grower marks blocks with
     *        (a unique non-negative id).
     * @param seed the task's entry block (must be unowned).
     */
    TaskGrower(GrowthContext &ctx, int tag, ir::BlockId seed);

    /**
     * Runs exploration until the queue drains or the block budget is
     * exhausted. When @p steer is non-null, only children inside the
     * steering set are explored (the codependent-set filter of the
     * data-dependence heuristic); rejected children are remembered
     * and re-considered on later explore() calls with other steers.
     * When @p stop_at is a valid block, exploration halts as soon as
     * that block joins the task — the paper's "terminate tasks as
     * soon as a data dependence is included" (§4.3.2); still-queued
     * blocks are kept for later expansions.
     */
    void explore(const cfg::DynBitset *steer,
                 ir::BlockId stop_at = ir::INVALID_BLOCK);

    /**
     * Demarcates the feasible task: the largest prefix of the
     * exploration order that is single-entry, connected, and exposes
     * at most N targets. Releases ownership of dropped blocks.
     *
     * @param dropped receives blocks explored but not kept.
     * @return the member blocks, entry first.
     */
    std::vector<ir::BlockId> finalize(std::vector<ir::BlockId> &dropped);

    /** Blocks the growth frontier could not include (future seeds). */
    const std::vector<ir::BlockId> &boundary() const { return _boundary; }

    ir::BlockId entry() const { return _seed; }
    bool started() const { return !_order.empty(); }

    /** Blocks explored so far, in inclusion order. */
    const std::vector<ir::BlockId> &order() const { return _order; }

    /**
     * Computes the exposed targets of @p blocks (assumed to contain
     * the entry). Public because the selector also needs target lists
     * for committed tasks.
     */
    static std::vector<TaskTarget>
    computeTargets(const GrowthContext &ctx, ir::BlockId entry,
                   const std::vector<ir::BlockId> &blocks);

  private:
    std::vector<ir::BlockId> cleanup(size_t prefix_len) const;

    GrowthContext &_ctx;
    int _tag;
    ir::BlockId _seed;
    std::vector<ir::BlockId> _order;      ///< Inclusion order.
    std::deque<ir::BlockId> _exploreQ;
    std::vector<ir::BlockId> _deferred;   ///< Steer-rejected children.
    std::vector<ir::BlockId> _boundary;
};

} // namespace tasksel
} // namespace msc
