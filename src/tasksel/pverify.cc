#include "tasksel/pverify.h"

#include <sstream>
#include <vector>

namespace msc {
namespace tasksel {

using namespace ir;

namespace {

bool
fail(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
    return false;
}

std::string
taskDesc(const Task &t, const Program &prog)
{
    std::ostringstream os;
    os << "task " << t.id << " (@" << prog.functions[t.func].name
       << " entry bb" << t.entry << ")";
    return os.str();
}

} // anonymous namespace

bool
verifyPartition(const TaskPartition &part, const SelectionOptions &opts,
                std::string *err)
{
    const Program &prog = *part.prog;

    // Coverage and uniqueness.
    std::vector<std::vector<int>> seen(prog.functions.size());
    for (const auto &f : prog.functions)
        seen[f.id].assign(f.blocks.size(), 0);

    for (const auto &t : part.tasks) {
        if (t.blocks.empty() || t.blocks.front() != t.entry)
            return fail(err, taskDesc(t, prog) + ": entry not first");
        for (BlockId b : t.blocks) {
            if (b >= prog.functions[t.func].blocks.size())
                return fail(err, taskDesc(t, prog) + ": bad block id");
            seen[t.func][b]++;
            if (part.taskOf[t.func][b] != t.id) {
                return fail(err, taskDesc(t, prog) +
                            ": taskOf mismatch for bb" + std::to_string(b));
            }
        }
    }
    for (const auto &f : prog.functions) {
        for (const auto &b : f.blocks) {
            if (seen[f.id][b.id] != 1) {
                return fail(err, "@" + f.name + " bb" +
                            std::to_string(b.id) + " is in " +
                            std::to_string(seen[f.id][b.id]) + " tasks");
            }
        }
    }

    for (const auto &t : part.tasks) {
        const Function &f = prog.functions[t.func];
        std::vector<bool> in(f.blocks.size(), false);
        for (BlockId b : t.blocks)
            in[b] = true;

        // Single entry.
        for (BlockId b : t.blocks) {
            if (b == t.entry)
                continue;
            for (BlockId p : f.blocks[b].preds) {
                if (!in[p]) {
                    return fail(err, taskDesc(t, prog) + ": bb" +
                                std::to_string(b) +
                                " has external predecessor bb" +
                                std::to_string(p));
                }
            }
        }

        // Connectivity from the entry.
        std::vector<bool> reach(f.blocks.size(), false);
        std::vector<BlockId> work{t.entry};
        reach[t.entry] = true;
        while (!work.empty()) {
            BlockId b = work.back();
            work.pop_back();
            for (BlockId s : f.blocks[b].succs) {
                if (in[s] && !reach[s]) {
                    reach[s] = true;
                    work.push_back(s);
                }
            }
        }
        for (BlockId b : t.blocks) {
            if (!reach[b]) {
                return fail(err, taskDesc(t, prog) + ": bb" +
                            std::to_string(b) + " unreachable from entry");
            }
        }

        // Every Block target is the owning task's entry.
        for (const auto &tg : t.targets) {
            if (tg.kind != TargetKind::Block)
                continue;
            TaskId owner = part.taskOf[tg.block.func][tg.block.block];
            if (owner == INVALID_TASK)
                return fail(err, taskDesc(t, prog) + ": unowned target");
            if (part.tasks[owner].entry != tg.block.block) {
                return fail(err, taskDesc(t, prog) +
                            ": target bb" + std::to_string(tg.block.block) +
                            " is not the entry of its task");
            }
        }

        // Target arity (multi-block tasks only; the basic-block
        // baseline deliberately ignores N).
        if (t.blocks.size() > 1 && t.targets.size() > opts.maxTargets) {
            return fail(err, taskDesc(t, prog) + ": " +
                        std::to_string(t.targets.size()) +
                        " targets exceed N=" +
                        std::to_string(opts.maxTargets));
        }
    }
    return true;
}

} // namespace tasksel
} // namespace msc
