/**
 * @file
 * Multiscalar-specific IR transforms (§3.2):
 *
 *  - Loop unrolling: loops whose bodies contain fewer than LOOP_THRESH
 *    static instructions are unrolled so that "multiple iterations of
 *    short loops can be included to increase the size of short
 *    loop-body tasks". Unrolling is pure duplication (every copy keeps
 *    its exit tests), so program semantics are untouched.
 *
 *  - Induction-variable hoisting: "we move the induction variable
 *    increments to the top of the loops so that later iterations get
 *    the values of the induction variables from earlier iterations
 *    without any delay". The transform rotates the increment into the
 *    loop header (compensating in a preheader) so the loop-carried
 *    register is produced at the very start of each task.
 *
 * Both transforms mutate the function in place; callers must recompute
 * CFG-derived analyses afterwards (Program::computeCfg() is invoked
 * internally).
 */

#pragma once

#include "ir/program.h"
#include "runtime/budget.h"

namespace msc {
namespace tasksel {

/**
 * Unrolls every loop of @p prog whose static body size is below
 * @p loop_thresh instructions until its size reaches the threshold
 * (unroll factor capped at @p max_factor).
 *
 * @p gov, when non-null, is pulse-checked once per unroll pass so a
 * cancellation or deadline interrupts the transform between loops.
 *
 * @return number of loops unrolled.
 */
unsigned unrollSmallLoops(ir::Program &prog, unsigned loop_thresh,
                          unsigned max_factor = 16,
                          runtime::Governor *gov = nullptr);

/**
 * Hoists induction-variable updates to loop headers where the rotation
 * is provably semantics-preserving (single latch increment, register
 * not live into latch-exit successors, loop header distinct from the
 * latch).
 *
 * @return number of induction variables hoisted.
 */
unsigned hoistInductionVariables(ir::Program &prog,
                                 runtime::Governor *gov = nullptr);

} // namespace tasksel
} // namespace msc
