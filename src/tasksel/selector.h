/**
 * @file
 * Top-level task selection driver (paper Figure 3, task_selection()).
 *
 * Produces a TaskPartition from a program, its execution profile, and
 * a strategy:
 *
 *  - BasicBlock: every basic block is its own task.
 *  - ControlFlow: greedy multi-block growth bounded by N targets.
 *  - DataDependence: profiled def-use dependences are processed in
 *    decreasing frequency order; each is included within a task by
 *    steering growth through its codependent set (expand_task); blocks
 *    left over are partitioned by the control-flow heuristic.
 *
 * The task-size heuristic's *call inclusion* is applied here (calls to
 * functions averaging fewer than CALL_THRESH dynamic instructions do
 * not terminate tasks); its loop unrolling and the induction-variable
 * hoisting are IR transforms that must run before profiling — see
 * transforms.h and sim/runner.h for the full pipeline.
 */

#pragma once

#include "profile/profiler.h"
#include "runtime/budget.h"
#include "tasksel/options.h"
#include "tasksel/task.h"

namespace msc {
namespace tasksel {

/**
 * Partitions @p prog into tasks.
 *
 * @param prog the program (must be CFG-computed and laid out).
 * @param prof execution profile of the same program version.
 * @param opts strategy and knobs.
 * @param gov optional execution governor, pulse-checked per function
 *        so cancellation/deadline interrupts long selections.
 */
TaskPartition selectTasks(const ir::Program &prog,
                          const profile::Profile &prof,
                          const SelectionOptions &opts,
                          runtime::Governor *gov = nullptr);

} // namespace tasksel
} // namespace msc
