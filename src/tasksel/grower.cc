#include "tasksel/grower.h"

#include <algorithm>

#include "cfg/dfs.h"
#include "cfg/loops.h"

namespace msc {
namespace tasksel {

using namespace ir;

GrowthContext::GrowthContext(const Program &prog, const Function &func,
                             const SelectionOptions &opts,
                             const std::unordered_set<BlockRef> &included,
                             const cfg::DfsInfo &dfs,
                             const cfg::LoopForest &loops)
    : _prog(prog), _func(func), _opts(opts), _includedCalls(included),
      _dfs(dfs), _loops(loops), _owner(func.blocks.size(), -1)
{
}

bool
GrowthContext::isTerminalNode(BlockId b) const
{
    const BasicBlock &bb = _func.blocks[b];
    if (bb.endsInRet())
        return true;
    if (bb.isExit())
        return true;  // Halt.
    if (bb.endsInCall() && !callIncluded(b))
        return true;
    return false;
}

bool
GrowthContext::isTerminalEdge(BlockId from, BlockId to) const
{
    if (_dfs.isBackEdge(from, to))
        return true;
    if (_loops.isLoopEntryEdge(from, to))
        return true;
    if (_loops.isLoopExitEdge(from, to))
        return true;
    return false;
}

TaskGrower::TaskGrower(GrowthContext &ctx, int tag, BlockId seed)
    : _ctx(ctx), _tag(tag), _seed(seed)
{
    _exploreQ.push_back(seed);
}

void
TaskGrower::explore(const cfg::DynBitset *steer, ir::BlockId stop_at)
{
    // Steer-rejected children from earlier rounds become candidates
    // again under the new steering set.
    if (!_deferred.empty()) {
        for (BlockId b : _deferred)
            _exploreQ.push_back(b);
        _deferred.clear();
    }

    const Function &f = _ctx.func();
    unsigned budget = _ctx.opts().maxTaskBlocks;

    while (!_exploreQ.empty()) {
        if (_order.size() >= budget) {
            // Blocks still queued cannot join; they seed other tasks.
            while (!_exploreQ.empty()) {
                BlockId b = _exploreQ.front();
                _exploreQ.pop_front();
                if (!_ctx.owned(b))
                    _boundary.push_back(b);
            }
            break;
        }

        BlockId blk = _exploreQ.front();
        _exploreQ.pop_front();

        if (_ctx.owned(blk)) {
            if (_ctx.ownerOf(blk) != _tag) {
                // Another task claimed it first; the edge to it is
                // simply an exposed target.
            }
            continue;
        }

        // The seed is always admitted; other blocks respect steering.
        if (steer && blk != _seed && !steer->test(blk)) {
            _deferred.push_back(blk);
            continue;
        }

        _ctx.setOwner(blk, _tag);
        _order.push_back(blk);

        if (blk == stop_at) {
            // Dependence included: stop here, preserving the frontier
            // for later expansions of this task.
            while (!_exploreQ.empty()) {
                _deferred.push_back(_exploreQ.front());
                _exploreQ.pop_front();
            }
            break;
        }

        if (_ctx.isTerminalNode(blk)) {
            // Children of a terminal node are never part of this
            // task; they seed new tasks (paper's add_to_task_q).
            for (BlockId ch : f.blocks[blk].succs)
                if (!_ctx.owned(ch))
                    _boundary.push_back(ch);
            continue;
        }

        for (BlockId ch : f.blocks[blk].succs) {
            if (_ctx.isTerminalEdge(blk, ch)) {
                if (!_ctx.owned(ch))
                    _boundary.push_back(ch);
                continue;
            }
            if (_ctx.owned(ch))
                continue;
            _exploreQ.push_back(ch);
        }
    }
}

std::vector<TaskTarget>
TaskGrower::computeTargets(const GrowthContext &ctx, BlockId entry,
                           const std::vector<BlockId> &blocks)
{
    const Function &f = ctx.func();
    std::vector<bool> in(f.blocks.size(), false);
    for (BlockId b : blocks)
        in[b] = true;

    std::vector<TaskTarget> targets;
    auto addTarget = [&](const TaskTarget &t) {
        for (const auto &x : targets)
            if (x == t)
                return;
        targets.push_back(t);
    };

    for (BlockId b : blocks) {
        const BasicBlock &bb = f.blocks[b];
        if (bb.endsInRet()) {
            addTarget({TargetKind::Return, {}});
            continue;
        }
        if (!bb.insts.empty() && bb.insts.back().op == Opcode::Halt)
            continue;  // Program end: no successor.
        if (bb.endsInCall() && !ctx.callIncluded(b)) {
            FuncId callee = bb.insts.back().callee;
            addTarget({TargetKind::Block,
                       {callee, ctx.prog().functions[callee].entry}});
            continue;
        }
        for (BlockId s : bb.succs) {
            if (!in[s] || s == entry)
                addTarget({TargetKind::Block, {f.id, s}});
        }
    }
    return targets;
}

std::vector<BlockId>
TaskGrower::cleanup(size_t prefix_len) const
{
    const Function &f = _ctx.func();
    std::vector<bool> in(f.blocks.size(), false);
    for (size_t i = 0; i < prefix_len; ++i)
        in[_order[i]] = true;

    // Single-entry: repeatedly drop non-entry blocks with an external
    // predecessor until fixpoint.
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < prefix_len; ++i) {
            BlockId b = _order[i];
            if (!in[b] || b == _seed)
                continue;
            for (BlockId p : f.blocks[b].preds) {
                if (!in[p]) {
                    in[b] = false;
                    changed = true;
                    break;
                }
            }
        }
    }

    // Connectivity: keep only blocks reachable from the entry within
    // the set.
    std::vector<bool> keep(f.blocks.size(), false);
    std::vector<BlockId> work{_seed};
    keep[_seed] = true;
    while (!work.empty()) {
        BlockId b = work.back();
        work.pop_back();
        for (BlockId s : f.blocks[b].succs) {
            if (in[s] && !keep[s] && s != _seed) {
                keep[s] = true;
                work.push_back(s);
            }
        }
    }

    std::vector<BlockId> out;
    for (size_t i = 0; i < prefix_len; ++i)
        if (keep[_order[i]])
            out.push_back(_order[i]);
    return out;
}

std::vector<BlockId>
TaskGrower::finalize(std::vector<BlockId> &dropped)
{
    unsigned n = _ctx.opts().maxTargets;

    // Drain any still-queued or deferred blocks to the boundary.
    while (!_exploreQ.empty()) {
        BlockId b = _exploreQ.front();
        _exploreQ.pop_front();
        if (!_ctx.owned(b))
            _boundary.push_back(b);
    }
    for (BlockId b : _deferred)
        if (!_ctx.owned(b))
            _boundary.push_back(b);
    _deferred.clear();

    // The largest feasible prefix wins; ties favor longer prefixes
    // seen earlier (reconvergence can shrink targets back below N).
    std::vector<BlockId> best{_seed};
    for (size_t k = 1; k <= _order.size(); ++k) {
        std::vector<BlockId> set = cleanup(k);
        if (set.size() <= best.size())
            continue;
        auto targets = computeTargets(_ctx, _seed, set);
        if (targets.size() <= n)
            best = std::move(set);
    }

    // Release ownership of dropped blocks.
    std::vector<bool> kept(_ctx.func().blocks.size(), false);
    for (BlockId b : best)
        kept[b] = true;
    for (BlockId b : _order) {
        if (!kept[b]) {
            _ctx.setOwner(b, -1);
            dropped.push_back(b);
        }
    }
    return best;
}

} // namespace tasksel
} // namespace msc
