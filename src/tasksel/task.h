/**
 * @file
 * Tasks and task partitions — the central data structures of the
 * paper's contribution.
 *
 * A task is a connected, single-entry subgraph of a function's CFG
 * (§2.2). A TaskPartition assigns every basic block of a program to
 * exactly one task and carries the per-task metadata the Multiscalar
 * hardware consumes: the exposed successor-target list (bounded by the
 * prediction hardware arity N), the register create mask, safe
 * forward points for register communication, and call-inclusion marks
 * from the task-size heuristic.
 */

#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cfg/liveness.h"
#include "ir/program.h"

namespace msc {
namespace tasksel {

/** Identifier of a task within a TaskPartition. */
using TaskId = uint32_t;
constexpr TaskId INVALID_TASK = 0xffffffffu;

/** Kind of an exposed successor target of a task. */
enum class TargetKind : uint8_t
{
    Block,      ///< Control continues at a specific task entry block.
    Return,     ///< Task ends in Ret; successor via return-address stack.
};

/** One exposed successor target. */
struct TaskTarget
{
    TargetKind kind = TargetKind::Block;
    ir::BlockRef block;     ///< Valid for kind == Block.

    friend bool
    operator==(const TaskTarget &a, const TaskTarget &b)
    {
        return a.kind == b.kind && a.block == b.block;
    }
};

/** One static task. */
struct Task
{
    TaskId id = INVALID_TASK;
    ir::FuncId func = ir::INVALID_FUNC;
    ir::BlockId entry = ir::INVALID_BLOCK;

    /** All member blocks; entry first. */
    std::vector<ir::BlockId> blocks;

    /**
     * Exposed successor targets, deduplicated, in discovery order.
     * The inter-task predictor indexes into this list; when its size
     * exceeds the hardware arity N, targets beyond the first N cannot
     * be predicted and always mispredict (§2.4.2).
     */
    std::vector<TaskTarget> targets;

    /** Registers this task may write (create mask), after
     *  dead-register pruning. */
    cfg::RegSet createMask = 0;

    /** Static instruction count over member blocks. */
    uint32_t staticInsts = 0;

    bool
    contains(ir::BlockId b) const
    {
        for (ir::BlockId x : blocks)
            if (x == b)
                return true;
        return false;
    }

    /** Index of @p t in the target list; -1 when absent. */
    int
    targetIndex(const TaskTarget &t) const
    {
        for (size_t i = 0; i < targets.size(); ++i)
            if (targets[i] == t)
                return int(i);
        return -1;
    }
};

/**
 * A complete partition of a program into tasks, plus the compiler
 * metadata the simulator consumes.
 */
struct TaskPartition
{
    const ir::Program *prog = nullptr;

    std::vector<Task> tasks;

    /** taskOf[func][block]: owning task of every block. */
    std::vector<std::vector<TaskId>> taskOf;

    /**
     * Call sites included within tasks by the task-size heuristic:
     * blocks whose terminating Call does NOT end the dynamic task
     * (the callee's instructions execute as part of the caller task).
     */
    std::unordered_set<ir::BlockRef> includedCalls;

    /**
     * fwdSafe[func][block][i]: register set instruction i may forward
     * immediately after executing (no later def of those registers is
     * statically possible within the task). Registers in the create
     * mask without a safe forward point are released at task end.
     */
    std::vector<std::vector<std::vector<cfg::RegSet>>> fwdSafe;

    TaskId
    taskIdOf(ir::FuncId f, ir::BlockId b) const
    {
        return taskOf[f][b];
    }

    TaskId taskIdOf(ir::BlockRef r) const { return taskOf[r.func][r.block]; }

    const Task &
    taskOfBlock(ir::FuncId f, ir::BlockId b) const
    {
        return tasks[taskOf[f][b]];
    }

    bool
    callIncluded(ir::BlockRef b) const
    {
        return includedCalls.count(b) != 0;
    }

    /** Number of tasks. */
    size_t size() const { return tasks.size(); }

    /** Average static instructions per task. */
    double
    avgStaticSize() const
    {
        if (tasks.empty())
            return 0;
        uint64_t n = 0;
        for (const auto &t : tasks)
            n += t.staticInsts;
        return double(n) / double(tasks.size());
    }
};

} // namespace tasksel
} // namespace msc
