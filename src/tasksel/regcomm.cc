#include "tasksel/regcomm.h"

#include <vector>

#include "cfg/liveness.h"

namespace msc {
namespace tasksel {

using namespace ir;
using cfg::RegSet;

void
computeRegisterCommunication(TaskPartition &part,
                             const SelectionOptions &opts)
{
    const Program &prog = *part.prog;

    // fwdSafe holds a register set per instruction: the defs of that
    // instruction which may be forwarded as soon as it executes.
    part.fwdSafe.resize(prog.functions.size());
    for (const auto &f : prog.functions) {
        part.fwdSafe[f.id].resize(f.blocks.size());
        for (const auto &b : f.blocks)
            part.fwdSafe[f.id][b.id].assign(b.insts.size(), 0);
    }

    // Per-function liveness for dead-register pruning.
    std::vector<cfg::Liveness> live;
    live.reserve(prog.functions.size());
    for (const auto &f : prog.functions)
        live.emplace_back(f);

    std::vector<RegId> scratch;

    for (auto &task : part.tasks) {
        const Function &f = prog.functions[task.func];

        // Per-block defined sets within this task.
        std::vector<RegSet> def_in_block(f.blocks.size(), 0);
        std::vector<bool> in_task(f.blocks.size(), false);
        for (BlockId b : task.blocks)
            in_task[b] = true;

        RegSet create = 0;
        for (BlockId b : task.blocks) {
            RegSet d = 0;
            for (const auto &inst : f.blocks[b].insts) {
                if (inst.op == Opcode::Call &&
                    !part.callIncluded({task.func, b})) {
                    // A task ending in a non-included call does not
                    // produce the ABI clobber values: the callee's own
                    // tasks carry them in their create masks.
                    continue;
                }
                scratch.clear();
                inst.defs(scratch);
                for (RegId r : scratch)
                    d |= cfg::regBit(r);
            }
            def_in_block[b] = d;
            create |= d;
        }

        // mayDefAfter[b]: registers possibly defined in blocks that
        // can execute after b within the same dynamic task instance
        // (successors inside the task, excluding re-entry at the task
        // entry). Tasks are internally acyclic by construction, but a
        // bounded fixpoint keeps this robust regardless.
        std::vector<RegSet> may_after(f.blocks.size(), 0);
        for (bool changed = true; changed;) {
            changed = false;
            for (BlockId b : task.blocks) {
                RegSet v = 0;
                for (BlockId s : f.blocks[b].succs) {
                    if (in_task[s] && s != task.entry)
                        v |= def_in_block[s] | may_after[s];
                }
                if (v != may_after[b]) {
                    may_after[b] = v;
                    changed = true;
                }
            }
        }

        // Safe forward points: walk each block backwards, tracking
        // registers defined later in the block.
        for (BlockId b : task.blocks) {
            const BasicBlock &bb = f.blocks[b];
            RegSet later = may_after[b];
            for (size_t i = bb.insts.size(); i-- > 0;) {
                const auto &inst = bb.insts[i];
                if (inst.op == Opcode::Call) {
                    // Included calls release their clobber values at
                    // task end (the callee produces them piecemeal);
                    // non-included calls produce nothing here at all.
                    part.fwdSafe[task.func][b][i] = 0;
                    if (part.callIncluded({task.func, b})) {
                        scratch.clear();
                        inst.defs(scratch);
                        for (RegId r : scratch)
                            later |= cfg::regBit(r);
                    }
                    continue;
                }
                scratch.clear();
                inst.defs(scratch);
                RegSet mine = 0;
                for (RegId r : scratch)
                    mine |= cfg::regBit(r);
                part.fwdSafe[task.func][b][i] = mine & ~later;
                later |= mine;
            }
        }

        // Dead-register pruning: only registers live out of some
        // member block can be consumed downstream.
        if (opts.deadRegElim) {
            RegSet live_union = 0;
            for (BlockId b : task.blocks)
                live_union |= live[task.func].liveOut(b);
            create &= live_union;
            // Forward bits for pruned registers are pointless but
            // harmless; mask them for cleanliness.
            for (BlockId b : task.blocks) {
                for (auto &m : part.fwdSafe[task.func][b])
                    m &= create;
            }
        }

        task.createMask = create;
    }
}

} // namespace tasksel
} // namespace msc
