/**
 * @file
 * Task-selection strategy and tuning knobs.
 */

#pragma once

#include <cstdint>

namespace msc {
namespace tasksel {

/** Which heuristic stack partitions the program (§3, §4.1). */
enum class Strategy : uint8_t
{
    /** One task per basic block (the paper's baseline). */
    BasicBlock,

    /** Control-flow heuristic: multi-block tasks with at most N
     *  exposed targets, exploiting reconverging paths (§3.3). */
    ControlFlow,

    /** Data-dependence heuristic applied on top of the control-flow
     *  heuristic: profiled def-use dependences steer exploration so
     *  dependences land inside tasks (§3.4). */
    DataDependence,
};

/** Returns a short printable name for @p s. */
const char *strategyName(Strategy s);

/** All knobs of the selection pipeline. */
struct SelectionOptions
{
    Strategy strategy = Strategy::DataDependence;

    /** Hardware successor-tracking arity (prediction table targets). */
    unsigned maxTargets = 4;

    /** Apply the task-size heuristic transforms (§3.2): loop
     *  unrolling and call inclusion. */
    bool taskSizeHeuristic = false;

    /** Loops with bodies smaller than this many static instructions
     *  are unrolled to roughly this size (§3.2, LOOP_THRESH). */
    unsigned loopThresh = 30;

    /** Calls to functions averaging fewer dynamic instructions than
     *  this are included within tasks (§3.2, CALL_THRESH). */
    unsigned callThresh = 30;

    /** Hoist induction-variable updates to loop tops (§3.2) so later
     *  iterations receive IV values without delay. */
    bool hoistInductionVars = true;

    /** Prune dead registers from create masks (dead-register
     *  analysis, §4.2). */
    bool deadRegElim = true;

    /**
     * Data-dependence strategy: terminate a task's growth as soon as
     * a dependence's consumer joins (§4.3.2 observes DD tasks are
     * smaller than CF tasks for this reason). Off by default: the
     * aggressive cut helps codes the control-flow heuristic overgrows
     * (e.g. worklist code) but fragments loop bodies; the ablation
     * bench sweeps it.
     */
    bool ddTerminateAtDependence = false;

    /** Safety bound on blocks explored per task. */
    unsigned maxTaskBlocks = 64;

    /** Cap on profiled def-use dependences considered per function
     *  (highest frequency first). */
    unsigned maxDepsPerFunction = 4096;
};

} // namespace tasksel
} // namespace msc
