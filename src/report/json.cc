#include "report/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace msc {
namespace report {

namespace {

[[noreturn]] void
fail(const std::string &what)
{
    throw std::runtime_error("json: " + what);
}

} // anonymous namespace

Json::Json(uint64_t v) : _kind(Kind::Int)
{
    if (v > uint64_t(std::numeric_limits<int64_t>::max())) {
        _uintHigh = true;
        _int = int64_t(v);      // two's-complement bit pattern
    } else {
        _int = int64_t(v);
    }
}

Json::Json(double v) : _kind(Kind::Double), _dbl(v)
{
    if (!std::isfinite(v))
        fail("non-finite number");
}

bool
Json::asBool() const
{
    if (_kind != Kind::Bool)
        fail("not a bool");
    return _bool;
}

int64_t
Json::asInt() const
{
    if (_kind != Kind::Int || _uintHigh)
        fail("not an int64");
    return _int;
}

uint64_t
Json::asUInt() const
{
    if (_kind != Kind::Int || (!_uintHigh && _int < 0))
        fail("not a uint64");
    return uint64_t(_int);
}

double
Json::asDouble() const
{
    if (_kind == Kind::Double)
        return _dbl;
    if (_kind == Kind::Int)
        return _uintHigh ? double(uint64_t(_int)) : double(_int);
    fail("not a number");
}

const std::string &
Json::asString() const
{
    if (_kind != Kind::String)
        fail("not a string");
    return _str;
}

void
Json::push(Json v)
{
    if (_kind == Kind::Null)
        _kind = Kind::Array;
    if (_kind != Kind::Array)
        fail("push on non-array");
    _arr.push_back(std::move(v));
}

size_t
Json::size() const
{
    if (_kind == Kind::Array)
        return _arr.size();
    if (_kind == Kind::Object)
        return _obj.size();
    fail("size of non-container");
}

const Json &
Json::at(size_t i) const
{
    if (_kind != Kind::Array || i >= _arr.size())
        fail("bad array index");
    return _arr[i];
}

Json &
Json::operator[](const std::string &key)
{
    if (_kind == Kind::Null)
        _kind = Kind::Object;
    if (_kind != Kind::Object)
        fail("operator[] on non-object");
    for (auto &kv : _obj)
        if (kv.first == key)
            return kv.second;
    _obj.emplace_back(key, Json());
    return _obj.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    if (_kind != Kind::Object)
        return nullptr;
    for (const auto &kv : _obj)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

const Json &
Json::get(const std::string &key) const
{
    const Json *v = find(key);
    if (!v)
        fail("missing member \"" + key + "\"");
    return *v;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    if (_kind != Kind::Object)
        fail("members of non-object");
    return _obj;
}

bool
operator==(const Json &a, const Json &b)
{
    if (a._kind != b._kind)
        return false;
    switch (a._kind) {
      case Json::Kind::Null:   return true;
      case Json::Kind::Bool:   return a._bool == b._bool;
      case Json::Kind::Int:
        return a._int == b._int && a._uintHigh == b._uintHigh;
      case Json::Kind::Double: return a._dbl == b._dbl;
      case Json::Kind::String: return a._str == b._str;
      case Json::Kind::Array:  return a._arr == b._arr;
      case Json::Kind::Object: return a._obj == b._obj;
    }
    return false;
}

namespace {

void
escapeTo(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** Shortest round-trip representation (std::to_chars), with a ".0"
 *  suffix when the result would read back as an integer — keeping the
 *  Int/Double distinction stable across dump/parse cycles. */
void
doubleTo(std::string &out, double v)
{
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    std::string s(buf, res.ptr);
    if (s.find_first_of(".eE") == std::string::npos)
        s += ".0";
    out += s;
}

} // anonymous namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent > 0) {
            out += '\n';
            out.append(size_t(indent) * size_t(d), ' ');
        }
    };
    switch (_kind) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += _bool ? "true" : "false";
        break;
      case Kind::Int: {
        char buf[24];
        std::to_chars_result res = _uintHigh
            ? std::to_chars(buf, buf + sizeof(buf), uint64_t(_int))
            : std::to_chars(buf, buf + sizeof(buf), _int);
        out.append(buf, res.ptr);
        break;
      }
      case Kind::Double:
        doubleTo(out, _dbl);
        break;
      case Kind::String:
        escapeTo(out, _str);
        break;
      case Kind::Array:
        if (_arr.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (size_t i = 0; i < _arr.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            _arr[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Kind::Object:
        if (_obj.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (size_t i = 0; i < _obj.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            escapeTo(out, _obj[i].first);
            out += indent > 0 ? ": " : ":";
            _obj[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

namespace {

/** Recursive-descent parser over a string view.
 *
 *  Container nesting is capped: the parser recurses once per nesting
 *  level, so unbounded depth on attacker-supplied input would overflow
 *  the stack long before exhausting memory. */
class Parser
{
  public:
    static constexpr int MAX_DEPTH = 200;

    explicit Parser(const std::string &s) : _s(s) {}

    Json
    document()
    {
        Json v = value();
        skipWs();
        if (_pos != _s.size())
            err("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    err(const std::string &what)
    {
        fail(what + " at offset " + std::to_string(_pos));
    }

    void
    skipWs()
    {
        while (_pos < _s.size() &&
               (_s[_pos] == ' ' || _s[_pos] == '\t' || _s[_pos] == '\n' ||
                _s[_pos] == '\r'))
            ++_pos;
    }

    char
    peek()
    {
        if (_pos >= _s.size())
            err("unexpected end of input");
        return _s[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            err(std::string("expected '") + c + "'");
        ++_pos;
    }

    bool
    consume(const char *lit)
    {
        size_t n = std::char_traits<char>::length(lit);
        if (_s.compare(_pos, n, lit) == 0) {
            _pos += n;
            return true;
        }
        return false;
    }

    Json
    value()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{':
          case '[': {
            if (_depth >= MAX_DEPTH)
                err("nesting deeper than " + std::to_string(MAX_DEPTH));
            ++_depth;
            Json v = c == '{' ? object() : array();
            --_depth;
            return v;
          }
          case '"': return Json(string());
          case 't':
            if (consume("true"))
                return Json(true);
            err("bad literal");
          case 'f':
            if (consume("false"))
                return Json(false);
            err("bad literal");
          case 'n':
            if (consume("null"))
                return Json();
            err("bad literal");
          default:  return number();
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (_pos >= _s.size())
                err("unterminated string");
            char c = _s[_pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_pos >= _s.size())
                err("bad escape");
            char e = _s[_pos++];
            switch (e) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'n':  out += '\n'; break;
              case 't':  out += '\t'; break;
              case 'r':  out += '\r'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'u': {
                if (_pos + 4 > _s.size())
                    err("bad \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = _s[_pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= unsigned(h - 'A' + 10);
                    else
                        err("bad \\u escape");
                }
                // BMP code point to UTF-8 (we never emit surrogate
                // pairs; reject them rather than mis-decode).
                if (cp >= 0xd800 && cp <= 0xdfff)
                    err("surrogate \\u escape unsupported");
                if (cp < 0x80) {
                    out += char(cp);
                } else if (cp < 0x800) {
                    out += char(0xc0 | (cp >> 6));
                    out += char(0x80 | (cp & 0x3f));
                } else {
                    out += char(0xe0 | (cp >> 12));
                    out += char(0x80 | ((cp >> 6) & 0x3f));
                    out += char(0x80 | (cp & 0x3f));
                }
                break;
              }
              default: err("bad escape");
            }
        }
    }

    Json
    number()
    {
        size_t start = _pos;
        if (peek() == '-')
            ++_pos;
        while (_pos < _s.size() &&
               ((_s[_pos] >= '0' && _s[_pos] <= '9') || _s[_pos] == '.' ||
                _s[_pos] == 'e' || _s[_pos] == 'E' || _s[_pos] == '+' ||
                _s[_pos] == '-'))
            ++_pos;
        std::string tok = _s.substr(start, _pos - start);
        if (tok.empty() || tok == "-")
            err("bad number");
        bool integral =
            tok.find_first_of(".eE") == std::string::npos;
        if (integral) {
            if (tok[0] == '-') {
                int64_t v = 0;
                auto r = std::from_chars(tok.data(),
                                         tok.data() + tok.size(), v);
                if (r.ec == std::errc() && r.ptr == tok.data() + tok.size())
                    return Json(v);
            } else {
                uint64_t v = 0;
                auto r = std::from_chars(tok.data(),
                                         tok.data() + tok.size(), v);
                if (r.ec == std::errc() && r.ptr == tok.data() + tok.size())
                    return Json(v);
            }
            // Out-of-range integer literal: fall through to double.
        }
        double d = 0;
        auto r = std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (r.ec != std::errc() || r.ptr != tok.data() + tok.size())
            err("bad number \"" + tok + "\"");
        return Json(d);
    }

    Json
    array()
    {
        expect('[');
        Json a = Json::array();
        skipWs();
        if (peek() == ']') {
            ++_pos;
            return a;
        }
        while (true) {
            a.push(value());
            skipWs();
            char c = peek();
            ++_pos;
            if (c == ']')
                return a;
            if (c != ',')
                err("expected ',' or ']'");
        }
    }

    Json
    object()
    {
        expect('{');
        Json o = Json::object();
        skipWs();
        if (peek() == '}') {
            ++_pos;
            return o;
        }
        while (true) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            o[key] = value();
            skipWs();
            char c = peek();
            ++_pos;
            if (c == '}')
                return o;
            if (c != ',')
                err("expected ',' or '}'");
        }
    }

    const std::string &_s;
    size_t _pos = 0;
    int _depth = 0;
};

} // anonymous namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).document();
}

} // namespace report
} // namespace msc
