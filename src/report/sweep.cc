#include "report/sweep.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace msc {
namespace report {

SweepRunner::SweepRunner(unsigned jobs) : _jobs(jobs)
{
    if (_jobs == 0) {
        _jobs = std::thread::hardware_concurrency();
        if (_jobs == 0)
            _jobs = 1;
    }
}

std::vector<RunRecord>
SweepRunner::run(const std::vector<RunSpec> &specs,
                 const std::function<void(size_t, size_t)> &progress) const
{
    std::vector<RunRecord> records(specs.size());
    if (specs.empty())
        return records;

    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::exception_ptr first_error;
    std::mutex error_mu;

    auto worker = [&]() {
        while (true) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= specs.size())
                return;
            try {
                records[i] = runSpec(specs[i]);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error)
                    first_error = std::current_exception();
            }
            size_t d = done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (progress)
                progress(d, specs.size());
        }
    };

    unsigned n = _jobs;
    if (size_t(n) > specs.size())
        n = unsigned(specs.size());
    if (n <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (unsigned t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    if (first_error)
        std::rethrow_exception(first_error);
    return records;
}

} // namespace report
} // namespace msc
