#include "report/sweep.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace msc {
namespace report {

SweepRunner::SweepRunner(unsigned jobs) : _jobs(jobs)
{
    if (_jobs == 0) {
        _jobs = std::thread::hardware_concurrency();
        if (_jobs == 0)
            _jobs = 1;
    }
}

void
SweepRunner::forEach(size_t count,
                     const std::function<void(size_t)> &fn,
                     const std::function<void(size_t, size_t)> &progress)
    const
{
    if (count == 0)
        return;

    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::exception_ptr first_error;
    std::mutex error_mu;

    auto worker = [&]() {
        while (true) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error)
                    first_error = std::current_exception();
            }
            size_t d = done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (progress)
                progress(d, count);
        }
    };

    unsigned n = _jobs;
    if (size_t(n) > count)
        n = unsigned(count);
    if (n <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (unsigned t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<RunRecord>
SweepRunner::run(const std::vector<RunSpec> &specs,
                 pipeline::SessionPool &pool,
                 const std::function<void(size_t, size_t)> &progress) const
{
    std::vector<RunRecord> records(specs.size());
    forEach(specs.size(),
            [&](size_t i) {
                const RunSpec &spec = specs[i];
                // Fault isolation: one cell's failure (budget
                // exhaustion, bad workload, internal error) becomes
                // that cell's error record; every other cell still
                // runs and the caller gets a complete, partial-marked
                // record list (report::sweepExitCode / sweepToJson).
                try {
                    auto session = pool.session(sessionKey(spec), [&] {
                        return workloads::buildWorkload(spec.workload,
                                                        spec.scale);
                    });
                    records[i] = runSpec(spec, *session);
                } catch (const runtime::StageError &e) {
                    records[i].spec = spec;
                    records[i].error = e.info();
                } catch (const std::exception &e) {
                    records[i].spec = spec;
                    records[i].error.kind = runtime::ErrorKind::Internal;
                    records[i].error.detail = e.what();
                }
                if (!records[i].ok() &&
                    records[i].error.workload.empty())
                    records[i].error.workload = spec.workload;
            },
            progress);
    return records;
}

std::vector<RunRecord>
SweepRunner::run(const std::vector<RunSpec> &specs,
                 const std::function<void(size_t, size_t)> &progress) const
{
    pipeline::SessionPool pool;
    return run(specs, pool, progress);
}

} // namespace report
} // namespace msc
