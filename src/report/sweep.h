/**
 * @file
 * Parallel sweep execution.
 *
 * A sweep is a list of independent RunSpecs routed through a
 * pipeline::SessionPool: specs sharing a workload share one Session,
 * so the frontend (transform/profile/select/trace) of each distinct
 * option set is computed once no matter how many hardware configs fan
 * out from it. Artifacts are immutable and the library keeps no other
 * mutable global state, so grid points execute concurrently without
 * coordination. Results are returned in *input* order regardless of
 * completion order, which — together with the no-wall-clock rule in
 * record.h — makes sweep output deterministic for any worker count
 * and any cache state.
 */

#pragma once

#include <functional>
#include <vector>

#include "pipeline/pool.h"
#include "report/record.h"

namespace msc {
namespace report {

/** Fixed-size worker pool running RunSpecs. */
class SweepRunner
{
  public:
    /** @p jobs worker threads; 0 picks the hardware concurrency. */
    explicit SweepRunner(unsigned jobs = 0);

    unsigned jobs() const { return _jobs; }

    /**
     * Executes every spec and returns records in input order.
     * Specs are handed to workers in index order, so with jobs == 1
     * execution order equals input order (the serial baseline).
     *
     * Fault-isolating: a cell that throws (unknown workload, budget
     * exhaustion, cancellation, internal error) yields a record with
     * RunRecord::error filled and `workload` attributed — the rest of
     * the sweep completes. Nothing escapes run(); callers classify
     * the outcome with report::sweepExitCode(records).
     *
     * Routes through a private SessionPool; use the overload below to
     * share sessions (and their cache counters) with the caller.
     *
     * @p progress, when set, is invoked from worker threads (caller
     * must tolerate concurrent calls) after each completed run with
     * (completed_count, total).
     */
    std::vector<RunRecord>
    run(const std::vector<RunSpec> &specs,
        const std::function<void(size_t, size_t)> &progress = {}) const;

    /**
     * Same, but shares frontends through the caller's @p pool — the
     * caller can inspect pool.stats() afterwards or reuse the warm
     * pool for a follow-up sweep.
     */
    std::vector<RunRecord>
    run(const std::vector<RunSpec> &specs, pipeline::SessionPool &pool,
        const std::function<void(size_t, size_t)> &progress = {}) const;

    /**
     * Generic fan-out over an index range: invokes @p fn(i) for every
     * i in [0, count) on the worker pool, same ordering/exception
     * semantics as run(). The fuzz campaign and other index-addressed
     * workloads use this instead of building throwaway RunSpecs.
     */
    void
    forEach(size_t count, const std::function<void(size_t)> &fn,
            const std::function<void(size_t, size_t)> &progress = {})
        const;

  private:
    unsigned _jobs;
};

} // namespace report
} // namespace msc
