/**
 * @file
 * Structured experiment records and their serialized forms.
 *
 * A RunSpec names one point of a sweep grid (workload + full
 * pipeline::StageOptions); a RunRecord is the flattened, owning result
 * of executing it — every metric a paper artifact needs, but not the
 * program or partition themselves, so thousands of records are cheap
 * to hold. `sweepToJson` / `sweepToCsv` serialize a record list into
 * the versioned schema documented field-by-field in docs/METRICS.md.
 *
 * Determinism contract: serialization depends only on the records —
 * no timestamps, hostnames or wall-clock — so a sweep emitted with
 * `--jobs 8` is byte-identical to `--jobs 1`, and a warm-cache run is
 * byte-identical to a cold one.
 */

#pragma once

#include <string>
#include <vector>

#include "arch/stats.h"
#include "pipeline/session.h"
#include "report/json.h"
#include "runtime/error.h"
#include "workloads/workload.h"

namespace msc {
namespace report {

/** Schema version emitted as `schema_version` (see docs/METRICS.md
 *  for the compatibility rule). v2 adds per-run `status`/`error` and
 *  the top-level `partial` marker (docs/ROBUSTNESS.md). */
constexpr int SCHEMA_VERSION = 2;

/** Schema identifier emitted as `schema`. */
constexpr const char *SCHEMA_NAME = "msc.sweep";

/** One grid point: everything needed to run a pipeline once. */
struct RunSpec
{
    /** Unique key within a sweep, e.g. "go/dd/8pu/ooo". */
    std::string id;

    /** Workload registry name (or the stem of a .mir file). */
    std::string workload;

    workloads::Scale scale = workloads::Scale::Full;

    pipeline::StageOptions opts;
};

/**
 * Builds the standard paper-configuration spec (the `runOne` shape
 * every bench uses): @p strategy tasks on @p pus PUs. The id is
 * derived as "workload/strategy/pusNpu/ooo|ino[-size][-tN]".
 */
RunSpec makeSpec(const std::string &workload, tasksel::Strategy strategy,
                 unsigned pus, bool out_of_order,
                 workloads::Scale scale, uint64_t trace_insts,
                 bool size_heur = false, unsigned max_targets = 4);

/** Flattened result of executing one RunSpec. */
struct RunRecord
{
    RunSpec spec;
    arch::SimStats stats;

    /// @name Partition shape (from the artifacts, sans the partition).
    /// @{
    uint64_t staticTasks = 0;
    double avgStaticInsts = 0;
    uint64_t includedCalls = 0;
    unsigned loopsUnrolled = 0;
    unsigned ivsHoisted = 0;
    uint64_t dynTasksCut = 0;
    /// @}

    /** Failure captured by the fault-isolating sweep (kind == None
     *  for a successful run; then stats/shape above are meaningless
     *  and the record serializes with status "error", no metrics). */
    runtime::StageErrorInfo error;

    bool ok() const { return error.kind == runtime::ErrorKind::None; }
};

/**
 * The SessionPool key for @p spec: specs agreeing on it run the same
 * input program, so they share one Session (and thus every frontend
 * artifact their options agree on).
 */
std::string sessionKey(const RunSpec &spec);

/** Executes @p spec against @p session (which must hold the workload
 *  @p spec names) and flattens the result. Thread-safe; frontend
 *  artifacts shared with every other spec run on the session. */
RunRecord runSpec(const RunSpec &spec, pipeline::Session &session);

/** Flattens already-computed stage artifacts into a record (the
 *  runSpec shape). For callers that need the artifacts themselves
 *  too — e.g. the mscd trace handler, which also serializes the
 *  partition's task profile. */
RunRecord recordFromResults(const RunSpec &spec,
                            const pipeline::StageResults &results);

/** Executes @p spec on a throwaway Session (builds the workload, runs
 *  the full pipeline) and flattens the result. Thread-safe. */
RunRecord runSpec(const RunSpec &spec);

/** Serializes one record to the schema's per-run object. */
Json runToJson(const RunRecord &r);

/** Serializes a StageErrorInfo to the v2 `error` object: kind id,
 *  stage, workload, detail, budget_exhausted, and (when nonzero)
 *  limit/used. Deterministic kinds produce byte-identical objects
 *  across runs (runtime/error.h). */
Json errorToJson(const runtime::StageErrorInfo &e);

/** Serializes a whole sweep to the versioned top-level document.
 *  With any error records present, the document carries
 *  `partial: true` and those runs have `status: "error"`. */
Json sweepToJson(const std::vector<RunRecord> &records);

/**
 * Assembles the versioned top-level `msc.sweep` document from
 * already-serialized per-run objects (the `runs` array entries).
 * sweepToJson is exactly this over runToJson; the mscd smoke test
 * reassembles streamed cell frames through the same function, so
 * byte-identity between a daemon-served sweep and `msctool sweep
 * --json` holds by construction. `partial`/`errors` are derived from
 * each run's `status` field.
 */
Json sweepDocFromRuns(std::vector<Json> runs);

/** Serializes a whole sweep as CSV (header + one row per run), with
 *  the same fields flattened to dotted column names. The header is
 *  the union of all rows' columns in first-seen order, so mixed
 *  ok/error sweeps stay rectangular (missing cells are empty). */
std::string sweepToCsv(const std::vector<RunRecord> &records);

/// @name Sweep process exit codes (documented in msctool --help).
/// @{
constexpr int EXIT_SWEEP_CLEAN = 0;    ///< Every cell succeeded.
constexpr int EXIT_SWEEP_FAILED = 1;   ///< Every cell failed.
constexpr int EXIT_SWEEP_PARTIAL = 3;  ///< Mixed: valid partial output.
/// @}

/** Maps a record list to the exit codes above (empty sweeps are
 *  clean). */
int sweepExitCode(const std::vector<RunRecord> &records);

/** Stable name for a sweep exit code — "ok" (0), "failed" (1),
 *  "partial" (3) — as emitted in mscd summary frames. The daemon
 *  derives its summary `status` from sweepExitCode through this
 *  mapping, so daemon frames and `msctool sweep` exit codes cannot
 *  disagree (regression-pinned by tests/test_mscd.cc). Unknown codes
 *  return "?". */
const char *sweepStatusName(int exit_code);

/** Writes @p content to @p path; throws runtime::StageError
 *  (ErrorKind::Io) on failure. */
void writeFile(const std::string &path, const std::string &content);

/** Short name for @p s as used in ids and the schema ("bb", "cf",
 *  "dd"). */
const char *strategyId(tasksel::Strategy s);

/** Parses "bb" / "cf" / "dd"; throws runtime::StageError
 *  (ErrorKind::InvalidInput) on anything else. */
tasksel::Strategy strategyFromId(const std::string &id);

} // namespace report
} // namespace msc
