/**
 * @file
 * Structured experiment records and their serialized forms.
 *
 * A RunSpec names one point of a sweep grid (workload + full
 * sim::RunOptions); a RunRecord is the flattened, owning result of
 * executing it — every metric a paper artifact needs, but not the
 * program or partition themselves, so thousands of records are cheap
 * to hold. `sweepToJson` / `sweepToCsv` serialize a record list into
 * the versioned schema documented field-by-field in docs/METRICS.md.
 *
 * Determinism contract: serialization depends only on the records —
 * no timestamps, hostnames or wall-clock — so a sweep emitted with
 * `--jobs 8` is byte-identical to `--jobs 1`.
 */

#pragma once

#include <string>
#include <vector>

#include "report/json.h"
#include "sim/runner.h"
#include "workloads/workload.h"

namespace msc {
namespace report {

/** Schema version emitted as `schema_version` (see docs/METRICS.md
 *  for the compatibility rule). */
constexpr int SCHEMA_VERSION = 1;

/** Schema identifier emitted as `schema`. */
constexpr const char *SCHEMA_NAME = "msc.sweep";

/** One grid point: everything needed to run a pipeline once. */
struct RunSpec
{
    /** Unique key within a sweep, e.g. "go/dd/8pu/ooo". */
    std::string id;

    /** Workload registry name (or the stem of a .mir file). */
    std::string workload;

    workloads::Scale scale = workloads::Scale::Full;

    sim::RunOptions opts;
};

/**
 * Builds the standard paper-configuration spec (the `runOne` shape
 * every bench uses): @p strategy tasks on @p pus PUs. The id is
 * derived as "workload/strategy/pusNpu/ooo|ino[-size][-tN]".
 */
RunSpec makeSpec(const std::string &workload, tasksel::Strategy strategy,
                 unsigned pus, bool out_of_order,
                 workloads::Scale scale, uint64_t trace_insts,
                 bool size_heur = false, unsigned max_targets = 4);

/** Flattened result of executing one RunSpec. */
struct RunRecord
{
    RunSpec spec;
    arch::SimStats stats;

    /// @name Partition shape (from RunResult, sans the partition).
    /// @{
    uint64_t staticTasks = 0;
    double avgStaticInsts = 0;
    uint64_t includedCalls = 0;
    unsigned loopsUnrolled = 0;
    unsigned ivsHoisted = 0;
    uint64_t dynTasksCut = 0;
    /// @}
};

/** Executes @p spec (builds the workload, runs the full pipeline) and
 *  flattens the result. Thread-safe. */
RunRecord runSpec(const RunSpec &spec);

/** Serializes one record to the schema's per-run object. */
Json runToJson(const RunRecord &r);

/** Serializes a whole sweep to the versioned top-level document. */
Json sweepToJson(const std::vector<RunRecord> &records);

/** Serializes a whole sweep as CSV (header + one row per run), with
 *  the same fields flattened to dotted column names. */
std::string sweepToCsv(const std::vector<RunRecord> &records);

/** Writes @p content to @p path; throws std::runtime_error on I/O
 *  failure. */
void writeFile(const std::string &path, const std::string &content);

/** Short name for @p s as used in ids and the schema ("bb", "cf",
 *  "dd"). */
const char *strategyId(tasksel::Strategy s);

/** Parses "bb" / "cf" / "dd"; throws on anything else. */
tasksel::Strategy strategyFromId(const std::string &id);

} // namespace report
} // namespace msc
