#include "report/record.h"

#include <fstream>
#include <stdexcept>

#include "arch/stats.h"

namespace msc {
namespace report {

const char *
strategyId(tasksel::Strategy s)
{
    switch (s) {
      case tasksel::Strategy::BasicBlock:     return "bb";
      case tasksel::Strategy::ControlFlow:    return "cf";
      case tasksel::Strategy::DataDependence: return "dd";
    }
    return "?";
}

tasksel::Strategy
strategyFromId(const std::string &id)
{
    if (id == "bb")
        return tasksel::Strategy::BasicBlock;
    if (id == "cf")
        return tasksel::Strategy::ControlFlow;
    if (id == "dd")
        return tasksel::Strategy::DataDependence;
    throw runtime::StageError(runtime::ErrorKind::InvalidInput, "cli",
                              "unknown strategy \"" + id +
                                  "\" (expected bb|cf|dd)");
}

RunSpec
makeSpec(const std::string &workload, tasksel::Strategy strategy,
         unsigned pus, bool out_of_order, workloads::Scale scale,
         uint64_t trace_insts, bool size_heur, unsigned max_targets)
{
    RunSpec s;
    s.workload = workload;
    s.scale = scale;
    tasksel::SelectionOptions sel;
    sel.strategy = strategy;
    sel.taskSizeHeuristic = size_heur;
    sel.maxTargets = max_targets;
    s.opts = pipeline::StageOptions::fromSelection(sel);
    s.opts.config = arch::SimConfig::paperConfig(pus, out_of_order);
    s.opts.config.maxTargets = max_targets;
    s.opts.trace.traceInsts = trace_insts;

    s.id = workload;
    s.id += '/';
    s.id += strategyId(strategy);
    s.id += '/';
    s.id += std::to_string(pus) + "pu/";
    s.id += out_of_order ? "ooo" : "ino";
    if (size_heur)
        s.id += "-size";
    if (max_targets != 4)
        s.id += "-t" + std::to_string(max_targets);
    return s;
}

std::string
sessionKey(const RunSpec &spec)
{
    return spec.workload +
           (spec.scale == workloads::Scale::Small ? "@small" : "@full");
}

RunRecord
recordFromResults(const RunSpec &spec,
                  const pipeline::StageResults &a)
{
    RunRecord r;
    r.spec = spec;
    r.stats = a.sim->stats;
    r.staticTasks = a.partition->partition.size();
    r.avgStaticInsts = a.partition->partition.avgStaticSize();
    r.includedCalls = a.partition->partition.includedCalls.size();
    r.loopsUnrolled = a.transformed->loopsUnrolled;
    r.ivsHoisted = a.transformed->ivsHoisted;
    r.dynTasksCut = a.trace->tasks.size();
    return r;
}

RunRecord
runSpec(const RunSpec &spec, pipeline::Session &session)
{
    return recordFromResults(spec, session.runAll(spec.opts));
}

RunRecord
runSpec(const RunSpec &spec)
{
    pipeline::Session session(std::make_shared<const ir::Program>(
        workloads::buildWorkload(spec.workload, spec.scale)));
    return runSpec(spec, session);
}

Json
errorToJson(const runtime::StageErrorInfo &e)
{
    Json err = Json::object();
    err["kind"] = runtime::errorKindId(e.kind);
    err["stage"] = e.stage;
    err["workload"] = e.workload;
    err["detail"] = e.detail;
    err["budget_exhausted"] = e.budgetExhausted();
    if (e.limit)
        err["limit"] = e.limit;
    if (e.used)
        err["used"] = e.used;
    return err;
}

Json
runToJson(const RunRecord &r)
{
    const arch::SimStats &s = r.stats;
    const arch::SimConfig &c = r.spec.opts.config;

    Json run = Json::object();
    run["id"] = r.spec.id;
    run["workload"] = r.spec.workload;
    run["status"] = r.ok() ? "ok" : "error";

    Json cfg = Json::object();
    cfg["strategy"] = strategyId(r.spec.opts.sel.strategy);
    cfg["pus"] = c.numPUs;
    cfg["out_of_order"] = c.outOfOrder;
    cfg["max_targets"] = r.spec.opts.sel.maxTargets;
    cfg["task_size_heuristic"] = r.spec.opts.sel.taskSizeHeuristic;
    cfg["scale"] =
        r.spec.scale == workloads::Scale::Small ? "small" : "full";
    cfg["trace_insts"] = r.spec.opts.trace.traceInsts;
    run["config"] = std::move(cfg);

    // Failed cells carry the error object and no metrics: every
    // metric field present in a v2 document is a real measurement.
    if (!r.ok()) {
        run["error"] = errorToJson(r.error);
        return run;
    }

    Json m = Json::object();
    m["cycles"] = s.cycles;
    m["retired_insts"] = s.retiredInsts;
    m["retired_tasks"] = s.retiredTasks;
    m["ipc"] = s.ipc();

    Json buckets = Json::object();
    for (size_t i = 0; i < arch::NUM_CYCLE_KINDS; ++i)
        buckets[arch::cycleKindId(arch::CycleKind(i))] =
            s.buckets.counts[i];
    m["cycle_breakdown"] = std::move(buckets);
    m["occupied_pu_cycles"] = s.buckets.total();
    m["idle_pu_cycles"] = s.idlePuCycles;

    Json pred = Json::object();
    pred["task_predictions"] = s.taskPredictions;
    pred["task_mispredictions"] = s.taskMispredictions;
    pred["task_mispredict_pct"] = s.taskMispredictPct();
    pred["per_branch_mispredict_pct"] = s.perBranchMispredictPct();
    pred["branch_predictions"] = s.branchPredictions;
    pred["branch_mispredictions"] = s.branchMispredictions;
    pred["branch_mispredict_pct"] = s.branchMispredictPct();
    m["prediction"] = std::move(pred);

    Json mem = Json::object();
    mem["violations"] = s.memViolations;
    mem["tasks_squashed_ctrl"] = s.tasksSquashedCtrl;
    mem["tasks_squashed_mem"] = s.tasksSquashedMem;
    mem["sync_stall_cycles"] = s.syncStallCycles;
    mem["arb_overflow_stalls"] = s.arbOverflowStalls;
    mem["l1i_accesses"] = s.l1iAccesses;
    mem["l1i_misses"] = s.l1iMisses;
    mem["l1d_accesses"] = s.l1dAccesses;
    mem["l1d_misses"] = s.l1dMisses;
    m["memory"] = std::move(mem);

    Json tasks = Json::object();
    tasks["dyn_tasks"] = s.dynTasks;
    tasks["avg_task_insts"] = s.avgTaskSize();
    tasks["avg_task_ctl_insts"] = s.avgTaskCtlInsts();
    tasks["dyn_tasks_cut"] = r.dynTasksCut;
    m["tasks"] = std::move(tasks);

    Json span = Json::object();
    span["measured"] = s.measuredWindowSpan;
    span["formula"] = s.formulaWindowSpan(c.numPUs);
    m["window_span"] = std::move(span);

    Json part = Json::object();
    part["static_tasks"] = r.staticTasks;
    part["avg_static_insts"] = r.avgStaticInsts;
    part["included_calls"] = r.includedCalls;
    part["loops_unrolled"] = r.loopsUnrolled;
    part["ivs_hoisted"] = r.ivsHoisted;
    m["partition"] = std::move(part);

    run["metrics"] = std::move(m);
    return run;
}

int
sweepExitCode(const std::vector<RunRecord> &records)
{
    size_t failed = 0;
    for (const auto &r : records)
        failed += !r.ok();
    if (failed == 0)
        return EXIT_SWEEP_CLEAN;
    if (failed == records.size())
        return EXIT_SWEEP_FAILED;
    return EXIT_SWEEP_PARTIAL;
}

const char *
sweepStatusName(int exit_code)
{
    switch (exit_code) {
      case EXIT_SWEEP_CLEAN:   return "ok";
      case EXIT_SWEEP_FAILED:  return "failed";
      case EXIT_SWEEP_PARTIAL: return "partial";
    }
    return "?";
}

Json
sweepDocFromRuns(std::vector<Json> runs)
{
    size_t failed = 0;
    for (const auto &r : runs) {
        const Json *status = r.find("status");
        failed += status && status->kind() == Json::Kind::String &&
                  status->asString() == "error";
    }

    Json doc = Json::object();
    doc["schema"] = SCHEMA_NAME;
    doc["schema_version"] = SCHEMA_VERSION;
    doc["partial"] = failed != 0;
    doc["errors"] = uint64_t(failed);
    Json arr = Json::array();
    for (auto &r : runs)
        arr.push(std::move(r));
    doc["runs"] = std::move(arr);
    return doc;
}

Json
sweepToJson(const std::vector<RunRecord> &records)
{
    std::vector<Json> runs;
    runs.reserve(records.size());
    for (const auto &r : records)
        runs.push_back(runToJson(r));
    return sweepDocFromRuns(std::move(runs));
}

namespace {

/** Appends the dotted column names / values of one run object. The
 *  CSV is defined as the flattening of the JSON schema, so the two
 *  stay in lockstep by construction. */
void
flatten(const Json &v, const std::string &prefix,
        std::vector<std::pair<std::string, std::string>> &out)
{
    if (v.kind() == Json::Kind::Object) {
        for (const auto &kv : v.members())
            flatten(kv.second,
                    prefix.empty() ? kv.first : prefix + "." + kv.first,
                    out);
        return;
    }
    // Scalars only below runs[] — dump() of a scalar is its CSV cell
    // (strings keep their quotes, which also escapes any commas).
    out.emplace_back(prefix, v.dump());
}

} // anonymous namespace

std::string
sweepToCsv(const std::vector<RunRecord> &records)
{
    // Error rows flatten to a different column set than ok rows
    // (error.* instead of metrics.*), so the header is the union of
    // every row's columns in first-seen order and missing cells are
    // left empty — the table stays rectangular for any ok/error mix.
    if (records.empty())
        return {};

    std::vector<std::vector<std::pair<std::string, std::string>>> rows;
    rows.reserve(records.size());
    std::vector<std::string> header;
    for (const auto &r : records) {
        rows.emplace_back();
        flatten(runToJson(r), "", rows.back());
        for (const auto &col : rows.back()) {
            bool known = false;
            for (const auto &h : header)
                known = known || h == col.first;
            if (!known)
                header.push_back(col.first);
        }
    }

    std::string out;
    for (size_t i = 0; i < header.size(); ++i) {
        if (i)
            out += ',';
        out += header[i];
    }
    out += '\n';
    for (const auto &cols : rows) {
        for (size_t i = 0; i < header.size(); ++i) {
            if (i)
                out += ',';
            for (const auto &col : cols) {
                if (col.first == header[i]) {
                    out += col.second;
                    break;
                }
            }
        }
        out += '\n';
    }
    return out;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        throw runtime::StageError(runtime::ErrorKind::Io, "report",
                                  "cannot open " + path +
                                      " for writing");
    f << content;
    if (!f)
        throw runtime::StageError(runtime::ErrorKind::Io, "report",
                                  "write failed for " + path);
}

} // namespace report
} // namespace msc
