/**
 * @file
 * Minimal self-contained JSON value, writer and parser.
 *
 * Goals, in order: (1) deterministic output — objects preserve
 * insertion order and numbers use shortest round-trip formatting, so
 * a sweep serialized twice (or with different `--jobs`) is
 * byte-identical; (2) lossless integers — counters are stored as
 * uint64/int64, not double; (3) no third-party dependency.
 *
 * Not a general-purpose JSON library: no comments, no NaN/Inf
 * (rejected on write and parse), UTF-8 passed through verbatim.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace msc {
namespace report {

/** One JSON value (null / bool / number / string / array / object). */
class Json
{
  public:
    enum class Kind : uint8_t
    {
        Null,
        Bool,
        Int,      ///< Signed or unsigned 64-bit integer.
        Double,
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(bool b) : _kind(Kind::Bool), _bool(b) {}
    Json(int v) : _kind(Kind::Int), _int(v) {}
    Json(unsigned v) : _kind(Kind::Int), _int(int64_t(v)) {}
    Json(int64_t v) : _kind(Kind::Int), _int(v) {}
    Json(uint64_t v);
    Json(double v);
    Json(const char *s) : _kind(Kind::String), _str(s) {}
    Json(std::string s) : _kind(Kind::String), _str(std::move(s)) {}

    static Json array() { return Json(Kind::Array); }
    static Json object() { return Json(Kind::Object); }

    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::Null; }
    bool isNumber() const
    {
        return _kind == Kind::Int || _kind == Kind::Double;
    }

    /// @name Scalar accessors (throw std::runtime_error on kind
    /// mismatch).
    /// @{
    bool asBool() const;
    int64_t asInt() const;
    uint64_t asUInt() const;
    double asDouble() const;      ///< Accepts Int and Double.
    const std::string &asString() const;
    /// @}

    /// @name Array interface.
    /// @{
    void push(Json v);
    size_t size() const;          ///< Array or Object element count.
    const Json &at(size_t i) const;
    /// @}

    /// @name Object interface (insertion-ordered).
    /// @{
    /** Inserts or retrieves a member (creates Null when absent). */
    Json &operator[](const std::string &key);
    /** Returns the member or nullptr. */
    const Json *find(const std::string &key) const;
    /** Returns the member; throws when absent. */
    const Json &get(const std::string &key) const;
    bool has(const std::string &key) const { return find(key); }
    const std::vector<std::pair<std::string, Json>> &members() const;
    /// @}

    /**
     * Serializes. `indent` > 0 pretty-prints with that many spaces
     * per level; 0 emits compact one-line JSON. Output is fully
     * deterministic for a given value.
     */
    std::string dump(int indent = 0) const;

    /** Parses @p text; throws std::runtime_error with position info. */
    static Json parse(const std::string &text);

    /** Structural equality (Int 3 == Double 3.0 is false). */
    friend bool operator==(const Json &a, const Json &b);
    friend bool operator!=(const Json &a, const Json &b)
    {
        return !(a == b);
    }

  private:
    explicit Json(Kind k) : _kind(k) {}
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind _kind = Kind::Null;
    bool _bool = false;
    int64_t _int = 0;
    bool _uintHigh = false;       ///< _int carries a uint64 > INT64_MAX.
    double _dbl = 0;
    std::string _str;
    std::vector<Json> _arr;
    std::vector<std::pair<std::string, Json>> _obj;
};

} // namespace report
} // namespace msc
