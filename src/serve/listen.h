/**
 * @file
 * Shared socket-listener plumbing for mscd front-ends.
 *
 * Both daemon shapes — the single-process Server and the shard-mode
 * Router — accept connections the same way: bind a Unix or loopback
 * TCP listening socket, accept in a loop, serve each connection on
 * its own thread, and stop asynchronously (signal-safe) by flagging +
 * closing the listener. This file is that shape, factored once:
 *
 *  - bindUnix/bindTcp create ready-to-accept listening sockets
 *    (bindTcp sets SO_REUSEADDR so an immediate rebind after a
 *    restart does not flake on TIME_WAIT);
 *  - AcceptLoop owns the stop handshake: run() accepts until
 *    requestStop() closes the descriptor out from under it, then
 *    joins every connection thread before returning.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace msc {
namespace serve {

/** Binds and listens on a Unix socket at @p path (replacing any stale
 *  socket file from a crash). Returns the listening fd, or -1 with a
 *  diagnostic on stderr (@p who names the program in diagnostics). */
int bindUnix(const std::string &path, const char *who);

/** Binds and listens on 127.0.0.1:@p port with SO_REUSEADDR.
 *  Returns the listening fd, or -1 with a diagnostic on stderr. */
int bindTcp(uint16_t port, const char *who);

/**
 * The accept-until-stopped loop. One instance serves one listener at
 * a time; requestStop() may race run() from a signal handler.
 */
class AcceptLoop
{
  public:
    /** Accepts on @p listen_fd until requestStop(), invoking
     *  @p handler(connected_fd) on a dedicated thread per connection
     *  (the handler owns and must close the fd). Joins all connection
     *  threads, then returns 0. Takes ownership of @p listen_fd. */
    int run(int listen_fd,
            const std::function<void(int fd)> &handler);

    /** Stops the accept loop (async-signal-safe: flags + closes the
     *  listening descriptor). In-flight connections finish. */
    void requestStop();

    bool stopping() const { return _stop.load(); }

  private:
    std::atomic<int> _listenFd{-1};
    std::atomic<bool> _stop{false};
};

} // namespace serve
} // namespace msc
