/**
 * @file
 * Request dispatch for mscd: a fixed-size worker pool executing sweep
 * cells against one shared pipeline::SessionPool, with in-flight
 * dedup keyed by the Session's content-addressed stage keys.
 *
 * Dedup semantics: submit() derives a cell's identity from
 * Session::stageKey(StageKind::Simulate, opts) — the exact key the
 * artifact cache uses, chaining the printed program bytes and every
 * option field any stage reads — plus the cell's budget (budgets are
 * deliberately outside artifact keys, but two requests with
 * different budgets may legitimately produce different *outcomes*,
 * so they must not coalesce). While a cell with that identity is
 * queued or executing, further submits return the same
 * shared_future: N concurrent identical requests block on one
 * computation and receive byte-identical records. Entries are
 * dropped on completion — long-term memoization belongs to the
 * Session artifact caches, which make a repeat after completion a
 * pure cache-hit replay.
 *
 * A deduped cell runs under the cancel token of the request that
 * FIRST submitted it; if that request is cancelled, followers
 * observe the same `cancelled` error record (docs/DAEMON.md).
 *
 * Fault containment: submit() never throws and a cell job never lets
 * an exception escape — unknown workloads, budget exhaustion,
 * cancellation and internal errors all become error records, exactly
 * as in report::SweepRunner. A request that dies takes no worker
 * thread with it.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/slog.h"
#include "pipeline/pool.h"
#include "report/record.h"
#include "runtime/budget.h"

namespace msc {
namespace serve {

/** Turns an escaping exception into a cell's error record, exactly
 *  as report::SweepRunner classifies sweep-cell failures. Shared by
 *  the Dispatcher (worker/submit failures) and the Router (shard
 *  loss, forwarding failures), so both paths emit records with the
 *  same shape and attribution. */
report::RunRecord errorRecord(const report::RunSpec &spec,
                              std::exception_ptr ep);

/** Dispatcher-level counters (cache traffic lives in
 *  pipeline::CacheStats; these count request coalescing). */
struct DispatchStats
{
    uint64_t cellsSubmitted = 0;  ///< submit() calls.
    uint64_t dedupHits = 0;       ///< Coalesced onto an in-flight cell.
};

/** The dispatcher-side counters of a summary frame, captured by one
 *  Dispatcher::snapshot() call instead of two racy reads: dedup
 *  counters freeze under the dispatcher lock (no submit or completion
 *  can slip between the two members), then the pool's cumulative
 *  cache counters are read under that same lock. Cells already
 *  *executing* may still move cache counters mid-snapshot — stopping
 *  the world is not worth it for telemetry — but the
 *  submit/complete/dedup bookkeeping and the cache totals can no
 *  longer disagree about which cells exist. */
struct ServiceSnapshot
{
    pipeline::CacheStats cache;
    DispatchStats dispatch;
};

class Dispatcher
{
  public:
    struct Config
    {
        /** Worker threads executing cells; 0 = hardware concurrency. */
        unsigned jobs = 0;

        /** Session configuration (on-disk cache dir) shared by every
         *  request. */
        pipeline::SessionConfig session;

        /** Telemetry registry (nullable = the no-op fast path: no
         *  gauge/counter traffic on the submit or worker paths). Must
         *  outlive the dispatcher; the dispatcher registers cache-
         *  counter callback gauges reading its own pool, so the
         *  registry must not be snapshotted after the dispatcher is
         *  destroyed. */
        obs::MetricsRegistry *metrics = nullptr;

        /** Structured request-lifecycle logger (nullable). */
        obs::JsonLogger *log = nullptr;
    };

    explicit Dispatcher(Config cfg);

    /** Joins the worker pool (pending cells still execute). */
    ~Dispatcher();

    Dispatcher(const Dispatcher &) = delete;
    Dispatcher &operator=(const Dispatcher &) = delete;

    unsigned jobs() const { return unsigned(_workers.size()); }

    /**
     * Schedules @p spec on the worker pool and returns the future
     * record. @p cancel (nullable, must outlive the returned future's
     * completion) is polled by the cell's Governor. @p rid is the
     * server-minted RequestId of the submitting request, threaded to
     * the worker thread for cell-lifecycle log lines (a deduped cell
     * keeps the FIRST submitter's rid, matching whose cancel token it
     * runs under). Never throws; failures resolve to error records
     * with the workload attributed.
     */
    std::shared_future<report::RunRecord>
    submit(const report::RunSpec &spec,
           const runtime::CancelToken *cancel,
           const std::string &rid = {});

    /// @name Cancellation registry (request id -> token).
    /// @{
    /** Registers @p id; returns its fresh token, or nullptr when the
     *  id is already in flight (the server rejects the duplicate). */
    std::shared_ptr<runtime::CancelToken>
    registerRequest(const std::string &id);

    void unregisterRequest(const std::string &id);

    /** Cancels the in-flight request @p id; false when unknown (never
     *  registered, already completed, or already unregistered). */
    bool cancelRequest(const std::string &id);
    /// @}

    /** The shared session pool. */
    pipeline::SessionPool &pool() { return _pool; }

    DispatchStats stats() const;

    /** One-call consistent capture of the summary-frame counters
     *  (see ServiceSnapshot) — use this, not stats() + pool().stats()
     *  back to back. */
    ServiceSnapshot snapshot() const;

  private:
    struct InFlight
    {
        std::shared_future<report::RunRecord> future;
    };

    void workerLoop();

    static report::RunRecord
    executeCell(pipeline::Session &session, report::RunSpec spec,
                const runtime::CancelToken *cancel);

    pipeline::SessionPool _pool;

    /// @name Telemetry (null in the uninstrumented fast path).
    /// @{
    obs::JsonLogger *_log = nullptr;
    obs::Gauge *_queueDepth = nullptr;
    obs::Gauge *_workersBusy = nullptr;
    obs::Gauge *_cellsInflight = nullptr;
    obs::Counter *_cellsSubmitted = nullptr;
    obs::Counter *_dedupHits = nullptr;
    /// @}

    mutable std::mutex _mu;
    std::deque<std::function<void()>> _queue;
    std::condition_variable _cv;
    bool _stopping = false;
    std::vector<std::thread> _workers;

    std::unordered_map<uint64_t, InFlight> _inflight;
    std::map<std::string, std::shared_ptr<runtime::CancelToken>>
        _requests;
    DispatchStats _stats;
};

} // namespace serve
} // namespace msc
