#include "serve/router.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <future>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "client/client.h"
#include "serve/dispatch.h"
#include "workloads/workload.h"

namespace msc {
namespace serve {

namespace {

/** `obj[key]` as a uint, 0 when absent/mistyped (counters from a
 *  peer's summary frame; lenient like the client decode). */
uint64_t
jsonUInt(const report::Json &obj, const char *key)
{
    const report::Json *v = obj.find(key);
    if (!v || v->kind() != report::Json::Kind::Int)
        return 0;
    return v->asUInt();
}

} // anonymous namespace

/** What one forwarded request resolved to (set exactly once, by the
 *  link's reader thread or its death). */
struct CellOutcome
{
    bool ok = false;

    /** run/sweep cells: the shard's `run` object, verbatim. */
    report::Json run;

    /** trace: the shard's raw terminal result frame. */
    report::Json result;

    /** !ok: why (shard error frame, or link loss). */
    runtime::StageErrorInfo error;
};

/**
 * One downstream shard: lazy connection with retry/backoff, a demux
 * reader thread resolving forwarded requests by id, and latest-known
 * summary counters. All state is guarded by _mu; the reader holds it
 * only per frame, so a stalled shard never blocks forwarding to
 * others (each link has its own lock).
 */
class Router::ShardLink
{
  public:
    ShardLink(unsigned index, client::Endpoint ep,
              const RouterConfig &cfg, obs::MetricsRegistry &metrics,
              obs::JsonLogger &log)
        : _index(index), _ep(std::move(ep)), _cfg(cfg), _log(log)
    {
        std::string base =
            "router.shard." + std::to_string(index) + ".";
        _cells = &metrics.counter(base + "cells");
        _downs = &metrics.counter(base + "down");
        _connects = &metrics.counter(base + "connects");
    }

    ~ShardLink()
    {
        std::vector<std::thread> readers;
        {
            std::lock_guard<std::mutex> lock(_mu);
            _closing = true;
            markDownLocked(_gen, "router shutting down");
            readers.swap(_readers);
        }
        for (auto &th : readers)
            th.join();
    }

    /** Sends one single-cell request; the future resolves when its
     *  terminal frame arrives or the link dies. Throws
     *  runtime::StageError (ErrorKind::Io) when the shard cannot be
     *  reached (connect retry with backoff exhausted). */
    std::future<CellOutcome>
    forward(const std::string &cell_id, const std::string &payload)
    {
        std::lock_guard<std::mutex> lock(_mu);
        ensureConnectedLocked();
        auto pc = std::make_shared<Pending>();
        std::future<CellOutcome> fut = pc->prom.get_future();
        _pending.emplace(cell_id, pc);
        try {
            writeFrame(*_transport, payload);
        } catch (...) {
            _pending.erase(cell_id);
            markDownLocked(_gen, "write to shard failed");
            throw unreachable("write failed");
        }
        _cells->inc();
        return fut;
    }

    /** Best-effort cancel relay for a cell in flight on this shard
     *  (responses to @p cancel_id are demuxed and dropped). */
    void
    sendCancel(const std::string &cancel_id, const std::string &target)
    {
        std::lock_guard<std::mutex> lock(_mu);
        if (_fd < 0)
            return;
        std::string payload =
            client::RequestBuilder::cancel(cancel_id, target)
                .payload();
        try {
            writeFrame(*_transport, payload);
        } catch (...) {
            markDownLocked(_gen, "write to shard failed");
        }
    }

    /** Latest summary counters seen from this shard (cumulative on
     *  the shard's side; the router aggregates the latest values). */
    void
    counters(uint64_t &computed, uint64_t &hits, uint64_t &disk_hits,
             uint64_t &dedup) const
    {
        std::lock_guard<std::mutex> lock(_mu);
        computed = _computed;
        hits = _hits;
        disk_hits = _diskHits;
        dedup = _dedup;
    }

    const client::Endpoint &endpoint() const { return _ep; }

  private:
    struct Pending
    {
        std::promise<CellOutcome> prom;
        report::Json run;
        bool haveRun = false;
    };

    runtime::StageError
    unreachable(const std::string &why) const
    {
        return runtime::StageError(
            runtime::ErrorKind::Io, "router",
            "shard " + std::to_string(_index) + " (" +
                client::formatEndpoint(_ep) + "): " + why);
    }

    void
    ensureConnectedLocked()
    {
        if (_fd >= 0)
            return;
        if (_closing)
            throw unreachable("router shutting down");
        unsigned attempts =
            _failFast ? 1 : std::max(1u, _cfg.connectAttempts);
        for (unsigned a = 1; a <= attempts; ++a) {
            try {
                int fd = client::connectEndpoint(_ep);
                _fd = fd;
                _transport =
                    std::make_unique<FdTransport>(fd, fd);
                ++_gen;
                _failFast = false;
                _connects->inc();
                if (_log.enabled()) {
                    report::Json f = report::Json::object();
                    f["shard"] = uint64_t(_index);
                    f["endpoint"] = client::formatEndpoint(_ep);
                    _log.event("shard.connect", std::move(f));
                }
                uint64_t gen = _gen;
                _readers.emplace_back(
                    [this, fd, gen] { readerLoop(fd, gen); });
                return;
            } catch (const runtime::StageError &) {
                if (a < attempts)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(
                            a * _cfg.connectBackoffMs));
            }
        }
        // A fully failed round: later cells probe once instead of
        // re-paying the whole backoff ladder per cell.
        _failFast = true;
        throw unreachable("unreachable after " +
                          std::to_string(attempts) +
                          " connect attempts");
    }

    /** Fails every pending cell and retires generation @p gen. A
     *  stale generation (reconnect already happened) is a no-op, so
     *  an old reader's exit can never kill a fresh connection. */
    void
    markDownLocked(uint64_t gen, const std::string &why)
    {
        if (gen != _gen || _fd < 0)
            return;
        // Wake the reader blocked in readFrame; the reader owns the
        // actual close (it may be mid-read on this very fd).
        ::shutdown(_fd, SHUT_RDWR);
        _fd = -1;
        _transport.reset();
        if (!_pending.empty()) {
            _downs->inc();
            if (_log.enabled()) {
                report::Json f = report::Json::object();
                f["shard"] = uint64_t(_index);
                f["pending"] = uint64_t(_pending.size());
                f["why"] = why;
                _log.event("shard.down", std::move(f));
            }
        }
        for (auto &[id, pc] : _pending) {
            CellOutcome out;
            out.ok = false;
            out.error = unreachable("connection lost (" + why + ")")
                            .info();
            pc->prom.set_value(std::move(out));
        }
        _pending.clear();
    }

    void
    readerLoop(int fd, uint64_t gen)
    {
        FdTransport t(fd, fd);
        for (;;) {
            FrameResult fr;
            try {
                fr = readFrame(t);
            } catch (const std::exception &) {
                break;  // ECONNRESET etc: same as stream end
            }
            if (fr.status != FrameStatus::Ok)
                break;
            client::ResponseFrame f;
            try {
                f = client::parseResponseFrame(fr.payload);
            } catch (const std::exception &) {
                continue;  // unintelligible frame from a shard: skip
            }
            std::lock_guard<std::mutex> lock(_mu);
            auto it = _pending.find(f.id);
            if (it == _pending.end())
                continue;  // e.g. a relayed cancel's result frame
            std::shared_ptr<Pending> pc = it->second;
            CellOutcome out;
            switch (f.type) {
              case client::ResponseFrame::Type::Cell:
                pc->run = std::move(f.run);
                pc->haveRun = true;
                continue;  // terminal frame still to come
              case client::ResponseFrame::Type::Summary: {
                const report::Json *cache = f.raw.find("cache");
                if (cache) {
                    _computed = jsonUInt(*cache, "computed");
                    _hits = jsonUInt(*cache, "hits");
                    _diskHits = jsonUInt(*cache, "disk_hits");
                }
                _dedup = jsonUInt(f.raw, "dedup_hits");
                if (pc->haveRun) {
                    out.ok = true;
                    out.run = std::move(pc->run);
                } else {
                    out.error.kind = runtime::ErrorKind::Internal;
                    out.error.stage = "router";
                    out.error.detail =
                        "shard sent a summary without a cell frame";
                }
                break;
              }
              case client::ResponseFrame::Type::Result:
                out.ok = true;
                out.result = std::move(f.raw);
                break;
              case client::ResponseFrame::Type::Error:
                out.error = f.error;
                break;
            }
            _pending.erase(it);
            pc->prom.set_value(std::move(out));
        }
        ::close(fd);
        std::lock_guard<std::mutex> lock(_mu);
        markDownLocked(gen, "stream ended");
    }

    const unsigned _index;
    const client::Endpoint _ep;
    const RouterConfig &_cfg;
    obs::JsonLogger &_log;

    obs::Counter *_cells = nullptr;
    obs::Counter *_downs = nullptr;
    obs::Counter *_connects = nullptr;

    mutable std::mutex _mu;
    int _fd = -1;
    std::unique_ptr<FdTransport> _transport;
    uint64_t _gen = 0;
    bool _failFast = false;
    bool _closing = false;
    std::map<std::string, std::shared_ptr<Pending>> _pending;
    std::vector<std::thread> _readers;

    uint64_t _computed = 0;
    uint64_t _hits = 0;
    uint64_t _diskHits = 0;
    uint64_t _dedup = 0;
};

Router::Router(RouterConfig cfg)
    : _cfg(std::move(cfg)), _log(_cfg.logJson)
{
    registerMetrics();
    for (size_t i = 0; i < _cfg.shards.size(); ++i)
        _links.push_back(std::make_unique<ShardLink>(
            unsigned(i), _cfg.shards[i], _cfg, _metrics, _log));
}

Router::~Router() = default;

void
Router::registerMetrics()
{
    _framesIn = &_metrics.counter("router.frames.in");
    _framesOut = &_metrics.counter("router.frames.out");
    _reqMalformed = &_metrics.counter("router.requests.malformed");
    _reqBusy = &_metrics.counter("router.requests.busy");
    _connAccepted = &_metrics.counter("router.connections.accepted");
    _connClosed = &_metrics.counter("router.connections.closed");
    _connErrors = &_metrics.counter("router.connections.errors");
    _cellsForwarded = &_metrics.counter("router.cells.forwarded");
    _cellsFailed = &_metrics.counter("router.cells.failed");
    _cancelsForwarded =
        &_metrics.counter("router.cancels.forwarded");
    _requestsInflight = &_metrics.gauge("router.requests.inflight");

    static constexpr RequestKind verbs[] = {
        RequestKind::Run, RequestKind::Sweep, RequestKind::Trace,
        RequestKind::Cancel, RequestKind::Stats};
    for (RequestKind k : verbs)
        _verbRequests[size_t(k)] = &_metrics.counter(
            std::string("router.requests.") + verbName(k));
}

void
Router::sendFrame(Conn &conn, const report::Json &frame)
{
    std::string payload = frame.dump();
    std::lock_guard<std::mutex> lock(conn.mu);
    writeFrame(conn.t, payload);
    _framesOut->inc();
}

void
Router::sendError(Conn &conn, const std::string &id,
                  runtime::ErrorKind kind, const std::string &stage,
                  const std::string &detail)
{
    runtime::StageErrorInfo info;
    info.kind = kind;
    info.stage = stage;
    info.detail = detail;
    sendFrame(conn, errorFrame(id, info));
}

unsigned
Router::shardOf(const report::RunSpec &spec)
{
    unsigned n = unsigned(_links.size());
    try {
        auto session =
            _keys.session(report::sessionKey(spec), [&] {
                return workloads::buildWorkload(spec.workload,
                                                spec.scale);
            });
        uint64_t key = session->stageKey(
            pipeline::StageKind::Simulate, spec.opts);
        return unsigned(key % n);
    } catch (...) {
        // No program, no content key (unknown workload): any shard
        // produces the identical error record, so a stable name hash
        // just spreads the load.
        return unsigned(std::hash<std::string>{}(spec.workload) % n);
    }
}

std::shared_ptr<Router::RouterRequest>
Router::registerRequest(const std::string &id)
{
    std::lock_guard<std::mutex> lock(_reqMu);
    auto [it, fresh] =
        _requests.emplace(id, std::make_shared<RouterRequest>());
    return fresh ? it->second : nullptr;
}

void
Router::unregisterRequest(const std::string &id)
{
    std::lock_guard<std::mutex> lock(_reqMu);
    _requests.erase(id);
}

namespace {

/** Re-serializes a parsed spec as the single-cell `run`/`trace`
 *  request reproducing it verbatim on a shard: parseRequest rebuilds
 *  the identical RunSpec (same makeSpec arguments), so the shard's
 *  run object is byte-identical to a direct daemon's. The budget is
 *  propagated exactly — zeros included — so shard-side defaults never
 *  alter a routed cell's outcome. */
client::RequestBuilder
forwardRequest(const report::RunSpec &spec, const std::string &cell_id,
               bool trace, bool include_trace)
{
    client::RequestBuilder b =
        trace ? client::RequestBuilder::trace(cell_id, spec.workload)
              : client::RequestBuilder::run(cell_id, spec.workload);
    b.strategy(report::strategyId(spec.opts.sel.strategy))
        .pusCount(spec.opts.config.numPUs)
        .smallScale(spec.scale == workloads::Scale::Small)
        .insts(spec.opts.trace.traceInsts)
        .targets(spec.opts.sel.maxTargets)
        .inOrder(!spec.opts.config.outOfOrder)
        .sizeHeuristic(spec.opts.sel.taskSizeHeuristic)
        .core(arch::coreModeName(spec.opts.config.coreMode))
        .budgetExact(spec.opts.budget);
    if (trace)
        b.includeTrace(include_trace);
    return b;
}

void
trackCell(Router::RouterRequest &rr, const std::string &cell_id,
          unsigned shard)
{
    std::lock_guard<std::mutex> lock(rr.mu);
    rr.outstanding.emplace_back(cell_id, shard);
}

void
untrackCell(Router::RouterRequest &rr, const std::string &cell_id)
{
    std::lock_guard<std::mutex> lock(rr.mu);
    for (auto it = rr.outstanding.begin();
         it != rr.outstanding.end(); ++it) {
        if (it->first == cell_id) {
            rr.outstanding.erase(it);
            return;
        }
    }
}

} // anonymous namespace

void
Router::runForward(Conn &conn, const Request &req,
                   const std::shared_ptr<RouterRequest> &rr,
                   const std::string &rid)
{
    struct Slot
    {
        unsigned shard = 0;
        std::string cellId;
        std::future<CellOutcome> fut;
        bool forwarded = false;
        report::Json localRun;  // non-null: resolved without a shard
    };

    size_t n = req.specs.size();
    std::vector<Slot> slots(n);

    // Fan out first, collect second: cells pipeline on their shards
    // concurrently (each is an independent single-cell request; the
    // shard's own dispatcher pools and dedups them).
    for (size_t i = 0; i < n; ++i) {
        const report::RunSpec &spec = req.specs[i];
        Slot &s = slots[i];
        s.shard = shardOf(spec);
        if (rr->cancelled.load()) {
            s.localRun = report::runToJson(errorRecord(
                spec, std::make_exception_ptr(runtime::StageError(
                          runtime::ErrorKind::Cancelled, "router",
                          "request cancelled before dispatch"))));
            continue;
        }
        s.cellId = "c" + std::to_string(_cellSeq.fetch_add(1) + 1);
        std::string payload =
            forwardRequest(spec, s.cellId, false, false).payload();
        try {
            s.fut = _links[s.shard]->forward(s.cellId, payload);
            s.forwarded = true;
            _cellsForwarded->inc();
            trackCell(*rr, s.cellId, s.shard);
        } catch (const runtime::StageError &e) {
            _cellsFailed->inc();
            s.localRun = report::runToJson(
                errorRecord(spec, std::make_exception_ptr(e)));
        }
    }

    // Stream in grid order regardless of completion order — the same
    // determinism contract as the single daemon's reader loop.
    std::vector<std::string> statuses;
    statuses.reserve(n);
    std::vector<uint64_t> shardCells(_links.size(), 0);
    for (size_t i = 0; i < n; ++i) {
        Slot &s = slots[i];
        report::Json run;
        if (!s.forwarded) {
            run = std::move(s.localRun);
        } else {
            CellOutcome out = s.fut.get();
            untrackCell(*rr, s.cellId);
            if (out.ok) {
                run = std::move(out.run);
            } else {
                _cellsFailed->inc();
                run = report::runToJson(errorRecord(
                    req.specs[i],
                    std::make_exception_ptr(
                        runtime::StageError(out.error))));
            }
        }
        const report::Json *status = run.find("status");
        statuses.push_back(
            status && status->kind() == report::Json::Kind::String
                ? status->asString()
                : std::string("error"));
        shardCells[s.shard] += 1;
        sendFrame(conn, cellFrame(req.id, i, n, std::move(run),
                                  int(s.shard)));
    }

    uint64_t computed = 0, hits = 0, disk = 0, dedup = 0;
    for (const auto &link : _links) {
        uint64_t c, h, d, dd;
        link->counters(c, h, d, dd);
        computed += c;
        hits += h;
        disk += d;
        dedup += dd;
    }
    report::Json cache = report::Json::object();
    cache["computed"] = computed;
    cache["hits"] = hits;
    cache["disk_hits"] = disk;
    sendFrame(conn, routedSummaryFrame(req.id, statuses, cache, dedup,
                                       shardCells));
    if (_log.enabled()) {
        size_t failed = 0;
        for (const auto &st : statuses)
            failed += st != "ok";
        report::Json f = report::Json::object();
        f["rid"] = rid;
        f["cells"] = uint64_t(n);
        f["failed"] = uint64_t(failed);
        _log.event("request.done", std::move(f));
    }
}

void
Router::runTraceForward(Conn &conn, const Request &req,
                        const std::shared_ptr<RouterRequest> &rr)
{
    const report::RunSpec &spec = req.specs.at(0);
    unsigned shard = shardOf(spec);
    std::string cellId =
        "c" + std::to_string(_cellSeq.fetch_add(1) + 1);
    std::string payload =
        forwardRequest(spec, cellId, true, req.includeTrace)
            .payload();

    CellOutcome out;
    try {
        std::future<CellOutcome> fut =
            _links[shard]->forward(cellId, payload);
        _cellsForwarded->inc();
        trackCell(*rr, cellId, shard);
        out = fut.get();
        untrackCell(*rr, cellId);
    } catch (const runtime::StageError &e) {
        _cellsFailed->inc();
        sendFrame(conn, errorFrame(req.id, e.info()));
        return;
    }
    if (!out.ok) {
        _cellsFailed->inc();
        sendFrame(conn, errorFrame(req.id, out.error));
        return;
    }
    // Relay the shard's result frame verbatim under the client's id.
    out.result["id"] = req.id;
    sendFrame(conn, out.result);
}

void
Router::handleCancel(Conn &conn, const Request &req)
{
    std::shared_ptr<RouterRequest> rr;
    {
        std::lock_guard<std::mutex> lock(_reqMu);
        auto it = _requests.find(req.target);
        if (it != _requests.end())
            rr = it->second;
    }
    if (rr) {
        rr->cancelled.store(true);
        std::vector<std::pair<std::string, unsigned>> outstanding;
        {
            std::lock_guard<std::mutex> lock(rr->mu);
            outstanding = rr->outstanding;
        }
        for (const auto &[cellId, shard] : outstanding) {
            _links[shard]->sendCancel(
                "x" + std::to_string(_cellSeq.fetch_add(1) + 1),
                cellId);
            _cancelsForwarded->inc();
        }
    }
    sendFrame(conn,
              cancelResultFrame(req.id, req.target, rr != nullptr));
}

void
Router::serveConnection(Transport &t)
{
    Conn conn{t, _connSeq.fetch_add(1) + 1};
    _connAccepted->inc();
    if (_log.enabled()) {
        report::Json f = report::Json::object();
        f["conn"] = conn.id;
        _log.event("conn.open", std::move(f));
    }

    std::vector<std::thread> inflight;

    while (true) {
        FrameResult fr = readFrame(t, _cfg.maxFrame);
        if (fr.status == FrameStatus::Eof)
            break;
        if (fr.status == FrameStatus::Truncated) {
            try {
                sendError(conn, "", runtime::ErrorKind::InvalidInput,
                          "protocol",
                          "truncated frame: stream ended inside a "
                          "frame");
            } catch (...) {
            }
            break;
        }
        if (fr.status == FrameStatus::Oversize) {
            sendError(conn, "", runtime::ErrorKind::InvalidInput,
                      "protocol",
                      "frame length " + std::to_string(fr.declared) +
                          " exceeds maximum " +
                          std::to_string(_cfg.maxFrame));
            continue;
        }
        _framesIn->inc();

        Request req;
        try {
            req = parseRequest(fr.payload, _cfg.defaults);
        } catch (const runtime::StageError &e) {
            _reqMalformed->inc();
            sendFrame(conn, errorFrame(extractRequestId(fr.payload),
                                       e.info()));
            continue;
        }

        std::string rid =
            "r" + std::to_string(_reqSeq.fetch_add(1) + 1);
        _verbRequests[size_t(req.kind)]->inc();
        if (_log.enabled()) {
            report::Json f = report::Json::object();
            f["conn"] = conn.id;
            f["rid"] = rid;
            f["req"] = req.id;
            f["verb"] = verbName(req.kind);
            if (!req.specs.empty())
                f["cells"] = uint64_t(req.specs.size());
            _log.event("request.start", std::move(f));
        }

        if (req.kind == RequestKind::Cancel) {
            handleCancel(conn, req);
            continue;
        }
        if (req.kind == RequestKind::Stats) {
            sendFrame(conn,
                      req.statsFormat == StatsFormat::Prometheus
                          ? statsResultFramePrometheus(
                                req.id, _metrics.toPrometheus())
                          : statsResultFrame(req.id,
                                             _metrics.toJson()));
            continue;
        }

        // Backpressure: the ServerConfig::maxInflight contract,
        // enforced at the router so a saturated shard fleet refuses
        // (never queues unboundedly, never drops) excess requests.
        if (_cfg.maxInflight &&
            conn.active.load() >= _cfg.maxInflight) {
            _reqBusy->inc();
            sendError(conn, req.id, runtime::ErrorKind::Busy,
                      "server",
                      "connection has " +
                          std::to_string(conn.active.load()) +
                          " requests in flight (bound " +
                          std::to_string(_cfg.maxInflight) +
                          "); retry after a terminal frame");
            continue;
        }

        auto rr = registerRequest(req.id);
        if (!rr) {
            sendError(conn, req.id, runtime::ErrorKind::InvalidInput,
                      "protocol",
                      "duplicate request id: \"" + req.id +
                          "\" is already in flight");
            continue;
        }
        _requestsInflight->add(1);
        conn.active.fetch_add(1);
        inflight.emplace_back([this, &conn, req = std::move(req), rr,
                               rid] {
            try {
                if (req.kind == RequestKind::Trace)
                    runTraceForward(conn, req, rr);
                else
                    runForward(conn, req, rr, rid);
            } catch (const runtime::StageError &e) {
                try {
                    sendFrame(conn, errorFrame(req.id, e.info()));
                } catch (...) {
                }
            } catch (const std::exception &e) {
                try {
                    sendError(conn, req.id,
                              runtime::ErrorKind::Internal, "router",
                              e.what());
                } catch (...) {
                }
            }
            unregisterRequest(req.id);
            _requestsInflight->add(-1);
            conn.active.fetch_sub(1);
        });
    }

    for (auto &th : inflight)
        th.join();

    _connClosed->inc();
    if (_log.enabled()) {
        report::Json f = report::Json::object();
        f["conn"] = conn.id;
        _log.event("conn.close", std::move(f));
    }
}

int
Router::serveUnix(const std::string &path)
{
    int fd = bindUnix(path, "mscd-router");
    if (fd < 0)
        return 1;
    int rc = _accept.run(fd, [this](int c) {
        FdTransport t(c, c);
        try {
            serveConnection(t);
        } catch (const std::exception &e) {
            _connErrors->inc();
            std::fprintf(stderr,
                         "mscd-router: connection error: %s\n",
                         e.what());
        }
        ::close(c);
    });
    ::unlink(path.c_str());
    return rc;
}

int
Router::serveTcp(uint16_t port)
{
    int fd = bindTcp(port, "mscd-router");
    if (fd < 0)
        return 1;
    return _accept.run(fd, [this](int c) {
        FdTransport t(c, c);
        try {
            serveConnection(t);
        } catch (const std::exception &e) {
            _connErrors->inc();
            std::fprintf(stderr,
                         "mscd-router: connection error: %s\n",
                         e.what());
        }
        ::close(c);
    });
}

void
Router::requestStop()
{
    _accept.requestStop();
}

} // namespace serve
} // namespace msc
