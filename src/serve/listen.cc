#include "serve/listen.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace msc {
namespace serve {

int
bindUnix(const std::string &path, const char *who)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof addr.sun_path) {
        std::fprintf(stderr, "%s: socket path too long: %s\n", who,
                     path.c_str());
        return -1;
    }
    ::unlink(path.c_str());  // replace a stale socket from a crash
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        std::fprintf(stderr, "%s: socket: %s\n", who,
                     std::strerror(errno));
        return -1;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) <
            0 ||
        ::listen(fd, 64) < 0) {
        std::fprintf(stderr, "%s: bind/listen: %s\n", who,
                     std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

int
bindTcp(uint16_t port, const char *who)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        std::fprintf(stderr, "%s: socket: %s\n", who,
                     std::strerror(errno));
        return -1;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) <
            0 ||
        ::listen(fd, 64) < 0) {
        std::fprintf(stderr, "%s: bind/listen: %s\n", who,
                     std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

int
AcceptLoop::run(int listen_fd,
                const std::function<void(int fd)> &handler)
{
    _listenFd.store(listen_fd);
    if (_stop.load()) {
        // requestStop() raced us before the store: close and bail
        // rather than accept on a listener the caller asked to stop.
        int fd = _listenFd.exchange(-1);
        if (fd >= 0)
            ::close(fd);
        return 0;
    }
    std::vector<std::thread> conns;
    while (!_stop.load()) {
        int c = ::accept(listen_fd, nullptr, nullptr);
        if (c < 0) {
            if (errno == EINTR)
                continue;
            break;  // requestStop closed the listener (or hard error)
        }
        conns.emplace_back([&handler, c] { handler(c); });
    }
    // Whoever wins the exchange closes — requestStop() may already
    // have claimed (and closed) the descriptor.
    int fd = _listenFd.exchange(-1);
    if (fd >= 0)
        ::close(fd);
    for (auto &th : conns)
        th.join();
    return 0;
}

void
AcceptLoop::requestStop()
{
    _stop.store(true);
    int fd = _listenFd.exchange(-1);
    if (fd >= 0) {
        // shutdown() wakes a blocked accept() on Linux; close()
        // releases the descriptor. Both are async-signal-safe.
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
}

} // namespace serve
} // namespace msc
