/**
 * @file
 * Length-prefixed message framing for the mscd protocol.
 *
 * Wire format: a 4-byte big-endian unsigned payload length followed
 * by exactly that many bytes of UTF-8 JSON. The framing layer is
 * payload-agnostic: it moves byte strings, the protocol layer
 * (protocol.h) interprets them. Both directions use the same format.
 *
 * Framing runs over a Transport, the minimal byte-stream interface a
 * connection needs: FdTransport wraps file descriptors (a socket, or
 * the stdin/stdout pair of `mscd --stdio`), StringTransport replays a
 * scripted byte sequence in-process for conformance tests.
 *
 * Error containment contract (tested by tests/test_mscd.cc):
 *
 *  - a zero-length frame is returned as Ok with an empty payload
 *    (the *protocol* layer rejects it — framing stays in sync);
 *  - a declared length above the configured maximum returns Oversize
 *    WITHOUT consuming any payload bytes: the peer violated the
 *    protocol, so the declared bytes are assumed absent and the next
 *    read starts at a fresh header. The connection stays usable;
 *  - EOF mid-header or mid-payload returns Truncated (the stream is
 *    over; the server still owes the peer one structured error frame
 *    before closing);
 *  - EOF cleanly between frames returns Eof.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace msc {
namespace serve {

/** Default inbound frame-size cap (16 MiB). */
constexpr uint32_t DEFAULT_MAX_FRAME = 16u << 20;

/** Minimal byte-stream interface the framing layer runs over. */
class Transport
{
  public:
    virtual ~Transport() = default;

    /** Reads up to @p n bytes into @p buf; returns the count read, or
     *  0 on end-of-stream. Throws runtime::StageError (ErrorKind::Io)
     *  on a hard stream error. */
    virtual size_t read(void *buf, size_t n) = 0;

    /** Writes all @p n bytes; throws runtime::StageError
     *  (ErrorKind::Io) on failure. */
    virtual void write(const void *buf, size_t n) = 0;
};

/** Transport over a (read fd, write fd) pair — a connected socket
 *  (same fd twice) or the stdio pair of `mscd --stdio`. Does not own
 *  or close the descriptors. */
class FdTransport final : public Transport
{
  public:
    FdTransport(int fd_in, int fd_out) : _in(fd_in), _out(fd_out) {}

    size_t read(void *buf, size_t n) override;
    void write(const void *buf, size_t n) override;

  private:
    int _in;
    int _out;
};

/** In-process transport for tests: reads walk a fixed input string,
 *  writes append to an output string. */
class StringTransport final : public Transport
{
  public:
    explicit StringTransport(std::string input)
        : _input(std::move(input))
    {}

    size_t read(void *buf, size_t n) override;
    void write(const void *buf, size_t n) override;

    const std::string &written() const { return _output; }

  private:
    std::string _input;
    size_t _pos = 0;
    std::string _output;
};

/** Outcome of one readFrame() call (see file comment for the exact
 *  stream-position guarantees of each status). */
enum class FrameStatus : uint8_t
{
    Ok,         ///< `payload` holds one complete frame body.
    Eof,        ///< Clean end-of-stream between frames.
    Truncated,  ///< End-of-stream inside a header or payload.
    Oversize,   ///< Declared length > max; payload not consumed.
};

struct FrameResult
{
    FrameStatus status = FrameStatus::Eof;

    /** Frame body (valid only when status == Ok). */
    std::string payload;

    /** The header's declared length (diagnostic for Oversize and
     *  payload-phase Truncated results). */
    uint64_t declared = 0;
};

/** Reads one frame from @p t, enforcing @p max_len on the declared
 *  payload length. */
FrameResult readFrame(Transport &t, uint32_t max_len = DEFAULT_MAX_FRAME);

/** Writes @p payload as one frame (header + body). Payloads above
 *  UINT32_MAX throw runtime::StageError (ErrorKind::Internal). */
void writeFrame(Transport &t, const std::string &payload);

} // namespace serve
} // namespace msc
