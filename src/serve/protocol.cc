#include "serve/protocol.h"

#include "arch/config.h"
#include "runtime/error.h"
#include "workloads/workload.h"

namespace msc {
namespace serve {

namespace {

[[noreturn]] void
bad(const std::string &detail)
{
    throw runtime::StageError(runtime::ErrorKind::InvalidInput,
                              "protocol", detail);
}

const report::Json &
member(const report::Json &obj, const char *key)
{
    const report::Json *v = obj.find(key);
    if (!v)
        bad(std::string("missing required field \"") + key + "\"");
    return *v;
}

std::string
stringField(const report::Json &obj, const char *key)
{
    const report::Json &v = member(obj, key);
    if (v.kind() != report::Json::Kind::String)
        bad(std::string("field \"") + key + "\" must be a string");
    return v.asString();
}

bool
boolField(const report::Json &obj, const char *key, bool dflt)
{
    const report::Json *v = obj.find(key);
    if (!v)
        return dflt;
    if (v->kind() != report::Json::Kind::Bool)
        bad(std::string("field \"") + key + "\" must be a boolean");
    return v->asBool();
}

uint64_t
uintField(const report::Json &obj, const char *key, uint64_t dflt)
{
    const report::Json *v = obj.find(key);
    if (!v)
        return dflt;
    if (v->kind() != report::Json::Kind::Int || v->asInt() < 0)
        bad(std::string("field \"") + key +
            "\" must be a non-negative integer");
    return v->asUInt();
}

std::vector<std::string>
stringListField(const report::Json &obj, const char *key)
{
    std::vector<std::string> out;
    const report::Json *v = obj.find(key);
    if (!v)
        return out;
    if (v->kind() != report::Json::Kind::Array)
        bad(std::string("field \"") + key +
            "\" must be an array of strings");
    for (size_t i = 0; i < v->size(); ++i) {
        if (v->at(i).kind() != report::Json::Kind::String)
            bad(std::string("field \"") + key +
                "\" must be an array of strings");
        out.push_back(v->at(i).asString());
    }
    return out;
}

workloads::Scale
scaleField(const report::Json &obj)
{
    const report::Json *v = obj.find("scale");
    if (!v)
        return workloads::Scale::Full;
    if (v->kind() == report::Json::Kind::String) {
        if (v->asString() == "small")
            return workloads::Scale::Small;
        if (v->asString() == "full")
            return workloads::Scale::Full;
    }
    bad("field \"scale\" must be \"small\" or \"full\"");
}

runtime::ExecBudget
budgetField(const report::Json &obj, const runtime::ExecBudget &dflt)
{
    runtime::ExecBudget b = dflt;
    const report::Json *v = obj.find("budget");
    if (!v)
        return b;
    if (v->kind() != report::Json::Kind::Object)
        bad("field \"budget\" must be an object");
    b.wallMs = uint32_t(uintField(*v, "timeout_ms", b.wallMs));
    b.maxFuel = uintField(*v, "max_fuel", b.maxFuel);
    b.maxSimCycles = uintField(*v, "max_cycles", b.maxSimCycles);
    b.maxHeapBytes = uintField(*v, "max_heap_bytes", b.maxHeapBytes);
    return b;
}

arch::CoreMode
coreField(const report::Json &obj)
{
    const report::Json *v = obj.find("core");
    if (!v)
        return arch::CoreMode::Event;
    arch::CoreMode core;
    if (v->kind() != report::Json::Kind::String ||
        !arch::parseCoreMode(v->asString().c_str(), core))
        bad("field \"core\" must be \"cycle\" or \"event\"");
    return core;
}

Request
parseImpl(const std::string &payload, const RequestDefaults &defaults)
{
    if (payload.empty())
        bad("zero-length frame (empty payload)");
    if (!utf8Valid(payload))
        bad("payload is not valid UTF-8");

    report::Json doc = report::Json::parse(payload);
    if (doc.kind() != report::Json::Kind::Object)
        bad("request payload must be a JSON object");

    Request req;
    req.id = stringField(doc, "id");
    if (req.id.empty() || req.id.size() > 256)
        bad("field \"id\" must be a non-empty string of at most "
            "256 bytes");

    std::string kind = stringField(doc, "kind");
    if (kind == "cancel") {
        req.kind = RequestKind::Cancel;
        req.target = stringField(doc, "target");
        if (req.target.empty() || req.target.size() > 256)
            bad("field \"target\" must be a non-empty string of at "
                "most 256 bytes");
        return req;
    }
    if (kind == "stats") {
        req.kind = RequestKind::Stats;
        const report::Json *fmt = doc.find("format");
        if (fmt) {
            if (fmt->kind() != report::Json::Kind::String ||
                (fmt->asString() != "json" &&
                 fmt->asString() != "prometheus"))
                bad("field \"format\" must be \"json\" or "
                    "\"prometheus\"");
            if (fmt->asString() == "prometheus")
                req.statsFormat = StatsFormat::Prometheus;
        }
        return req;
    }

    bool sweep = kind == "sweep";
    if (kind == "run") {
        req.kind = RequestKind::Run;
    } else if (sweep) {
        req.kind = RequestKind::Sweep;
    } else if (kind == "trace") {
        req.kind = RequestKind::Trace;
        req.includeTrace = boolField(doc, "include_trace", false);
    } else {
        bad("unknown request kind \"" + kind.substr(0, 64) +
            "\" (expected run|sweep|trace|cancel|stats)");
    }

    // Grid axes. Single-cell kinds take scalar fields (workload,
    // strategy, pus); sweep takes list fields with msctool sweep's
    // defaults so the same request text means the same grid in both
    // drivers.
    std::vector<std::string> names;
    std::vector<std::string> strategies;
    std::vector<unsigned> pus;
    if (sweep) {
        names = stringListField(doc, "workloads");
        if (names.empty())
            for (const auto &w : workloads::allWorkloads())
                names.push_back(w.name);
        strategies = stringListField(doc, "strategies");
        if (strategies.empty())
            strategies = {"bb", "cf", "dd"};
        const report::Json *pv = doc.find("pus");
        if (!pv) {
            pus = {4, 8};
        } else {
            if (pv->kind() != report::Json::Kind::Array)
                bad("field \"pus\" must be an array of integers");
            for (size_t i = 0; i < pv->size(); ++i) {
                if (pv->at(i).kind() != report::Json::Kind::Int)
                    bad("field \"pus\" must be an array of integers");
                pus.push_back(unsigned(pv->at(i).asUInt()));
            }
        }
    } else {
        names.push_back(stringField(doc, "workload"));
        const report::Json *sv = doc.find("strategy");
        strategies.push_back(
            sv ? stringField(doc, "strategy") : std::string("dd"));
        pus.push_back(unsigned(uintField(doc, "pus", 4)));
    }

    for (unsigned p : pus)
        if (p < 1 || p > 512)
            bad("\"pus\" values must be in [1, 512]");

    workloads::Scale scale = scaleField(doc);
    uint64_t insts = uintField(doc, "insts", 250'000);
    unsigned targets = unsigned(uintField(doc, "targets", 4));
    if (targets < 1 || targets > 64)
        bad("\"targets\" must be in [1, 64]");
    bool in_order = boolField(doc, "in_order", false);
    bool size_heur = boolField(doc, "size", false);
    arch::CoreMode core = coreField(doc);
    runtime::ExecBudget budget = budgetField(doc, defaults.budget);

    size_t cells = names.size() * strategies.size() * pus.size();
    if (cells == 0)
        bad("request resolves to an empty grid");
    if (cells > MAX_SWEEP_CELLS)
        bad("sweep grid of " + std::to_string(cells) +
            " cells exceeds the limit of " +
            std::to_string(MAX_SWEEP_CELLS));

    for (const auto &n : names)
        for (const auto &s : strategies)
            for (unsigned p : pus) {
                report::RunSpec sp = report::makeSpec(
                    n, report::strategyFromId(s), p, !in_order, scale,
                    insts, size_heur, targets);
                sp.opts.budget = budget;
                sp.opts.config.coreMode = core;
                req.specs.push_back(std::move(sp));
            }
    return req;
}

} // anonymous namespace

const char *
verbName(RequestKind k)
{
    switch (k) {
      case RequestKind::Run: return "run";
      case RequestKind::Sweep: return "sweep";
      case RequestKind::Trace: return "trace";
      case RequestKind::Cancel: return "cancel";
      case RequestKind::Stats: return "stats";
    }
    return "unknown";
}

bool
utf8Valid(const std::string &s)
{
    size_t i = 0, n = s.size();
    while (i < n) {
        unsigned char c = (unsigned char)s[i];
        size_t len;
        uint32_t cp;
        if (c < 0x80) {
            ++i;
            continue;
        } else if ((c & 0xE0) == 0xC0) {
            len = 2;
            cp = c & 0x1F;
        } else if ((c & 0xF0) == 0xE0) {
            len = 3;
            cp = c & 0x0F;
        } else if ((c & 0xF8) == 0xF0) {
            len = 4;
            cp = c & 0x07;
        } else {
            return false;
        }
        if (i + len > n)
            return false;
        for (size_t k = 1; k < len; ++k) {
            unsigned char cc = (unsigned char)s[i + k];
            if ((cc & 0xC0) != 0x80)
                return false;
            cp = (cp << 6) | (cc & 0x3F);
        }
        // Overlong forms, surrogates, and out-of-range code points.
        if ((len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) ||
            (len == 4 && cp < 0x10000) ||
            (cp >= 0xD800 && cp <= 0xDFFF) || cp > 0x10FFFF)
            return false;
        i += len;
    }
    return true;
}

Request
parseRequest(const std::string &payload, const RequestDefaults &defaults)
{
    try {
        return parseImpl(payload, defaults);
    } catch (runtime::StageError &) {
        throw;
    } catch (const std::exception &e) {
        // Json::parse position errors and accessor kind mismatches
        // land here; their messages carry positions, not raw payload
        // bytes.
        throw runtime::StageError(runtime::ErrorKind::InvalidInput,
                                  "protocol",
                                  std::string("malformed request: ") +
                                      e.what());
    }
}

std::string
extractRequestId(const std::string &payload)
{
    try {
        report::Json doc = report::Json::parse(payload);
        if (doc.kind() != report::Json::Kind::Object)
            return {};
        const report::Json *id = doc.find("id");
        if (!id || id->kind() != report::Json::Kind::String ||
            id->asString().size() > 256 || !utf8Valid(id->asString()))
            return {};
        return id->asString();
    } catch (const std::exception &) {
        return {};
    }
}

report::Json
cellFrame(const std::string &id, size_t index, size_t total,
          report::Json run, int shard)
{
    report::Json f = report::Json::object();
    f["id"] = id;
    f["type"] = "cell";
    f["index"] = uint64_t(index);
    f["total"] = uint64_t(total);
    f["run"] = std::move(run);
    if (shard >= 0)
        f["shard"] = uint64_t(shard);
    return f;
}

report::Json
summaryFrame(const std::string &id,
             const std::vector<report::RunRecord> &records,
             const pipeline::CacheStats &cache, uint64_t dedup_hits)
{
    size_t failed = 0;
    for (const auto &r : records)
        failed += !r.ok();
    int exit_code = report::sweepExitCode(records);

    report::Json f = report::Json::object();
    f["id"] = id;
    f["type"] = "summary";
    f["protocol_version"] = PROTOCOL_VERSION;
    f["status"] = report::sweepStatusName(exit_code);
    f["exit_code"] = exit_code;
    f["partial"] = failed != 0;
    f["errors"] = uint64_t(failed);
    f["runs"] = uint64_t(records.size());

    // Cumulative pool-wide counters — deliberately OUTSIDE the
    // byte-determinism contract of cell frames (docs/DAEMON.md).
    report::Json c = report::Json::object();
    c["computed"] = cache.computed();
    c["hits"] = cache.hits();
    c["disk_hits"] = cache.diskHits();
    f["cache"] = std::move(c);
    f["dedup_hits"] = dedup_hits;
    return f;
}

report::Json
routedSummaryFrame(const std::string &id,
                   const std::vector<std::string> &statuses,
                   const report::Json &cache, uint64_t dedup_hits,
                   const std::vector<uint64_t> &shard_cells)
{
    size_t failed = 0;
    for (const auto &s : statuses)
        failed += s != "ok";
    int exit_code = report::EXIT_SWEEP_CLEAN;
    if (failed == statuses.size() && failed != 0)
        exit_code = report::EXIT_SWEEP_FAILED;
    else if (failed != 0)
        exit_code = report::EXIT_SWEEP_PARTIAL;

    report::Json f = report::Json::object();
    f["id"] = id;
    f["type"] = "summary";
    f["protocol_version"] = PROTOCOL_VERSION;
    f["status"] = report::sweepStatusName(exit_code);
    f["exit_code"] = exit_code;
    f["partial"] = failed != 0;
    f["errors"] = uint64_t(failed);
    f["runs"] = uint64_t(statuses.size());
    f["cache"] = cache;
    f["dedup_hits"] = dedup_hits;
    f["via"] = "router";
    report::Json shards = report::Json::array();
    for (uint64_t n : shard_cells)
        shards.push(n);
    f["shards"] = std::move(shards);
    return f;
}

report::Json
errorFrame(const std::string &id, const runtime::StageErrorInfo &info)
{
    report::Json f = report::Json::object();
    f["id"] = id;
    f["type"] = "error";
    f["error"] = report::errorToJson(info);
    return f;
}

report::Json
cancelResultFrame(const std::string &id, const std::string &target,
                  bool found)
{
    report::Json f = report::Json::object();
    f["id"] = id;
    f["type"] = "result";
    f["kind"] = "cancel";
    f["target"] = target;
    f["found"] = found;
    return f;
}

report::Json
statsResultFrame(const std::string &id, report::Json metrics)
{
    report::Json f = report::Json::object();
    f["id"] = id;
    f["type"] = "result";
    f["kind"] = "stats";
    f["protocol_version"] = PROTOCOL_VERSION;
    f["metrics"] = std::move(metrics);
    return f;
}

report::Json
statsResultFramePrometheus(const std::string &id, std::string text)
{
    report::Json f = report::Json::object();
    f["id"] = id;
    f["type"] = "result";
    f["kind"] = "stats";
    f["protocol_version"] = PROTOCOL_VERSION;
    f["prometheus"] = std::move(text);
    return f;
}

report::Json
traceResultFrame(const std::string &id, report::Json run,
                 report::Json taskprof, report::Json trace)
{
    report::Json f = report::Json::object();
    f["id"] = id;
    f["type"] = "result";
    f["kind"] = "trace";
    f["run"] = std::move(run);
    f["taskprof"] = std::move(taskprof);
    if (!trace.isNull())
        f["trace"] = std::move(trace);
    return f;
}

} // namespace serve
} // namespace msc
