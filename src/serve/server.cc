#include "serve/server.h"

#include <cstdio>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/perfetto.h"
#include "obs/taskprof.h"
#include "obs/tracesink.h"
#include "runtime/error.h"
#include "workloads/workload.h"

namespace msc {
namespace serve {

namespace {

/** The server's registry/logger are injected into the dispatcher
 *  config before the dispatcher is constructed. */
Dispatcher::Config
withTelemetry(Dispatcher::Config cfg, obs::MetricsRegistry *metrics,
              obs::JsonLogger *log)
{
    cfg.metrics = metrics;
    cfg.log = log;
    return cfg;
}

} // anonymous namespace

Server::Server(ServerConfig cfg)
    : _cfg(std::move(cfg)), _log(_cfg.logJson),
      _dispatch(withTelemetry(_cfg.dispatch, &_metrics, &_log))
{
    registerMetrics();
}

void
Server::registerMetrics()
{
    _framesIn = &_metrics.counter("mscd.frames.in");
    _framesOut = &_metrics.counter("mscd.frames.out");
    _framesTruncated = &_metrics.counter("mscd.frames.truncated");
    _framesOversize = &_metrics.counter("mscd.frames.oversize");
    _reqMalformed = &_metrics.counter("mscd.requests.malformed");
    _reqBusy = &_metrics.counter("mscd.requests.busy");
    _connAccepted = &_metrics.counter("mscd.connections.accepted");
    _connClosed = &_metrics.counter("mscd.connections.closed");
    _connErrors = &_metrics.counter("mscd.connections.errors");
    _requestsInflight = &_metrics.gauge("mscd.requests.inflight");

    static constexpr RequestKind verbs[] = {
        RequestKind::Run, RequestKind::Sweep, RequestKind::Trace,
        RequestKind::Cancel, RequestKind::Stats};
    for (RequestKind k : verbs) {
        VerbMetrics &vm = verbMetrics(k);
        std::string verb = verbName(k);
        vm.requests = &_metrics.counter("mscd.requests." + verb);
        std::string base = "mscd.latency." + verb + ".";
        bool pooled =
            k == RequestKind::Run || k == RequestKind::Sweep;
        if (pooled)
            vm.dispatchUs = &_metrics.histogram(base + "dispatch_us");
        if (pooled || k == RequestKind::Trace)
            vm.firstFrameUs =
                &_metrics.histogram(base + "first_frame_us");
        vm.doneUs = &_metrics.histogram(base + "done_us");
    }
}

uint64_t
Server::sinceUs(Clock::time_point t0)
{
    return uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - t0)
            .count());
}

void
Server::sendFrame(Conn &conn, const report::Json &frame)
{
    std::string payload = frame.dump();
    std::lock_guard<std::mutex> lock(conn.mu);
    writeFrame(conn.t, payload);
    _framesOut->inc();
}

void
Server::sendError(Conn &conn, const std::string &id,
                  runtime::ErrorKind kind, const std::string &detail)
{
    runtime::StageErrorInfo info;
    info.kind = kind;
    info.stage = "protocol";
    info.detail = detail;
    sendFrame(conn, errorFrame(id, info));
}

void
Server::runRequest(Conn &conn, const Request &req,
                   const std::shared_ptr<runtime::CancelToken> &token,
                   const std::string &rid, Clock::time_point t0)
{
    VerbMetrics &vm = verbMetrics(req.kind);
    try {
        if (req.kind == RequestKind::Trace) {
            runTrace(conn, req, token, t0);
            vm.doneUs->observe(sinceUs(t0));
            if (_log.enabled()) {
                report::Json f = report::Json::object();
                f["rid"] = rid;
                f["status"] = "ok";
                f["dur_us"] = sinceUs(t0);
                _log.event("request.done", std::move(f));
            }
        } else {
            std::vector<std::shared_future<report::RunRecord>> futs;
            futs.reserve(req.specs.size());
            for (const auto &spec : req.specs)
                futs.push_back(
                    _dispatch.submit(spec, token.get(), rid));
            vm.dispatchUs->observe(sinceUs(t0));
            if (_log.enabled()) {
                report::Json f = report::Json::object();
                f["rid"] = rid;
                f["cells"] = uint64_t(futs.size());
                f["dur_us"] = sinceUs(t0);
                _log.event("request.dispatch", std::move(f));
            }

            // Stream cells in input order (the same order msctool
            // sweep prints and serializes) regardless of completion
            // order, so responses are deterministic for any worker
            // count.
            std::vector<report::RunRecord> records;
            records.reserve(futs.size());
            for (size_t i = 0; i < futs.size(); ++i) {
                report::RunRecord rec = futs[i].get();
                sendFrame(conn,
                          cellFrame(req.id, i, futs.size(),
                                    report::runToJson(rec)));
                if (i == 0) {
                    vm.firstFrameUs->observe(sinceUs(t0));
                    if (_log.enabled()) {
                        report::Json f = report::Json::object();
                        f["rid"] = rid;
                        f["dur_us"] = sinceUs(t0);
                        _log.event("request.first_frame",
                                   std::move(f));
                    }
                }
                records.push_back(std::move(rec));
            }
            // One consistent capture for the summary counters — not
            // two sequential reads racing concurrent requests.
            ServiceSnapshot snap = _dispatch.snapshot();
            sendFrame(conn, summaryFrame(req.id, records, snap.cache,
                                         snap.dispatch.dedupHits));
            vm.doneUs->observe(sinceUs(t0));
            if (_log.enabled()) {
                int exit_code = report::sweepExitCode(records);
                report::Json f = report::Json::object();
                f["rid"] = rid;
                f["status"] = report::sweepStatusName(exit_code);
                f["cells"] = uint64_t(records.size());
                f["dur_us"] = sinceUs(t0);
                _log.event("request.done", std::move(f));
            }
        }
    } catch (const runtime::StageError &e) {
        if (_log.enabled()) {
            report::Json f = report::Json::object();
            f["rid"] = rid;
            f["error_kind"] = runtime::errorKindId(e.info().kind);
            _log.event("request.error", std::move(f));
        }
        try {
            sendFrame(conn, errorFrame(req.id, e.info()));
        } catch (...) {
            // Write end is gone; nothing left to report to.
        }
    } catch (const std::exception &e) {
        if (_log.enabled()) {
            report::Json f = report::Json::object();
            f["rid"] = rid;
            f["error_kind"] = "internal";
            _log.event("request.error", std::move(f));
        }
        try {
            sendError(conn, req.id, runtime::ErrorKind::Internal,
                      e.what());
        } catch (...) {
        }
    }
    _dispatch.unregisterRequest(req.id);
    _requestsInflight->add(-1);
    conn.active.fetch_sub(1);
}

void
Server::runTrace(Conn &conn, const Request &req,
                 const std::shared_ptr<runtime::CancelToken> &token,
                 Clock::time_point t0)
{
    // Trace cells bypass the worker pool and dedup: a sink is a side
    // effect, so pipeline::Session already bypasses the simulate
    // memo for them — coalescing two trace requests would lose one
    // request's event stream.
    report::RunSpec spec = req.specs.at(0);
    obs::PerfettoTraceWriter writer(spec.opts.config.numPUs,
                                    spec.workload);
    obs::TaskProfiler prof;
    obs::TeeSink tee({&writer, &prof});
    spec.opts.sink = &tee;
    spec.opts.cancel = token.get();

    auto session =
        _dispatch.pool().session(report::sessionKey(spec), [&] {
            return workloads::buildWorkload(spec.workload, spec.scale);
        });
    pipeline::StageResults res = session->runAll(spec.opts);
    report::RunRecord rec = report::recordFromResults(spec, res);
    rec.spec.opts.sink = nullptr;
    rec.spec.opts.cancel = nullptr;

    report::Json trace;
    if (req.includeTrace)
        trace = writer.toJson();
    verbMetrics(RequestKind::Trace)
        .firstFrameUs->observe(sinceUs(t0));
    sendFrame(conn,
              traceResultFrame(
                  req.id, report::runToJson(rec),
                  obs::taskProfileToJson(prof, res.partition->partition,
                                         spec.workload),
                  std::move(trace)));
}

void
Server::serveConnection(Transport &t)
{
    Conn conn{t, _connSeq.fetch_add(1) + 1};
    _connAccepted->inc();
    if (_log.enabled()) {
        report::Json f = report::Json::object();
        f["conn"] = conn.id;
        _log.event("conn.open", std::move(f));
    }

    std::vector<std::thread> inflight;

    while (true) {
        FrameResult fr = readFrame(t, _cfg.maxFrame);
        Clock::time_point t0 = Clock::now();
        if (fr.status == FrameStatus::Eof)
            break;
        if (fr.status == FrameStatus::Truncated) {
            _framesTruncated->inc();
            if (_log.enabled()) {
                report::Json f = report::Json::object();
                f["conn"] = conn.id;
                f["kind"] = "truncated";
                _log.event("frame.error", std::move(f));
            }
            // The peer still gets a structured reply before the
            // (already half-closed) connection winds down.
            try {
                sendError(conn, "", runtime::ErrorKind::InvalidInput,
                          "truncated frame: stream ended inside a "
                          "frame");
            } catch (...) {
            }
            break;
        }
        if (fr.status == FrameStatus::Oversize) {
            _framesOversize->inc();
            if (_log.enabled()) {
                report::Json f = report::Json::object();
                f["conn"] = conn.id;
                f["kind"] = "oversize";
                f["declared"] = fr.declared;
                _log.event("frame.error", std::move(f));
            }
            sendError(conn, "", runtime::ErrorKind::InvalidInput,
                      "frame length " + std::to_string(fr.declared) +
                          " exceeds maximum " +
                          std::to_string(_cfg.maxFrame));
            continue;
        }
        _framesIn->inc();

        Request req;
        try {
            req = parseRequest(fr.payload, _cfg.defaults);
        } catch (const runtime::StageError &e) {
            _reqMalformed->inc();
            if (_log.enabled()) {
                report::Json f = report::Json::object();
                f["conn"] = conn.id;
                f["kind"] = "malformed";
                _log.event("frame.error", std::move(f));
            }
            sendFrame(conn, errorFrame(extractRequestId(fr.payload),
                                       e.info()));
            continue;
        }

        // The RequestId: minted per well-formed frame, in arrival
        // order, before any handling — so per-verb counters are
        // deterministic with respect to a later stats snapshot on
        // the same connection.
        std::string rid =
            "r" + std::to_string(_reqSeq.fetch_add(1) + 1);
        VerbMetrics &vm = verbMetrics(req.kind);
        vm.requests->inc();
        if (_log.enabled()) {
            report::Json f = report::Json::object();
            f["conn"] = conn.id;
            f["rid"] = rid;
            f["req"] = req.id;
            f["verb"] = verbName(req.kind);
            if (!req.specs.empty())
                f["cells"] = uint64_t(req.specs.size());
            _log.event("request.start", std::move(f));
        }

        if (req.kind == RequestKind::Cancel) {
            // Inline on the reader thread so it can reach a request
            // in flight on this very connection.
            bool found = _dispatch.cancelRequest(req.target);
            sendFrame(conn,
                      cancelResultFrame(req.id, req.target, found));
            vm.doneUs->observe(sinceUs(t0));
            if (_log.enabled()) {
                report::Json f = report::Json::object();
                f["rid"] = rid;
                f["target"] = req.target;
                f["found"] = found;
                f["dur_us"] = sinceUs(t0);
                _log.event("request.done", std::move(f));
            }
            continue;
        }

        if (req.kind == RequestKind::Stats) {
            // Inline too: a telemetry probe must not queue behind the
            // work it observes. The verb counter above is already
            // incremented, so the snapshot counts this request —
            // deterministic for byte-exact test assertions.
            sendFrame(conn,
                      req.statsFormat == StatsFormat::Prometheus
                          ? statsResultFramePrometheus(
                                req.id, _metrics.toPrometheus())
                          : statsResultFrame(req.id,
                                             _metrics.toJson()));
            vm.doneUs->observe(sinceUs(t0));
            if (_log.enabled()) {
                report::Json f = report::Json::object();
                f["rid"] = rid;
                f["dur_us"] = sinceUs(t0);
                _log.event("request.done", std::move(f));
            }
            continue;
        }

        // Backpressure: refuse (never drop) pooled requests past the
        // per-connection bound. `active` only moves on this thread or
        // downward in runRequest, so a peer that waits for terminal
        // frames is never spuriously refused.
        if (_cfg.maxInflight &&
            conn.active.load() >= _cfg.maxInflight) {
            _reqBusy->inc();
            if (_log.enabled()) {
                report::Json f = report::Json::object();
                f["rid"] = rid;
                f["inflight"] = uint64_t(conn.active.load());
                _log.event("request.busy", std::move(f));
            }
            runtime::StageErrorInfo info;
            info.kind = runtime::ErrorKind::Busy;
            info.stage = "server";
            info.detail =
                "connection has " +
                std::to_string(conn.active.load()) +
                " requests in flight (bound " +
                std::to_string(_cfg.maxInflight) +
                "); retry after a terminal frame";
            sendFrame(conn, errorFrame(req.id, info));
            continue;
        }

        // Register before spawning: a cancel frame that follows this
        // one on the wire is guaranteed to see the id.
        auto token = _dispatch.registerRequest(req.id);
        if (!token) {
            sendError(conn, req.id, runtime::ErrorKind::InvalidInput,
                      "duplicate request id: \"" + req.id +
                          "\" is already in flight");
            continue;
        }
        _requestsInflight->add(1);
        conn.active.fetch_add(1);
        inflight.emplace_back(
            [this, &conn, req = std::move(req), token, rid, t0] {
                runRequest(conn, req, token, rid, t0);
            });
    }

    for (auto &th : inflight)
        th.join();

    _connClosed->inc();
    if (_log.enabled()) {
        report::Json f = report::Json::object();
        f["conn"] = conn.id;
        _log.event("conn.close", std::move(f));
    }
}

int
Server::serveListener(int listen_fd)
{
    return _accept.run(listen_fd, [this](int c) {
        FdTransport t(c, c);
        try {
            serveConnection(t);
        } catch (const std::exception &e) {
            _connErrors->inc();
            std::fprintf(stderr, "mscd: connection error: %s\n",
                         e.what());
        }
        ::close(c);
    });
}

int
Server::serveUnix(const std::string &path)
{
    int fd = bindUnix(path, "mscd");
    if (fd < 0)
        return 1;
    int rc = serveListener(fd);
    ::unlink(path.c_str());
    return rc;
}

int
Server::serveTcp(uint16_t port)
{
    int fd = bindTcp(port, "mscd");
    if (fd < 0)
        return 1;
    return serveListener(fd);
}

void
Server::requestStop()
{
    _accept.requestStop();
}

} // namespace serve
} // namespace msc
