#include "serve/server.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/perfetto.h"
#include "obs/taskprof.h"
#include "obs/tracesink.h"
#include "workloads/workload.h"

namespace msc {
namespace serve {

Server::Server(ServerConfig cfg)
    : _cfg(std::move(cfg)), _dispatch(_cfg.dispatch)
{}

void
Server::sendFrame(Conn &conn, const report::Json &frame)
{
    std::string payload = frame.dump();
    std::lock_guard<std::mutex> lock(conn.mu);
    writeFrame(conn.t, payload);
}

void
Server::sendError(Conn &conn, const std::string &id,
                  runtime::ErrorKind kind, const std::string &detail)
{
    runtime::StageErrorInfo info;
    info.kind = kind;
    info.stage = "protocol";
    info.detail = detail;
    sendFrame(conn, errorFrame(id, info));
}

void
Server::runRequest(Conn &conn, const Request &req,
                   const std::shared_ptr<runtime::CancelToken> &token)
{
    try {
        if (req.kind == RequestKind::Trace) {
            runTrace(conn, req, token);
        } else {
            std::vector<std::shared_future<report::RunRecord>> futs;
            futs.reserve(req.specs.size());
            for (const auto &spec : req.specs)
                futs.push_back(_dispatch.submit(spec, token.get()));

            // Stream cells in input order (the same order msctool
            // sweep prints and serializes) regardless of completion
            // order, so responses are deterministic for any worker
            // count.
            std::vector<report::RunRecord> records;
            records.reserve(futs.size());
            for (size_t i = 0; i < futs.size(); ++i) {
                report::RunRecord rec = futs[i].get();
                sendFrame(conn,
                          cellFrame(req.id, i, futs.size(),
                                    report::runToJson(rec)));
                records.push_back(std::move(rec));
            }
            sendFrame(conn, summaryFrame(req.id, records,
                                         _dispatch.pool().stats(),
                                         _dispatch.stats().dedupHits));
        }
    } catch (const runtime::StageError &e) {
        try {
            sendFrame(conn, errorFrame(req.id, e.info()));
        } catch (...) {
            // Write end is gone; nothing left to report to.
        }
    } catch (const std::exception &e) {
        try {
            sendError(conn, req.id, runtime::ErrorKind::Internal,
                      e.what());
        } catch (...) {
        }
    }
    _dispatch.unregisterRequest(req.id);
}

void
Server::runTrace(Conn &conn, const Request &req,
                 const std::shared_ptr<runtime::CancelToken> &token)
{
    // Trace cells bypass the worker pool and dedup: a sink is a side
    // effect, so pipeline::Session already bypasses the simulate
    // memo for them — coalescing two trace requests would lose one
    // request's event stream.
    report::RunSpec spec = req.specs.at(0);
    obs::PerfettoTraceWriter writer(spec.opts.config.numPUs,
                                    spec.workload);
    obs::TaskProfiler prof;
    obs::TeeSink tee({&writer, &prof});
    spec.opts.sink = &tee;
    spec.opts.cancel = token.get();

    auto session =
        _dispatch.pool().session(report::sessionKey(spec), [&] {
            return workloads::buildWorkload(spec.workload, spec.scale);
        });
    pipeline::StageResults res = session->runAll(spec.opts);
    report::RunRecord rec = report::recordFromResults(spec, res);
    rec.spec.opts.sink = nullptr;
    rec.spec.opts.cancel = nullptr;

    report::Json trace;
    if (req.includeTrace)
        trace = writer.toJson();
    sendFrame(conn,
              traceResultFrame(
                  req.id, report::runToJson(rec),
                  obs::taskProfileToJson(prof, res.partition->partition,
                                         spec.workload),
                  std::move(trace)));
}

void
Server::serveConnection(Transport &t)
{
    Conn conn{t};
    std::vector<std::thread> inflight;

    while (true) {
        FrameResult fr = readFrame(t, _cfg.maxFrame);
        if (fr.status == FrameStatus::Eof)
            break;
        if (fr.status == FrameStatus::Truncated) {
            // The peer still gets a structured reply before the
            // (already half-closed) connection winds down.
            try {
                sendError(conn, "", runtime::ErrorKind::InvalidInput,
                          "truncated frame: stream ended inside a "
                          "frame");
            } catch (...) {
            }
            break;
        }
        if (fr.status == FrameStatus::Oversize) {
            sendError(conn, "", runtime::ErrorKind::InvalidInput,
                      "frame length " + std::to_string(fr.declared) +
                          " exceeds maximum " +
                          std::to_string(_cfg.maxFrame));
            continue;
        }

        Request req;
        try {
            req = parseRequest(fr.payload, _cfg.defaults);
        } catch (const runtime::StageError &e) {
            sendFrame(conn, errorFrame(extractRequestId(fr.payload),
                                       e.info()));
            continue;
        }

        if (req.kind == RequestKind::Cancel) {
            // Inline on the reader thread so it can reach a request
            // in flight on this very connection.
            bool found = _dispatch.cancelRequest(req.target);
            sendFrame(conn,
                      cancelResultFrame(req.id, req.target, found));
            continue;
        }

        // Register before spawning: a cancel frame that follows this
        // one on the wire is guaranteed to see the id.
        auto token = _dispatch.registerRequest(req.id);
        if (!token) {
            sendError(conn, req.id, runtime::ErrorKind::InvalidInput,
                      "duplicate request id: \"" + req.id +
                          "\" is already in flight");
            continue;
        }
        inflight.emplace_back(
            [this, &conn, req = std::move(req), token] {
                runRequest(conn, req, token);
            });
    }

    for (auto &th : inflight)
        th.join();
}

int
Server::serveListener(int listen_fd)
{
    _listenFd.store(listen_fd);
    std::vector<std::thread> conns;
    while (!_stop.load()) {
        int c = ::accept(listen_fd, nullptr, nullptr);
        if (c < 0) {
            if (errno == EINTR)
                continue;
            break;  // requestStop closed the listener (or hard error)
        }
        conns.emplace_back([this, c] {
            FdTransport t(c, c);
            try {
                serveConnection(t);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "mscd: connection error: %s\n",
                             e.what());
            }
            ::close(c);
        });
    }
    // Whoever wins the exchange closes — requestStop() may already
    // have claimed (and closed) the descriptor.
    int fd = _listenFd.exchange(-1);
    if (fd >= 0)
        ::close(fd);
    for (auto &th : conns)
        th.join();
    return 0;
}

int
Server::serveUnix(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof addr.sun_path) {
        std::fprintf(stderr, "mscd: socket path too long: %s\n",
                     path.c_str());
        return 1;
    }
    ::unlink(path.c_str());  // replace a stale socket from a crash
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        std::perror("mscd: socket");
        return 1;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) <
            0 ||
        ::listen(fd, 64) < 0) {
        std::perror("mscd: bind/listen");
        ::close(fd);
        return 1;
    }
    int rc = serveListener(fd);
    ::unlink(path.c_str());
    return rc;
}

int
Server::serveTcp(uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        std::perror("mscd: socket");
        return 1;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) <
            0 ||
        ::listen(fd, 64) < 0) {
        std::perror("mscd: bind/listen");
        ::close(fd);
        return 1;
    }
    return serveListener(fd);
}

void
Server::requestStop()
{
    _stop.store(true);
    int fd = _listenFd.exchange(-1);
    if (fd >= 0) {
        // shutdown() wakes a blocked accept() on Linux; close()
        // releases the descriptor. Both are async-signal-safe.
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
}

} // namespace serve
} // namespace msc
