/**
 * @file
 * mscd request/response protocol: JSON payloads inside the length-
 * prefixed frames of frame.h. Schemas are documented field-by-field
 * in docs/DAEMON.md; this header is the single in-tree source of
 * truth for both directions.
 *
 * Requests are one JSON object per frame:
 *
 *   {"id": "...", "kind": "run|sweep|trace|cancel|stats", ...params}
 *
 * Every malformed payload — not UTF-8, not JSON, not an object,
 * wrong field types, unknown kind, out-of-range values — throws
 * runtime::StageError (ErrorKind::InvalidInput, stage "protocol"),
 * which the server turns into exactly one `error` response frame;
 * nothing a peer sends can crash the daemon or silently drop the
 * connection (docs/DAEMON.md, tests/test_mscd.cc).
 *
 * Responses echo the request id on every frame:
 *
 *   {"id", "type": "cell",    "index", "total", "run": {...}}
 *   {"id", "type": "summary", "status", "exit_code", "partial",
 *                             "errors", "runs", "cache", "dedup_hits"}
 *   {"id", "type": "result",  "kind": "cancel"|"trace", ...}
 *   {"id", "type": "error",   "error": {...}}
 *
 * The `run` object of a cell frame is byte-for-byte the per-run
 * object of the `msc.sweep` v2 schema (report::runToJson), and the
 * summary's status/exit_code pair is report::sweepExitCode over the
 * same records — so a sweep served by mscd can be reassembled into a
 * document byte-identical to `msctool sweep --json` output
 * (report::sweepDocFromRuns; proven end-to-end by the daemon_smoke
 * ctest target).
 */

#pragma once

#include <string>
#include <vector>

#include "pipeline/session.h"
#include "report/record.h"
#include "runtime/budget.h"

namespace msc {
namespace serve {

/** Protocol revision emitted in summary/result frames (v2 added the
 *  `stats` verb; v3 added optional router provenance — `via`/`shards`
 *  on summaries, `shard` on relayed cells. Every v1/v2 request
 *  remains valid: v3 changed no request field.) */
constexpr int PROTOCOL_VERSION = 3;

enum class RequestKind : uint8_t
{
    Run,     ///< One pipeline cell (a 1-cell sweep).
    Sweep,   ///< workload x strategy x PU grid, streamed per cell.
    Trace,   ///< One cell with Perfetto timeline + task profile.
    Cancel,  ///< Cancel an in-flight request by id.
    Stats,   ///< Live telemetry snapshot (`msc.metrics` document).
};

/** Stable lower-case verb name for @p k ("run", "sweep", ...), as
 *  used in request payloads and per-verb metric names. */
const char *verbName(RequestKind k);

/** Rendering of a `stats` result requested via the optional `format`
 *  field (default json). */
enum class StatsFormat : uint8_t
{
    Json,        ///< `metrics`: the msc.metrics v1 document.
    Prometheus,  ///< `prometheus`: text exposition as one string.
};

/** Upper bound on cells in one sweep request (DoS containment). */
constexpr size_t MAX_SWEEP_CELLS = 4096;

/** A validated, fully-resolved request. */
struct Request
{
    std::string id;
    RequestKind kind = RequestKind::Run;

    /** Run/Sweep/Trace: the resolved grid (Run/Trace: exactly one
     *  spec). Budgets are already merged (server default overridden
     *  by any per-request `budget` fields). */
    std::vector<report::RunSpec> specs;

    /** Trace: embed the full Perfetto document in the result frame. */
    bool includeTrace = false;

    /** Cancel: the id of the request to cancel. */
    std::string target;

    /** Stats: how to render the snapshot in the result frame. */
    StatsFormat statsFormat = StatsFormat::Json;
};

/** Server-side defaults merged into every parsed request. */
struct RequestDefaults
{
    /** Applied per cell unless the request's `budget` object
     *  overrides a field (docs/DAEMON.md). */
    runtime::ExecBudget budget;
};

/**
 * Parses and validates one request payload. Throws
 * runtime::StageError (ErrorKind::InvalidInput, stage "protocol") on
 * any malformed input; the thrown detail never embeds unbounded
 * peer-controlled bytes.
 */
Request parseRequest(const std::string &payload,
                     const RequestDefaults &defaults);

/**
 * Best-effort extraction of the `id` field from a payload that failed
 * full parsing, so error frames can still be correlated. Returns ""
 * when unavailable.
 */
std::string extractRequestId(const std::string &payload);

/// @name Response-frame builders. Each returns the complete frame
/// object; the server serializes with dump(0) (compact) — the
/// determinism of cell frames follows from report::Json determinism.
/// @{
/** @p shard >= 0 appends the owning shard's index (protocol v3;
 *  router-relayed cells only — direct daemons omit the field). The
 *  `run` object is identical either way: provenance rides on the
 *  frame envelope, never inside the byte-determinism contract. */
report::Json cellFrame(const std::string &id, size_t index,
                       size_t total, report::Json run,
                       int shard = -1);

report::Json summaryFrame(const std::string &id,
                          const std::vector<report::RunRecord> &records,
                          const pipeline::CacheStats &cache,
                          uint64_t dedup_hits);

/**
 * The router's synthesized summary (protocol v3). Identical member
 * set and order to summaryFrame — status/exit_code derive from
 * @p statuses (the per-cell `status` strings of the relayed run
 * objects) through the same sweepExitCode mapping — plus two
 * provenance members: `via: "router"` and `shards`, the per-shard
 * relayed-cell counts. @p cache/@p dedup_hits aggregate the shards'
 * summary counters (like the direct counters, outside the
 * byte-determinism contract).
 */
report::Json routedSummaryFrame(
    const std::string &id, const std::vector<std::string> &statuses,
    const report::Json &cache, uint64_t dedup_hits,
    const std::vector<uint64_t> &shard_cells);

report::Json errorFrame(const std::string &id,
                        const runtime::StageErrorInfo &info);

report::Json cancelResultFrame(const std::string &id,
                               const std::string &target, bool found);

/** @p trace may be Null (omitted unless includeTrace). */
report::Json traceResultFrame(const std::string &id, report::Json run,
                              report::Json taskprof,
                              report::Json trace);

/** `stats` result carrying the msc.metrics document (StatsFormat::
 *  Json) — the `metrics` member is the document verbatim. */
report::Json statsResultFrame(const std::string &id,
                              report::Json metrics);

/** `stats` result carrying the Prometheus text exposition
 *  (StatsFormat::Prometheus) as the `prometheus` string member. */
report::Json statsResultFramePrometheus(const std::string &id,
                                        std::string text);
/// @}

/** True when @p s is well-formed UTF-8 (request payloads must be;
 *  the check keeps invalid bytes out of echoed response fields). */
bool utf8Valid(const std::string &s);

} // namespace serve
} // namespace msc
