#include "serve/frame.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

#include "runtime/error.h"

namespace msc {
namespace serve {

size_t
FdTransport::read(void *buf, size_t n)
{
    while (true) {
        ssize_t r = ::read(_in, buf, n);
        if (r >= 0)
            return size_t(r);
        if (errno == EINTR)
            continue;
        throw runtime::StageError(runtime::ErrorKind::Io, "transport",
                                  std::string("read failed: ") +
                                      std::strerror(errno));
    }
}

void
FdTransport::write(const void *buf, size_t n)
{
    const char *p = static_cast<const char *>(buf);
    while (n) {
        ssize_t w = ::write(_out, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            throw runtime::StageError(runtime::ErrorKind::Io,
                                      "transport",
                                      std::string("write failed: ") +
                                          std::strerror(errno));
        }
        p += size_t(w);
        n -= size_t(w);
    }
}

size_t
StringTransport::read(void *buf, size_t n)
{
    size_t avail = _input.size() - _pos;
    if (n > avail)
        n = avail;
    std::memcpy(buf, _input.data() + _pos, n);
    _pos += n;
    return n;
}

void
StringTransport::write(const void *buf, size_t n)
{
    _output.append(static_cast<const char *>(buf), n);
}

namespace {

/** Reads exactly @p n bytes; returns the count actually read (< n
 *  only at end-of-stream). */
size_t
readFully(Transport &t, void *buf, size_t n)
{
    char *p = static_cast<char *>(buf);
    size_t got = 0;
    while (got < n) {
        size_t r = t.read(p + got, n - got);
        if (r == 0)
            break;
        got += r;
    }
    return got;
}

} // anonymous namespace

FrameResult
readFrame(Transport &t, uint32_t max_len)
{
    FrameResult res;
    unsigned char hdr[4];
    size_t got = readFully(t, hdr, sizeof hdr);
    if (got == 0) {
        res.status = FrameStatus::Eof;
        return res;
    }
    if (got < sizeof hdr) {
        res.status = FrameStatus::Truncated;
        return res;
    }
    uint32_t len = (uint32_t(hdr[0]) << 24) | (uint32_t(hdr[1]) << 16) |
                   (uint32_t(hdr[2]) << 8) | uint32_t(hdr[3]);
    res.declared = len;
    if (len > max_len) {
        // Protocol violation: assume the declared bytes were never
        // sent so the next read starts at a fresh header (file
        // comment in frame.h).
        res.status = FrameStatus::Oversize;
        return res;
    }
    res.payload.resize(len);
    if (len && readFully(t, res.payload.data(), len) < len) {
        res.payload.clear();
        res.status = FrameStatus::Truncated;
        return res;
    }
    res.status = FrameStatus::Ok;
    return res;
}

void
writeFrame(Transport &t, const std::string &payload)
{
    if (payload.size() > UINT32_MAX)
        throw runtime::StageError(runtime::ErrorKind::Internal,
                                  "transport",
                                  "frame payload exceeds 4 GiB");
    uint32_t len = uint32_t(payload.size());
    unsigned char hdr[4] = {
        (unsigned char)(len >> 24), (unsigned char)(len >> 16),
        (unsigned char)(len >> 8), (unsigned char)len};
    t.write(hdr, sizeof hdr);
    if (len)
        t.write(payload.data(), payload.size());
}

} // namespace serve
} // namespace msc
