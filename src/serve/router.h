/**
 * @file
 * Shard-mode mscd: the hash-partitioning router front-end.
 *
 * A Router accepts the ordinary mscd protocol — same frames, same
 * verbs, same validation — and executes nothing itself. Each sweep
 * cell is forwarded as a single-cell `run` request to one of N
 * downstream shard daemons, chosen by the cell's content-addressed
 * identity: `Session::stageKey(Simulate, opts) % N`, the exact key
 * the shards' dispatchers dedup on. Identical cells therefore always
 * land on the same shard, so in-flight coalescing and the on-disk
 * artifact caches stay shard-local and hot — the router needs no
 * cache of its own (cf. hierarchical task dispatch in Myrmics, and
 * BDDT-SCC's explicit division of the keyspace across non-shared
 * workers; PAPERS.md).
 *
 * Reassembly: relayed cell frames carry the shard's `run` object
 * verbatim (plus a `shard` provenance field, protocol v3) and are
 * streamed to the client in grid order, so a routed sweep reassembles
 * into a `msc.sweep` document byte-identical to a single daemon's.
 * The summary is synthesized from the relayed statuses through the
 * same exit-code mapping, with `via: "router"` + per-shard cell
 * counts appended and the shards' cache counters aggregated.
 *
 * Failure containment mirrors the single daemon's: a shard that
 * cannot be reached (connect retry with backoff exhausted) or dies
 * mid-sweep fails only the cells assigned to it — each becomes an
 * `io` error record, the sweep completes `partial` with exit code 3,
 * and the other shards' cells are unaffected. Connection-level
 * backpressure (ServerConfig::maxInflight semantics) refuses pooled
 * requests past the bound with structured `busy` error frames.
 *
 * Telemetry: the router owns its own MetricsRegistry (`router.*`
 * names, per-shard `router.shard.N.*` — docs/OBSERVABILITY.md); its
 * `stats` verb serves that registry, while each shard's `stats` verb
 * still serves the shard's own.
 */

#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "client/endpoint.h"
#include "obs/metrics.h"
#include "obs/slog.h"
#include "pipeline/pool.h"
#include "serve/frame.h"
#include "serve/listen.h"
#include "serve/protocol.h"

namespace msc {
namespace serve {

struct RouterConfig
{
    /** Downstream shard daemons, in shard-index order. */
    std::vector<client::Endpoint> shards;

    /** Per-request defaults (budget) merged during parsing, then
     *  propagated explicitly to shards — a shard's own defaults never
     *  leak into routed cells. */
    RequestDefaults defaults;

    /** Inbound frame-size cap (client side; shard links always use
     *  the protocol default). */
    uint32_t maxFrame = DEFAULT_MAX_FRAME;

    /** Per-connection pooled-request bound; 0 = unlimited (same
     *  semantics as ServerConfig::maxInflight). */
    unsigned maxInflight = 0;

    /** Structured JSON request logs on stderr (docs/OBSERVABILITY.md). */
    bool logJson = false;

    /** Connect retry policy per shard: up to @p connectAttempts
     *  attempts, sleeping attempt * connectBackoffMs between them.
     *  After a fully failed round, the link fails fast (one attempt
     *  per later cell) until a connect succeeds again. */
    unsigned connectAttempts = 5;
    unsigned connectBackoffMs = 20;
};

class Router
{
  public:
    explicit Router(RouterConfig cfg);

    /** Joins every shard link's reader thread. */
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /** Serves one client connection until end-of-stream; blocking.
     *  Safe to call from multiple threads (one per connection). */
    void serveConnection(Transport &t);

    /// @name Listener front-ends (serve/listen.h shapes).
    /// @{
    int serveUnix(const std::string &path);
    int serveTcp(uint16_t port);
    void requestStop();
    /// @}

    size_t shardCount() const { return _links.size(); }

    /** The router's own telemetry registry (what its `stats` verb
     *  snapshots). */
    obs::MetricsRegistry &metrics() { return _metrics; }

    /** Cancellation bookkeeping for one pooled client request:
     *  cells currently in flight on shards, so a `cancel` verb can be
     *  fanned out to exactly the shards holding them. */
    struct RouterRequest
    {
        std::atomic<bool> cancelled{false};
        std::mutex mu;
        /** router-minted cell id -> shard index. */
        std::vector<std::pair<std::string, unsigned>> outstanding;
    };

  private:
    class ShardLink;

    /** One client connection's shared write end + backpressure state
     *  (the Server::Conn shape). */
    struct Conn
    {
        Conn(Transport &tr, uint64_t n) : t(tr), id(n) {}
        Transport &t;
        uint64_t id;
        std::mutex mu;
        std::atomic<unsigned> active{0};
    };

    void registerMetrics();
    void sendFrame(Conn &conn, const report::Json &frame);
    void sendError(Conn &conn, const std::string &id,
                   runtime::ErrorKind kind, const std::string &stage,
                   const std::string &detail);

    /** Shard index for @p spec: Simulate stageKey % N (budget
     *  excluded — artifacts are budget-independent, so budget
     *  variants of a cell still colocate). Unroutable specs (unknown
     *  workload: there is no program to key) fall back to a stable
     *  name hash; every shard reports the identical error record. */
    unsigned shardOf(const report::RunSpec &spec);

    void runForward(Conn &conn, const Request &req,
                    const std::shared_ptr<RouterRequest> &rr,
                    const std::string &rid);
    void runTraceForward(Conn &conn, const Request &req,
                         const std::shared_ptr<RouterRequest> &rr);
    void handleCancel(Conn &conn, const Request &req);

    std::shared_ptr<RouterRequest>
    registerRequest(const std::string &id);
    void unregisterRequest(const std::string &id);

    RouterConfig _cfg;
    obs::MetricsRegistry _metrics;
    obs::JsonLogger _log;

    obs::Counter *_framesIn = nullptr;
    obs::Counter *_framesOut = nullptr;
    obs::Counter *_reqMalformed = nullptr;
    obs::Counter *_reqBusy = nullptr;
    obs::Counter *_connAccepted = nullptr;
    obs::Counter *_connClosed = nullptr;
    obs::Counter *_connErrors = nullptr;
    obs::Counter *_verbRequests[5] = {};
    obs::Counter *_cellsForwarded = nullptr;
    obs::Counter *_cellsFailed = nullptr;
    obs::Counter *_cancelsForwarded = nullptr;
    obs::Gauge *_requestsInflight = nullptr;

    std::atomic<uint64_t> _reqSeq{0};
    std::atomic<uint64_t> _connSeq{0};
    std::atomic<uint64_t> _cellSeq{0};

    /** Key-only pool: Sessions here just build + print the workload
     *  program to derive stage keys; no stage ever *runs* on the
     *  router, and SessionConfig{} means no disk cache. */
    pipeline::SessionPool _keys;

    std::vector<std::unique_ptr<ShardLink>> _links;

    std::mutex _reqMu;
    std::map<std::string, std::shared_ptr<RouterRequest>> _requests;

    AcceptLoop _accept;
};

} // namespace serve
} // namespace msc
