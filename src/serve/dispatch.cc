#include "serve/dispatch.h"

#include <chrono>

#include "pipeline/hash.h"
#include "runtime/error.h"
#include "workloads/workload.h"

namespace msc {
namespace serve {

namespace {

/** Key domain for dispatcher cell identities (distinct from the
 *  per-stage tags in pipeline/session.cc). */
constexpr uint64_t TAG_CELL = 0x6d73636463656c6cull;  // "mscdcell"

std::shared_future<report::RunRecord>
readyFuture(report::RunRecord rec)
{
    std::promise<report::RunRecord> p;
    p.set_value(std::move(rec));
    return p.get_future().share();
}

} // anonymous namespace

report::RunRecord
errorRecord(const report::RunSpec &spec, std::exception_ptr ep)
{
    report::RunRecord rec;
    rec.spec = spec;
    try {
        std::rethrow_exception(ep);
    } catch (const runtime::StageError &e) {
        rec.error = e.info();
    } catch (const std::exception &e) {
        rec.error.kind = runtime::ErrorKind::Internal;
        rec.error.detail = e.what();
    }
    if (rec.error.workload.empty())
        rec.error.workload = spec.workload;
    return rec;
}

Dispatcher::Dispatcher(Config cfg) : _pool(std::move(cfg.session))
{
    _log = cfg.log;
    if (cfg.metrics) {
        // Pre-registered so the worker/submit hot paths touch stable
        // atomics, never the registry mutex.
        _queueDepth = &cfg.metrics->gauge("mscd.dispatch.queue_depth");
        _workersBusy =
            &cfg.metrics->gauge("mscd.dispatch.workers_busy");
        _cellsInflight =
            &cfg.metrics->gauge("mscd.dispatch.cells_inflight");
        _cellsSubmitted =
            &cfg.metrics->counter("mscd.dispatch.cells_submitted");
        _dedupHits = &cfg.metrics->counter("mscd.dispatch.dedup_hits");
        // Cache traffic is owned by the pool's KeyedCaches; surface
        // it as snapshot-time callback gauges so the `stats` verb and
        // the summary frame can never drift apart on meaning.
        cfg.metrics->gaugeCallback("mscd.cache.computed", [this] {
            return int64_t(_pool.stats().computed());
        });
        cfg.metrics->gaugeCallback("mscd.cache.hits", [this] {
            return int64_t(_pool.stats().hits());
        });
        cfg.metrics->gaugeCallback("mscd.cache.disk_hits", [this] {
            return int64_t(_pool.stats().diskHits());
        });
    }

    unsigned n = cfg.jobs;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    _workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

Dispatcher::~Dispatcher()
{
    {
        std::lock_guard<std::mutex> lock(_mu);
        _stopping = true;
    }
    _cv.notify_all();
    for (auto &w : _workers)
        w.join();
}

void
Dispatcher::workerLoop()
{
    while (true) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(_mu);
            _cv.wait(lk,
                     [&] { return _stopping || !_queue.empty(); });
            if (_queue.empty())
                return;  // stopping and drained
            job = std::move(_queue.front());
            _queue.pop_front();
        }
        if (_queueDepth)
            _queueDepth->add(-1);
        if (_workersBusy)
            _workersBusy->add(1);
        job();
        if (_workersBusy)
            _workersBusy->add(-1);
    }
}

report::RunRecord
Dispatcher::executeCell(pipeline::Session &session,
                        report::RunSpec spec,
                        const runtime::CancelToken *cancel)
{
    spec.opts.cancel = cancel;
    report::RunRecord rec;
    try {
        rec = report::runSpec(spec, session);
    } catch (...) {
        rec = errorRecord(spec, std::current_exception());
    }
    // The token's lifetime ends with the request; never let the
    // record carry the dangling pointer out.
    rec.spec.opts.cancel = nullptr;
    return rec;
}

std::shared_future<report::RunRecord>
Dispatcher::submit(const report::RunSpec &spec,
                   const runtime::CancelToken *cancel,
                   const std::string &rid)
{
    // Resolve the cell's identity: the Session's own simulate-stage
    // key (program bytes + every option field any stage reads) plus
    // the budget, which is outside artifact keys by design but part
    // of a request's observable outcome.
    std::shared_ptr<pipeline::Session> session;
    uint64_t key;
    try {
        session = _pool.session(report::sessionKey(spec), [&] {
            return workloads::buildWorkload(spec.workload, spec.scale);
        });
        pipeline::Hasher h(TAG_CELL);
        h.word(session->stageKey(pipeline::StageKind::Simulate,
                                 spec.opts))
            .word(spec.opts.budget.maxFuel)
            .word(spec.opts.budget.maxSimCycles)
            .word(spec.opts.budget.maxHeapBytes)
            .word(uint64_t(spec.opts.budget.wallMs))
            .word(spec.opts.verifyPartition);
        key = h.digest();
    } catch (...) {
        std::lock_guard<std::mutex> lock(_mu);
        ++_stats.cellsSubmitted;
        if (_cellsSubmitted)
            _cellsSubmitted->inc();
        return readyFuture(
            errorRecord(spec, std::current_exception()));
    }

    std::shared_future<report::RunRecord> fut;
    {
        std::lock_guard<std::mutex> lock(_mu);
        ++_stats.cellsSubmitted;
        if (_cellsSubmitted)
            _cellsSubmitted->inc();
        auto it = _inflight.find(key);
        if (it != _inflight.end()) {
            ++_stats.dedupHits;
            if (_dedupHits)
                _dedupHits->inc();
            return it->second.future;
        }
        auto prom =
            std::make_shared<std::promise<report::RunRecord>>();
        fut = prom->get_future().share();
        _inflight.emplace(key, InFlight{fut});
        if (_cellsInflight)
            _cellsInflight->add(1);
        _queue.push_back([this, prom, session, spec, cancel, key,
                          rid] {
            if (_log && _log->enabled()) {
                report::Json f = report::Json::object();
                f["rid"] = rid;
                f["run"] = spec.id;
                _log->event("cell.start", std::move(f));
            }
            auto t0 = std::chrono::steady_clock::now();
            report::RunRecord rec =
                executeCell(*session, spec, cancel);
            {
                std::lock_guard<std::mutex> lk(_mu);
                _inflight.erase(key);
            }
            if (_cellsInflight)
                _cellsInflight->add(-1);
            if (_log && _log->enabled()) {
                report::Json f = report::Json::object();
                f["rid"] = rid;
                f["run"] = spec.id;
                f["status"] = rec.ok() ? "ok" : "error";
                if (!rec.ok())
                    f["error_kind"] =
                        runtime::errorKindId(rec.error.kind);
                f["dur_us"] = uint64_t(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
                _log->event("cell.done", std::move(f));
            }
            prom->set_value(std::move(rec));
        });
        if (_queueDepth)
            _queueDepth->add(1);
    }
    _cv.notify_one();
    return fut;
}

std::shared_ptr<runtime::CancelToken>
Dispatcher::registerRequest(const std::string &id)
{
    std::lock_guard<std::mutex> lock(_mu);
    auto [it, inserted] = _requests.emplace(id, nullptr);
    if (!inserted)
        return nullptr;
    it->second = std::make_shared<runtime::CancelToken>();
    return it->second;
}

void
Dispatcher::unregisterRequest(const std::string &id)
{
    std::lock_guard<std::mutex> lock(_mu);
    _requests.erase(id);
}

bool
Dispatcher::cancelRequest(const std::string &id)
{
    std::lock_guard<std::mutex> lock(_mu);
    auto it = _requests.find(id);
    if (it == _requests.end())
        return false;
    it->second->requestCancel();
    return true;
}

DispatchStats
Dispatcher::stats() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _stats;
}

ServiceSnapshot
Dispatcher::snapshot() const
{
    // _mu freezes submit/dedup/complete bookkeeping while the pool's
    // cache counters are read (lock order _mu -> pool._mu, the same
    // order submit's callers establish; nothing takes them reversed).
    std::lock_guard<std::mutex> lock(_mu);
    ServiceSnapshot s;
    s.dispatch = _stats;
    s.cache = _pool.stats();
    return s;
}

} // namespace serve
} // namespace msc
