#include "serve/dispatch.h"

#include "pipeline/hash.h"
#include "workloads/workload.h"

namespace msc {
namespace serve {

namespace {

/** Key domain for dispatcher cell identities (distinct from the
 *  per-stage tags in pipeline/session.cc). */
constexpr uint64_t TAG_CELL = 0x6d73636463656c6cull;  // "mscdcell"

/** Turns an escaping exception into the cell's error record, exactly
 *  as report::SweepRunner classifies sweep-cell failures. */
report::RunRecord
errorRecord(const report::RunSpec &spec, std::exception_ptr ep)
{
    report::RunRecord rec;
    rec.spec = spec;
    try {
        std::rethrow_exception(ep);
    } catch (const runtime::StageError &e) {
        rec.error = e.info();
    } catch (const std::exception &e) {
        rec.error.kind = runtime::ErrorKind::Internal;
        rec.error.detail = e.what();
    }
    if (rec.error.workload.empty())
        rec.error.workload = spec.workload;
    return rec;
}

std::shared_future<report::RunRecord>
readyFuture(report::RunRecord rec)
{
    std::promise<report::RunRecord> p;
    p.set_value(std::move(rec));
    return p.get_future().share();
}

} // anonymous namespace

Dispatcher::Dispatcher(Config cfg) : _pool(std::move(cfg.session))
{
    unsigned n = cfg.jobs;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    _workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

Dispatcher::~Dispatcher()
{
    {
        std::lock_guard<std::mutex> lock(_mu);
        _stopping = true;
    }
    _cv.notify_all();
    for (auto &w : _workers)
        w.join();
}

void
Dispatcher::workerLoop()
{
    while (true) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(_mu);
            _cv.wait(lk,
                     [&] { return _stopping || !_queue.empty(); });
            if (_queue.empty())
                return;  // stopping and drained
            job = std::move(_queue.front());
            _queue.pop_front();
        }
        job();
    }
}

report::RunRecord
Dispatcher::executeCell(pipeline::Session &session,
                        report::RunSpec spec,
                        const runtime::CancelToken *cancel)
{
    spec.opts.cancel = cancel;
    report::RunRecord rec;
    try {
        rec = report::runSpec(spec, session);
    } catch (...) {
        rec = errorRecord(spec, std::current_exception());
    }
    // The token's lifetime ends with the request; never let the
    // record carry the dangling pointer out.
    rec.spec.opts.cancel = nullptr;
    return rec;
}

std::shared_future<report::RunRecord>
Dispatcher::submit(const report::RunSpec &spec,
                   const runtime::CancelToken *cancel)
{
    // Resolve the cell's identity: the Session's own simulate-stage
    // key (program bytes + every option field any stage reads) plus
    // the budget, which is outside artifact keys by design but part
    // of a request's observable outcome.
    std::shared_ptr<pipeline::Session> session;
    uint64_t key;
    try {
        session = _pool.session(report::sessionKey(spec), [&] {
            return workloads::buildWorkload(spec.workload, spec.scale);
        });
        pipeline::Hasher h(TAG_CELL);
        h.word(session->stageKey(pipeline::StageKind::Simulate,
                                 spec.opts))
            .word(spec.opts.budget.maxFuel)
            .word(spec.opts.budget.maxSimCycles)
            .word(spec.opts.budget.maxHeapBytes)
            .word(uint64_t(spec.opts.budget.wallMs))
            .word(spec.opts.verifyPartition);
        key = h.digest();
    } catch (...) {
        std::lock_guard<std::mutex> lock(_mu);
        ++_stats.cellsSubmitted;
        return readyFuture(
            errorRecord(spec, std::current_exception()));
    }

    std::shared_future<report::RunRecord> fut;
    {
        std::lock_guard<std::mutex> lock(_mu);
        ++_stats.cellsSubmitted;
        auto it = _inflight.find(key);
        if (it != _inflight.end()) {
            ++_stats.dedupHits;
            return it->second.future;
        }
        auto prom =
            std::make_shared<std::promise<report::RunRecord>>();
        fut = prom->get_future().share();
        _inflight.emplace(key, InFlight{fut});
        _queue.push_back([this, prom, session, spec, cancel, key] {
            report::RunRecord rec =
                executeCell(*session, spec, cancel);
            {
                std::lock_guard<std::mutex> lk(_mu);
                _inflight.erase(key);
            }
            prom->set_value(std::move(rec));
        });
    }
    _cv.notify_one();
    return fut;
}

std::shared_ptr<runtime::CancelToken>
Dispatcher::registerRequest(const std::string &id)
{
    std::lock_guard<std::mutex> lock(_mu);
    auto [it, inserted] = _requests.emplace(id, nullptr);
    if (!inserted)
        return nullptr;
    it->second = std::make_shared<runtime::CancelToken>();
    return it->second;
}

void
Dispatcher::unregisterRequest(const std::string &id)
{
    std::lock_guard<std::mutex> lock(_mu);
    _requests.erase(id);
}

bool
Dispatcher::cancelRequest(const std::string &id)
{
    std::lock_guard<std::mutex> lock(_mu);
    auto it = _requests.find(id);
    if (it == _requests.end())
        return false;
    it->second->requestCancel();
    return true;
}

DispatchStats
Dispatcher::stats() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _stats;
}

} // namespace serve
} // namespace msc
