/**
 * @file
 * The mscd connection server: frames in, frames out.
 *
 * One Server owns one Dispatcher (worker pool + shared SessionPool +
 * optional on-disk artifact cache) and serves any number of
 * connections against it — the "millions of users" shape: identical
 * program+option requests coalesce onto one computation through the
 * content-addressed stage keys, whatever connection they arrive on.
 *
 * A connection is any Transport: `mscd --stdio` wraps the stdin/
 * stdout pair, serveUnix/serveTcp accept sockets, and tests drive
 * scripted StringTransports in-process. Per connection, a reader
 * loop decodes frames and dispatches:
 *
 *  - `cancel` and `stats` are handled inline on the reader thread —
 *    cancel so it can reach a request in flight on the same
 *    connection, stats because a telemetry snapshot must not queue
 *    behind the work it is meant to observe;
 *  - `run`/`sweep`/`trace` execute on a per-request thread that
 *    submits cells to the worker pool and streams response frames
 *    (cells in input order, then one summary) under the connection's
 *    write lock, so frames from concurrent requests interleave only
 *    at frame granularity;
 *  - every malformed frame or payload produces exactly one `error`
 *    frame and the connection stays usable (frame.h documents the
 *    resync rules; tests/test_mscd.cc is the conformance suite).
 *
 * Telemetry (docs/OBSERVABILITY.md): the Server owns the process's
 * obs::MetricsRegistry. The reader loop counts frames, per-verb
 * requests, and malformed payloads in arrival order; request threads
 * observe parse->dispatch/first-frame/done latency histograms; the
 * Dispatcher keeps queue-depth/busy/in-flight gauges. The `stats`
 * verb serves a snapshot of all of it as a `msc.metrics` v1 document
 * — values only move on stderr or in stats results, so sweep
 * documents on stdout remain byte-identical to `msctool sweep`.
 * With ServerConfig::logJson, each request additionally emits
 * structured JSON log lines (rid-correlated, one per lifecycle
 * event) on stderr.
 *
 * Nothing a peer sends can crash the process or leak a worker: cell
 * failures become error records (dispatch.h), protocol failures
 * become error frames, and write failures tear down only their own
 * connection.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "obs/slog.h"
#include "serve/dispatch.h"
#include "serve/frame.h"
#include "serve/listen.h"
#include "serve/protocol.h"

namespace msc {
namespace serve {

struct ServerConfig
{
    Dispatcher::Config dispatch;

    /** Per-request defaults (budget) merged during parsing. */
    RequestDefaults defaults;

    /** Inbound frame-size cap. */
    uint32_t maxFrame = DEFAULT_MAX_FRAME;

    /** Connection-level backpressure: maximum pooled requests
     *  (run/sweep/trace) in flight per connection. A request past the
     *  bound is refused with a structured `busy` error frame — the
     *  connection stays usable and no frame is lost. Inline verbs
     *  (cancel/stats) are exempt, so a saturated peer can still
     *  cancel or observe. 0 = unlimited (`mscd --max-inflight`). */
    unsigned maxInflight = 0;

    /** Emit one structured JSON log line per request lifecycle event
     *  on stderr (`mscd --log-json`; docs/OBSERVABILITY.md). */
    bool logJson = false;
};

class Server
{
  public:
    explicit Server(ServerConfig cfg);

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Serves one connection until end-of-stream; blocking. Safe to
     *  call from multiple threads (one per connection). */
    void serveConnection(Transport &t);

    /** Binds @p path (replacing any stale socket file), accepts
     *  connections until requestStop(), then unlinks the socket.
     *  Returns 0 on clean shutdown, 1 on setup failure (diagnostic
     *  on stderr). */
    int serveUnix(const std::string &path);

    /** Same over TCP on 127.0.0.1:@p port. */
    int serveTcp(uint16_t port);

    /** Stops the accept loop (async-signal-safe: flags + closes the
     *  listening descriptor). In-flight connections finish. */
    void requestStop();

    Dispatcher &dispatcher() { return _dispatch; }

    /** The process's telemetry registry (what the `stats` verb
     *  snapshots); valid for the Server's lifetime. */
    obs::MetricsRegistry &metrics() { return _metrics; }

  private:
    using Clock = std::chrono::steady_clock;

    /** One connection's shared write end (frames must not tear). */
    struct Conn
    {
        Conn(Transport &tr, uint64_t n) : t(tr), id(n) {}
        Transport &t;
        uint64_t id;  ///< Process-wide connection sequence (logs).
        std::mutex mu;

        /** Pooled requests in flight on this connection. Incremented
         *  on the reader thread *before* the next frame is read, so
         *  the backpressure bound is deterministic with respect to
         *  frame arrival order (tests rely on this). */
        std::atomic<unsigned> active{0};
    };

    /** Pre-registered per-verb instruments (hot path never takes the
     *  registry mutex). Null members = not meaningful for the verb
     *  (e.g. dispatch latency for inline verbs). */
    struct VerbMetrics
    {
        obs::Counter *requests = nullptr;
        obs::Histogram *dispatchUs = nullptr;
        obs::Histogram *firstFrameUs = nullptr;
        obs::Histogram *doneUs = nullptr;
    };

    void registerMetrics();
    VerbMetrics &verbMetrics(RequestKind k)
    {
        return _verb[size_t(k)];
    }

    void sendFrame(Conn &conn, const report::Json &frame);
    void sendError(Conn &conn, const std::string &id,
                   runtime::ErrorKind kind, const std::string &detail);
    void runRequest(Conn &conn, const Request &req,
                    const std::shared_ptr<runtime::CancelToken> &token,
                    const std::string &rid, Clock::time_point t0);
    void runTrace(Conn &conn, const Request &req,
                  const std::shared_ptr<runtime::CancelToken> &token,
                  Clock::time_point t0);
    int serveListener(int listen_fd);

    /** Microseconds from @p t0 to now (histogram fodder). */
    static uint64_t sinceUs(Clock::time_point t0);

    ServerConfig _cfg;

    // Telemetry before _dispatch: the dispatcher registers callback
    // gauges into _metrics and both must outlive it.
    obs::MetricsRegistry _metrics;
    obs::JsonLogger _log;
    VerbMetrics _verb[5];
    obs::Counter *_framesIn = nullptr;
    obs::Counter *_framesOut = nullptr;
    obs::Counter *_framesTruncated = nullptr;
    obs::Counter *_framesOversize = nullptr;
    obs::Counter *_reqMalformed = nullptr;
    obs::Counter *_reqBusy = nullptr;
    obs::Counter *_connAccepted = nullptr;
    obs::Counter *_connClosed = nullptr;
    obs::Counter *_connErrors = nullptr;
    obs::Gauge *_requestsInflight = nullptr;
    std::atomic<uint64_t> _reqSeq{0};
    std::atomic<uint64_t> _connSeq{0};

    Dispatcher _dispatch;
    AcceptLoop _accept;
};

} // namespace serve
} // namespace msc
