/**
 * @file
 * The mscd connection server: frames in, frames out.
 *
 * One Server owns one Dispatcher (worker pool + shared SessionPool +
 * optional on-disk artifact cache) and serves any number of
 * connections against it — the "millions of users" shape: identical
 * program+option requests coalesce onto one computation through the
 * content-addressed stage keys, whatever connection they arrive on.
 *
 * A connection is any Transport: `mscd --stdio` wraps the stdin/
 * stdout pair, serveUnix/serveTcp accept sockets, and tests drive
 * scripted StringTransports in-process. Per connection, a reader
 * loop decodes frames and dispatches:
 *
 *  - `cancel` is handled inline on the reader thread, so it can
 *    reach a request in flight on the same connection;
 *  - `run`/`sweep`/`trace` execute on a per-request thread that
 *    submits cells to the worker pool and streams response frames
 *    (cells in input order, then one summary) under the connection's
 *    write lock, so frames from concurrent requests interleave only
 *    at frame granularity;
 *  - every malformed frame or payload produces exactly one `error`
 *    frame and the connection stays usable (frame.h documents the
 *    resync rules; tests/test_mscd.cc is the conformance suite).
 *
 * Nothing a peer sends can crash the process or leak a worker: cell
 * failures become error records (dispatch.h), protocol failures
 * become error frames, and write failures tear down only their own
 * connection.
 */

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "serve/dispatch.h"
#include "serve/frame.h"
#include "serve/protocol.h"

namespace msc {
namespace serve {

struct ServerConfig
{
    Dispatcher::Config dispatch;

    /** Per-request defaults (budget) merged during parsing. */
    RequestDefaults defaults;

    /** Inbound frame-size cap. */
    uint32_t maxFrame = DEFAULT_MAX_FRAME;
};

class Server
{
  public:
    explicit Server(ServerConfig cfg);

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Serves one connection until end-of-stream; blocking. Safe to
     *  call from multiple threads (one per connection). */
    void serveConnection(Transport &t);

    /** Binds @p path (replacing any stale socket file), accepts
     *  connections until requestStop(), then unlinks the socket.
     *  Returns 0 on clean shutdown, 1 on setup failure (diagnostic
     *  on stderr). */
    int serveUnix(const std::string &path);

    /** Same over TCP on 127.0.0.1:@p port. */
    int serveTcp(uint16_t port);

    /** Stops the accept loop (async-signal-safe: flags + closes the
     *  listening descriptor). In-flight connections finish. */
    void requestStop();

    Dispatcher &dispatcher() { return _dispatch; }

  private:
    /** One connection's shared write end (frames must not tear). */
    struct Conn
    {
        explicit Conn(Transport &tr) : t(tr) {}
        Transport &t;
        std::mutex mu;
    };

    void sendFrame(Conn &conn, const report::Json &frame);
    void sendError(Conn &conn, const std::string &id,
                   runtime::ErrorKind kind, const std::string &detail);
    void runRequest(Conn &conn, const Request &req,
                    const std::shared_ptr<runtime::CancelToken> &token);
    void runTrace(Conn &conn, const Request &req,
                  const std::shared_ptr<runtime::CancelToken> &token);
    int serveListener(int listen_fd);

    ServerConfig _cfg;
    Dispatcher _dispatch;
    std::atomic<int> _listenFd{-1};
    std::atomic<bool> _stop{false};
};

} // namespace serve
} // namespace msc
