/**
 * @file
 * Execution profiling: block/edge frequencies, per-function dynamic
 * sizes, and dynamic def-use dependence frequencies.
 *
 * The paper integrates all heuristics through profiling (§3): basic
 * block frequencies steer register communication scheduling and task
 * selection; def-use dependences are prioritized by execution
 * frequency; call inclusion compares a callee's *dynamic* instruction
 * count against CALL_THRESH.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/program.h"
#include "runtime/budget.h"

namespace msc {
namespace profile {

/** Key identifying an intra-function CFG edge dynamically taken. */
struct EdgeKey
{
    ir::FuncId func;
    ir::BlockId from, to;

    friend bool
    operator==(const EdgeKey &a, const EdgeKey &b)
    {
        return a.func == b.func && a.from == b.from && a.to == b.to;
    }
};

struct EdgeKeyHash
{
    size_t
    operator()(const EdgeKey &k) const noexcept
    {
        return (size_t(k.func) * 0x9e3779b97f4a7c15ull)
            ^ (size_t(k.from) << 20) ^ k.to;
    }
};

/** Key identifying a dynamic def-use pair (producer inst, consumer
 *  inst, register). */
struct DefUseKey
{
    ir::InstRef def, use;
    ir::RegId reg;

    friend bool
    operator==(const DefUseKey &a, const DefUseKey &b)
    {
        return a.def == b.def && a.use == b.use && a.reg == b.reg;
    }
};

struct DefUseKeyHash
{
    size_t
    operator()(const DefUseKey &k) const noexcept
    {
        std::hash<ir::InstRef> h;
        return h(k.def) * 31 + h(k.use) + k.reg;
    }
};

/** Profile data gathered by one training run. */
struct Profile
{
    /** blockCount[func][block]: dynamic entries into each block. */
    std::vector<std::vector<uint64_t>> blockCount;

    /** Dynamic traversal counts of intra-function CFG edges. */
    std::unordered_map<EdgeKey, uint64_t, EdgeKeyHash> edgeCount;

    /** Per-function invocation counts. */
    std::vector<uint64_t> funcInvocations;

    /** Per-function *inclusive* dynamic instruction totals (callee
     *  instructions count toward every live caller). */
    std::vector<uint64_t> funcInclusiveInsts;

    /** Dynamic def-use pair frequencies. */
    std::unordered_map<DefUseKey, uint64_t, DefUseKeyHash> defUseCount;

    /** Total retired instructions. */
    uint64_t totalInsts = 0;

    /**
     * Average inclusive dynamic instructions per invocation of @p f;
     * returns a large value when the function never ran (so that the
     * call-inclusion test conservatively fails).
     */
    double
    avgCallInsts(ir::FuncId f) const
    {
        if (funcInvocations[f] == 0)
            return 1e18;
        return double(funcInclusiveInsts[f]) / double(funcInvocations[f]);
    }

    uint64_t
    blockFreq(ir::FuncId f, ir::BlockId b) const
    {
        return blockCount[f][b];
    }

    uint64_t
    edgeFreq(ir::FuncId f, ir::BlockId from, ir::BlockId to) const
    {
        auto it = edgeCount.find({f, from, to});
        return it == edgeCount.end() ? 0 : it->second;
    }
};

/**
 * Runs the program functionally and gathers a Profile.
 *
 * @param prog program to profile.
 * @param max_insts training-run instruction budget.
 * @param gov optional execution governor: charged one fuel per
 *        retired instruction and pulse-checked for cancellation and
 *        deadlines (see runtime/budget.h).
 */
Profile profileProgram(const ir::Program &prog,
                       uint64_t max_insts = 50'000'000,
                       runtime::Governor *gov = nullptr);

} // namespace profile
} // namespace msc
