/**
 * @file
 * Dynamic instruction traces.
 *
 * The functional interpreter emits one TraceEntry per retired
 * instruction; the Multiscalar timing model replays the stream,
 * cutting it into dynamic tasks per a TaskPartition.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "ir/types.h"

namespace msc {
namespace profile {

/** One dynamically executed instruction. */
struct TraceEntry
{
    ir::InstRef ref;        ///< Static instruction identity.
    uint64_t addr = 0;      ///< Effective word address for memory ops.
    bool taken = false;     ///< Outcome for conditional branches.
};

/** A full dynamic trace. */
struct Trace
{
    std::vector<TraceEntry> entries;

    /** True when the program ran to Halt within the entry budget. */
    bool completed = false;

    size_t size() const { return entries.size(); }
    const TraceEntry &operator[](size_t i) const { return entries[i]; }
};

} // namespace profile
} // namespace msc
