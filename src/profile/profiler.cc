#include "profile/profiler.h"

#include "profile/interpreter.h"

namespace msc {
namespace profile {

Profile
profileProgram(const ir::Program &prog, uint64_t max_insts,
               runtime::Governor *gov)
{
    Profile p;
    p.blockCount.resize(prog.functions.size());
    for (const auto &f : prog.functions)
        p.blockCount[f.id].assign(f.blocks.size(), 0);
    p.funcInvocations.assign(prog.functions.size(), 0);
    p.funcInclusiveInsts.assign(prog.functions.size(), 0);

    // Last dynamic writer of each register, for def-use frequencies.
    std::vector<ir::InstRef> last_def(ir::NUM_REGS);

    // Call-frame stack: per live invocation, (function, call-site ref,
    // inclusive instruction counter base). Inclusive counts are
    // accumulated by adding 1 to every live frame per instruction.
    struct Frame { ir::FuncId func; ir::InstRef callSite; };
    std::vector<Frame> frames;
    frames.push_back({prog.entry, {}});
    p.funcInvocations[prog.entry]++;

    ir::InstRef prev;
    bool prev_was_block_end = false;
    bool prev_was_xfer = false;  // Call or Ret: suppress edge counting.

    std::vector<ir::RegId> scratch;

    Interpreter interp(prog);
    interp.run([&](ir::InstRef ref, const ir::Instruction &in,
                   uint64_t, bool) {
        // Block entry counting.
        if (ref.index == 0)
            p.blockCount[ref.func][ref.block]++;

        // Intra-function edge counting.
        if (prev.valid() && prev_was_block_end && !prev_was_xfer &&
            prev.func == ref.func && ref.index == 0) {
            p.edgeCount[{ref.func, prev.block, ref.block}]++;
        }

        // Inclusive dynamic size: this instruction counts toward every
        // function with a live activation.
        for (const Frame &fr : frames)
            p.funcInclusiveInsts[fr.func]++;

        // Def-use dependence frequencies.
        scratch.clear();
        in.uses(scratch);
        for (ir::RegId r : scratch) {
            if (last_def[r].valid())
                p.defUseCount[{last_def[r], ref, r}]++;
        }
        scratch.clear();
        in.defs(scratch);
        for (ir::RegId r : scratch)
            last_def[r] = ref;

        if (in.op == ir::Opcode::Call) {
            frames.push_back({in.callee, ref});
            p.funcInvocations[in.callee]++;
        } else if (in.op == ir::Opcode::Ret && frames.size() > 1) {
            // Re-attribute the ABI clobber set to the call site, so
            // dynamic def-use pairs match the static (intraprocedural)
            // def-use chains in which Call is the defining site.
            ir::InstRef cs = frames.back().callSite;
            frames.pop_back();
            last_def[ir::REG_RET] = cs;
            for (ir::RegId r = ir::REG_CALLER_SAVED_FIRST;
                 r <= ir::REG_CALLER_SAVED_LAST; ++r) {
                last_def[r] = cs;
            }
            last_def[ir::FREG_RET] = cs;
            for (ir::RegId r = ir::FREG_CALLER_SAVED_FIRST;
                 r <= ir::FREG_CALLER_SAVED_LAST; ++r) {
                last_def[r] = cs;
            }
        }

        prev = ref;
        prev_was_xfer = (in.op == ir::Opcode::Call ||
                         in.op == ir::Opcode::Ret);
        const auto &bb = prog.functions[ref.func].blocks[ref.block];
        prev_was_block_end = (ref.index + 1 == bb.insts.size());
    }, max_insts, gov);

    p.totalInsts = interp.instCount();
    return p;
}

} // namespace profile
} // namespace msc
