/**
 * @file
 * Functional interpreter for mini-IR programs.
 *
 * Executes a program instruction-at-a-time with architectural
 * semantics only (no timing). Drives both profiling and dynamic trace
 * generation; the template run() hands every retired instruction to a
 * visitor so consumers avoid storing state they do not need.
 */

#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <vector>

#include "ir/program.h"
#include "ir/semantics.h"
#include "profile/trace.h"
#include "runtime/budget.h"

namespace msc {
namespace profile {

/**
 * Allocator that hands out zeroed pages straight from the OS (calloc)
 * and skips the container's own element zero-fill. A workload's data
 * image is tens of MB but sparsely touched; with an eager memset every
 * page materializes up front, which dominates frontend time when the
 * pipeline constructs one interpreter per (partition, traceInsts)
 * combination. Only safe for containers that never shrink-then-regrow
 * into reused storage (the skipped fill would expose stale values);
 * the interpreter's memory image is sized once and never resized.
 */
template <typename T>
struct ZeroAllocator
{
    using value_type = T;

    ZeroAllocator() = default;
    template <typename U>
    ZeroAllocator(const ZeroAllocator<U> &)
    {}

    T *
    allocate(size_t n)
    {
        void *p = std::calloc(n ? n : 1, sizeof(T));
        if (!p)
            throw std::bad_alloc();
        return static_cast<T *>(p);
    }

    void deallocate(T *p, size_t) { std::free(p); }

    /** Value-initialization is a no-op: calloc already zeroed. */
    template <typename U>
    void construct(U *)
    {}

    template <typename U, typename... Args>
    void
    construct(U *p, Args &&...args)
    {
        ::new (static_cast<void *>(p)) U(std::forward<Args>(args)...);
    }

    bool operator==(const ZeroAllocator &) const { return true; }
};

/** Data-memory image backed by lazily-materialized zero pages. */
using MemImage = std::vector<int64_t, ZeroAllocator<int64_t>>;

/**
 * Interprets one program. The interpreter owns the register file and
 * the data memory; both are inspectable after a run for functional
 * assertions in tests.
 */
class Interpreter
{
  public:
    explicit Interpreter(const ir::Program &prog)
        : _prog(prog), _mem(prog.memWords)
    {
        for (size_t i = 0; i < prog.initData.size() && i < _mem.size(); ++i)
            _mem[i] = prog.initData[i];
        _regs.fill(0);
    }

    /** Register file access (FP values are bit-cast doubles). */
    int64_t reg(ir::RegId r) const { return _regs[r]; }
    double freg(ir::RegId r) const { return std::bit_cast<double>(_regs[r]); }
    void setReg(ir::RegId r, int64_t v) { if (r) _regs[r] = v; }

    /** Data memory access (word addressed). */
    int64_t mem(uint64_t w) const { return _mem[w]; }
    double
    fmem(uint64_t w) const
    {
        return std::bit_cast<double>(_mem[w]);
    }

    /** Whole register file (architectural state capture). */
    const std::array<int64_t, ir::NUM_REGS> &regs() const { return _regs; }

    /** Whole data-memory image (word addressed). */
    const MemImage &memory() const { return _mem; }

    /** True when the last run() reached Halt. */
    bool halted() const { return _halted; }

    /** Dynamic instructions retired by the last run(). */
    uint64_t instCount() const { return _count; }

    /**
     * Runs the program from its entry function, invoking
     * @p visit(ref, inst, addr, taken) for each retired instruction.
     * Stops at Halt or after @p max_insts instructions.
     *
     * @p gov, when non-null, is charged one fuel per retired
     * instruction (in Governor::PULSE_INTERVAL blocks, settled
     * exactly at every return path) and pulse-checked for
     * cancellation/deadline at the same interval; a tripped budget
     * throws runtime::StageError out of the run.
     *
     * @return number of instructions executed.
     */
    template <typename Visitor>
    uint64_t
    run(Visitor &&visit, uint64_t max_insts = DEFAULT_MAX_INSTS,
        runtime::Governor *gov = nullptr)
    {
        const ir::Function *fn = &_prog.functions[_prog.entry];
        ir::BlockId blk = fn->entry;
        uint32_t idx = 0;
        _halted = false;
        _count = 0;

        // Fuel is charged in blocks so the hot loop pays one compare;
        // settle() brings the governor exactly up to _count.
        uint64_t charged = 0;
        auto settle = [&]() {
            if (gov) {
                gov->chargeFuel(_count - charged);
                charged = _count;
                gov->checkPulse();
            }
        };

        struct RetSite { ir::FuncId func; ir::BlockId block; };
        std::vector<RetSite> stack;
        stack.reserve(64);

        while (_count < max_insts) {
            if (gov &&
                _count - charged >= runtime::Governor::PULSE_INTERVAL)
                settle();
            const ir::BasicBlock &bb = fn->blocks[blk];
            if (idx >= bb.insts.size())
                throw runtime::StageError(
                    runtime::ErrorKind::InvalidInput, {},
                    "interpreter ran off block end");
            const ir::Instruction &in = bb.insts[idx];
            ir::InstRef ref{fn->id, blk, idx};

            uint64_t addr = 0;
            bool taken = false;
            ir::BlockId next_blk = blk;
            uint32_t next_idx = idx + 1;
            const ir::Function *next_fn = fn;
            bool advanced = false;

            switch (in.op) {
              case ir::Opcode::Halt:
                visit(ref, in, addr, taken);
                ++_count;
                _halted = true;
                settle();
                return _count;

              case ir::Opcode::Br:
                taken = (_regs[in.src1] != 0);
                goto branch_common;
              case ir::Opcode::BrZ:
                taken = (_regs[in.src1] == 0);
              branch_common:
                next_blk = taken ? in.target : bb.fallthrough;
                next_idx = 0;
                advanced = true;
                break;

              case ir::Opcode::Jmp:
                next_blk = in.target;
                next_idx = 0;
                advanced = true;
                break;

              case ir::Opcode::Call:
                stack.push_back({fn->id, bb.fallthrough});
                next_fn = &_prog.functions[in.callee];
                next_blk = next_fn->entry;
                next_idx = 0;
                advanced = true;
                break;

              case ir::Opcode::Ret:
                if (stack.empty()) {
                    visit(ref, in, addr, taken);
                    ++_count;
                    _halted = true;  // Ret from entry terminates.
                    settle();
                    return _count;
                }
                next_fn = &_prog.functions[stack.back().func];
                next_blk = stack.back().block;
                next_idx = 0;
                stack.pop_back();
                advanced = true;
                break;

              default:
                execute(in, addr);
                break;
            }

            visit(ref, in, addr, taken);
            ++_count;

            if (!advanced && idx + 1 >= bb.insts.size()) {
                // Implicit fall-through at block end.
                next_blk = bb.fallthrough;
                next_idx = 0;
            }
            fn = next_fn;
            blk = next_blk;
            idx = next_idx;
        }
        settle();
        return _count;
    }

    /** Runs and captures the full dynamic trace. The trace buffer is
     *  the pipeline's dominant allocation, so its planned reservation
     *  is charged against @p gov's heap watermark up front. */
    Trace
    trace(uint64_t max_insts = DEFAULT_MAX_INSTS,
          runtime::Governor *gov = nullptr)
    {
        Trace t;
        uint64_t planned = std::min<uint64_t>(max_insts, 1u << 22);
        if (gov)
            gov->chargeHeap(planned * sizeof(TraceEntry));
        t.entries.reserve(planned);
        run([&](ir::InstRef ref, const ir::Instruction &, uint64_t addr,
                bool taken) {
            t.entries.push_back({ref, addr, taken});
        }, max_insts, gov);
        t.completed = _halted;
        return t;
    }

    /** Runs without observation; returns instructions executed. */
    uint64_t
    runQuiet(uint64_t max_insts = DEFAULT_MAX_INSTS,
             runtime::Governor *gov = nullptr)
    {
        return run([](ir::InstRef, const ir::Instruction &, uint64_t,
                      bool) {}, max_insts, gov);
    }

    static constexpr uint64_t DEFAULT_MAX_INSTS = 50'000'000;

  private:
    /**
     * Executes a non-control instruction; fills @p addr for mem ops.
     * Data opcodes follow the UB-free architectural contract in
     * ir/semantics.h (wrapping arithmetic, pinned div/FtoI cases).
     */
    void
    execute(const ir::Instruction &in, uint64_t &addr)
    {
        using ir::Opcode;
        auto wr = [&](int64_t v) {
            if (in.dst != ir::REG_ZERO)
                _regs[in.dst] = v;
        };

        switch (in.op) {
          case Opcode::Nop:
            break;

          case Opcode::Load:
          case Opcode::FLoad:
            addr = effAddr(in.src1, in.imm);
            wr(_mem[addr]);
            break;
          case Opcode::Store:
          case Opcode::FStore:
            addr = effAddr(in.src2, in.imm);
            _mem[addr] = _regs[in.src1];
            break;

          default: {
            const ir::OpInfo &oi = in.info();
            if (!oi.hasDst)
                throw std::runtime_error("execute: unexpected opcode");
            int64_t a = oi.readsSrc1 ? _regs[in.src1] : 0;
            int64_t b = (oi.readsSrc2 && in.src2 != ir::NO_REG)
                ? _regs[in.src2] : in.imm;
            wr(ir::evalScalar(in.op, a, b));
            break;
          }
        }
    }

    uint64_t
    effAddr(ir::RegId base, int64_t off) const
    {
        int64_t a = (base != ir::NO_REG ? _regs[base] : 0) + off;
        uint64_t w = uint64_t(a);
        if (w >= _mem.size())
            throw runtime::StageError(
                runtime::ErrorKind::InvalidInput, {},
                "memory access out of bounds (word " +
                    std::to_string(w) + " of " +
                    std::to_string(_mem.size()) + ")");
        return w;
    }

    const ir::Program &_prog;
    std::array<int64_t, ir::NUM_REGS> _regs;
    MemImage _mem;
    bool _halted = false;
    uint64_t _count = 0;
};

} // namespace profile
} // namespace msc
