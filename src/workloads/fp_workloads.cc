/**
 * @file
 * Floating-point SPEC95 analogs: regular counted loops, stencils,
 * recurrences, and loop-level parallelism — the profile the paper's
 * heuristics exploit best (§4.3.1).
 */

#include "workloads/common.h"

namespace msc {
namespace workloads {

using namespace ir;

namespace {

int64_t
factor(Scale s, int64_t small_v, int64_t full_v)
{
    return s == Scale::Small ? small_v : full_v;
}

/** Emits: dst_f = double(i & mask) * scale, via itof. */
void
emitSeedDouble(FunctionBuilder &f, RegId dst_f, RegId i, int64_t mask,
               double scale, RegId t_int, RegId t_fp)
{
    f.andi(t_int, i, mask);
    f.itof(dst_f, t_int);
    f.fli(t_fp, scale);
    f.fmul(dst_f, dst_f, t_fp);
}

/** Emits the checksum epilogue: store ftoi(sum_f * 1000) and halt. */
void
emitFpChecksum(FunctionBuilder &f, RegId sum_f, RegId t_fp, RegId t_int)
{
    f.fli(t_fp, 1000.0);
    f.fmul(sum_f, sum_f, t_fp);
    f.ftoi(t_int, sum_f);
    f.storeAbs(t_int, CHECKSUM_ADDR);
    f.halt();
}

} // anonymous namespace

// 101.tomcatv analog: 2D mesh relaxation over two grids with 5-point
// stencils and a residual reduction.
Program
buildTomcatv(Scale s)
{
    const int64_t N = 32;
    const int64_t X = 20000, Y = 22000, XN = 24000, YN = 26000;
    const int64_t iters = factor(s, 1, 8);

    IRBuilder b("tomcatv");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");

    const RegId i = S0, lim = S1, tmp = T0, it = S2, itlim = S3;
    const RegId row = S4, col = S5, idx = S6;
    const RegId fx = F0, racc = F1, f4 = F2, fq = F3, sum = FS0;
    const RegId fy = F4;

    f.li(lim, N * N);
    auto init = emitCountedLoop(f, i, lim, tmp);
    {
        emitSeedDouble(f, fx, i, 63, 0.125, T1, F5);
        f.addi(tmp, i, X);
        f.fstore(fx, tmp, 0);
        emitSeedDouble(f, fy, i, 127, 0.0625, T1, F5);
        f.addi(tmp, i, Y);
        f.fstore(fy, tmp, 0);
        f.jmp(init.latch);
    }
    f.setBlock(init.exit);

    f.fli(sum, 0.0);
    f.li(itlim, iters);
    auto outer = emitCountedLoop(f, it, itlim, tmp);
    {
        BlockId rh = f.newBlock(), rb = f.newBlock();
        BlockId ch = f.newBlock(), cb = f.newBlock();
        BlockId cx = f.newBlock(), rx = f.newBlock();
        BlockId copyh = f.newBlock(), copyb = f.newBlock();
        BlockId oend = f.newBlock();

        f.li(row, 1);
        f.fallthroughTo(rh);

        f.setBlock(rh);
        f.slti(tmp, row, N - 1);
        f.br(tmp, rb, rx);

        f.setBlock(rb);
        f.li(col, 1);
        f.fallthroughTo(ch);

        f.setBlock(ch);
        f.slti(tmp, col, N - 1);
        f.br(tmp, cb, cx);

        f.setBlock(cb);
        f.muli(idx, row, N);
        f.add(idx, idx, col);
        // X stencil.
        f.addi(tmp, idx, X);
        f.fload(fx, tmp, 0);
        f.fload(racc, tmp, 1);
        f.fload(fq, tmp, -1);
        f.fadd(racc, racc, fq);
        f.fload(fq, tmp, N);
        f.fadd(racc, racc, fq);
        f.fload(fq, tmp, -N);
        f.fadd(racc, racc, fq);
        f.fli(f4, 4.0);
        f.fmul(fq, fx, f4);
        f.fsub(racc, racc, fq);
        f.fli(f4, 0.25);
        f.fmul(racc, racc, f4);
        f.fadd(fq, fx, racc);
        f.addi(tmp, idx, XN);
        f.fstore(fq, tmp, 0);
        f.fadd(sum, sum, racc);
        // Y stencil.
        f.addi(tmp, idx, Y);
        f.fload(fy, tmp, 0);
        f.fload(racc, tmp, 1);
        f.fload(fq, tmp, -1);
        f.fadd(racc, racc, fq);
        f.fload(fq, tmp, N);
        f.fadd(racc, racc, fq);
        f.fload(fq, tmp, -N);
        f.fadd(racc, racc, fq);
        f.fli(f4, 4.0);
        f.fmul(fq, fy, f4);
        f.fsub(racc, racc, fq);
        f.fli(f4, 0.25);
        f.fmul(racc, racc, f4);
        f.fadd(fq, fy, racc);
        f.addi(tmp, idx, YN);
        f.fstore(fq, tmp, 0);
        f.addi(col, col, 1);
        f.jmp(ch);

        f.setBlock(cx);
        f.addi(row, row, 1);
        f.jmp(rh);

        f.setBlock(rx);
        // Copy the new grids back.
        f.li(i, 0);
        f.fallthroughTo(copyh);

        f.setBlock(copyh);
        f.slt(tmp, i, lim);
        f.br(tmp, copyb, oend);

        f.setBlock(copyb);
        f.addi(tmp, i, XN);
        f.fload(fx, tmp, 0);
        f.addi(tmp, i, X);
        f.fstore(fx, tmp, 0);
        f.addi(tmp, i, YN);
        f.fload(fy, tmp, 0);
        f.addi(tmp, i, Y);
        f.fstore(fy, tmp, 0);
        f.addi(i, i, 1);
        f.jmp(copyh);

        f.setBlock(oend);
        f.jmp(outer.latch);
    }
    f.setBlock(outer.exit);
    emitFpChecksum(f, sum, F5, T1);

    return b.build();
}

// 102.swim analog: shallow-water update, three grids, three separate
// interior sweeps per timestep.
Program
buildSwim(Scale s)
{
    const int64_t N = 32;
    const int64_t U = 30000, V = 32000, P = 34000;
    const int64_t UN = 36000, VN = 38000, PN = 40000;
    const int64_t iters = factor(s, 1, 9);

    IRBuilder b("swim");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");

    const RegId i = S0, lim = S1, tmp = T0, it = S2, itlim = S3;
    const RegId fa = F0, fb = F1, fc = F2, sum = FS0;

    f.li(lim, N * N);
    auto init = emitCountedLoop(f, i, lim, tmp);
    {
        emitSeedDouble(f, fa, i, 63, 0.1, T1, F5);
        f.addi(tmp, i, U);
        f.fstore(fa, tmp, 0);
        emitSeedDouble(f, fb, i, 31, 0.2, T1, F5);
        f.addi(tmp, i, V);
        f.fstore(fb, tmp, 0);
        emitSeedDouble(f, fc, i, 15, 0.5, T1, F5);
        f.addi(tmp, i, P);
        f.fstore(fc, tmp, 0);
        f.jmp(init.latch);
    }
    f.setBlock(init.exit);

    f.fli(sum, 0.0);
    f.li(itlim, iters);
    auto outer = emitCountedLoop(f, it, itlim, tmp);
    {
        // Three separate interior sweeps (u, v, p), then copy-back.
        BlockId uh = f.newBlock(), ub = f.newBlock();
        BlockId vh = f.newBlock(), vb = f.newBlock();
        BlockId ph = f.newBlock(), pb = f.newBlock();
        BlockId kh = f.newBlock(), kb = f.newBlock();
        BlockId oend = f.newBlock();

        const int64_t LO = N + 1, HI = N * N - N - 1;

        f.li(i, LO);
        f.fallthroughTo(uh);

        f.setBlock(uh);
        f.slti(tmp, i, HI);
        f.br(tmp, ub, vh);

        f.setBlock(ub);
        f.addi(tmp, i, P);
        f.fload(fa, tmp, 1);
        f.fload(fb, tmp, 0);
        f.fsub(fa, fa, fb);
        f.fli(fc, 0.05);
        f.fmul(fa, fa, fc);
        f.addi(tmp, i, U);
        f.fload(fb, tmp, 0);
        f.fadd(fa, fa, fb);
        f.addi(tmp, i, UN);
        f.fstore(fa, tmp, 0);
        f.addi(i, i, 1);
        f.jmp(uh);

        f.setBlock(vh);
        // (Entered with i == HI; reset for the v sweep.)
        f.li(i, LO);
        f.fallthroughTo(ph);

        f.setBlock(ph);
        f.slti(tmp, i, HI);
        f.br(tmp, vb, kh);

        f.setBlock(vb);
        f.addi(tmp, i, P);
        f.fload(fa, tmp, N);
        f.fload(fb, tmp, 0);
        f.fsub(fa, fa, fb);
        f.fli(fc, 0.05);
        f.fmul(fa, fa, fc);
        f.addi(tmp, i, V);
        f.fload(fb, tmp, 0);
        f.fadd(fa, fa, fb);
        f.addi(tmp, i, VN);
        f.fstore(fa, tmp, 0);
        // p update folded into the same sweep position.
        f.addi(tmp, i, UN);
        f.fload(fa, tmp, 0);
        f.fload(fb, tmp, -1);
        f.fsub(fa, fa, fb);
        f.addi(tmp, i, VN);
        f.fload(fb, tmp, 0);
        f.fload(fc, tmp, -N);
        f.fsub(fb, fb, fc);
        f.fadd(fa, fa, fb);
        f.fli(fc, 0.03);
        f.fmul(fa, fa, fc);
        f.addi(tmp, i, P);
        f.fload(fb, tmp, 0);
        f.fsub(fb, fb, fa);
        f.addi(tmp, i, PN);
        f.fstore(fb, tmp, 0);
        f.fadd(sum, sum, fa);
        f.addi(i, i, 1);
        f.jmp(ph);

        f.setBlock(pb);  // Unused (p folded above); keep valid.
        f.nop();
        f.jmp(kh);

        // Copy back.
        f.setBlock(kh);
        f.li(i, LO);
        f.fallthroughTo(kb);

        f.setBlock(kb);
        BlockId kb2 = f.newBlock();
        f.slti(tmp, i, HI);
        f.br(tmp, kb2, oend);

        f.setBlock(kb2);
        f.addi(tmp, i, UN);
        f.fload(fa, tmp, 0);
        f.addi(tmp, i, U);
        f.fstore(fa, tmp, 0);
        f.addi(tmp, i, VN);
        f.fload(fa, tmp, 0);
        f.addi(tmp, i, V);
        f.fstore(fa, tmp, 0);
        f.addi(tmp, i, PN);
        f.fload(fa, tmp, 0);
        f.addi(tmp, i, P);
        f.fstore(fa, tmp, 0);
        f.addi(i, i, 1);
        f.jmp(kb);

        f.setBlock(oend);
        f.jmp(outer.latch);
    }
    f.setBlock(outer.exit);
    emitFpChecksum(f, sum, F5, T1);

    return b.build();
}

// 103.su2cor analog: repeated complex matrix-vector products with
// inner-product reductions.
Program
buildSu2cor(Scale s)
{
    const int64_t M = 24;
    const int64_t A = 50000;            // M*M complex (2 words each).
    const int64_t VV = 56000, W = 58000; // M complex each.
    const int64_t reps = factor(s, 3, 24);

    IRBuilder b("su2cor");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");

    const RegId i = S0, lim = S1, tmp = T0, rep = S2, rlim = S3;
    const RegId row = S4, k = S5, addr = S6;
    const RegId are = F0, aim = F1, vre = F2, vim = F3;
    const RegId accre = F4, accim = F5, t1 = F8, t2 = F9;
    const RegId sum = FS0;

    f.li(lim, M * M);
    auto inita = emitCountedLoop(f, i, lim, tmp);
    {
        emitSeedDouble(f, are, i, 31, 0.03, T1, F10);
        f.shli(tmp, i, 1);
        f.addi(tmp, tmp, A);
        f.fstore(are, tmp, 0);
        emitSeedDouble(f, aim, i, 15, 0.02, T1, F10);
        f.fstore(aim, tmp, 1);
        f.jmp(inita.latch);
    }
    f.setBlock(inita.exit);

    f.li(lim, M);
    auto initv = emitCountedLoop(f, i, lim, tmp);
    {
        emitSeedDouble(f, vre, i, 7, 0.25, T1, F10);
        f.shli(tmp, i, 1);
        f.addi(tmp, tmp, VV);
        f.fstore(vre, tmp, 0);
        emitSeedDouble(f, vim, i, 3, 0.5, T1, F10);
        f.fstore(vim, tmp, 1);
        f.jmp(initv.latch);
    }
    f.setBlock(initv.exit);

    f.fli(sum, 0.0);
    f.li(rlim, reps);
    auto outer = emitCountedLoop(f, rep, rlim, tmp);
    {
        BlockId rh = f.newBlock(), rb = f.newBlock();
        BlockId kh = f.newBlock(), kb = f.newBlock();
        BlockId kx = f.newBlock(), rx = f.newBlock();
        BlockId ch = f.newBlock(), cb = f.newBlock();
        BlockId oend = f.newBlock();

        f.li(row, 0);
        f.fallthroughTo(rh);

        f.setBlock(rh);
        f.slti(tmp, row, M);
        f.br(tmp, rb, rx);

        f.setBlock(rb);
        f.fli(accre, 0.0);
        f.fli(accim, 0.0);
        f.li(k, 0);
        f.fallthroughTo(kh);

        f.setBlock(kh);
        f.slti(tmp, k, M);
        f.br(tmp, kb, kx);

        f.setBlock(kb);
        f.muli(addr, row, M);
        f.add(addr, addr, k);
        f.shli(addr, addr, 1);
        f.addi(addr, addr, A);
        f.fload(are, addr, 0);
        f.fload(aim, addr, 1);
        f.shli(addr, k, 1);
        f.addi(addr, addr, VV);
        f.fload(vre, addr, 0);
        f.fload(vim, addr, 1);
        f.fmul(t1, are, vre);
        f.fmul(t2, aim, vim);
        f.fsub(t1, t1, t2);
        f.fadd(accre, accre, t1);
        f.fmul(t1, are, vim);
        f.fmul(t2, aim, vre);
        f.fadd(t1, t1, t2);
        f.fadd(accim, accim, t1);
        f.addi(k, k, 1);
        f.jmp(kh);

        f.setBlock(kx);
        f.shli(addr, row, 1);
        f.addi(addr, addr, W);
        f.fstore(accre, addr, 0);
        f.fstore(accim, addr, 1);
        f.fadd(sum, sum, accre);
        f.addi(row, row, 1);
        f.jmp(rh);

        // v = w * 0.05 (keeps magnitudes bounded).
        f.setBlock(rx);
        f.li(i, 0);
        f.fallthroughTo(ch);

        f.setBlock(ch);
        f.slti(tmp, i, M);
        f.br(tmp, cb, oend);

        f.setBlock(cb);
        f.shli(addr, i, 1);
        f.addi(addr, addr, W);
        f.fload(vre, addr, 0);
        f.fload(vim, addr, 1);
        f.fli(t1, 0.05);
        f.fmul(vre, vre, t1);
        f.fmul(vim, vim, t1);
        f.shli(addr, i, 1);
        f.addi(addr, addr, VV);
        f.fstore(vre, addr, 0);
        f.fstore(vim, addr, 1);
        f.addi(i, i, 1);
        f.jmp(ch);

        f.setBlock(oend);
        f.jmp(outer.latch);
    }
    f.setBlock(outer.exit);
    emitFpChecksum(f, sum, F10, T1);

    return b.build();
}

// 104.hydro2d analog: many separate sweeps with very small bodies —
// the paper notes hydro2d's basic blocks are unusually small for an
// FP code.
Program
buildHydro2d(Scale s)
{
    const int64_t N = 2048;
    const int64_t AA = 60000, BB = 63000, CC = 66000, DD = 69000;
    const int64_t iters = factor(s, 1, 11);

    IRBuilder b("hydro2d");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");

    const RegId i = S0, lim = S1, tmp = T0, it = S2, itlim = S3;
    const RegId fa = F0, fb = F1, sum = FS0;

    f.li(lim, N);
    auto init = emitCountedLoop(f, i, lim, tmp);
    {
        emitSeedDouble(f, fa, i, 255, 0.01, T1, F5);
        f.addi(tmp, i, AA);
        f.fstore(fa, tmp, 0);
        emitSeedDouble(f, fb, i, 127, 0.02, T1, F5);
        f.addi(tmp, i, BB);
        f.fstore(fb, tmp, 0);
        f.jmp(init.latch);
    }
    f.setBlock(init.exit);

    f.fli(sum, 0.0);
    f.li(itlim, iters);
    auto outer = emitCountedLoop(f, it, itlim, tmp);
    {
        BlockId h1 = f.newBlock(), b1 = f.newBlock();
        BlockId h2 = f.newBlock(), b2 = f.newBlock();
        BlockId h3 = f.newBlock(), b3 = f.newBlock();
        BlockId h4 = f.newBlock(), b4 = f.newBlock();
        BlockId oend = f.newBlock();

        // Sweep 1: c = a + b.
        f.li(i, 0);
        f.fallthroughTo(h1);
        f.setBlock(h1);
        f.slt(tmp, i, lim);
        f.br(tmp, b1, h2);
        f.setBlock(b1);
        f.addi(tmp, i, AA);
        f.fload(fa, tmp, 0);
        f.addi(tmp, i, BB);
        f.fload(fb, tmp, 0);
        f.fadd(fa, fa, fb);
        f.addi(tmp, i, CC);
        f.fstore(fa, tmp, 0);
        f.addi(i, i, 1);
        f.jmp(h1);

        // Sweep 2: d = c * 0.5.
        f.setBlock(h2);
        f.li(i, 0);
        f.fallthroughTo(h3);
        f.setBlock(h3);
        f.slt(tmp, i, lim);
        f.br(tmp, b2, h4);
        f.setBlock(b2);
        f.addi(tmp, i, CC);
        f.fload(fa, tmp, 0);
        f.fli(fb, 0.5);
        f.fmul(fa, fa, fb);
        f.addi(tmp, i, DD);
        f.fstore(fa, tmp, 0);
        f.addi(i, i, 1);
        f.jmp(h3);

        // Sweep 3: a = d - 0.25 * a; accumulate.
        f.setBlock(h4);
        f.li(i, 0);
        BlockId h5 = f.newBlock();
        f.fallthroughTo(h5);
        f.setBlock(h5);
        f.slt(tmp, i, lim);
        f.br(tmp, b3, oend);
        f.setBlock(b3);
        f.addi(tmp, i, AA);
        f.fload(fa, tmp, 0);
        f.fli(fb, 0.25);
        f.fmul(fa, fa, fb);
        f.addi(tmp, i, DD);
        f.fload(fb, tmp, 0);
        f.fsub(fb, fb, fa);
        f.addi(tmp, i, AA);
        f.fstore(fb, tmp, 0);
        f.fadd(sum, sum, fb);
        f.addi(i, i, 1);
        f.jmp(h5);

        f.setBlock(b4);  // Unused; keep valid.
        f.nop();
        f.jmp(oend);

        f.setBlock(oend);
        f.jmp(outer.latch);
    }
    f.setBlock(outer.exit);
    emitFpChecksum(f, sum, F5, T1);

    return b.build();
}

// 107.mgrid analog: a V-cycle over 1D levels with Gauss-Seidel
// relaxation (serial recurrence), restriction and prolongation as
// separate functions.
Program
buildMgrid(Scale s)
{
    const int64_t L0 = 70000, L1 = 72000, L2 = 73000;  // 512/256/128.
    const int64_t N0 = 512, N1 = 256, N2 = 128;
    const int64_t cycles = factor(s, 1, 11);

    IRBuilder b("mgrid");
    b.setEntry("main");

    // relax(base, n): Gauss-Seidel smoothing pass.
    FuncId relax_id = b.functionId("relax");
    {
        FunctionBuilder &g = b.function("relax");
        const RegId base = A0, n = A1, i = T0, tmp = T1;
        const RegId fa = F8, fb = F9, fc = F10;
        BlockId h = g.newBlock(), body = g.newBlock(), x = g.newBlock();
        g.li(i, 1);
        g.fallthroughTo(h);
        g.setBlock(h);
        g.subi(tmp, n, 1);
        g.slt(tmp, i, tmp);
        g.br(tmp, body, x);
        g.setBlock(body);
        g.add(tmp, base, i);
        g.fload(fa, tmp, -1);
        g.fload(fb, tmp, 0);
        g.fload(fc, tmp, 1);
        g.fadd(fa, fa, fc);
        g.fadd(fa, fa, fb);
        g.fadd(fa, fa, fb);
        g.fli(fc, 0.25);
        g.fmul(fa, fa, fc);
        g.fstore(fa, tmp, 0);
        g.addi(i, i, 1);
        g.jmp(h);
        g.setBlock(x);
        g.ret();
    }

    // restrict(fine, coarse, n_coarse): c[i] = f[2i].
    FuncId restrict_id = b.functionId("restrictLvl");
    {
        FunctionBuilder &g = b.function("restrictLvl");
        const RegId fine = A0, coarse = A1, n = A2, i = T0, tmp = T1;
        const RegId fa = F8;
        BlockId h = g.newBlock(), body = g.newBlock(), x = g.newBlock();
        g.li(i, 0);
        g.fallthroughTo(h);
        g.setBlock(h);
        g.slt(tmp, i, n);
        g.br(tmp, body, x);
        g.setBlock(body);
        g.shli(tmp, i, 1);
        g.add(tmp, tmp, fine);
        g.fload(fa, tmp, 0);
        g.add(tmp, coarse, i);
        g.fstore(fa, tmp, 0);
        g.addi(i, i, 1);
        g.jmp(h);
        g.setBlock(x);
        g.ret();
    }

    // prolong(fine, coarse, n_coarse): f[2i] += 0.5 * c[i].
    FuncId prolong_id = b.functionId("prolong");
    {
        FunctionBuilder &g = b.function("prolong");
        const RegId fine = A0, coarse = A1, n = A2, i = T0, tmp = T1;
        const RegId fa = F8, fb = F9;
        BlockId h = g.newBlock(), body = g.newBlock(), x = g.newBlock();
        g.li(i, 0);
        g.fallthroughTo(h);
        g.setBlock(h);
        g.slt(tmp, i, n);
        g.br(tmp, body, x);
        g.setBlock(body);
        g.add(tmp, coarse, i);
        g.fload(fa, tmp, 0);
        g.fli(fb, 0.5);
        g.fmul(fa, fa, fb);
        g.shli(tmp, i, 1);
        g.add(tmp, tmp, fine);
        g.fload(fb, tmp, 0);
        g.fadd(fb, fb, fa);
        g.fstore(fb, tmp, 0);
        g.addi(i, i, 1);
        g.jmp(h);
        g.setBlock(x);
        g.ret();
    }

    FunctionBuilder &f = b.function("main");
    const RegId i = S0, lim = S1, tmp = T0, cy = S2, clim = S3;
    const RegId fa = F0, sum = FS0;

    f.li(lim, N0);
    auto init = emitCountedLoop(f, i, lim, tmp);
    {
        emitSeedDouble(f, fa, i, 255, 0.004, T1, F5);
        f.addi(tmp, i, L0);
        f.fstore(fa, tmp, 0);
        f.jmp(init.latch);
    }
    f.setBlock(init.exit);

    f.fli(sum, 0.0);
    f.li(clim, cycles);
    auto outer = emitCountedLoop(f, cy, clim, tmp);
    {
        // Down.
        f.li(A0, L0);
        f.li(A1, N0);
        f.call(relax_id, 2);
        f.li(A0, L0);
        f.li(A1, L1);
        f.li(A2, N1);
        f.call(restrict_id, 3);
        f.li(A0, L1);
        f.li(A1, N1);
        f.call(relax_id, 2);
        f.li(A0, L1);
        f.li(A1, L2);
        f.li(A2, N2);
        f.call(restrict_id, 3);
        f.li(A0, L2);
        f.li(A1, N2);
        f.call(relax_id, 2);
        // Up.
        f.li(A0, L1);
        f.li(A1, L2);
        f.li(A2, N2);
        f.call(prolong_id, 3);
        f.li(A0, L1);
        f.li(A1, N1);
        f.call(relax_id, 2);
        f.li(A0, L0);
        f.li(A1, L1);
        f.li(A2, N1);
        f.call(prolong_id, 3);
        f.li(A0, L0);
        f.li(A1, N0);
        f.call(relax_id, 2);
        // Accumulate a mid-grid probe value.
        f.li(tmp, L0 + N0 / 2);
        f.fload(fa, tmp, 0);
        f.fadd(sum, sum, fa);
        f.jmp(outer.latch);
    }
    f.setBlock(outer.exit);
    emitFpChecksum(f, sum, F5, T1);

    return b.build();
}

// 110.applu analog: forward/backward banded substitutions — strong
// loop-carried recurrences (cross-task data dependence stress).
Program
buildApplu(Scale s)
{
    const int64_t N = 2048;
    const int64_t RHS = 80000, BV = 83000;
    const int64_t sweeps = factor(s, 1, 5);

    IRBuilder b("applu");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");

    const RegId i = S0, lim = S1, tmp = T0, sw = S2, slim = S3;
    const RegId fa = F0, fb = F1, prev = FS1, sum = FS0;

    f.li(lim, N);
    auto init = emitCountedLoop(f, i, lim, tmp);
    {
        emitSeedDouble(f, fa, i, 511, 0.002, T1, F5);
        f.addi(tmp, i, RHS);
        f.fstore(fa, tmp, 0);
        f.jmp(init.latch);
    }
    f.setBlock(init.exit);

    f.fli(sum, 0.0);
    f.li(slim, sweeps);
    auto outer = emitCountedLoop(f, sw, slim, tmp);
    {
        BlockId fh = f.newBlock(), fb1 = f.newBlock();
        BlockId bh = f.newBlock(), bb = f.newBlock();
        BlockId uh = f.newBlock(), ub = f.newBlock();
        BlockId oend = f.newBlock();

        // Forward: b[i] = (rhs[i] - 0.3*b[i-1]) * 0.7.
        f.fli(prev, 0.0);
        f.li(i, 0);
        f.fallthroughTo(fh);

        f.setBlock(fh);
        f.slt(tmp, i, lim);
        f.br(tmp, fb1, bh);

        f.setBlock(fb1);
        f.addi(tmp, i, RHS);
        f.fload(fa, tmp, 0);
        f.fli(fb, 0.3);
        f.fmul(fb, fb, prev);
        f.fsub(fa, fa, fb);
        f.fli(fb, 0.7);
        f.fmul(fa, fa, fb);
        f.addi(tmp, i, BV);
        f.fstore(fa, tmp, 0);
        f.fmov(prev, fa);
        f.addi(i, i, 1);
        f.jmp(fh);

        // Backward: b[i] = (b[i] - 0.2*b[i+1]) * 0.9.
        f.setBlock(bh);
        f.fli(prev, 0.0);
        f.subi(i, lim, 1);
        f.fallthroughTo(bb);

        f.setBlock(bb);
        BlockId bb2 = f.newBlock();
        f.slti(tmp, i, 0);
        f.brz(tmp, bb2, uh);

        f.setBlock(bb2);
        f.addi(tmp, i, BV);
        f.fload(fa, tmp, 0);
        f.fli(fb, 0.2);
        f.fmul(fb, fb, prev);
        f.fsub(fa, fa, fb);
        f.fli(fb, 0.9);
        f.fmul(fa, fa, fb);
        f.fstore(fa, tmp, 0);
        f.fmov(prev, fa);
        f.subi(i, i, 1);
        f.jmp(bb);

        // Update: rhs[i] = b[i] + 0.1 * rhs[i] (parallel sweep).
        f.setBlock(uh);
        f.li(i, 0);
        BlockId uh2 = f.newBlock();
        f.fallthroughTo(uh2);

        f.setBlock(uh2);
        f.slt(tmp, i, lim);
        f.br(tmp, ub, oend);

        f.setBlock(ub);
        f.addi(tmp, i, RHS);
        f.fload(fa, tmp, 0);
        f.fli(fb, 0.1);
        f.fmul(fa, fa, fb);
        f.addi(tmp, i, BV);
        f.fload(fb, tmp, 0);
        f.fadd(fa, fa, fb);
        f.addi(tmp, i, RHS);
        f.fstore(fa, tmp, 0);
        f.fadd(sum, sum, fa);
        f.addi(i, i, 1);
        f.jmp(uh2);

        f.setBlock(oend);
        f.jmp(outer.latch);
    }
    f.setBlock(outer.exit);
    emitFpChecksum(f, sum, F5, T1);

    return b.build();
}

// 145.fpppp analog: a driver loop over many *small* FP term functions
// — the call-inclusion target (the paper: fpppp responds to the
// task-size heuristic).
Program
buildFpppp(Scale s)
{
    const int64_t TBL = 90000, TS = 1024;
    const int64_t quartets = factor(s, 400, 3600);

    IRBuilder b("fpppp");
    b.setEntry("main");

    auto make_term = [&](const char *name, double c1, double c2) {
        FuncId id = b.functionId(name);
        FunctionBuilder &g = b.function(name);
        const RegId idx = A0, tmp = T0;
        const RegId fa = F8, fb = F9, fc = F10;
        g.andi(tmp, idx, TS - 1);
        g.addi(tmp, tmp, TBL);
        g.fload(fa, tmp, 0);
        g.fload(fb, tmp, 1);
        g.fli(fc, c1);
        g.fmul(fa, fa, fc);
        g.fli(fc, c2);
        g.fmul(fb, fb, fc);
        g.fadd(FREG_RET, fa, fb);
        g.ret();
        return id;
    };
    FuncId t1 = make_term("term1", 0.11, 0.31);
    FuncId t2 = make_term("term2", 0.17, 0.23);
    FuncId t3 = make_term("term3", 0.05, 0.43);

    FunctionBuilder &f = b.function("main");
    const RegId i = S0, lim = S1, tmp = T0, seed = S2, cnt = S4;
    const RegId sum = FS0, fa = FS2, damp = FS3;

    f.li(lim, TS * 2);
    auto init = emitCountedLoop(f, i, lim, tmp);
    {
        emitSeedDouble(f, fa, i, 127, 0.01, T1, F5);
        f.addi(tmp, i, TBL);
        f.fstore(fa, tmp, 0);
        f.jmp(init.latch);
    }
    f.setBlock(init.exit);

    f.fli(sum, 0.0);
    f.fli(damp, 0.25);
    f.li(seed, 0x31415926);
    f.li(cnt, 0);
    f.li(lim, quartets);
    auto outer = emitCountedLoop(f, i, lim, tmp);
    {
        emitLcg(f, seed);
        emitRandBits(f, A0, seed, TS);
        f.call(t1, 1);
        f.fmul(fa, FREG_RET, damp);
        f.fadd(sum, sum, fa);
        emitLcg(f, seed);
        emitRandBits(f, A0, seed, TS);
        f.call(t2, 1);
        f.fmul(fa, FREG_RET, damp);
        f.fadd(sum, sum, fa);
        emitLcg(f, seed);
        emitRandBits(f, A0, seed, TS);
        f.call(t3, 1);
        f.fmul(fa, FREG_RET, damp);
        f.fadd(sum, sum, fa);
        // Keep the accumulator bounded; track quartets processed.
        f.fli(fa, 0.9999);
        f.fmul(sum, sum, fa);
        f.addi(cnt, cnt, 3);
        f.andi(tmp, cnt, 1023);
        f.addi(tmp, tmp, TBL);
        f.store(cnt, tmp, 2 * TS);
        f.jmp(outer.latch);
    }
    f.setBlock(outer.exit);
    emitFpChecksum(f, sum, F5, T1);

    return b.build();
}

// 125.turb3d analog: batched butterfly (FFT-like) passes over a
// complex array — strided regular loops whose stride halves each
// stage, plus a pointwise nonlinear damping pass.
Program
buildTurb3d(Scale s)
{
    const int64_t N = 256;              // Complex elements (2 words).
    const int64_t DATA = 110000;
    const int64_t steps = factor(s, 1, 12);

    IRBuilder b("turb3d");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");

    const RegId i = S0, lim = S1, tmp = T0, st = S2, stlim = S3;
    const RegId stride = S4, j = S5, k = S6, a1 = S7, a2 = S8;
    const RegId xr = F0, xi = F1, yr = F2, yi = F3;
    const RegId tr = F4, ti = F5, w = F8, sum = FS0;

    f.li(lim, N);
    auto init = emitCountedLoop(f, i, lim, tmp);
    {
        emitSeedDouble(f, xr, i, 127, 0.03, T1, F9);
        f.shli(tmp, i, 1);
        f.addi(tmp, tmp, DATA);
        f.fstore(xr, tmp, 0);
        emitSeedDouble(f, xi, i, 63, 0.02, T1, F9);
        f.fstore(xi, tmp, 1);
        f.jmp(init.latch);
    }
    f.setBlock(init.exit);

    f.fli(sum, 0.0);
    f.li(stlim, steps);
    auto outer = emitCountedLoop(f, st, stlim, tmp);
    {
        BlockId sh = f.newBlock(), sb = f.newBlock();
        BlockId jh = f.newBlock(), jb = f.newBlock();
        BlockId jx = f.newBlock(), dh = f.newBlock();
        BlockId db = f.newBlock(), oend = f.newBlock();

        // Butterfly stages: stride = N/2, N/4, ..., 1.
        f.li(stride, N / 2);
        f.fallthroughTo(sh);

        f.setBlock(sh);
        f.slti(tmp, stride, 1);
        f.brz(tmp, sb, dh);

        f.setBlock(sb);
        f.li(j, 0);
        f.fallthroughTo(jh);

        f.setBlock(jh);
        // Process pairs (j, j+stride) for j whose stride bit is 0.
        f.slt(tmp, j, lim);
        f.br(tmp, jb, jx);

        f.setBlock(jb);
        BlockId skip = f.newBlock(), work = f.newBlock();
        f.and_(tmp, j, stride);
        f.br(tmp, skip, work);

        f.setBlock(work);
        f.add(k, j, stride);
        f.shli(a1, j, 1);
        f.addi(a1, a1, DATA);
        f.shli(a2, k, 1);
        f.addi(a2, a2, DATA);
        f.fload(xr, a1, 0);
        f.fload(xi, a1, 1);
        f.fload(yr, a2, 0);
        f.fload(yi, a2, 1);
        f.fadd(tr, xr, yr);
        f.fadd(ti, xi, yi);
        f.fsub(yr, xr, yr);
        f.fsub(yi, xi, yi);
        f.fli(w, 0.5);
        f.fmul(tr, tr, w);
        f.fmul(ti, ti, w);
        f.fmul(yr, yr, w);
        f.fmul(yi, yi, w);
        f.fstore(tr, a1, 0);
        f.fstore(ti, a1, 1);
        f.fstore(yr, a2, 0);
        f.fstore(yi, a2, 1);
        f.fallthroughTo(skip);

        f.setBlock(skip);
        f.addi(j, j, 1);
        f.jmp(jh);

        f.setBlock(jx);
        f.shri(stride, stride, 1);
        f.jmp(sh);

        // Pointwise damping + probe reduction.
        f.setBlock(dh);
        f.li(i, 0);
        f.fallthroughTo(db);

        f.setBlock(db);
        BlockId db2 = f.newBlock();
        f.slt(tmp, i, lim);
        f.br(tmp, db2, oend);

        f.setBlock(db2);
        f.shli(tmp, i, 1);
        f.addi(tmp, tmp, DATA);
        f.fload(xr, tmp, 0);
        f.fli(w, 0.999);
        f.fmul(xr, xr, w);
        f.fstore(xr, tmp, 0);
        f.fadd(sum, sum, xr);
        f.addi(i, i, 1);
        f.jmp(db);

        f.setBlock(oend);
        f.jmp(outer.latch);
    }
    f.setBlock(outer.exit);
    emitFpChecksum(f, sum, F9, T1);

    return b.build();
}

// 141.apsi analog: pollution transport — vertical column recurrences
// (tridiagonal-style sweeps per column) interleaved with horizontal
// advection stencils across columns.
Program
buildApsi(Scale s)
{
    const int64_t NX = 48, NZ = 24;     // Columns x levels.
    const int64_t CONC = 120000;        // NX*NZ concentrations.
    const int64_t WIND = 122000;        // NX horizontal wind.
    const int64_t steps = factor(s, 1, 10);

    IRBuilder b("apsi");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");

    const RegId i = S0, lim = S1, tmp = T0, st = S2, stlim = S3;
    const RegId col = S4, lev = S5, idx = S6;
    const RegId c = F0, prev = F1, wnd = F2, adv = F3, k1 = F8;
    const RegId sum = FS0;

    f.li(lim, NX * NZ);
    auto init = emitCountedLoop(f, i, lim, tmp);
    {
        emitSeedDouble(f, c, i, 255, 0.01, T1, F9);
        f.addi(tmp, i, CONC);
        f.fstore(c, tmp, 0);
        f.jmp(init.latch);
    }
    f.setBlock(init.exit);

    f.li(lim, NX);
    auto winit = emitCountedLoop(f, i, lim, tmp);
    {
        emitSeedDouble(f, wnd, i, 15, 0.05, T1, F9);
        f.addi(tmp, i, WIND);
        f.fstore(wnd, tmp, 0);
        f.jmp(winit.latch);
    }
    f.setBlock(winit.exit);

    f.fli(sum, 0.0);
    f.li(stlim, steps);
    auto outer = emitCountedLoop(f, st, stlim, tmp);
    {
        BlockId ch = f.newBlock(), cb = f.newBlock();
        BlockId lh = f.newBlock(), lb = f.newBlock();
        BlockId lx = f.newBlock(), ah = f.newBlock();
        BlockId ab = f.newBlock(), oend = f.newBlock();

        // Vertical diffusion: per column, downward recurrence.
        f.li(col, 0);
        f.fallthroughTo(ch);

        f.setBlock(ch);
        f.slti(tmp, col, NX);
        f.br(tmp, cb, ah);

        f.setBlock(cb);
        f.fli(prev, 0.0);
        f.li(lev, 0);
        f.fallthroughTo(lh);

        f.setBlock(lh);
        f.slti(tmp, lev, NZ);
        f.br(tmp, lb, lx);

        f.setBlock(lb);
        f.muli(idx, lev, NX);
        f.add(idx, idx, col);
        f.addi(tmp, idx, CONC);
        f.fload(c, tmp, 0);
        f.fli(k1, 0.2);
        f.fmul(prev, prev, k1);
        f.fadd(c, c, prev);
        f.fli(k1, 0.8);
        f.fmul(c, c, k1);
        f.fstore(c, tmp, 0);
        f.fmov(prev, c);
        f.addi(lev, lev, 1);
        f.jmp(lh);

        f.setBlock(lx);
        f.addi(col, col, 1);
        f.jmp(ch);

        // Horizontal advection at the surface level.
        f.setBlock(ah);
        f.li(col, 1);
        f.fallthroughTo(ab);

        f.setBlock(ab);
        BlockId ab2 = f.newBlock();
        f.slti(tmp, col, NX - 1);
        f.br(tmp, ab2, oend);

        f.setBlock(ab2);
        f.addi(tmp, col, WIND);
        f.fload(wnd, tmp, 0);
        f.addi(tmp, col, CONC);
        f.fload(c, tmp, 0);
        f.fload(adv, tmp, -1);
        f.fsub(adv, adv, c);
        f.fmul(adv, adv, wnd);
        f.fadd(c, c, adv);
        f.fstore(c, tmp, 0);
        f.fadd(sum, sum, c);
        f.addi(col, col, 1);
        f.jmp(ab);

        f.setBlock(oend);
        f.jmp(outer.latch);
    }
    f.setBlock(outer.exit);
    emitFpChecksum(f, sum, F9, T1);

    return b.build();
}

// 146.wave5 analog: particle push with field gather/scatter — indexed
// memory traffic that provokes cross-task memory dependences.
Program
buildWave5(Scale s)
{
    const int64_t NP = 1024, NF = 1024;
    const int64_t PX = 100000, PV = 102000, FLD = 104000;
    const int64_t steps = factor(s, 1, 10);

    IRBuilder b("wave5");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");

    const RegId i = S0, lim = S1, tmp = T0, st = S2, stlim = S3;
    const RegId idx = S4;
    const RegId px = F0, pv = F1, e = F2, fc = F3, sum = FS0;

    f.li(lim, NP);
    auto init = emitCountedLoop(f, i, lim, tmp);
    {
        emitSeedDouble(f, px, i, 1023, 1.0, T1, F5);
        f.addi(tmp, i, PX);
        f.fstore(px, tmp, 0);
        emitSeedDouble(f, pv, i, 63, 0.05, T1, F5);
        f.addi(tmp, i, PV);
        f.fstore(pv, tmp, 0);
        f.jmp(init.latch);
    }
    f.setBlock(init.exit);

    f.li(lim, NF);
    auto finit = emitCountedLoop(f, i, lim, tmp);
    {
        emitSeedDouble(f, e, i, 255, 0.02, T1, F5);
        f.addi(tmp, i, FLD);
        f.fstore(e, tmp, 0);
        f.jmp(finit.latch);
    }
    f.setBlock(finit.exit);

    f.fli(sum, 0.0);
    f.li(stlim, steps);
    auto outer = emitCountedLoop(f, st, stlim, tmp);
    {
        BlockId ph = f.newBlock(), pb = f.newBlock();
        BlockId oend = f.newBlock();

        f.li(i, 0);
        f.li(lim, NP);
        f.fallthroughTo(ph);

        f.setBlock(ph);
        f.slt(tmp, i, lim);
        f.br(tmp, pb, oend);

        f.setBlock(pb);
        // Gather.
        f.addi(tmp, i, PX);
        f.fload(px, tmp, 0);
        f.ftoi(idx, px);
        f.andi(idx, idx, NF - 1);
        f.addi(tmp, idx, FLD);
        f.fload(e, tmp, 0);
        // Push.
        f.addi(tmp, i, PV);
        f.fload(pv, tmp, 0);
        f.fli(fc, 0.99);
        f.fmul(pv, pv, fc);
        f.fli(fc, 0.01);
        f.fmul(e, e, fc);
        f.fadd(pv, pv, e);
        f.addi(tmp, i, PV);
        f.fstore(pv, tmp, 0);
        f.addi(tmp, i, PX);
        f.fload(px, tmp, 0);
        f.fadd(px, px, pv);
        f.fstore(px, tmp, 0);
        // Scatter back into the field (cross-task mem dependence).
        f.fli(fc, 0.001);
        f.fmul(e, pv, fc);
        f.addi(tmp, idx, FLD);
        f.fload(fc, tmp, 0);
        f.fadd(fc, fc, e);
        f.fstore(fc, tmp, 0);
        f.fadd(sum, sum, pv);
        f.addi(i, i, 1);
        f.jmp(ph);

        f.setBlock(oend);
        f.jmp(outer.latch);
    }
    f.setBlock(outer.exit);
    emitFpChecksum(f, sum, F5, T1);

    return b.build();
}

} // namespace workloads
} // namespace msc
