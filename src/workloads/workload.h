/**
 * @file
 * Synthetic SPEC95-analog workloads.
 *
 * The paper evaluates on SPEC95. We cannot compile SPEC95 with gcc
 * 2.7.2 here, so each benchmark is replaced by a hand-written mini-IR
 * program that implements a real algorithm with the control-flow and
 * data-dependence character of the original (see DESIGN.md §2):
 * integer analogs have irregular, data-dependent control flow, small
 * basic blocks, hash/pointer memory traffic, and frequent small calls;
 * floating-point analogs have regular counted loops, large loop
 * bodies, stencils and recurrences.
 *
 * Every workload stores a checksum to memory word CHECKSUM_ADDR before
 * halting, so functional correctness is testable.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/program.h"

namespace msc {
namespace workloads {

/** Memory word where every workload deposits its final checksum. */
constexpr uint64_t CHECKSUM_ADDR = 0;

/** Workload size: Small for unit tests, Full for benchmarks. */
enum class Scale
{
    Small,   ///< ~10-40k dynamic instructions.
    Full,    ///< ~150-400k dynamic instructions.
};

/** Registry entry for one benchmark analog. */
struct WorkloadInfo
{
    std::string name;        ///< e.g. "compress".
    std::string models;      ///< SPEC95 benchmark it stands in for.
    bool isFp;               ///< Floating-point (vs integer) suite.
    std::function<ir::Program(Scale)> build;
};

/** All registered workloads, integer suite first. Hidden fixtures
 *  (e.g. "fuelbomb") are resolvable via workloadInfo() but absent
 *  here, so they never enter default sweeps. */
const std::vector<WorkloadInfo> &allWorkloads();

/** Builds one workload by name; throws runtime::StageError
 *  (ErrorKind::InvalidInput) on unknown names. */
ir::Program buildWorkload(const std::string &name,
                          Scale scale = Scale::Full);

/** Returns the registry entry; same error contract as
 *  buildWorkload(). */
const WorkloadInfo &workloadInfo(const std::string &name);

/** Robustness fixture: an infinite loop that never halts (only a
 *  budget, deadline, or cancellation ends it). Hidden from
 *  allWorkloads(); resolvable by the name "fuelbomb". */
ir::Program buildFuelBomb(Scale s);

/// @name Individual builders (integer suite).
/// @{
ir::Program buildGo(Scale s);        ///< 099.go: board evaluation.
ir::Program buildM88ksim(Scale s);   ///< 124.m88ksim: ISA interpreter.
ir::Program buildGcc(Scale s);       ///< 126.gcc: dataflow worklist.
ir::Program buildCompress(Scale s);  ///< 129.compress: LZW hashing.
ir::Program buildLi(Scale s);        ///< 130.li: cons-cell lists.
ir::Program buildIjpeg(Scale s);     ///< 132.ijpeg: DCT + quantize.
ir::Program buildPerl(Scale s);      ///< 134.perl: tokenize + hash.
ir::Program buildVortex(Scale s);    ///< 147.vortex: object store.
/// @}

/// @name Individual builders (floating-point suite).
/// @{
ir::Program buildTomcatv(Scale s);   ///< 101.tomcatv: mesh relaxation.
ir::Program buildSwim(Scale s);      ///< 102.swim: shallow water.
ir::Program buildSu2cor(Scale s);    ///< 103.su2cor: matrix kernels.
ir::Program buildHydro2d(Scale s);   ///< 104.hydro2d: small stencils.
ir::Program buildMgrid(Scale s);     ///< 107.mgrid: multigrid cycle.
ir::Program buildApplu(Scale s);     ///< 110.applu: banded sweeps.
ir::Program buildTurb3d(Scale s);    ///< 125.turb3d: butterfly passes.
ir::Program buildApsi(Scale s);      ///< 141.apsi: column transport.
ir::Program buildFpppp(Scale s);     ///< 145.fpppp: small FP calls.
ir::Program buildWave5(Scale s);     ///< 146.wave5: particle push.
/// @}

} // namespace workloads
} // namespace msc
