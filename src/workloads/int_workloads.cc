/**
 * @file
 * Integer SPEC95 analogs: irregular control flow, small basic blocks,
 * hash-table and pointer memory traffic, frequent small calls.
 */

#include "workloads/common.h"

namespace msc {
namespace workloads {

using namespace ir;

namespace {

/** Scale-dependent iteration factor. */
int64_t
factor(Scale s, int64_t small_v, int64_t full_v)
{
    return s == Scale::Small ? small_v : full_v;
}

} // anonymous namespace

// 129.compress analog: LZW-style dictionary compression with an
// open-addressed hash table. Small loops everywhere (probe loops,
// input scan), serial memory dependence through the table. Responds
// to the task-size heuristic, like the original (§4.3.2).
Program
buildCompress(Scale s)
{
    const int64_t n = factor(s, 3000, 40000);
    const int64_t INPUT = 1000;
    const int64_t TABLE = 100000;       // 8192 entries x 2 words.
    const int64_t HS = 8192;

    IRBuilder b("compress");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");

    const RegId seed = S0, i = S1, nreg = S2, tmp = T0, ch = S10;
    f.li(seed, 0x1234567);
    f.li(nreg, n);

    // Phase 1: generate input bytes over a small alphabet.
    auto gen = emitCountedLoop(f, i, nreg, tmp);
    {
        emitLcg(f, seed);
        emitRandBits(f, ch, seed, 8);
        f.addi(tmp, i, INPUT);
        f.store(ch, tmp, 0);
        f.jmp(gen.latch);
    }
    f.setBlock(gen.exit);

    // Phase 2: LZW scan.
    const RegId prefix = S3, nextcode = S4, sum = S5, key = S6, h = S7;
    const RegId slot = S8, k = S9, addr = T3;

    BlockId head = f.newBlock(), body = f.newBlock();
    BlockId probe = f.newBlock(), hit = f.newBlock();
    BlockId check_empty = f.newBlock(), do_insert = f.newBlock();
    BlockId bump = f.newBlock();
    BlockId next = f.newBlock(), done = f.newBlock();

    f.loadAbs(prefix, INPUT);               // prefix = input[0].
    f.li(nextcode, 256);
    f.li(sum, 0);
    f.li(i, 1);
    f.fallthroughTo(head);

    f.setBlock(head);
    f.slt(tmp, i, nreg);
    f.br(tmp, body, done);

    f.setBlock(body);
    f.addi(addr, i, INPUT);
    f.load(ch, addr, 0);
    f.muli(key, prefix, 256);
    f.add(key, key, ch);
    f.addi(key, key, 1);
    f.muli(h, key, 2654435761LL);
    f.shri(h, h, 16);
    f.andi(h, h, HS - 1);
    f.fallthroughTo(probe);

    f.setBlock(probe);
    f.shli(slot, h, 1);
    f.addi(slot, slot, TABLE);
    f.load(k, slot, 0);
    f.seq(tmp, k, key);
    f.br(tmp, hit, check_empty);

    f.setBlock(hit);
    f.load(prefix, slot, 1);                // prefix = dictionary code.
    f.jmp(next);

    f.setBlock(check_empty);
    f.brz(k, do_insert, bump);

    f.setBlock(do_insert);
    f.store(key, slot, 0);
    f.store(nextcode, slot, 1);
    f.addi(nextcode, nextcode, 1);
    f.add(sum, sum, prefix);
    f.mov(prefix, ch);
    f.jmp(next);

    f.setBlock(bump);
    f.addi(h, h, 1);
    f.andi(h, h, HS - 1);
    f.jmp(probe);

    f.setBlock(next);
    f.addi(i, i, 1);
    f.jmp(head);

    f.setBlock(done);
    f.storeAbs(sum, CHECKSUM_ADDR);
    f.halt();

    return b.build();
}

// 099.go analog: board evaluation with data-dependent branch chains
// and a small liberty-counting helper called per stone.
Program
buildGo(Scale s)
{
    const int64_t DIM = 32;
    const int64_t CELLS = DIM * DIM;
    const int64_t BOARD = 1000;
    const int64_t INFL = 5000;
    const int64_t passes = factor(s, 1, 8);

    IRBuilder b("go");
    b.setEntry("main");

    // liberties(idx): count empty orthogonal neighbours of BOARD[idx].
    FuncId lib_id = b.functionId("liberties");
    {
        FunctionBuilder &g = b.function("liberties");
        const RegId idx = A0, cnt = T0, nb = T1, base = T2;
        BlockId join[4];
        BlockId chk[4], inc[4];
        for (int j = 0; j < 4; ++j) {
            chk[j] = g.newBlock();
            inc[j] = g.newBlock();
            join[j] = g.newBlock();
        }
        g.li(cnt, 0);
        g.addi(base, idx, BOARD);
        g.fallthroughTo(chk[0]);
        const int64_t offs[4] = {-1, 1, -DIM, DIM};
        for (int j = 0; j < 4; ++j) {
            g.setBlock(chk[j]);
            g.load(nb, base, offs[j]);
            g.brz(nb, inc[j], join[j]);
            g.setBlock(inc[j]);
            g.addi(cnt, cnt, 1);
            g.fallthroughTo(join[j]);
            g.setBlock(join[j]);
            if (j < 3) {
                g.nop();
                g.fallthroughTo(chk[j + 1]);
            }
        }
        g.mov(REG_RET, cnt);
        g.ret();
    }

    FunctionBuilder &f = b.function("main");
    const RegId seed = S0, i = S1, lim = S2, tmp = T0, c = S10;
    const RegId sum = S3, p = S4, plim = S5, addr = S6, infl = S7;

    f.li(seed, 0x9e3779b9);
    f.li(lim, CELLS);

    // Board generation: cells 0 (empty), 1 (black), 2 (white), with a
    // branchy remap (3 -> 0).
    auto gen = emitCountedLoop(f, i, lim, tmp);
    {
        BlockId fix = f.newBlock(), put = f.newBlock();
        emitLcg(f, seed);
        emitRandBits(f, c, seed, 4);
        f.seqi(tmp, c, 3);
        f.br(tmp, fix, put);
        f.setBlock(fix);
        f.li(c, 0);
        f.fallthroughTo(put);
        f.setBlock(put);
        f.addi(tmp, i, BOARD);
        f.store(c, tmp, 0);
        f.jmp(gen.latch);
    }
    f.setBlock(gen.exit);

    // Evaluation passes over the interior.
    f.li(sum, 0);
    f.li(plim, passes);
    auto outer = emitCountedLoop(f, p, plim, tmp);
    {
        BlockId ihead = f.newBlock(), ibody = f.newBlock();
        BlockId ilatch = f.newBlock(), iexit = f.newBlock();
        BlockId is_empty = f.newBlock(), is_black = f.newBlock();
        BlockId is_white = f.newBlock(), chk1 = f.newBlock();
        BlockId big = f.newBlock(), small_b = f.newBlock();
        BlockId inext = f.newBlock();

        f.li(i, DIM);
        f.fallthroughTo(ihead);

        f.setBlock(ihead);
        f.slti(tmp, i, CELLS - DIM);
        f.br(tmp, ibody, iexit);

        f.setBlock(ibody);
        f.addi(addr, i, BOARD);
        f.load(c, addr, 0);
        f.brz(c, is_empty, chk1);

        f.setBlock(chk1);
        f.seqi(tmp, c, 1);
        f.br(tmp, is_black, is_white);

        f.setBlock(is_empty);
        f.load(infl, addr, -1);
        f.load(tmp, addr, 1);
        f.add(infl, infl, tmp);
        f.load(tmp, addr, -DIM);
        f.add(infl, infl, tmp);
        f.load(tmp, addr, DIM);
        f.add(infl, infl, tmp);
        f.slti(tmp, infl, 3);
        f.br(tmp, small_b, big);

        f.setBlock(big);
        f.addi(sum, sum, 1);
        f.addi(tmp, i, INFL);
        f.store(infl, tmp, 0);
        f.jmp(inext);

        f.setBlock(small_b);
        f.add(sum, sum, infl);
        f.jmp(inext);

        f.setBlock(is_black);
        f.mov(A0, i);
        f.call(lib_id, 1);
        f.shli(tmp, REG_RET, 1);
        f.add(sum, sum, tmp);
        f.jmp(inext);

        f.setBlock(is_white);
        f.subi(sum, sum, 1);
        f.jmp(inext);

        f.setBlock(inext);
        f.addi(i, i, 1);
        f.jmp(ihead);

        f.setBlock(ilatch);  // Unused structure symmetry.
        f.jmp(ihead);

        f.setBlock(iexit);
        f.jmp(outer.latch);
    }
    f.setBlock(outer.exit);
    f.storeAbs(sum, CHECKSUM_ADDR);
    f.halt();

    return b.build();
}

// 124.m88ksim analog: an interpreter for a tiny synthetic ISA with a
// branchy decode tree — the classic dispatch-loop control profile.
Program
buildM88ksim(Scale s)
{
    const int64_t PROG = 2000, PSIZE = 4096;
    const int64_t VREG = 500;           // 16 virtual registers.
    const int64_t DATA = 10000, DSIZE = 1024;
    const int64_t steps = factor(s, 1500, 13000);

    IRBuilder b("m88ksim");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");

    const RegId seed = S0, i = S1, lim = S2, tmp = T0;
    const RegId w = S3, op = S4, d = S5, a = S6, imm = S7;
    const RegId vpc = S8, sum = S9, va = S10, vd = S11, t2 = T1;

    f.li(seed, 0xdeadbeef);
    f.li(lim, PSIZE);

    // Generate the synthetic program image.
    auto gen = emitCountedLoop(f, i, lim, tmp);
    {
        emitLcg(f, seed);
        f.shri(w, seed, 13);
        f.addi(tmp, i, PROG);
        f.store(w, tmp, 0);
        f.jmp(gen.latch);
    }
    f.setBlock(gen.exit);

    // Interpreter loop.
    BlockId head = f.newBlock(), body = f.newBlock();
    BlockId lo = f.newBlock(), hi = f.newBlock();
    BlockId op01 = f.newBlock(), op23 = f.newBlock();
    BlockId op45 = f.newBlock(), op67 = f.newBlock();
    BlockId do0 = f.newBlock(), do1 = f.newBlock();
    BlockId do2 = f.newBlock(), do3 = f.newBlock();
    BlockId do4 = f.newBlock(), do4t = f.newBlock();
    BlockId do5 = f.newBlock(), do6 = f.newBlock(), do7 = f.newBlock();
    BlockId next = f.newBlock(), done = f.newBlock();
    BlockId suml_h = f.newBlock(), suml_b = f.newBlock();

    f.li(vpc, 0);
    f.li(sum, 0);
    f.li(i, 0);
    f.li(lim, steps);
    f.fallthroughTo(head);

    f.setBlock(head);
    f.slt(tmp, i, lim);
    f.br(tmp, body, done);

    f.setBlock(body);
    f.andi(tmp, vpc, PSIZE - 1);
    f.addi(tmp, tmp, PROG);
    f.load(w, tmp, 0);
    f.addi(vpc, vpc, 1);
    f.andi(op, w, 7);
    f.shri(d, w, 3);
    f.andi(d, d, 15);
    f.shri(a, w, 7);
    f.andi(a, a, 15);
    f.shri(imm, w, 11);
    f.andi(imm, imm, 1023);
    f.slti(tmp, op, 4);
    f.br(tmp, lo, hi);

    f.setBlock(lo);
    f.slti(tmp, op, 2);
    f.br(tmp, op01, op23);
    f.setBlock(hi);
    f.slti(tmp, op, 6);
    f.br(tmp, op45, op67);

    f.setBlock(op01);
    f.seqi(tmp, op, 0);
    f.br(tmp, do0, do1);
    f.setBlock(op23);
    f.seqi(tmp, op, 2);
    f.br(tmp, do2, do3);
    f.setBlock(op45);
    f.seqi(tmp, op, 4);
    f.br(tmp, do4, do5);
    f.setBlock(op67);
    f.seqi(tmp, op, 6);
    f.br(tmp, do6, do7);

    // op 0: vr[d] = vr[a] + imm.
    f.setBlock(do0);
    f.addi(tmp, a, VREG);
    f.load(va, tmp, 0);
    f.add(va, va, imm);
    f.addi(tmp, d, VREG);
    f.store(va, tmp, 0);
    f.jmp(next);

    // op 1: vr[d] = vr[a] - vr[d].
    f.setBlock(do1);
    f.addi(tmp, a, VREG);
    f.load(va, tmp, 0);
    f.addi(tmp, d, VREG);
    f.load(vd, tmp, 0);
    f.sub(va, va, vd);
    f.store(va, tmp, 0);
    f.jmp(next);

    // op 2: vr[d] = data[imm].
    f.setBlock(do2);
    f.andi(t2, imm, DSIZE - 1);
    f.addi(t2, t2, DATA);
    f.load(va, t2, 0);
    f.addi(tmp, d, VREG);
    f.store(va, tmp, 0);
    f.jmp(next);

    // op 3: data[imm] = vr[a].
    f.setBlock(do3);
    f.addi(tmp, a, VREG);
    f.load(va, tmp, 0);
    f.andi(t2, imm, DSIZE - 1);
    f.addi(t2, t2, DATA);
    f.store(va, t2, 0);
    f.jmp(next);

    // op 4: conditional relative branch on vr[a].
    f.setBlock(do4);
    f.addi(tmp, a, VREG);
    f.load(va, tmp, 0);
    f.br(va, do4t, next);
    f.setBlock(do4t);
    f.andi(t2, imm, 31);
    f.subi(t2, t2, 16);
    f.add(vpc, vpc, t2);
    f.jmp(next);

    // op 5: vr[d] = vr[a] * 3.
    f.setBlock(do5);
    f.addi(tmp, a, VREG);
    f.load(va, tmp, 0);
    f.muli(va, va, 3);
    f.addi(tmp, d, VREG);
    f.store(va, tmp, 0);
    f.jmp(next);

    // op 6: vr[d] = vr[a] ^ w.
    f.setBlock(do6);
    f.addi(tmp, a, VREG);
    f.load(va, tmp, 0);
    f.xor_(va, va, w);
    f.addi(tmp, d, VREG);
    f.store(va, tmp, 0);
    f.jmp(next);

    // op 7: absolute jump.
    f.setBlock(do7);
    f.mov(vpc, imm);
    f.jmp(next);

    f.setBlock(next);
    f.addi(i, i, 1);
    f.jmp(head);

    // Sum the virtual register file into the checksum.
    BlockId fin = f.newBlock();

    f.setBlock(done);
    f.li(i, 0);
    f.li(sum, 0);
    f.fallthroughTo(suml_h);

    f.setBlock(suml_h);
    f.slti(tmp, i, 16);
    f.br(tmp, suml_b, fin);

    f.setBlock(suml_b);
    f.addi(tmp, i, VREG);
    f.load(va, tmp, 0);
    f.add(sum, sum, va);
    f.addi(i, i, 1);
    f.jmp(suml_h);

    f.setBlock(fin);
    f.storeAbs(sum, CHECKSUM_ADDR);
    f.halt();

    return b.build();
}

// 126.gcc analog: iterative dataflow over a random graph with a
// worklist — pointer-style loads, short branchy blocks.
Program
buildGcc(Scale s)
{
    const int64_t N = 256;
    const int64_t SUCC0 = 1000, SUCC1 = 2000;
    const int64_t GEN = 3000, KILL = 4000;
    const int64_t IN = 5000, OUT = 6000, INQ = 7000;
    const int64_t WL = 8000, WLMASK = 2047;
    const int64_t rounds = factor(s, 2, 16);

    IRBuilder b("gcc");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");

    const RegId seed = S0, i = S1, lim = S2, tmp = T0;
    const RegId r = S3, node = S4, nw = S5, ow = S6;
    const RegId head = S7, tail = S8, sum = S9, t2 = S10, succ = S11;

    f.li(seed, 0xabcdef12);
    f.li(lim, N);

    // Graph generation.
    auto gen = emitCountedLoop(f, i, lim, tmp);
    {
        emitLcg(f, seed);
        emitRandBits(f, r, seed, N);
        f.addi(tmp, i, SUCC0);
        f.store(r, tmp, 0);
        emitLcg(f, seed);
        emitRandBits(f, r, seed, N);
        f.addi(tmp, i, SUCC1);
        f.store(r, tmp, 0);
        emitLcg(f, seed);
        f.shri(r, seed, 20);
        f.addi(tmp, i, GEN);
        f.store(r, tmp, 0);
        emitLcg(f, seed);
        f.shri(r, seed, 24);
        f.addi(tmp, i, KILL);
        f.store(r, tmp, 0);
        f.jmp(gen.latch);
    }
    f.setBlock(gen.exit);

    const RegId round = S12, rlim = S13;
    f.li(sum, 0);
    f.li(rlim, rounds);
    auto outer = emitCountedLoop(f, round, rlim, tmp);
    {
        BlockId fill = f.newBlock(), fhead = f.newBlock();
        BlockId whead = f.newBlock(), wbody = f.newBlock();
        BlockId changed = f.newBlock(), push0 = f.newBlock();
        BlockId skip0 = f.newBlock(), push1 = f.newBlock();
        BlockId skip1 = f.newBlock(), oexit = f.newBlock();

        // Refill the worklist with every node; clear IN/OUT/INQ.
        f.li(i, 0);
        f.li(head, 0);
        f.li(tail, 0);
        f.fallthroughTo(fhead);

        f.setBlock(fhead);
        f.slt(tmp, i, lim);
        f.br(tmp, fill, whead);

        f.setBlock(fill);
        f.andi(tmp, tail, WLMASK);
        f.addi(tmp, tmp, WL);
        f.store(i, tmp, 0);
        f.addi(tail, tail, 1);
        f.addi(tmp, i, INQ);
        f.li(t2, 1);
        f.store(t2, tmp, 0);
        f.addi(tmp, i, IN);
        f.store(REG_ZERO, tmp, 0);
        f.addi(tmp, i, OUT);
        f.store(REG_ZERO, tmp, 0);
        f.addi(i, i, 1);
        f.jmp(fhead);

        // Worklist iteration.
        f.setBlock(whead);
        f.slt(tmp, head, tail);
        f.br(tmp, wbody, oexit);

        f.setBlock(wbody);
        f.andi(tmp, head, WLMASK);
        f.addi(tmp, tmp, WL);
        f.load(node, tmp, 0);
        f.addi(head, head, 1);
        f.addi(tmp, node, INQ);
        f.store(REG_ZERO, tmp, 0);
        // out_new = gen | (in & ~kill).
        f.addi(tmp, node, IN);
        f.load(nw, tmp, 0);
        f.addi(tmp, node, KILL);
        f.load(t2, tmp, 0);
        f.xori(t2, t2, -1);
        f.and_(nw, nw, t2);
        f.addi(tmp, node, GEN);
        f.load(t2, tmp, 0);
        f.or_(nw, nw, t2);
        f.addi(tmp, node, OUT);
        f.load(ow, tmp, 0);
        f.sne(t2, nw, ow);
        f.br(t2, changed, whead);

        f.setBlock(changed);
        f.addi(tmp, node, OUT);
        f.store(nw, tmp, 0);
        f.addi(sum, sum, 1);
        // Propagate to both successors; push if not queued.
        f.addi(tmp, node, SUCC0);
        f.load(succ, tmp, 0);
        f.addi(tmp, succ, IN);
        f.load(t2, tmp, 0);
        f.or_(t2, t2, nw);
        f.store(t2, tmp, 0);
        f.addi(tmp, succ, INQ);
        f.load(t2, tmp, 0);
        f.brz(t2, push0, skip0);

        f.setBlock(push0);
        f.andi(tmp, tail, WLMASK);
        f.addi(tmp, tmp, WL);
        f.store(succ, tmp, 0);
        f.addi(tail, tail, 1);
        f.addi(tmp, succ, INQ);
        f.li(t2, 1);
        f.store(t2, tmp, 0);
        f.fallthroughTo(skip0);

        f.setBlock(skip0);
        f.addi(tmp, node, SUCC1);
        f.load(succ, tmp, 0);
        f.addi(tmp, succ, IN);
        f.load(t2, tmp, 0);
        f.or_(t2, t2, nw);
        f.store(t2, tmp, 0);
        f.addi(tmp, succ, INQ);
        f.load(t2, tmp, 0);
        f.brz(t2, push1, skip1);

        f.setBlock(push1);
        f.andi(tmp, tail, WLMASK);
        f.addi(tmp, tmp, WL);
        f.store(succ, tmp, 0);
        f.addi(tail, tail, 1);
        f.addi(tmp, succ, INQ);
        f.li(t2, 1);
        f.store(t2, tmp, 0);
        f.fallthroughTo(skip1);

        f.setBlock(skip1);
        f.nop();
        f.jmp(whead);

        f.setBlock(oexit);
        // Perturb the graph so the next round has work to do.
        emitLcg(f, seed);
        emitRandBits(f, i, seed, N);
        f.addi(tmp, i, GEN);
        f.load(t2, tmp, 0);
        f.xori(t2, t2, 0x5a5a);
        f.store(t2, tmp, 0);
        f.jmp(outer.latch);
    }
    f.setBlock(outer.exit);
    f.storeAbs(sum, CHECKSUM_ADDR);
    f.halt();

    return b.build();
}

// 130.li analog: cons-cell list building (small allocator calls),
// pointer-chasing sweeps and in-place reversal.
Program
buildLi(Scale s)
{
    const int64_t FREE_PTR = 400;       // Bump-allocator cursor word.
    const int64_t HEAP = 200000;
    const int64_t nodes = factor(s, 250, 1500);
    const int64_t passes = factor(s, 4, 14);

    IRBuilder b("li");
    b.setEntry("main");

    // cons(car, cdr) -> cell address.
    FuncId cons_id = b.functionId("cons");
    {
        FunctionBuilder &g = b.function("cons");
        const RegId car = A0, cdr = A1, cell = T0;
        g.loadAbs(cell, FREE_PTR);
        g.store(car, cell, 0);
        g.store(cdr, cell, 1);
        g.addi(T1, cell, 2);
        g.storeAbs(T1, FREE_PTR);
        g.mov(REG_RET, cell);
        g.ret();
    }

    FunctionBuilder &f = b.function("main");
    const RegId seed = S0, i = S1, lim = S2, tmp = T0;
    const RegId head = S3, q = S4, sum = S5, nxt = S6, prev = S7;
    const RegId p = S8, plim = S9;

    f.li(tmp, HEAP);
    f.storeAbs(tmp, FREE_PTR);
    f.li(seed, 0x13572468);
    f.li(head, 0);
    f.li(lim, nodes);

    // Build the list: head = cons(rand, head).
    auto build = emitCountedLoop(f, i, lim, tmp);
    {
        emitLcg(f, seed);
        emitRandBits(f, A0, seed, 256);
        f.mov(A1, head);
        f.call(cons_id, 2);
        f.mov(head, REG_RET);
        f.jmp(build.latch);
    }
    f.setBlock(build.exit);

    f.li(sum, 0);
    f.li(plim, passes);
    auto outer = emitCountedLoop(f, p, plim, tmp);
    {
        BlockId shead = f.newBlock(), sbody = f.newBlock();
        BlockId rhead = f.newBlock(), rbody = f.newBlock();
        BlockId oexit = f.newBlock();

        // Sum sweep.
        f.mov(q, head);
        f.fallthroughTo(shead);

        f.setBlock(shead);
        f.br(q, sbody, rhead);

        f.setBlock(sbody);
        f.load(tmp, q, 0);
        f.add(sum, sum, tmp);
        f.load(q, q, 1);
        f.jmp(shead);

        // In-place reversal.
        f.setBlock(rhead);
        f.li(prev, 0);
        f.mov(q, head);
        f.fallthroughTo(rbody);

        f.setBlock(rbody);
        BlockId rstep = f.newBlock(), rdone = f.newBlock();
        f.br(q, rstep, rdone);

        f.setBlock(rstep);
        f.load(nxt, q, 1);
        f.store(prev, q, 1);
        f.mov(prev, q);
        f.mov(q, nxt);
        f.jmp(rbody);

        f.setBlock(rdone);
        f.mov(head, prev);
        f.fallthroughTo(oexit);

        f.setBlock(oexit);
        f.jmp(outer.latch);
    }
    f.setBlock(outer.exit);
    f.storeAbs(sum, CHECKSUM_ADDR);
    f.halt();

    return b.build();
}

// 132.ijpeg analog: blocked 8-point transforms plus quantization —
// regular short loops, the unrolling heuristic's target shape.
Program
buildIjpeg(Scale s)
{
    const int64_t W = 64;
    const int64_t IMG = 1000, OUTB = 6000, COEF = 12000;
    const int64_t passes = factor(s, 1, 8);

    IRBuilder b("ijpeg");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");

    const RegId seed = S0, i = S1, lim = S2, tmp = T0;
    const RegId blk = S3, row = S4, kk = S5, j = S6;
    const RegId acc = S7, base = S8, sum = S9, v = S10, co = S11;
    const RegId pass = S12, plim = S13;

    f.li(seed, 0x77777777);
    f.li(lim, W * W);

    // Image generation.
    auto gen = emitCountedLoop(f, i, lim, tmp);
    {
        emitLcg(f, seed);
        emitRandBits(f, v, seed, 256);
        f.addi(tmp, i, IMG);
        f.store(v, tmp, 0);
        f.jmp(gen.latch);
    }
    f.setBlock(gen.exit);

    // Coefficient table: 8x8 small integers.
    f.li(lim, 64);
    auto cgen = emitCountedLoop(f, i, lim, tmp);
    {
        f.andi(v, i, 7);
        f.subi(v, v, 3);
        f.addi(tmp, i, COEF);
        f.store(v, tmp, 0);
        f.jmp(cgen.latch);
    }
    f.setBlock(cgen.exit);

    f.li(sum, 0);
    f.li(plim, passes);
    auto outer = emitCountedLoop(f, pass, plim, tmp);
    {
        const int64_t NBLK = (W / 8) * (W / 8);
        const RegId blim = T1;

        BlockId bh = f.newBlock(), bb = f.newBlock();
        BlockId rh = f.newBlock(), rb = f.newBlock();
        BlockId kh = f.newBlock(), kb = f.newBlock();
        BlockId jh = f.newBlock(), jb = f.newBlock();
        BlockId jx = f.newBlock(), kx = f.newBlock();
        BlockId rx = f.newBlock(), bx = f.newBlock();

        f.li(blk, 0);
        f.fallthroughTo(bh);

        f.setBlock(bh);
        f.li(blim, NBLK);
        f.slt(tmp, blk, blim);
        f.br(tmp, bb, bx);

        f.setBlock(bb);
        // base = IMG + (blk / 8) * 8 * W + (blk % 8) * 8.
        f.shri(base, blk, 3);
        f.muli(base, base, 8 * W);
        f.andi(tmp, blk, 7);
        f.shli(tmp, tmp, 3);
        f.add(base, base, tmp);
        f.addi(base, base, IMG);
        f.li(row, 0);
        f.fallthroughTo(rh);

        f.setBlock(rh);
        f.slti(tmp, row, 8);
        f.br(tmp, rb, rx);

        f.setBlock(rb);
        f.li(kk, 0);
        f.fallthroughTo(kh);

        f.setBlock(kh);
        f.slti(tmp, kk, 8);
        f.br(tmp, kb, kx);

        f.setBlock(kb);
        f.li(acc, 0);
        f.li(j, 0);
        f.fallthroughTo(jh);

        f.setBlock(jh);
        f.slti(tmp, j, 8);
        f.br(tmp, jb, jx);

        f.setBlock(jb);
        // acc += img[base + row*W + j] * coef[kk*8 + j].
        f.muli(tmp, row, W);
        f.add(tmp, tmp, base);
        f.add(tmp, tmp, j);
        f.load(v, tmp, 0);
        f.shli(tmp, kk, 3);
        f.add(tmp, tmp, j);
        f.addi(tmp, tmp, COEF);
        f.load(co, tmp, 0);
        f.mul(v, v, co);
        f.add(acc, acc, v);
        f.addi(j, j, 1);
        f.jmp(jh);

        f.setBlock(jx);
        // Quantize and emit.
        f.andi(tmp, kk, 3);
        f.addi(tmp, tmp, 1);
        f.sra(acc, acc, tmp);
        f.add(sum, sum, acc);
        f.muli(tmp, blk, 64);
        f.addi(tmp, tmp, OUTB);
        f.add(tmp, tmp, kk);
        f.store(acc, tmp, 0);
        f.addi(kk, kk, 1);
        f.jmp(kh);

        f.setBlock(kx);
        f.addi(row, row, 1);
        f.jmp(rh);

        f.setBlock(rx);
        f.addi(blk, blk, 1);
        f.jmp(bh);

        f.setBlock(bx);
        f.jmp(outer.latch);
    }
    f.setBlock(outer.exit);
    f.storeAbs(sum, CHECKSUM_ADDR);
    f.halt();

    return b.build();
}

// 134.perl analog: text tokenization with per-character hashing (tiny
// helper call) and a token hash table.
Program
buildPerl(Scale s)
{
    const int64_t TEXT = 1000;
    const int64_t TABLE = 100000, HS = 4096;  // key, count pairs.
    const int64_t n = factor(s, 3000, 30000);

    IRBuilder b("perl");
    b.setEntry("main");

    // hashStep(h, c) -> h * 31 + c.
    FuncId hash_id = b.functionId("hashStep");
    {
        FunctionBuilder &g = b.function("hashStep");
        g.muli(T0, A0, 31);
        g.add(T0, T0, A1);
        g.mov(REG_RET, T0);
        g.ret();
    }

    FunctionBuilder &f = b.function("main");
    const RegId seed = S0, i = S1, lim = S2, tmp = T0;
    const RegId c = S3, hash = S4, sum = S5, h = S6, slot = S7;
    const RegId k = S8;

    f.li(seed, 0x24681357);
    f.li(lim, n);

    // Text generation: ~20% separators.
    auto gen = emitCountedLoop(f, i, lim, tmp);
    {
        BlockId sep = f.newBlock(), chr = f.newBlock(), put = f.newBlock();
        emitLcg(f, seed);
        emitRandBits(f, c, seed, 32);
        f.slti(tmp, c, 6);
        f.br(tmp, sep, chr);
        f.setBlock(sep);
        f.li(c, 0);
        f.fallthroughTo(put);
        f.setBlock(chr);
        f.andi(c, c, 15);
        f.addi(c, c, 1);
        f.fallthroughTo(put);
        f.setBlock(put);
        f.addi(tmp, i, TEXT);
        f.store(c, tmp, 0);
        f.jmp(gen.latch);
    }
    f.setBlock(gen.exit);

    // Tokenizer.
    BlockId thead = f.newBlock(), tbody = f.newBlock();
    BlockId skip = f.newBlock(), word = f.newBlock();
    BlockId whead = f.newBlock(), wbody = f.newBlock();
    BlockId reload = f.newBlock();
    BlockId upsert = f.newBlock(), probe = f.newBlock();
    BlockId found = f.newBlock(), fresh = f.newBlock();
    BlockId chk = f.newBlock(), bump = f.newBlock();
    BlockId tdone = f.newBlock();

    f.li(i, 0);
    f.li(sum, 0);
    f.fallthroughTo(thead);

    f.setBlock(thead);
    f.slt(tmp, i, lim);
    f.br(tmp, tbody, tdone);

    f.setBlock(tbody);
    f.addi(tmp, i, TEXT);
    f.load(c, tmp, 0);
    f.brz(c, skip, word);

    f.setBlock(skip);
    f.addi(i, i, 1);
    f.jmp(thead);

    f.setBlock(word);
    f.li(hash, 7);
    f.fallthroughTo(whead);

    f.setBlock(whead);
    f.brz(c, upsert, wbody);

    f.setBlock(wbody);
    f.mov(A0, hash);
    f.mov(A1, c);
    f.call(hash_id, 2);
    f.mov(hash, REG_RET);
    f.addi(i, i, 1);
    f.slt(tmp, i, lim);
    f.brz(tmp, upsert, reload);

    f.setBlock(reload);
    f.addi(tmp, i, TEXT);
    f.load(c, tmp, 0);
    f.jmp(whead);

    f.setBlock(upsert);
    f.muli(h, hash, 2654435761LL);
    f.shri(h, h, 18);
    f.andi(h, h, HS - 1);
    f.fallthroughTo(probe);

    f.setBlock(probe);
    f.shli(slot, h, 1);
    f.addi(slot, slot, TABLE);
    f.load(k, slot, 0);
    f.seq(tmp, k, hash);
    f.br(tmp, found, chk);

    f.setBlock(chk);
    f.brz(k, fresh, bump);

    f.setBlock(found);
    f.load(tmp, slot, 1);
    f.addi(tmp, tmp, 1);
    f.store(tmp, slot, 1);
    f.add(sum, sum, tmp);
    f.jmp(thead);

    f.setBlock(fresh);
    f.store(hash, slot, 0);
    f.li(tmp, 1);
    f.store(tmp, slot, 1);
    f.addi(sum, sum, 1);
    f.jmp(thead);

    f.setBlock(bump);
    f.addi(h, h, 1);
    f.andi(h, h, HS - 1);
    f.jmp(probe);

    f.setBlock(tdone);
    f.storeAbs(sum, CHECKSUM_ADDR);
    f.halt();

    Program prog = b.build();
    return prog;
}

// 147.vortex analog: an object store with hash-indexed records and
// mixed lookup / insert / scan transactions.
Program
buildVortex(Scale s)
{
    const int64_t TABLE = 100000, RS = 4096;  // 4 words per record.
    const int64_t ops = factor(s, 2500, 22000);

    IRBuilder b("vortex");
    b.setEntry("main");

    // mix(key) -> slot hash.
    FuncId mix_id = b.functionId("mix");
    {
        FunctionBuilder &g = b.function("mix");
        g.muli(T0, A0, 0x9e3779b97f4a7c15LL);
        g.shri(T0, T0, 23);
        g.andi(T0, T0, RS - 1);
        g.mov(REG_RET, T0);
        g.ret();
    }

    FunctionBuilder &f = b.function("main");
    const RegId seed = S0, i = S1, lim = S2, tmp = T0;
    const RegId r = S3, op = S4, key = S5, h = S6, slot = S7;
    const RegId k = S8, sum = S9, j = S10;

    BlockId ohead = f.newBlock(), obody = f.newBlock();
    BlockId lookup = f.newBlock(), notlk = f.newBlock();
    BlockId lprobe = f.newBlock(), lhit = f.newBlock();
    BlockId lchk = f.newBlock(), lbump = f.newBlock();
    BlockId ins = f.newBlock(), iprobe = f.newBlock();
    BlockId iput = f.newBlock(), ichk = f.newBlock();
    BlockId ibump = f.newBlock();
    BlockId scan = f.newBlock(), shead = f.newBlock();
    BlockId sbody = f.newBlock();
    BlockId onext = f.newBlock(), odone = f.newBlock();

    f.li(seed, 0x55aa55aa);
    f.li(sum, 0);
    f.li(i, 0);
    f.li(lim, ops);
    f.fallthroughTo(ohead);

    f.setBlock(ohead);
    f.slt(tmp, i, lim);
    f.br(tmp, obody, odone);

    f.setBlock(obody);
    emitLcg(f, seed);
    f.shri(r, seed, 16);
    f.andi(op, r, 15);
    f.shri(key, r, 8);
    f.andi(key, key, 2047);
    f.addi(key, key, 1);            // Keys are nonzero.
    f.mov(A0, key);
    f.call(mix_id, 1);
    f.mov(h, REG_RET);
    f.slti(tmp, op, 10);
    f.br(tmp, lookup, notlk);

    f.setBlock(notlk);
    f.slti(tmp, op, 14);
    f.br(tmp, ins, scan);

    // Lookup: probe until match or empty.
    f.setBlock(lookup);
    f.nop();
    f.fallthroughTo(lprobe);

    f.setBlock(lprobe);
    f.shli(slot, h, 2);
    f.addi(slot, slot, TABLE);
    f.load(k, slot, 0);
    f.seq(tmp, k, key);
    f.br(tmp, lhit, lchk);

    f.setBlock(lchk);
    f.brz(k, onext, lbump);

    f.setBlock(lhit);
    f.load(tmp, slot, 1);
    f.add(sum, sum, tmp);
    f.load(tmp, slot, 2);
    f.add(sum, sum, tmp);
    f.jmp(onext);

    f.setBlock(lbump);
    f.addi(h, h, 1);
    f.andi(h, h, RS - 1);
    f.jmp(lprobe);

    // Insert / update.
    f.setBlock(ins);
    f.nop();
    f.fallthroughTo(iprobe);

    f.setBlock(iprobe);
    f.shli(slot, h, 2);
    f.addi(slot, slot, TABLE);
    f.load(k, slot, 0);
    f.seq(tmp, k, key);
    f.br(tmp, iput, ichk);

    f.setBlock(ichk);
    f.brz(k, iput, ibump);

    f.setBlock(iput);
    f.store(key, slot, 0);
    f.xor_(tmp, key, seed);
    f.store(tmp, slot, 1);
    f.store(i, slot, 2);
    f.andi(tmp, sum, 255);
    f.store(tmp, slot, 3);
    f.addi(sum, sum, 2);
    f.jmp(onext);

    f.setBlock(ibump);
    f.addi(h, h, 1);
    f.andi(h, h, RS - 1);
    f.jmp(iprobe);

    // Range scan of 16 records.
    f.setBlock(scan);
    f.li(j, 0);
    f.fallthroughTo(shead);

    f.setBlock(shead);
    f.slti(tmp, j, 16);
    f.br(tmp, sbody, onext);

    f.setBlock(sbody);
    f.add(tmp, h, j);
    f.andi(tmp, tmp, RS - 1);
    f.shli(slot, tmp, 2);
    f.addi(slot, slot, TABLE);
    f.load(tmp, slot, 0);
    f.add(sum, sum, tmp);
    f.addi(j, j, 1);
    f.jmp(shead);

    f.setBlock(onext);
    f.addi(i, i, 1);
    f.jmp(ohead);

    f.setBlock(odone);
    f.storeAbs(sum, CHECKSUM_ADDR);
    f.halt();

    return b.build();
}

} // namespace workloads
} // namespace msc
