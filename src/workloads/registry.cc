#include "workloads/workload.h"

#include <stdexcept>

#include "runtime/error.h"
#include "workloads/common.h"

namespace msc {
namespace workloads {

ir::Program
buildFuelBomb(Scale)
{
    // A deliberate non-terminating workload: the robustness fixture
    // for budget/timeout tests. Stores its spin counter to the
    // checksum word so the loop body exercises memory like a real
    // workload, but never reaches halt — only an ExecBudget (fuel,
    // deadline, cancellation) ends it.
    ir::IRBuilder b("fuelbomb");
    b.setEntry("main");
    ir::FunctionBuilder &f = b.function("main");
    ir::BlockId loop = f.newBlock();
    f.li(T0, 0);
    f.fallthroughTo(loop);
    f.setBlock(loop);
    f.addi(T0, T0, 1);
    f.storeAbs(T0, CHECKSUM_ADDR);
    f.jmp(loop);
    return b.build();
}

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> registry = {
        {"go",       "099.go",      false, buildGo},
        {"m88ksim",  "124.m88ksim", false, buildM88ksim},
        {"gcc",      "126.gcc",     false, buildGcc},
        {"compress", "129.compress",false, buildCompress},
        {"li",       "130.li",      false, buildLi},
        {"ijpeg",    "132.ijpeg",   false, buildIjpeg},
        {"perl",     "134.perl",    false, buildPerl},
        {"vortex",   "147.vortex",  false, buildVortex},
        {"tomcatv",  "101.tomcatv", true,  buildTomcatv},
        {"swim",     "102.swim",    true,  buildSwim},
        {"su2cor",   "103.su2cor",  true,  buildSu2cor},
        {"hydro2d",  "104.hydro2d", true,  buildHydro2d},
        {"mgrid",    "107.mgrid",   true,  buildMgrid},
        {"applu",    "110.applu",   true,  buildApplu},
        {"turb3d",   "125.turb3d",  true,  buildTurb3d},
        {"apsi",     "141.apsi",    true,  buildApsi},
        {"fpppp",    "145.fpppp",   true,  buildFpppp},
        {"wave5",    "146.wave5",   true,  buildWave5},
    };
    return registry;
}

const WorkloadInfo &
workloadInfo(const std::string &name)
{
    for (const auto &w : allWorkloads())
        if (w.name == name)
            return w;
    // Hidden fixtures resolve by name but stay out of allWorkloads()
    // so benches and default sweeps never pick them up.
    static const WorkloadInfo fuelbomb = {
        "fuelbomb", "(robustness fixture: never halts)", false,
        buildFuelBomb};
    if (name == fuelbomb.name)
        return fuelbomb;
    throw runtime::StageError(runtime::ErrorKind::InvalidInput,
                              "workload", "unknown workload: " + name);
}

ir::Program
buildWorkload(const std::string &name, Scale scale)
{
    return workloadInfo(name).build(scale);
}

} // namespace workloads
} // namespace msc
