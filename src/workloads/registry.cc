#include "workloads/workload.h"

#include <stdexcept>

namespace msc {
namespace workloads {

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> registry = {
        {"go",       "099.go",      false, buildGo},
        {"m88ksim",  "124.m88ksim", false, buildM88ksim},
        {"gcc",      "126.gcc",     false, buildGcc},
        {"compress", "129.compress",false, buildCompress},
        {"li",       "130.li",      false, buildLi},
        {"ijpeg",    "132.ijpeg",   false, buildIjpeg},
        {"perl",     "134.perl",    false, buildPerl},
        {"vortex",   "147.vortex",  false, buildVortex},
        {"tomcatv",  "101.tomcatv", true,  buildTomcatv},
        {"swim",     "102.swim",    true,  buildSwim},
        {"su2cor",   "103.su2cor",  true,  buildSu2cor},
        {"hydro2d",  "104.hydro2d", true,  buildHydro2d},
        {"mgrid",    "107.mgrid",   true,  buildMgrid},
        {"applu",    "110.applu",   true,  buildApplu},
        {"turb3d",   "125.turb3d",  true,  buildTurb3d},
        {"apsi",     "141.apsi",    true,  buildApsi},
        {"fpppp",    "145.fpppp",   true,  buildFpppp},
        {"wave5",    "146.wave5",   true,  buildWave5},
    };
    return registry;
}

const WorkloadInfo &
workloadInfo(const std::string &name)
{
    for (const auto &w : allWorkloads())
        if (w.name == name)
            return w;
    throw std::runtime_error("unknown workload: " + name);
}

ir::Program
buildWorkload(const std::string &name, Scale scale)
{
    return workloadInfo(name).build(scale);
}

} // namespace workloads
} // namespace msc
