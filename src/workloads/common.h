/**
 * @file
 * Shared code-generation helpers for the workload builders.
 */

#pragma once

#include "ir/builder.h"
#include "workloads/workload.h"

namespace msc {
namespace workloads {

/** Register naming shorthands (ABI of ir/types.h). */
constexpr ir::RegId A0 = 1, A1 = 2, A2 = 3, A3 = 4;       // Args/ret.
constexpr ir::RegId T0 = 8, T1 = 9, T2 = 10, T3 = 11;     // Caller-saved.
constexpr ir::RegId T4 = 12, T5 = 13, T6 = 14, T7 = 15;
constexpr ir::RegId S0 = 16, S1 = 17, S2 = 18, S3 = 19;   // Callee-saved.
constexpr ir::RegId S4 = 20, S5 = 21, S6 = 22, S7 = 23;
constexpr ir::RegId S8 = 24, S9 = 25, S10 = 26, S11 = 27;
constexpr ir::RegId S12 = 28, S13 = 29, S14 = 30, S15 = 31;
constexpr ir::RegId F0 = 32, F1 = 33, F2 = 34, F3 = 35;   // FP.
constexpr ir::RegId F4 = 36, F5 = 37, F6 = 38, F7 = 39;
constexpr ir::RegId F8 = 40, F9 = 41, F10 = 42, F11 = 43;
constexpr ir::RegId F12 = 44, F13 = 45, F14 = 46, F15 = 47;
constexpr ir::RegId FS0 = 48, FS1 = 49, FS2 = 50, FS3 = 51;
constexpr ir::RegId FS4 = 52, FS5 = 53, FS6 = 54, FS7 = 55;

/**
 * Emits a 64-bit LCG step: seed = seed * 6364136223846793005 +
 * 1442695040888963407, leaving the new seed in @p seed_reg.
 */
inline void
emitLcg(ir::FunctionBuilder &f, ir::RegId seed_reg)
{
    f.muli(seed_reg, seed_reg, 6364136223846793005LL);
    f.addi(seed_reg, seed_reg, 1442695040888963407LL);
}

/**
 * Emits extraction of a pseudo-random value in [0, modulus) from the
 * top bits of @p seed_reg into @p dst (modulus must be a power of 2).
 */
inline void
emitRandBits(ir::FunctionBuilder &f, ir::RegId dst, ir::RegId seed_reg,
             int64_t modulus)
{
    f.shri(dst, seed_reg, 33);
    f.andi(dst, dst, modulus - 1);
}

/**
 * Emits a counted-loop skeleton: initializes @p ivreg to 0, then
 * builds header/body/exit blocks. The caller fills the body (current
 * insertion point on return) and must finish it by falling through or
 * jumping to @p back (the latch), which increments and loops.
 *
 * Returns {header, body, latch, exit}.
 */
struct CountedLoop
{
    ir::BlockId header, body, latch, exit;
};

inline CountedLoop
emitCountedLoop(ir::FunctionBuilder &f, ir::RegId ivreg, ir::RegId bound,
                ir::RegId scratch)
{
    CountedLoop l;
    l.header = f.newBlock();
    l.body = f.newBlock();
    l.latch = f.newBlock();
    l.exit = f.newBlock();

    f.li(ivreg, 0);
    f.fallthroughTo(l.header);

    f.setBlock(l.header);
    f.slt(scratch, ivreg, bound);
    f.br(scratch, l.body, l.exit);

    f.setBlock(l.latch);
    f.addi(ivreg, ivreg, 1);
    f.jmp(l.header);

    f.setBlock(l.body);
    return l;
}

} // namespace workloads
} // namespace msc
