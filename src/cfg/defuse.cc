#include "cfg/defuse.h"

namespace msc {
namespace cfg {

DefUse::DefUse(const ir::Function &f)
{
    size_t nblocks = f.blocks.size();

    // Enumerate definition sites and group them per register.
    std::vector<std::vector<uint32_t>> defs_of_reg(ir::NUM_REGS);
    std::vector<ir::RegId> scratch;
    for (const auto &b : f.blocks) {
        for (uint32_t i = 0; i < b.insts.size(); ++i) {
            scratch.clear();
            b.insts[i].defs(scratch);
            for (ir::RegId r : scratch) {
                uint32_t id = uint32_t(_defSites.size());
                _defSites.push_back({{f.id, b.id, i}, r});
                defs_of_reg[r].push_back(id);
            }
        }
    }

    size_t nd = _defSites.size();
    std::vector<DynBitset> reg_kill(ir::NUM_REGS, DynBitset(nd));
    for (unsigned r = 0; r < ir::NUM_REGS; ++r)
        for (uint32_t id : defs_of_reg[r])
            reg_kill[r].set(id);

    // Per-block gen/kill.
    std::vector<DynBitset> gen(nblocks, DynBitset(nd));
    std::vector<DynBitset> kill(nblocks, DynBitset(nd));
    {
        uint32_t id = 0;
        for (const auto &b : f.blocks) {
            for (uint32_t i = 0; i < b.insts.size(); ++i) {
                scratch.clear();
                b.insts[i].defs(scratch);
                for (ir::RegId r : scratch) {
                    // This def kills all other defs of r and generates
                    // itself.
                    gen[b.id].subtract(reg_kill[r]);
                    kill[b.id].unionWith(reg_kill[r]);
                    gen[b.id].set(id);
                    ++id;
                }
            }
        }
    }

    // Iterate to fixpoint: reachIn[b] = U reachOut[p];
    // reachOut[b] = gen[b] | (reachIn[b] - kill[b]).
    _reachIn.assign(nblocks, DynBitset(nd));
    std::vector<DynBitset> reach_out(nblocks, DynBitset(nd));
    for (size_t b = 0; b < nblocks; ++b)
        reach_out[b] = gen[b];

    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &b : f.blocks) {
            DynBitset in(nd);
            for (ir::BlockId p : b.preds)
                in.unionWith(reach_out[p]);
            if (!(in == _reachIn[b.id])) {
                _reachIn[b.id] = in;
                DynBitset out = in;
                out.subtract(kill[b.id]);
                out.unionWith(gen[b.id]);
                if (!(out == reach_out[b.id])) {
                    reach_out[b.id] = out;
                }
                changed = true;
            }
        }
    }

    // Walk each block with the running reaching set to emit def-use
    // edges.
    for (const auto &b : f.blocks) {
        DynBitset live = _reachIn[b.id];
        for (uint32_t i = 0; i < b.insts.size(); ++i) {
            const auto &in = b.insts[i];
            scratch.clear();
            in.uses(scratch);
            for (ir::RegId u : scratch) {
                // All reaching defs of register u feed this use.
                DynBitset hits = live;
                hits.intersectWith(reg_kill[u]);
                hits.forEach([&](size_t d) {
                    _edges.push_back({uint32_t(d),
                                      {f.id, b.id, i}, u});
                });
            }
            scratch.clear();
            in.defs(scratch);
            for (ir::RegId r : scratch)
                live.subtract(reg_kill[r]);
            // Re-set the ids of this instruction's own defs. We need
            // their defsite ids; find them by scanning defs_of_reg.
            for (ir::RegId r : scratch) {
                for (uint32_t id : defs_of_reg[r]) {
                    const DefSite &ds = _defSites[id];
                    if (ds.ref.block == b.id && ds.ref.index == i) {
                        live.set(id);
                        break;
                    }
                }
            }
        }
    }
}

} // namespace cfg
} // namespace msc
