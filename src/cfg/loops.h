/**
 * @file
 * Natural-loop detection and the loop forest.
 *
 * Task selection needs loop structure for three reasons (§3.2, §3.3):
 * loop entry/exit edges and back edges terminate tasks; small loop
 * bodies are unrolled up to LOOP_THRESH instructions; and induction
 * variable updates are hoisted to loop headers.
 */

#pragma once

#include <vector>

#include "cfg/dfs.h"
#include "cfg/dominators.h"
#include "ir/function.h"

namespace msc {
namespace cfg {

/** One natural loop: header + body blocks (header included). */
struct Loop
{
    ir::BlockId header = ir::INVALID_BLOCK;

    /** All blocks in the loop, header first. */
    std::vector<ir::BlockId> blocks;

    /** Sources of back edges into the header (latch blocks). */
    std::vector<ir::BlockId> latches;

    /** Index of the innermost enclosing loop; -1 when top level. */
    int parent = -1;

    /** Nesting depth: 1 for outermost loops. */
    unsigned depth = 1;

    bool
    contains(ir::BlockId b) const
    {
        for (ir::BlockId x : blocks)
            if (x == b)
                return true;
        return false;
    }

    /** Static instruction count of the loop body. */
    size_t
    staticSize(const ir::Function &f) const
    {
        size_t n = 0;
        for (ir::BlockId b : blocks)
            n += f.blocks[b].insts.size();
        return n;
    }
};

/**
 * The set of natural loops of a function, with membership queries.
 * Loops with the same header are merged (as is conventional).
 */
class LoopForest
{
  public:
    LoopForest(const ir::Function &f, const DfsInfo &dfs,
               const DominatorTree &dom);

    const std::vector<Loop> &loops() const { return _loops; }

    /** Index of the innermost loop containing @p b; -1 when none. */
    int innermost(ir::BlockId b) const { return _innermost[b]; }

    /** True when @p b is some loop's header. */
    bool isHeader(ir::BlockId b) const { return _isHeader[b]; }

    /** Loop index of the loop headed by @p b; -1 when not a header. */
    int headerLoop(ir::BlockId b) const { return _headerLoop[b]; }

    /** True when @p b is inside any loop. */
    bool inAnyLoop(ir::BlockId b) const { return _innermost[b] >= 0; }

    /**
     * True when edge (from, to) enters a loop from outside it: the
     * target is a loop header and the source is not in that loop.
     */
    bool isLoopEntryEdge(ir::BlockId from, ir::BlockId to) const;

    /**
     * True when edge (from, to) leaves a loop: the source is in some
     * loop that does not contain the target.
     */
    bool isLoopExitEdge(ir::BlockId from, ir::BlockId to) const;

  private:
    std::vector<Loop> _loops;
    std::vector<int> _innermost;
    std::vector<int> _headerLoop;
    std::vector<bool> _isHeader;
};

} // namespace cfg
} // namespace msc
