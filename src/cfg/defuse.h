/**
 * @file
 * Reaching definitions and register def-use chains.
 *
 * The data-dependence heuristic (§3.4) consumes def-use chains: for
 * each register dependence (producer instruction, consumer
 * instruction) it tries to include the dependence — and its
 * *codependent set* of blocks — inside one task. Register dependences
 * are "identified and specified entirely by the compiler using
 * traditional def-use dataflow equations".
 */

#pragma once

#include <cstdint>
#include <vector>

#include "cfg/bitset.h"
#include "ir/function.h"

namespace msc {
namespace cfg {

/** One definition site: instruction @p ref defines register @p reg. */
struct DefSite
{
    ir::InstRef ref;
    ir::RegId reg;
};

/** One def-use chain edge. */
struct DefUseEdge
{
    uint32_t def;           ///< Index into DefUse::defSites().
    ir::InstRef use;        ///< The consuming instruction.
    ir::RegId reg;          ///< Register carrying the value.
};

/**
 * Per-function reaching-definitions analysis and the induced def-use
 * chains.
 */
class DefUse
{
  public:
    explicit DefUse(const ir::Function &f);

    const std::vector<DefSite> &defSites() const { return _defSites; }
    const std::vector<DefUseEdge> &edges() const { return _edges; }

    /** Reaching definitions at entry of block @p b (defsite bitset). */
    const DynBitset &reachIn(ir::BlockId b) const { return _reachIn[b]; }

  private:
    std::vector<DefSite> _defSites;
    std::vector<DefUseEdge> _edges;
    std::vector<DynBitset> _reachIn;
};

} // namespace cfg
} // namespace msc
