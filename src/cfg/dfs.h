/**
 * @file
 * Depth-first numbering of a function's CFG.
 *
 * The control-flow heuristic of the paper classifies an edge (b, ch)
 * as *terminal* when it retreats in the depth-first order — i.e. a
 * loop back edge — so that tasks never wrap around loops (§3.3,
 * is_a_terminal_edge). This analysis provides the numbering.
 */

#pragma once

#include <vector>

#include "ir/function.h"

namespace msc {
namespace cfg {

/** DFS preorder/postorder numbering of reachable blocks. */
class DfsInfo
{
  public:
    explicit DfsInfo(const ir::Function &f);

    /** Preorder number; UNREACHED for unreachable blocks. */
    unsigned preNum(ir::BlockId b) const { return _pre[b]; }
    unsigned postNum(ir::BlockId b) const { return _post[b]; }

    bool reachable(ir::BlockId b) const { return _pre[b] != UNREACHED; }

    /** Blocks in reverse postorder (suitable for forward dataflow). */
    const std::vector<ir::BlockId> &rpo() const { return _rpo; }

    /** Blocks in DFS preorder. */
    const std::vector<ir::BlockId> &preorder() const { return _preorder; }

    /**
     * True for retreating edges: the target was visited no later than
     * the source and the source is a DFS descendant of the target.
     * For reducible CFGs (all ours are) this is exactly the set of
     * loop back edges; self-loops are included.
     */
    bool isBackEdge(ir::BlockId from, ir::BlockId to) const;

    static constexpr unsigned UNREACHED = ~0u;

  private:
    std::vector<unsigned> _pre, _post;
    std::vector<ir::BlockId> _rpo, _preorder;
};

} // namespace cfg
} // namespace msc
