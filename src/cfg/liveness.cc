#include "cfg/liveness.h"

namespace msc {
namespace cfg {

Liveness::Liveness(const ir::Function &f)
{
    size_t n = f.blocks.size();
    _use.assign(n, 0);
    _def.assign(n, 0);
    _liveIn.assign(n, 0);
    _liveOut.assign(n, 0);

    std::vector<ir::RegId> scratch;
    for (const auto &b : f.blocks) {
        RegSet use = 0, def = 0;
        for (const auto &in : b.insts) {
            scratch.clear();
            in.uses(scratch);
            for (ir::RegId r : scratch)
                if (!regTest(def, r))
                    use |= regBit(r);
            scratch.clear();
            in.defs(scratch);
            for (ir::RegId r : scratch)
                def |= regBit(r);
        }
        _use[b.id] = use;
        _def[b.id] = def;
    }

    // Conservative boundary: at Ret blocks, the return value and all
    // callee-saved registers are live-out of the function (the caller
    // may read them).
    RegSet ret_live = regBit(ir::REG_RET) | regBit(ir::FREG_RET);
    for (ir::RegId r = ir::REG_CALLEE_SAVED_FIRST; r < ir::FIRST_FP_REG; ++r)
        ret_live |= regBit(r);
    for (ir::RegId r = 48; r < ir::NUM_REGS; ++r)
        ret_live |= regBit(r);

    bool changed = true;
    while (changed) {
        changed = false;
        // Backward analysis; iterate blocks in reverse id order as a
        // cheap approximation of postorder.
        for (size_t i = n; i-- > 0;) {
            const auto &b = f.blocks[i];
            RegSet out = b.isExit() ? ret_live : 0;
            for (ir::BlockId s : b.succs)
                out |= _liveIn[s];
            RegSet in = _use[i] | (out & ~_def[i]);
            if (out != _liveOut[i] || in != _liveIn[i]) {
                _liveOut[i] = out;
                _liveIn[i] = in;
                changed = true;
            }
        }
    }
}

} // namespace cfg
} // namespace msc
