#include "cfg/loops.h"

#include <algorithm>
#include <map>

namespace msc {
namespace cfg {

LoopForest::LoopForest(const ir::Function &f, const DfsInfo &dfs,
                       const DominatorTree &dom)
{
    size_t n = f.blocks.size();
    _innermost.assign(n, -1);
    _headerLoop.assign(n, -1);
    _isHeader.assign(n, false);

    // Collect back edges b -> h where h dominates b; group by header.
    std::map<ir::BlockId, std::vector<ir::BlockId>> latches_of;
    for (const auto &b : f.blocks) {
        if (!dfs.reachable(b.id))
            continue;
        for (ir::BlockId s : b.succs)
            if (dom.dominates(s, b.id))
                latches_of[s].push_back(b.id);
    }

    // Build each natural loop: header + all blocks that can reach a
    // latch without passing through the header (classic worklist walk
    // over predecessors).
    for (auto &[header, latches] : latches_of) {
        Loop loop;
        loop.header = header;
        loop.latches = latches;

        std::vector<bool> in(n, false);
        in[header] = true;
        std::vector<ir::BlockId> work;
        for (ir::BlockId l : latches) {
            if (!in[l]) {
                in[l] = true;
                work.push_back(l);
            }
        }
        while (!work.empty()) {
            ir::BlockId b = work.back();
            work.pop_back();
            for (ir::BlockId p : f.blocks[b].preds) {
                if (!dfs.reachable(p) || in[p])
                    continue;
                in[p] = true;
                work.push_back(p);
            }
        }

        loop.blocks.push_back(header);
        for (ir::BlockId b = 0; b < n; ++b)
            if (in[b] && b != header)
                loop.blocks.push_back(b);

        _loops.push_back(std::move(loop));
    }

    // Sort loops by size ascending so that, when assigning innermost
    // membership, smaller (inner) loops win: assign from largest to
    // smallest, letting later (smaller) assignments overwrite.
    std::vector<size_t> order(_loops.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return _loops[a].blocks.size() > _loops[b].blocks.size();
    });

    for (size_t oi : order)
        for (ir::BlockId b : _loops[oi].blocks)
            _innermost[b] = int(oi);

    for (size_t i = 0; i < _loops.size(); ++i) {
        _isHeader[_loops[i].header] = true;
        _headerLoop[_loops[i].header] = int(i);
    }

    // Parent links and depths: the parent of loop L is the smallest
    // loop that strictly contains L's header besides L itself.
    for (size_t i = 0; i < _loops.size(); ++i) {
        int best = -1;
        size_t best_size = ~size_t(0);
        for (size_t j = 0; j < _loops.size(); ++j) {
            if (i == j)
                continue;
            if (_loops[j].contains(_loops[i].header) &&
                _loops[j].blocks.size() < best_size &&
                _loops[j].blocks.size() > _loops[i].blocks.size()) {
                best = int(j);
                best_size = _loops[j].blocks.size();
            }
        }
        _loops[i].parent = best;
    }
    for (auto &l : _loops) {
        unsigned d = 1;
        for (int p = l.parent; p >= 0; p = _loops[p].parent)
            ++d;
        l.depth = d;
    }
}

bool
LoopForest::isLoopEntryEdge(ir::BlockId from, ir::BlockId to) const
{
    int hl = _headerLoop[to];
    if (hl < 0)
        return false;
    return !_loops[hl].contains(from);
}

bool
LoopForest::isLoopExitEdge(ir::BlockId from, ir::BlockId to) const
{
    for (int li = _innermost[from]; li >= 0; li = _loops[li].parent)
        if (!_loops[li].contains(to))
            return true;
    return false;
}

} // namespace cfg
} // namespace msc
