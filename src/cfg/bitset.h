/**
 * @file
 * A small dynamic bitset used by the dataflow analyses.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace msc {
namespace cfg {

/**
 * Fixed-capacity dynamic bitset with the set-algebra operations the
 * iterative dataflow solvers need. All binary operations require both
 * operands to have the same size.
 */
class DynBitset
{
  public:
    DynBitset() = default;

    explicit DynBitset(size_t nbits)
        : _nbits(nbits), _words((nbits + 63) / 64, 0)
    {}

    size_t size() const { return _nbits; }

    void
    set(size_t i)
    {
        _words[i >> 6] |= (uint64_t(1) << (i & 63));
    }

    void
    reset(size_t i)
    {
        _words[i >> 6] &= ~(uint64_t(1) << (i & 63));
    }

    bool
    test(size_t i) const
    {
        return (_words[i >> 6] >> (i & 63)) & 1;
    }

    void
    clear()
    {
        for (auto &w : _words)
            w = 0;
    }

    void
    setAll()
    {
        for (auto &w : _words)
            w = ~uint64_t(0);
        trim();
    }

    bool
    any() const
    {
        for (auto w : _words)
            if (w)
                return true;
        return false;
    }

    bool none() const { return !any(); }

    size_t
    count() const
    {
        size_t n = 0;
        for (auto w : _words)
            n += size_t(__builtin_popcountll(w));
        return n;
    }

    /** this |= other; returns true when this changed. */
    bool
    unionWith(const DynBitset &other)
    {
        bool changed = false;
        for (size_t i = 0; i < _words.size(); ++i) {
            uint64_t nw = _words[i] | other._words[i];
            changed |= (nw != _words[i]);
            _words[i] = nw;
        }
        return changed;
    }

    /** this &= other. */
    void
    intersectWith(const DynBitset &other)
    {
        for (size_t i = 0; i < _words.size(); ++i)
            _words[i] &= other._words[i];
    }

    /** this &= ~other. */
    void
    subtract(const DynBitset &other)
    {
        for (size_t i = 0; i < _words.size(); ++i)
            _words[i] &= ~other._words[i];
    }

    friend bool
    operator==(const DynBitset &a, const DynBitset &b)
    {
        return a._nbits == b._nbits && a._words == b._words;
    }

    /** Calls @p fn(i) for each set bit i, in increasing order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t wi = 0; wi < _words.size(); ++wi) {
            uint64_t w = _words[wi];
            while (w) {
                unsigned b = unsigned(__builtin_ctzll(w));
                fn(wi * 64 + b);
                w &= w - 1;
            }
        }
    }

  private:
    void
    trim()
    {
        if (_nbits & 63)
            _words.back() &= (uint64_t(1) << (_nbits & 63)) - 1;
    }

    size_t _nbits = 0;
    std::vector<uint64_t> _words;
};

} // namespace cfg
} // namespace msc
