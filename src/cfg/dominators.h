/**
 * @file
 * Dominator tree via the Cooper-Harvey-Kennedy algorithm.
 */

#pragma once

#include <vector>

#include "cfg/dfs.h"
#include "ir/function.h"

namespace msc {
namespace cfg {

/**
 * Immediate-dominator tree of a function's CFG. Only reachable blocks
 * participate; queries on unreachable blocks return INVALID_BLOCK /
 * false.
 */
class DominatorTree
{
  public:
    DominatorTree(const ir::Function &f, const DfsInfo &dfs);

    /** Immediate dominator; INVALID_BLOCK for the entry/unreachable. */
    ir::BlockId idom(ir::BlockId b) const { return _idom[b]; }

    /** True when @p a dominates @p b (reflexive). */
    bool dominates(ir::BlockId a, ir::BlockId b) const;

  private:
    const DfsInfo &_dfs;
    std::vector<ir::BlockId> _idom;

    ir::BlockId intersect(ir::BlockId a, ir::BlockId b) const;
};

} // namespace cfg
} // namespace msc
