#include "cfg/reachability.h"

#include <vector>

namespace msc {
namespace cfg {

namespace {

void
bfs(const ir::Function &f, ir::BlockId start, bool forward, DynBitset &out)
{
    out.set(start);
    std::vector<ir::BlockId> work{start};
    while (!work.empty()) {
        ir::BlockId b = work.back();
        work.pop_back();
        const auto &next = forward ? f.blocks[b].succs : f.blocks[b].preds;
        for (ir::BlockId s : next) {
            if (!out.test(s)) {
                out.set(s);
                work.push_back(s);
            }
        }
    }
}

} // anonymous namespace

Reachability::Reachability(const ir::Function &f)
{
    size_t n = f.blocks.size();
    _fwd.assign(n, DynBitset(n));
    _bwd.assign(n, DynBitset(n));
    for (ir::BlockId b = 0; b < n; ++b) {
        bfs(f, b, true, _fwd[b]);
        bfs(f, b, false, _bwd[b]);
    }
}

} // namespace cfg
} // namespace msc
