#include "cfg/dfs.h"

#include <algorithm>

namespace msc {
namespace cfg {

DfsInfo::DfsInfo(const ir::Function &f)
{
    size_t n = f.blocks.size();
    _pre.assign(n, UNREACHED);
    _post.assign(n, UNREACHED);
    _preorder.reserve(n);

    unsigned pre_ctr = 0, post_ctr = 0;

    // Iterative DFS to avoid deep recursion on long chains.
    struct Frame { ir::BlockId blk; size_t next_succ; };
    std::vector<Frame> stack;
    stack.push_back({f.entry, 0});
    _pre[f.entry] = pre_ctr++;
    _preorder.push_back(f.entry);

    std::vector<ir::BlockId> postorder;
    postorder.reserve(n);

    while (!stack.empty()) {
        Frame &fr = stack.back();
        const auto &succs = f.blocks[fr.blk].succs;
        if (fr.next_succ < succs.size()) {
            ir::BlockId s = succs[fr.next_succ++];
            if (_pre[s] == UNREACHED) {
                _pre[s] = pre_ctr++;
                _preorder.push_back(s);
                stack.push_back({s, 0});
            }
        } else {
            _post[fr.blk] = post_ctr++;
            postorder.push_back(fr.blk);
            stack.pop_back();
        }
    }

    _rpo.assign(postorder.rbegin(), postorder.rend());
}

bool
DfsInfo::isBackEdge(ir::BlockId from, ir::BlockId to) const
{
    if (!reachable(from) || !reachable(to))
        return false;
    // Retreating edge: target visited earlier (or equal, a self loop)
    // in preorder and not yet finished when the source was entered,
    // which for preorder/postorder pairs is: pre(to) <= pre(from) and
    // post(to) >= post(from).
    return _pre[to] <= _pre[from] && _post[to] >= _post[from];
}

} // namespace cfg
} // namespace msc
