#include "cfg/dominators.h"

namespace msc {
namespace cfg {

DominatorTree::DominatorTree(const ir::Function &f, const DfsInfo &dfs)
    : _dfs(dfs)
{
    _idom.assign(f.blocks.size(), ir::INVALID_BLOCK);

    const auto &rpo = dfs.rpo();
    if (rpo.empty())
        return;

    _idom[f.entry] = f.entry;

    bool changed = true;
    while (changed) {
        changed = false;
        for (ir::BlockId b : rpo) {
            if (b == f.entry)
                continue;
            ir::BlockId new_idom = ir::INVALID_BLOCK;
            for (ir::BlockId p : f.blocks[b].preds) {
                if (_idom[p] == ir::INVALID_BLOCK)
                    continue;  // Not yet processed / unreachable.
                new_idom = (new_idom == ir::INVALID_BLOCK)
                    ? p : intersect(p, new_idom);
            }
            if (new_idom != ir::INVALID_BLOCK && _idom[b] != new_idom) {
                _idom[b] = new_idom;
                changed = true;
            }
        }
    }

    // Normalize: the entry has no immediate dominator.
    _idom[f.entry] = ir::INVALID_BLOCK;
}

ir::BlockId
DominatorTree::intersect(ir::BlockId a, ir::BlockId b) const
{
    while (a != b) {
        while (_dfs.postNum(a) < _dfs.postNum(b))
            a = _idom[a];
        while (_dfs.postNum(b) < _dfs.postNum(a))
            b = _idom[b];
    }
    return a;
}

bool
DominatorTree::dominates(ir::BlockId a, ir::BlockId b) const
{
    if (!_dfs.reachable(a) || !_dfs.reachable(b))
        return false;
    while (true) {
        if (b == a)
            return true;
        ir::BlockId up = _idom[b];
        if (up == ir::INVALID_BLOCK || up == b)
            return false;
        b = up;
    }
}

} // namespace cfg
} // namespace msc
