/**
 * @file
 * Per-block register liveness.
 *
 * Used for dead-register analysis when building task create masks: a
 * task need only forward registers that are live at its exits (§4.2
 * mentions "dead register analysis for register communication" among
 * the Multiscalar-specific compiler phases).
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ir/function.h"

namespace msc {
namespace cfg {

/** A 64-register set, one bit per architectural register. */
using RegSet = uint64_t;

inline bool regTest(RegSet s, ir::RegId r) { return (s >> r) & 1; }
inline RegSet regBit(ir::RegId r) { return RegSet(1) << r; }

/** Backward liveness over the registers of one function. */
class Liveness
{
  public:
    explicit Liveness(const ir::Function &f);

    RegSet liveIn(ir::BlockId b) const { return _liveIn[b]; }
    RegSet liveOut(ir::BlockId b) const { return _liveOut[b]; }

    /** Registers read before any write in block @p b. */
    RegSet upwardExposed(ir::BlockId b) const { return _use[b]; }

    /** Registers written anywhere in block @p b. */
    RegSet defined(ir::BlockId b) const { return _def[b]; }

  private:
    std::vector<RegSet> _use, _def, _liveIn, _liveOut;
};

} // namespace cfg
} // namespace msc
