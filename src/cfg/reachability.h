/**
 * @file
 * CFG reachability and codependent-set computation.
 *
 * The codependent set of a def-use dependence (u, v) is "the set of
 * basic blocks in all the control flow paths from the producer to the
 * consumer" (§3.4); the data-dependence heuristic steers exploration
 * to exactly these blocks.
 */

#pragma once

#include "cfg/bitset.h"
#include "ir/function.h"

namespace msc {
namespace cfg {

/** Forward/backward reachability over one function's CFG. */
class Reachability
{
  public:
    explicit Reachability(const ir::Function &f);

    /** Blocks reachable from @p b by following successor edges
     *  (includes @p b itself). */
    const DynBitset &forward(ir::BlockId b) const { return _fwd[b]; }

    /** Blocks from which @p b is reachable (includes @p b itself). */
    const DynBitset &backward(ir::BlockId b) const { return _bwd[b]; }

    /** True when a path exists from @p a to @p b (reflexive). */
    bool
    reaches(ir::BlockId a, ir::BlockId b) const
    {
        return _fwd[a].test(b);
    }

    /**
     * The codependent set of a dependence from @p producer to
     * @p consumer: blocks lying on any path producer -> consumer.
     * Empty when no such path exists.
     */
    DynBitset
    codependent(ir::BlockId producer, ir::BlockId consumer) const
    {
        DynBitset s = _fwd[producer];
        s.intersectWith(_bwd[consumer]);
        return s;
    }

  private:
    std::vector<DynBitset> _fwd, _bwd;
};

} // namespace cfg
} // namespace msc
