#include "sim/runner.h"

#include "pipeline/session.h"

namespace msc {
namespace sim {

namespace {

pipeline::StageOptions
toStageOptions(const RunOptions &opts)
{
    pipeline::StageOptions o =
        pipeline::StageOptions::fromSelection(opts.sel);
    o.profile.profileInsts = opts.profileInsts;
    o.trace.traceInsts = opts.traceInsts;
    o.config = opts.config;
    o.verifyPartition = opts.verifyPartition;
    o.sink = opts.sink;
    o.phaseTimes = opts.phaseTimes;
    return o;
}

void
fillFrontend(RunResult &r, const pipeline::ProfileArtifact &prof,
             const pipeline::PartitionArtifact &part)
{
    r.prog = part.transformed->prog;
    r.profile = prof.profile;
    r.partition = part.partition;
    r.loopsUnrolled = part.transformed->loopsUnrolled;
    r.ivsHoisted = part.transformed->ivsHoisted;
}

} // anonymous namespace

RunResult
partitionOnly(const ir::Program &input, const RunOptions &opts)
{
    pipeline::Session session(input);
    pipeline::StageOptions o = toStageOptions(opts);
    auto part = session.select(o);
    RunResult r;
    fillFrontend(r, *session.profile(o), *part);
    return r;
}

RunResult
runPipeline(const ir::Program &input, const RunOptions &opts)
{
    pipeline::Session session(input);
    pipeline::StageResults a = session.runAll(toStageOptions(opts));
    RunResult r;
    fillFrontend(r, *a.profile, *a.partition);
    r.dynTaskCount = a.trace->tasks.size();
    r.stats = a.sim->stats;
    return r;
}

} // namespace sim
} // namespace msc
