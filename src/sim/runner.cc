#include "sim/runner.h"

#include <chrono>
#include <stdexcept>

#include "obs/phase.h"
#include "profile/interpreter.h"
#include "tasksel/pverify.h"
#include "tasksel/selector.h"
#include "tasksel/transforms.h"

namespace msc {
namespace sim {

namespace {

/**
 * Accumulates the wall time between mark() calls into a PhaseTimes.
 * With no accumulator attached (the common case) it never reads the
 * clock.
 */
class PhaseClock
{
  public:
    explicit PhaseClock(obs::PhaseTimes *pt)
        : _pt(pt)
    {
        if (_pt)
            _last = Clock::now();
    }

    void
    mark(obs::PipelinePhase p)
    {
        if (!_pt)
            return;
        Clock::time_point now = Clock::now();
        _pt->add(p, std::chrono::duration<double, std::micro>(
                        now - _last).count());
        _last = now;
    }

  private:
    using Clock = std::chrono::steady_clock;
    obs::PhaseTimes *_pt;
    Clock::time_point _last;
};

RunResult
preparePartition(const ir::Program &input, const RunOptions &opts)
{
    PhaseClock clock(opts.phaseTimes);

    RunResult r;
    r.prog = std::make_unique<ir::Program>(input);

    // IR transforms first, so profiling and simulation see the final
    // code. The induction-variable rotation runs before unrolling so
    // every unrolled copy carries its increment at the top (§3.2);
    // loop unrolling belongs to the task-size heuristic.
    if (opts.sel.hoistInductionVars)
        r.ivsHoisted = tasksel::hoistInductionVariables(*r.prog);
    if (opts.sel.taskSizeHeuristic)
        r.loopsUnrolled = tasksel::unrollSmallLoops(*r.prog,
                                                    opts.sel.loopThresh);
    r.prog->computeCfg();
    r.prog->layout();
    clock.mark(obs::PipelinePhase::Transforms);

    r.profile = profile::profileProgram(*r.prog, opts.profileInsts);
    clock.mark(obs::PipelinePhase::Profile);

    r.partition = tasksel::selectTasks(*r.prog, r.profile, opts.sel);

    if (opts.verifyPartition) {
        std::string err;
        if (!tasksel::verifyPartition(r.partition, opts.sel, &err))
            throw std::runtime_error("partition verification failed: "
                                     + err);
    }
    clock.mark(obs::PipelinePhase::Selection);
    return r;
}

} // anonymous namespace

RunResult
partitionOnly(const ir::Program &input, const RunOptions &opts)
{
    return preparePartition(input, opts);
}

RunResult
runPipeline(const ir::Program &input, const RunOptions &opts)
{
    RunResult r = preparePartition(input, opts);
    PhaseClock clock(opts.phaseTimes);

    profile::Interpreter interp(*r.prog);
    profile::Trace trace = interp.trace(opts.traceInsts);

    std::vector<arch::DynTask> dyn = arch::cutTasks(trace, r.partition);
    r.dynTaskCount = dyn.size();
    clock.mark(obs::PipelinePhase::TraceCut);

    r.stats = arch::simulate(r.partition, dyn, opts.config, opts.sink);
    clock.mark(obs::PipelinePhase::TimingSim);
    return r;
}

} // namespace sim
} // namespace msc
