#include "sim/runner.h"

#include <stdexcept>

#include "profile/interpreter.h"
#include "tasksel/pverify.h"
#include "tasksel/selector.h"
#include "tasksel/transforms.h"

namespace msc {
namespace sim {

namespace {

RunResult
preparePartition(const ir::Program &input, const RunOptions &opts)
{
    RunResult r;
    r.prog = std::make_unique<ir::Program>(input);

    // IR transforms first, so profiling and simulation see the final
    // code. The induction-variable rotation runs before unrolling so
    // every unrolled copy carries its increment at the top (§3.2);
    // loop unrolling belongs to the task-size heuristic.
    if (opts.sel.hoistInductionVars)
        r.ivsHoisted = tasksel::hoistInductionVariables(*r.prog);
    if (opts.sel.taskSizeHeuristic)
        r.loopsUnrolled = tasksel::unrollSmallLoops(*r.prog,
                                                    opts.sel.loopThresh);
    r.prog->computeCfg();
    r.prog->layout();

    r.profile = profile::profileProgram(*r.prog, opts.profileInsts);
    r.partition = tasksel::selectTasks(*r.prog, r.profile, opts.sel);

    if (opts.verifyPartition) {
        std::string err;
        if (!tasksel::verifyPartition(r.partition, opts.sel, &err))
            throw std::runtime_error("partition verification failed: "
                                     + err);
    }
    return r;
}

} // anonymous namespace

RunResult
partitionOnly(const ir::Program &input, const RunOptions &opts)
{
    return preparePartition(input, opts);
}

RunResult
runPipeline(const ir::Program &input, const RunOptions &opts)
{
    RunResult r = preparePartition(input, opts);

    profile::Interpreter interp(*r.prog);
    profile::Trace trace = interp.trace(opts.traceInsts);

    std::vector<arch::DynTask> dyn = arch::cutTasks(trace, r.partition);
    r.dynTaskCount = dyn.size();

    r.stats = arch::simulate(r.partition, dyn, opts.config);
    return r;
}

} // namespace sim
} // namespace msc
