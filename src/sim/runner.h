/**
 * @file
 * One-call driver for the full pipeline the paper's evaluation uses:
 *
 *   program --(task-size / IV-hoist IR transforms)--> program'
 *   program' --(profile run)--> Profile
 *   (program', Profile, strategy) --(task selection)--> TaskPartition
 *   program' --(functional trace)--> Trace --(cut)--> dynamic tasks
 *   (partition, dynamic tasks, SimConfig) --(timing model)--> SimStats
 *
 * This header is the legacy single-shot entry point, kept as a thin
 * wrapper over pipeline::Session. Migration notes:
 *
 *  - New code should construct a pipeline::Session and call the stage
 *    methods (or Session::runAll) with pipeline::StageOptions; a
 *    Session reuses frontend artifacts across calls, which this
 *    wrapper — one throwaway Session per call — cannot.
 *  - RunOptions's flat fields split per stage: `profileInsts` lives in
 *    pipeline::ProfileOptions, `traceInsts` in pipeline::TraceOptions;
 *    `sel` and `config` carry over unchanged. The transform knobs
 *    (hoistInductionVars / taskSizeHeuristic / loopThresh) are read
 *    from `sel`, exactly as before, via StageOptions::fromSelection.
 *  - RunResult::prog is now a shared_ptr<const ir::Program>, so
 *    RunResult is copyable and movable; `partition.prog` still
 *    aliases it (see RunResult docs).
 */

#pragma once

#include <memory>

#include "arch/config.h"
#include "arch/processor.h"
#include "arch/taskstream.h"
#include "profile/profiler.h"
#include "tasksel/options.h"
#include "tasksel/task.h"

namespace msc {

namespace obs {
class TraceSink;
struct PhaseTimes;
}

namespace sim {

/** Everything a pipeline run needs to know (legacy flat bundle; see
 *  the migration notes above and pipeline::StageOptions). */
struct RunOptions
{
    tasksel::SelectionOptions sel;
    arch::SimConfig config;

    /** Dynamic-instruction budget for the timing trace. */
    uint64_t traceInsts = 400'000;

    /** Dynamic-instruction budget for the profiling run. */
    uint64_t profileInsts = 1'000'000;

    /** Validate the partition and throw on violation (tests). */
    bool verifyPartition = true;

    /**
     * Task-lifecycle trace sink for the timing simulation (see
     * obs/tracesink.h); null disables tracing at the cost of one
     * pointer test per event site. Not owned.
     */
    obs::TraceSink *sink = nullptr;

    /**
     * When non-null, receives wall-clock timings of the five
     * pipeline stages (obs/phase.h). Host time: reported on stderr /
     * in trace files only, never in msc.sweep documents.
     */
    obs::PhaseTimes *phaseTimes = nullptr;
};

/**
 * Results of a pipeline run. `partition.prog` points at `*prog`;
 * because `prog` is shared ownership, copies and moves of a RunResult
 * keep the alias valid for as long as any copy lives.
 */
struct RunResult
{
    /** Post-transform program (shared with the Session's artifacts). */
    std::shared_ptr<const ir::Program> prog;
    profile::Profile profile;
    tasksel::TaskPartition partition;
    arch::SimStats stats;

    /** Number of dynamic tasks in the simulated stream. */
    uint64_t dynTaskCount = 0;

    /** Transform bookkeeping. */
    unsigned loopsUnrolled = 0;
    unsigned ivsHoisted = 0;
};

/**
 * Runs the full pipeline on a copy of @p input.
 * Throws std::runtime_error on malformed IR or partitions.
 */
RunResult runPipeline(const ir::Program &input, const RunOptions &opts);

/**
 * Convenience: partition only (transforms + profile + selection),
 * without the timing simulation.
 */
RunResult partitionOnly(const ir::Program &input, const RunOptions &opts);

} // namespace sim
} // namespace msc
