/**
 * @file
 * Parser for the textual mini-IR format emitted by printer.h.
 *
 * Grammar (line oriented; `;` starts a comment):
 *
 *   program <name> entry @<func>
 *   func @<name> {
 *     bb<k>:            ; optional "(entry)" tag, optional "ft -> bbN"
 *       <mnemonic> operands...
 *   }
 *
 * Instruction operand syntax matches the printer exactly:
 *   add r3, r4, r5       |  add r3, r4, 7
 *   ld r5, [r6 + -2]     |  st r5, [r6 + 0]
 *   br r7, bb3           |  jmp bb2
 *   call @callee, 2      |  ret | halt | nop
 *   li r3, 42            |  fli f40, 2.5
 *
 * Fall-through successors are declared with the `; ft -> bbN` comment
 * the printer writes, so print -> parse -> print round-trips.
 */

#pragma once

#include <stdexcept>
#include <string>

#include "ir/program.h"
#include "runtime/error.h"

namespace msc {
namespace ir {

/** Error thrown on malformed textual IR, with a line number. A
 *  StageError of kind InvalidInput / stage "parse", so drivers that
 *  classify failures structurally (sweep error records) see parser
 *  rejections without a dedicated catch site. */
class ParseError : public runtime::StageError
{
  public:
    ParseError(unsigned line, const std::string &msg)
        : runtime::StageError(runtime::ErrorKind::InvalidInput, "parse",
                              "line " + std::to_string(line) + ": " +
                                  msg),
          _line(line)
    {}

    unsigned line() const { return _line; }

  private:
    unsigned _line;
};

/**
 * Parses a whole program from text. The result is CFG-computed,
 * verified and laid out (ready to execute / partition).
 * @throws ParseError on syntax errors, std::runtime_error when the
 *         parsed program fails verification.
 */
Program parseProgram(const std::string &text);

} // namespace ir
} // namespace msc
