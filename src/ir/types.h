/**
 * @file
 * Core identifier types and the instruction opcode set for the mini-IR.
 *
 * The mini-IR is a small, RISC-like three-address intermediate
 * representation used as the compilation substrate for Multiscalar
 * task selection. Programs are collections of functions; functions are
 * control-flow graphs of basic blocks; blocks are sequences of
 * instructions over a flat file of 64 registers (32 integer + 32
 * floating-point by convention) and a flat word-addressed memory.
 *
 * ABI convention (enforced by code generators, assumed by dataflow):
 *  - r0        : always-zero register (writes ignored)
 *  - r1        : integer return value
 *  - r1..r6    : integer argument registers
 *  - r8..r15   : caller-saved temporaries (clobbered by Call)
 *  - r16..r31  : callee-saved (preserved across Call)
 *  - f32       : FP return value
 *  - f32..f38  : FP argument registers
 *  - f40..f47  : caller-saved FP temporaries (clobbered by Call)
 *  - f48..f63  : callee-saved FP
 */

#pragma once

#include <cstdint>
#include <string>

namespace msc {
namespace ir {

/** Register identifier: 0..63. 0..31 integer, 32..63 floating point. */
using RegId = uint8_t;

/** Number of architectural registers. */
constexpr unsigned NUM_REGS = 64;

/** First floating-point register index. */
constexpr RegId FIRST_FP_REG = 32;

/** Sentinel for "no register operand". */
constexpr RegId NO_REG = 0xff;

/** Well-known registers per the ABI convention. */
constexpr RegId REG_ZERO = 0;
constexpr RegId REG_RET = 1;
constexpr RegId REG_ARG0 = 1;
constexpr RegId REG_ARG_LAST = 6;
constexpr RegId REG_CALLER_SAVED_FIRST = 8;
constexpr RegId REG_CALLER_SAVED_LAST = 15;
constexpr RegId REG_CALLEE_SAVED_FIRST = 16;
constexpr RegId FREG_RET = 32;
constexpr RegId FREG_CALLER_SAVED_FIRST = 40;
constexpr RegId FREG_CALLER_SAVED_LAST = 47;

/** Returns true if @p r names a floating-point register. */
inline bool
isFpReg(RegId r)
{
    return r != NO_REG && r >= FIRST_FP_REG;
}

/** Basic-block identifier, local to its enclosing function. */
using BlockId = uint32_t;

/** Function identifier, index into Program::functions. */
using FuncId = uint32_t;

/** Sentinel block / function ids. */
constexpr BlockId INVALID_BLOCK = 0xffffffffu;
constexpr FuncId INVALID_FUNC = 0xffffffffu;

/** Globally unique reference to a basic block: (function, block). */
struct BlockRef
{
    FuncId func = INVALID_FUNC;
    BlockId block = INVALID_BLOCK;

    bool valid() const { return func != INVALID_FUNC; }

    friend bool
    operator==(const BlockRef &a, const BlockRef &b)
    {
        return a.func == b.func && a.block == b.block;
    }

    friend auto operator<=>(const BlockRef &a, const BlockRef &b) = default;
};

/** Globally unique reference to an instruction: (function, block, index). */
struct InstRef
{
    FuncId func = INVALID_FUNC;
    BlockId block = INVALID_BLOCK;
    uint32_t index = 0;

    bool valid() const { return func != INVALID_FUNC; }

    BlockRef blockRef() const { return {func, block}; }

    friend bool
    operator==(const InstRef &a, const InstRef &b)
    {
        return a.func == b.func && a.block == b.block && a.index == b.index;
    }

    friend auto operator<=>(const InstRef &a, const InstRef &b) = default;
};

/**
 * Instruction opcodes.
 *
 * Binary integer/FP arithmetic reads src1 and, when src2 is a valid
 * register, src2; otherwise the immediate field. Memory operations
 * address a flat array of 64-bit words: the effective word address of
 * Load/FLoad is src1 + imm (or just imm when src1 is NO_REG); Store
 * and FStore write the value in src1 to word address src2 + imm.
 * Br branches to `target` when src1 != 0; BrZ when src1 == 0; both
 * fall through to the block's `fallthrough` otherwise.
 */
enum class Opcode : uint8_t
{
    Nop,
    Halt,

    // Integer arithmetic / logic.
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr, Sra,
    Slt, Sle, Seq, Sne,
    LoadImm, Mov,

    // Floating point.
    FAdd, FSub, FMul, FDiv,
    FSlt, FSle, FSeq,
    FMov, FLoadImm, ItoF, FtoI,

    // Memory.
    Load, Store, FLoad, FStore,

    // Control.
    Br, BrZ, Jmp, Call, Ret,

    NUM_OPCODES
};

/** Functional-unit class an instruction executes on. */
enum class FuClass : uint8_t
{
    None,       ///< Nop, Halt: consume an issue slot only.
    IntAlu,     ///< Integer ALU operations (2 units per PU).
    FpAlu,      ///< Floating-point operations (1 unit per PU).
    Mem,        ///< Loads and stores (1 unit per PU).
    Branch,     ///< Control transfers (1 unit per PU).
};

/** Static properties of an opcode. */
struct OpInfo
{
    const char *name;       ///< Mnemonic for printing / parsing.
    FuClass fu;             ///< Functional-unit class.
    uint8_t latency;        ///< Execution latency in cycles (mem: base).
    bool hasDst;            ///< Writes the dst register.
    bool readsSrc1;
    bool readsSrc2;         ///< May read src2 (reg form of binary ops).
    bool isControl;         ///< Transfers control (Br/BrZ/Jmp/Call/Ret).
};

/** Returns the static property record for @p op. */
const OpInfo &opInfo(Opcode op);

/** Returns the mnemonic for @p op. */
inline const char *opName(Opcode op) { return opInfo(op).name; }

/** Parses a mnemonic; returns NUM_OPCODES when unrecognized. */
Opcode opFromName(const std::string &name);

/** Formats a register as "rN" / "fN" / "--". */
std::string regName(RegId r);

/** Parses "rN"/"fN"; returns NO_REG on failure. */
RegId regFromName(const std::string &name);

} // namespace ir
} // namespace msc

namespace std {

template <>
struct hash<msc::ir::BlockRef>
{
    size_t
    operator()(const msc::ir::BlockRef &b) const noexcept
    {
        return (size_t(b.func) << 32) ^ b.block;
    }
};

template <>
struct hash<msc::ir::InstRef>
{
    size_t
    operator()(const msc::ir::InstRef &i) const noexcept
    {
        return ((size_t(i.func) << 40) ^ (size_t(i.block) << 16)
                ^ i.index) * 0x9e3779b97f4a7c15ull;
    }
};

} // namespace std
