/**
 * @file
 * Fluent construction API for mini-IR programs.
 *
 * Typical use:
 * @code
 *   IRBuilder b("vecsum");
 *   FunctionBuilder &f = b.function("main");
 *   BlockId head = f.newBlock(), body = f.newBlock(), done = f.newBlock();
 *   f.li(2, 0);                  // i = 0
 *   f.li(3, 100);                // n = 100
 *   f.fallthroughTo(head);
 *   f.setBlock(head);
 *   f.slt(4, 2, 3);              // i < n ?
 *   f.br(4, body, done);
 *   f.setBlock(body);
 *   ...
 *   f.setBlock(done);
 *   f.halt();
 *   Program p = b.build();
 * @endcode
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/program.h"

namespace msc {
namespace ir {

class IRBuilder;

/**
 * Builds one function. Obtained from IRBuilder::function(); keeps an
 * insertion point (current block) that instruction emitters append to.
 */
class FunctionBuilder
{
  public:
    /** The function id this builder populates. */
    FuncId id() const { return _func; }

    /** Creates a new, empty block and returns its id. */
    BlockId newBlock();

    /** Creates @p n new blocks and returns their ids. */
    std::vector<BlockId> newBlocks(size_t n);

    /** Sets the insertion point. */
    void setBlock(BlockId b);

    /** Returns the current insertion block. */
    BlockId currentBlock() const { return _cur; }

    /** Appends a raw instruction to the current block. */
    void emit(const Instruction &inst);

    /// @name Integer arithmetic emitters (reg and immediate forms).
    /// @{
    void add(RegId d, RegId a, RegId b) { rrr(Opcode::Add, d, a, b); }
    void addi(RegId d, RegId a, int64_t i) { rri(Opcode::Add, d, a, i); }
    void sub(RegId d, RegId a, RegId b) { rrr(Opcode::Sub, d, a, b); }
    void subi(RegId d, RegId a, int64_t i) { rri(Opcode::Sub, d, a, i); }
    void mul(RegId d, RegId a, RegId b) { rrr(Opcode::Mul, d, a, b); }
    void muli(RegId d, RegId a, int64_t i) { rri(Opcode::Mul, d, a, i); }
    void div(RegId d, RegId a, RegId b) { rrr(Opcode::Div, d, a, b); }
    void divi(RegId d, RegId a, int64_t i) { rri(Opcode::Div, d, a, i); }
    void rem(RegId d, RegId a, RegId b) { rrr(Opcode::Rem, d, a, b); }
    void remi(RegId d, RegId a, int64_t i) { rri(Opcode::Rem, d, a, i); }
    void and_(RegId d, RegId a, RegId b) { rrr(Opcode::And, d, a, b); }
    void andi(RegId d, RegId a, int64_t i) { rri(Opcode::And, d, a, i); }
    void or_(RegId d, RegId a, RegId b) { rrr(Opcode::Or, d, a, b); }
    void ori(RegId d, RegId a, int64_t i) { rri(Opcode::Or, d, a, i); }
    void xor_(RegId d, RegId a, RegId b) { rrr(Opcode::Xor, d, a, b); }
    void xori(RegId d, RegId a, int64_t i) { rri(Opcode::Xor, d, a, i); }
    void shl(RegId d, RegId a, RegId b) { rrr(Opcode::Shl, d, a, b); }
    void shli(RegId d, RegId a, int64_t i) { rri(Opcode::Shl, d, a, i); }
    void shr(RegId d, RegId a, RegId b) { rrr(Opcode::Shr, d, a, b); }
    void shri(RegId d, RegId a, int64_t i) { rri(Opcode::Shr, d, a, i); }
    void srai(RegId d, RegId a, int64_t i) { rri(Opcode::Sra, d, a, i); }
    void slt(RegId d, RegId a, RegId b) { rrr(Opcode::Slt, d, a, b); }
    void slti(RegId d, RegId a, int64_t i) { rri(Opcode::Slt, d, a, i); }
    void sle(RegId d, RegId a, RegId b) { rrr(Opcode::Sle, d, a, b); }
    void slei(RegId d, RegId a, int64_t i) { rri(Opcode::Sle, d, a, i); }
    void seq(RegId d, RegId a, RegId b) { rrr(Opcode::Seq, d, a, b); }
    void seqi(RegId d, RegId a, int64_t i) { rri(Opcode::Seq, d, a, i); }
    void sne(RegId d, RegId a, RegId b) { rrr(Opcode::Sne, d, a, b); }
    void snei(RegId d, RegId a, int64_t i) { rri(Opcode::Sne, d, a, i); }
    void sra(RegId d, RegId a, RegId b) { rrr(Opcode::Sra, d, a, b); }
    void li(RegId d, int64_t i);
    void mov(RegId d, RegId a);
    void nop() { emit(Instruction{}); }
    /// @}

    /// @name Floating-point emitters.
    /// @{
    void fadd(RegId d, RegId a, RegId b) { rrr(Opcode::FAdd, d, a, b); }
    void fsub(RegId d, RegId a, RegId b) { rrr(Opcode::FSub, d, a, b); }
    void fmul(RegId d, RegId a, RegId b) { rrr(Opcode::FMul, d, a, b); }
    void fdiv(RegId d, RegId a, RegId b) { rrr(Opcode::FDiv, d, a, b); }
    void fslt(RegId d, RegId a, RegId b) { rrr(Opcode::FSlt, d, a, b); }
    void fsle(RegId d, RegId a, RegId b) { rrr(Opcode::FSle, d, a, b); }
    void fseq(RegId d, RegId a, RegId b) { rrr(Opcode::FSeq, d, a, b); }
    void fmov(RegId d, RegId a);
    void fli(RegId d, double v);
    void itof(RegId d, RegId a);
    void ftoi(RegId d, RegId a);
    /// @}

    /// @name Memory emitters (word addressing: address = base + offset).
    /// @{
    void load(RegId d, RegId base, int64_t off = 0);
    void loadAbs(RegId d, int64_t addr);
    void store(RegId value, RegId base, int64_t off = 0);
    void storeAbs(RegId value, int64_t addr);
    void fload(RegId d, RegId base, int64_t off = 0);
    void fstore(RegId value, RegId base, int64_t off = 0);
    /// @}

    /// @name Control-flow emitters.
    /// @{

    /** Branch to @p taken when @p cond != 0, else to @p fallthrough. */
    void br(RegId cond, BlockId taken, BlockId fallthrough);

    /** Branch to @p taken when @p cond == 0, else to @p fallthrough. */
    void brz(RegId cond, BlockId taken, BlockId fallthrough);

    /** Unconditional jump. */
    void jmp(BlockId target);

    /** Terminates the current block by falling through to @p next. */
    void fallthroughTo(BlockId next);

    /**
     * Emits a call as the block terminator and starts a fresh
     * continuation block, which becomes the insertion point.
     * @return the continuation block id.
     */
    BlockId call(FuncId callee, uint8_t nargs = 0);

    void ret();
    void halt();
    /// @}

    /** Instruction count emitted so far. */
    size_t numInsts() const;

  private:
    friend class IRBuilder;

    FunctionBuilder(IRBuilder *parent, FuncId func)
        : _parent(parent), _func(func)
    {}

    Function &fn();

    void rrr(Opcode op, RegId d, RegId a, RegId b);
    void rri(Opcode op, RegId d, RegId a, int64_t imm);

    IRBuilder *_parent;
    FuncId _func;
    BlockId _cur = 0;
};

/**
 * Builds a whole program. Functions are created (or retrieved) by
 * name; forward references work by creating the callee's builder
 * before emitting the call.
 */
class IRBuilder
{
  public:
    explicit IRBuilder(std::string prog_name);

    /** Creates or retrieves the builder for function @p fname. */
    FunctionBuilder &function(const std::string &fname);

    /** Id of a (possibly not yet populated) function, for calls. */
    FuncId functionId(const std::string &fname);

    /** Sets the program entry function. */
    void setEntry(const std::string &fname);

    /** Sets the data memory size in words. */
    void setMemWords(size_t words) { _prog.memWords = words; }

    /** Seeds initial memory: word @p addr = @p value. */
    void initWord(size_t addr, int64_t value);

    /** Seeds initial memory with a double at word @p addr. */
    void initDouble(size_t addr, double value);

    /**
     * Finalizes the program: computes CFG edges, verifies
     * well-formedness (throws std::runtime_error on malformed IR),
     * and lays out code addresses.
     */
    Program build();

  private:
    friend class FunctionBuilder;

    Program _prog;
    std::vector<std::unique_ptr<FunctionBuilder>> _fbs;
};

} // namespace ir
} // namespace msc
