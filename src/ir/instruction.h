/**
 * @file
 * The mini-IR instruction: a compact three-address record.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "ir/types.h"

namespace msc {
namespace ir {

/**
 * A single three-address instruction.
 *
 * Operand usage depends on the opcode (see Opcode documentation in
 * types.h). Binary arithmetic uses the immediate in place of src2 when
 * src2 == NO_REG, giving reg/imm forms without doubling the opcode set.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    RegId dst = NO_REG;
    RegId src1 = NO_REG;
    RegId src2 = NO_REG;
    int64_t imm = 0;                    ///< Immediate / address offset.
    BlockId target = INVALID_BLOCK;     ///< Br/BrZ/Jmp taken target.
    FuncId callee = INVALID_FUNC;       ///< Call target function.
    uint8_t nargs = 0;                  ///< Call: argument registers used.

    /** Returns the static property record. */
    const OpInfo &info() const { return opInfo(op); }

    /** True for Br/BrZ/Jmp/Call/Ret. */
    bool isControl() const { return info().isControl; }

    /** True for conditional branches (Br/BrZ). */
    bool isCondBranch() const { return op == Opcode::Br || op == Opcode::BrZ; }

    /** True for any memory access. */
    bool
    isMemory() const
    {
        return op == Opcode::Load || op == Opcode::Store
            || op == Opcode::FLoad || op == Opcode::FStore;
    }

    /** True for Load/FLoad. */
    bool isLoad() const { return op == Opcode::Load || op == Opcode::FLoad; }

    /** True for Store/FStore. */
    bool isStore() const { return op == Opcode::Store || op == Opcode::FStore; }

    /** True when this instruction writes a register. */
    bool
    writesReg() const
    {
        return info().hasDst && dst != NO_REG && dst != REG_ZERO;
    }

    /**
     * Appends the registers this instruction defines to @p out.
     *
     * A Call defines the return-value registers and all caller-saved
     * registers per the ABI (it clobbers them), which is how the
     * dataflow analyses see through call sites without interprocedural
     * analysis.
     */
    void defs(std::vector<RegId> &out) const;

    /** Appends the registers this instruction reads to @p out. */
    void uses(std::vector<RegId> &out) const;

    /** Convenience wrappers returning fresh vectors. */
    std::vector<RegId>
    defs() const
    {
        std::vector<RegId> v;
        defs(v);
        return v;
    }

    std::vector<RegId>
    uses() const
    {
        std::vector<RegId> v;
        uses(v);
        return v;
    }
};

} // namespace ir
} // namespace msc
