#include "ir/program.h"

namespace msc {
namespace ir {

Function *
Program::findFunction(const std::string &fname)
{
    for (auto &f : functions)
        if (f.name == fname)
            return &f;
    return nullptr;
}

const Function *
Program::findFunction(const std::string &fname) const
{
    for (const auto &f : functions)
        if (f.name == fname)
            return &f;
    return nullptr;
}

void
Program::layout()
{
    _blockAddr.assign(functions.size(), {});
    uint64_t addr = 0x1000;  // Leave page zero unmapped, as a linker would.
    for (const auto &f : functions) {
        auto &fAddrs = _blockAddr[f.id];
        fAddrs.resize(f.blocks.size(), 0);
        for (const auto &b : f.blocks) {
            fAddrs[b.id] = addr;
            addr += 4ull * b.insts.size();
        }
    }
}

} // namespace ir
} // namespace msc
