#include "ir/parser.h"

#include <bit>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "ir/verifier.h"

namespace msc {
namespace ir {

namespace {

/** Cursor over one line's characters. */
class LineLexer
{
  public:
    LineLexer(const std::string &line, unsigned line_no)
        : _s(line), _no(line_no)
    {}

    void
    skipSpace()
    {
        while (_pos < _s.size() &&
               std::isspace(static_cast<unsigned char>(_s[_pos]))) {
            ++_pos;
        }
    }

    bool
    atEnd()
    {
        skipSpace();
        return _pos >= _s.size() || _s[_pos] == ';';
    }

    /** Next token: an identifier, number, or single punctuation. */
    std::string
    next()
    {
        skipSpace();
        if (atEnd())
            fail("unexpected end of line");
        char c = _s[_pos];
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '-' || c == '.' || c == '@') {
            size_t start = _pos;
            while (_pos < _s.size()) {
                char d = _s[_pos];
                if (std::isalnum(static_cast<unsigned char>(d)) ||
                    d == '_' || d == '.' || d == '@' ||
                    (d == '-' && _pos == start) ||
                    ((d == '+' || d == '-') && _pos > start &&
                     (_s[_pos - 1] == 'e' || _s[_pos - 1] == 'E'))) {
                    ++_pos;
                } else {
                    break;
                }
            }
            return _s.substr(start, _pos - start);
        }
        ++_pos;
        return std::string(1, c);
    }

    void
    expect(const std::string &tok)
    {
        std::string t = next();
        if (t != tok)
            fail("expected '" + tok + "', got '" + t + "'");
    }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw ParseError(_no, msg + " in: " + _s);
    }

  private:
    const std::string &_s;
    size_t _pos = 0;
    unsigned _no;
};

int64_t
parseInt(LineLexer &lx)
{
    std::string t = lx.next();
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(t.c_str(), &end, 10);
    if (end == t.c_str() || *end != '\0')
        lx.fail("expected integer, got '" + t + "'");
    return int64_t(v);
}

double
parseDouble(LineLexer &lx)
{
    std::string t = lx.next();
    char *end = nullptr;
    double v = std::strtod(t.c_str(), &end);
    if (end == t.c_str() || *end != '\0')
        lx.fail("expected number, got '" + t + "'");
    return v;
}

RegId
parseReg(LineLexer &lx)
{
    std::string t = lx.next();
    RegId r = regFromName(t);
    if (r == NO_REG)
        lx.fail("expected register, got '" + t + "'");
    return r;
}

BlockId
parseBlockId(LineLexer &lx)
{
    std::string t = lx.next();
    if (t.size() < 3 || t.compare(0, 2, "bb") != 0)
        lx.fail("expected block label, got '" + t + "'");
    return BlockId(std::strtoul(t.c_str() + 2, nullptr, 10));
}

} // anonymous namespace

Program
parseProgram(const std::string &text)
{
    Program prog;
    std::unordered_map<std::string, FuncId> func_ids;
    std::vector<std::pair<InstRef, std::string>> pending_callees;

    auto funcIdOf = [&](const std::string &name) {
        auto it = func_ids.find(name);
        if (it != func_ids.end())
            return it->second;
        FuncId id = FuncId(prog.functions.size());
        prog.functions.emplace_back();
        prog.functions.back().id = id;
        prog.functions.back().name = name;
        func_ids.emplace(name, id);
        return id;
    };

    // Pre-register every defined function in file order so that a
    // forward call (e.g. @main calling @f2 before @f1 is defined)
    // cannot permute function ids relative to the printed program —
    // required for print/parse round trips to be byte-stable.
    {
        std::istringstream pre(text);
        std::string pre_line;
        while (std::getline(pre, pre_line)) {
            size_t p = pre_line.find_first_not_of(" \t");
            if (p == std::string::npos ||
                pre_line.compare(p, 5, "func ") != 0)
                continue;
            size_t at = pre_line.find('@', p);
            if (at == std::string::npos)
                continue;
            size_t end = at + 1;
            while (end < pre_line.size() &&
                   (std::isalnum(static_cast<unsigned char>(
                        pre_line[end])) ||
                    pre_line[end] == '_' || pre_line[end] == '.'))
                ++end;
            if (end > at + 1)
                funcIdOf(pre_line.substr(at + 1, end - at - 1));
        }
    }

    // Indices, not pointers: creating callee shells during `call`
    // parsing may reallocate prog.functions.
    FuncId cur_fn = INVALID_FUNC;
    BlockId cur_blk = INVALID_BLOCK;
    std::string entry_name;

    auto fn = [&]() -> Function & { return prog.functions[cur_fn]; };
    auto blk = [&]() -> BasicBlock & {
        return prog.functions[cur_fn].blocks[cur_blk];
    };

    std::istringstream is(text);
    std::string line;
    unsigned line_no = 0;

    while (std::getline(is, line)) {
        ++line_no;
        LineLexer lx(line, line_no);
        if (lx.atEnd())
            continue;
        std::string tok = lx.next();

        if (tok == "program") {
            prog.name = lx.next();
            lx.expect("entry");
            std::string at = lx.next();
            if (at.empty() || at[0] != '@')
                lx.fail("expected @function after 'entry'");
            entry_name = at.substr(1);
            continue;
        }
        if (tok == "mem") {
            long long words = std::strtoll(lx.next().c_str(), nullptr, 10);
            if (words <= 0)
                lx.fail("mem size must be positive");
            prog.memWords = size_t(words);
            continue;
        }
        if (tok == "init") {
            long long addr = std::strtoll(lx.next().c_str(), nullptr, 10);
            long long value = std::strtoll(lx.next().c_str(), nullptr, 10);
            if (addr < 0)
                lx.fail("init address must be non-negative");
            if (prog.initData.size() <= size_t(addr))
                prog.initData.resize(size_t(addr) + 1, 0);
            prog.initData[size_t(addr)] = value;
            continue;
        }
        if (tok == "func") {
            std::string at = lx.next();
            if (at.empty() || at[0] != '@')
                lx.fail("expected @name after 'func'");
            lx.expect("{");
            cur_fn = funcIdOf(at.substr(1));
            cur_blk = INVALID_BLOCK;
            continue;
        }
        if (tok == "}") {
            cur_fn = INVALID_FUNC;
            cur_blk = INVALID_BLOCK;
            continue;
        }
        if (tok.size() > 2 && tok.compare(0, 2, "bb") == 0 &&
            std::isdigit(static_cast<unsigned char>(tok[2]))) {
            if (cur_fn == INVALID_FUNC)
                lx.fail("block outside function");
            BlockId id = BlockId(std::strtoul(tok.c_str() + 2,
                                              nullptr, 10));
            while (fn().blocks.size() <= id) {
                fn().blocks.emplace_back();
                fn().blocks.back().id =
                    BlockId(fn().blocks.size() - 1);
            }
            cur_blk = id;
            // Optional "(entry)" marker, then ":".
            std::string t = lx.next();
            if (t == "(") {
                lx.expect("entry");
                lx.expect(")");
                fn().entry = id;
                t = lx.next();
            }
            if (t != ":")
                lx.fail("expected ':' after block label");
            // Optional fall-through comment: "; ft -> bbN". The
            // lexer treats ';' as end of line, so scan manually.
            size_t ft = line.find("ft ->");
            if (ft != std::string::npos) {
                blk().fallthrough = BlockId(
                    std::strtoul(line.c_str() + ft + 5 + 3, nullptr,
                                 10));
                // "+3" skips " bb".
            }
            continue;
        }

        // An instruction line.
        if (cur_fn == INVALID_FUNC || cur_blk == INVALID_BLOCK)
            lx.fail("instruction outside block");
        Opcode op = opFromName(tok);
        if (op == Opcode::NUM_OPCODES)
            lx.fail("unknown mnemonic '" + tok + "'");

        Instruction in;
        in.op = op;
        switch (op) {
          case Opcode::Nop:
          case Opcode::Halt:
          case Opcode::Ret:
            break;
          case Opcode::LoadImm:
            in.dst = parseReg(lx);
            lx.expect(",");
            in.imm = parseInt(lx);
            break;
          case Opcode::FLoadImm:
            in.dst = parseReg(lx);
            lx.expect(",");
            in.imm = std::bit_cast<int64_t>(parseDouble(lx));
            break;
          case Opcode::Mov:
          case Opcode::FMov:
          case Opcode::ItoF:
          case Opcode::FtoI:
            in.dst = parseReg(lx);
            lx.expect(",");
            in.src1 = parseReg(lx);
            break;
          case Opcode::Load:
          case Opcode::FLoad: {
            in.dst = parseReg(lx);
            lx.expect(",");
            lx.expect("[");
            std::string base = lx.next();
            in.src1 = (base == "-") ? NO_REG : regFromName(base);
            if (base == "-")
                lx.expect("-");  // The printer writes "--".
            lx.expect("+");
            in.imm = parseInt(lx);
            lx.expect("]");
            break;
          }
          case Opcode::Store:
          case Opcode::FStore: {
            in.src1 = parseReg(lx);
            lx.expect(",");
            lx.expect("[");
            std::string base = lx.next();
            in.src2 = (base == "-") ? NO_REG : regFromName(base);
            if (base == "-")
                lx.expect("-");
            lx.expect("+");
            in.imm = parseInt(lx);
            lx.expect("]");
            break;
          }
          case Opcode::Br:
          case Opcode::BrZ:
            in.src1 = parseReg(lx);
            lx.expect(",");
            in.target = parseBlockId(lx);
            break;
          case Opcode::Jmp:
            in.target = parseBlockId(lx);
            break;
          case Opcode::Call: {
            std::string at = lx.next();
            if (at.empty() || at[0] != '@')
                lx.fail("expected @callee");
            std::string callee = at.substr(1);
            lx.expect(",");
            in.nargs = uint8_t(parseInt(lx));
            // Callee may be numeric (raw print) or a name.
            if (!callee.empty() &&
                std::isdigit(static_cast<unsigned char>(callee[0]))) {
                in.callee = FuncId(std::strtoul(callee.c_str(), nullptr,
                                                10));
            } else {
                in.callee = funcIdOf(callee);
            }
            break;
          }
          default: {
            // Binary arithmetic: dst, src1, (reg | imm).
            in.dst = parseReg(lx);
            lx.expect(",");
            in.src1 = parseReg(lx);
            lx.expect(",");
            std::string t = lx.next();
            RegId r = regFromName(t);
            if (r != NO_REG) {
                in.src2 = r;
            } else {
                errno = 0;
                char *end = nullptr;
                long long v = std::strtoll(t.c_str(), &end, 10);
                if (end == t.c_str() || *end != '\0')
                    lx.fail("expected register or integer, got '" + t +
                            "'");
                in.imm = int64_t(v);
            }
            break;
          }
        }
        blk().insts.push_back(in);
    }

    if (!entry_name.empty()) {
        auto it = func_ids.find(entry_name);
        if (it == func_ids.end())
            throw ParseError(0, "entry function @" + entry_name +
                             " not defined");
        prog.entry = it->second;
    }

    prog.computeCfg();
    std::string err;
    if (!verify(prog, &err))
        throw runtime::StageError(
            runtime::ErrorKind::InvalidInput, "parse",
            "parsed program fails verification: " + err);
    prog.layout();
    return prog;
}

} // namespace ir
} // namespace msc
