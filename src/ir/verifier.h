/**
 * @file
 * Structural well-formedness checks for mini-IR programs.
 */

#pragma once

#include <string>

#include "ir/program.h"

namespace msc {
namespace ir {

/**
 * Verifies structural invariants of @p prog:
 *  - the entry function exists and every function has an entry block;
 *  - every non-exit block has a resolvable successor (valid terminator
 *    target and/or fallthrough), and no block is empty;
 *  - control instructions (Br/BrZ/Jmp/Call/Ret) appear only as the
 *    last instruction of a block, and Call blocks have a continuation;
 *  - all register ids are < NUM_REGS, all branch targets and callees
 *    are in range;
 *  - conditional branches have both arcs.
 *
 * @param err when non-null, receives a description of the first
 *        violation found.
 * @return true when the program is well-formed.
 */
bool verify(const Program &prog, std::string *err = nullptr);

} // namespace ir
} // namespace msc
