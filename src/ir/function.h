/**
 * @file
 * Functions: CFGs of basic blocks.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ir/basic_block.h"
#include "ir/types.h"

namespace msc {
namespace ir {

/**
 * A function: a vector of basic blocks indexed by BlockId, with a
 * designated entry block.
 */
struct Function
{
    FuncId id = INVALID_FUNC;
    std::string name;
    std::vector<BasicBlock> blocks;
    BlockId entry = 0;

    size_t numBlocks() const { return blocks.size(); }

    BasicBlock &block(BlockId b) { return blocks[b]; }
    const BasicBlock &block(BlockId b) const { return blocks[b]; }

    /** Total static instruction count. */
    size_t
    numInsts() const
    {
        size_t n = 0;
        for (const auto &b : blocks)
            n += b.insts.size();
        return n;
    }

    /**
     * Recomputes succ/pred edge lists for every block. Out-of-range
     * successors (malformed IR that the verifier will reject) are
     * tolerated so verification can run after this.
     */
    void
    computeCfg()
    {
        for (auto &b : blocks) {
            b.computeSuccs();
            b.preds.clear();
        }
        for (auto &b : blocks)
            for (BlockId s : b.succs)
                if (s < blocks.size())
                    blocks[s].preds.push_back(b.id);
    }
};

} // namespace ir
} // namespace msc
