#include "ir/builder.h"

#include <bit>
#include <stdexcept>

#include "ir/verifier.h"

namespace msc {
namespace ir {

Function &
FunctionBuilder::fn()
{
    return _parent->_prog.functions[_func];
}

BlockId
FunctionBuilder::newBlock()
{
    Function &f = fn();
    BlockId id = BlockId(f.blocks.size());
    f.blocks.emplace_back();
    f.blocks.back().id = id;
    return id;
}

std::vector<BlockId>
FunctionBuilder::newBlocks(size_t n)
{
    std::vector<BlockId> ids;
    ids.reserve(n);
    for (size_t i = 0; i < n; ++i)
        ids.push_back(newBlock());
    return ids;
}

void
FunctionBuilder::setBlock(BlockId b)
{
    if (b >= fn().blocks.size())
        throw std::runtime_error("setBlock: no such block");
    _cur = b;
}

void
FunctionBuilder::emit(const Instruction &inst)
{
    Function &f = fn();
    if (_cur >= f.blocks.size())
        throw std::runtime_error("emit: no current block");
    f.blocks[_cur].insts.push_back(inst);
}

void
FunctionBuilder::rrr(Opcode op, RegId d, RegId a, RegId b)
{
    Instruction i;
    i.op = op;
    i.dst = d;
    i.src1 = a;
    i.src2 = b;
    emit(i);
}

void
FunctionBuilder::rri(Opcode op, RegId d, RegId a, int64_t imm)
{
    Instruction i;
    i.op = op;
    i.dst = d;
    i.src1 = a;
    i.imm = imm;
    emit(i);
}

void
FunctionBuilder::li(RegId d, int64_t v)
{
    Instruction i;
    i.op = Opcode::LoadImm;
    i.dst = d;
    i.imm = v;
    emit(i);
}

void
FunctionBuilder::mov(RegId d, RegId a)
{
    Instruction i;
    i.op = Opcode::Mov;
    i.dst = d;
    i.src1 = a;
    emit(i);
}

void
FunctionBuilder::fmov(RegId d, RegId a)
{
    Instruction i;
    i.op = Opcode::FMov;
    i.dst = d;
    i.src1 = a;
    emit(i);
}

void
FunctionBuilder::fli(RegId d, double v)
{
    Instruction i;
    i.op = Opcode::FLoadImm;
    i.dst = d;
    i.imm = std::bit_cast<int64_t>(v);
    emit(i);
}

void
FunctionBuilder::itof(RegId d, RegId a)
{
    Instruction i;
    i.op = Opcode::ItoF;
    i.dst = d;
    i.src1 = a;
    emit(i);
}

void
FunctionBuilder::ftoi(RegId d, RegId a)
{
    Instruction i;
    i.op = Opcode::FtoI;
    i.dst = d;
    i.src1 = a;
    emit(i);
}

void
FunctionBuilder::load(RegId d, RegId base, int64_t off)
{
    Instruction i;
    i.op = Opcode::Load;
    i.dst = d;
    i.src1 = base;
    i.imm = off;
    emit(i);
}

void
FunctionBuilder::loadAbs(RegId d, int64_t addr)
{
    Instruction i;
    i.op = Opcode::Load;
    i.dst = d;
    i.imm = addr;
    emit(i);
}

void
FunctionBuilder::store(RegId value, RegId base, int64_t off)
{
    Instruction i;
    i.op = Opcode::Store;
    i.src1 = value;
    i.src2 = base;
    i.imm = off;
    emit(i);
}

void
FunctionBuilder::storeAbs(RegId value, int64_t addr)
{
    Instruction i;
    i.op = Opcode::Store;
    i.src1 = value;
    i.imm = addr;
    emit(i);
}

void
FunctionBuilder::fload(RegId d, RegId base, int64_t off)
{
    Instruction i;
    i.op = Opcode::FLoad;
    i.dst = d;
    i.src1 = base;
    i.imm = off;
    emit(i);
}

void
FunctionBuilder::fstore(RegId value, RegId base, int64_t off)
{
    Instruction i;
    i.op = Opcode::FStore;
    i.src1 = value;
    i.src2 = base;
    i.imm = off;
    emit(i);
}

void
FunctionBuilder::br(RegId cond, BlockId taken, BlockId fallthrough)
{
    Instruction i;
    i.op = Opcode::Br;
    i.src1 = cond;
    i.target = taken;
    emit(i);
    fn().blocks[_cur].fallthrough = fallthrough;
}

void
FunctionBuilder::brz(RegId cond, BlockId taken, BlockId fallthrough)
{
    Instruction i;
    i.op = Opcode::BrZ;
    i.src1 = cond;
    i.target = taken;
    emit(i);
    fn().blocks[_cur].fallthrough = fallthrough;
}

void
FunctionBuilder::jmp(BlockId target)
{
    Instruction i;
    i.op = Opcode::Jmp;
    i.target = target;
    emit(i);
}

void
FunctionBuilder::fallthroughTo(BlockId next)
{
    fn().blocks[_cur].fallthrough = next;
}

BlockId
FunctionBuilder::call(FuncId callee, uint8_t nargs)
{
    Instruction i;
    i.op = Opcode::Call;
    i.callee = callee;
    i.nargs = nargs;
    emit(i);
    BlockId cont = newBlock();
    fn().blocks[_cur].fallthrough = cont;
    _cur = cont;
    return cont;
}

void
FunctionBuilder::ret()
{
    Instruction i;
    i.op = Opcode::Ret;
    emit(i);
}

void
FunctionBuilder::halt()
{
    Instruction i;
    i.op = Opcode::Halt;
    emit(i);
}

size_t
FunctionBuilder::numInsts() const
{
    return const_cast<FunctionBuilder *>(this)->fn().numInsts();
}

IRBuilder::IRBuilder(std::string prog_name)
{
    _prog.name = std::move(prog_name);
}

FunctionBuilder &
IRBuilder::function(const std::string &fname)
{
    FuncId id = functionId(fname);
    return *_fbs[id];
}

FuncId
IRBuilder::functionId(const std::string &fname)
{
    for (const auto &f : _prog.functions)
        if (f.name == fname)
            return f.id;
    FuncId id = FuncId(_prog.functions.size());
    _prog.functions.emplace_back();
    _prog.functions.back().id = id;
    _prog.functions.back().name = fname;
    _fbs.emplace_back(std::unique_ptr<FunctionBuilder>(
        new FunctionBuilder(this, id)));
    // Every function starts with its entry block as the insertion point.
    _fbs.back()->newBlock();
    return id;
}

void
IRBuilder::setEntry(const std::string &fname)
{
    _prog.entry = functionId(fname);
}

void
IRBuilder::initWord(size_t addr, int64_t value)
{
    if (_prog.initData.size() <= addr)
        _prog.initData.resize(addr + 1, 0);
    _prog.initData[addr] = value;
}

void
IRBuilder::initDouble(size_t addr, double value)
{
    initWord(addr, std::bit_cast<int64_t>(value));
}

Program
IRBuilder::build()
{
    _prog.computeCfg();
    std::string err;
    if (!verify(_prog, &err))
        throw std::runtime_error("IR verification failed: " + err);
    _prog.layout();
    return std::move(_prog);
}

} // namespace ir
} // namespace msc
