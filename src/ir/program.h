/**
 * @file
 * Whole programs: a set of functions plus memory image and code layout.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.h"
#include "ir/types.h"

namespace msc {
namespace ir {

/**
 * A whole program.
 *
 * Memory is a flat array of 64-bit words; Load/Store effective
 * addresses are word indices. `initData` seeds the low words of memory
 * before execution. `layout()` assigns each static instruction a
 * 4-byte code address (functions laid out sequentially) so that
 * instruction-cache behaviour can be modeled realistically.
 */
struct Program
{
    std::string name;
    std::vector<Function> functions;
    FuncId entry = 0;

    /** Flat data memory size in 64-bit words. */
    size_t memWords = 1u << 22;

    /** Initial contents of memory words [0, initData.size()). */
    std::vector<int64_t> initData;

    Function &function(FuncId f) { return functions[f]; }
    const Function &function(FuncId f) const { return functions[f]; }

    const BasicBlock &
    block(BlockRef b) const
    {
        return functions[b.func].blocks[b.block];
    }

    const Instruction &
    inst(InstRef i) const
    {
        return functions[i.func].blocks[i.block].insts[i.index];
    }

    /** Looks a function up by name; returns nullptr when absent. */
    Function *findFunction(const std::string &fname);
    const Function *findFunction(const std::string &fname) const;

    /** Total static instruction count across all functions. */
    size_t
    numInsts() const
    {
        size_t n = 0;
        for (const auto &f : functions)
            n += f.numInsts();
        return n;
    }

    /** Recomputes CFG edges in every function. */
    void
    computeCfg()
    {
        for (auto &f : functions)
            f.computeCfg();
    }

    /**
     * Assigns 4-byte code addresses to all instructions. Must be
     * called after the program is final; instruction addresses are
     * then available via instAddr().
     */
    void layout();

    /** True once layout() has run. */
    bool hasLayout() const { return !_blockAddr.empty(); }

    /** Code address of the given instruction (layout() required). */
    uint64_t
    instAddr(FuncId f, BlockId b, uint32_t idx) const
    {
        return _blockAddr[f][b] + 4ull * idx;
    }

    uint64_t
    instAddr(InstRef r) const
    {
        return instAddr(r.func, r.block, r.index);
    }

  private:
    /** Per-function, per-block base code addresses. */
    std::vector<std::vector<uint64_t>> _blockAddr;
};

} // namespace ir
} // namespace msc
