#include "ir/printer.h"

#include <bit>
#include <cstdio>
#include <sstream>

namespace msc {
namespace ir {

std::string
toString(const Instruction &in)
{
    std::ostringstream os;
    os << opName(in.op);
    switch (in.op) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::Ret:
        break;
      case Opcode::LoadImm:
        os << " " << regName(in.dst) << ", " << in.imm;
        break;
      case Opcode::FLoadImm: {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g",
                      std::bit_cast<double>(in.imm));
        os << " " << regName(in.dst) << ", " << buf;
        break;
      }
      case Opcode::Mov:
      case Opcode::FMov:
      case Opcode::ItoF:
      case Opcode::FtoI:
        os << " " << regName(in.dst) << ", " << regName(in.src1);
        break;
      case Opcode::Load:
      case Opcode::FLoad:
        os << " " << regName(in.dst) << ", [" << regName(in.src1)
           << " + " << in.imm << "]";
        break;
      case Opcode::Store:
      case Opcode::FStore:
        os << " " << regName(in.src1) << ", [" << regName(in.src2)
           << " + " << in.imm << "]";
        break;
      case Opcode::Br:
      case Opcode::BrZ:
        os << " " << regName(in.src1) << ", bb" << in.target;
        break;
      case Opcode::Jmp:
        os << " bb" << in.target;
        break;
      case Opcode::Call:
        os << " @" << in.callee << ", " << unsigned(in.nargs);
        break;
      default:
        // Binary arithmetic: reg/reg or reg/imm form.
        os << " " << regName(in.dst) << ", " << regName(in.src1) << ", ";
        if (in.src2 != NO_REG)
            os << regName(in.src2);
        else
            os << in.imm;
        break;
    }
    return os.str();
}

void
print(std::ostream &os, const Function &f, const Program &prog)
{
    os << "func @" << f.name << " {\n";
    for (const auto &b : f.blocks) {
        os << "  bb" << b.id;
        if (b.id == f.entry)
            os << " (entry)";
        os << ":";
        if (b.fallthrough != INVALID_BLOCK)
            os << "    ; ft -> bb" << b.fallthrough;
        os << "\n";
        for (const auto &in : b.insts) {
            std::string s = toString(in);
            if (in.op == Opcode::Call) {
                // Replace the numeric callee with its name for clarity.
                std::ostringstream c;
                c << "call @" << prog.functions[in.callee].name << ", "
                  << unsigned(in.nargs);
                s = c.str();
            }
            os << "    " << s << "\n";
        }
    }
    os << "}\n";
}

void
print(std::ostream &os, const Program &prog)
{
    os << "program " << prog.name << " entry @"
       << prog.functions[prog.entry].name << "\n";
    // Memory image directives (omitted when at defaults so that
    // pre-existing dumps keep round-tripping byte-for-byte).
    if (prog.memWords != Program().memWords)
        os << "mem " << prog.memWords << "\n";
    for (size_t a = 0; a < prog.initData.size(); ++a)
        if (prog.initData[a] != 0)
            os << "init " << a << " " << prog.initData[a] << "\n";
    for (const auto &f : prog.functions)
        print(os, f, prog);
}

std::string
toString(const Program &prog)
{
    std::ostringstream os;
    print(os, prog);
    return os.str();
}

} // namespace ir
} // namespace msc
