/**
 * @file
 * Architectural scalar semantics of the mini-IR data operations.
 *
 * This header is the single written-down contract for what every data
 * opcode computes, expressed without undefined behaviour so sanitizer
 * builds of the interpreter and the fuzz replayer are clean:
 *
 *  - Add/Sub/Mul wrap modulo 2^64 (two's-complement);
 *  - Div/Rem by zero yield 0; INT64_MIN / -1 yields INT64_MIN with
 *    remainder 0 (the RISC-V convention);
 *  - shifts use only the low 6 bits of the shift amount and are
 *    performed on the 64-bit two's-complement bit pattern;
 *  - FtoI saturates: NaN converts to 0, values beyond the int64 range
 *    clamp to INT64_MIN / INT64_MAX;
 *  - floating-point values live in integer registers as the bit
 *    pattern of an IEEE-754 double (std::bit_cast).
 *
 * Both the reference interpreter (profile/interpreter.h) and the
 * differential-fuzzing replayer (src/fuzz/replay.cc) evaluate data
 * opcodes through evalScalar(), so a disagreement between the two
 * oracles is always a sequencing/cutting bug, never an ALU one.
 */

#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "ir/instruction.h"
#include "ir/types.h"

namespace msc {
namespace ir {

/** Wrapping two's-complement arithmetic (no signed-overflow UB). */
inline int64_t
wrapAdd(int64_t a, int64_t b)
{
    return int64_t(uint64_t(a) + uint64_t(b));
}

inline int64_t
wrapSub(int64_t a, int64_t b)
{
    return int64_t(uint64_t(a) - uint64_t(b));
}

inline int64_t
wrapMul(int64_t a, int64_t b)
{
    return int64_t(uint64_t(a) * uint64_t(b));
}

/** Division with the by-zero and INT64_MIN/-1 cases pinned down. */
inline int64_t
safeDiv(int64_t a, int64_t b)
{
    if (b == 0)
        return 0;
    if (a == std::numeric_limits<int64_t>::min() && b == -1)
        return a;
    return a / b;
}

inline int64_t
safeRem(int64_t a, int64_t b)
{
    if (b == 0)
        return 0;
    if (a == std::numeric_limits<int64_t>::min() && b == -1)
        return 0;
    return a % b;
}

/** Saturating double -> int64 conversion (NaN maps to 0). */
inline int64_t
saturatingFtoI(double v)
{
    if (std::isnan(v))
        return 0;
    // 2^63 is exactly representable; anything >= it clamps.
    if (v >= 9223372036854775808.0)
        return std::numeric_limits<int64_t>::max();
    if (v <= -9223372036854775808.0)
        return std::numeric_limits<int64_t>::min();
    return int64_t(v);
}

/**
 * Evaluates one pure data opcode over already-resolved operand values:
 * @p a is the src1 register value (0 when the op does not read src1),
 * @p b is the resolved second operand — the src2 register value when
 * src2 is a register, the immediate otherwise.
 *
 * Handles every opcode with hasDst except loads; memory and control
 * opcodes must not be passed here.
 */
inline int64_t
evalScalar(Opcode op, int64_t a, int64_t b)
{
    auto fa = [&] { return std::bit_cast<double>(a); };
    auto fb = [&] { return std::bit_cast<double>(b); };
    auto fbits = [](double v) { return std::bit_cast<int64_t>(v); };

    switch (op) {
      case Opcode::Add: return wrapAdd(a, b);
      case Opcode::Sub: return wrapSub(a, b);
      case Opcode::Mul: return wrapMul(a, b);
      case Opcode::Div: return safeDiv(a, b);
      case Opcode::Rem: return safeRem(a, b);
      case Opcode::And: return a & b;
      case Opcode::Or:  return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Shl: return int64_t(uint64_t(a) << (b & 63));
      case Opcode::Shr: return int64_t(uint64_t(a) >> (b & 63));
      case Opcode::Sra: return a >> (b & 63);
      case Opcode::Slt: return a < b ? 1 : 0;
      case Opcode::Sle: return a <= b ? 1 : 0;
      case Opcode::Seq: return a == b ? 1 : 0;
      case Opcode::Sne: return a != b ? 1 : 0;
      case Opcode::LoadImm: return b;
      case Opcode::Mov: return a;

      case Opcode::FAdd: return fbits(fa() + fb());
      case Opcode::FSub: return fbits(fa() - fb());
      case Opcode::FMul: return fbits(fa() * fb());
      case Opcode::FDiv: return fbits(fa() / fb());
      case Opcode::FSlt: return fa() < fb() ? 1 : 0;
      case Opcode::FSle: return fa() <= fb() ? 1 : 0;
      case Opcode::FSeq: return fa() == fb() ? 1 : 0;
      case Opcode::FMov: return a;
      case Opcode::FLoadImm: return b;
      case Opcode::ItoF: return fbits(double(a));
      case Opcode::FtoI: return saturatingFtoI(fa());

      default:
        throw std::runtime_error("evalScalar: non-scalar opcode");
    }
}

} // namespace ir
} // namespace msc
