#include "ir/instruction.h"

#include <array>
#include <cstdio>
#include <unordered_map>

namespace msc {
namespace ir {

namespace {

constexpr size_t N_OPS = size_t(Opcode::NUM_OPCODES);

// name, fu, latency, hasDst, readsSrc1, readsSrc2, isControl
constexpr std::array<OpInfo, N_OPS> opTable = {{
    {"nop",   FuClass::None,   1, false, false, false, false},
    {"halt",  FuClass::None,   1, false, false, false, false},

    {"add",   FuClass::IntAlu, 1, true,  true,  true,  false},
    {"sub",   FuClass::IntAlu, 1, true,  true,  true,  false},
    {"mul",   FuClass::IntAlu, 3, true,  true,  true,  false},
    {"div",   FuClass::IntAlu, 12, true, true,  true,  false},
    {"rem",   FuClass::IntAlu, 12, true, true,  true,  false},
    {"and",   FuClass::IntAlu, 1, true,  true,  true,  false},
    {"or",    FuClass::IntAlu, 1, true,  true,  true,  false},
    {"xor",   FuClass::IntAlu, 1, true,  true,  true,  false},
    {"shl",   FuClass::IntAlu, 1, true,  true,  true,  false},
    {"shr",   FuClass::IntAlu, 1, true,  true,  true,  false},
    {"sra",   FuClass::IntAlu, 1, true,  true,  true,  false},
    {"slt",   FuClass::IntAlu, 1, true,  true,  true,  false},
    {"sle",   FuClass::IntAlu, 1, true,  true,  true,  false},
    {"seq",   FuClass::IntAlu, 1, true,  true,  true,  false},
    {"sne",   FuClass::IntAlu, 1, true,  true,  true,  false},
    {"li",    FuClass::IntAlu, 1, true,  false, false, false},
    {"mov",   FuClass::IntAlu, 1, true,  true,  false, false},

    {"fadd",  FuClass::FpAlu,  3, true,  true,  true,  false},
    {"fsub",  FuClass::FpAlu,  3, true,  true,  true,  false},
    {"fmul",  FuClass::FpAlu,  3, true,  true,  true,  false},
    {"fdiv",  FuClass::FpAlu,  12, true, true,  true,  false},
    {"fslt",  FuClass::FpAlu,  3, true,  true,  true,  false},
    {"fsle",  FuClass::FpAlu,  3, true,  true,  true,  false},
    {"fseq",  FuClass::FpAlu,  3, true,  true,  true,  false},
    {"fmov",  FuClass::FpAlu,  1, true,  true,  false, false},
    {"fli",   FuClass::FpAlu,  1, true,  false, false, false},
    {"itof",  FuClass::FpAlu,  3, true,  true,  false, false},
    {"ftoi",  FuClass::FpAlu,  3, true,  true,  false, false},

    {"ld",    FuClass::Mem,    1, true,  true,  false, false},
    {"st",    FuClass::Mem,    1, false, true,  true,  false},
    {"fld",   FuClass::Mem,    1, true,  true,  false, false},
    {"fst",   FuClass::Mem,    1, false, true,  true,  false},

    {"br",    FuClass::Branch, 1, false, true,  false, true},
    {"brz",   FuClass::Branch, 1, false, true,  false, true},
    {"jmp",   FuClass::Branch, 1, false, false, false, true},
    {"call",  FuClass::Branch, 1, false, false, false, true},
    {"ret",   FuClass::Branch, 1, false, false, false, true},
}};

} // anonymous namespace

const OpInfo &
opInfo(Opcode op)
{
    return opTable[size_t(op)];
}

Opcode
opFromName(const std::string &name)
{
    static const std::unordered_map<std::string, Opcode> map = [] {
        std::unordered_map<std::string, Opcode> m;
        for (size_t i = 0; i < N_OPS; ++i)
            m.emplace(opTable[i].name, Opcode(i));
        return m;
    }();
    auto it = map.find(name);
    return it == map.end() ? Opcode::NUM_OPCODES : it->second;
}

std::string
regName(RegId r)
{
    if (r == NO_REG)
        return "--";
    char buf[8];
    if (isFpReg(r))
        std::snprintf(buf, sizeof(buf), "f%u", unsigned(r));
    else
        std::snprintf(buf, sizeof(buf), "r%u", unsigned(r));
    return buf;
}

RegId
regFromName(const std::string &name)
{
    if (name.size() < 2 || (name[0] != 'r' && name[0] != 'f'))
        return NO_REG;
    unsigned n = 0;
    for (size_t i = 1; i < name.size(); ++i) {
        if (name[i] < '0' || name[i] > '9')
            return NO_REG;
        n = n * 10 + unsigned(name[i] - '0');
    }
    if (n >= NUM_REGS)
        return NO_REG;
    return RegId(n);
}

void
Instruction::defs(std::vector<RegId> &out) const
{
    if (op == Opcode::Call) {
        // Calls clobber the caller-saved sets and define return values.
        out.push_back(REG_RET);
        for (RegId r = REG_CALLER_SAVED_FIRST; r <= REG_CALLER_SAVED_LAST; ++r)
            out.push_back(r);
        out.push_back(FREG_RET);
        for (RegId r = FREG_CALLER_SAVED_FIRST;
             r <= FREG_CALLER_SAVED_LAST; ++r) {
            out.push_back(r);
        }
        return;
    }
    if (writesReg())
        out.push_back(dst);
}

void
Instruction::uses(std::vector<RegId> &out) const
{
    if (op == Opcode::Call) {
        for (uint8_t i = 0; i < nargs; ++i)
            out.push_back(RegId(REG_ARG0 + i));
        return;
    }
    if (op == Opcode::Ret) {
        // The return value flows back to the caller through r1/f32.
        out.push_back(REG_RET);
        return;
    }
    const OpInfo &oi = info();
    if (oi.readsSrc1 && src1 != NO_REG)
        out.push_back(src1);
    if (oi.readsSrc2 && src2 != NO_REG)
        out.push_back(src2);
}

} // namespace ir
} // namespace msc
