#include "ir/verifier.h"

#include <sstream>

namespace msc {
namespace ir {

namespace {

bool
fail(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
    return false;
}

std::string
where(const Function &f, BlockId b, size_t idx)
{
    std::ostringstream os;
    os << "@" << f.name << " bb" << b << " #" << idx << ": ";
    return os.str();
}

bool
checkReg(RegId r)
{
    return r == NO_REG || r < NUM_REGS;
}

} // anonymous namespace

bool
verify(const Program &prog, std::string *err)
{
    if (prog.functions.empty())
        return fail(err, "program has no functions");
    if (prog.entry >= prog.functions.size())
        return fail(err, "entry function out of range");

    for (const auto &f : prog.functions) {
        if (f.blocks.empty())
            return fail(err, "@" + f.name + ": function has no blocks");
        if (f.entry >= f.blocks.size())
            return fail(err, "@" + f.name + ": entry block out of range");

        for (const auto &b : f.blocks) {
            if (b.insts.empty()) {
                return fail(err, "@" + f.name + " bb" +
                            std::to_string(b.id) + ": empty block");
            }

            for (size_t i = 0; i < b.insts.size(); ++i) {
                const Instruction &in = b.insts[i];
                if (size_t(in.op) >= size_t(Opcode::NUM_OPCODES))
                    return fail(err, where(f, b.id, i) + "bad opcode");
                if (!checkReg(in.dst) || !checkReg(in.src1) ||
                    !checkReg(in.src2)) {
                    return fail(err, where(f, b.id, i) +
                                "register id out of range");
                }
                // Operands the execution engines index unconditionally
                // must name real registers. src1 of Load/FLoad and src2
                // of Store/FStore may be NO_REG (absolute addressing);
                // src2 of binary ops may be NO_REG (immediate form).
                const OpInfo &oi = in.info();
                bool src1_optional = in.op == Opcode::Load ||
                    in.op == Opcode::FLoad;
                if (oi.readsSrc1 && !src1_optional && in.src1 == NO_REG) {
                    return fail(err, where(f, b.id, i) +
                                "src1 required but missing");
                }
                if (oi.hasDst && in.dst == NO_REG) {
                    return fail(err, where(f, b.id, i) +
                                "dst required but missing");
                }
                if (in.isControl() && i + 1 != b.insts.size()) {
                    return fail(err, where(f, b.id, i) +
                                "control instruction not at end of block");
                }
                if ((in.op == Opcode::Br || in.op == Opcode::BrZ ||
                     in.op == Opcode::Jmp) &&
                    in.target >= f.blocks.size()) {
                    return fail(err, where(f, b.id, i) +
                                "branch target out of range");
                }
                if (in.op == Opcode::Call) {
                    if (in.callee >= prog.functions.size()) {
                        return fail(err, where(f, b.id, i) +
                                    "callee out of range");
                    }
                    if (b.fallthrough == INVALID_BLOCK) {
                        return fail(err, where(f, b.id, i) +
                                    "call block lacks continuation");
                    }
                    if (prog.functions[in.callee].blocks.empty() ||
                        prog.functions[in.callee].numInsts() == 0) {
                        return fail(err, where(f, b.id, i) +
                                    "call to empty function");
                    }
                }
                if (in.isCondBranch() && b.fallthrough == INVALID_BLOCK) {
                    return fail(err, where(f, b.id, i) +
                                "conditional branch lacks fall-through arc");
                }
            }

            const Instruction &t = b.insts.back();
            bool needs_ft = !(t.op == Opcode::Jmp || t.op == Opcode::Ret ||
                              t.op == Opcode::Halt);
            if (needs_ft && b.fallthrough == INVALID_BLOCK) {
                return fail(err, "@" + f.name + " bb" +
                            std::to_string(b.id) +
                            ": block is not terminated (no fall-through)");
            }
            if (b.fallthrough != INVALID_BLOCK &&
                b.fallthrough >= f.blocks.size()) {
                return fail(err, "@" + f.name + " bb" +
                            std::to_string(b.id) +
                            ": fall-through out of range");
            }
        }
    }
    return true;
}

} // namespace ir
} // namespace msc
