/**
 * @file
 * Textual dump of mini-IR programs (round-trippable with the parser).
 */

#pragma once

#include <ostream>
#include <string>

#include "ir/program.h"

namespace msc {
namespace ir {

/** Formats one instruction as text (no trailing newline). */
std::string toString(const Instruction &inst);

/** Prints a function in the textual IR format. */
void print(std::ostream &os, const Function &f, const Program &prog);

/** Prints a whole program in the textual IR format. */
void print(std::ostream &os, const Program &prog);

/** Returns the whole program as a string. */
std::string toString(const Program &prog);

} // namespace ir
} // namespace msc
