/**
 * @file
 * Basic blocks of the mini-IR control-flow graph.
 */

#pragma once

#include <vector>

#include "ir/instruction.h"
#include "ir/types.h"

namespace msc {
namespace ir {

/**
 * A basic block: a straight-line instruction sequence with a single
 * entry (its first instruction) and a single exit (its last).
 *
 * Control leaves a block through its last instruction when that is a
 * Br/BrZ/Jmp/Ret/Halt, or implicitly to `fallthrough`. A Call must be
 * the last instruction of its block (the verifier enforces this); its
 * intra-function successor is the fall-through continuation block.
 */
struct BasicBlock
{
    BlockId id = INVALID_BLOCK;
    std::vector<Instruction> insts;

    /** Implicit successor when the block does not end in Jmp/Ret/Halt. */
    BlockId fallthrough = INVALID_BLOCK;

    /** CFG edges, computed by Function::computeCfg(). */
    std::vector<BlockId> succs;
    std::vector<BlockId> preds;

    bool empty() const { return insts.empty(); }
    size_t size() const { return insts.size(); }

    const Instruction &
    last() const
    {
        return insts.back();
    }

    /** True when the block's last instruction is a Call. */
    bool
    endsInCall() const
    {
        return !insts.empty() && insts.back().op == Opcode::Call;
    }

    /** True when the block's last instruction is a Ret. */
    bool
    endsInRet() const
    {
        return !insts.empty() && insts.back().op == Opcode::Ret;
    }

    /**
     * True when control cannot leave this block within the function
     * (Ret or Halt terminated).
     */
    bool
    isExit() const
    {
        if (insts.empty())
            return false;
        Opcode op = insts.back().op;
        return op == Opcode::Ret || op == Opcode::Halt;
    }

    /** Recomputes `succs` from the terminator and fallthrough. */
    void
    computeSuccs()
    {
        succs.clear();
        if (insts.empty()) {
            if (fallthrough != INVALID_BLOCK)
                succs.push_back(fallthrough);
            return;
        }
        const Instruction &t = insts.back();
        switch (t.op) {
          case Opcode::Jmp:
            succs.push_back(t.target);
            break;
          case Opcode::Br:
          case Opcode::BrZ:
            // Fall-through first (the "not taken" arc), then taken.
            if (fallthrough != INVALID_BLOCK)
                succs.push_back(fallthrough);
            if (t.target != fallthrough)
                succs.push_back(t.target);
            break;
          case Opcode::Ret:
          case Opcode::Halt:
            break;
          default:
            // Includes Call: intra-function control resumes at the
            // fall-through continuation after the callee returns.
            if (fallthrough != INVALID_BLOCK)
                succs.push_back(fallthrough);
            break;
        }
    }
};

} // namespace ir
} // namespace msc
