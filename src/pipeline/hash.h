/**
 * @file
 * Content hashing for pipeline artifact keys.
 *
 * A Hasher chains 64-bit words through the splitmix64 finalizing
 * mixer (fuzz::Rng::mix — the same avalanche the fuzzer's RNG uses),
 * absorbing each word together with a running position-dependent
 * state so field order matters. Strings absorb their length followed
 * by their bytes in 8-byte little-endian groups, so "ab"+"c" and
 * "a"+"bc" hash differently.
 *
 * Not cryptographic: keys address a cache whose entries are trusted;
 * a collision costs a wrong cache hit, and 64 mixed bits across the
 * handful of artifacts a process touches makes that vanishingly
 * unlikely.
 */

#pragma once

#include <cstdint>
#include <string>

#include "fuzz/rng.h"

namespace msc {
namespace pipeline {

class Hasher
{
  public:
    /** @p tag separates key domains (one per stage). */
    explicit Hasher(uint64_t tag) { word(tag); }

    Hasher &
    word(uint64_t v)
    {
        _h = fuzz::Rng::mix(_h + fuzz::Rng::GOLDEN + v);
        return *this;
    }

    Hasher &word(bool v) { return word(uint64_t(v ? 1 : 0)); }

    Hasher &
    bytes(const std::string &s)
    {
        word(uint64_t(s.size()));
        uint64_t acc = 0;
        unsigned n = 0;
        for (unsigned char c : s) {
            acc |= uint64_t(c) << (8 * n);
            if (++n == 8) {
                word(acc);
                acc = 0;
                n = 0;
            }
        }
        if (n)
            word(acc);
        return *this;
    }

    uint64_t digest() const { return _h; }

  private:
    uint64_t _h = 0;
};

} // namespace pipeline
} // namespace msc
