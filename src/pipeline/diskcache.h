/**
 * @file
 * Opt-in on-disk artifact cache for cross-process frontend reuse.
 *
 * Three of the five pipeline artifacts persist — the transformed
 * program (as round-trippable .mir text inside the envelope), the
 * execution profile and the task partition, i.e. the expensive
 * frontend; traces and timing results are cheap to regenerate
 * relative to their size and stay in memory only.
 *
 * Files are named `<stage>-<16-hex-digit key>.json` inside the cache
 * directory and carry the versioned `msc.cache` envelope:
 *
 *   { "schema": "msc.cache", "schema_version": 1,
 *     "stage": "transform|profile|partition", "key": "<hex>", ... }
 *
 * Loads validate the envelope and re-derive structures; any mismatch
 * (version bump, truncated write, foreign file) is *quarantined* —
 * renamed to `<file>.quarantine` for post-mortem — and treated as a
 * miss, so the entry is recomputed and rewritten rather than poisoning
 * every later run. Writes go through a temp-file + rename (so
 * concurrent processes sharing a directory never observe half-written
 * artifacts) and retry with backoff on transient failures before
 * giving up. Serialization is sorted and wall-clock-free, so cached
 * and cold runs stay byte-deterministic.
 *
 * Fault injection: the deterministic hook in runtime/fault.h fires at
 * sites "cache-write" (fails one write attempt) and "cache-read"
 * (treats one successfully read entry as corrupt), driven by the
 * MSC_FAULT_INJECT environment variable — see docs/ROBUSTNESS.md.
 */

#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "pipeline/artifacts.h"

namespace msc {

namespace report {
class Json;
}

namespace pipeline {

/** Counters of the cache's self-healing activity (see stats()). */
struct DiskCacheStats
{
    uint64_t writeRetries = 0;   ///< Write attempts retried.
    uint64_t writeFailures = 0;  ///< Writes abandoned after retries.
    uint64_t quarantined = 0;    ///< Corrupt entries moved aside.
};

/** Artifact reader/writer rooted at one cache directory. */
class DiskCache
{
  public:
    /** @p dir is created on first write if missing. Empty = disabled
     *  (every load misses, every store is a no-op). */
    explicit DiskCache(std::string dir) : _dir(std::move(dir)) {}

    bool enabled() const { return !_dir.empty(); }
    const std::string &dir() const { return _dir; }

    /// @name Loads: return nullptr on any miss/mismatch/parse error.
    /// @{
    std::shared_ptr<const TransformedProgram>
    loadTransform(uint64_t key) const;

    std::shared_ptr<const ProfileArtifact>
    loadProfile(uint64_t key,
                std::shared_ptr<const TransformedProgram> tp) const;

    std::shared_ptr<const PartitionArtifact>
    loadPartition(uint64_t key,
                  std::shared_ptr<const TransformedProgram> tp) const;
    /// @}

    /// @name Stores: best-effort; I/O failures warn on stderr once
    /// per cache and never throw (a broken disk cache must not fail
    /// the run it would have accelerated).
    /// @{
    void store(const TransformedProgram &tp) const;
    void store(const ProfileArtifact &pa) const;
    void store(const PartitionArtifact &pa) const;
    /// @}

    /** "transform-<hex>.json"-style path for @p stage / @p key. */
    std::string path(const char *stage, uint64_t key) const;

    /** Retry/quarantine counters accumulated since construction. */
    DiskCacheStats stats() const;

  private:
    void writeAtomic(const std::string &path,
                     const std::string &content) const;

    /** Reads + validates one entry. A missing file is a plain miss;
     *  an unreadable or mismatched one is quarantined first. */
    bool loadEnvelope(const std::string &path, const char *stage,
                      uint64_t key, report::Json &doc) const;

    /** Renames @p path to `<path>.quarantine` (best effort). */
    void quarantine(const std::string &path) const;

    std::string _dir;
    mutable std::atomic<bool> _warned{false};
    mutable std::atomic<uint64_t> _writeRetries{0};
    mutable std::atomic<uint64_t> _writeFailures{0};
    mutable std::atomic<uint64_t> _quarantined{0};
};

} // namespace pipeline
} // namespace msc
