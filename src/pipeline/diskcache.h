/**
 * @file
 * Opt-in on-disk artifact cache for cross-process frontend reuse.
 *
 * Three of the five pipeline artifacts persist — the transformed
 * program (as round-trippable .mir text inside the envelope), the
 * execution profile and the task partition, i.e. the expensive
 * frontend; traces and timing results are cheap to regenerate
 * relative to their size and stay in memory only.
 *
 * Files are named `<stage>-<16-hex-digit key>.json` inside the cache
 * directory and carry the versioned `msc.cache` envelope:
 *
 *   { "schema": "msc.cache", "schema_version": 1,
 *     "stage": "transform|profile|partition", "key": "<hex>", ... }
 *
 * Loads validate the envelope and re-derive structures; any mismatch
 * (version bump, truncated write, foreign file) is treated as a miss
 * and the entry is recomputed and rewritten. Writes go through a
 * temp-file + rename so concurrent processes sharing a directory
 * never observe half-written artifacts. Serialization is sorted and
 * wall-clock-free, so cached and cold runs stay byte-deterministic.
 */

#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "pipeline/artifacts.h"

namespace msc {
namespace pipeline {

/** Artifact reader/writer rooted at one cache directory. */
class DiskCache
{
  public:
    /** @p dir is created on first write if missing. Empty = disabled
     *  (every load misses, every store is a no-op). */
    explicit DiskCache(std::string dir) : _dir(std::move(dir)) {}

    bool enabled() const { return !_dir.empty(); }
    const std::string &dir() const { return _dir; }

    /// @name Loads: return nullptr on any miss/mismatch/parse error.
    /// @{
    std::shared_ptr<const TransformedProgram>
    loadTransform(uint64_t key) const;

    std::shared_ptr<const ProfileArtifact>
    loadProfile(uint64_t key,
                std::shared_ptr<const TransformedProgram> tp) const;

    std::shared_ptr<const PartitionArtifact>
    loadPartition(uint64_t key,
                  std::shared_ptr<const TransformedProgram> tp) const;
    /// @}

    /// @name Stores: best-effort; I/O failures warn on stderr once
    /// per cache and never throw (a broken disk cache must not fail
    /// the run it would have accelerated).
    /// @{
    void store(const TransformedProgram &tp) const;
    void store(const ProfileArtifact &pa) const;
    void store(const PartitionArtifact &pa) const;
    /// @}

    /** "transform-<hex>.json"-style path for @p stage / @p key. */
    std::string path(const char *stage, uint64_t key) const;

  private:
    void writeAtomic(const std::string &path,
                     const std::string &content) const;

    std::string _dir;
    mutable std::atomic<bool> _warned{false};
};

} // namespace pipeline
} // namespace msc
