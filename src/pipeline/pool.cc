#include "pipeline/pool.h"

namespace msc {
namespace pipeline {

std::shared_ptr<Session>
SessionPool::session(const std::string &key,
                     const std::function<ir::Program()> &build)
{
    // Coarse lock: program construction is cheap next to any stage,
    // and holding it gives build-once semantics with no slot dance.
    std::lock_guard<std::mutex> lock(_mu);
    auto it = _sessions.find(key);
    if (it != _sessions.end())
        return it->second;
    auto s = std::make_shared<Session>(
        std::make_shared<const ir::Program>(build()), _cfg);
    _sessions.emplace(key, s);
    return s;
}

size_t
SessionPool::size() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _sessions.size();
}

CacheStats
SessionPool::stats() const
{
    std::lock_guard<std::mutex> lock(_mu);
    CacheStats total;
    for (const auto &[key, s] : _sessions)
        total.add(s->cacheStats());
    return total;
}

} // namespace pipeline
} // namespace msc
