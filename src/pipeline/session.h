/**
 * @file
 * Staged pipeline Session: the paper's five-stage evaluation pipeline
 * as explicit artifact-producing calls with content-addressed reuse.
 *
 *   transform() -> TransformedProgram   (IV hoist, unroll, layout)
 *   profile()   -> ProfileArtifact      (1M-inst training run)
 *   select()    -> PartitionArtifact    (task selection + verify)
 *   trace()     -> TaskTrace            (functional trace, cut)
 *   simulate()  -> SimArtifact          (Multiscalar timing model)
 *
 * A Session owns one input ir::Program. Each stage call takes the
 * full StageOptions bundle, derives its artifact key from the printed
 * input-program bytes plus exactly the option fields that stage reads
 * (docs/API.md), pulls its upstream artifact through the same cache,
 * and memoizes the result. Artifacts are immutable and shared_ptr
 * owned; callers may hold them beyond the Session's lifetime.
 *
 * Consequences worth designing sweeps around:
 *  - arch::SimConfig does NOT invalidate the trace: an N-config
 *    hardware sweep over one strategy runs the frontend once and
 *    fans out N timing simulations;
 *  - strategy changes invalidate selection and trace but reuse the
 *    transform and profile artifacts;
 *  - with a cache directory (SessionConfig::cacheDir) the frontend
 *    artifacts persist across processes.
 *
 * Thread-safety: all stage calls are safe to invoke concurrently;
 * a given artifact is computed exactly once per Session (and the
 * counters below make that assertable in tests).
 */

#pragma once

#include <memory>
#include <string>

#include "pipeline/artifacts.h"
#include "pipeline/cache.h"
#include "pipeline/diskcache.h"
#include "pipeline/options.h"

namespace msc {
namespace pipeline {

/** Session-wide configuration. */
struct SessionConfig
{
    /** On-disk artifact cache directory; empty = in-memory only.
     *  The conventional name `.msc-cache/` is gitignored. */
    std::string cacheDir;
};

/** Indices into CacheStats::stage. */
enum class StageKind : uint8_t
{
    Transform,
    Profile,
    Select,
    Trace,
    Simulate,
    NUM_STAGES
};

constexpr size_t NUM_STAGES = size_t(StageKind::NUM_STAGES);

/** Short stable label for @p s ("transform", "profile", ...). */
const char *stageName(StageKind s);

/** Snapshot of a Session's (or pool's) cache traffic. */
struct CacheStats
{
    StageCounters stage[NUM_STAGES];

    const StageCounters &
    operator[](StageKind s) const
    {
        return stage[size_t(s)];
    }

    uint64_t hits() const;
    uint64_t computed() const;
    uint64_t diskHits() const;

    /** Aggregates @p o into this (SessionPool totals). */
    void add(const CacheStats &o);

    /** "N computed, M hits, K from disk" summary line. */
    std::string summary() const;
};

class Session
{
  public:
    /** Copies @p input. @p cfg.cacheDir opts into the disk cache. */
    explicit Session(const ir::Program &input, SessionConfig cfg = {});

    /** Shares @p input (must not be mutated afterwards). */
    explicit Session(std::shared_ptr<const ir::Program> input,
                     SessionConfig cfg = {});

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    const ir::Program &input() const { return *_input; }

    /** Content hash of the printed input-program bytes (the root of
     *  every artifact key). */
    uint64_t inputKey() const { return _inputKey; }

    /**
     * The content-addressed key stage @p s would use for @p o —
     * computed without touching the cache. Exposed so higher layers
     * can coalesce on exactly the identity the artifact cache uses
     * (the mscd dispatcher dedups in-flight requests on the
     * Simulate-stage key; serve/dispatch.h).
     */
    uint64_t stageKey(StageKind s, const StageOptions &o) const;

    /// @name Stage calls. Each consults the cache first; on a miss it
    /// computes (or loads from disk) and publishes the artifact.
    /// Failures throw runtime::StageError (a std::runtime_error) with
    /// the producing stage annotated; a binding StageOptions::budget
    /// or a tripped StageOptions::cancel throws the matching budget
    /// kind and leaves no partial artifact — the poisoned cache slot
    /// is dropped, so a later call with a bigger budget recomputes.
    /// @{
    std::shared_ptr<const TransformedProgram>
    transform(const StageOptions &o);

    std::shared_ptr<const ProfileArtifact>
    profile(const StageOptions &o);

    std::shared_ptr<const PartitionArtifact>
    select(const StageOptions &o);

    std::shared_ptr<const TaskTrace> trace(const StageOptions &o);

    std::shared_ptr<const SimArtifact> simulate(const StageOptions &o);
    /// @}

    /** Runs all five stages and returns every artifact. */
    StageResults runAll(const StageOptions &o);

    CacheStats cacheStats() const;

  private:
    uint64_t transformKey(const StageOptions &o) const;
    uint64_t profileKey(const StageOptions &o) const;
    uint64_t selectKey(const StageOptions &o) const;
    uint64_t traceKey(const StageOptions &o) const;
    uint64_t simulateKey(const StageOptions &o) const;

    std::shared_ptr<const SimArtifact>
    computeSimulate(const StageOptions &o, uint64_t key);

    std::shared_ptr<const ir::Program> _input;
    uint64_t _inputKey = 0;
    DiskCache _disk;

    KeyedCache<TransformedProgram> _transforms;
    KeyedCache<ProfileArtifact> _profiles;
    KeyedCache<PartitionArtifact> _partitions;
    KeyedCache<TaskTrace> _traces;
    KeyedCache<SimArtifact> _sims;

    AtomicStageCounters _ctr[NUM_STAGES];
};

} // namespace pipeline
} // namespace msc
