/**
 * @file
 * In-memory keyed artifact cache with compute-once semantics.
 *
 * getOrCompute guarantees that for a given key the producer runs at
 * most once per cache, even under concurrent callers (the sweep
 * worker pool): the first caller computes while later callers block
 * on the slot and then share the published value. This is what makes
 * "a 2-strategy x 4-config sweep performs exactly 2 profile runs"
 * hold for any --jobs value.
 *
 * Counters distinguish three outcomes per stage:
 *   - hit:      the artifact already existed (or was being computed);
 *   - diskHit:  produced by loading the on-disk cache (a miss here,
 *               but no compute);
 *   - computed: produced by actually running the stage.
 * misses() == diskHits + computed.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace msc {
namespace pipeline {

/** Snapshot of one stage's cache traffic. */
struct StageCounters
{
    uint64_t hits = 0;      ///< Served from memory.
    uint64_t diskHits = 0;  ///< Loaded from the on-disk cache.
    uint64_t computed = 0;  ///< Actually ran the stage.

    uint64_t misses() const { return diskHits + computed; }
};

/** Thread-safe counter cell behind a StageCounters snapshot. */
struct AtomicStageCounters
{
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> diskHits{0};
    std::atomic<uint64_t> computed{0};

    StageCounters
    snapshot() const
    {
        return {hits.load(std::memory_order_relaxed),
                diskHits.load(std::memory_order_relaxed),
                computed.load(std::memory_order_relaxed)};
    }
};

/** Compute-once map from 64-bit content key to immutable artifact. */
template <typename T>
class KeyedCache
{
  public:
    /**
     * Returns the cached value for @p key, or invokes @p produce()
     * (exactly once per key across all threads) and caches its
     * result. @p produce must return a non-null
     * shared_ptr<const T>; its exceptions propagate to every caller
     * waiting on the same key, and the failed slot is removed so a
     * later call retries.
     *
     * Counts a hit when the value existed or was in flight; @p produce
     * is responsible for counting diskHit vs computed.
     */
    template <typename Fn>
    std::shared_ptr<const T>
    getOrCompute(uint64_t key, AtomicStageCounters &ctr, Fn &&produce)
    {
        std::shared_ptr<Slot> slot;
        bool creator = false;
        {
            std::lock_guard<std::mutex> lock(_mu);
            auto it = _slots.find(key);
            if (it == _slots.end()) {
                slot = std::make_shared<Slot>();
                _slots.emplace(key, slot);
                creator = true;
            } else {
                slot = it->second;
            }
        }

        if (!creator) {
            ctr.hits.fetch_add(1, std::memory_order_relaxed);
            std::unique_lock<std::mutex> lk(slot->mu);
            slot->cv.wait(lk, [&] { return slot->ready; });
            if (slot->error)
                std::rethrow_exception(slot->error);
            return slot->value;
        }

        try {
            std::shared_ptr<const T> v = produce();
            {
                std::lock_guard<std::mutex> lk(slot->mu);
                slot->value = v;
                slot->ready = true;
            }
            slot->cv.notify_all();
            return v;
        } catch (...) {
            {
                std::lock_guard<std::mutex> lk(slot->mu);
                slot->error = std::current_exception();
                slot->ready = true;
            }
            slot->cv.notify_all();
            {
                // Drop the poisoned slot so a later call can retry
                // (waiters already hold their shared_ptr to it).
                std::lock_guard<std::mutex> lock(_mu);
                auto it = _slots.find(key);
                if (it != _slots.end() && it->second == slot)
                    _slots.erase(it);
            }
            throw;
        }
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(_mu);
        return _slots.size();
    }

  private:
    struct Slot
    {
        std::mutex mu;
        std::condition_variable cv;
        bool ready = false;
        std::shared_ptr<const T> value;
        std::exception_ptr error;
    };

    mutable std::mutex _mu;
    std::unordered_map<uint64_t, std::shared_ptr<Slot>> _slots;
};

} // namespace pipeline
} // namespace msc
