/**
 * @file
 * Immutable, shared_ptr-owned artifacts of the staged pipeline.
 *
 * Every stage of a Session produces one of these. Artifacts are
 * content-addressed: `key` is a 64-bit splitmix64-mixed hash of the
 * printed input-program bytes chained with exactly the option fields
 * the producing stage reads (docs/API.md has the full table). An
 * artifact holds shared ownership of everything it references — a
 * PartitionArtifact keeps its TransformedProgram (and thus the
 * ir::Program the partition's raw pointer aliases) alive for as long
 * as the artifact itself, which closes the lifetime hazard the old
 * RunResult documented as "the partition points into prog".
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/stats.h"
#include "arch/taskstream.h"
#include "profile/profiler.h"
#include "tasksel/task.h"

namespace msc {
namespace pipeline {

/** Post-transform program (IV hoisting, unrolling, CFG + layout). */
struct TransformedProgram
{
    uint64_t key = 0;

    /** The transformed program; owned. Immutable once published. */
    std::shared_ptr<const ir::Program> prog;

    /// @name Transform bookkeeping (Table-1 reporting).
    /// @{
    unsigned loopsUnrolled = 0;
    unsigned ivsHoisted = 0;
    /// @}
};

/** Execution profile of a transformed program. */
struct ProfileArtifact
{
    uint64_t key = 0;
    std::shared_ptr<const TransformedProgram> transformed;
    profile::Profile profile;
};

/** Task partition of a transformed program. `partition.prog` aliases
 *  `transformed->prog`, which this artifact keeps alive. */
struct PartitionArtifact
{
    uint64_t key = 0;
    std::shared_ptr<const TransformedProgram> transformed;
    tasksel::TaskPartition partition;
};

/** Functional trace cut into the dynamic task stream a Multiscalar
 *  sequencer dispatches. Depends on the partition (task boundaries)
 *  and the trace budget — but not on arch::SimConfig, which is why
 *  hardware sweeps reuse it. */
struct TaskTrace
{
    uint64_t key = 0;
    std::shared_ptr<const PartitionArtifact> partition;
    std::vector<arch::DynTask> tasks;

    /** Dynamic instructions in the trace (sum over tasks). */
    uint64_t traceInsts = 0;
};

/** Timing-simulation result. */
struct SimArtifact
{
    uint64_t key = 0;
    std::shared_ptr<const TaskTrace> trace;
    arch::SimStats stats;
};

/** All five artifacts of one fully-run pipeline configuration. */
struct StageResults
{
    std::shared_ptr<const TransformedProgram> transformed;
    std::shared_ptr<const ProfileArtifact> profile;
    std::shared_ptr<const PartitionArtifact> partition;
    std::shared_ptr<const TaskTrace> trace;
    std::shared_ptr<const SimArtifact> sim;
};

} // namespace pipeline
} // namespace msc
