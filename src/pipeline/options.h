/**
 * @file
 * Per-stage options of the staged pipeline (see session.h).
 *
 * Each stage of a pipeline::Session reads exactly one of these
 * structs (plus, for selection and timing, the pre-existing
 * tasksel::SelectionOptions and arch::SimConfig), and each cached
 * artifact is keyed by exactly the fields its stage reads — so
 * changing, say, the PU count re-runs only the timing simulation
 * while the transform/profile/selection/trace artifacts are reused.
 * The field-by-field hash-key table lives in docs/API.md.
 */

#pragma once

#include <cstdint>

#include "arch/config.h"
#include "runtime/budget.h"
#include "tasksel/options.h"

namespace msc {

namespace obs {
class TraceSink;
struct PhaseTimes;
}

namespace pipeline {

/**
 * IR-transform stage knobs (§3.2). These deliberately mirror the
 * corresponding fields of tasksel::SelectionOptions: the task-size
 * heuristic spans two stages (loop unrolling here, call inclusion in
 * selection), so the same flag appears in both structs. Use
 * StageOptions::fromSelection to keep them in sync.
 */
struct TransformOptions
{
    /** Hoist induction-variable updates to loop tops (§3.2). */
    bool hoistInductionVars = true;

    /** Unroll small loops (the task-size heuristic's IR half). */
    bool taskSizeHeuristic = false;

    /** Unroll target size in static instructions (LOOP_THRESH). */
    unsigned loopThresh = 30;
};

/** Profiling stage knobs. */
struct ProfileOptions
{
    /** Dynamic-instruction budget for the profiling run. */
    uint64_t profileInsts = 1'000'000;
};

/** Functional-trace stage knobs. */
struct TraceOptions
{
    /** Dynamic-instruction budget for the timing trace. */
    uint64_t traceInsts = 400'000;
};

/**
 * All five stages' options in one bundle. Session stage calls take
 * the whole bundle but *hash* only the fields their stage reads, so
 * e.g. two StageOptions differing only in `config` share every
 * artifact up to and including the task trace.
 */
struct StageOptions
{
    TransformOptions transform;
    ProfileOptions profile;
    tasksel::SelectionOptions sel;
    TraceOptions trace;
    arch::SimConfig config;

    /** Validate the partition and throw on violation (tests). Not
     *  part of any artifact key: it gates a check, not a result. */
    bool verifyPartition = true;

    /**
     * Task-lifecycle trace sink for the timing simulation (see
     * obs/tracesink.h). Not owned, not hashed; a non-null sink
     * bypasses the simulation cache so events are always emitted.
     */
    obs::TraceSink *sink = nullptr;

    /** When non-null, receives wall-clock timings of stage *computes*
     *  (cache hits cost — and record — nothing). Not hashed. */
    obs::PhaseTimes *phaseTimes = nullptr;

    /**
     * Per-stage-compute resource budget (runtime/budget.h). Not
     * hashed: a binding budget throws StageError instead of producing
     * an artifact, so every artifact that exists is
     * budget-independent. Fuel/cycles/heap are charged per stage
     * *compute* — cache hits charge nothing — so budget outcomes do
     * not depend on cache warmth.
     */
    runtime::ExecBudget budget;

    /** Cooperative cancellation token, polled at every governor
     *  pulse. Not owned, not hashed (same rationale as `budget`). */
    const runtime::CancelToken *cancel = nullptr;

    /**
     * Builds a bundle whose transform stage mirrors @p sel's
     * transform-relevant fields (hoistInductionVars,
     * taskSizeHeuristic, loopThresh) — the classic "one options
     * struct" shape every pre-Session caller used.
     */
    static StageOptions
    fromSelection(const tasksel::SelectionOptions &sel)
    {
        StageOptions o;
        o.sel = sel;
        o.transform.hoistInductionVars = sel.hoistInductionVars;
        o.transform.taskSizeHeuristic = sel.taskSizeHeuristic;
        o.transform.loopThresh = sel.loopThresh;
        return o;
    }
};

} // namespace pipeline
} // namespace msc
