#include "pipeline/session.h"

#include <chrono>
#include <stdexcept>

#include "arch/processor.h"
#include "arch/taskstream.h"
#include "ir/printer.h"
#include "obs/phase.h"
#include "pipeline/hash.h"
#include "profile/interpreter.h"
#include "profile/profiler.h"
#include "tasksel/pverify.h"
#include "tasksel/selector.h"
#include "tasksel/transforms.h"

namespace msc {
namespace pipeline {

namespace {

/** Per-stage key domains (arbitrary distinct constants). */
enum : uint64_t
{
    TAG_TRANSFORM = 0x7472616e73666f72ull,  // "transfor"
    TAG_PROFILE = 0x70726f66696c6500ull,    // "profile\0"
    TAG_SELECT = 0x73656c6563740000ull,     // "select\0\0"
    TAG_TRACE = 0x7472616365000000ull,      // "trace\0\0\0"
    TAG_SIMULATE = 0x73696d756c617465ull,   // "simulate"
    TAG_INPUT = 0x696e707574000000ull,      // "input\0\0\0"
};

/** Wall-clock accounting for one stage compute (hits record 0). */
class PhaseTimer
{
  public:
    PhaseTimer(obs::PhaseTimes *pt, obs::PipelinePhase phase)
        : _pt(pt), _phase(phase)
    {
        if (_pt)
            _start = Clock::now();
    }

    ~PhaseTimer()
    {
        if (_pt)
            _pt->add(_phase,
                     std::chrono::duration<double, std::micro>(
                         Clock::now() - _start)
                         .count());
    }

  private:
    using Clock = std::chrono::steady_clock;
    obs::PhaseTimes *_pt;
    obs::PipelinePhase _phase;
    Clock::time_point _start;
};

/**
 * Runs one stage compute under a fresh Governor and annotates any
 * escaping error with the stage name. A Governor lives exactly as
 * long as one compute (budgets are per stage compute; cache hits
 * never construct one), so the wall-clock deadline starts after
 * upstream artifacts are already in hand. Unclassified exceptions
 * are wrapped as ErrorKind::Internal at this boundary so sweep
 * drivers always see a StageError with a stage attached.
 */
template <typename Fn>
auto
governedCompute(const StageOptions &o, StageKind stage, Fn &&fn)
    -> decltype(fn(std::declval<runtime::Governor &>()))
{
    runtime::Governor gov(o.budget, o.cancel);
    try {
        return fn(gov);
    } catch (runtime::StageError &e) {
        e.setStage(stageName(stage));
        throw;
    } catch (const std::exception &e) {
        throw runtime::StageError(runtime::ErrorKind::Internal,
                                  stageName(stage), e.what());
    }
}

void
hashCacheConfig(Hasher &h, const arch::CacheConfig &c)
{
    h.word(c.sizeBytes)
        .word(uint64_t(c.assoc))
        .word(uint64_t(c.blockBytes))
        .word(uint64_t(c.hitLatency))
        .word(uint64_t(c.banks));
}

} // anonymous namespace

const char *
stageName(StageKind s)
{
    switch (s) {
      case StageKind::Transform: return "transform";
      case StageKind::Profile:   return "profile";
      case StageKind::Select:    return "select";
      case StageKind::Trace:     return "trace";
      case StageKind::Simulate:  return "simulate";
      case StageKind::NUM_STAGES: break;
    }
    return "?";
}

uint64_t
CacheStats::hits() const
{
    uint64_t n = 0;
    for (const auto &s : stage)
        n += s.hits;
    return n;
}

uint64_t
CacheStats::computed() const
{
    uint64_t n = 0;
    for (const auto &s : stage)
        n += s.computed;
    return n;
}

uint64_t
CacheStats::diskHits() const
{
    uint64_t n = 0;
    for (const auto &s : stage)
        n += s.diskHits;
    return n;
}

void
CacheStats::add(const CacheStats &o)
{
    for (size_t i = 0; i < NUM_STAGES; ++i) {
        stage[i].hits += o.stage[i].hits;
        stage[i].diskHits += o.stage[i].diskHits;
        stage[i].computed += o.stage[i].computed;
    }
}

std::string
CacheStats::summary() const
{
    return std::to_string(computed()) + " computed, " +
           std::to_string(hits()) + " hits, " +
           std::to_string(diskHits()) + " from disk";
}

Session::Session(const ir::Program &input, SessionConfig cfg)
    : Session(std::make_shared<const ir::Program>(input),
              std::move(cfg))
{}

Session::Session(std::shared_ptr<const ir::Program> input,
                 SessionConfig cfg)
    : _input(std::move(input)), _disk(std::move(cfg.cacheDir))
{
    Hasher h(TAG_INPUT);
    h.bytes(ir::toString(*_input));
    _inputKey = h.digest();
}

// --------------------------------------------------------------------
// Artifact keys. Each absorbs its upstream stage's key plus exactly
// the fields its stage reads; fields gated off by a flag are
// canonicalized to zero so toggling an inert knob cannot miss. The
// table in docs/API.md mirrors this code.

uint64_t
Session::transformKey(const StageOptions &o) const
{
    const TransformOptions &t = o.transform;
    Hasher h(TAG_TRANSFORM);
    h.word(_inputKey)
        .word(t.hoistInductionVars)
        .word(t.taskSizeHeuristic)
        .word(uint64_t(t.taskSizeHeuristic ? t.loopThresh : 0));
    return h.digest();
}

uint64_t
Session::profileKey(const StageOptions &o) const
{
    Hasher h(TAG_PROFILE);
    h.word(transformKey(o)).word(o.profile.profileInsts);
    return h.digest();
}

uint64_t
Session::selectKey(const StageOptions &o) const
{
    const tasksel::SelectionOptions &s = o.sel;
    Hasher h(TAG_SELECT);
    h.word(profileKey(o))
        .word(uint64_t(s.strategy))
        .word(uint64_t(s.maxTargets))
        .word(s.taskSizeHeuristic)
        .word(uint64_t(s.taskSizeHeuristic ? s.callThresh : 0))
        .word(s.deadRegElim)
        .word(s.ddTerminateAtDependence)
        .word(uint64_t(s.maxTaskBlocks))
        .word(uint64_t(s.maxDepsPerFunction));
    return h.digest();
}

uint64_t
Session::traceKey(const StageOptions &o) const
{
    Hasher h(TAG_TRACE);
    h.word(selectKey(o)).word(o.trace.traceInsts);
    return h.digest();
}

uint64_t
Session::simulateKey(const StageOptions &o) const
{
    // Every SimConfig field EXCEPT coreMode participates in the key.
    // The two cores are byte-identical by contract (docs/PERFORMANCE.md,
    // enforced by tests/test_eventcore.cc), so hashing the mode would
    // only split the cache: a cycle-core run could never reuse an
    // event-core artifact that is guaranteed to be the same bytes.
    const arch::SimConfig &c = o.config;
    Hasher h(TAG_SIMULATE);
    h.word(traceKey(o))
        .word(uint64_t(c.numPUs))
        .word(c.outOfOrder)
        .word(uint64_t(c.issueWidth))
        .word(uint64_t(c.fetchWidth))
        .word(uint64_t(c.robSize))
        .word(uint64_t(c.issueListSize))
        .word(uint64_t(c.numIntFU))
        .word(uint64_t(c.numFpFU))
        .word(uint64_t(c.numBrFU))
        .word(uint64_t(c.numMemFU))
        .word(uint64_t(c.maxTargets))
        .word(uint64_t(c.taskStartOverhead))
        .word(uint64_t(c.taskEndOverhead))
        .word(uint64_t(c.taskPredHistBits))
        .word(uint64_t(c.taskPredTableSize))
        .word(uint64_t(c.gshareHistBits))
        .word(uint64_t(c.gshareTableSize))
        .word(uint64_t(c.rasDepth))
        .word(uint64_t(c.ringBandwidth))
        .word(uint64_t(c.arbEntriesPerPU))
        .word(uint64_t(c.arbHitLatency))
        .word(uint64_t(c.syncTableSize))
        .word(uint64_t(c.memLatency))
        .word(c.maxCycles);
    hashCacheConfig(h, c.l1i);
    hashCacheConfig(h, c.l1d);
    hashCacheConfig(h, c.l2);
    return h.digest();
}

uint64_t
Session::stageKey(StageKind s, const StageOptions &o) const
{
    switch (s) {
      case StageKind::Transform: return transformKey(o);
      case StageKind::Profile:   return profileKey(o);
      case StageKind::Select:    return selectKey(o);
      case StageKind::Trace:     return traceKey(o);
      case StageKind::Simulate:  return simulateKey(o);
      case StageKind::NUM_STAGES: break;
    }
    throw runtime::StageError(runtime::ErrorKind::Internal, "cache",
                              "stageKey: bad stage");
}

// --------------------------------------------------------------------
// Stages.

std::shared_ptr<const TransformedProgram>
Session::transform(const StageOptions &o)
{
    uint64_t key = transformKey(o);
    return _transforms.getOrCompute(
        key, _ctr[size_t(StageKind::Transform)],
        [&]() -> std::shared_ptr<const TransformedProgram> {
            auto &ctr = _ctr[size_t(StageKind::Transform)];
            if (auto tp = _disk.loadTransform(key)) {
                ctr.diskHits.fetch_add(1, std::memory_order_relaxed);
                return tp;
            }
            ctr.computed.fetch_add(1, std::memory_order_relaxed);
            PhaseTimer timer(o.phaseTimes,
                             obs::PipelinePhase::Transforms);

            return governedCompute(
                o, StageKind::Transform,
                [&](runtime::Governor &gov)
                    -> std::shared_ptr<const TransformedProgram> {
                    auto tp = std::make_shared<TransformedProgram>();
                    tp->key = key;
                    auto prog = std::make_shared<ir::Program>(*_input);
                    // IV rotation before unrolling so every unrolled
                    // copy carries its increment at the top (§3.2).
                    if (o.transform.hoistInductionVars)
                        tp->ivsHoisted =
                            tasksel::hoistInductionVariables(*prog,
                                                             &gov);
                    if (o.transform.taskSizeHeuristic)
                        tp->loopsUnrolled = tasksel::unrollSmallLoops(
                            *prog, o.transform.loopThresh, 16, &gov);
                    prog->computeCfg();
                    prog->layout();
                    tp->prog = std::move(prog);
                    _disk.store(*tp);
                    return tp;
                });
        });
}

std::shared_ptr<const ProfileArtifact>
Session::profile(const StageOptions &o)
{
    uint64_t key = profileKey(o);
    return _profiles.getOrCompute(
        key, _ctr[size_t(StageKind::Profile)],
        [&]() -> std::shared_ptr<const ProfileArtifact> {
            auto tp = transform(o);
            auto &ctr = _ctr[size_t(StageKind::Profile)];
            if (auto pa = _disk.loadProfile(key, tp)) {
                ctr.diskHits.fetch_add(1, std::memory_order_relaxed);
                return pa;
            }
            ctr.computed.fetch_add(1, std::memory_order_relaxed);
            PhaseTimer timer(o.phaseTimes, obs::PipelinePhase::Profile);

            return governedCompute(
                o, StageKind::Profile,
                [&](runtime::Governor &gov)
                    -> std::shared_ptr<const ProfileArtifact> {
                    // The interpreter's data-memory image is the
                    // stage's dominant tracked allocation.
                    gov.chargeHeap(tp->prog->memWords *
                                   sizeof(int64_t));
                    auto pa = std::make_shared<ProfileArtifact>();
                    pa->key = key;
                    pa->transformed = tp;
                    pa->profile = profile::profileProgram(
                        *tp->prog, o.profile.profileInsts, &gov);
                    _disk.store(*pa);
                    return pa;
                });
        });
}

std::shared_ptr<const PartitionArtifact>
Session::select(const StageOptions &o)
{
    uint64_t key = selectKey(o);
    return _partitions.getOrCompute(
        key, _ctr[size_t(StageKind::Select)],
        [&]() -> std::shared_ptr<const PartitionArtifact> {
            auto prof = profile(o);
            auto &ctr = _ctr[size_t(StageKind::Select)];
            std::shared_ptr<const PartitionArtifact> pa =
                _disk.loadPartition(key, prof->transformed);
            if (pa) {
                ctr.diskHits.fetch_add(1, std::memory_order_relaxed);
            } else {
                ctr.computed.fetch_add(1, std::memory_order_relaxed);
                PhaseTimer timer(o.phaseTimes,
                                 obs::PipelinePhase::Selection);
                pa = governedCompute(
                    o, StageKind::Select,
                    [&](runtime::Governor &gov)
                        -> std::shared_ptr<const PartitionArtifact> {
                        auto fresh =
                            std::make_shared<PartitionArtifact>();
                        fresh->key = key;
                        fresh->transformed = prof->transformed;
                        fresh->partition = tasksel::selectTasks(
                            *prof->transformed->prog, prof->profile,
                            o.sel, &gov);
                        _disk.store(*fresh);
                        return fresh;
                    });
            }
            if (o.verifyPartition) {
                std::string err;
                if (!tasksel::verifyPartition(pa->partition, o.sel,
                                              &err))
                    throw runtime::StageError(
                        runtime::ErrorKind::VerifyFailed, "select",
                        "partition verification failed: " + err);
            }
            return pa;
        });
}

std::shared_ptr<const TaskTrace>
Session::trace(const StageOptions &o)
{
    uint64_t key = traceKey(o);
    return _traces.getOrCompute(
        key, _ctr[size_t(StageKind::Trace)],
        [&]() -> std::shared_ptr<const TaskTrace> {
            auto part = select(o);
            auto &ctr = _ctr[size_t(StageKind::Trace)];
            ctr.computed.fetch_add(1, std::memory_order_relaxed);
            PhaseTimer timer(o.phaseTimes,
                             obs::PipelinePhase::TraceCut);

            return governedCompute(
                o, StageKind::Trace,
                [&](runtime::Governor &gov)
                    -> std::shared_ptr<const TaskTrace> {
                    auto tt = std::make_shared<TaskTrace>();
                    tt->key = key;
                    tt->partition = part;
                    gov.chargeHeap(
                        part->transformed->prog->memWords *
                        sizeof(int64_t));
                    profile::Interpreter interp(
                        *part->transformed->prog);
                    profile::Trace raw =
                        interp.trace(o.trace.traceInsts, &gov);
                    tt->tasks = arch::cutTasks(raw, part->partition);
                    tt->traceInsts = raw.size();
                    return tt;
                });
        });
}

std::shared_ptr<const SimArtifact>
Session::computeSimulate(const StageOptions &o, uint64_t key)
{
    auto tt = trace(o);
    _ctr[size_t(StageKind::Simulate)].computed.fetch_add(
        1, std::memory_order_relaxed);
    PhaseTimer timer(o.phaseTimes, obs::PipelinePhase::TimingSim);

    return governedCompute(
        o, StageKind::Simulate,
        [&](runtime::Governor &gov) -> std::shared_ptr<const SimArtifact> {
            auto sa = std::make_shared<SimArtifact>();
            sa->key = key;
            sa->trace = tt;
            sa->stats = arch::simulate(tt->partition->partition,
                                       tt->tasks, o.config, o.sink,
                                       &gov);
            return sa;
        });
}

std::shared_ptr<const SimArtifact>
Session::simulate(const StageOptions &o)
{
    uint64_t key = simulateKey(o);
    // A sink is a side effect: its events must fire on every call, so
    // sink runs bypass the memo table (upstream stages still share).
    if (o.sink)
        return computeSimulate(o, key);
    return _sims.getOrCompute(
        key, _ctr[size_t(StageKind::Simulate)],
        [&] { return computeSimulate(o, key); });
}

StageResults
Session::runAll(const StageOptions &o)
{
    StageResults r;
    r.sim = simulate(o);
    r.trace = r.sim->trace;
    r.partition = r.trace->partition;
    r.transformed = r.partition->transformed;
    r.profile = profile(o);
    return r;
}

CacheStats
Session::cacheStats() const
{
    CacheStats s;
    for (size_t i = 0; i < NUM_STAGES; ++i)
        s.stage[i] = _ctr[i].snapshot();
    return s;
}

} // namespace pipeline
} // namespace msc
