#include "pipeline/diskcache.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <tuple>

#include <unistd.h>

#include "ir/parser.h"
#include "ir/printer.h"
#include "report/json.h"
#include "runtime/fault.h"

namespace msc {
namespace pipeline {

namespace {

using report::Json;

constexpr const char *CACHE_SCHEMA = "msc.cache";
constexpr int CACHE_SCHEMA_VERSION = 1;

std::string
keyHex(uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)key);
    return buf;
}

/** Envelope shared by every artifact file. */
Json
envelope(const char *stage, uint64_t key)
{
    Json doc = Json::object();
    doc["schema"] = CACHE_SCHEMA;
    doc["schema_version"] = CACHE_SCHEMA_VERSION;
    doc["stage"] = stage;
    doc["key"] = keyHex(key);
    return doc;
}

Json
u64Array(const std::vector<uint64_t> &v)
{
    Json a = Json::array();
    for (uint64_t x : v)
        a.push(x);
    return a;
}

std::vector<uint64_t>
asU64Vector(const Json &a)
{
    std::vector<uint64_t> v;
    v.reserve(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        v.push_back(a.at(i).asUInt());
    return v;
}

} // anonymous namespace

std::string
DiskCache::path(const char *stage, uint64_t key) const
{
    return _dir + "/" + stage + "-" + keyHex(key) + ".json";
}

DiskCacheStats
DiskCache::stats() const
{
    DiskCacheStats s;
    s.writeRetries = _writeRetries.load(std::memory_order_relaxed);
    s.writeFailures = _writeFailures.load(std::memory_order_relaxed);
    s.quarantined = _quarantined.load(std::memory_order_relaxed);
    return s;
}

void
DiskCache::quarantine(const std::string &path) const
{
    _quarantined.fetch_add(1, std::memory_order_relaxed);
    std::string q = path + ".quarantine";
    std::remove(q.c_str());
    if (std::rename(path.c_str(), q.c_str()) != 0)
        std::remove(path.c_str());  // Can't move it: drop it instead.
    std::fprintf(stderr,
                 "[cache] warning: quarantined corrupt entry %s\n",
                 path.c_str());
}

bool
DiskCache::loadEnvelope(const std::string &path, const char *stage,
                        uint64_t key, Json &doc) const
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;  // Plain miss; nothing to quarantine.
    std::ostringstream ss;
    ss << in.rdbuf();

    // The "cache-read" fault site treats one successfully read entry
    // as corrupt, driving the quarantine path deterministically.
    bool valid = false;
    if (!runtime::FaultInjector::instance().shouldFail("cache-read")) {
        try {
            doc = Json::parse(ss.str());
            valid = doc.get("schema").asString() == CACHE_SCHEMA &&
                    doc.get("schema_version").asInt() ==
                        CACHE_SCHEMA_VERSION &&
                    doc.get("stage").asString() == stage &&
                    doc.get("key").asString() == keyHex(key);
        } catch (const std::exception &) {
            valid = false;
        }
    }
    if (!valid)
        quarantine(path);
    return valid;
}

void
DiskCache::writeAtomic(const std::string &path,
                       const std::string &content) const
{
    std::error_code ec;
    std::filesystem::create_directories(_dir, ec);
    // Per-process temp name: concurrent writers of the same key race
    // benignly (identical content, last rename wins).
    std::string tmp = path + ".tmp." +
                      std::to_string((unsigned long)::getpid());

    // Transient failures (ENOSPC racing a cleaner, network FS hiccup,
    // an injected "cache-write" fault) get a bounded retry with
    // backoff; a cache that stays broken warns once and the run
    // proceeds uncached.
    constexpr int MAX_ATTEMPTS = 3;
    for (int attempt = 0; attempt < MAX_ATTEMPTS; ++attempt) {
        if (attempt) {
            _writeRetries.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1 << (attempt - 1)));
        }
        bool ok = !runtime::FaultInjector::instance().shouldFail(
            "cache-write");
        if (ok) {
            std::ofstream f(tmp, std::ios::binary);
            if (f)
                f << content;
            ok = bool(f);
        }
        if (ok && std::rename(tmp.c_str(), path.c_str()) == 0)
            return;
        std::remove(tmp.c_str());
    }
    _writeFailures.fetch_add(1, std::memory_order_relaxed);
    if (!_warned.exchange(true))
        std::fprintf(stderr,
                     "[cache] warning: cannot write %s after %d "
                     "attempts: %s (entry stays uncached)\n",
                     path.c_str(), MAX_ATTEMPTS, std::strerror(errno));
}

// --------------------------------------------------------------------
// Transform artifact: the program as .mir text plus bookkeeping.

void
DiskCache::store(const TransformedProgram &tp) const
{
    if (!enabled())
        return;
    Json doc = envelope("transform", tp.key);
    doc["loops_unrolled"] = tp.loopsUnrolled;
    doc["ivs_hoisted"] = tp.ivsHoisted;
    doc["program"] = ir::toString(*tp.prog);
    writeAtomic(path("transform", tp.key), doc.dump(2));
}

std::shared_ptr<const TransformedProgram>
DiskCache::loadTransform(uint64_t key) const
{
    if (!enabled())
        return nullptr;
    Json doc;
    if (!loadEnvelope(path("transform", key), "transform", key, doc))
        return nullptr;
    try {
        auto tp = std::make_shared<TransformedProgram>();
        tp->key = key;
        auto prog = std::make_shared<ir::Program>(
            ir::parseProgram(doc.get("program").asString()));
        tp->prog = std::move(prog);
        tp->loopsUnrolled = unsigned(doc.get("loops_unrolled").asUInt());
        tp->ivsHoisted = unsigned(doc.get("ivs_hoisted").asUInt());
        return tp;
    } catch (const std::exception &) {
        quarantine(path("transform", key));  // Valid envelope, bad body.
        return nullptr;
    }
}

// --------------------------------------------------------------------
// Profile artifact.

void
DiskCache::store(const ProfileArtifact &pa) const
{
    if (!enabled())
        return;
    const profile::Profile &p = pa.profile;
    Json doc = envelope("profile", pa.key);
    doc["total_insts"] = p.totalInsts;
    doc["func_invocations"] = u64Array(p.funcInvocations);
    doc["func_inclusive_insts"] = u64Array(p.funcInclusiveInsts);

    Json blocks = Json::array();
    for (const auto &f : p.blockCount)
        blocks.push(u64Array(f));
    doc["block_count"] = std::move(blocks);

    // Maps serialize as sorted flat rows for deterministic bytes.
    std::vector<std::pair<profile::EdgeKey, uint64_t>> edges(
        p.edgeCount.begin(), p.edgeCount.end());
    std::sort(edges.begin(), edges.end(),
              [](const auto &a, const auto &b) {
                  return std::tie(a.first.func, a.first.from,
                                  a.first.to) <
                         std::tie(b.first.func, b.first.from,
                                  b.first.to);
              });
    Json ej = Json::array();
    for (const auto &[k, n] : edges) {
        Json row = Json::array();
        row.push(k.func);
        row.push(k.from);
        row.push(k.to);
        row.push(n);
        ej.push(std::move(row));
    }
    doc["edge_count"] = std::move(ej);

    std::vector<std::pair<profile::DefUseKey, uint64_t>> deps(
        p.defUseCount.begin(), p.defUseCount.end());
    std::sort(deps.begin(), deps.end(),
              [](const auto &a, const auto &b) {
                  return std::tie(a.first.def, a.first.use,
                                  a.first.reg) <
                         std::tie(b.first.def, b.first.use,
                                  b.first.reg);
              });
    Json dj = Json::array();
    for (const auto &[k, n] : deps) {
        Json row = Json::array();
        for (const ir::InstRef &r : {k.def, k.use}) {
            row.push(r.func);
            row.push(r.block);
            row.push(r.index);
        }
        row.push(unsigned(k.reg));
        row.push(n);
        dj.push(std::move(row));
    }
    doc["def_use_count"] = std::move(dj);
    writeAtomic(path("profile", pa.key), doc.dump(2));
}

std::shared_ptr<const ProfileArtifact>
DiskCache::loadProfile(
    uint64_t key, std::shared_ptr<const TransformedProgram> tp) const
{
    if (!enabled())
        return nullptr;
    Json doc;
    if (!loadEnvelope(path("profile", key), "profile", key, doc))
        return nullptr;
    try {
        auto pa = std::make_shared<ProfileArtifact>();
        pa->key = key;
        pa->transformed = std::move(tp);
        profile::Profile &p = pa->profile;
        p.totalInsts = doc.get("total_insts").asUInt();
        p.funcInvocations = asU64Vector(doc.get("func_invocations"));
        p.funcInclusiveInsts =
            asU64Vector(doc.get("func_inclusive_insts"));
        const Json &blocks = doc.get("block_count");
        for (size_t f = 0; f < blocks.size(); ++f)
            p.blockCount.push_back(asU64Vector(blocks.at(f)));
        const Json &ej = doc.get("edge_count");
        for (size_t i = 0; i < ej.size(); ++i) {
            const Json &row = ej.at(i);
            profile::EdgeKey k{ir::FuncId(row.at(0).asUInt()),
                               ir::BlockId(row.at(1).asUInt()),
                               ir::BlockId(row.at(2).asUInt())};
            p.edgeCount[k] = row.at(3).asUInt();
        }
        const Json &dj = doc.get("def_use_count");
        for (size_t i = 0; i < dj.size(); ++i) {
            const Json &row = dj.at(i);
            profile::DefUseKey k;
            k.def = {ir::FuncId(row.at(0).asUInt()),
                     ir::BlockId(row.at(1).asUInt()),
                     uint32_t(row.at(2).asUInt())};
            k.use = {ir::FuncId(row.at(3).asUInt()),
                     ir::BlockId(row.at(4).asUInt()),
                     uint32_t(row.at(5).asUInt())};
            k.reg = ir::RegId(row.at(6).asUInt());
            p.defUseCount[k] = row.at(7).asUInt();
        }
        return pa;
    } catch (const std::exception &) {
        quarantine(path("profile", key));
        return nullptr;
    }
}

// --------------------------------------------------------------------
// Partition artifact. taskOf is rebuilt from the task member lists;
// fwdSafe serializes as nested uint64 arrays (one RegSet per
// instruction).

void
DiskCache::store(const PartitionArtifact &pa) const
{
    if (!enabled())
        return;
    const tasksel::TaskPartition &part = pa.partition;
    Json doc = envelope("partition", pa.key);

    Json tasks = Json::array();
    for (const auto &t : part.tasks) {
        Json tj = Json::object();
        tj["id"] = t.id;
        tj["func"] = t.func;
        tj["entry"] = t.entry;
        Json blocks = Json::array();
        for (ir::BlockId b : t.blocks)
            blocks.push(b);
        tj["blocks"] = std::move(blocks);
        Json targets = Json::array();
        for (const auto &tg : t.targets) {
            Json row = Json::array();
            row.push(tg.kind == tasksel::TargetKind::Return ? 1 : 0);
            row.push(tg.block.func);
            row.push(tg.block.block);
            targets.push(std::move(row));
        }
        tj["targets"] = std::move(targets);
        tj["create_mask"] = uint64_t(t.createMask);
        tj["static_insts"] = t.staticInsts;
        tasks.push(std::move(tj));
    }
    doc["tasks"] = std::move(tasks);

    std::vector<ir::BlockRef> calls(part.includedCalls.begin(),
                                    part.includedCalls.end());
    std::sort(calls.begin(), calls.end());
    Json cj = Json::array();
    for (const auto &c : calls) {
        Json row = Json::array();
        row.push(c.func);
        row.push(c.block);
        cj.push(std::move(row));
    }
    doc["included_calls"] = std::move(cj);

    Json fwd = Json::array();
    for (const auto &func : part.fwdSafe) {
        Json fj = Json::array();
        for (const auto &block : func)
            fj.push(u64Array(block));
        fwd.push(std::move(fj));
    }
    doc["fwd_safe"] = std::move(fwd);
    writeAtomic(path("partition", pa.key), doc.dump(2));
}

std::shared_ptr<const PartitionArtifact>
DiskCache::loadPartition(
    uint64_t key, std::shared_ptr<const TransformedProgram> tp) const
{
    if (!enabled())
        return nullptr;
    Json doc;
    if (!loadEnvelope(path("partition", key), "partition", key, doc))
        return nullptr;
    try {
        auto pa = std::make_shared<PartitionArtifact>();
        pa->key = key;
        pa->transformed = tp;
        tasksel::TaskPartition &part = pa->partition;
        part.prog = tp->prog.get();

        const Json &tasks = doc.get("tasks");
        for (size_t i = 0; i < tasks.size(); ++i) {
            const Json &tj = tasks.at(i);
            tasksel::Task t;
            t.id = tasksel::TaskId(tj.get("id").asUInt());
            t.func = ir::FuncId(tj.get("func").asUInt());
            t.entry = ir::BlockId(tj.get("entry").asUInt());
            const Json &blocks = tj.get("blocks");
            for (size_t b = 0; b < blocks.size(); ++b)
                t.blocks.push_back(
                    ir::BlockId(blocks.at(b).asUInt()));
            const Json &targets = tj.get("targets");
            for (size_t g = 0; g < targets.size(); ++g) {
                const Json &row = targets.at(g);
                tasksel::TaskTarget tg;
                tg.kind = row.at(0).asUInt()
                              ? tasksel::TargetKind::Return
                              : tasksel::TargetKind::Block;
                tg.block = {ir::FuncId(row.at(1).asUInt()),
                            ir::BlockId(row.at(2).asUInt())};
                t.targets.push_back(tg);
            }
            t.createMask = tj.get("create_mask").asUInt();
            t.staticInsts = uint32_t(tj.get("static_insts").asUInt());
            part.tasks.push_back(std::move(t));
        }

        // taskOf is a pure function of the member lists.
        const ir::Program &prog = *tp->prog;
        part.taskOf.resize(prog.functions.size());
        for (size_t f = 0; f < prog.functions.size(); ++f)
            part.taskOf[f].assign(prog.functions[f].blocks.size(),
                                  tasksel::INVALID_TASK);
        for (const auto &t : part.tasks)
            for (ir::BlockId b : t.blocks)
                part.taskOf.at(t.func).at(b) = t.id;

        const Json &cj = doc.get("included_calls");
        for (size_t i = 0; i < cj.size(); ++i) {
            const Json &row = cj.at(i);
            part.includedCalls.insert(
                {ir::FuncId(row.at(0).asUInt()),
                 ir::BlockId(row.at(1).asUInt())});
        }

        const Json &fwd = doc.get("fwd_safe");
        for (size_t f = 0; f < fwd.size(); ++f) {
            const Json &fj = fwd.at(f);
            std::vector<std::vector<cfg::RegSet>> func;
            for (size_t b = 0; b < fj.size(); ++b)
                func.push_back(asU64Vector(fj.at(b)));
            part.fwdSafe.push_back(std::move(func));
        }
        return pa;
    } catch (const std::exception &) {
        quarantine(path("partition", key));
        return nullptr;
    }
}

} // namespace pipeline
} // namespace msc
