/**
 * @file
 * SessionPool: one Session per distinct input program, shared across
 * the points of a sweep.
 *
 * SweepRunner routes every sweep point through a pool keyed by
 * (workload, scale), so an N-config x M-strategy grid computes each
 * distinct frontend (transform/profile/select/trace) exactly once and
 * fans out only the timing simulations — the Table-1/Figure-5 benches
 * get this for free. All methods are thread-safe.
 */

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "pipeline/session.h"

namespace msc {
namespace pipeline {

class SessionPool
{
  public:
    /** @p cfg (cache directory) applies to every pooled Session. */
    explicit SessionPool(SessionConfig cfg = {})
        : _cfg(std::move(cfg))
    {}

    SessionPool(const SessionPool &) = delete;
    SessionPool &operator=(const SessionPool &) = delete;

    /**
     * Returns the Session for @p key, invoking @p build (at most once
     * per key) to construct the input program. Sessions live as long
     * as the pool plus any outstanding shared_ptr.
     */
    std::shared_ptr<Session>
    session(const std::string &key,
            const std::function<ir::Program()> &build);

    /** Number of distinct sessions created so far. */
    size_t size() const;

    /** Aggregated cache counters across all sessions. */
    CacheStats stats() const;

    const SessionConfig &config() const { return _cfg; }

  private:
    SessionConfig _cfg;
    mutable std::mutex _mu;
    std::map<std::string, std::shared_ptr<Session>> _sessions;
};

} // namespace pipeline
} // namespace msc
