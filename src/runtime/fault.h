/**
 * @file
 * Deterministic fault injection for robustness tests.
 *
 * The injector is a process-wide table of named sites with
 * fail-counts. Production code asks `shouldFail("site")` at the top
 * of a fallible operation; the call returns true (and decrements)
 * while the site's counter is positive, so "fail the first N
 * attempts, then succeed" scenarios are exact and repeatable.
 *
 * Configuration comes from the MSC_FAULT_INJECT environment variable
 * (read once, at first use) or programmatically via configure():
 *
 *   MSC_FAULT_INJECT="cache-write=2,cache-read=1"
 *
 * Sites currently wired in:
 *   cache-write  pipeline::DiskCache::writeAtomic attempts
 *   cache-read   pipeline::DiskCache envelope loads (forces the
 *                corrupt-entry quarantine path)
 *
 * With no configuration every query is a branch on an empty table —
 * effectively free — and production binaries never set the variable.
 */

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace msc {
namespace runtime {

class FaultInjector
{
  public:
    /** Process-wide instance, seeded from MSC_FAULT_INJECT. */
    static FaultInjector &instance();

    /**
     * Replaces the whole site table from @p spec
     * ("site=count,site=count"; empty clears). Malformed entries are
     * ignored. Tests call this to arm/disarm sites mid-process.
     */
    void configure(const std::string &spec);

    /** True while @p site has failures left; decrements on true. */
    bool shouldFail(const char *site);

    /** Remaining failure count for @p site (0 when unarmed). */
    uint64_t remaining(const char *site) const;

  private:
    FaultInjector();

    mutable std::mutex _mu;
    std::map<std::string, uint64_t> _sites;
};

} // namespace runtime
} // namespace msc
