#include "runtime/error.h"

namespace msc {
namespace runtime {

const char *
errorKindId(ErrorKind k)
{
    switch (k) {
      case ErrorKind::None:          return "none";
      case ErrorKind::Internal:      return "internal";
      case ErrorKind::InvalidInput:  return "invalid-input";
      case ErrorKind::VerifyFailed:  return "verify-failed";
      case ErrorKind::Io:            return "io";
      case ErrorKind::CacheCorrupt:  return "cache-corrupt";
      case ErrorKind::BudgetFuel:    return "budget-fuel";
      case ErrorKind::BudgetCycles:  return "budget-cycles";
      case ErrorKind::BudgetHeap:    return "budget-heap";
      case ErrorKind::Deadline:      return "deadline";
      case ErrorKind::Cancelled:     return "cancelled";
      case ErrorKind::OracleFailure: return "oracle-failure";
      case ErrorKind::Busy:          return "busy";
    }
    return "unknown";
}

bool
errorKindFromId(const std::string &id, ErrorKind &out)
{
    for (uint8_t k = uint8_t(ErrorKind::None);
         k <= uint8_t(ErrorKind::Busy); ++k) {
        if (id == errorKindId(ErrorKind(k))) {
            out = ErrorKind(k);
            return true;
        }
    }
    return false;
}

bool
errorKindIsBudget(ErrorKind k)
{
    switch (k) {
      case ErrorKind::BudgetFuel:
      case ErrorKind::BudgetCycles:
      case ErrorKind::BudgetHeap:
      case ErrorKind::Deadline:
        return true;
      default:
        return false;
    }
}

std::string
StageErrorInfo::render() const
{
    std::string s;
    if (!stage.empty()) {
        s += stage;
        s += ": ";
    }
    s += errorKindId(kind);
    if (!detail.empty()) {
        s += ": ";
        s += detail;
    }
    if (budgetExhausted() && limit) {
        s += " [used " + std::to_string(used) + " of " +
             std::to_string(limit) + "]";
    }
    return s;
}

} // namespace runtime
} // namespace msc
