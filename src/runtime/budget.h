/**
 * @file
 * Resource governance for pipeline stage computes.
 *
 * An ExecBudget bounds what one stage compute may consume:
 *
 *   - maxFuel:      dynamic instructions interpreted (profiling and
 *                   trace runs charge fuel in PULSE_INTERVAL blocks);
 *   - maxSimCycles: simulated cycles in the timing model;
 *   - maxHeapBytes: watermark over the *tracked* large allocations
 *                   (interpreter memory image, trace buffers) — an
 *                   accounting bound, not a malloc hook;
 *   - wallMs:       wall-clock deadline per stage compute.
 *
 * Budgets are enforced by a Governor, constructed per stage compute
 * from the budget plus an optional shared CancelToken, and threaded
 * as a nullable pointer through the interpreter, the profiler, task
 * selection, and arch::simulate. A tripped budget throws StageError
 * with the matching budget kind; nothing is ever truncated, so a
 * stage either produces its full, budget-independent artifact or no
 * artifact at all. That is what lets pipeline::Session leave budgets
 * out of artifact keys, and what makes budget outcomes independent of
 * cache warmth: fuel is charged per stage *compute*, and cache hits
 * charge nothing.
 *
 * Determinism: fuel and cycle checks happen at fixed intervals of
 * deterministic counters, so exhausting the same budget twice
 * produces byte-identical StageError records. Deadline and
 * cancellation are wall-clock / external by nature; their error
 * details deliberately embed no elapsed quantities.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "runtime/error.h"

namespace msc {
namespace runtime {

/** Per-stage-compute resource limits; 0 anywhere = unlimited. */
struct ExecBudget
{
    uint64_t maxFuel = 0;       ///< Interpreted instructions.
    uint64_t maxSimCycles = 0;  ///< Simulated cycles (timing model).
    uint64_t maxHeapBytes = 0;  ///< Tracked-allocation watermark.
    uint32_t wallMs = 0;        ///< Wall-clock deadline (per compute).

    bool
    unlimited() const
    {
        return !maxFuel && !maxSimCycles && !maxHeapBytes && !wallMs;
    }
};

/** Cooperative cancellation flag, shared across threads. */
class CancelToken
{
  public:
    void requestCancel() { _flag.store(true, std::memory_order_relaxed); }
    bool cancelled() const { return _flag.load(std::memory_order_relaxed); }

  private:
    std::atomic<bool> _flag{false};
};

/**
 * Enforces one ExecBudget over one stage compute. Not thread-safe:
 * construct one Governor per compute (pipeline::Session does). All
 * check methods throw StageError (stage field left empty; the stage
 * boundary annotates it).
 */
class Governor
{
  public:
    /** Instruction block size between fuel/pulse checks. */
    static constexpr uint64_t PULSE_INTERVAL = 4096;

    Governor() = default;

    explicit Governor(const ExecBudget &budget,
                      const CancelToken *cancel = nullptr)
        : _budget(budget), _cancel(cancel)
    {
        if (_budget.wallMs)
            _deadline = Clock::now() +
                        std::chrono::milliseconds(_budget.wallMs);
    }

    const ExecBudget &budget() const { return _budget; }

    /** Charges @p n interpreted instructions; throws BudgetFuel when
     *  the total crosses maxFuel. */
    void
    chargeFuel(uint64_t n)
    {
        _fuelUsed += n;
        if (_budget.maxFuel && _fuelUsed > _budget.maxFuel)
            throw budgetError(ErrorKind::BudgetFuel,
                              "instruction fuel exhausted",
                              _budget.maxFuel, _fuelUsed);
    }

    uint64_t fuelUsed() const { return _fuelUsed; }

    /** Simulated-cycle cap (0 = none); the timing model compares its
     *  own cycle counter and calls cyclesExhausted() on overflow so
     *  the hot loop stays a plain integer compare. */
    uint64_t simCycleLimit() const { return _budget.maxSimCycles; }

    [[noreturn]] void
    cyclesExhausted(uint64_t now) const
    {
        throw budgetError(ErrorKind::BudgetCycles,
                          "simulated-cycle budget exhausted",
                          _budget.maxSimCycles, now);
    }

    /** Accounts @p bytes of tracked allocation against the heap
     *  watermark; throws BudgetHeap *before* the caller allocates. */
    void
    chargeHeap(uint64_t bytes)
    {
        _heapBytes += bytes;
        if (_heapBytes > _heapPeak)
            _heapPeak = _heapBytes;
        if (_budget.maxHeapBytes && _heapBytes > _budget.maxHeapBytes)
            throw budgetError(ErrorKind::BudgetHeap,
                              "tracked-heap watermark exceeded",
                              _budget.maxHeapBytes, _heapBytes);
    }

    void
    releaseHeap(uint64_t bytes)
    {
        _heapBytes = bytes > _heapBytes ? 0 : _heapBytes - bytes;
    }

    uint64_t heapPeak() const { return _heapPeak; }

    /**
     * Cancellation + deadline check. Cheap enough for interval use:
     * the cancel flag is one relaxed atomic load; the clock is read
     * only every CLOCK_STRIDE pulses.
     */
    void
    checkPulse()
    {
        if (_cancel && _cancel->cancelled()) {
            StageErrorInfo i;
            i.kind = ErrorKind::Cancelled;
            i.detail = "cancelled";
            throw StageError(std::move(i));
        }
        if (_budget.wallMs && (++_pulses & (CLOCK_STRIDE - 1)) == 0 &&
            Clock::now() > _deadline) {
            StageErrorInfo i;
            i.kind = ErrorKind::Deadline;
            i.detail = "wall-clock deadline exceeded";
            i.limit = _budget.wallMs;
            throw StageError(std::move(i));
        }
    }

  private:
    using Clock = std::chrono::steady_clock;
    static constexpr uint64_t CLOCK_STRIDE = 16;

    static StageError
    budgetError(ErrorKind kind, const char *what, uint64_t limit,
                uint64_t used)
    {
        StageErrorInfo i;
        i.kind = kind;
        i.detail = what;
        i.limit = limit;
        i.used = used;
        return StageError(std::move(i));
    }

    ExecBudget _budget;
    const CancelToken *_cancel = nullptr;
    Clock::time_point _deadline{};
    uint64_t _fuelUsed = 0;
    uint64_t _heapBytes = 0;
    uint64_t _heapPeak = 0;
    uint64_t _pulses = 0;
};

} // namespace runtime
} // namespace msc
