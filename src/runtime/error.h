/**
 * @file
 * Structured error taxonomy for the pipeline and its drivers.
 *
 * Every failure a user's input (or a resource budget) can provoke is
 * reported as a StageError carrying a machine-readable
 * StageErrorInfo — kind, producing stage, workload, free-form detail,
 * and (for budget kinds) the limit/used pair — instead of an ad-hoc
 * std::runtime_error whose only structure is its message string.
 * StageError derives from std::runtime_error, so legacy catch sites
 * keep working; new code switches on info().kind.
 *
 * Determinism contract: the rendered message and every info field of
 * a *deterministic* error kind (anything except Deadline/Cancelled,
 * which are wall-clock driven by nature) depend only on the program,
 * options, and budget — never on timing, hostnames, or pointers — so
 * exhausting the same budget twice yields byte-identical records.
 * report::errorToJson serializes the info into msc.sweep v2 `error`
 * objects (docs/ROBUSTNESS.md).
 */

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace msc {
namespace runtime {

/** Machine-readable failure classification. */
enum class ErrorKind : uint8_t
{
    None,           ///< No error (RunRecord default state).
    Internal,       ///< Unclassified exception wrapped at a stage edge.
    InvalidInput,   ///< Malformed IR / unknown workload / bad CLI value.
    VerifyFailed,   ///< Partition or invariant verification rejected.
    Io,             ///< File read/write failure.
    CacheCorrupt,   ///< Disk-cache entry quarantined as unreadable.
    BudgetFuel,     ///< ExecBudget::maxFuel exhausted.
    BudgetCycles,   ///< ExecBudget::maxSimCycles exhausted.
    BudgetHeap,     ///< ExecBudget::maxHeapBytes watermark exceeded.
    Deadline,       ///< ExecBudget::wallMs wall-clock deadline passed.
    Cancelled,      ///< CancelToken observed mid-stage.
    OracleFailure,  ///< Differential oracle divergence (fuzzing).
    Busy,           ///< Connection over its in-flight bound (mscd
                    ///  backpressure; retry after a terminal frame).
};

/** Stable kebab-case identifier ("budget-fuel", "invalid-input", ...)
 *  emitted in msc.sweep v2 documents. */
const char *errorKindId(ErrorKind k);

/** Reverse of errorKindId: decodes a kind identifier from a wire
 *  document. Returns false (leaving @p out untouched) on an unknown
 *  id, so clients degrade gracefully across protocol revisions. */
bool errorKindFromId(const std::string &id, ErrorKind &out);

/** True for the three deterministic budget kinds plus Deadline — the
 *  kinds a sweep reports with `budget_exhausted: true`. */
bool errorKindIsBudget(ErrorKind k);

/** The machine-readable payload of a StageError. */
struct StageErrorInfo
{
    ErrorKind kind = ErrorKind::None;

    /** Producing stage ("parse", "workload", "transform", "profile",
     *  "select", "trace", "simulate", "cache", "report", ...). Filled
     *  in by the pipeline layer that knows it; empty until then. */
    std::string stage;

    /** Workload / input name when known (filled by sweep drivers). */
    std::string workload;

    /** Human-readable description. Deterministic kinds embed only
     *  deterministic quantities (see file comment). */
    std::string detail;

    /// @name Budget accounting, meaningful for budget kinds only.
    /// @{
    uint64_t limit = 0;  ///< The configured budget value.
    uint64_t used = 0;   ///< Amount charged when the budget tripped.
    /// @}

    bool budgetExhausted() const { return errorKindIsBudget(kind); }

    /** "stage: kind: detail [used N of limit M]" rendering (used for
     *  what() and CLI diagnostics). */
    std::string render() const;
};

/** The exception form of a StageErrorInfo. */
class StageError : public std::runtime_error
{
  public:
    explicit StageError(StageErrorInfo info)
        : std::runtime_error(info.render()), _info(std::move(info))
    {}

    StageError(ErrorKind kind, std::string stage, std::string detail)
        : StageError(make(kind, std::move(stage), std::move(detail)))
    {}

    const StageErrorInfo &info() const { return _info; }

    /** Annotates the producing stage if not already known (the stage
     *  boundary in pipeline::Session calls this on the way out). */
    void
    setStage(const std::string &stage)
    {
        if (_info.stage.empty())
            _info.stage = stage;
    }

  private:
    static StageErrorInfo
    make(ErrorKind kind, std::string stage, std::string detail)
    {
        StageErrorInfo i;
        i.kind = kind;
        i.stage = std::move(stage);
        i.detail = std::move(detail);
        return i;
    }

    StageErrorInfo _info;
};

} // namespace runtime
} // namespace msc
