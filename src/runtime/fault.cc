#include "runtime/fault.h"

#include <cstdlib>

namespace msc {
namespace runtime {

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector inj;
    return inj;
}

FaultInjector::FaultInjector()
{
    const char *spec = std::getenv("MSC_FAULT_INJECT");
    if (spec && *spec)
        configure(spec);
}

void
FaultInjector::configure(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(_mu);
    _sites.clear();
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string entry = spec.substr(pos, comma - pos);
        pos = comma + 1;
        size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0)
            continue;
        char *end = nullptr;
        unsigned long long n =
            std::strtoull(entry.c_str() + eq + 1, &end, 10);
        if (end && *end == '\0' && n > 0)
            _sites[entry.substr(0, eq)] = n;
    }
}

bool
FaultInjector::shouldFail(const char *site)
{
    std::lock_guard<std::mutex> lock(_mu);
    if (_sites.empty())
        return false;
    auto it = _sites.find(site);
    if (it == _sites.end() || it->second == 0)
        return false;
    --it->second;
    return true;
}

uint64_t
FaultInjector::remaining(const char *site) const
{
    std::lock_guard<std::mutex> lock(_mu);
    auto it = _sites.find(site);
    return it == _sites.end() ? 0 : it->second;
}

} // namespace runtime
} // namespace msc
