#include "fuzz/campaign.h"

#include <algorithm>
#include <mutex>

#include "fuzz/corpus.h"
#include "fuzz/shrink.h"
#include "ir/printer.h"
#include "report/sweep.h"

namespace msc {
namespace fuzz {

namespace {

/** Derives per-seed generator options: cycle the size class so one
 *  campaign covers tiny through large shapes. */
GenOptions
optionsForSeed(const CampaignOptions &opts, uint64_t seed)
{
    GenOptions g = opts.gen;
    g.sizeClass = unsigned(seed % 4);
    return g;
}

} // anonymous namespace

CampaignResult
runCampaign(const CampaignOptions &opts,
            const std::function<void(uint64_t, uint64_t)> &progress)
{
    CampaignResult result;
    result.executed = opts.count;

    std::mutex mu;
    std::vector<CampaignFailure> failures;

    report::SweepRunner runner(opts.jobs);
    runner.forEach(
        size_t(opts.count),
        [&](size_t i) {
            uint64_t seed = opts.seedBase + i;
            GenOptions gen = optionsForSeed(opts, seed);

            ir::Program prog;
            DiffResult diff;
            try {
                prog = generate(seed, gen);
                diff = runDifferential(prog, {}, opts.maxInsts,
                                       opts.budget);
            } catch (const std::exception &e) {
                diff.kind = DiffKind::GenError;
                diff.detail = e.what();
            }
            if (diff.ok())
                return;

            CampaignFailure fail;
            fail.seed = seed;
            fail.diff = diff;

            if (diff.kind != DiffKind::GenError) {
                // Never shrink non-terminating failures: each shrink
                // candidate would replay the full instruction/resource
                // budget, turning one slow seed into hundreds.
                bool shrinkable = diff.kind != DiffKind::NoHalt &&
                                  diff.kind != DiffKind::Timeout;
                if (opts.shrinkFailures && shrinkable) {
                    // Key the predicate on the failure kind and config
                    // so shrinking cannot drift into a different bug.
                    auto same_failure = [&](const ir::Program &p) {
                        DiffResult d = runDifferential(
                            p, {}, opts.maxInsts, opts.budget);
                        return d.kind == diff.kind &&
                               d.config == diff.config;
                    };
                    prog = shrinkProgram(prog, same_failure);
                    fail.diff = runDifferential(prog, {}, opts.maxInsts,
                                                opts.budget);
                }
                fail.program = ir::toString(prog);
                if (!opts.corpusDir.empty()) {
                    ReproInfo info;
                    info.seed = seed;
                    info.kind = diffKindName(fail.diff.kind);
                    info.config = fail.diff.config;
                    info.detail = fail.diff.detail;
                    fail.reproPath =
                        writeReproducer(opts.corpusDir, prog, info);
                }
            }

            std::lock_guard<std::mutex> lock(mu);
            failures.push_back(std::move(fail));
        },
        progress ? [&](size_t d, size_t t) { progress(d, t); }
                 : std::function<void(size_t, size_t)>{});

    std::sort(failures.begin(), failures.end(),
              [](const CampaignFailure &a, const CampaignFailure &b) {
                  return a.seed < b.seed;
              });
    result.failures = std::move(failures);
    return result;
}

} // namespace fuzz
} // namespace msc
