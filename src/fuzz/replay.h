/**
 * @file
 * Independent functional replay oracles.
 *
 * The differential harness needs executions that do *not* reuse the
 * interpreter's fetch loop, so a bug there (or in the trace cutter)
 * cannot cancel itself out. Both replayers here keep their own
 * register file, memory image, and control-flow cursor and validate
 * every record of the input stream against what the architectural
 * semantics (ir/semantics.h) say must happen:
 *
 *  - the instruction identity must match the replayer's own idea of
 *    the next program point (re-derived control flow);
 *  - recorded branch outcomes must match outcomes recomputed from the
 *    replayer's register file;
 *  - recorded effective addresses must match recomputed addresses;
 *  - the stream must end exactly at Halt (or entry-frame Ret).
 *
 * replayTrace() checks a raw interpreter trace (oracle C);
 * replayTaskStream() checks the dynamic task stream after partitioning
 * and cutting (oracle B) plus per-task structural invariants.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/taskstream.h"
#include "ir/program.h"
#include "profile/trace.h"

namespace msc {
namespace fuzz {

/** Outcome of one replay, with final architectural state. */
struct ReplayResult
{
    /** False when the stream was internally inconsistent. */
    bool ok = false;

    /** True when the stream ended in Halt / entry-frame Ret. */
    bool halted = false;

    /** First inconsistency found (empty when ok). */
    std::string error;

    /** Final register file. */
    std::array<int64_t, ir::NUM_REGS> regs{};

    /** Final data-memory image. */
    std::vector<int64_t> mem;

    /** Records consumed. */
    uint64_t instCount = 0;
};

/** Replays a raw interpreter trace against @p prog (oracle C). */
ReplayResult replayTrace(const ir::Program &prog,
                         const profile::Trace &trace);

/**
 * Replays the concatenated dynamic task stream against @p prog
 * (oracle B). Also checks stream structure: tasks are non-empty, every
 * instruction belongs to its dynamic task's static task (included
 * calls excepted), and each non-final task's successor entry matches
 * where control actually went.
 */
ReplayResult replayTaskStream(const ir::Program &prog,
                              const std::vector<arch::DynTask> &tasks,
                              const tasksel::TaskPartition &part);

} // namespace fuzz
} // namespace msc
