/**
 * @file
 * Greedy delta-debugging shrinker for failing fuzz programs.
 *
 * Given a program and a predicate "does this program still exhibit
 * the failure", the shrinker repeatedly tries semantics-simplifying
 * edits and keeps each one that (a) still verifies and (b) still
 * fails *in the same way* — callers should key their predicate on the
 * failure kind (and config) so a divergence cannot silently drift
 * into, say, a non-termination while shrinking.
 *
 * Edit classes, applied greedily until a fixed point:
 *  - drop whole uncalled functions (renumbering callees);
 *  - rewrite conditional branches to unconditional jumps, toward
 *    either arm;
 *  - delete single instructions (terminator shape preserved);
 *  - zero immediates;
 *  - remove unreachable blocks (renumbering targets).
 */

#pragma once

#include <functional>

#include "ir/program.h"

namespace msc {
namespace fuzz {

/** Returns true when the candidate still exhibits the failure. */
using FailurePredicate = std::function<bool(const ir::Program &)>;

/** Size/progress counters of one shrink run. */
struct ShrinkStats
{
    unsigned rounds = 0;
    unsigned editsApplied = 0;
    size_t blocksBefore = 0, blocksAfter = 0;
    size_t instsBefore = 0, instsAfter = 0;
};

/**
 * Shrinks @p prog while @p fails holds. The input program itself must
 * satisfy the predicate. Deterministic: same input, same result.
 *
 * @param maxRounds cap on greedy fixed-point rounds (each round scans
 *        every edit site once).
 */
ir::Program shrinkProgram(const ir::Program &prog,
                          const FailurePredicate &fails,
                          ShrinkStats *stats = nullptr,
                          unsigned maxRounds = 12);

} // namespace fuzz
} // namespace msc
