#include "fuzz/generator.h"

#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz/rng.h"
#include "ir/builder.h"
#include "ir/verifier.h"

namespace msc {
namespace fuzz {

using namespace ir;

namespace {

/**
 * Register discipline (see generator.h for the termination argument):
 *  - r8..r11   scratch integers (clobbered freely, also across calls)
 *  - r12..r15  pointer temporaries, masked right before every access
 *  - r16..r23  loop induction variables and bounds
 *  - r28+fid   per-function fuel (distinct per call-chain level, so a
 *              callee can never refill its caller's fuel)
 *  - f40..f43  scratch doubles
 */
constexpr RegId SCRATCH0 = 8;
constexpr unsigned N_SCRATCH = 4;
constexpr RegId PTR0 = 12;
constexpr unsigned N_PTR = 4;
constexpr RegId IV0 = 16;
constexpr unsigned N_IV = 8;
constexpr RegId FSCRATCH0 = 40;
constexpr unsigned N_FSCRATCH = 4;
constexpr RegId FUEL0 = 28;
constexpr unsigned MAX_FUNCS = 4;

struct GenCtx
{
    Rng &rng;
    const GenOptions &opts;
    FunctionBuilder &f;
    FuncId fid;
    unsigned numFuncs;
    RegId fuel;
    BlockId done;           ///< Function epilogue block.
    uint64_t addrMask;      ///< Aliasing window for masked addressing.
};

RegId scratch(Rng &rng) { return RegId(SCRATCH0 + rng.bounded(N_SCRATCH)); }
RegId ptrReg(Rng &rng) { return RegId(PTR0 + rng.bounded(N_PTR)); }
RegId ivReg(Rng &rng) { return RegId(IV0 + rng.bounded(N_IV)); }
RegId fscratch(Rng &rng)
{
    return RegId(FSCRATCH0 + rng.bounded(N_FSCRATCH));
}

/** Emits one random straight-line instruction. */
void
emitOp(GenCtx &g)
{
    Rng &rng = g.rng;
    FunctionBuilder &f = g.f;
    RegId d = scratch(rng), a = scratch(rng), b = scratch(rng);
    switch (rng.bounded(14)) {
      case 0: f.addi(d, a, rng.range(-64, 64)); break;
      case 1: f.sub(d, a, b); break;
      case 2: f.muli(d, a, rng.range(-7, 7)); break;
      case 3: f.mul(d, a, b); break;
      case 4:
        // Division by a register value: safeDiv semantics make any
        // value legal, including 0 and -1.
        rng.chance(1, 2) ? f.div(d, a, b) : f.rem(d, a, b);
        break;
      case 5: f.xor_(d, a, b); break;
      case 6: f.or_(d, a, b); break;
      case 7: f.andi(d, a, rng.range(0, 1023)); break;
      case 8:
        rng.chance(1, 2) ? f.shli(d, a, int64_t(rng.bounded(70)))
                         : f.srai(d, a, int64_t(rng.bounded(70)));
        break;
      case 9:
        rng.chance(1, 2) ? f.slt(d, a, b) : f.sne(d, a, b);
        break;
      case 10: {  // Masked load, register or absolute form.
        RegId p = ptrReg(rng);
        if (rng.chance(1, 4)) {
            f.loadAbs(d, rng.range(0, int64_t(g.opts.memWords) - 1));
        } else {
            f.andi(p, a, int64_t(g.addrMask));
            f.load(d, p, rng.range(0, int64_t(g.addrMask)));
        }
        break;
      }
      case 11: {  // Masked store.
        RegId p = ptrReg(rng);
        if (rng.chance(1, 4)) {
            f.storeAbs(a, rng.range(0, int64_t(g.opts.memWords) - 1));
        } else {
            f.andi(p, b, int64_t(g.addrMask));
            f.store(a, p, rng.range(0, int64_t(g.addrMask)));
        }
        break;
      }
      case 12:
        if (g.opts.floatOps) {
            RegId fd = fscratch(rng), fx = fscratch(rng),
                  fy = fscratch(rng);
            switch (rng.bounded(5)) {
              case 0: f.fadd(fd, fx, fy); break;
              case 1: f.fmul(fd, fx, fy); break;
              case 2: f.fdiv(fd, fx, fy); break;
              case 3: f.itof(fd, a); break;
              default: f.fslt(d, fx, fy); break;
            }
        } else {
            f.add(d, a, b);
        }
        break;
      default:
        if (g.opts.floatOps && rng.chance(1, 2))
            f.ftoi(d, fscratch(rng));
        else
            f.li(d, rng.range(-4096, 4096));
        break;
    }
}

void
emitBurst(GenCtx &g, unsigned len)
{
    for (unsigned i = 0; i < len; ++i)
        emitOp(g);
}

void emitRegion(GenCtx &g, unsigned depth);

/**
 * Emits the standard loop-header fuel guard as two blocks:
 *
 *   guard:  slei t, fuel, 0 ; br t -> exit  (ft: pay)
 *   pay:    subi fuel, fuel, 1 ...
 *
 * and leaves the insertion point in `pay`. Exiting on fuel <= 0
 * *before* decrementing keeps the guard correct even when an enclosing
 * loop already drained the fuel to zero.
 */
void
emitFuelGuard(GenCtx &g, BlockId exit)
{
    FunctionBuilder &f = g.f;
    BlockId pay = f.newBlock();
    RegId t = scratch(g.rng);
    f.slei(t, g.fuel, 0);
    f.br(t, exit, pay);
    f.setBlock(pay);
    f.subi(g.fuel, g.fuel, 1);
}

/** if/else reconverging at a join block. */
void
emitDiamond(GenCtx &g, unsigned depth)
{
    FunctionBuilder &f = g.f;
    Rng &rng = g.rng;
    BlockId then_b = f.newBlock(), else_b = f.newBlock(),
            join = f.newBlock();
    RegId c = scratch(rng);
    f.andi(c, scratch(rng), int64_t(rng.range(1, 7)));
    rng.chance(1, 2) ? f.br(c, then_b, else_b) : f.brz(c, then_b, else_b);
    f.setBlock(then_b);
    emitRegion(g, depth - 1);
    f.jmp(join);
    f.setBlock(else_b);
    emitRegion(g, depth - 1);
    rng.chance(1, 2) ? f.jmp(join) : f.fallthroughTo(join);
    f.setBlock(join);
    emitBurst(g, 1 + unsigned(rng.bounded(3)));
}

/** Counted loop; nested loops may reuse the same IV register — the
 *  fuel guard still bounds them. */
void
emitCountedLoop(GenCtx &g, unsigned depth)
{
    FunctionBuilder &f = g.f;
    Rng &rng = g.rng;
    RegId iv = ivReg(rng), bound = ivReg(rng), t = scratch(rng);
    if (bound == iv)
        bound = RegId(IV0 + (bound - IV0 + 1) % N_IV);
    BlockId head = f.newBlock(), body = f.newBlock(),
            latch = f.newBlock(), exit = f.newBlock();
    f.li(iv, 0);
    f.li(bound, rng.range(1, 9));
    f.fallthroughTo(head);
    f.setBlock(head);
    emitFuelGuard(g, exit);
    f.slt(t, iv, bound);
    f.brz(t, exit, body);
    f.setBlock(body);
    emitRegion(g, depth - 1);
    rng.chance(1, 2) ? f.jmp(latch) : f.fallthroughTo(latch);
    f.setBlock(latch);
    f.addi(iv, iv, 1);
    f.jmp(head);
    f.setBlock(exit);
    emitBurst(g, 1);
}

/** Data-dependent while loop: the exit test reads memory, so only the
 *  fuel guard proves termination. */
void
emitWhileLoop(GenCtx &g, unsigned depth)
{
    FunctionBuilder &f = g.f;
    Rng &rng = g.rng;
    RegId v = scratch(rng), t = scratch(rng), p = ptrReg(rng);
    BlockId head = f.newBlock(), body = f.newBlock(), exit = f.newBlock();
    f.fallthroughTo(head);
    f.setBlock(head);
    emitFuelGuard(g, exit);
    f.andi(p, v, int64_t(g.addrMask));
    f.load(t, p, 0);
    f.andi(t, t, int64_t(rng.range(1, 15)));
    f.brz(t, exit, body);
    f.setBlock(body);
    emitRegion(g, depth - 1);
    // Perturb the tested location so the loop can make progress.
    f.addi(v, v, rng.range(-3, 5));
    f.andi(p, v, int64_t(g.addrMask));
    f.store(v, p, 0);
    f.jmp(head);
    f.setBlock(exit);
    emitBurst(g, 1);
}

/**
 * Multi-entry (irreducible) loop region:
 *
 *   pre:  br c -> b      (ft: a)       two distinct loop entries
 *   a:    burst          (ft: b)
 *   b:    fuel guard -> exit; burst; br c2 -> a  (ft: exit)
 *
 * The loop {a, b} is entered at both a and b, so no natural-loop
 * nesting exists — exactly the shape structured task selectors and
 * loop analyses are most likely to mishandle.
 */
void
emitIrreducible(GenCtx &g, unsigned depth)
{
    FunctionBuilder &f = g.f;
    Rng &rng = g.rng;
    BlockId a = f.newBlock(), b = f.newBlock(), exit = f.newBlock();
    RegId c = scratch(rng);
    f.andi(c, scratch(rng), 1);
    f.br(c, b, a);
    f.setBlock(a);
    emitBurst(g, 1 + unsigned(rng.bounded(4)));
    if (depth > 1 && rng.chance(1, 3))
        emitRegion(g, 1);
    f.fallthroughTo(b);
    f.setBlock(b);
    emitFuelGuard(g, exit);
    emitBurst(g, 1 + unsigned(rng.bounded(3)));
    RegId c2 = scratch(rng);
    f.andi(c2, scratch(rng), 3);
    f.br(c2, a, exit);
    f.setBlock(exit);
    emitBurst(g, 1);
}

/** Switch ladder over sel & (k-1), k arms joining at one block. */
void
emitSwitch(GenCtx &g, unsigned depth)
{
    FunctionBuilder &f = g.f;
    Rng &rng = g.rng;
    unsigned k = rng.chance(1, 2) ? 2 : 4;
    RegId sel = scratch(rng), t = scratch(rng);
    f.andi(sel, scratch(rng), int64_t(k - 1));

    std::vector<BlockId> arms;
    for (unsigned i = 0; i < k; ++i)
        arms.push_back(f.newBlock());
    BlockId join = f.newBlock();

    for (unsigned i = 0; i + 1 < k; ++i) {
        BlockId next_test = f.newBlock();
        f.seqi(t, sel, int64_t(i));
        f.br(t, arms[i], next_test);
        f.setBlock(next_test);
    }
    f.jmp(arms[k - 1]);

    for (unsigned i = 0; i < k; ++i) {
        f.setBlock(arms[i]);
        emitBurst(g, 1 + unsigned(rng.bounded(3)));
        if (depth > 1 && i == 0)
            emitRegion(g, depth - 1);
        f.jmp(join);
    }
    f.setBlock(join);
    emitBurst(g, 1);
}

/** Call to a strictly higher-indexed function (no recursion). */
void
emitCall(GenCtx &g)
{
    FunctionBuilder &f = g.f;
    Rng &rng = g.rng;
    FuncId callee = g.fid + 1 +
        FuncId(rng.bounded(g.numFuncs - g.fid - 1));
    uint8_t nargs = uint8_t(rng.bounded(4));
    for (uint8_t i = 0; i < nargs; ++i)
        f.mov(RegId(REG_ARG0 + i), scratch(rng));
    f.call(callee, nargs);
    f.add(scratch(rng), scratch(rng), REG_RET);
}

void
emitRegion(GenCtx &g, unsigned depth)
{
    Rng &rng = g.rng;
    emitBurst(g, 1 + unsigned(rng.bounded(5)));
    if (depth == 0)
        return;

    bool can_call = g.fid + 1 < g.numFuncs;
    switch (rng.bounded(10)) {
      case 0:
      case 1:
        emitDiamond(g, depth);
        break;
      case 2:
      case 3:
        emitCountedLoop(g, depth);
        break;
      case 4:
        emitWhileLoop(g, depth);
        break;
      case 5:
        if (g.opts.irreducible)
            emitIrreducible(g, depth);
        else
            emitDiamond(g, depth);
        break;
      case 6:
        emitSwitch(g, depth);
        break;
      case 7:
        if (can_call)
            emitCall(g);
        else
            emitBurst(g, 2 + unsigned(rng.bounded(4)));
        break;
      case 8: {  // Rare data-dependent early exit to the epilogue.
        FunctionBuilder &f = g.f;
        BlockId cont = f.newBlock();
        RegId t = scratch(rng);
        f.andi(t, scratch(rng), 31);
        f.seqi(t, t, 7);
        f.br(t, g.done, cont);
        f.setBlock(cont);
        emitBurst(g, 1);
        break;
      }
      default:
        emitBurst(g, 2 + unsigned(rng.bounded(5)));
        break;
    }
}

/** Emits one whole function body. */
void
emitFunction(IRBuilder &b, Rng &rng, const GenOptions &opts, FuncId fid,
             unsigned num_funcs, bool is_entry)
{
    FunctionBuilder &f = b.function(
        is_entry ? "main" : "f" + std::to_string(fid));

    GenCtx g{rng, opts, f, fid, num_funcs, RegId(FUEL0 + fid),
             f.newBlock(), 0};
    // Aliasing window: small enough that random addresses collide.
    g.addrMask = (opts.memWords >= 1024 && rng.chance(1, 2))
        ? 255 : opts.memWords / 2 - 1;

    // Prologue: fuel, then seeded scratch state. Deeper functions get
    // geometrically less fuel, bounding the dynamic size of call
    // chains threaded through loops.
    unsigned fuel = fid == 0 ? opts.fuel : std::max(6u, opts.fuel >> (2 * fid));
    f.li(g.fuel, int64_t(fuel));
    for (unsigned i = 0; i < N_SCRATCH; ++i)
        f.li(RegId(SCRATCH0 + i), rng.range(-2048, 2048));
    for (unsigned i = 0; i < N_PTR; ++i)
        f.li(RegId(PTR0 + i), rng.range(0, 4095));
    if (opts.floatOps)
        for (unsigned i = 0; i < N_FSCRATCH; ++i)
            f.fli(RegId(FSCRATCH0 + i),
                  double(rng.range(-64, 64)) * 0.25);

    unsigned depth = is_entry ? 1 + std::min(opts.sizeClass, 3u) : 1;
    unsigned regions = is_entry
        ? 1 + opts.sizeClass + unsigned(rng.bounded(2))
        : 1 + unsigned(rng.bounded(2));
    for (unsigned i = 0; i < regions; ++i)
        emitRegion(g, depth);

    // fallthroughTo emits nothing; make sure the closing block is
    // never empty (the verifier rejects empty blocks).
    emitBurst(g, 1);
    f.fallthroughTo(g.done);
    f.setBlock(g.done);
    if (is_entry) {
        // Publish scratch state to fixed memory slots, then halt.
        for (unsigned i = 0; i < N_SCRATCH; ++i)
            f.storeAbs(RegId(SCRATCH0 + i), int64_t(i));
        f.halt();
    } else {
        f.mov(REG_RET, scratch(rng));
        f.ret();
    }
}

} // anonymous namespace

Program
generate(uint64_t seed, const GenOptions &opts)
{
    Rng rng(seed);
    IRBuilder b("fuzz_" + std::to_string(seed));

    unsigned num_funcs = 1;
    if (opts.maxFuncs > 1) {
        unsigned cap = std::min(opts.maxFuncs, MAX_FUNCS);
        num_funcs = 1 + unsigned(rng.bounded(cap));
    }

    // Register every function id up front so call sites can forward-
    // reference strictly higher-indexed callees.
    b.setEntry("main");
    b.functionId("main");
    for (unsigned i = 1; i < num_funcs; ++i)
        b.functionId("f" + std::to_string(i));

    b.setMemWords(size_t(opts.memWords));
    if (opts.initMemory) {
        unsigned words = 4 + unsigned(rng.bounded(28));
        for (unsigned i = 0; i < words; ++i)
            b.initWord(size_t(rng.bounded(opts.memWords)),
                       rng.range(-100000, 100000));
    }

    for (unsigned i = 0; i < num_funcs; ++i)
        emitFunction(b, rng, opts, FuncId(i), num_funcs, i == 0);

    // IRBuilder::build() verifies and throws on malformed IR; double-
    // check explicitly so a verifier regression cannot slip through.
    Program p = b.build();
    std::string err;
    if (!ir::verify(p, &err))
        throw std::runtime_error("fuzz generator produced invalid IR: " +
                                 err);
    return p;
}

} // namespace fuzz
} // namespace msc
