#include "fuzz/replay.h"

#include <sstream>

#include "ir/semantics.h"

namespace msc {
namespace fuzz {

using namespace ir;

namespace {

/**
 * The shared replay core: executes records one at a time, re-deriving
 * control flow and validating each record against its own state.
 */
class Replayer
{
  public:
    explicit Replayer(const Program &prog)
        : _prog(prog)
    {
        _res.mem.assign(prog.memWords, 0);
        for (size_t i = 0;
             i < prog.initData.size() && i < _res.mem.size(); ++i)
            _res.mem[i] = prog.initData[i];
        _fn = prog.entry;
        _blk = prog.functions[prog.entry].entry;
        _idx = 0;
    }

    bool failed() const { return !_res.error.empty(); }
    bool halted() const { return _res.halted; }

    /** Consumes one record; returns false on inconsistency or halt. */
    bool
    step(const profile::TraceEntry &rec)
    {
        if (_res.halted)
            return fail("record after Halt", rec);
        const Function &fn = _prog.functions[_fn];
        if (_blk >= fn.blocks.size())
            return fail("cursor left the CFG", rec);
        const BasicBlock &bb = fn.blocks[_blk];
        if (_idx >= bb.insts.size())
            return fail("cursor ran off block end", rec);

        if (rec.ref.func != _fn || rec.ref.block != _blk ||
            rec.ref.index != _idx) {
            std::ostringstream os;
            os << "control flow diverged: stream has f" << rec.ref.func
               << ":bb" << rec.ref.block << ":" << rec.ref.index
               << ", replay expects f" << _fn << ":bb" << _blk << ":"
               << _idx;
            return fail(os.str(), rec);
        }

        const Instruction &in = bb.insts[_idx];
        ++_res.instCount;

        BlockId next_blk = _blk;
        uint32_t next_idx = _idx + 1;
        FuncId next_fn = _fn;
        bool advanced = false;

        switch (in.op) {
          case Opcode::Halt:
            _res.halted = true;
            return false;

          case Opcode::Br:
          case Opcode::BrZ: {
            bool taken = in.op == Opcode::Br ? _regs[in.src1] != 0
                                             : _regs[in.src1] == 0;
            if (taken != rec.taken)
                return fail(taken ? "branch recorded not-taken but "
                                    "replay takes it"
                                  : "branch recorded taken but replay "
                                    "falls through", rec);
            next_blk = taken ? in.target : bb.fallthrough;
            next_idx = 0;
            advanced = true;
            break;
          }

          case Opcode::Jmp:
            next_blk = in.target;
            next_idx = 0;
            advanced = true;
            break;

          case Opcode::Call:
            _stack.push_back({_fn, bb.fallthrough});
            next_fn = in.callee;
            next_blk = _prog.functions[in.callee].entry;
            next_idx = 0;
            advanced = true;
            break;

          case Opcode::Ret:
            if (_stack.empty()) {
                _res.halted = true;  // Ret from entry terminates.
                return false;
            }
            next_fn = _stack.back().func;
            next_blk = _stack.back().block;
            next_idx = 0;
            _stack.pop_back();
            advanced = true;
            break;

          case Opcode::Nop:
            break;

          case Opcode::Load:
          case Opcode::FLoad: {
            uint64_t a = addrOf(in.src1, in.imm);
            if (a >= _res.mem.size())
                return fail("load out of bounds", rec);
            if (a != rec.addr)
                return fail(addrMsg("load", a, rec.addr), rec);
            write(in.dst, _res.mem[a]);
            break;
          }
          case Opcode::Store:
          case Opcode::FStore: {
            uint64_t a = addrOf(in.src2, in.imm);
            if (a >= _res.mem.size())
                return fail("store out of bounds", rec);
            if (a != rec.addr)
                return fail(addrMsg("store", a, rec.addr), rec);
            _res.mem[a] = _regs[in.src1];
            break;
          }

          default: {
            const OpInfo &oi = in.info();
            if (!oi.hasDst)
                return fail("unexpected opcode in stream", rec);
            int64_t a = oi.readsSrc1 ? _regs[in.src1] : 0;
            int64_t b = (oi.readsSrc2 && in.src2 != NO_REG)
                ? _regs[in.src2] : in.imm;
            write(in.dst, evalScalar(in.op, a, b));
            break;
          }
        }

        if (!advanced && _idx + 1 >= bb.insts.size()) {
            next_blk = bb.fallthrough;
            next_idx = 0;
        }
        _fn = next_fn;
        _blk = next_blk;
        _idx = next_idx;
        return true;
    }

    ReplayResult
    finish()
    {
        _res.regs = _regs;
        _res.ok = _res.error.empty() && _res.halted;
        if (_res.error.empty() && !_res.halted)
            _res.error = "stream ended before Halt";
        return std::move(_res);
    }

  private:
    bool
    fail(const std::string &what, const profile::TraceEntry &rec)
    {
        if (_res.error.empty()) {
            std::ostringstream os;
            os << what << " (record " << _res.instCount << " at f"
               << rec.ref.func << ":bb" << rec.ref.block << ":"
               << rec.ref.index << ")";
            _res.error = os.str();
        }
        return false;
    }

    static std::string
    addrMsg(const char *op, uint64_t computed, uint64_t recorded)
    {
        std::ostringstream os;
        os << op << " address mismatch: replay computes " << computed
           << ", stream recorded " << recorded;
        return os.str();
    }

    uint64_t
    addrOf(RegId base, int64_t off) const
    {
        int64_t a = (base != NO_REG ? _regs[base] : 0) + off;
        return uint64_t(a);
    }

    void
    write(RegId d, int64_t v)
    {
        if (d != REG_ZERO)
            _regs[d] = v;
    }

    struct RetSite { FuncId func; BlockId block; };

    const Program &_prog;
    ReplayResult _res;
    std::array<int64_t, NUM_REGS> _regs{};
    std::vector<RetSite> _stack;
    FuncId _fn;
    BlockId _blk;
    uint32_t _idx;
};

} // anonymous namespace

ReplayResult
replayTrace(const Program &prog, const profile::Trace &trace)
{
    Replayer r(prog);
    for (size_t i = 0; i < trace.entries.size(); ++i) {
        if (!r.step(trace.entries[i])) {
            // A valid stream stops exactly at its final record.
            if (r.halted() && i + 1 != trace.entries.size()) {
                ReplayResult res = r.finish();
                res.ok = false;
                res.error = "trace continues past Halt";
                return res;
            }
            break;
        }
    }
    return r.finish();
}

ReplayResult
replayTaskStream(const Program &prog,
                 const std::vector<arch::DynTask> &tasks,
                 const tasksel::TaskPartition &part)
{
    Replayer r(prog);
    auto structural = [&](const std::string &msg) {
        ReplayResult res = r.finish();
        res.ok = false;
        res.error = msg;
        return res;
    };

    for (size_t ti = 0; ti < tasks.size(); ++ti) {
        const arch::DynTask &dt = tasks[ti];
        if (dt.insts.empty())
            return structural("dynamic task " + std::to_string(ti) +
                              " is empty");
        if (dt.staticTask >= part.tasks.size())
            return structural("dynamic task " + std::to_string(ti) +
                              " has invalid static task id");
        const tasksel::Task &st = part.tasks[dt.staticTask];

        // Every dynamic task must begin at its static task's entry.
        const arch::DynInst &first = dt.insts.front();
        if (first.ref.func != st.func || first.ref.block != st.entry ||
            first.ref.index != 0)
            return structural("dynamic task " + std::to_string(ti) +
                              " does not begin at its static entry");

        // At call depth zero, every executed block must belong to the
        // static task. Included calls run at depth > 0 inside other
        // functions; their blocks are exempt by construction.
        int depth = 0;
        bool track = true;
        for (const arch::DynInst &di : dt.insts) {
            if (track && depth == 0 &&
                part.taskIdOf(di.ref.func, di.ref.block) != dt.staticTask)
                return structural(
                    "dynamic task " + std::to_string(ti) +
                    " executes a block owned by another task");
            const Instruction &in = prog.functions[di.ref.func]
                .blocks[di.ref.block].insts[di.ref.index];
            if (in.op == Opcode::Call)
                ++depth;
            else if (in.op == Opcode::Ret) {
                if (depth == 0)
                    track = false;  // Task ends past a Ret boundary.
                else
                    --depth;
            }

            profile::TraceEntry rec{di.ref, di.addr, di.taken};
            if (!r.step(rec)) {
                bool is_last_record =
                    ti + 1 == tasks.size() && &di == &dt.insts.back();
                if (r.halted() && !is_last_record)
                    return structural("task stream continues past Halt");
                if (!r.halted() || !is_last_record)
                    return r.finish();
            }
        }

        // Successor linkage: the next dynamic task must begin where
        // this one said control goes.
        if (ti + 1 < tasks.size()) {
            const arch::DynInst &nf = tasks[ti + 1].insts.front();
            if (dt.nextEntry.func != nf.ref.func ||
                dt.nextEntry.block != nf.ref.block)
                return structural(
                    "dynamic task " + std::to_string(ti) +
                    " successor entry disagrees with next task");
        } else if (!dt.last) {
            return structural("final dynamic task not marked last");
        }
    }
    return r.finish();
}

} // namespace fuzz
} // namespace msc
