#include "fuzz/oracle.h"

#include <sstream>
#include <stdexcept>

#include "arch/taskstream.h"
#include "fuzz/replay.h"
#include "profile/interpreter.h"
#include "profile/profiler.h"
#include "tasksel/pverify.h"
#include "tasksel/selector.h"
#include "tasksel/transforms.h"

namespace msc {
namespace fuzz {

const char *
diffKindName(DiffKind k)
{
    switch (k) {
      case DiffKind::Ok:               return "ok";
      case DiffKind::GenError:         return "gen-error";
      case DiffKind::NoHalt:           return "no-halt";
      case DiffKind::Timeout:          return "timeout";
      case DiffKind::TraceDivergence:  return "trace-divergence";
      case DiffKind::PartitionInvalid: return "partition-invalid";
      case DiffKind::CutError:         return "cut-error";
      case DiffKind::StreamDivergence: return "stream-divergence";
      case DiffKind::StateDivergence:  return "state-divergence";
    }
    return "unknown";
}

std::vector<DiffConfig>
defaultConfigs()
{
    using tasksel::Strategy;
    std::vector<DiffConfig> cfgs;
    auto add = [&](const char *name, Strategy s,
                   unsigned max_targets, bool dd_term) {
        DiffConfig c;
        c.name = name;
        c.sel.strategy = s;
        c.sel.maxTargets = max_targets;
        c.sel.ddTerminateAtDependence = dd_term;
        c.sel.taskSizeHeuristic = false;
        c.sel.hoistInductionVars = false;
        cfgs.push_back(std::move(c));
    };
    add("bb", Strategy::BasicBlock, 4, false);
    add("cf", Strategy::ControlFlow, 4, false);
    add("cf-n2", Strategy::ControlFlow, 2, false);
    add("dd", Strategy::DataDependence, 4, false);
    add("dd-term", Strategy::DataDependence, 4, true);

    // Transform-enabled pipeline: IV hoisting rewrites register
    // lifetimes, so only the memory image and halt status are
    // comparable across the transform boundary.
    DiffConfig x;
    x.name = "dd-xform";
    x.sel.strategy = Strategy::DataDependence;
    x.sel.taskSizeHeuristic = true;
    x.sel.hoistInductionVars = true;
    x.transforms = true;
    x.bitExact = false;
    cfgs.push_back(std::move(x));
    return cfgs;
}

namespace {

/** Describes the first register / memory word / count mismatch. */
std::string
describeStateDiff(const profile::Interpreter &ref,
                  const ReplayResult &got, bool bit_exact)
{
    std::ostringstream os;
    if (bit_exact) {
        for (unsigned r = 0; r < ir::NUM_REGS; ++r) {
            if (ref.regs()[r] != got.regs[r]) {
                os << "r" << r << ": reference " << ref.regs()[r]
                   << ", pipeline " << got.regs[r];
                return os.str();
            }
        }
        if (ref.instCount() != got.instCount) {
            os << "instruction count: reference " << ref.instCount()
               << ", pipeline " << got.instCount;
            return os.str();
        }
    }
    const auto &m1 = ref.memory();
    const auto &m2 = got.mem;
    if (m1.size() != m2.size()) {
        os << "memory size: reference " << m1.size() << ", pipeline "
           << m2.size();
        return os.str();
    }
    for (size_t w = 0; w < m1.size(); ++w) {
        if (m1[w] != m2[w]) {
            os << "mem[" << w << "]: reference " << m1[w]
               << ", pipeline " << m2[w];
            return os.str();
        }
    }
    return "";
}

DiffResult
failure(DiffKind kind, const std::string &config,
        const std::string &detail)
{
    DiffResult r;
    r.kind = kind;
    r.config = config;
    r.detail = detail;
    return r;
}

DiffResult
runDifferentialImpl(const ir::Program &prog,
                    const std::vector<DiffConfig> &configs,
                    uint64_t max_insts, runtime::Governor *gov)
{
    static const std::vector<DiffConfig> defaults = defaultConfigs();
    const std::vector<DiffConfig> &cfgs =
        configs.empty() ? defaults : configs;

    // Oracle A: reference interpretation, capturing the trace so the
    // final state and the dynamic stream come from the same run.
    profile::Interpreter ref(prog);
    profile::Trace ref_trace = ref.trace(max_insts, gov);
    if (!ref_trace.completed)
        return failure(DiffKind::NoHalt, "",
                       "reference run exceeded " +
                       std::to_string(max_insts) + " instructions");

    // Oracle C: independent replay of the raw trace.
    {
        ReplayResult c = replayTrace(prog, ref_trace);
        if (!c.ok)
            return failure(DiffKind::TraceDivergence, "", c.error);
        std::string diff = describeStateDiff(ref, c, true);
        if (!diff.empty())
            return failure(DiffKind::StateDivergence, "trace-replay",
                           diff);
    }

    // Oracle B: the task pipeline under every config.
    for (const DiffConfig &cfg : cfgs) {
        ir::Program p = prog;
        if (cfg.transforms) {
            tasksel::unrollSmallLoops(p, cfg.sel.loopThresh, 16, gov);
            if (cfg.sel.hoistInductionVars)
                tasksel::hoistInductionVariables(p, gov);
        }
        p.computeCfg();
        p.layout();

        profile::Profile prof;
        tasksel::TaskPartition part;
        try {
            prof = profile::profileProgram(p, max_insts, gov);
            part = tasksel::selectTasks(p, prof, cfg.sel, gov);
        } catch (const runtime::StageError &e) {
            if (e.info().budgetExhausted() ||
                e.info().kind == runtime::ErrorKind::Cancelled)
                throw;  // budget/deadline -> Timeout at the boundary
            return failure(DiffKind::PartitionInvalid, cfg.name,
                           e.what());
        } catch (const std::exception &e) {
            return failure(DiffKind::PartitionInvalid, cfg.name,
                           e.what());
        }
        std::string err;
        if (!tasksel::verifyPartition(part, cfg.sel, &err))
            return failure(DiffKind::PartitionInvalid, cfg.name, err);

        profile::Interpreter itp(p);
        profile::Trace trace = itp.trace(max_insts, gov);
        if (!trace.completed)
            return failure(DiffKind::NoHalt, cfg.name,
                           "transformed program exceeded budget");

        std::vector<arch::DynTask> stream;
        try {
            stream = arch::cutTasks(trace, part);
        } catch (const std::exception &e) {
            return failure(DiffKind::CutError, cfg.name, e.what());
        }

        ReplayResult b = replayTaskStream(p, stream, part);
        if (!b.ok)
            return failure(DiffKind::StreamDivergence, cfg.name,
                           b.error);

        std::string diff = describeStateDiff(ref, b, cfg.bitExact);
        if (!diff.empty())
            return failure(DiffKind::StateDivergence, cfg.name, diff);
    }

    return DiffResult{};
}

} // anonymous namespace

DiffResult
runDifferential(const ir::Program &prog,
                const std::vector<DiffConfig> &configs,
                uint64_t max_insts, const runtime::ExecBudget &budget)
{
    if (budget.unlimited())
        return runDifferentialImpl(prog, configs, max_insts, nullptr);

    // One Governor spans every oracle: the budget bounds the whole
    // differential, so an adversarial program cannot stall a campaign
    // in *any* oracle (the reference run, a transform, profiling,
    // selection, or a trace).
    runtime::Governor gov(budget);
    try {
        return runDifferentialImpl(prog, configs, max_insts, &gov);
    } catch (const runtime::StageError &e) {
        if (e.info().budgetExhausted() ||
            e.info().kind == runtime::ErrorKind::Cancelled)
            return failure(DiffKind::Timeout, "", e.info().render());
        throw;
    }
}

} // namespace fuzz
} // namespace msc
