/**
 * @file
 * Seeded random well-formed mini-IR program generator.
 *
 * Produces structurally adversarial but always-valid programs for the
 * differential fuzz harness: nested counted and data-dependent loops,
 * diamonds, switch ladders, multi-entry (irreducible) loop regions,
 * cross-function calls, and loads/stores whose addresses are masked
 * into a small window so aliasing is frequent but never out of bounds.
 *
 * Two hard guarantees, both required by the oracle stack:
 *
 *  1. Validity: every generated program passes ir::verify (the
 *     generator throws if it ever produces one that does not).
 *  2. Termination: every program halts. Each function dedicates a
 *     fuel register decremented at every loop header; when it reaches
 *     zero all loops exit, and calls only target strictly
 *     higher-indexed functions, so dynamic instruction counts are
 *     bounded for any CFG shape the generator can emit.
 */

#pragma once

#include <cstdint>

#include "ir/program.h"

namespace msc {
namespace fuzz {

/** Knobs of the random program generator. */
struct GenOptions
{
    /** Scales region count and nesting depth (0 = tiny .. 3 = large). */
    unsigned sizeClass = 2;

    /** Maximum number of functions (>= 1; 1 disables calls). */
    unsigned maxFuncs = 3;

    /** Data memory words (power of two; addresses are masked to it). */
    uint64_t memWords = 1u << 12;

    /** Loop-header fuel per function invocation (bounds back edges). */
    unsigned fuel = 48;

    /** Emit multi-entry (irreducible) loop regions. */
    bool irreducible = true;

    /** Emit floating-point arithmetic. */
    bool floatOps = true;

    /** Seed a few words of initial memory. */
    bool initMemory = true;
};

/**
 * Generates one program, deterministic in @p seed.
 * @throws std::runtime_error if the generated program fails
 *         verification (a generator bug, not an input property).
 */
ir::Program generate(uint64_t seed, const GenOptions &opts = {});

} // namespace fuzz
} // namespace msc
