/**
 * @file
 * Reproducer corpus: standalone `.mir` files under tests/corpus/.
 *
 * Every divergence the fuzzer finds is shrunk and written as one
 * self-contained textual-IR file with a comment header recording the
 * seed, failing config, and failure kind. The committed corpus is
 * replayed green by the test_fuzz_corpus ctest target, turning every
 * past bug into a permanent regression test.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.h"

namespace msc {
namespace fuzz {

/** Metadata recorded in a reproducer's comment header. */
struct ReproInfo
{
    uint64_t seed = 0;
    std::string kind;       ///< diffKindName() of the failure.
    std::string config;     ///< Failing pipeline config name.
    std::string detail;     ///< First line of the divergence detail.
};

/** Renders a standalone reproducer (header comments + textual IR). */
std::string reproducerText(const ir::Program &prog,
                           const ReproInfo &info);

/**
 * Writes a reproducer into @p dir (created when missing) as
 * `<kind>-seed<seed>.mir`. @return the path written.
 */
std::string writeReproducer(const std::string &dir,
                            const ir::Program &prog,
                            const ReproInfo &info);

/** All `.mir` files under @p dir, sorted; empty when dir is absent. */
std::vector<std::string> corpusFiles(const std::string &dir);

/** Parses one reproducer file. @throws runtime::StageError (Io) on an
 *  unreadable file; parser errors propagate from ir::parseProgram. */
ir::Program loadReproducer(const std::string &path);

} // namespace fuzz
} // namespace msc
