#include "fuzz/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ir/parser.h"
#include "ir/printer.h"
#include "runtime/error.h"

namespace msc {
namespace fuzz {

namespace fs = std::filesystem;

std::string
reproducerText(const ir::Program &prog, const ReproInfo &info)
{
    std::ostringstream os;
    os << "; fuzz reproducer\n";
    os << "; seed:   " << info.seed << "\n";
    os << "; kind:   " << info.kind << "\n";
    if (!info.config.empty())
        os << "; config: " << info.config << "\n";
    if (!info.detail.empty()) {
        // Keep the header one line per field; truncate at a newline.
        std::string d = info.detail.substr(0, info.detail.find('\n'));
        os << "; detail: " << d << "\n";
    }
    os << ir::toString(prog);
    return os.str();
}

std::string
writeReproducer(const std::string &dir, const ir::Program &prog,
                const ReproInfo &info)
{
    fs::create_directories(dir);
    std::string name = info.kind.empty() ? "failure" : info.kind;
    std::string path =
        (fs::path(dir) /
         (name + "-seed" + std::to_string(info.seed) + ".mir"))
            .string();
    std::ofstream out(path);
    if (!out)
        throw runtime::StageError(runtime::ErrorKind::Io, "corpus",
                                  "cannot write reproducer: " + path);
    out << reproducerText(prog, info);
    return path;
}

std::vector<std::string>
corpusFiles(const std::string &dir)
{
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir, ec)) {
        if (e.is_regular_file() && e.path().extension() == ".mir")
            files.push_back(e.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

ir::Program
loadReproducer(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw runtime::StageError(runtime::ErrorKind::Io, "corpus",
                                  "cannot read reproducer: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return ir::parseProgram(text.str());
}

} // namespace fuzz
} // namespace msc
