/**
 * @file
 * Deterministic RNG for fuzzing and property tests.
 *
 * One generator, shared by the fuzz program generator and the
 * randomized tests, so "seed N" means the same byte stream everywhere.
 * Bounded draws use Lemire's nearly-divisionless rejection method
 * rather than `raw % mod`: the modulo shortcut keeps only low bits and
 * is measurably biased for bounds that do not divide 2^64, which is
 * exactly the wrong property for a fuzzer trying to hit rare shapes.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace msc {
namespace fuzz {

/** Canonical splitmix64: Weyl counter + finalizing mixer (period 2^64). */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : _s(seed) {}

    /** Next raw 64-bit draw. */
    uint64_t
    next()
    {
        _s += GOLDEN;
        return mix(_s);
    }

    /**
     * Uniform draw in [0, bound). bound == 0 returns 0.
     * Unbiased (Lemire 2019): multiply-shift with a rejection loop on
     * the low half.
     */
    uint64_t
    bounded(uint64_t bound)
    {
        if (bound <= 1)
            return 0;
        unsigned __int128 m = (unsigned __int128)next() * bound;
        uint64_t lo = uint64_t(m);
        if (lo < bound) {
            uint64_t threshold = uint64_t(-bound) % bound;
            while (lo < threshold) {
                m = (unsigned __int128)next() * bound;
                lo = uint64_t(m);
            }
        }
        return uint64_t(m >> 64);
    }

    /** Uniform draw in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + int64_t(bounded(uint64_t(hi - lo) + 1));
    }

    /** True with probability num/den. */
    bool chance(uint64_t num, uint64_t den) { return bounded(den) < num; }

    /** One of the elements of @p v (v must be non-empty). */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[size_t(bounded(v.size()))];
    }

    /** The splitmix64 Weyl increment (golden ratio). */
    static constexpr uint64_t GOLDEN = 0x9e3779b97f4a7c15ull;

    /**
     * The splitmix64 finalizing mixer, exposed for content hashing
     * (pipeline artifact keys): a bijective avalanche over 64 bits.
     */
    static uint64_t
    mix(uint64_t x)
    {
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

  private:
    uint64_t _s;
};

} // namespace fuzz
} // namespace msc
