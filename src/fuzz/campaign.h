/**
 * @file
 * Fuzz campaign driver: generate -> differential check -> shrink ->
 * write reproducer, over a seed range, in parallel.
 *
 * Seeds are independent, so the campaign fans out on
 * report::SweepRunner's worker pool; results are deterministic for a
 * given seed range regardless of worker count.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/oracle.h"

namespace msc {
namespace fuzz {

/** Campaign knobs. */
struct CampaignOptions
{
    /** First seed (inclusive). */
    uint64_t seedBase = 0;

    /** Number of seeds to run. */
    uint64_t count = 200;

    /** Worker threads; 0 picks the hardware concurrency. */
    unsigned jobs = 1;

    /** Program-shape knobs, shared by every seed (sizeClass cycles
     *  seed-dependently on top of this base). */
    GenOptions gen;

    /** Per-oracle dynamic instruction budget. */
    uint64_t maxInsts = 2'000'000;

    /** Resource budget for each seed's whole differential (fuel /
     *  deadline / heap watermark; see runtime/budget.h). Exhaustion
     *  records the seed as a DiffKind::Timeout failure instead of
     *  hanging the campaign. Default: unlimited. */
    runtime::ExecBudget budget;

    /** Shrink failing programs before reporting. NoHalt/Timeout
     *  failures are never shrunk: every shrink candidate of a
     *  non-terminating program replays the full budget, so shrinking
     *  them *is* the hang the budget exists to prevent. */
    bool shrinkFailures = true;

    /** When non-empty, write shrunk reproducers into this directory. */
    std::string corpusDir;
};

/** One failing seed. */
struct CampaignFailure
{
    uint64_t seed = 0;
    DiffResult diff;

    /** Path of the written reproducer (empty when not written). */
    std::string reproPath;

    /** Shrunk textual IR of the failing program. */
    std::string program;
};

/** Aggregate campaign outcome. */
struct CampaignResult
{
    uint64_t executed = 0;
    std::vector<CampaignFailure> failures;   ///< Sorted by seed.

    bool ok() const { return failures.empty(); }
};

/**
 * Runs the campaign. @p progress, when set, is called after every
 * completed seed with (done, total); it may be invoked concurrently.
 */
CampaignResult runCampaign(
    const CampaignOptions &opts,
    const std::function<void(uint64_t, uint64_t)> &progress = {});

} // namespace fuzz
} // namespace msc
