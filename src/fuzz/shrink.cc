#include "fuzz/shrink.h"

#include <vector>

#include "ir/verifier.h"

namespace msc {
namespace fuzz {

using namespace ir;

namespace {

size_t
totalBlocks(const Program &p)
{
    size_t n = 0;
    for (const auto &f : p.functions)
        n += f.blocks.size();
    return n;
}

size_t
totalInsts(const Program &p)
{
    size_t n = 0;
    for (const auto &f : p.functions)
        for (const auto &b : f.blocks)
            n += b.insts.size();
    return n;
}

/** Recomputes derived state and checks the candidate is still valid
 *  and still failing; commits it into @p current on success. */
bool
accept(Program &candidate, const FailurePredicate &fails,
       Program &current)
{
    candidate.computeCfg();
    if (!verify(candidate, nullptr))
        return false;
    candidate.layout();
    if (!fails(candidate))
        return false;
    current = std::move(candidate);
    return true;
}

/** Removes blocks unreachable from the entry, renumbering ids.
 *  Returns false when nothing was removable. */
bool
removeUnreachable(Function &f)
{
    f.computeCfg();
    std::vector<bool> seen(f.blocks.size(), false);
    std::vector<BlockId> work{f.entry};
    seen[f.entry] = true;
    while (!work.empty()) {
        BlockId b = work.back();
        work.pop_back();
        for (BlockId s : f.blocks[b].succs) {
            if (s < f.blocks.size() && !seen[s]) {
                seen[s] = true;
                work.push_back(s);
            }
        }
    }

    std::vector<BlockId> remap(f.blocks.size(), INVALID_BLOCK);
    BlockId next = 0;
    for (BlockId b = 0; b < f.blocks.size(); ++b)
        if (seen[b])
            remap[b] = next++;
    if (next == f.blocks.size())
        return false;

    std::vector<BasicBlock> kept;
    kept.reserve(next);
    for (BlockId b = 0; b < f.blocks.size(); ++b) {
        if (!seen[b])
            continue;
        BasicBlock blk = std::move(f.blocks[b]);
        blk.id = remap[b];
        // A block whose terminator ignores the fall-through arc may
        // reference an unreachable block there; drop the stale arc.
        if (!blk.insts.empty()) {
            Opcode t = blk.insts.back().op;
            if (t == Opcode::Jmp || t == Opcode::Ret ||
                t == Opcode::Halt)
                blk.fallthrough = INVALID_BLOCK;
        }
        if (blk.fallthrough != INVALID_BLOCK)
            blk.fallthrough = remap[blk.fallthrough];
        for (auto &in : blk.insts)
            if (in.op == Opcode::Br || in.op == Opcode::BrZ ||
                in.op == Opcode::Jmp)
                in.target = remap[in.target];
        kept.push_back(std::move(blk));
    }
    f.blocks = std::move(kept);
    f.entry = remap[f.entry];
    return true;
}

/** One pass of a single edit class; returns edits accepted. */
unsigned
passRemoveUnreachable(Program &cur, const FailurePredicate &fails)
{
    unsigned applied = 0;
    for (size_t fi = 0; fi < cur.functions.size(); ++fi) {
        Program cand = cur;
        if (!removeUnreachable(cand.functions[fi]))
            continue;
        if (accept(cand, fails, cur))
            ++applied;
    }
    return applied;
}

unsigned
passDropFunctions(Program &cur, const FailurePredicate &fails)
{
    unsigned applied = 0;
    bool changed = true;
    while (changed && cur.functions.size() > 1) {
        changed = false;
        for (FuncId fid = 0; fid < cur.functions.size(); ++fid) {
            if (fid == cur.entry)
                continue;
            bool called = false;
            for (const auto &f : cur.functions)
                for (const auto &b : f.blocks)
                    for (const auto &in : b.insts)
                        if (in.op == Opcode::Call && in.callee == fid)
                            called = true;
            if (called)
                continue;
            Program cand = cur;
            cand.functions.erase(cand.functions.begin() + fid);
            for (auto &f : cand.functions) {
                if (f.id > fid)
                    --f.id;
                for (auto &b : f.blocks)
                    for (auto &in : b.insts)
                        if (in.op == Opcode::Call && in.callee > fid)
                            --in.callee;
            }
            if (cand.entry > fid)
                --cand.entry;
            if (accept(cand, fails, cur)) {
                ++applied;
                changed = true;
                break;  // Ids shifted; restart the scan.
            }
        }
    }
    return applied;
}

unsigned
passBranchToJump(Program &cur, const FailurePredicate &fails)
{
    unsigned applied = 0;
    for (size_t fi = 0; fi < cur.functions.size(); ++fi) {
        for (size_t bi = 0; bi < cur.functions[fi].blocks.size(); ++bi) {
            const BasicBlock &b = cur.functions[fi].blocks[bi];
            if (b.insts.empty())
                continue;
            const Instruction &t = b.insts.back();
            if (t.op != Opcode::Br && t.op != Opcode::BrZ)
                continue;
            // Two candidates: pin the branch toward either arm.
            BlockId arms[2] = {t.target, b.fallthrough};
            for (BlockId arm : arms) {
                if (arm == INVALID_BLOCK)
                    continue;
                Program cand = cur;
                BasicBlock &cb = cand.functions[fi].blocks[bi];
                Instruction jmp;
                jmp.op = Opcode::Jmp;
                jmp.target = arm;
                cb.insts.back() = jmp;
                cb.fallthrough = INVALID_BLOCK;
                if (accept(cand, fails, cur)) {
                    ++applied;
                    break;
                }
            }
        }
    }
    return applied;
}

unsigned
passDeleteInsts(Program &cur, const FailurePredicate &fails)
{
    unsigned applied = 0;
    for (size_t fi = 0; fi < cur.functions.size(); ++fi) {
        for (size_t bi = 0; bi < cur.functions[fi].blocks.size(); ++bi) {
            size_t ii = 0;
            while (ii < cur.functions[fi].blocks[bi].insts.size()) {
                const BasicBlock &b = cur.functions[fi].blocks[bi];
                if (b.insts.size() <= 1) {
                    break;  // Never empty a block.
                }
                const Instruction &in = b.insts[ii];
                // Branch shape is handled by passBranchToJump; keep
                // other terminators so the block stays terminated.
                if (in.op == Opcode::Br || in.op == Opcode::BrZ ||
                    in.op == Opcode::Jmp || in.op == Opcode::Ret ||
                    in.op == Opcode::Halt) {
                    ++ii;
                    continue;
                }
                Program cand = cur;
                auto &insts = cand.functions[fi].blocks[bi].insts;
                insts.erase(insts.begin() + ii);
                if (accept(cand, fails, cur))
                    ++applied;  // Same index now names the next inst.
                else
                    ++ii;
            }
        }
    }
    return applied;
}

unsigned
passZeroImms(Program &cur, const FailurePredicate &fails)
{
    unsigned applied = 0;
    for (size_t fi = 0; fi < cur.functions.size(); ++fi) {
        for (size_t bi = 0; bi < cur.functions[fi].blocks.size(); ++bi) {
            // Re-index from `cur` every iteration: accept() replaces
            // the whole program on success, so any reference held
            // across it dangles.
            for (size_t ii = 0;
                 ii < cur.functions[fi].blocks[bi].insts.size(); ++ii) {
                const Instruction &in =
                    cur.functions[fi].blocks[bi].insts[ii];
                if (in.imm == 0 || in.isControl())
                    continue;
                Program cand = cur;
                cand.functions[fi].blocks[bi].insts[ii].imm = 0;
                if (accept(cand, fails, cur))
                    ++applied;
            }
        }
    }
    return applied;
}

} // anonymous namespace

Program
shrinkProgram(const Program &prog, const FailurePredicate &fails,
              ShrinkStats *stats, unsigned max_rounds)
{
    Program cur = prog;
    ShrinkStats st;
    st.blocksBefore = totalBlocks(cur);
    st.instsBefore = totalInsts(cur);

    for (unsigned round = 0; round < max_rounds; ++round) {
        unsigned applied = 0;
        applied += passDropFunctions(cur, fails);
        applied += passBranchToJump(cur, fails);
        applied += passRemoveUnreachable(cur, fails);
        applied += passDeleteInsts(cur, fails);
        applied += passZeroImms(cur, fails);
        st.rounds = round + 1;
        st.editsApplied += applied;
        if (applied == 0)
            break;
    }

    st.blocksAfter = totalBlocks(cur);
    st.instsAfter = totalInsts(cur);
    if (stats)
        *stats = st;
    return cur;
}

} // namespace fuzz
} // namespace msc
