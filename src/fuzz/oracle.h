/**
 * @file
 * Three-oracle differential equivalence checker.
 *
 * For one program the harness runs:
 *
 *  A. the functional interpreter on the original program — reference
 *     architectural state (registers, memory, instruction count);
 *  B. the full task pipeline under every configured selection
 *     strategy: (optional IR transforms) -> profile -> selectTasks ->
 *     verifyPartition -> trace -> cutTasks -> independent replay of
 *     the dynamic task stream;
 *  C. an independent replay of the raw interpreter trace, re-deriving
 *     control flow, branch outcomes, and effective addresses.
 *
 * All three must agree on the final architectural state. Configs that
 * transform the IR (induction-variable hoisting rewrites register
 * lifetimes) compare the memory image and halt status only; untouched
 * configs compare bit-exactly including the register file and the
 * dynamic instruction count.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.h"
#include "runtime/budget.h"
#include "tasksel/options.h"

namespace msc {
namespace fuzz {

/** What went wrong (Ok when nothing did). */
enum class DiffKind : uint8_t
{
    Ok,                 ///< All oracles agree.
    GenError,           ///< Program generation threw (campaign only).
    NoHalt,             ///< Reference run hit the instruction budget.
    Timeout,            ///< An ExecBudget/deadline expired mid-oracle.
    TraceDivergence,    ///< Oracle C found the trace inconsistent.
    PartitionInvalid,   ///< selectTasks/pverify rejected a partition.
    CutError,           ///< cutTasks rejected the trace/partition.
    StreamDivergence,   ///< Oracle B found the task stream inconsistent.
    StateDivergence,    ///< Final architectural states disagree.
};

/** Short printable name for @p k. */
const char *diffKindName(DiffKind k);

/** One pipeline configuration to check. */
struct DiffConfig
{
    std::string name;
    tasksel::SelectionOptions sel;

    /** Run the §3.2 IR transforms before the pipeline. */
    bool transforms = false;

    /** Compare registers and instruction count, not just memory. */
    bool bitExact = true;
};

/** The strategy matrix the harness checks by default: BasicBlock,
 *  ControlFlow (arity 4 and 2), DataDependence (both termination
 *  modes) bit-exactly, plus a transform-enabled DataDependence
 *  config compared on the memory image. */
std::vector<DiffConfig> defaultConfigs();

/** Outcome of one differential check. */
struct DiffResult
{
    DiffKind kind = DiffKind::Ok;

    /** Name of the config that diverged (empty for A/C failures). */
    std::string config;

    /** Human-readable description of the first disagreement. */
    std::string detail;

    bool ok() const { return kind == DiffKind::Ok; }
};

/**
 * Checks @p prog against @p configs (defaultConfigs() when empty).
 * Stops at the first divergence.
 *
 * @p budget, when limited, caps the *whole* differential (all oracles
 * together) — fuel, wall deadline, heap watermark. Exhaustion yields a
 * DiffKind::Timeout result instead of a hang or an exception, so a
 * campaign over adversarial seeds always terminates.
 */
DiffResult runDifferential(const ir::Program &prog,
                           const std::vector<DiffConfig> &configs = {},
                           uint64_t maxInsts = 2'000'000,
                           const runtime::ExecBudget &budget = {});

} // namespace fuzz
} // namespace msc
