/**
 * @file
 * Connection endpoints for the mscd protocol.
 *
 * One grammar names every way to reach a daemon, shared by all
 * clients (`msctool --connect`), the router's `--shard` flags, and
 * tests:
 *
 *   unix:/path/to/socket     Unix-domain stream socket
 *   tcp:host:port            TCP (numeric IP or hostname)
 *   tcp:port                 TCP shorthand for 127.0.0.1:port
 *   stdio                    the process's stdin/stdout pair
 *
 * parseEndpoint validates eagerly (throws runtime::StageError with
 * ErrorKind::InvalidInput on malformed specs) so CLI flag errors
 * surface before any connection attempt; formatEndpoint returns the
 * canonical spelling (parse(format(e)) == e).
 */

#pragma once

#include <cstdint>
#include <string>

namespace msc {
namespace client {

struct Endpoint
{
    enum class Kind : uint8_t
    {
        Unix,   ///< `unix:PATH`
        Tcp,    ///< `tcp:HOST:PORT` / `tcp:PORT`
        Stdio,  ///< `stdio` — the caller's fd 0/1 pair.
    };

    Kind kind = Kind::Stdio;
    std::string path;              ///< Unix: socket path.
    std::string host = "127.0.0.1";  ///< Tcp: host name or address.
    uint16_t port = 0;             ///< Tcp: port.

    bool operator==(const Endpoint &o) const
    {
        return kind == o.kind && path == o.path && host == o.host &&
               port == o.port;
    }
};

/** Parses the endpoint grammar above; throws runtime::StageError
 *  (ErrorKind::InvalidInput, stage "endpoint") on malformed input. */
Endpoint parseEndpoint(const std::string &spec);

/** Canonical textual form ("unix:/run/mscd.sock", "tcp:host:port",
 *  "stdio") — round-trips through parseEndpoint. */
std::string formatEndpoint(const Endpoint &ep);

/**
 * Connects to a Unix or TCP endpoint and returns the socket fd
 * (caller owns/closes it). Throws runtime::StageError (ErrorKind::Io,
 * stage "endpoint") when the connection cannot be established, and
 * ErrorKind::InvalidInput for Stdio endpoints (there is nothing to
 * connect; wrap fds 0/1 directly).
 */
int connectEndpoint(const Endpoint &ep);

} // namespace client
} // namespace msc
