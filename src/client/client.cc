#include "client/client.h"

#include <unistd.h>

namespace msc {
namespace client {

using report::Json;
using runtime::ErrorKind;
using runtime::StageError;

namespace {

[[noreturn]] void
badFrame(const std::string &detail)
{
    throw StageError(ErrorKind::InvalidInput, "client", detail);
}

[[noreturn]] void
streamError(const std::string &detail)
{
    throw StageError(ErrorKind::Io, "client", detail);
}

/** `obj[key]` as a string, or @p dflt when absent / wrong kind
 *  (response decode is lenient: unknown futures must not throw). */
std::string
optString(const Json &obj, const char *key, const std::string &dflt = "")
{
    const Json *v = obj.find(key);
    if (!v || v->kind() != Json::Kind::String)
        return dflt;
    return v->asString();
}

uint64_t
optUInt(const Json &obj, const char *key, uint64_t dflt = 0)
{
    const Json *v = obj.find(key);
    if (!v || v->kind() != Json::Kind::Int)
        return dflt;
    return v->asUInt();
}

bool
optBool(const Json &obj, const char *key, bool dflt = false)
{
    const Json *v = obj.find(key);
    if (!v || v->kind() != Json::Kind::Bool)
        return dflt;
    return v->asBool();
}

Json
stringArray(const std::vector<std::string> &items)
{
    Json a = Json::array();
    for (const auto &s : items)
        a.push(s);
    return a;
}

Json
uintArray(const std::vector<unsigned> &items)
{
    Json a = Json::array();
    for (unsigned v : items)
        a.push(v);
    return a;
}

} // anonymous namespace

// ---------------------------------------------------------------------------
// RequestBuilder

RequestBuilder::RequestBuilder(std::string id, const char *kind)
    : _id(std::move(id)), _doc(Json::object())
{
    _doc["id"] = _id;
    _doc["kind"] = kind;
}

RequestBuilder
RequestBuilder::run(std::string id, std::string workload)
{
    RequestBuilder b(std::move(id), "run");
    b._doc["workload"] = std::move(workload);
    return b;
}

RequestBuilder
RequestBuilder::sweep(std::string id)
{
    return RequestBuilder(std::move(id), "sweep");
}

RequestBuilder
RequestBuilder::trace(std::string id, std::string workload)
{
    RequestBuilder b(std::move(id), "trace");
    b._doc["workload"] = std::move(workload);
    return b;
}

RequestBuilder
RequestBuilder::cancel(std::string id, std::string target)
{
    RequestBuilder b(std::move(id), "cancel");
    b._doc["target"] = std::move(target);
    return b;
}

RequestBuilder
RequestBuilder::stats(std::string id)
{
    return RequestBuilder(std::move(id), "stats");
}

RequestBuilder &
RequestBuilder::workloads(std::vector<std::string> names)
{
    _doc["workloads"] = stringArray(names);
    return *this;
}

RequestBuilder &
RequestBuilder::strategies(std::vector<std::string> ids)
{
    _doc["strategies"] = stringArray(ids);
    return *this;
}

RequestBuilder &
RequestBuilder::pus(std::vector<unsigned> counts)
{
    _doc["pus"] = uintArray(counts);
    return *this;
}

RequestBuilder &
RequestBuilder::strategy(const std::string &id)
{
    _doc["strategy"] = id;
    return *this;
}

RequestBuilder &
RequestBuilder::pusCount(unsigned n)
{
    _doc["pus"] = n;
    return *this;
}

RequestBuilder &
RequestBuilder::smallScale(bool small)
{
    _doc["scale"] = small ? "small" : "full";
    return *this;
}

RequestBuilder &
RequestBuilder::insts(uint64_t n)
{
    _doc["insts"] = n;
    return *this;
}

RequestBuilder &
RequestBuilder::targets(unsigned n)
{
    _doc["targets"] = n;
    return *this;
}

RequestBuilder &
RequestBuilder::inOrder(bool in_order)
{
    _doc["in_order"] = in_order;
    return *this;
}

RequestBuilder &
RequestBuilder::sizeHeuristic(bool on)
{
    _doc["size"] = on;
    return *this;
}

RequestBuilder &
RequestBuilder::core(const std::string &mode)
{
    _doc["core"] = mode;
    return *this;
}

RequestBuilder &
RequestBuilder::budget(const runtime::ExecBudget &b)
{
    Json obj = Json::object();
    if (b.wallMs)
        obj["timeout_ms"] = uint64_t(b.wallMs);
    if (b.maxFuel)
        obj["max_fuel"] = b.maxFuel;
    if (b.maxSimCycles)
        obj["max_cycles"] = b.maxSimCycles;
    if (b.maxHeapBytes)
        obj["max_heap_bytes"] = b.maxHeapBytes;
    _doc["budget"] = std::move(obj);
    return *this;
}

RequestBuilder &
RequestBuilder::budgetExact(const runtime::ExecBudget &b)
{
    Json obj = Json::object();
    obj["timeout_ms"] = uint64_t(b.wallMs);
    obj["max_fuel"] = b.maxFuel;
    obj["max_cycles"] = b.maxSimCycles;
    obj["max_heap_bytes"] = b.maxHeapBytes;
    _doc["budget"] = std::move(obj);
    return *this;
}

RequestBuilder &
RequestBuilder::includeTrace(bool on)
{
    _doc["include_trace"] = on;
    return *this;
}

RequestBuilder &
RequestBuilder::format(const std::string &fmt)
{
    _doc["format"] = fmt;
    return *this;
}

Json
RequestBuilder::toJson() const
{
    return _doc;
}

// ---------------------------------------------------------------------------
// ResponseFrame

ResponseFrame
parseResponseFrame(const std::string &payload)
{
    Json doc;
    try {
        doc = Json::parse(payload);
    } catch (const std::exception &e) {
        badFrame(std::string("response frame is not JSON: ") +
                 e.what());
    }
    if (doc.kind() != Json::Kind::Object)
        badFrame("response frame must be a JSON object");

    ResponseFrame f;
    f.id = optString(doc, "id");
    std::string type = optString(doc, "type");

    if (type == "cell") {
        f.type = ResponseFrame::Type::Cell;
        f.index = optUInt(doc, "index");
        f.total = optUInt(doc, "total");
        const Json *run = doc.find("run");
        if (!run || run->kind() != Json::Kind::Object)
            badFrame("cell frame is missing its \"run\" object");
        f.run = *run;
    } else if (type == "summary") {
        f.type = ResponseFrame::Type::Summary;
        f.status = optString(doc, "status");
        f.exitCode = int(optUInt(doc, "exit_code"));
        f.partial = optBool(doc, "partial");
        f.errors = optUInt(doc, "errors");
        f.runs = optUInt(doc, "runs");
        f.protocolVersion = int(optUInt(doc, "protocol_version"));
        f.via = optString(doc, "via");
        const Json *shards = doc.find("shards");
        if (shards && shards->kind() == Json::Kind::Array)
            for (size_t i = 0; i < shards->size(); ++i)
                f.shards.push_back(shards->at(i).asUInt());
    } else if (type == "result") {
        f.type = ResponseFrame::Type::Result;
        f.resultKind = optString(doc, "kind");
        f.protocolVersion = int(optUInt(doc, "protocol_version"));
    } else if (type == "error") {
        f.type = ResponseFrame::Type::Error;
        const Json *err = doc.find("error");
        if (!err || err->kind() != Json::Kind::Object)
            badFrame("error frame is missing its \"error\" object");
        runtime::errorKindFromId(optString(*err, "kind"),
                                 f.error.kind);
        f.error.stage = optString(*err, "stage");
        f.error.workload = optString(*err, "workload");
        f.error.detail = optString(*err, "detail");
        f.error.limit = optUInt(*err, "limit");
        f.error.used = optUInt(*err, "used");
    } else {
        badFrame("unknown response frame type \"" +
                 type.substr(0, 64) + "\"");
    }

    f.raw = std::move(doc);
    return f;
}

// ---------------------------------------------------------------------------
// ClientConn

ClientConn::ClientConn(const Endpoint &ep)
{
    if (ep.kind == Endpoint::Kind::Stdio) {
        _fdIn = 0;
        _fdOut = 1;
        _own = false;
    } else {
        int fd = connectEndpoint(ep);
        _fdIn = fd;
        _fdOut = fd;
        _own = true;
    }
    _fdTransport =
        std::make_unique<serve::FdTransport>(_fdIn, _fdOut);
}

ClientConn::ClientConn(int fd_in, int fd_out, bool own)
    : _fdIn(fd_in), _fdOut(fd_out), _own(own)
{
    _fdTransport =
        std::make_unique<serve::FdTransport>(_fdIn, _fdOut);
}

ClientConn::ClientConn(serve::Transport &t) : _borrowed(&t) {}

ClientConn::~ClientConn()
{
    if (_own) {
        ::close(_fdIn);
        if (_fdOut != _fdIn)
            ::close(_fdOut);
    }
}

serve::Transport &
ClientConn::transport()
{
    return _borrowed ? *_borrowed : *_fdTransport;
}

void
ClientConn::send(const RequestBuilder &req)
{
    sendPayload(req.payload());
}

void
ClientConn::sendPayload(const std::string &payload)
{
    serve::writeFrame(transport(), payload);
}

ResponseFrame
ClientConn::next()
{
    serve::FrameResult fr = serve::readFrame(transport());
    switch (fr.status) {
      case serve::FrameStatus::Ok:
        return parseResponseFrame(fr.payload);
      case serve::FrameStatus::Eof:
        streamError("connection closed by peer");
      case serve::FrameStatus::Truncated:
        streamError("connection closed mid-frame");
      case serve::FrameStatus::Oversize:
        streamError("peer sent an oversize frame (" +
                    std::to_string(fr.declared) + " bytes)");
    }
    streamError("unreachable frame status");
}

ResponseFrame
ClientConn::call(const RequestBuilder &req,
                 const std::function<void(const ResponseFrame &)>
                     &onFrame)
{
    send(req);
    for (;;) {
        ResponseFrame f = next();
        if (f.id != req.id())
            continue;
        if (onFrame)
            onFrame(f);
        if (f.terminal())
            return f;
    }
}

ClientConn::SweepOutcome
ClientConn::collectSweep(const RequestBuilder &req,
                         const std::function<void(
                             const ResponseFrame &)> &onFrame)
{
    SweepOutcome out;
    out.last = call(req, [&](const ResponseFrame &f) {
        if (f.type == ResponseFrame::Type::Cell) {
            if (out.runs.size() < f.total)
                out.runs.resize(f.total);
            if (f.index < out.runs.size())
                out.runs[f.index] = f.run;
        }
        if (onFrame)
            onFrame(f);
    });
    return out;
}

} // namespace client
} // namespace msc
