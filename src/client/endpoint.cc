#include "client/endpoint.h"

#include <cstring>

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "runtime/error.h"

namespace msc {
namespace client {

namespace {

[[noreturn]] void
badSpec(const std::string &detail)
{
    throw runtime::StageError(runtime::ErrorKind::InvalidInput,
                              "endpoint", detail);
}

[[noreturn]] void
ioError(const std::string &detail)
{
    throw runtime::StageError(runtime::ErrorKind::Io, "endpoint",
                              detail);
}

/** Parses a decimal port; returns 0 on anything out of [1, 65535]. */
uint16_t
parsePort(const std::string &s)
{
    if (s.empty() || s.size() > 5)
        return 0;
    long v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return 0;
        v = v * 10 + (c - '0');
    }
    return (v >= 1 && v <= 65535) ? uint16_t(v) : 0;
}

} // anonymous namespace

Endpoint
parseEndpoint(const std::string &spec)
{
    Endpoint ep;
    if (spec == "stdio") {
        ep.kind = Endpoint::Kind::Stdio;
        return ep;
    }
    if (spec.rfind("unix:", 0) == 0) {
        ep.kind = Endpoint::Kind::Unix;
        ep.path = spec.substr(5);
        if (ep.path.empty())
            badSpec("unix endpoint needs a path: unix:/path/to.sock");
        if (ep.path.size() >= sizeof(sockaddr_un{}.sun_path))
            badSpec("unix socket path too long (" +
                    std::to_string(ep.path.size()) + " bytes)");
        return ep;
    }
    if (spec.rfind("tcp:", 0) == 0) {
        ep.kind = Endpoint::Kind::Tcp;
        std::string rest = spec.substr(4);
        size_t colon = rest.rfind(':');
        if (colon == std::string::npos) {
            // tcp:PORT shorthand for loopback.
            ep.port = parsePort(rest);
        } else {
            ep.host = rest.substr(0, colon);
            ep.port = parsePort(rest.substr(colon + 1));
            if (ep.host.empty())
                badSpec("tcp endpoint needs a host: tcp:host:port");
        }
        if (ep.port == 0)
            badSpec("tcp endpoint needs a port in [1, 65535]: \"" +
                    spec.substr(0, 64) + "\"");
        return ep;
    }
    badSpec("unknown endpoint \"" + spec.substr(0, 64) +
            "\" (expected unix:PATH, tcp:host:port, tcp:port, or "
            "stdio)");
}

std::string
formatEndpoint(const Endpoint &ep)
{
    switch (ep.kind) {
      case Endpoint::Kind::Stdio:
        return "stdio";
      case Endpoint::Kind::Unix:
        return "unix:" + ep.path;
      case Endpoint::Kind::Tcp:
        return "tcp:" + ep.host + ":" + std::to_string(ep.port);
    }
    return "?";
}

int
connectEndpoint(const Endpoint &ep)
{
    if (ep.kind == Endpoint::Kind::Stdio)
        badSpec("stdio endpoints cannot be connected; wrap the "
                "stdin/stdout pair directly");

    if (ep.kind == Endpoint::Kind::Unix) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, ep.path.c_str(),
                    ep.path.size() + 1);
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            ioError("socket() failed");
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) < 0) {
            ::close(fd);
            ioError("cannot connect to " + formatEndpoint(ep));
        }
        return fd;
    }

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    std::string port = std::to_string(ep.port);
    if (::getaddrinfo(ep.host.c_str(), port.c_str(), &hints, &res) !=
            0 ||
        !res)
        ioError("cannot resolve host \"" + ep.host + "\"");
    int fd = -1;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        ioError("cannot connect to " + formatEndpoint(ep));
    return fd;
}

} // namespace client
} // namespace msc
