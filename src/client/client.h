/**
 * @file
 * First-class client API for the mscd protocol (docs/API.md).
 *
 * Everything a program needs to talk to a daemon lives here, so no
 * caller hand-rolls sockets, framing, or per-verb JSON again:
 *
 *  - Endpoint (endpoint.h): one grammar for unix:/tcp:/stdio;
 *  - RequestBuilder: typed construction of every protocol verb
 *    (run/sweep/trace/cancel/stats), emitting exactly the payloads
 *    docs/DAEMON.md specifies;
 *  - ResponseFrame: the typed decode of every response frame kind
 *    (cell/summary/result/error), with the raw Json preserved for
 *    fields a caller wants verbatim (e.g. the byte-exact `run`
 *    objects a sweep document is reassembled from);
 *  - ClientConn: a connected peer owning the transport and framing,
 *    with the one-request/stream-responses lifecycle (`call`) and the
 *    raw frame pump (`send`/`next`) underneath it.
 *
 * Consumers in-tree: `msctool` (every verb's `--connect` path), the
 * mscd router's shard links, `daemon_smoke`, and `bench_daemon`.
 *
 * Thread-safety: a ClientConn is a single conversation — callers
 * serialize access (one thread, or an external lock). Distinct
 * ClientConns are fully independent.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "client/endpoint.h"
#include "report/json.h"
#include "runtime/budget.h"
#include "runtime/error.h"
#include "serve/frame.h"

namespace msc {
namespace client {

/**
 * Typed builder for one request payload. Verb constructors pin the
 * `kind`; fluent setters fill the optional fields the daemon
 * understands (unset fields are omitted, so server defaults apply —
 * docs/DAEMON.md documents each default).
 */
class RequestBuilder
{
  public:
    /// @name Verb constructors.
    /// @{
    static RequestBuilder run(std::string id, std::string workload);
    static RequestBuilder sweep(std::string id);
    static RequestBuilder trace(std::string id, std::string workload);
    static RequestBuilder cancel(std::string id, std::string target);
    static RequestBuilder stats(std::string id);
    /// @}

    /// @name Grid axes (sweep: lists; run/trace: scalars).
    /// @{
    RequestBuilder &workloads(std::vector<std::string> names);
    RequestBuilder &strategies(std::vector<std::string> ids);
    RequestBuilder &pus(std::vector<unsigned> counts);
    RequestBuilder &strategy(const std::string &id);
    RequestBuilder &pusCount(unsigned n);
    /// @}

    /// @name Shared knobs.
    /// @{
    RequestBuilder &smallScale(bool small);
    RequestBuilder &insts(uint64_t n);
    RequestBuilder &targets(unsigned n);
    RequestBuilder &inOrder(bool in_order);
    RequestBuilder &sizeHeuristic(bool on);
    RequestBuilder &core(const std::string &mode);

    /** Emits a `budget` object with every *nonzero* field of @p b
     *  (zero = unlimited = the protocol default, so it is omitted). */
    RequestBuilder &budget(const runtime::ExecBudget &b);

    /** Emits all four budget fields, zeros included. Exact
     *  propagation: a zero means "unlimited" and must override the
     *  peer's own default (the router uses this so shard-side
     *  defaults never alter a routed cell's outcome). */
    RequestBuilder &budgetExact(const runtime::ExecBudget &b);
    /// @}

    /** Trace: embed the full Perfetto document in the result frame. */
    RequestBuilder &includeTrace(bool on);

    /** Stats: "json" (default) or "prometheus". */
    RequestBuilder &format(const std::string &fmt);

    const std::string &id() const { return _id; }

    /** The complete request object. */
    report::Json toJson() const;

    /** Compact serialization — the exact frame payload. */
    std::string payload() const { return toJson().dump(); }

  private:
    RequestBuilder(std::string id, const char *kind);

    std::string _id;
    report::Json _doc;
};

/** One decoded response frame. Typed fields cover what every caller
 *  switches on; `raw` is the whole frame for anything else. */
struct ResponseFrame
{
    enum class Type : uint8_t
    {
        Cell,     ///< One streamed sweep cell.
        Summary,  ///< Sweep/run terminator.
        Result,   ///< cancel / trace / stats terminator.
        Error,    ///< Structured failure terminator.
    };

    Type type = Type::Error;
    std::string id;  ///< Echoed request id.

    /// @name Cell fields.
    /// @{
    uint64_t index = 0;
    uint64_t total = 0;
    /** The byte-exact per-run object of the msc.sweep schema (feed
     *  these, in index order, to report::sweepDocFromRuns). */
    report::Json run;
    /// @}

    /// @name Summary fields.
    /// @{
    std::string status;  ///< "ok" | "failed" | "partial".
    int exitCode = 0;
    bool partial = false;
    uint64_t errors = 0;
    uint64_t runs = 0;
    int protocolVersion = 0;
    /** Router provenance (protocol v3; empty/absent when served
     *  directly): via == "router" and one per-shard cell count. */
    std::string via;
    std::vector<uint64_t> shards;
    /// @}

    /** Result: the `kind` member ("cancel" | "trace" | "stats"). */
    std::string resultKind;

    /** Error: the decoded `error` object. */
    runtime::StageErrorInfo error;

    /** The complete frame, undecoded. */
    report::Json raw;

    bool terminal() const { return type != Type::Cell; }

    /** True when this frame ends request @p req_id. */
    bool terminates(const std::string &req_id) const
    {
        return terminal() && id == req_id;
    }
};

/** Decodes one frame payload; throws runtime::StageError
 *  (ErrorKind::InvalidInput, stage "client") on anything that is not
 *  a well-formed response frame. */
ResponseFrame parseResponseFrame(const std::string &payload);

/**
 * A connected protocol peer: owns (or borrows) the byte stream, and
 * speaks frames.
 */
class ClientConn
{
  public:
    /** Connects to @p ep (Stdio wraps fds 0/1 unowned). */
    explicit ClientConn(const Endpoint &ep);

    /** Adopts an fd pair (@p own closes them on destruction; a socket
     *  passes the same fd twice and is closed once). */
    ClientConn(int fd_in, int fd_out, bool own);

    /** Borrows @p t (tests, in-process peers); caller keeps it alive
     *  and open. */
    explicit ClientConn(serve::Transport &t);

    ~ClientConn();

    ClientConn(const ClientConn &) = delete;
    ClientConn &operator=(const ClientConn &) = delete;

    /// @name Raw frame pump.
    /// @{
    void send(const RequestBuilder &req);
    void sendPayload(const std::string &payload);

    /** Reads and decodes the next response frame. Throws
     *  runtime::StageError (ErrorKind::Io, stage "client") when the
     *  stream ends or a frame is oversize/truncated. */
    ResponseFrame next();
    /// @}

    /**
     * The one-request/stream-responses lifecycle: sends @p req, then
     * reads frames until @p req's terminal frame (summary / result /
     * error) arrives and returns it. Every frame belonging to @p req
     * — including the terminal one — is first handed to @p onFrame
     * (nullable); frames of other in-flight requests on this
     * connection are skipped.
     */
    ResponseFrame
    call(const RequestBuilder &req,
         const std::function<void(const ResponseFrame &)> &onFrame = {});

    /**
     * Convenience for run/sweep: `call` plus in-order collection of
     * the cell `run` objects. On return, `runs[i]` is cell i (Null if
     * the request ended in an error frame before cell i arrived).
     */
    struct SweepOutcome
    {
        std::vector<report::Json> runs;
        ResponseFrame last;  ///< Summary, or the error that ended it.

        bool ok() const
        {
            return last.type == ResponseFrame::Type::Summary;
        }
    };

    SweepOutcome
    collectSweep(const RequestBuilder &req,
                 const std::function<void(const ResponseFrame &)>
                     &onFrame = {});

  private:
    serve::Transport &transport();

    std::unique_ptr<serve::FdTransport> _fdTransport;
    serve::Transport *_borrowed = nullptr;
    int _fdIn = -1;
    int _fdOut = -1;
    bool _own = false;
};

} // namespace client
} // namespace msc
