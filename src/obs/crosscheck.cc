#include "obs/crosscheck.h"

#include <cstdio>

namespace msc {
namespace obs {

void
SpanAccounting::taskCommitted(const CommitEvent &e)
{
    uint64_t dispatch = e.fetchStart - e.assignCycle;
    uint64_t execute = e.completionCycle - e.fetchStart;
    uint64_t wait = e.retireStart - e.completionCycle;
    uint64_t commit = e.retireEnd - e.retireStart;
    _dispatch += dispatch;
    _execute += execute;
    _waitRetire += wait;
    _commit += commit;
    if (e.pu < _perPu.size())
        _perPu[e.pu] += dispatch + execute + wait + commit;
}

void
SpanAccounting::taskSquashed(const SquashEvent &e)
{
    if (e.kind == arch::CycleKind::MemSquash)
        _memSquash += e.penaltyCycles;
    else
        _ctrlSquash += e.penaltyCycles;
    if (e.pu < _perPu.size())
        _perPu[e.pu] += e.penaltyCycles;
}

std::string
SpanAccounting::verify(const arch::SimStats &stats) const
{
    auto bucket = [&](arch::CycleKind k) {
        return stats.buckets.counts[size_t(k)];
    };
    char msg[160];
    auto mismatch = [&](const char *what, uint64_t spans,
                        uint64_t accounted) -> std::string {
        std::snprintf(msg, sizeof(msg),
                      "%s: span durations sum to %llu but SimStats "
                      "accounts %llu cycles",
                      what, (unsigned long long)spans,
                      (unsigned long long)accounted);
        return msg;
    };

    using arch::CycleKind;
    uint64_t exec_buckets = bucket(CycleKind::Useful) +
                            bucket(CycleKind::InterTaskComm) +
                            bucket(CycleKind::IntraTaskDep) +
                            bucket(CycleKind::FetchStall);
    if (_dispatch != bucket(CycleKind::TaskStart))
        return mismatch("dispatch", _dispatch,
                        bucket(CycleKind::TaskStart));
    if (_execute != exec_buckets)
        return mismatch("execute", _execute, exec_buckets);
    if (_waitRetire != bucket(CycleKind::LoadImbalance))
        return mismatch("wait-retire", _waitRetire,
                        bucket(CycleKind::LoadImbalance));
    if (_commit != bucket(CycleKind::TaskEnd))
        return mismatch("commit", _commit, bucket(CycleKind::TaskEnd));
    if (_ctrlSquash != bucket(CycleKind::CtrlSquash))
        return mismatch("ctrl-squash", _ctrlSquash,
                        bucket(CycleKind::CtrlSquash));
    if (_memSquash != bucket(CycleKind::MemSquash))
        return mismatch("mem-squash", _memSquash,
                        bucket(CycleKind::MemSquash));

    if (stats.puOccupiedCycles.size() != _perPu.size()) {
        std::snprintf(msg, sizeof(msg),
                      "per-PU occupancy: trace saw %zu PUs but "
                      "SimStats tracked %zu",
                      _perPu.size(), stats.puOccupiedCycles.size());
        return msg;
    }
    for (size_t pu = 0; pu < _perPu.size(); ++pu) {
        if (_perPu[pu] != stats.puOccupiedCycles[pu]) {
            std::snprintf(msg, sizeof(msg),
                          "PU %zu: span durations sum to %llu but "
                          "SimStats accounts %llu cycles",
                          pu, (unsigned long long)_perPu[pu],
                          (unsigned long long)
                              stats.puOccupiedCycles[pu]);
            return msg;
        }
    }
    return "";
}

} // namespace obs
} // namespace msc
