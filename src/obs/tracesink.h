/**
 * @file
 * Task-lifecycle trace sink: the observation interface of the timing
 * model.
 *
 * The simulator reports semantic events — a task instance assigned to
 * a PU, committed (with its full per-cycle attribution), squashed, a
 * stall instant, window-occupancy counters — and sinks turn them into
 * whatever representation is wanted: a Perfetto/Chrome trace-event
 * timeline (obs/perfetto.h), a per-static-task attribution profile
 * (obs/taskprof.h), or an accounting cross-check (obs/crosscheck.h).
 *
 * The disabled path is a branch on a null pointer in the simulator;
 * no event structs are built when no sink is attached, so tracing
 * costs nothing unless requested.
 *
 * Timeline contract (what makes the trace *be* the accounting rather
 * than approximate it): a committed instance's lifecycle spans tile
 * [assignCycle, retireEnd) contiguously and their durations equal the
 * instance's CycleBuckets by group —
 *
 *   dispatch    [assignCycle, fetchStart)        == TaskStart
 *   execute     [fetchStart, completionCycle)    == Useful +
 *                 InterTaskComm + IntraTaskDep + FetchStall
 *   wait-retire [completionCycle, retireStart)   == LoadImbalance
 *   commit      [retireStart, retireEnd)         == TaskEnd
 *
 * and a squashed instance contributes one span of exactly
 * `penaltyCycles` (the value merged into SimStats). Summing span
 * durations per PU therefore reproduces SimStats::puOccupiedCycles,
 * and summing per span name reproduces SimStats::buckets — the
 * invariant tests/test_obs.cc and `msctool trace --check` enforce.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "arch/stats.h"
#include "tasksel/task.h"

namespace msc {
namespace obs {

/** A task instance starting its occupancy of a PU. */
struct AssignEvent
{
    unsigned pu = 0;
    uint64_t dynIdx = 0;        ///< Meaningless when bogus.
    tasksel::TaskId staticTask = tasksel::INVALID_TASK;
    bool bogus = false;         ///< Wrong-path (unpredicted) work.
    uint64_t cycle = 0;
};

/** Full lifecycle of one committed instance, reported at retire. */
struct CommitEvent
{
    unsigned pu = 0;
    uint64_t dynIdx = 0;
    tasksel::TaskId staticTask = tasksel::INVALID_TASK;

    uint64_t assignCycle = 0;      ///< Dispatch overhead begins.
    uint64_t fetchStart = 0;       ///< Execution begins.
    uint64_t completionCycle = 0;  ///< Last instruction done.
    uint64_t retireStart = 0;      ///< Commit overhead begins.
    uint64_t retireEnd = 0;        ///< PU freed.

    uint64_t insts = 0;            ///< Dynamic instructions.
    arch::CycleBuckets buckets;    ///< Per-instance attribution.
};

/** A squashed instance (control/memory misspeculation or bogus). */
struct SquashEvent
{
    unsigned pu = 0;
    uint64_t dynIdx = 0;        ///< Meaningless when bogus.
    tasksel::TaskId staticTask = tasksel::INVALID_TASK;
    bool bogus = false;
    arch::CycleKind kind = arch::CycleKind::CtrlSquash;

    uint64_t assignCycle = 0;
    uint64_t squashCycle = 0;

    /** Exactly the penalty merged into SimStats::buckets. */
    uint64_t penaltyCycles = 0;
};

/** Point events worth a timeline marker. */
enum class InstantKind : uint8_t
{
    CtrlSquash,     ///< A control misspeculation resolved here.
    MemSquash,      ///< A memory-dependence violation resolved here.
    ArbOverflow,    ///< A PU stalled on ARB capacity this cycle.
};

inline const char *
instantKindName(InstantKind k)
{
    switch (k) {
      case InstantKind::CtrlSquash:  return "ctrl-squash-trigger";
      case InstantKind::MemSquash:   return "mem-squash-trigger";
      case InstantKind::ArbOverflow: return "arb-overflow-stall";
    }
    return "?";
}

/** Window-occupancy counters, sampled when the window changes. */
struct CounterEvent
{
    uint64_t cycle = 0;
    unsigned inFlightTasks = 0;     ///< Non-bogus instances in flight.
    uint64_t windowSpanInsts = 0;   ///< Their summed instruction count.
};

/**
 * Receiver of simulator observation events. All methods default to
 * no-ops so sinks override only what they consume.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    virtual void taskAssigned(const AssignEvent &) {}
    virtual void taskCommitted(const CommitEvent &) {}
    virtual void taskSquashed(const SquashEvent &) {}
    virtual void instant(InstantKind, unsigned /*pu*/, uint64_t /*cycle*/)
    {
    }
    virtual void counters(const CounterEvent &) {}

    /** Final simulated cycle, once, after the last event. */
    virtual void simEnd(uint64_t /*finalCycle*/) {}
};

/** Explicit do-nothing sink (tests of the enabled-but-inert path;
 *  prefer a null pointer to disable tracing entirely). */
class NullTraceSink final : public TraceSink
{
};

/** Fans every event out to several sinks (e.g. timeline + profile +
 *  cross-check in one run). Does not own the sinks. */
class TeeSink final : public TraceSink
{
  public:
    explicit TeeSink(std::vector<TraceSink *> sinks)
        : _sinks(std::move(sinks))
    {
    }

    void
    taskAssigned(const AssignEvent &e) override
    {
        for (TraceSink *s : _sinks)
            s->taskAssigned(e);
    }

    void
    taskCommitted(const CommitEvent &e) override
    {
        for (TraceSink *s : _sinks)
            s->taskCommitted(e);
    }

    void
    taskSquashed(const SquashEvent &e) override
    {
        for (TraceSink *s : _sinks)
            s->taskSquashed(e);
    }

    void
    instant(InstantKind k, unsigned pu, uint64_t cycle) override
    {
        for (TraceSink *s : _sinks)
            s->instant(k, pu, cycle);
    }

    void
    counters(const CounterEvent &e) override
    {
        for (TraceSink *s : _sinks)
            s->counters(e);
    }

    void
    simEnd(uint64_t final_cycle) override
    {
        for (TraceSink *s : _sinks)
            s->simEnd(final_cycle);
    }

  private:
    std::vector<TraceSink *> _sinks;
};

} // namespace obs
} // namespace msc
