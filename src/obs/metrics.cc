#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace msc {
namespace obs {

Histogram::Histogram(std::vector<uint64_t> bounds)
    : _bounds(std::move(bounds))
{
    if (_bounds.empty())
        _bounds = MetricsRegistry::latencyBucketsUs();
    for (size_t i = 1; i < _bounds.size(); ++i)
        if (_bounds[i] <= _bounds[i - 1])
            throw std::invalid_argument(
                "histogram bounds must be strictly increasing");
    _counts = std::make_unique<std::atomic<uint64_t>[]>(
        _bounds.size() + 1);
    for (size_t i = 0; i <= _bounds.size(); ++i)
        _counts[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(uint64_t value)
{
    // First bucket whose upper bound >= value; past-the-end is the
    // implicit +Inf bucket.
    size_t i = size_t(std::lower_bound(_bounds.begin(), _bounds.end(),
                                       value) -
                      _bounds.begin());
    _counts[i].fetch_add(1, std::memory_order_relaxed);
    _count.fetch_add(1, std::memory_order_relaxed);
    _sum.fetch_add(value, std::memory_order_relaxed);
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mu);
    auto &slot = _counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mu);
    auto &slot = _gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<uint64_t> bounds)
{
    std::lock_guard<std::mutex> lock(_mu);
    auto &slot = _histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
}

void
MetricsRegistry::gaugeCallback(const std::string &name,
                               std::function<int64_t()> read)
{
    std::lock_guard<std::mutex> lock(_mu);
    _callbacks[name] = std::move(read);
}

const std::vector<uint64_t> &
MetricsRegistry::latencyBucketsUs()
{
    static const std::vector<uint64_t> bounds = {
        100,       250,       500,        1'000,     2'500,
        5'000,     10'000,    25'000,     50'000,    100'000,
        250'000,   500'000,   1'000'000,  2'500'000, 5'000'000,
        10'000'000};
    return bounds;
}

report::Json
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(_mu);

    report::Json doc = report::Json::object();
    doc["schema"] = METRICS_SCHEMA_NAME;
    doc["schema_version"] = METRICS_SCHEMA_VERSION;

    report::Json counters = report::Json::object();
    for (const auto &[name, c] : _counters)
        counters[name] = c->value();
    doc["counters"] = std::move(counters);

    report::Json gauges = report::Json::object();
    for (const auto &[name, g] : _gauges)
        gauges[name] = g->value();
    for (const auto &[name, read] : _callbacks)
        gauges[name] = read();
    doc["gauges"] = std::move(gauges);

    report::Json histograms = report::Json::object();
    for (const auto &[name, h] : _histograms) {
        report::Json hj = report::Json::object();
        hj["count"] = h->count();
        hj["sum"] = h->sum();
        report::Json buckets = report::Json::array();
        uint64_t cum = 0;
        for (size_t i = 0; i <= h->bounds().size(); ++i) {
            cum += h->bucketCount(i);
            report::Json b = report::Json::object();
            if (i < h->bounds().size())
                b["le"] = h->bounds()[i];
            else
                b["le"] = "+Inf";
            b["count"] = cum;
            buckets.push(std::move(b));
        }
        hj["buckets"] = std::move(buckets);
        histograms[name] = std::move(hj);
    }
    doc["histograms"] = std::move(histograms);
    return doc;
}

namespace {

/** Prometheus metric-name charset: [a-zA-Z0-9_] (we never emit a
 *  leading digit because registered names never start with one). */
std::string
promName(const std::string &name)
{
    std::string out = name;
    for (char &c : out)
        if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9')))
            c = '_';
    return out;
}

} // anonymous namespace

std::string
MetricsRegistry::toPrometheus() const
{
    std::lock_guard<std::mutex> lock(_mu);
    std::string out;

    for (const auto &[name, c] : _counters) {
        std::string n = promName(name);
        out += "# TYPE " + n + " counter\n";
        out += n + " " + std::to_string(c->value()) + "\n";
    }
    for (const auto &[name, g] : _gauges) {
        std::string n = promName(name);
        out += "# TYPE " + n + " gauge\n";
        out += n + " " + std::to_string(g->value()) + "\n";
    }
    for (const auto &[name, read] : _callbacks) {
        std::string n = promName(name);
        out += "# TYPE " + n + " gauge\n";
        out += n + " " + std::to_string(read()) + "\n";
    }
    for (const auto &[name, h] : _histograms) {
        std::string n = promName(name);
        out += "# TYPE " + n + " histogram\n";
        uint64_t cum = 0;
        for (size_t i = 0; i <= h->bounds().size(); ++i) {
            cum += h->bucketCount(i);
            std::string le =
                i < h->bounds().size()
                    ? std::to_string(h->bounds()[i])
                    : std::string("+Inf");
            out += n + "_bucket{le=\"" + le + "\"} " +
                   std::to_string(cum) + "\n";
        }
        out += n + "_sum " + std::to_string(h->sum()) + "\n";
        out += n + "_count " + std::to_string(h->count()) + "\n";
    }
    return out;
}

} // namespace obs
} // namespace msc
