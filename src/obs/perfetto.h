/**
 * @file
 * Chrome-trace-event / Perfetto JSON writer.
 *
 * Emits the JSON object form of the trace-event format
 * ({"traceEvents": [...]}) that both chrome://tracing and
 * https://ui.perfetto.dev open directly. One process ("timing sim")
 * carries a thread per PU with the task-lifecycle spans and stall
 * instants, plus two counter tracks (in-flight tasks, window span);
 * wall-clock pipeline-phase spans, when requested, land in a second
 * process so host time never mixes with simulated time.
 *
 * Timestamps are simulation cycles written as trace-event
 * microseconds (1 cycle == 1 us on the viewer's axis). Only complete
 * ("X"), instant ("i"), counter ("C") and metadata ("M") events are
 * produced, all with non-negative ts/dur, so any trace-event consumer
 * accepts the file. Output is deterministic: same workload, config
 * and seed produce a byte-identical file (docs/TRACING.md).
 */

#pragma once

#include <string>

#include "obs/phase.h"
#include "obs/tracesink.h"
#include "report/json.h"

namespace msc {
namespace obs {

/** TraceSink that renders the event stream as a trace-event JSON
 *  document. Collects in memory; call str() / write() at the end. */
class PerfettoTraceWriter final : public TraceSink
{
  public:
    /** @p num_pus sizes the thread-name metadata. @p workload is
     *  recorded as the process label. */
    explicit PerfettoTraceWriter(unsigned num_pus,
                                 const std::string &workload = "");

    void taskCommitted(const CommitEvent &e) override;
    void taskSquashed(const SquashEvent &e) override;
    void instant(InstantKind k, unsigned pu, uint64_t cycle) override;
    void counters(const CounterEvent &e) override;
    void simEnd(uint64_t final_cycle) override;

    /**
     * Appends wall-clock pipeline-phase spans as a separate process
     * track. Opt-in because host time varies run to run and would
     * break the byte-determinism of the default trace.
     */
    void addPhaseSpans(const PhaseTimes &pt);

    /** The complete document (valid whether or not simEnd ran). */
    report::Json toJson() const;

    /** Serialized compact JSON of toJson(). */
    std::string str() const;

    /** Writes str() to @p path; throws std::runtime_error on I/O
     *  failure. */
    void write(const std::string &path) const;

    /// @name Trace-event constants (shared with tests/tools).
    /// @{
    static constexpr int PID_SIM = 1;       ///< Simulated-cycles process.
    static constexpr int PID_PIPELINE = 2;  ///< Wall-clock process.
    /// @}

  private:
    void span(const char *name, unsigned pu, uint64_t start,
              uint64_t end, const CommitEvent *detail);

    report::Json _events;
    unsigned _numPUs;
    bool _haveCounter = false;
    unsigned _lastInFlight = 0;
    uint64_t _lastSpanInsts = 0;
};

} // namespace obs
} // namespace msc
