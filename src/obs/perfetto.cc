#include "obs/perfetto.h"

#include "report/record.h"

namespace msc {
namespace obs {

using report::Json;

namespace {

Json
makeEvent(const char *name, const char *ph, int pid, int tid,
          uint64_t ts)
{
    Json e = Json::object();
    e["name"] = name;
    e["ph"] = ph;
    e["pid"] = pid;
    e["tid"] = tid;
    e["ts"] = ts;
    return e;
}

Json
metadata(const char *kind, int pid, int tid, const std::string &label)
{
    Json e = makeEvent(kind, "M", pid, tid, 0);
    Json args = Json::object();
    args["name"] = label;
    e["args"] = std::move(args);
    return e;
}

} // anonymous namespace

PerfettoTraceWriter::PerfettoTraceWriter(unsigned num_pus,
                                         const std::string &workload)
    : _events(Json::array()), _numPUs(num_pus)
{
    // Metadata first so viewers label tracks before any data event.
    std::string proc = "timing sim (cycles)";
    if (!workload.empty())
        proc += " - " + workload;
    _events.push(metadata("process_name", PID_SIM, 0, proc));
    for (unsigned pu = 0; pu < num_pus; ++pu)
        _events.push(metadata("thread_name", PID_SIM, int(pu),
                              "PU " + std::to_string(pu)));
}

void
PerfettoTraceWriter::span(const char *name, unsigned pu, uint64_t start,
                          uint64_t end, const CommitEvent *detail)
{
    Json e = makeEvent(name, "X", PID_SIM, int(pu), start);
    e["dur"] = end - start;
    if (detail) {
        Json args = Json::object();
        args["task"] = detail->staticTask;
        args["dyn"] = detail->dynIdx;
        args["insts"] = detail->insts;
        e["args"] = std::move(args);
    }
    _events.push(std::move(e));
}

void
PerfettoTraceWriter::taskCommitted(const CommitEvent &e)
{
    span("dispatch", e.pu, e.assignCycle, e.fetchStart, &e);
    {
        Json x = makeEvent("execute", "X", PID_SIM, int(e.pu),
                           e.fetchStart);
        x["dur"] = e.completionCycle - e.fetchStart;
        Json args = Json::object();
        args["task"] = e.staticTask;
        args["dyn"] = e.dynIdx;
        args["insts"] = e.insts;
        // The execute-span attribution, so hovering a span shows the
        // same Figure 2 breakdown the aggregate stats report.
        for (arch::CycleKind k : {arch::CycleKind::Useful,
                                  arch::CycleKind::InterTaskComm,
                                  arch::CycleKind::IntraTaskDep,
                                  arch::CycleKind::FetchStall})
            args[arch::cycleKindId(k)] = e.buckets.counts[size_t(k)];
        x["args"] = std::move(args);
        _events.push(std::move(x));
    }
    span("wait-retire", e.pu, e.completionCycle, e.retireStart, &e);
    span("commit", e.pu, e.retireStart, e.retireEnd, &e);
}

void
PerfettoTraceWriter::taskSquashed(const SquashEvent &e)
{
    const char *name = e.kind == arch::CycleKind::MemSquash
        ? "mem-squash" : "ctrl-squash";
    Json x = makeEvent(name, "X", PID_SIM, int(e.pu), e.assignCycle);
    x["dur"] = e.penaltyCycles;
    Json args = Json::object();
    if (!e.bogus) {
        args["task"] = e.staticTask;
        args["dyn"] = e.dynIdx;
    }
    args["bogus"] = e.bogus;
    x["args"] = std::move(args);
    _events.push(std::move(x));
}

void
PerfettoTraceWriter::instant(InstantKind k, unsigned pu, uint64_t cycle)
{
    Json e = makeEvent(instantKindName(k), "i", PID_SIM, int(pu), cycle);
    e["s"] = "t";  // Thread-scoped marker.
    _events.push(std::move(e));
}

void
PerfettoTraceWriter::counters(const CounterEvent &e)
{
    // Counters are change-driven: skip samples equal to the previous
    // value so trace size stays proportional to activity, not cycles.
    if (!_haveCounter || e.inFlightTasks != _lastInFlight) {
        Json c = makeEvent("in-flight tasks", "C", PID_SIM, 0, e.cycle);
        Json args = Json::object();
        args["tasks"] = e.inFlightTasks;
        c["args"] = std::move(args);
        _events.push(std::move(c));
        _lastInFlight = e.inFlightTasks;
    }
    if (!_haveCounter || e.windowSpanInsts != _lastSpanInsts) {
        Json c = makeEvent("window span (insts)", "C", PID_SIM, 0,
                           e.cycle);
        Json args = Json::object();
        args["insts"] = e.windowSpanInsts;
        c["args"] = std::move(args);
        _events.push(std::move(c));
        _lastSpanInsts = e.windowSpanInsts;
    }
    _haveCounter = true;
}

void
PerfettoTraceWriter::simEnd(uint64_t final_cycle)
{
    // Close both counter tracks at zero so the viewer does not extend
    // the last value past the end of simulation.
    counters(CounterEvent{final_cycle, 0, 0});
}

void
PerfettoTraceWriter::addPhaseSpans(const PhaseTimes &pt)
{
    _events.push(metadata("process_name", PID_PIPELINE, 0,
                          "pipeline (wall clock)"));
    double at = 0;
    for (size_t i = 0; i < NUM_PIPELINE_PHASES; ++i) {
        Json e = Json::object();
        e["name"] = pipelinePhaseName(PipelinePhase(i));
        e["ph"] = "X";
        e["pid"] = PID_PIPELINE;
        e["tid"] = 0;
        e["ts"] = at;
        e["dur"] = pt.micros[i];
        _events.push(std::move(e));
        at += pt.micros[i];
    }
}

Json
PerfettoTraceWriter::toJson() const
{
    Json doc = Json::object();
    doc["displayTimeUnit"] = "ms";
    doc["traceEvents"] = _events;
    return doc;
}

std::string
PerfettoTraceWriter::str() const
{
    return toJson().dump();
}

void
PerfettoTraceWriter::write(const std::string &path) const
{
    report::writeFile(path, str());
}

} // namespace obs
} // namespace msc
