/**
 * @file
 * Request-scoped structured logging for the host service: one compact
 * JSON object per lifecycle event, one line each, on a stream that is
 * NOT stdout (docs/OBSERVABILITY.md documents the line format).
 *
 * The logger is opt-in (`mscd --log-json`) and deliberately dumb: the
 * caller builds the event's field object, the logger stamps it with
 * the event name, a wall-clock timestamp (`ts_ms`, Unix epoch
 * milliseconds) and a monotonic offset (`t_us`, microseconds since
 * logger construction), serializes compactly, and writes the line
 * under a mutex so concurrent request threads never interleave bytes.
 *
 * A disabled logger (the default) reduces every call to one branch —
 * the structured-result byte-determinism contract is unaffected
 * either way because log lines never go to stdout.
 *
 * Events are correlated by `rid`, the server-minted per-frame
 * RequestId ("r1", "r2", ... in arrival order on the process), which
 * callers thread through dispatcher and worker threads; the client's
 * own `id` field travels alongside as `req`.
 */

#pragma once

#include <chrono>
#include <cstdio>
#include <mutex>

#include "report/json.h"

namespace msc {
namespace obs {

class JsonLogger
{
  public:
    /** @p out is borrowed, not owned (stderr in the daemon). */
    explicit JsonLogger(bool enabled = false, std::FILE *out = stderr)
        : _enabled(enabled), _out(out),
          _start(std::chrono::steady_clock::now())
    {}

    JsonLogger(const JsonLogger &) = delete;
    JsonLogger &operator=(const JsonLogger &) = delete;

    bool enabled() const { return _enabled; }

    /**
     * Emits one line: @p fields (an object; moved from) extended with
     * `ev` = @p event, `ts_ms`, and `t_us`. No-op when disabled.
     */
    void event(const char *event, report::Json fields);

  private:
    bool _enabled;
    std::FILE *_out;
    std::chrono::steady_clock::time_point _start;
    std::mutex _mu;
};

} // namespace obs
} // namespace msc
