#include "obs/slog.h"

namespace msc {
namespace obs {

void
JsonLogger::event(const char *event, report::Json fields)
{
    if (!_enabled)
        return;

    auto now = std::chrono::steady_clock::now();
    uint64_t t_us = uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            now - _start)
            .count());
    uint64_t ts_ms = uint64_t(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());

    // `ev` leads the line for grep-ability; the caller's fields keep
    // their insertion order after the stamps.
    report::Json line = report::Json::object();
    line["ev"] = event;
    line["ts_ms"] = ts_ms;
    line["t_us"] = t_us;
    if (fields.kind() == report::Json::Kind::Object)
        for (const auto &[k, v] : fields.members())
            line[k] = v;

    std::string text = line.dump();
    text.push_back('\n');
    std::lock_guard<std::mutex> lock(_mu);
    std::fwrite(text.data(), 1, text.size(), _out);
    std::fflush(_out);
}

} // namespace obs
} // namespace msc
