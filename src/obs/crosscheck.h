/**
 * @file
 * Accounting cross-check: asserts that the task timeline IS the cycle
 * accounting, not a parallel approximation.
 *
 * SpanAccounting listens to the same event stream the trace writer
 * renders, sums span durations per PU and per lifecycle phase, and
 * verify() compares those sums against SimStats: per-PU totals must
 * equal SimStats::puOccupiedCycles and per-phase totals must equal
 * the corresponding Figure 2 bucket groups. Any drift between the
 * simulator's bucket bookkeeping and the emitted spans is a bug this
 * catches (tests/test_obs.cc, `msctool trace --check`, the
 * trace_smoke ctest target).
 */

#pragma once

#include <string>
#include <vector>

#include "obs/tracesink.h"

namespace msc {
namespace obs {

/** TraceSink accumulating span-duration sums for verification. */
class SpanAccounting final : public TraceSink
{
  public:
    explicit SpanAccounting(unsigned num_pus)
        : _perPu(num_pus, 0)
    {
    }

    void taskCommitted(const CommitEvent &e) override;
    void taskSquashed(const SquashEvent &e) override;

    /** Summed span durations on @p pu. */
    const std::vector<uint64_t> &perPu() const { return _perPu; }

    /**
     * Returns an empty string when every per-PU and per-bucket-group
     * sum matches @p stats, else a description of the first mismatch.
     */
    std::string verify(const arch::SimStats &stats) const;

  private:
    std::vector<uint64_t> _perPu;
    uint64_t _dispatch = 0;     ///< == TaskStart.
    uint64_t _execute = 0;      ///< == Useful + comm + dep + fetch.
    uint64_t _waitRetire = 0;   ///< == LoadImbalance.
    uint64_t _commit = 0;       ///< == TaskEnd.
    uint64_t _ctrlSquash = 0;   ///< == CtrlSquash.
    uint64_t _memSquash = 0;    ///< == MemSquash.
};

} // namespace obs
} // namespace msc
