#include "obs/phase.h"

#include <cstdio>

namespace msc {
namespace obs {

const char *
pipelinePhaseName(PipelinePhase p)
{
    switch (p) {
      case PipelinePhase::Transforms: return "transforms";
      case PipelinePhase::Profile:    return "profile";
      case PipelinePhase::Selection:  return "selection";
      case PipelinePhase::TraceCut:   return "trace-cut";
      case PipelinePhase::TimingSim:  return "timing-sim";
      default:                        return "?";
    }
}

std::string
formatPhaseTimes(const PhaseTimes &pt)
{
    std::string out;
    double tot = pt.total();
    double denom = tot > 0 ? tot : 1.0;
    for (size_t i = 0; i < NUM_PIPELINE_PHASES; ++i) {
        char line[96];
        std::snprintf(line, sizeof(line), "  %-12s %10.2f ms  (%5.1f%%)\n",
                      pipelinePhaseName(PipelinePhase(i)),
                      pt.micros[i] / 1000.0,
                      100.0 * pt.micros[i] / denom);
        out += line;
    }
    char line[96];
    std::snprintf(line, sizeof(line), "  %-12s %10.2f ms\n", "total",
                  tot / 1000.0);
    out += line;
    return out;
}

} // namespace obs
} // namespace msc
