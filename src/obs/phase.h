/**
 * @file
 * Wall-clock timing of the five sim::runPipeline stages.
 *
 * Attach a PhaseTimes to RunOptions::phaseTimes and the runner fills
 * in how long each stage took on the host. This is *host* time, not
 * simulated time: it answers "where does msctool spend its seconds",
 * not "where do PU cycles go". It is reported on stderr and (on
 * request) as a separate track in the trace file, and is deliberately
 * never part of `msc.sweep` documents, which stay byte-deterministic
 * (docs/METRICS.md).
 */

#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace msc {
namespace obs {

/** The stages of sim::runPipeline, in execution order. */
enum class PipelinePhase : uint8_t
{
    Transforms,     ///< IV hoisting, unrolling, CFG + layout.
    Profile,        ///< Profiling interpreter run.
    Selection,      ///< Task selection + partition verification.
    TraceCut,       ///< Functional trace + dynamic task cutting.
    TimingSim,      ///< The Multiscalar timing model.
    NUM_PHASES
};

constexpr size_t NUM_PIPELINE_PHASES = size_t(PipelinePhase::NUM_PHASES);

/** Short stable label for @p p. */
const char *pipelinePhaseName(PipelinePhase p);

/** Accumulated wall-clock microseconds per pipeline stage. */
struct PhaseTimes
{
    std::array<double, NUM_PIPELINE_PHASES> micros{};

    void
    add(PipelinePhase p, double us)
    {
        micros[size_t(p)] += us;
    }

    double
    total() const
    {
        double t = 0;
        for (double m : micros)
            t += m;
        return t;
    }
};

/** Renders an aligned "phase / ms / % of total" breakdown. */
std::string formatPhaseTimes(const PhaseTimes &pt);

} // namespace obs
} // namespace msc
