/**
 * @file
 * Service-level telemetry for the host process: a registry of named
 * counters, gauges, and fixed-bucket histograms (docs/OBSERVABILITY.md).
 *
 * This is the *service* half of src/obs: PR 3's TraceSink instruments
 * the simulated machine (cycle-accurate spans inside one run), this
 * registry instruments the daemon serving those runs — request rates,
 * queue depths, latency distributions. The two never mix: registry
 * snapshots are served on demand (`stats` verb) or printed to stderr,
 * so `msc.sweep` documents on stdout stay byte-deterministic.
 *
 * Concurrency contract:
 *
 *  - registration (counter()/gauge()/histogram()) takes the registry
 *    mutex and is compute-once: the first call for a name creates the
 *    metric, every later call (any thread) returns the same object;
 *  - the hot path — Counter::inc, Gauge::set/add, Histogram::observe
 *    — is a relaxed atomic op on a stable object, no locks; metric
 *    references never invalidate for the life of the registry;
 *  - snapshots (toJson()/toPrometheus()) iterate under the mutex and
 *    read each atomic once. Values from different metrics may be
 *    skewed by concurrent updates (there is no global epoch), but a
 *    quiescent registry snapshots deterministically: same ops, same
 *    bytes (tests/test_metrics.cc).
 *
 * Metric names are dotted paths (`mscd.requests.run`); the Prometheus
 * renderer maps every non-[a-zA-Z0-9_] byte to '_'. The JSON snapshot
 * is the versioned `msc.metrics` schema v1:
 *
 *   {"schema": "msc.metrics", "schema_version": 1,
 *    "counters":   {"name": <uint>, ...},
 *    "gauges":     {"name": <int>, ...},
 *    "histograms": {"name": {"count", "sum",
 *                            "buckets": [{"le", "count"}, ...]}, ...}}
 *
 * Histogram bucket counts are cumulative (Prometheus semantics): each
 * bucket counts observations <= its upper bound `le`; the last bucket
 * has `le: "+Inf"` and equals `count`.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "report/json.h"

namespace msc {
namespace obs {

/** `msc.metrics` schema version (bump on any field rename). */
constexpr int METRICS_SCHEMA_VERSION = 1;

/** Schema identifier emitted as `schema`. */
constexpr const char *METRICS_SCHEMA_NAME = "msc.metrics";

/** Monotonically increasing event count. */
class Counter
{
  public:
    void inc(uint64_t n = 1)
    {
        _v.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        return _v.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> _v{0};
};

/** Instantaneous level (queue depth, busy workers); can go down. */
class Gauge
{
  public:
    void set(int64_t v) { _v.store(v, std::memory_order_relaxed); }
    void add(int64_t d) { _v.fetch_add(d, std::memory_order_relaxed); }

    int64_t value() const
    {
        return _v.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> _v{0};
};

/**
 * Fixed-bucket histogram. Bounds are strictly increasing upper
 * bounds fixed at registration; an implicit +Inf bucket catches the
 * overflow. observe(v) lands in the FIRST bucket whose bound >= v —
 * a value exactly on a boundary belongs to that boundary's bucket
 * (`le` semantics, tested edge-by-edge in tests/test_metrics.cc).
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<uint64_t> bounds);

    void observe(uint64_t value);

    const std::vector<uint64_t> &bounds() const { return _bounds; }

    /** Per-bucket (NON-cumulative) count; index bounds().size() is
     *  the +Inf bucket. */
    uint64_t bucketCount(size_t i) const
    {
        return _counts[i].load(std::memory_order_relaxed);
    }

    uint64_t count() const
    {
        return _count.load(std::memory_order_relaxed);
    }

    uint64_t sum() const
    {
        return _sum.load(std::memory_order_relaxed);
    }

  private:
    std::vector<uint64_t> _bounds;
    std::unique_ptr<std::atomic<uint64_t>[]> _counts;
    std::atomic<uint64_t> _count{0};
    std::atomic<uint64_t> _sum{0};
};

/**
 * The process-wide metric namespace. One registry per served process
 * (the Server owns it); tests build their own. All methods are
 * thread-safe; returned references are stable for the registry's
 * lifetime.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Returns the counter named @p name, creating it on first use. */
    Counter &counter(const std::string &name);

    /** Returns the gauge named @p name, creating it on first use. */
    Gauge &gauge(const std::string &name);

    /**
     * Returns the histogram named @p name, creating it with @p bounds
     * on first use. Later calls return the existing histogram and
     * IGNORE @p bounds (compute-once: the first registration wins);
     * empty bounds default to latencyBucketsUs().
     */
    Histogram &histogram(const std::string &name,
                         std::vector<uint64_t> bounds = {});

    /**
     * Registers a gauge whose value is computed by @p read at
     * snapshot time — for levels owned elsewhere (e.g. the session
     * pool's cumulative cache counters). @p read must stay callable
     * until the registry is destroyed or the callback re-registered;
     * re-registering a name replaces the callback.
     */
    void gaugeCallback(const std::string &name,
                       std::function<int64_t()> read);

    /** Snapshot as the `msc.metrics` v1 document (schema above).
     *  Names iterate sorted, so output is deterministic. */
    report::Json toJson() const;

    /** Snapshot in the Prometheus text exposition format (metric
     *  names sanitized, histogram buckets cumulative with a final
     *  le="+Inf", plus _sum/_count series). */
    std::string toPrometheus() const;

    /** Default latency bucket upper bounds in microseconds: 100us ..
     *  10s roughly geometrically, covering sub-ms cache hits through
     *  multi-second paper-scale sweeps. */
    static const std::vector<uint64_t> &latencyBucketsUs();

  private:
    mutable std::mutex _mu;
    // std::map keeps snapshots name-sorted; unique_ptr keeps metric
    // addresses stable across registrations.
    std::map<std::string, std::unique_ptr<Counter>> _counters;
    std::map<std::string, std::unique_ptr<Gauge>> _gauges;
    std::map<std::string, std::unique_ptr<Histogram>> _histograms;
    std::map<std::string, std::function<int64_t()>> _callbacks;
};

} // namespace obs
} // namespace msc
