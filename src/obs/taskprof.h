/**
 * @file
 * Per-static-task attribution: which tasks of the partition the PU
 * cycles actually went to.
 *
 * The aggregate SimStats breakdown (Figure 5) says *what kind* of
 * cycle was spent; this profile says *whose* it was, keyed by static
 * task id — the unit a selection heuristic can act on. A TaskProfiler
 * sink accumulates dispatch/commit/squash counts, committed
 * instructions and the full CycleBuckets per static task, plus the
 * wrong-path (bogus) totals that belong to no task. Render it as the
 * human "hot tasks" table (formatHotTasks) or as the versioned
 * `msc.taskprof` JSON document (docs/METRICS.md) that sits alongside
 * `msc.sweep`.
 */

#pragma once

#include <string>
#include <vector>

#include "obs/tracesink.h"
#include "report/json.h"

namespace msc {
namespace obs {

/** Accumulated attribution for one static task. */
struct StaticTaskProfile
{
    uint64_t dispatches = 0;        ///< Instances assigned to a PU.
    uint64_t commits = 0;           ///< Instances retired.
    uint64_t ctrlSquashes = 0;      ///< Instances killed by control.
    uint64_t memSquashes = 0;       ///< Instances killed by memory.

    uint64_t committedInsts = 0;    ///< Instructions retired.
    uint64_t squashPenaltyCycles = 0;

    /** Cycle attribution of committed instances (Figure 2 kinds). */
    arch::CycleBuckets buckets;

    /** All PU cycles this static task accounts for. */
    uint64_t
    totalCycles() const
    {
        return buckets.total() + squashPenaltyCycles;
    }
};

/** TraceSink that aggregates per-static-task attribution. */
class TaskProfiler final : public TraceSink
{
  public:
    void taskAssigned(const AssignEvent &e) override;
    void taskCommitted(const CommitEvent &e) override;
    void taskSquashed(const SquashEvent &e) override;

    /** Indexed by static TaskId; grown on demand, so tasks never
     *  dispatched may be absent from the tail. */
    const std::vector<StaticTaskProfile> &profiles() const
    {
        return _profiles;
    }

    /// @name Wrong-path (bogus) work, attributable to no static task.
    /// @{
    uint64_t bogusDispatches() const { return _bogusDispatches; }
    uint64_t bogusPenaltyCycles() const { return _bogusPenaltyCycles; }
    /// @}

    /** Sum of totalCycles() over tasks plus the bogus penalty. */
    uint64_t totalCycles() const;

  private:
    StaticTaskProfile &at(tasksel::TaskId t);

    std::vector<StaticTaskProfile> _profiles;
    uint64_t _bogusDispatches = 0;
    uint64_t _bogusPenaltyCycles = 0;
};

/** `msc.taskprof` schema version (bump on any field rename). */
constexpr int TASKPROF_SCHEMA_VERSION = 1;

/** Schema identifier emitted as `schema`. */
constexpr const char *TASKPROF_SCHEMA_NAME = "msc.taskprof";

/**
 * Serializes the profile as a versioned `msc.taskprof` document.
 * @p part supplies static-task metadata (function, entry block,
 * static size); only dispatched tasks are listed, ascending by id.
 */
report::Json taskProfileToJson(const TaskProfiler &prof,
                               const tasksel::TaskPartition &part,
                               const std::string &workload);

/**
 * Renders the top-@p top_n tasks by total attributed cycles as an
 * aligned table (the "hot tasks" view `msctool trace` prints).
 */
std::string formatHotTasks(const TaskProfiler &prof,
                           const tasksel::TaskPartition &part,
                           size_t top_n = 10);

} // namespace obs
} // namespace msc
