#include "obs/taskprof.h"

#include <algorithm>
#include <cstdio>

namespace msc {
namespace obs {

using report::Json;

StaticTaskProfile &
TaskProfiler::at(tasksel::TaskId t)
{
    if (_profiles.size() <= t)
        _profiles.resize(t + 1);
    return _profiles[t];
}

void
TaskProfiler::taskAssigned(const AssignEvent &e)
{
    if (e.bogus)
        _bogusDispatches++;
    else
        at(e.staticTask).dispatches++;
}

void
TaskProfiler::taskCommitted(const CommitEvent &e)
{
    StaticTaskProfile &p = at(e.staticTask);
    p.commits++;
    p.committedInsts += e.insts;
    p.buckets.merge(e.buckets);
}

void
TaskProfiler::taskSquashed(const SquashEvent &e)
{
    if (e.bogus) {
        _bogusPenaltyCycles += e.penaltyCycles;
        return;
    }
    StaticTaskProfile &p = at(e.staticTask);
    if (e.kind == arch::CycleKind::MemSquash)
        p.memSquashes++;
    else
        p.ctrlSquashes++;
    p.squashPenaltyCycles += e.penaltyCycles;
}

uint64_t
TaskProfiler::totalCycles() const
{
    uint64_t t = _bogusPenaltyCycles;
    for (const auto &p : _profiles)
        t += p.totalCycles();
    return t;
}

Json
taskProfileToJson(const TaskProfiler &prof,
                  const tasksel::TaskPartition &part,
                  const std::string &workload)
{
    Json doc = Json::object();
    doc["schema"] = TASKPROF_SCHEMA_NAME;
    doc["schema_version"] = TASKPROF_SCHEMA_VERSION;
    doc["workload"] = workload;

    Json tasks = Json::array();
    const auto &profiles = prof.profiles();
    for (tasksel::TaskId t = 0; t < profiles.size(); ++t) {
        const StaticTaskProfile &p = profiles[t];
        if (p.dispatches == 0)
            continue;
        Json e = Json::object();
        e["task"] = t;
        if (t < part.tasks.size()) {
            const tasksel::Task &st = part.tasks[t];
            e["func"] = part.prog->function(st.func).name;
            e["entry_block"] = st.entry;
            e["static_insts"] = st.staticInsts;
        }
        e["dispatches"] = p.dispatches;
        e["commits"] = p.commits;
        e["ctrl_squashes"] = p.ctrlSquashes;
        e["mem_squashes"] = p.memSquashes;
        e["committed_insts"] = p.committedInsts;
        e["squash_penalty_cycles"] = p.squashPenaltyCycles;
        Json buckets = Json::object();
        for (size_t i = 0; i < arch::NUM_CYCLE_KINDS; ++i)
            buckets[arch::cycleKindId(arch::CycleKind(i))] =
                p.buckets.counts[i];
        e["cycle_breakdown"] = std::move(buckets);
        e["total_cycles"] = p.totalCycles();
        tasks.push(std::move(e));
    }
    doc["tasks"] = std::move(tasks);

    Json bogus = Json::object();
    bogus["dispatches"] = prof.bogusDispatches();
    bogus["squash_penalty_cycles"] = prof.bogusPenaltyCycles();
    doc["bogus"] = std::move(bogus);
    return doc;
}

std::string
formatHotTasks(const TaskProfiler &prof,
               const tasksel::TaskPartition &part, size_t top_n)
{
    const auto &profiles = prof.profiles();
    std::vector<tasksel::TaskId> order;
    for (tasksel::TaskId t = 0; t < profiles.size(); ++t)
        if (profiles[t].dispatches > 0)
            order.push_back(t);
    // Hottest first; ties broken by id so the table is deterministic.
    std::stable_sort(order.begin(), order.end(),
                     [&](tasksel::TaskId a, tasksel::TaskId b) {
                         return profiles[a].totalCycles() >
                                profiles[b].totalCycles();
                     });

    uint64_t denom = prof.totalCycles();
    if (!denom)
        denom = 1;

    std::string out;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %4s %-24s %8s %8s %8s %10s %12s %7s\n", "task",
                  "location", "disp", "commit", "squash", "insts",
                  "cycles", "share");
    out += line;
    size_t shown = 0;
    for (tasksel::TaskId t : order) {
        if (shown++ >= top_n)
            break;
        const StaticTaskProfile &p = profiles[t];
        std::string loc = "?";
        if (t < part.tasks.size()) {
            const tasksel::Task &st = part.tasks[t];
            loc = part.prog->function(st.func).name + "@b" +
                  std::to_string(st.entry);
        }
        std::snprintf(line, sizeof(line),
                      "  %4u %-24s %8llu %8llu %8llu %10llu %12llu "
                      "%6.1f%%\n",
                      t, loc.c_str(),
                      (unsigned long long)p.dispatches,
                      (unsigned long long)p.commits,
                      (unsigned long long)(p.ctrlSquashes +
                                           p.memSquashes),
                      (unsigned long long)p.committedInsts,
                      (unsigned long long)p.totalCycles(),
                      100.0 * double(p.totalCycles()) / double(denom));
        out += line;
    }
    if (prof.bogusPenaltyCycles() || prof.bogusDispatches()) {
        std::snprintf(line, sizeof(line),
                      "  %4s %-24s %8llu %8s %8s %10s %12llu %6.1f%%\n",
                      "-", "(wrong-path)",
                      (unsigned long long)prof.bogusDispatches(), "-",
                      "-", "-",
                      (unsigned long long)prof.bogusPenaltyCycles(),
                      100.0 * double(prof.bogusPenaltyCycles()) /
                          double(denom));
        out += line;
    }
    return out;
}

} // namespace obs
} // namespace msc
