/**
 * @file
 * Control-flow speculation hardware: the gshare intra-task branch
 * predictor, the path-based inter-task predictor (Jacobson et al.
 * [9]: 16-bit path history, 64K-entry table of 2-bit counters with
 * 2-bit target numbers), and a return-address stack for Return-kind
 * task targets.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "ir/types.h"

namespace msc {
namespace arch {

/** Classic gshare: XOR of global history and PC indexing a table of
 *  2-bit saturating counters. */
class Gshare
{
  public:
    Gshare(unsigned hist_bits, size_t table_size)
        : _histMask((1u << hist_bits) - 1), _table(table_size, 1)
    {}

    bool
    predict(uint64_t pc) const
    {
        return _table[index(pc)] >= 2;
    }

    void
    update(uint64_t pc, bool taken)
    {
        uint8_t &c = _table[index(pc)];
        if (taken && c < 3)
            ++c;
        else if (!taken && c > 0)
            --c;
        _history = ((_history << 1) | (taken ? 1 : 0)) & _histMask;
    }

  private:
    size_t
    index(uint64_t pc) const
    {
        return ((pc >> 2) ^ _history) % _table.size();
    }

    uint32_t _history = 0;
    uint32_t _histMask;
    std::vector<uint8_t> _table;
};

/**
 * Path-based inter-task target predictor. Each entry holds a 2-bit
 * confidence counter and a 2-bit target number; the index hashes the
 * path history of recent task entry addresses.
 */
class TaskPredictor
{
  public:
    TaskPredictor(unsigned hist_bits, size_t table_size,
                  unsigned max_targets)
        : _histMask((1u << hist_bits) - 1), _maxTargets(max_targets),
          _entries(table_size)
    {}

    /** Predicts the successor target number of the task whose entry
     *  code address is @p task_addr. */
    unsigned
    predict(uint64_t task_addr) const
    {
        const Entry &e = _entries[index(task_addr)];
        return e.target;
    }

    /**
     * Trains on the resolved outcome and rolls the path history.
     *
     * @param task_addr entry address of the resolved task.
     * @param actual actual target number taken (pass 0 when the
     *        actual target was untracked; the misprediction is
     *        recorded by the caller).
     */
    void
    update(uint64_t task_addr, unsigned actual)
    {
        Entry &e = _entries[index(task_addr)];
        if (e.target == actual) {
            if (e.counter < 3)
                ++e.counter;
        } else if (e.counter > 0) {
            --e.counter;
        } else {
            e.target = uint8_t(actual & (_maxTargets - 1));
            e.counter = 1;
        }
        // Path history: fold in the task address and the taken target.
        _history = ((_history << 3) ^ uint32_t(task_addr >> 2)
                    ^ actual) & _histMask;
    }

  private:
    struct Entry
    {
        uint8_t counter = 0;
        uint8_t target = 0;
    };

    size_t
    index(uint64_t task_addr) const
    {
        return ((task_addr >> 2) ^ _history) % _entries.size();
    }

    uint32_t _history = 0;
    uint32_t _histMask;
    unsigned _maxTargets;
    std::vector<Entry> _entries;
};

/** Bounded return-address stack for Return-kind targets. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth) : _depth(depth) {}

    void
    push(ir::BlockRef return_site)
    {
        if (_stack.size() >= _depth)
            _stack.erase(_stack.begin());  // Overflow loses the oldest.
        _stack.push_back(return_site);
    }

    /** Pops the predicted return site; invalid ref when empty. */
    ir::BlockRef
    pop()
    {
        if (_stack.empty())
            return {};
        ir::BlockRef r = _stack.back();
        _stack.pop_back();
        return r;
    }

    void clear() { _stack.clear(); }
    size_t size() const { return _stack.size(); }

  private:
    unsigned _depth;
    std::vector<ir::BlockRef> _stack;
};

} // namespace arch
} // namespace msc
