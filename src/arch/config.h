/**
 * @file
 * Simulator configuration, defaulted to the paper's §4.2 parameters.
 */

#pragma once

#include <cstdint>
#include <cstring>

#include "ir/types.h"

namespace msc {
namespace arch {

/**
 * Architected register count. One constant shared with the IR layer:
 * every per-register array in the timing model (forwarding state,
 * SimStats::extWaitByReg) is sized from here, and stats.h
 * static_asserts the agreement so the two layers cannot drift.
 */
constexpr unsigned NUM_REGS = ir::NUM_REGS;

/**
 * Which simulator core advances time (docs/PERFORMANCE.md).
 *
 * Both cores produce byte-identical results — SimStats, msc.sweep,
 * msc.taskprof, and Perfetto traces — on every input; the cycle core
 * is the reference implementation, the event core skips quiescent
 * cycles. Because the outputs are identical by contract, the mode is
 * deliberately NOT hashed into pipeline cache keys.
 */
enum class CoreMode : uint8_t
{
    Cycle,  ///< Reference: advance one cycle at a time.
    Event,  ///< Fast path: jump quiescent stretches to the next event.
};

constexpr const char *
coreModeName(CoreMode m)
{
    return m == CoreMode::Cycle ? "cycle" : "event";
}

/** Parses "cycle"/"event"; returns false (out untouched) otherwise. */
inline bool
parseCoreMode(const char *s, CoreMode &out)
{
    if (std::strcmp(s, "cycle") == 0) {
        out = CoreMode::Cycle;
        return true;
    }
    if (std::strcmp(s, "event") == 0) {
        out = CoreMode::Event;
        return true;
    }
    return false;
}

/** One cache level's geometry. */
struct CacheConfig
{
    uint64_t sizeBytes = 64 * 1024;
    unsigned assoc = 2;
    unsigned blockBytes = 32;
    unsigned hitLatency = 1;
    unsigned banks = 4;
};

/** Full Multiscalar processor configuration (§4.2). */
struct SimConfig
{
    /// @name Processing units.
    /// @{
    unsigned numPUs = 4;
    bool outOfOrder = true;     ///< Out-of-order vs in-order issue.
    unsigned issueWidth = 2;    ///< 2-way issue.
    unsigned fetchWidth = 2;
    unsigned robSize = 16;      ///< 16-entry reorder buffer.
    unsigned issueListSize = 8; ///< 8-entry issue list.
    unsigned numIntFU = 2;
    unsigned numFpFU = 1;
    unsigned numBrFU = 1;
    unsigned numMemFU = 1;
    /// @}

    /// @name Task management.
    /// @{
    unsigned maxTargets = 4;        ///< Successors tracked per task.
    unsigned taskStartOverhead = 2; ///< Dispatch / pipe-fill cycles.
    unsigned taskEndOverhead = 2;   ///< Commit cycles at retire.
    /// @}

    /// @name Prediction.
    /// @{
    unsigned taskPredHistBits = 16;     ///< Path-based scheme [9].
    unsigned taskPredTableSize = 64 * 1024;
    unsigned gshareHistBits = 16;
    unsigned gshareTableSize = 64 * 1024;
    unsigned rasDepth = 16;
    /// @}

    /// @name Register communication ring.
    /// @{
    unsigned ringBandwidth = 2;     ///< Values per cycle per link.
    /// @}

    /// @name Memory hierarchy.
    /// @{
    CacheConfig l1i{64 * 1024, 2, 32, 1, 4};
    CacheConfig l1d{64 * 1024, 2, 32, 1, 4};
    unsigned arbEntriesPerPU = 32;
    unsigned arbHitLatency = 2;
    unsigned syncTableSize = 256;
    CacheConfig l2{4u * 1024 * 1024, 2, 32, 12, 1};
    unsigned memLatency = 58;
    /// @}

    /** Hard stop for runaway simulations. */
    uint64_t maxCycles = 2'000'000'000ull;

    /**
     * Core discipline. Event (the default) and Cycle are
     * byte-identical; Cycle is the slow reference escape hatch
     * (`--core=cycle` on msctool/bench binaries).
     */
    CoreMode coreMode = CoreMode::Event;

    /**
     * Returns the paper's configuration for @p pus processing units
     * (L1 caches scale from 64KB at 4 PUs to 128KB at 8 PUs, and are
     * interleaved with as many banks as PUs).
     */
    static SimConfig
    paperConfig(unsigned pus, bool out_of_order = true)
    {
        SimConfig c;
        c.numPUs = pus;
        c.outOfOrder = out_of_order;
        uint64_t l1 = (pus >= 8) ? 128 * 1024 : 64 * 1024;
        c.l1i.sizeBytes = l1;
        c.l1d.sizeBytes = l1;
        c.l1i.banks = pus;
        c.l1d.banks = pus;
        return c;
    }
};

} // namespace arch
} // namespace msc
