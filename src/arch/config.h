/**
 * @file
 * Simulator configuration, defaulted to the paper's §4.2 parameters.
 */

#pragma once

#include <cstdint>

#include "ir/types.h"

namespace msc {
namespace arch {

/**
 * Architected register count. One constant shared with the IR layer:
 * every per-register array in the timing model (forwarding state,
 * SimStats::extWaitByReg) is sized from here, and stats.h
 * static_asserts the agreement so the two layers cannot drift.
 */
constexpr unsigned NUM_REGS = ir::NUM_REGS;

/** One cache level's geometry. */
struct CacheConfig
{
    uint64_t sizeBytes = 64 * 1024;
    unsigned assoc = 2;
    unsigned blockBytes = 32;
    unsigned hitLatency = 1;
    unsigned banks = 4;
};

/** Full Multiscalar processor configuration (§4.2). */
struct SimConfig
{
    /// @name Processing units.
    /// @{
    unsigned numPUs = 4;
    bool outOfOrder = true;     ///< Out-of-order vs in-order issue.
    unsigned issueWidth = 2;    ///< 2-way issue.
    unsigned fetchWidth = 2;
    unsigned robSize = 16;      ///< 16-entry reorder buffer.
    unsigned issueListSize = 8; ///< 8-entry issue list.
    unsigned numIntFU = 2;
    unsigned numFpFU = 1;
    unsigned numBrFU = 1;
    unsigned numMemFU = 1;
    /// @}

    /// @name Task management.
    /// @{
    unsigned maxTargets = 4;        ///< Successors tracked per task.
    unsigned taskStartOverhead = 2; ///< Dispatch / pipe-fill cycles.
    unsigned taskEndOverhead = 2;   ///< Commit cycles at retire.
    /// @}

    /// @name Prediction.
    /// @{
    unsigned taskPredHistBits = 16;     ///< Path-based scheme [9].
    unsigned taskPredTableSize = 64 * 1024;
    unsigned gshareHistBits = 16;
    unsigned gshareTableSize = 64 * 1024;
    unsigned rasDepth = 16;
    /// @}

    /// @name Register communication ring.
    /// @{
    unsigned ringBandwidth = 2;     ///< Values per cycle per link.
    /// @}

    /// @name Memory hierarchy.
    /// @{
    CacheConfig l1i{64 * 1024, 2, 32, 1, 4};
    CacheConfig l1d{64 * 1024, 2, 32, 1, 4};
    unsigned arbEntriesPerPU = 32;
    unsigned arbHitLatency = 2;
    unsigned syncTableSize = 256;
    CacheConfig l2{4u * 1024 * 1024, 2, 32, 12, 1};
    unsigned memLatency = 58;
    /// @}

    /** Hard stop for runaway simulations. */
    uint64_t maxCycles = 2'000'000'000ull;

    /**
     * Returns the paper's configuration for @p pus processing units
     * (L1 caches scale from 64KB at 4 PUs to 128KB at 8 PUs, and are
     * interleaved with as many banks as PUs).
     */
    static SimConfig
    paperConfig(unsigned pus, bool out_of_order = true)
    {
        SimConfig c;
        c.numPUs = pus;
        c.outOfOrder = out_of_order;
        uint64_t l1 = (pus >= 8) ? 128 * 1024 : 64 * 1024;
        c.l1i.sizeBytes = l1;
        c.l1d.sizeBytes = l1;
        c.l1i.banks = pus;
        c.l1d.banks = pus;
        return c;
    }
};

} // namespace arch
} // namespace msc
