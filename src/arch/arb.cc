#include "arch/arb.h"

#include <algorithm>

namespace msc {
namespace arch {

void
Arb::recordLoad(TaskSeq task, uint64_t addr, uint64_t pc)
{
    auto &list = _entries[addr];

    // The version observed: youngest store by a task <= this one.
    TaskSeq src = NO_TASK;
    for (const Access &a : list)
        if (a.stored && a.task <= task &&
            (src == NO_TASK || a.task > src)) {
            src = a.task;
        }

    for (Access &a : list) {
        if (a.task == task) {
            if (!a.loaded && !a.stored) {
                a.loaded = true;
                a.loadSrc = src;
                a.loadPc = pc;
            } else if (!a.loaded) {
                // First access was a store: the load reads the task's
                // own value; no upstream exposure.
                a.loaded = true;
                a.loadSrc = task;
                a.loadPc = pc;
            }
            return;
        }
    }
    Access a;
    a.task = task;
    a.loaded = true;
    a.loadSrc = src;
    a.loadPc = pc;
    list.push_back(a);
    _byTask[task].push_back(addr);
}

Arb::StoreResult
Arb::recordStore(TaskSeq task, uint64_t addr)
{
    auto &list = _entries[addr];

    StoreResult res;
    for (const Access &a : list) {
        // A younger task read a version older than this store: its
        // load missed this store's value.
        if (a.task > task && a.loaded &&
            (a.loadSrc == NO_TASK || a.loadSrc < task)) {
            if (res.victim == NO_TASK || a.task < res.victim) {
                res.victim = a.task;
                res.loadPc = a.loadPc;
            }
        }
    }

    for (Access &a : list) {
        if (a.task == task) {
            a.stored = true;
            return res;
        }
    }
    Access a;
    a.task = task;
    a.stored = true;
    list.push_back(a);
    _byTask[task].push_back(addr);
    return res;
}

void
Arb::filterLists(const std::vector<uint64_t> &addrs, TaskSeq task,
                 bool retire)
{
    for (uint64_t addr : addrs) {
        auto it = _entries.find(addr);
        if (it == _entries.end())
            continue;  // Already dropped via another indexed task.
        auto &list = it->second;
        list.erase(std::remove_if(list.begin(), list.end(),
                                  [&](const Access &a) {
                                      return retire ? a.task <= task
                                                    : a.task >= task;
                                  }),
                   list.end());
        if (list.empty())
            _entries.erase(it);
    }
}

void
Arb::squashFrom(TaskSeq task)
{
    auto first = _byTask.lower_bound(task);
    for (auto it = first; it != _byTask.end(); ++it)
        filterLists(it->second, task, /*retire=*/false);
    _byTask.erase(first, _byTask.end());
}

void
Arb::retireUpTo(TaskSeq task)
{
    auto last = _byTask.upper_bound(task);
    for (auto it = _byTask.begin(); it != last; ++it)
        filterLists(it->second, task, /*retire=*/true);
    _byTask.erase(_byTask.begin(), last);
}

} // namespace arch
} // namespace msc
