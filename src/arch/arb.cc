#include "arch/arb.h"

#include <algorithm>

namespace msc {
namespace arch {

void
Arb::recordLoad(TaskSeq task, uint64_t addr, uint64_t pc)
{
    auto &list = _entries[addr];

    // The version observed: youngest store by a task <= this one.
    TaskSeq src = NO_TASK;
    for (const Access &a : list)
        if (a.stored && a.task <= task &&
            (src == NO_TASK || a.task > src)) {
            src = a.task;
        }

    for (Access &a : list) {
        if (a.task == task) {
            if (!a.loaded && !a.stored) {
                a.loaded = true;
                a.loadSrc = src;
                a.loadPc = pc;
            } else if (!a.loaded) {
                // First access was a store: the load reads the task's
                // own value; no upstream exposure.
                a.loaded = true;
                a.loadSrc = task;
                a.loadPc = pc;
            }
            return;
        }
    }
    Access a;
    a.task = task;
    a.loaded = true;
    a.loadSrc = src;
    a.loadPc = pc;
    list.push_back(a);
}

Arb::StoreResult
Arb::recordStore(TaskSeq task, uint64_t addr)
{
    auto &list = _entries[addr];

    StoreResult res;
    for (const Access &a : list) {
        // A younger task read a version older than this store: its
        // load missed this store's value.
        if (a.task > task && a.loaded &&
            (a.loadSrc == NO_TASK || a.loadSrc < task)) {
            if (res.victim == NO_TASK || a.task < res.victim) {
                res.victim = a.task;
                res.loadPc = a.loadPc;
            }
        }
    }

    for (Access &a : list) {
        if (a.task == task) {
            a.stored = true;
            return res;
        }
    }
    Access a;
    a.task = task;
    a.stored = true;
    list.push_back(a);
    return res;
}

void
Arb::squashFrom(TaskSeq task)
{
    for (auto it = _entries.begin(); it != _entries.end();) {
        auto &list = it->second;
        list.erase(std::remove_if(list.begin(), list.end(),
                                  [&](const Access &a) {
                                      return a.task >= task;
                                  }),
                   list.end());
        if (list.empty())
            it = _entries.erase(it);
        else
            ++it;
    }
}

void
Arb::retireUpTo(TaskSeq task)
{
    for (auto it = _entries.begin(); it != _entries.end();) {
        auto &list = it->second;
        list.erase(std::remove_if(list.begin(), list.end(),
                                  [&](const Access &a) {
                                      return a.task <= task;
                                  }),
                   list.end());
        if (list.empty())
            it = _entries.erase(it);
        else
            ++it;
    }
}

} // namespace arch
} // namespace msc
