/**
 * @file
 * The unidirectional register-communication ring (§4.2): each link
 * carries a bounded number of values per cycle; a value forwarded by
 * PU p reaches the adjacent PU p+1 in the same cycle (bypass) and each
 * further hop adds one cycle, subject to per-link bandwidth.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace msc {
namespace arch {

/** Bandwidth-modeled forwarding ring. */
class Ring
{
  public:
    Ring(unsigned num_pus, unsigned bandwidth)
        : _numPUs(num_pus), _bandwidth(bandwidth)
    {}

    /**
     * Sends one value from PU @p from at cycle @p when and computes
     * its arrival time at every PU (consuming link slots on the way
     * around the ring).
     *
     * @param arrivals filled with the arrival cycle per PU; the
     *        sender's own slot holds @p when.
     */
    void
    broadcast(unsigned from, uint64_t when, std::vector<uint64_t> &arrivals)
    {
        arrivals.assign(_numPUs, 0);
        arrivals[from] = when;
        uint64_t t = when;
        unsigned p = from;
        for (unsigned hop = 1; hop < _numPUs; ++hop) {
            // Slot on link p -> p+1, adjacent bypass in the same cycle.
            t = claimSlot(p, t);
            p = (p + 1) % _numPUs;
            arrivals[p] = t;
            ++t;  // Each further hop costs a cycle.
        }
    }

    /** Clears bandwidth bookkeeping older than @p cycle (optional
     *  memory hygiene for long runs). */
    void
    trimBefore(uint64_t cycle)
    {
        for (auto &l : _links) {
            if (cycle <= l.base)
                continue;
            size_t drop = size_t(cycle - l.base);
            if (drop >= l.used.size())
                l.used.clear();
            else
                l.used.erase(l.used.begin(),
                             l.used.begin() + ptrdiff_t(drop));
            l.base = cycle;
        }
    }

  private:
    /**
     * Per-link slot usage as a sliding window: used[i] counts claims
     * at cycle base+i. Claims cluster near the current cycle and
     * trimBefore advances the window, so this stays small; a dropped
     * (trimmed) or never-claimed cycle reads as zero, exactly like an
     * absent hash-map entry would.
     */
    struct Link
    {
        uint64_t base = 0;
        std::vector<unsigned> used;
    };

    unsigned &
    slot(Link &l, uint64_t t)
    {
        if (l.used.empty()) {
            l.base = t;
            l.used.assign(64, 0);
        } else if (t < l.base) {
            l.used.insert(l.used.begin(), size_t(l.base - t), 0);
            l.base = t;
        } else if (t - l.base >= l.used.size()) {
            l.used.resize(size_t(t - l.base) + 64, 0);
        }
        return l.used[size_t(t - l.base)];
    }

    /** Earliest cycle >= @p t with a free slot on link @p link. */
    uint64_t
    claimSlot(unsigned link, uint64_t t)
    {
        if (_links.size() < _numPUs)
            _links.resize(_numPUs);
        Link &l = _links[link];
        while (slot(l, t) >= _bandwidth)
            ++t;
        ++slot(l, t);
        return t;
    }

    unsigned _numPUs;
    unsigned _bandwidth;
    std::vector<Link> _links;
};

} // namespace arch
} // namespace msc
