/**
 * @file
 * The unidirectional register-communication ring (§4.2): each link
 * carries a bounded number of values per cycle; a value forwarded by
 * PU p reaches the adjacent PU p+1 in the same cycle (bypass) and each
 * further hop adds one cycle, subject to per-link bandwidth.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace msc {
namespace arch {

/** Bandwidth-modeled forwarding ring. */
class Ring
{
  public:
    Ring(unsigned num_pus, unsigned bandwidth)
        : _numPUs(num_pus), _bandwidth(bandwidth)
    {}

    /**
     * Sends one value from PU @p from at cycle @p when and computes
     * its arrival time at every PU (consuming link slots on the way
     * around the ring).
     *
     * @param arrivals filled with the arrival cycle per PU; the
     *        sender's own slot holds @p when.
     */
    void
    broadcast(unsigned from, uint64_t when, std::vector<uint64_t> &arrivals)
    {
        arrivals.assign(_numPUs, 0);
        arrivals[from] = when;
        uint64_t t = when;
        unsigned p = from;
        for (unsigned hop = 1; hop < _numPUs; ++hop) {
            // Slot on link p -> p+1, adjacent bypass in the same cycle.
            t = claimSlot(p, t);
            p = (p + 1) % _numPUs;
            arrivals[p] = t;
            ++t;  // Each further hop costs a cycle.
        }
    }

    /** Clears bandwidth bookkeeping older than @p cycle (optional
     *  memory hygiene for long runs). */
    void
    trimBefore(uint64_t cycle)
    {
        for (auto &link : _slots) {
            for (auto it = link.begin(); it != link.end();) {
                if (it->first < cycle)
                    it = link.erase(it);
                else
                    ++it;
            }
        }
    }

  private:
    /** Earliest cycle >= @p t with a free slot on link @p link. */
    uint64_t
    claimSlot(unsigned link, uint64_t t)
    {
        if (_slots.size() < _numPUs)
            _slots.resize(_numPUs);
        auto &used = _slots[link];
        while (used[t] >= _bandwidth)
            ++t;
        used[t]++;
        return t;
    }

    unsigned _numPUs;
    unsigned _bandwidth;
    std::vector<std::unordered_map<uint64_t, unsigned>> _slots;
};

} // namespace arch
} // namespace msc
