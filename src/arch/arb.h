/**
 * @file
 * The Address Resolution Buffer (ARB, Franklin & Sohi [7]) and the
 * memory-dependence synchronization table (Moshovos et al. [11]).
 *
 * Tasks speculate that their loads do not depend on stores of earlier
 * in-flight tasks. The ARB tracks the speculative memory accesses of
 * every in-flight task; when a store from an older task hits an
 * address that a younger task already loaded (and the younger task's
 * load did not get its value from a task at least as young as the
 * storer), a memory-dependence violation squashes the younger task and
 * its successors. The sync table remembers offending (store PC, load
 * PC) pairs so subsequent instances of the load wait instead of
 * speculating (§3.4).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace msc {
namespace arch {

/** Sequence number of a dynamic task instance (program order). */
using TaskSeq = uint64_t;
constexpr TaskSeq NO_TASK = ~0ull;

/** ARB model over word addresses. */
class Arb
{
  public:
    /**
     * @param total_entries total tracked addresses (entries/PU x PUs).
     */
    explicit Arb(unsigned total_entries) : _capacity(total_entries) {}

    /** True when no free entry remains for a new address. */
    bool full() const { return _entries.size() >= _capacity; }

    /** True when @p addr is already tracked (no new entry needed). */
    bool tracked(uint64_t addr) const { return _entries.count(addr) != 0; }

    /**
     * Records a load by @p task to @p addr. The version the load
     * observes is the youngest store to @p addr by a task <= @p task,
     * or "architectural" when none is in flight. @p pc identifies the
     * load instruction for sync-table training on violation.
     */
    void recordLoad(TaskSeq task, uint64_t addr, uint64_t pc);

    /** Outcome of a store: the violating task (if any) and the PC of
     *  its stale load. */
    struct StoreResult
    {
        TaskSeq victim = NO_TASK;
        uint64_t loadPc = 0;
    };

    /**
     * Records a store by @p task to @p addr.
     * @return the oldest younger task whose earlier load is now stale
     *         (a violation), with the offending load's PC.
     */
    StoreResult recordStore(TaskSeq task, uint64_t addr);

    /** Discards all accesses of tasks >= @p task (squash). */
    void squashFrom(TaskSeq task);

    /** Discards all accesses of tasks <= @p task (retire commit). */
    void retireUpTo(TaskSeq task);

    size_t entriesInUse() const { return _entries.size(); }

  private:
    struct Access
    {
        TaskSeq task;
        bool loaded = false;
        bool stored = false;
        /** Version the first load observed: youngest storing task
         *  <= task at load time; NO_TASK means architectural. */
        TaskSeq loadSrc = NO_TASK;
        /** PC of the first load (for sync-table training). */
        uint64_t loadPc = 0;
    };

    /** Per-address access list, ordered by task sequence. */
    std::unordered_map<uint64_t, std::vector<Access>> _entries;

    /**
     * Index: addresses first touched by each in-flight task, so
     * retireUpTo/squashFrom visit only the affected per-address lists
     * instead of sweeping the whole table per retired task. Pure
     * lookup acceleration: _entries evolves identically with or
     * without it.
     */
    std::map<TaskSeq, std::vector<uint64_t>> _byTask;

    /** Removes every access with task <=/>= @p task (per @p retire)
     *  from the lists of the indexed @p addrs, dropping emptied
     *  entries. */
    void filterLists(const std::vector<uint64_t> &addrs, TaskSeq task,
                     bool retire);

    unsigned _capacity;
};

/** Memory-dependence synchronization table. */
class SyncTable
{
  public:
    explicit SyncTable(unsigned capacity) : _capacity(capacity) {}

    /** Records that the load at @p load_pc violated against the store
     *  at @p store_pc. */
    void
    insert(uint64_t load_pc, uint64_t store_pc)
    {
        if (_map.size() >= _capacity && !_map.count(load_pc))
            _map.erase(_map.begin());  // Capacity eviction.
        _map[load_pc] = store_pc;
    }

    /** Store PC the load must synchronize with; 0 when unsynced. */
    uint64_t
    producerOf(uint64_t load_pc) const
    {
        auto it = _map.find(load_pc);
        return it == _map.end() ? 0 : it->second;
    }

    size_t size() const { return _map.size(); }

  private:
    unsigned _capacity;
    std::unordered_map<uint64_t, uint64_t> _map;
};

} // namespace arch
} // namespace msc
