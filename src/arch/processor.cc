#include "arch/processor.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>

#include "arch/arb.h"
#include "arch/cache.h"
#include "arch/predictors.h"
#include "arch/ring.h"
#include "cfg/liveness.h"
#include "obs/tracesink.h"

namespace msc {
namespace arch {

namespace {

using namespace ir;
using namespace tasksel;
using cfg::RegSet;

constexpr uint64_t INF = ~0ull;

/** One task instance occupying a PU. */
struct Instance
{
    uint64_t seq = 0;           ///< Dispatch order (unique).
    uint64_t dynIdx = 0;        ///< Index into the dynamic task stream.
    unsigned pu = 0;
    const DynTask *task = nullptr;  ///< Null for bogus instances.
    bool bogus = false;

    uint64_t assignCycle = 0;
    uint64_t fetchStart = 0;

    /// @name Pipeline state.
    /// @{
    uint32_t dispatched = 0;    ///< Instructions fetched so far.
    uint32_t doneCount = 0;
    uint32_t retPtr = 0;        ///< Contiguous done prefix (ROB free).
    uint32_t firstUnissued = 0;
    std::vector<uint8_t> issued, done;
    std::vector<uint64_t> readyTime;
    std::vector<int> deps;
    std::vector<RegSet> extMask;
    std::vector<uint64_t> doneCycle;
    std::vector<std::vector<uint32_t>> waiters;
    std::vector<uint32_t> inFlight;     ///< Issued, not yet done.
    std::array<int, NUM_REGS> lastWriter;
    std::array<uint64_t, NUM_REGS> regAvail;
    std::array<std::vector<uint32_t>, NUM_REGS> extWaiters;
    uint64_t icacheBlockedUntil = 0;
    int branchBlockedOn = -1;
    uint64_t curFetchLine = INF;
    /// @}

    /// @name Forwarding.
    /// @{
    RegSet createMask = 0;
    RegSet forwardedRegs = 0;
    RegSet pendingRelease = 0;
    std::array<std::vector<uint64_t>, NUM_REGS> fwdArr;
    std::array<std::vector<uint64_t>, NUM_REGS> subs;  ///< Consumer seqs.
    /// @}

    /// @name Status.
    /// @{
    bool completed = false;
    uint64_t completionCycle = INF;
    bool mispredictedSuccessor = false;
    bool successorDecided = false;  ///< Prediction/known-path consumed.
    bool rasDone = false;
    bool predUpdated = false;
    uint64_t retireStart = INF;
    /// @}

    CycleBuckets buckets;

    /**
     * Attribution bucket of this instance's most recent exec'd cycle.
     * A quiescent cycle's classification is a pure function of frozen
     * machine state, so the event core's skip replays this kind for
     * every skipped cycle instead of capturing a per-cycle signature
     * vector on the (busy) common path.
     */
    CycleKind lastKind = CycleKind::Useful;

    /**
     * Outstanding stores per code address, sorted by PC (the per-task
     * lists are tiny, so a flat sorted vector beats a hash map: the
     * per-assignment fill is one vector copy and the sync-gating scan
     * in tryIssue is a binary search). Seeded from the simulator's
     * per-dynIdx precomputation at assignment.
     */
    std::vector<std::pair<uint64_t, int>> pendingStorePc;

    /** Pointer to the count for @p pc, or nullptr when absent. */
    int *
    findStorePc(uint64_t pc)
    {
        auto it = std::lower_bound(
            pendingStorePc.begin(), pendingStorePc.end(), pc,
            [](const std::pair<uint64_t, int> &p, uint64_t v) {
                return p.first < v;
            });
        if (it == pendingStorePc.end() || it->first != pc)
            return nullptr;
        return &it->second;
    }

    size_t numInsts() const { return task ? task->insts.size() : 0; }

    /**
     * Restores a pooled instance to freshly-constructed state while
     * keeping container capacities (the event core's allocation-free
     * reuse path). Every field above must be covered here — a missed
     * one diverges the cores, which test_eventcore catches.
     */
    void
    resetForReuse()
    {
        seq = dynIdx = 0;
        pu = 0;
        task = nullptr;
        bogus = false;
        assignCycle = fetchStart = 0;
        dispatched = doneCount = retPtr = firstUnissued = 0;
        // issued/done/readyTime/deps/extMask/doneCycle/waiters and
        // lastWriter/regAvail are (re)assigned at instance creation
        // for non-bogus instances and never read for bogus ones.
        inFlight.clear();
        for (unsigned r = 0; r < NUM_REGS; ++r) {
            extWaiters[r].clear();
            fwdArr[r].clear();
            subs[r].clear();
        }
        icacheBlockedUntil = 0;
        branchBlockedOn = -1;
        curFetchLine = ~0ull;
        createMask = forwardedRegs = pendingRelease = 0;
        completed = false;
        completionCycle = ~0ull;
        mispredictedSuccessor = successorDecided = false;
        rasDone = predUpdated = false;
        retireStart = ~0ull;
        buckets.counts.fill(0);
        lastKind = CycleKind::Useful;
        pendingStorePc.clear();
    }
};

/** A pending memory-dependence violation found during the cycle. */
struct Violation
{
    uint64_t victimDynIdx;
    uint64_t loadPc;
    uint64_t storePc;
};

template <bool EV>
class Simulator
{
  public:
    Simulator(const TaskPartition &part, const std::vector<DynTask> &tasks,
              const SimConfig &cfg, obs::TraceSink *sink,
              runtime::Governor *gov)
        : _part(part), _tasks(tasks), _cfg(cfg), _gov(gov),
          _hier(cfg),
          _arb(cfg.arbEntriesPerPU * cfg.numPUs),
          _sync(cfg.syncTableSize),
          _ring(cfg.numPUs, cfg.ringBandwidth),
          _gshare(cfg.gshareHistBits, cfg.gshareTableSize),
          _taskPred(cfg.taskPredHistBits, cfg.taskPredTableSize,
                    cfg.maxTargets),
          _ras(cfg.rasDepth),
          _puBusy(cfg.numPUs, false),
          _sink(sink),
          _arbStallMark(cfg.numPUs, 0)
    {
        _stats.puOccupiedCycles.assign(cfg.numPUs, 0);

        // Event core: decode per-static-instruction operand lists
        // once — dispatch touches them for every dynamic instruction
        // of every instance, and the static program is tiny. The
        // reference core re-decodes per dispatch like the seed.
        if constexpr (EV) {
            _operands.resize(part.prog->functions.size());
            for (size_t f = 0; f < _operands.size(); ++f) {
                const auto &fn = part.prog->functions[f];
                _operands[f].resize(fn.blocks.size());
                for (size_t b = 0; b < fn.blocks.size(); ++b) {
                    const auto &bb = fn.blocks[b];
                    auto &ops = _operands[f][b];
                    ops.resize(bb.insts.size());
                    for (size_t i = 0; i < bb.insts.size(); ++i) {
                        bb.insts[i].uses(ops[i].srcs);
                        bb.insts[i].defs(ops[i].dsts);
                    }
                }
            }
        }
    }

    SimStats run();

  private:
    uint64_t taskEntryAddr(TaskId t) const;
    void trainTaskPredictor(Instance &pred);
    void assignPhase();
    void retirePhase();
    void execPhase();
    void execInstance(Instance &in);
    void dispatchInsts(Instance &in);
    bool tryIssue(Instance &in, uint32_t i,
                  std::array<unsigned, 5> &fu_free, bool &ext_wait,
                  bool &sync_wait);
    void writebacks(Instance &in);
    void broadcastReg(Instance &in, RegId r, uint64_t when);
    void deliver(Instance &in, RegId r, uint64_t when);
    void initRegAvail(Instance &in);
    void squashFrom(uint64_t seq, CycleKind kind);
    void resolveControl();
    void processViolations();
    Instance *bySeq(uint64_t seq);
    void emitCounters();
    void noteArbStall(unsigned pu);
    uint64_t nextEventCycle() const;
    void skipTo(uint64_t target);

    const TaskPartition &_part;
    const std::vector<DynTask> &_tasks;
    const SimConfig &_cfg;
    runtime::Governor *_gov;  ///< Optional budget/cancel governor.

    MemoryHierarchy _hier;
    Arb _arb;
    SyncTable _sync;
    Ring _ring;
    Gshare _gshare;
    TaskPredictor _taskPred;
    ReturnAddressStack _ras;

    std::deque<std::unique_ptr<Instance>> _window;
    std::vector<bool> _puBusy;
    uint64_t _now = 0;
    uint64_t _nextSeq = 0;
    uint64_t _nextDyn = 0;      ///< Next dynamic task to dispatch.
    std::vector<Violation> _violations;
    std::vector<uint64_t> _violationLoadPcScratch;

    /**
     * Per-dynIdx sorted (store pc, count) lists for Instance::
     * pendingStorePc, computed on first assignment of each dynamic
     * task and reused on re-assignment after squashes.
     */
    std::vector<std::vector<std::pair<uint64_t, int>>> _storePcs;
    std::vector<char> _storePcsDone;

    const std::vector<std::pair<uint64_t, int>> &
    storePcsOf(uint64_t dyn_idx)
    {
        if (_storePcsDone.empty()) {
            _storePcs.resize(_tasks.size());
            _storePcsDone.assign(_tasks.size(), 0);
        }
        if (!_storePcsDone[dyn_idx]) {
            auto &list = _storePcs[dyn_idx];
            for (const DynInst &di : _tasks[dyn_idx].insts) {
                if (_part.prog->inst(di.ref).isStore()) {
                    auto it = std::lower_bound(
                        list.begin(), list.end(),
                        std::make_pair(di.pc, 0));
                    if (it != list.end() && it->first == di.pc)
                        it->second++;
                    else
                        list.insert(it, {di.pc, 1});
                }
            }
            _storePcsDone[dyn_idx] = 1;
        }
        return _storePcs[dyn_idx];
    }

    /// @name Observation (null sink == tracing disabled).
    /// @{
    obs::TraceSink *_sink;
    std::vector<uint64_t> _arbStallMark;  ///< Last instant, per PU, +1.
    /// @}

    SimStats _stats;
    uint64_t _spanSum = 0;
    uint64_t _spanCycles = 0;

    /// @name Event core (CoreMode::Event; docs/PERFORMANCE.md).
    ///
    /// The event core runs every cycle through the normal phases but
    /// watches a progress flag that every state mutation sets. A cycle
    /// that mutated nothing is *quiescent*: its per-cycle accounting is
    /// a pure function of frozen machine state, so the same accounting
    /// repeats verbatim until the next component event. The core
    /// computes the earliest cycle any component can act, bulk-replays
    /// the probe cycle's accounting (per-instance kinds from lastKind,
    /// stall-counter increments, ARB-overflow instants) across the
    /// gap, and jumps _now there. Results are byte-identical to the
    /// cycle core by construction.
    /// @{
    bool _progress = false;     ///< Any state mutated this cycle.
    std::vector<unsigned> _arbPuCap;    ///< ARB-stall instants, per PU.
    uint64_t _syncCap = 0;              ///< syncStallCycles increments.
    uint64_t _arbCap = 0;               ///< arbOverflowStalls increments.

    /// Allocation-free busy path: retired/squashed instances return to
    /// the pool and are reused (resetForReuse), and ring-arrival
    /// buffers use member scratch instead of fresh vectors.
    std::vector<std::unique_ptr<Instance>> _pool;
    std::vector<uint64_t> _arrScratch;
    /// @}

    /**
     * Per-static-instruction operand lists (srcs from uses(), dsts
     * from defs()), decoded once at construction — event core only;
     * the reference core keeps the seed's per-dispatch decode.
     * Indexed [func][block][index] by InstRef.
     */
    struct Operands
    {
        std::vector<RegId> srcs, dsts;
    };
    std::vector<std::vector<std::vector<Operands>>> _operands;
};

template <bool EV>
uint64_t
Simulator<EV>::taskEntryAddr(TaskId t) const
{
    const Task &st = _part.tasks[t];
    return _part.prog->instAddr(st.func, st.entry, 0);
}

template <bool EV>
void
Simulator<EV>::trainTaskPredictor(Instance &pred)
{
    // Trained exactly once per dynamic transition, at the moment the
    // sequencer consumes it, so the path history rolls in program
    // order and predict-time and train-time indices agree.
    if (pred.predUpdated || pred.task->last)
        return;
    int actual = pred.task->actualTargetIdx;
    _taskPred.update(taskEntryAddr(pred.task->staticTask),
                     actual >= 0 ? unsigned(actual) : 0);
    pred.predUpdated = true;
}

template <bool EV>
Instance *
Simulator<EV>::bySeq(uint64_t seq)
{
    for (auto &up : _window)
        if (up->seq == seq)
            return up.get();
    return nullptr;
}

/** Samples the window-occupancy counters after a window change
 *  (assignment, retire, squash). Only called with a sink attached. */
template <bool EV>
void
Simulator<EV>::emitCounters()
{
    unsigned in_flight = 0;
    uint64_t span = 0;
    for (auto &up : _window) {
        if (up->bogus)
            continue;
        in_flight++;
        span += up->task->insts.size();
    }
    _sink->counters(obs::CounterEvent{_now, in_flight, span});
}

/** Emits at most one ARB-overflow instant per PU per cycle, however
 *  many issue attempts stalled. */
template <bool EV>
void
Simulator<EV>::noteArbStall(unsigned pu)
{
    if (_arbStallMark[pu] == _now + 1)
        return;
    _arbStallMark[pu] = _now + 1;
    if constexpr (EV)
        _arbPuCap.push_back(pu);
    _sink->instant(obs::InstantKind::ArbOverflow, pu, _now);
}

template <bool EV>
void
Simulator<EV>::initRegAvail(Instance &in)
{
    for (unsigned r = 0; r < NUM_REGS; ++r)
        in.regAvail[r] = 0;
    if (_window.empty())
        return;
    // Youngest older in-flight producer per register.
    RegSet resolved = 0;
    for (auto it = _window.rbegin(); it != _window.rend(); ++it) {
        Instance &p = **it;
        RegSet mask = p.createMask & ~resolved;
        if (!mask)
            continue;
        for (RegSet m = mask; m; m &= m - 1) {
            unsigned r = unsigned(__builtin_ctzll(m));
            if (!p.fwdArr[r].empty()) {
                in.regAvail[r] = p.fwdArr[r][in.pu];
            } else {
                in.regAvail[r] = INF;
                p.subs[r].push_back(in.seq);
            }
        }
        resolved |= mask;
    }
}

template <bool EV>
void
Simulator<EV>::broadcastReg(Instance &in, RegId r, uint64_t when)
{
    if (in.forwardedRegs & cfg::regBit(r))
        return;
    _progress = true;
    in.forwardedRegs |= cfg::regBit(r);
    // Event core: reuse one arrival buffer (broadcast assigns it).
    // The delivery loop below must read from fwdArr, not the buffer:
    // deliver() can re-enter broadcastReg (chained release), which
    // would clobber a shared scratch. fwdArr[r] holds the same values
    // and no nested call touches this (instance, reg) pair again.
    std::vector<uint64_t> arrivalsRef;
    std::vector<uint64_t> &arrivals = EV ? _arrScratch : arrivalsRef;
    _ring.broadcast(in.pu, when, arrivals);
    in.fwdArr[r].assign(arrivals.begin(), arrivals.end());
    for (uint64_t cseq : in.subs[r]) {
        Instance *c = bySeq(cseq);
        if (c)
            deliver(*c, r, in.fwdArr[r][c->pu]);
    }
    in.subs[r].clear();
}

template <bool EV>
void
Simulator<EV>::deliver(Instance &in, RegId r, uint64_t when)
{
    if (in.regAvail[r] != INF)
        return;
    _progress = true;
    in.regAvail[r] = when;
    for (uint32_t idx : in.extWaiters[r]) {
        if (!in.issued[idx]) {
            in.readyTime[idx] = std::max(in.readyTime[idx], when);
            in.extMask[idx] &= ~cfg::regBit(r);
        }
    }
    in.extWaiters[r].clear();
    // Chained release: a completed task passing the value through.
    if ((in.pendingRelease & cfg::regBit(r)) && in.completed) {
        in.pendingRelease &= ~cfg::regBit(r);
        broadcastReg(in, r, std::max(when, in.completionCycle));
    }
}

template <bool EV>
void
Simulator<EV>::dispatchInsts(Instance &in)
{
    const DynTask &dt = *in.task;
    unsigned fetched = 0;
    while (fetched < _cfg.fetchWidth && in.dispatched < dt.insts.size()) {
        if (_now < in.icacheBlockedUntil)
            break;
        if (in.branchBlockedOn >= 0 && !in.done[in.branchBlockedOn])
            break;
        // ROB capacity.
        if (in.dispatched - in.retPtr >= _cfg.robSize)
            break;

        uint32_t i = in.dispatched;
        const DynInst &di = dt.insts[i];
        const Instruction &inst = _part.prog->inst(di.ref);

        // I-cache: one line lookup per new line.
        uint64_t line = di.pc / _cfg.l1i.blockBytes;
        if (line != in.curFetchLine) {
            // The lookup itself mutates cache state (LRU, counters)
            // even when it blocks fetch, so it counts as progress.
            _progress = true;
            uint64_t avail = _hier.fetchAccess(di.pc, _now);
            if (avail > _now + _cfg.l1i.hitLatency) {
                in.icacheBlockedUntil = avail;
                break;
            }
            in.curFetchLine = line;
        }

        // Intra-task conditional branches consult gshare; a
        // misprediction stalls fetch until the branch executes.
        if (inst.isCondBranch()) {
            bool pred = _gshare.predict(di.pc);
            _stats.branchPredictions++;
            if (pred != di.taken) {
                _stats.branchMispredictions++;
                in.branchBlockedOn = int(i);
            }
            _gshare.update(di.pc, di.taken);
        }

        // Dependence setup. The event core reads predecoded operand
        // lists; the reference core keeps the seed's per-dispatch
        // decode into fresh vectors.
        uint64_t ready = _now + 1;
        std::vector<RegId> srcsRef, dstsRef;
        const std::vector<RegId> *srcsP, *dstsP;
        if constexpr (EV) {
            const Operands &ops =
                _operands[di.ref.func][di.ref.block][di.ref.index];
            srcsP = &ops.srcs;
            dstsP = &ops.dsts;
        } else {
            inst.uses(srcsRef);
            inst.defs(dstsRef);
            srcsP = &srcsRef;
            dstsP = &dstsRef;
        }
        for (RegId r : *srcsP) {
            int w = in.lastWriter[r];
            if (w >= 0) {
                if (!in.done[w]) {
                    in.waiters[w].push_back(i);
                    in.deps[i]++;
                } else {
                    ready = std::max(ready, in.doneCycle[w]);
                }
            } else if (in.regAvail[r] == INF) {
                in.extMask[i] |= cfg::regBit(r);
                in.extWaiters[r].push_back(i);
            } else {
                ready = std::max(ready, in.regAvail[r]);
            }
        }
        in.readyTime[i] = ready;

        for (RegId r : *dstsP)
            if (r != REG_ZERO)
                in.lastWriter[r] = int(i);

        in.dispatched++;
        ++fetched;
        _progress = true;
    }
}

template <bool EV>
bool
Simulator<EV>::tryIssue(Instance &in, uint32_t i,
                    std::array<unsigned, 5> &fu_free, bool &ext_wait,
                    bool &sync_wait)
{
    const DynTask &dt = *in.task;
    const DynInst &di = dt.insts[i];
    const Instruction &inst = _part.prog->inst(di.ref);

    if (in.extMask[i]) {
        ext_wait = true;
        return false;
    }
    if (in.deps[i] > 0 || in.readyTime[i] > _now)
        return false;

    unsigned fu = unsigned(inst.info().fu);
    if (fu != unsigned(FuClass::None)) {
        if (fu_free[fu] == 0)
            return false;
    }

    bool is_head = (_window.front().get() == &in);
    uint64_t wb;

    if (inst.isLoad()) {
        // Synchronization-table gating (Moshovos et al. [11]).
        uint64_t producer_pc = _sync.producerOf(di.pc);
        if (producer_pc && !is_head) {
            for (auto &up : _window) {
                Instance &older = *up;
                if (&older == &in)
                    break;
                if (older.bogus || older.completed)
                    continue;
                const int *cnt = older.findStorePc(producer_pc);
                if (cnt && *cnt > 0) {
                    sync_wait = true;
                    _stats.syncStallCycles++;
                    if constexpr (EV)
                        _syncCap++;
                    return false;
                }
            }
        }
        // ARB capacity: speculative accesses to untracked addresses
        // stall when the ARB is full.
        if (!is_head && _arb.full() && !_arb.tracked(di.addr)) {
            _stats.arbOverflowStalls++;
            if constexpr (EV)
                _arbCap++;
            if (_sink)
                noteArbStall(in.pu);
            return false;
        }
        uint64_t avail = _hier.dataAccess(di.addr * 8, _now);
        wb = avail + _cfg.arbHitLatency;
        _arb.recordLoad(in.dynIdx, di.addr, di.pc);
    } else if (inst.isStore()) {
        if (!is_head && _arb.full() && !_arb.tracked(di.addr)) {
            _stats.arbOverflowStalls++;
            if constexpr (EV)
                _arbCap++;
            if (_sink)
                noteArbStall(in.pu);
            return false;
        }
        wb = _now + 1 + _cfg.arbHitLatency;
        auto hit = _arb.recordStore(in.dynIdx, di.addr);
        if (hit.victim != NO_TASK) {
            _stats.memViolations++;
            _violations.push_back({hit.victim, hit.loadPc, di.pc});
        }
        int *cnt = in.findStorePc(di.pc);
        if (cnt && *cnt > 0)
            (*cnt)--;
    } else {
        wb = _now + inst.info().latency;
    }

    if (fu != unsigned(FuClass::None))
        fu_free[fu]--;
    in.issued[i] = 1;
    in.doneCycle[i] = wb;
    in.inFlight.push_back(i);
    _progress = true;
    return true;
}

template <bool EV>
void
Simulator<EV>::writebacks(Instance &in)
{
    for (size_t k = 0; k < in.inFlight.size();) {
        uint32_t i = in.inFlight[k];
        if (in.doneCycle[i] > _now) {
            ++k;
            continue;
        }
        in.inFlight[k] = in.inFlight.back();
        in.inFlight.pop_back();

        _progress = true;
        in.done[i] = 1;
        in.doneCount++;

        // Wake local dependents.
        for (uint32_t w : in.waiters[i]) {
            in.deps[w]--;
            in.readyTime[w] = std::max(in.readyTime[w], in.doneCycle[i]);
        }
        in.waiters[i].clear();

        // Safe forward points: send on the ring.
        const DynInst &di = in.task->insts[i];
        RegSet fwd = di.fwdMask & in.createMask & ~in.forwardedRegs;
        for (unsigned r = 0; fwd && r < NUM_REGS; ++r) {
            if (fwd & cfg::regBit(RegId(r))) {
                broadcastReg(in, RegId(r), in.doneCycle[i]);
                fwd &= ~cfg::regBit(RegId(r));
            }
        }
    }

    while (in.retPtr < in.numInsts() && in.done[in.retPtr])
        in.retPtr++;

    // Completion.
    if (!in.completed && in.dispatched == in.numInsts() &&
        in.doneCount == in.numInsts()) {
        _progress = true;
        in.completed = true;
        in.completionCycle = _now;

        // Release the remaining create-mask registers.
        RegSet rel = in.createMask & ~in.forwardedRegs;
        for (unsigned r = 0; rel && r < NUM_REGS; ++r) {
            RegSet bit = cfg::regBit(RegId(r));
            if (!(rel & bit))
                continue;
            rel &= ~bit;
            if (in.lastWriter[r] >= 0) {
                broadcastReg(in, RegId(r), _now);
            } else if (in.regAvail[r] != INF) {
                broadcastReg(in, RegId(r),
                             std::max(_now, in.regAvail[r]));
            } else {
                in.pendingRelease |= bit;  // Chain: forward on arrival.
            }
        }
    }
}

template <bool EV>
void
Simulator<EV>::execInstance(Instance &in)
{
    if (in.bogus)
        return;  // Wrong-path work: time accrues, nothing executes.

    if (in.completed)
        return;

    if (_now < in.fetchStart) {
        in.buckets.add(CycleKind::TaskStart);
        if constexpr (EV)
            in.lastKind = CycleKind::TaskStart;
        return;
    }

    writebacks(in);
    if (in.completed)
        return;

    // Issue.
    std::array<unsigned, 5> fu_free{};
    fu_free[unsigned(FuClass::IntAlu)] = _cfg.numIntFU;
    fu_free[unsigned(FuClass::FpAlu)] = _cfg.numFpFU;
    fu_free[unsigned(FuClass::Branch)] = _cfg.numBrFU;
    fu_free[unsigned(FuClass::Mem)] = _cfg.numMemFU;

    while (in.firstUnissued < in.dispatched &&
           in.issued[in.firstUnissued]) {
        in.firstUnissued++;
    }

    unsigned issued_now = 0;
    bool ext_wait = false, sync_wait = false;

    uint32_t lim = std::min<uint32_t>(
        in.dispatched, in.firstUnissued + _cfg.issueListSize);
    for (uint32_t i = in.firstUnissued;
         i < lim && issued_now < _cfg.issueWidth; ++i) {
        if (in.issued[i])
            continue;
        bool ok;
        if constexpr (EV) {
            // Inline the blocked-candidate rejects tryIssue would hit
            // first, sparing the per-attempt instruction lookups; the
            // outcomes and flag updates mirror tryIssue exactly.
            if (in.extMask[i]) {
                ext_wait = true;
                ok = false;
            } else if (in.deps[i] > 0 || in.readyTime[i] > _now) {
                ok = false;
            } else {
                ok = tryIssue(in, i, fu_free, ext_wait, sync_wait);
            }
        } else {
            ok = tryIssue(in, i, fu_free, ext_wait, sync_wait);
        }
        if (ok) {
            ++issued_now;
        } else if (!_cfg.outOfOrder) {
            break;  // In-order PUs stall at the oldest unissued op.
        }
    }

    dispatchInsts(in);

    // Cycle attribution (Figure 2).
    CycleKind kind;
    if (issued_now > 0) {
        kind = CycleKind::Useful;
    } else if (in.firstUnissued >= in.dispatched) {
        kind = CycleKind::FetchStall;
    } else if (in.extMask[in.firstUnissued] || ext_wait || sync_wait) {
        kind = CycleKind::InterTaskComm;
        RegSet m = in.extMask[in.firstUnissued];
        if (m)
            _stats.extWaitByReg[__builtin_ctzll(m)]++;
    } else {
        kind = CycleKind::IntraTaskDep;
    }
    in.buckets.add(kind);
    if constexpr (EV)
        in.lastKind = kind;
}

template <bool EV>
void
Simulator<EV>::execPhase()
{
    uint64_t span = 0;
    bool any = false;
    for (auto &up : _window) {
        execInstance(*up);
        if (!up->bogus) {
            span += up->task->insts.size();
            any = true;
        }
    }
    if (any) {
        _spanSum += span;
        _spanCycles++;
    }
    _stats.idlePuCycles += _cfg.numPUs - _window.size();
}

template <bool EV>
void
Simulator<EV>::squashFrom(uint64_t seq, CycleKind kind)
{
    bool squashed_any = false;
    unsigned trigger_pu = 0;
    while (!_window.empty() && _window.back()->seq >= seq) {
        _progress = true;
        Instance &in = *_window.back();
        uint64_t t = in.buckets.collapse();
        // A squashed instance's entire occupancy is penalty,
        // including the cycles of the current (partial) cycle window.
        uint64_t occupied = (_now >= in.assignCycle)
            ? (_now - in.assignCycle) : 0;
        uint64_t penalty = std::max(t, occupied);
        _stats.buckets.add(kind, penalty);
        _stats.puOccupiedCycles[in.pu] += penalty;
        if (kind == CycleKind::CtrlSquash)
            _stats.tasksSquashedCtrl++;
        else
            _stats.tasksSquashedMem++;
        if (_sink) {
            obs::SquashEvent ev;
            ev.pu = in.pu;
            ev.dynIdx = in.dynIdx;
            ev.staticTask = in.task ? in.task->staticTask
                                    : tasksel::INVALID_TASK;
            ev.bogus = in.bogus;
            ev.kind = kind;
            ev.assignCycle = in.assignCycle;
            ev.squashCycle = _now;
            ev.penaltyCycles = penalty;
            _sink->taskSquashed(ev);
        }
        squashed_any = true;
        trigger_pu = in.pu;  // Ends at the oldest squashed instance.
        if (!in.bogus)
            _arb.squashFrom(in.dynIdx);
        _puBusy[in.pu] = false;
        if constexpr (EV)
            _pool.push_back(std::move(_window.back()));
        _window.pop_back();
    }
    if (_sink && squashed_any) {
        _sink->instant(kind == CycleKind::MemSquash
                           ? obs::InstantKind::MemSquash
                           : obs::InstantKind::CtrlSquash,
                       trigger_pu, _now);
        emitCounters();
    }
    if (_window.empty())
        _nextDyn = 0;  // Never happens: head is never squashed.
}

template <bool EV>
void
Simulator<EV>::resolveControl()
{
    // The oldest completed task with a mispredicted successor squashes
    // everything younger.
    for (auto &up : _window) {
        Instance &in = *up;
        if (in.bogus || !in.completed)
            continue;
        if (in.successorDecided && in.mispredictedSuccessor) {
            _progress = true;
            in.mispredictedSuccessor = false;
            in.successorDecided = false;  // Sequencer re-dispatches.
            squashFrom(in.seq + 1, CycleKind::CtrlSquash);
            _nextDyn = in.dynIdx + 1;
            break;
        }
    }
}

template <bool EV>
void
Simulator<EV>::processViolations()
{
    if (_violations.empty())
        return;
    _progress = true;
    // Oldest victim wins.
    uint64_t victim = INF;
    uint64_t load_pc = 0, store_pc = 0;
    for (const auto &v : _violations) {
        if (v.victimDynIdx < victim) {
            victim = v.victimDynIdx;
            load_pc = v.loadPc;
            store_pc = v.storePc;
        }
    }
    _violations.clear();

    _sync.insert(load_pc, store_pc);

    for (auto &up : _window) {
        if (!up->bogus && up->dynIdx == victim) {
            // The predecessor must re-decide its successor dispatch.
            squashFrom(up->seq, CycleKind::MemSquash);
            _nextDyn = victim;
            if (!_window.empty()) {
                _window.back()->successorDecided = false;
                _window.back()->mispredictedSuccessor = false;
            }
            return;
        }
    }
}

template <bool EV>
void
Simulator<EV>::retirePhase()
{
    if (_window.empty())
        return;
    Instance &head = *_window.front();
    if (head.bogus || !head.completed)
        return;

    if (head.retireStart == INF) {
        _progress = true;
        head.retireStart = std::max(_now, head.completionCycle);
    }

    if (_now < head.retireStart + _cfg.taskEndOverhead)
        return;

    _progress = true;
    // Commit.
    head.buckets.add(CycleKind::LoadImbalance,
                     head.retireStart - head.completionCycle);
    head.buckets.add(CycleKind::TaskEnd, _cfg.taskEndOverhead);
    _stats.buckets.merge(head.buckets);
    _stats.puOccupiedCycles[head.pu] += head.buckets.total();
    _stats.retiredTasks++;
    _stats.retiredInsts += head.task->insts.size();
    _stats.dynTasks++;
    _stats.dynTaskInsts += head.task->insts.size();
    _stats.dynTaskCtlInsts += head.task->ctlInsts;

    if (_sink) {
        obs::CommitEvent ev;
        ev.pu = head.pu;
        ev.dynIdx = head.dynIdx;
        ev.staticTask = head.task->staticTask;
        ev.assignCycle = head.assignCycle;
        ev.fetchStart = head.fetchStart;
        ev.completionCycle = head.completionCycle;
        ev.retireStart = head.retireStart;
        ev.retireEnd = head.retireStart + _cfg.taskEndOverhead;
        ev.insts = head.task->insts.size();
        ev.buckets = head.buckets;
        _sink->taskCommitted(ev);
    }

    _arb.retireUpTo(head.dynIdx);
    _puBusy[head.pu] = false;
    if constexpr (EV)
        _pool.push_back(std::move(_window.front()));
    _window.pop_front();
    if (_sink)
        emitCounters();
}

template <bool EV>
void
Simulator<EV>::assignPhase()
{
    if (_window.size() >= _cfg.numPUs)
        return;
    if (_nextDyn >= _tasks.size() && _window.empty())
        return;

    unsigned pu = _window.empty()
        ? 0 : (_window.back()->pu + 1) % _cfg.numPUs;
    if (_puBusy[pu])
        return;

    bool bogus = false;
    uint64_t dyn_idx = _nextDyn;

    if (!_window.empty()) {
        Instance &pred = *_window.back();
        if (pred.bogus) {
            // Cascaded wrong-path assignment.
            bogus = true;
        } else if (pred.task->last) {
            return;  // Program ends after the current tail.
        } else if (pred.completed || pred.successorDecided) {
            // Known path (resolution already happened or the
            // prediction for this transition was already consumed
            // and was correct).
            if (pred.completed && !pred.successorDecided) {
                _progress = true;
                // Resolution before dispatch: decide RAS bookkeeping.
                if (!pred.rasDone) {
                    if (pred.task->actualKind == TargetKind::Return)
                        _ras.pop();
                    if (pred.task->endsInCall)
                        _ras.push(pred.task->callReturnSite);
                    pred.rasDone = true;
                }
                trainTaskPredictor(pred);
                pred.successorDecided = true;
            }
        } else {
            // Predict the successor of the (unresolved) tail task.
            _progress = true;
            const Task &st = _part.tasks[pred.task->staticTask];
            unsigned pidx = _taskPred.predict(
                taskEntryAddr(pred.task->staticTask));
            if (!st.targets.empty() && pidx >= st.targets.size())
                pidx = unsigned(st.targets.size()) - 1;

            int actual = pred.task->actualTargetIdx;
            bool correct = actual >= 0 &&
                unsigned(actual) < _cfg.maxTargets &&
                pidx == unsigned(actual);

            if (!pred.rasDone) {
                if (pred.task->actualKind == TargetKind::Return) {
                    BlockRef popped = _ras.pop();
                    correct = correct && popped == pred.task->nextEntry;
                }
                if (pred.task->endsInCall)
                    _ras.push(pred.task->callReturnSite);
                pred.rasDone = true;
            }

            _stats.taskPredictions++;
            if (!correct) {
                _stats.taskMispredictions++;
                pred.mispredictedSuccessor = true;
                bogus = true;
            }
            trainTaskPredictor(pred);
            pred.successorDecided = true;
        }
    }

    if (!bogus && dyn_idx >= _tasks.size())
        return;

    _progress = true;
    std::unique_ptr<Instance> in;
    if (EV && !_pool.empty()) {
        in = std::move(_pool.back());
        _pool.pop_back();
        in->resetForReuse();
    } else {
        in = std::make_unique<Instance>();
    }
    in->seq = _nextSeq++;
    in->dynIdx = dyn_idx;
    in->pu = pu;
    in->bogus = bogus;
    in->assignCycle = _now;
    in->fetchStart = _now + _cfg.taskStartOverhead;
    in->buckets.add(CycleKind::TaskStart, 0);

    if (!bogus) {
        in->task = &_tasks[dyn_idx];
        const Task &st = _part.tasks[in->task->staticTask];
        in->createMask = st.createMask;
        size_t n = in->task->insts.size();
        in->issued.assign(n, 0);
        in->done.assign(n, 0);
        in->readyTime.assign(n, 0);
        in->deps.assign(n, 0);
        in->extMask.assign(n, 0);
        in->doneCycle.assign(n, 0);
        if constexpr (EV) {
            // Keep the inner waiter lists' capacity across reuse.
            in->waiters.resize(n);
            for (auto &w : in->waiters)
                w.clear();
        } else {
            in->waiters.assign(n, {});
        }
        in->lastWriter.fill(-1);
        initRegAvail(*in);
        // Pending store PCs for synchronization gating (precomputed
        // per dynamic task; re-assignment after a squash reuses it).
        in->pendingStorePc = storePcsOf(dyn_idx);
        _nextDyn = dyn_idx + 1;
    }

    _puBusy[pu] = true;
    _window.push_back(std::move(in));

    if (_sink) {
        const Instance &ni = *_window.back();
        obs::AssignEvent ev;
        ev.pu = ni.pu;
        ev.dynIdx = ni.dynIdx;
        ev.staticTask = ni.task ? ni.task->staticTask
                                : tasksel::INVALID_TASK;
        ev.bogus = ni.bogus;
        ev.cycle = _now;
        _sink->taskAssigned(ev);
        emitCounters();
    }
}

/**
 * Earliest future cycle at which any component can change state, given
 * that the cycle just simulated was quiescent. Called after ++_now, so
 * "future" means >= _now. The candidates are exactly the time-driven
 * wake-ups; everything else (ARB retry, sync-table release, external
 * register arrival) is unblocked only by another instance's progress,
 * which itself requires one of these events first, so a conservative
 * lower bound over this set can never overshoot a state change.
 */
template <bool EV>
uint64_t
Simulator<EV>::nextEventCycle() const
{
    uint64_t t = INF;

    // Head retire: the in-order commit point drains after
    // taskEndOverhead cycles.
    if (!_window.empty()) {
        const Instance &h = *_window.front();
        if (!h.bogus && h.completed)
            t = std::min(t, h.retireStart == INF
                                ? _now
                                : h.retireStart + _cfg.taskEndOverhead);
    }

    for (const auto &up : _window) {
        const Instance &in = *up;
        if (in.bogus || in.completed)
            continue;
        // Task-start overhead: fetch begins at fetchStart.
        if (in.fetchStart >= _now) {
            t = std::min(t, in.fetchStart);
            if (in.fetchStart > _now)
                continue;  // Not fetching yet: no other state pending.
        }
        // I-cache fill return.
        if (in.icacheBlockedUntil >= _now)
            t = std::min(t, in.icacheBlockedUntil);
        // FU / cache-fill completion of issued instructions.
        for (uint32_t i : in.inFlight)
            t = std::min(t, in.doneCycle[i]);
        // Operand arrival (local producer or ring delivery already
        // folded into readyTime) within the issue window. Entries with
        // readyTime < _now are blocked on ARB/sync/FU conflicts, which
        // only another instance's progress can clear — not events.
        uint32_t lim = std::min<uint32_t>(
            in.dispatched, in.firstUnissued + _cfg.issueListSize);
        for (uint32_t i = in.firstUnissued; i < lim; ++i) {
            if (in.issued[i] || in.deps[i] > 0 || in.extMask[i])
                continue;
            if (in.readyTime[i] >= _now)
                t = std::min(t, in.readyTime[i]);
        }
    }
    return t;
}

/**
 * Fast-forwards _now to @p target, replaying the quiescent probe
 * cycle's accounting signature once per skipped cycle. Machine state
 * is frozen across the gap by construction (no progress and no event
 * before target), so the replay is exactly what the cycle core would
 * have accrued stepping through [_now, target).
 */
template <bool EV>
void
Simulator<EV>::skipTo(uint64_t target)
{
    const uint64_t n = target - _now;

    _stats.syncStallCycles += _syncCap * n;
    _stats.arbOverflowStalls += _arbCap * n;

    // Figure-2 buckets and execPhase's per-cycle window accounting.
    // Each live instance repeats the probe's attribution: the kind is
    // a pure function of state that cannot change before `target`
    // (nextEventCycle covers fetchStart, so a TaskStart region never
    // straddles its own fetch start), and the ext-wait register is
    // recomputed from the frozen issue window exactly as the probe
    // computed it.
    uint64_t span = 0;
    bool any = false;
    for (const auto &up : _window) {
        Instance &in = *up;
        if (in.bogus)
            continue;
        span += in.task->insts.size();
        any = true;
        if (in.completed)
            continue;
        in.buckets.add(in.lastKind, n);
        if (in.lastKind == CycleKind::InterTaskComm) {
            RegSet m = in.extMask[in.firstUnissued];
            if (m)
                _stats.extWaitByReg[__builtin_ctzll(m)] += n;
        }
    }
    if (any) {
        _spanSum += span * n;
        _spanCycles += n;
    }
    _stats.idlePuCycles += uint64_t(_cfg.numPUs - _window.size()) * n;

    // ARB-overflow instants are per-cycle trace events: re-emit them
    // for every skipped cycle, in window order, exactly as the cycle
    // core's exec phase would have.
    if (_sink && !_arbPuCap.empty()) {
        for (uint64_t c = _now; c < target; ++c)
            for (unsigned pu : _arbPuCap)
                _sink->instant(obs::InstantKind::ArbOverflow, pu, c);
    }

    // Ring hygiene the stepping loop would have performed at 0x10000
    // boundaries: one trim at the largest crossed boundary covers all.
    uint64_t b = target & ~0xffffull;
    if (b >= _now + 1 && b > 1024)
        _ring.trimBefore(b - 1024);

    _stats.eventSkippedCycles += n;
    _now = target;
}

template <bool EV>
SimStats
Simulator<EV>::run()
{
    if (_tasks.empty())
        return _stats;

    // The cycle budget is checked against the governor's limit (which
    // is min'd with nothing here: _cfg.maxCycles stays the functional
    // ceiling, the budget is a stricter administrative one).
    uint64_t cycle_limit = UINT64_MAX;
    if (_gov && _gov->simCycleLimit())
        cycle_limit = _gov->simCycleLimit();

    while (_now < _cfg.maxCycles) {
        // Pulse at the loop top so a pre-set cancel trips before any
        // state mutation of cycle 0 (cancellation tests rely on it).
        if (_gov && (_now & 0xfff) == 0)
            _gov->checkPulse();
        if (_now >= cycle_limit)
            _gov->cyclesExhausted(_now);
        if constexpr (EV) {
            _progress = false;
            _arbPuCap.clear();
            _syncCap = 0;
            _arbCap = 0;
        }
        retirePhase();
        if (_window.empty() && _nextDyn >= _tasks.size())
            break;
        assignPhase();
        execPhase();
        processViolations();
        resolveControl();
        ++_now;
        if ((_now & 0xffff) == 0)
            _ring.trimBefore(_now > 1024 ? _now - 1024 : 0);
        if constexpr (EV) if (!_progress) {
            uint64_t target = std::min(nextEventCycle(), _cfg.maxCycles);
            if (_gov) {
                // Pulses fire at 4096-cycle marks and the budget trips
                // at cycle_limit; stop the jump there so both happen
                // at the same simulated cycle as the cycle core.
                target = std::min(target, cycle_limit);
                target = std::min<uint64_t>(target,
                                            (_now + 0xfff) & ~0xfffull);
            }
            if (target > _now)
                skipTo(target);
        }
    }

    _stats.cycles = _now;
    _stats.measuredWindowSpan =
        _spanCycles ? double(_spanSum) / double(_spanCycles) : 0.0;
    _stats.l1iAccesses = _hier.l1i().accesses();
    _stats.l1iMisses = _hier.l1i().misses();
    _stats.l1dAccesses = _hier.l1d().accesses();
    _stats.l1dMisses = _hier.l1d().misses();
    if (_sink)
        _sink->simEnd(_now);
    return _stats;
}

} // anonymous namespace

SimStats
simulate(const TaskPartition &part, const std::vector<DynTask> &tasks,
         const SimConfig &cfg, obs::TraceSink *sink,
         runtime::Governor *gov)
{
    if (cfg.coreMode == CoreMode::Event) {
        Simulator<true> sim(part, tasks, cfg, sink, gov);
        return sim.run();
    }
    Simulator<false> sim(part, tasks, cfg, sink, gov);
    return sim.run();
}

} // namespace arch
} // namespace msc
