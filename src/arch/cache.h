/**
 * @file
 * Set-associative caches and the two-level memory hierarchy of §4.2:
 * banked L1 I/D caches (1-cycle hit), a shared L2 (12-cycle hit), and
 * main memory (58 cycles). Bank conflicts are modeled with per-bank
 * next-free-cycle counters; caches are lock-up free in the sense that
 * independent accesses to distinct banks proceed in parallel.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/config.h"

namespace msc {
namespace arch {

/** LRU set-associative cache model (tags only). */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Looks up @p addr; fills the line on miss.
     * @return true on hit.
     */
    bool access(uint64_t addr);

    /** Looks up without filling. */
    bool probe(uint64_t addr) const;

    unsigned hitLatency() const { return _cfg.hitLatency; }
    unsigned banks() const { return _cfg.banks; }
    unsigned blockBytes() const { return _cfg.blockBytes; }

    uint64_t accesses() const { return _accesses; }
    uint64_t misses() const { return _misses; }

    unsigned
    bankOf(uint64_t addr) const
    {
        return unsigned((addr / _cfg.blockBytes) % _cfg.banks);
    }

  private:
    struct Line
    {
        uint64_t tag = ~0ull;
        uint64_t lru = 0;
        bool valid = false;
    };

    CacheConfig _cfg;
    size_t _numSets;
    std::vector<Line> _lines;   ///< numSets * assoc.
    uint64_t _tick = 0;
    uint64_t _accesses = 0;
    uint64_t _misses = 0;
};

/**
 * The shared data-side hierarchy: L1D -> L2 -> memory, with L1 bank
 * conflict modeling. Instruction fetch uses a separate L1I in front of
 * the same L2.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const SimConfig &cfg);

    /**
     * Performs a data access at byte address @p addr starting at
     * @p cycle.
     * @return cycle at which the value is available.
     */
    uint64_t dataAccess(uint64_t addr, uint64_t cycle);

    /**
     * Performs an instruction fetch of the line containing @p addr.
     * @return cycle at which the line is available.
     */
    uint64_t fetchAccess(uint64_t addr, uint64_t cycle);

    const Cache &l1i() const { return _l1i; }
    const Cache &l1d() const { return _l1d; }

  private:
    SimConfig _cfg;
    Cache _l1i, _l1d, _l2;
    std::vector<uint64_t> _l1dBankFree;
};

} // namespace arch
} // namespace msc
