#include "arch/stats.h"

#include <cmath>
#include <sstream>

namespace msc {
namespace arch {

const char *
cycleKindName(CycleKind k)
{
    switch (k) {
      case CycleKind::TaskStart:     return "task-start-overhead";
      case CycleKind::Useful:        return "useful";
      case CycleKind::InterTaskComm: return "inter-task-comm";
      case CycleKind::IntraTaskDep:  return "intra-task-dep";
      case CycleKind::FetchStall:    return "fetch-stall";
      case CycleKind::LoadImbalance: return "load-imbalance";
      case CycleKind::TaskEnd:       return "task-end-overhead";
      case CycleKind::CtrlSquash:    return "ctrl-misspec-penalty";
      case CycleKind::MemSquash:     return "mem-misspec-penalty";
      default:                       return "?";
    }
}

const char *
cycleKindId(CycleKind k)
{
    switch (k) {
      case CycleKind::TaskStart:     return "task_start_overhead";
      case CycleKind::Useful:        return "useful";
      case CycleKind::InterTaskComm: return "inter_task_comm";
      case CycleKind::IntraTaskDep:  return "intra_task_dep";
      case CycleKind::FetchStall:    return "fetch_stall";
      case CycleKind::LoadImbalance: return "load_imbalance";
      case CycleKind::TaskEnd:       return "task_end_overhead";
      case CycleKind::CtrlSquash:    return "ctrl_misspec_penalty";
      case CycleKind::MemSquash:     return "mem_misspec_penalty";
      default:                       return "unknown";
    }
}

double
SimStats::perBranchMispredictPct() const
{
    double per_task_acc = taskPredictions
        ? 1.0 - double(taskMispredictions) / double(taskPredictions)
        : 1.0;
    double b = avgTaskCtlInsts();
    if (b < 1.0)
        b = 1.0;
    if (per_task_acc <= 0.0)
        return 100.0;
    // acc_task = acc_branch ^ b  =>  acc_branch = acc_task ^ (1/b).
    return 100.0 * (1.0 - std::pow(per_task_acc, 1.0 / b));
}

double
SimStats::formulaWindowSpan(unsigned num_pus) const
{
    double pred = taskPredictions
        ? 1.0 - double(taskMispredictions) / double(taskPredictions)
        : 1.0;
    double span = 0;
    double p = 1.0;
    for (unsigned i = 0; i < num_pus; ++i) {
        span += avgTaskSize() * p;
        p *= pred;
    }
    return span;
}

std::string
formatBuckets(const SimStats &s)
{
    constexpr int BAR_WIDTH = 32;
    std::ostringstream os;
    uint64_t tot = s.buckets.total();
    uint64_t denom = tot ? tot : 1;
    for (size_t i = 0; i < NUM_CYCLE_KINDS; ++i) {
        double pct = 100.0 * double(s.buckets.counts[i]) / double(denom);
        char bar[BAR_WIDTH + 1];
        int fill = int(pct * BAR_WIDTH / 100.0 + 0.5);
        for (int b = 0; b < BAR_WIDTH; ++b)
            bar[b] = b < fill ? '#' : ' ';
        bar[BAR_WIDTH] = '\0';
        char line[144];
        std::snprintf(line, sizeof(line),
                      "  %-22s %12llu  %5.1f%%  |%s|\n",
                      cycleKindName(CycleKind(i)),
                      (unsigned long long)s.buckets.counts[i], pct, bar);
        os << line;
    }
    char line[144];
    std::snprintf(line, sizeof(line), "  %-22s %12llu\n",
                  "total-occupied", (unsigned long long)tot);
    os << line;
    return os.str();
}

} // namespace arch
} // namespace msc
