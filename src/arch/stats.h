/**
 * @file
 * Cycle accounting per the paper's task time line (Figure 2) and the
 * evaluation metrics of §4 (IPC, task/branch prediction accuracy,
 * window span).
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.h"

namespace msc {
namespace arch {

/** Where a PU-cycle went (Figure 2 categories). */
enum class CycleKind : uint8_t
{
    TaskStart,      ///< Task start overhead (dispatch, pipe fill).
    Useful,         ///< At least one instruction issued.
    InterTaskComm,  ///< Oldest unissued op waits on a forwarded value.
    IntraTaskDep,   ///< Oldest unissued op waits on a local producer.
    FetchStall,     ///< Pipeline empty: I-cache miss / branch stall.
    LoadImbalance,  ///< Task complete, waiting to retire in order.
    TaskEnd,        ///< Task end overhead (commit).
    CtrlSquash,     ///< Control-flow misspeculation penalty.
    MemSquash,      ///< Memory-dependence misspeculation penalty.
    NUM_KINDS
};

constexpr size_t NUM_CYCLE_KINDS = size_t(CycleKind::NUM_KINDS);

/** Returns a short label for @p k. */
const char *cycleKindName(CycleKind k);

/**
 * Returns the stable snake_case identifier for @p k used as the JSON
 * key in the structured results schema (docs/METRICS.md). These are a
 * compatibility contract: renaming one is a schema version bump.
 */
const char *cycleKindId(CycleKind k);

/** Per-category cycle counters. */
struct CycleBuckets
{
    std::array<uint64_t, NUM_CYCLE_KINDS> counts{};

    void add(CycleKind k, uint64_t n = 1) { counts[size_t(k)] += n; }

    uint64_t
    total() const
    {
        uint64_t t = 0;
        for (uint64_t c : counts)
            t += c;
        return t;
    }

    void
    merge(const CycleBuckets &o)
    {
        for (size_t i = 0; i < NUM_CYCLE_KINDS; ++i)
            counts[i] += o.counts[i];
    }

    /** Collapses all counts into one squash-penalty category (applied
     *  to a squashed task instance's accumulated cycles). */
    uint64_t
    collapse()
    {
        uint64_t t = total();
        counts.fill(0);
        return t;
    }
};

/** Results of one simulation. */
struct SimStats
{
    uint64_t cycles = 0;
    uint64_t retiredInsts = 0;
    uint64_t retiredTasks = 0;

    CycleBuckets buckets;       ///< PU-cycle attribution.
    uint64_t idlePuCycles = 0;  ///< PU had no task assigned.

    /// @name Inter-task (task-level) prediction.
    /// @{
    uint64_t taskPredictions = 0;
    uint64_t taskMispredictions = 0;
    /// @}

    /// @name Intra-task branches (gshare).
    /// @{
    uint64_t branchPredictions = 0;
    uint64_t branchMispredictions = 0;
    /// @}

    /// @name Memory dependence speculation.
    /// @{
    uint64_t memViolations = 0;
    uint64_t tasksSquashedCtrl = 0;
    uint64_t tasksSquashedMem = 0;
    uint64_t syncStallCycles = 0;
    /// @}

    /// @name Dynamic task statistics (Table 1).
    /// @{
    uint64_t dynTasks = 0;              ///< Committed dynamic tasks.
    uint64_t dynTaskInsts = 0;          ///< Instructions in them.
    uint64_t dynTaskCtlInsts = 0;       ///< Control transfers in them.
    /// @}

    /** Measured window span: time-average of the total dynamic
     *  instructions across all in-flight (non-bogus) tasks. */
    double measuredWindowSpan = 0;

    /// @name Cache behaviour.
    /// @{
    uint64_t l1iAccesses = 0, l1iMisses = 0;
    uint64_t l1dAccesses = 0, l1dMisses = 0;
    uint64_t arbOverflowStalls = 0;
    /// @}

    /** Diagnostic: inter-task wait cycles attributed to the register
     *  the oldest unissued instruction was blocked on. */
    std::array<uint64_t, NUM_REGS> extWaitByReg{};

    /**
     * Occupied PU cycles per PU (the per-PU share of `buckets`),
     * sized numPUs by the simulator. Diagnostic like extWaitByReg:
     * consumed by the tracing cross-check (obs/crosscheck.h) and
     * deliberately absent from the msc.sweep schema.
     */
    std::vector<uint64_t> puOccupiedCycles;

    /**
     * Diagnostic: simulated cycles the event core fast-forwarded
     * instead of stepping (0 under CoreMode::Cycle). Like
     * puOccupiedCycles it is absent from the msc.sweep schema, and it
     * is the ONE field exempt from the cycle/event byte-identity
     * contract — test_eventcore uses it to prove skipping engaged.
     */
    uint64_t eventSkippedCycles = 0;

    double
    ipc() const
    {
        return cycles ? double(retiredInsts) / double(cycles) : 0.0;
    }

    /** Task misprediction rate in percent ("task pred", Table 1). */
    double
    taskMispredictPct() const
    {
        return taskPredictions
            ? 100.0 * double(taskMispredictions) / double(taskPredictions)
            : 0.0;
    }

    /** Intra-task (gshare) branch misprediction rate in percent. */
    double
    branchMispredictPct() const
    {
        return branchPredictions
            ? 100.0 * double(branchMispredictions) /
                  double(branchPredictions)
            : 0.0;
    }

    /** Average dynamic instructions per committed task. */
    double
    avgTaskSize() const
    {
        return dynTasks ? double(dynTaskInsts) / double(dynTasks) : 0.0;
    }

    /** Average control-transfer instructions per committed task. */
    double
    avgTaskCtlInsts() const
    {
        return dynTasks ? double(dynTaskCtlInsts) / double(dynTasks) : 0.0;
    }

    /**
     * Effective per-branch misprediction percentage ("br pred"):
     * the task misprediction rate normalized to the average number of
     * control transfers per task, i.e. the per-branch rate that would
     * compound to the observed task rate (§4.3.3).
     */
    double perBranchMispredictPct() const;

    /**
     * Window span by the paper's formula (§4.3.4):
     * sum_{i=0..N-1} TaskSize * Pred^i.
     */
    double formulaWindowSpan(unsigned num_pus) const;
};

static_assert(std::tuple_size<decltype(SimStats::extWaitByReg)>::value
                  == NUM_REGS,
              "extWaitByReg must cover exactly the architected "
              "registers (arch/config.h NUM_REGS)");
static_assert(NUM_REGS == ir::NUM_REGS,
              "arch and ir must agree on the register count");

/**
 * Renders the bucket breakdown as an aligned multi-line string: one
 * row per Figure 2 category with absolute cycles, percent of occupied
 * total and a proportional bar (the normalized presentation of the
 * paper's Figure 5), followed by a total row. A zero-cycle stats
 * object renders all-zero percentages rather than dividing by zero.
 */
std::string formatBuckets(const SimStats &s);

} // namespace arch
} // namespace msc
