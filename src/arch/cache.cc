#include "arch/cache.h"

#include <algorithm>

namespace msc {
namespace arch {

Cache::Cache(const CacheConfig &cfg) : _cfg(cfg)
{
    _numSets = std::max<size_t>(
        1, cfg.sizeBytes / (uint64_t(cfg.blockBytes) * cfg.assoc));
    _lines.resize(_numSets * cfg.assoc);
}

bool
Cache::access(uint64_t addr)
{
    ++_accesses;
    uint64_t block = addr / _cfg.blockBytes;
    size_t set = size_t(block % _numSets);
    uint64_t tag = block / _numSets;
    Line *base = &_lines[set * _cfg.assoc];

    ++_tick;
    for (unsigned w = 0; w < _cfg.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lru = _tick;
            return true;
        }
    }
    ++_misses;

    // Fill the LRU way.
    Line *victim = base;
    for (unsigned w = 1; w < _cfg.assoc; ++w)
        if (!base[w].valid || base[w].lru < victim->lru)
            victim = &base[w];
    victim->valid = true;
    victim->tag = tag;
    victim->lru = _tick;
    return false;
}

bool
Cache::probe(uint64_t addr) const
{
    uint64_t block = addr / _cfg.blockBytes;
    size_t set = size_t(block % _numSets);
    uint64_t tag = block / _numSets;
    const Line *base = &_lines[set * _cfg.assoc];
    for (unsigned w = 0; w < _cfg.assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

MemoryHierarchy::MemoryHierarchy(const SimConfig &cfg)
    : _cfg(cfg), _l1i(cfg.l1i), _l1d(cfg.l1d), _l2(cfg.l2),
      _l1dBankFree(cfg.l1d.banks, 0)
{
}

uint64_t
MemoryHierarchy::dataAccess(uint64_t addr, uint64_t cycle)
{
    // Bank arbitration: one access per bank per cycle.
    unsigned bank = _l1d.bankOf(addr);
    uint64_t start = std::max(cycle, _l1dBankFree[bank]);
    _l1dBankFree[bank] = start + 1;

    uint64_t t = start + _l1d.hitLatency();
    if (!_l1d.access(addr)) {
        if (_l2.access(addr))
            t += _cfg.l2.hitLatency;
        else
            t += _cfg.l2.hitLatency + _cfg.memLatency;
    }
    return t;
}

uint64_t
MemoryHierarchy::fetchAccess(uint64_t addr, uint64_t cycle)
{
    uint64_t t = cycle + _l1i.hitLatency();
    if (!_l1i.access(addr)) {
        if (_l2.access(addr))
            t += _cfg.l2.hitLatency;
        else
            t += _cfg.l2.hitLatency + _cfg.memLatency;
    }
    return t;
}

} // namespace arch
} // namespace msc
