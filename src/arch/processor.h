/**
 * @file
 * The Multiscalar processor timing model.
 *
 * A ring of processing units (PUs) executes the dynamic task stream
 * under the sequencer's control (§2.1):
 *
 *  - The sequencer assigns the predicted next task to the next PU in
 *    ring order (one assignment per cycle). Predictions come from the
 *    path-based inter-task predictor plus a return-address stack for
 *    Return-kind targets. A misprediction leaves the PU executing
 *    bogus work until the predecessor task resolves its successor (at
 *    its completion — "late resolution", §2.4.2); all younger tasks
 *    are then squashed and their accumulated cycles become control
 *    misspeculation penalty.
 *
 *  - Each PU models a 2-way pipeline with a 16-entry ROB, 8-entry
 *    issue list, 2 int / 1 fp / 1 branch / 1 mem FU, gshare-driven
 *    fetch for intra-task branches, and L1I behaviour. PUs issue out
 *    of order or in order per configuration.
 *
 *  - Inter-task register dependences ride the forwarding ring: a task
 *    forwards a register at its safe forward point or releases it at
 *    completion; consumers wait on the youngest older in-flight task
 *    whose create mask covers the register.
 *
 *  - Loads and stores go through the ARB; a store hitting a younger
 *    task's premature load squashes that task and its successors
 *    (memory misspeculation penalty) and trains the synchronization
 *    table, which gates future instances of the offending load.
 *
 *  - Tasks complete, then retire strictly in order (head first); the
 *    gap between completion and retirement is load imbalance; fixed
 *    per-task dispatch and commit costs are task start/end overhead
 *    (Figure 2).
 *
 * Two interchangeable cores advance time (SimConfig::coreMode,
 * docs/PERFORMANCE.md): the cycle core steps every cycle and is the
 * seed-faithful reference; the event core detects globally quiescent
 * cycles and jumps straight to the next scheduled event, bulk-
 * replaying the per-cycle accounting for the skipped stretch. Their
 * outputs — every SimStats field but the eventSkippedCycles
 * diagnostic, trace sink event streams, and the simulated cycle at
 * which a Governor budget trips — are byte-identical by contract;
 * tests/test_eventcore.cc enforces it across hand-built programs,
 * workloads, and the fuzz corpus.
 */

#pragma once

#include <vector>

#include "arch/config.h"
#include "arch/stats.h"
#include "arch/taskstream.h"
#include "runtime/budget.h"
#include "tasksel/task.h"

namespace msc {

namespace obs {
class TraceSink;
}

namespace arch {

/**
 * Runs the full timing simulation of @p tasks (the dynamic task
 * stream of a program under some partition) and returns the
 * statistics.
 *
 * @p sink, when non-null, receives the task-lifecycle event stream
 * (assignment, commit with per-instance attribution, squashes, stall
 * instants, window counters — see obs/tracesink.h). A null sink is
 * the fast path: no event is constructed.
 *
 * @p gov, when non-null, enforces the execution budget: the simulated
 * cycle cap (ErrorKind::BudgetCycles) is checked every cycle, and the
 * cancel/deadline pulse fires every 4096 cycles starting at cycle 0,
 * so a pre-cancelled token aborts before any simulation work.
 */
SimStats simulate(const tasksel::TaskPartition &part,
                  const std::vector<DynTask> &tasks,
                  const SimConfig &cfg,
                  obs::TraceSink *sink = nullptr,
                  runtime::Governor *gov = nullptr);

} // namespace arch
} // namespace msc
