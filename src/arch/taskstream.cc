#include "arch/taskstream.h"

#include <stdexcept>

namespace msc {
namespace arch {

using namespace ir;
using namespace tasksel;

std::vector<DynTask>
cutTasks(const profile::Trace &trace, const TaskPartition &part)
{
    const Program &prog = *part.prog;
    std::vector<DynTask> out;
    if (trace.entries.empty())
        return out;

    unsigned depth = 0;           // Included-call nesting depth.
    DynTask *cur = nullptr;

    auto openTask = [&](BlockRef entry) {
        TaskId tid = part.taskIdOf(entry);
        if (tid == INVALID_TASK)
            throw std::runtime_error("trace block not in any task");
        if (part.tasks[tid].entry != entry.block)
            throw std::runtime_error("dynamic entry into task middle");
        out.emplace_back();
        cur = &out.back();
        cur->staticTask = tid;
    };

    for (size_t i = 0; i < trace.entries.size(); ++i) {
        const profile::TraceEntry &e = trace.entries[i];
        BlockRef blk{e.ref.func, e.ref.block};

        if (e.ref.index == 0 && depth == 0) {
            TaskId tid = part.taskIdOf(blk);
            bool cut = (cur == nullptr) || tid != cur->staticTask ||
                part.tasks[tid].entry == blk.block;
            // Entering a non-entry block of the current task is
            // intra-task control flow: no cut.
            if (cut) {
                if (cur) {
                    // Record the successor of the closing task.
                    const Task &st = part.tasks[cur->staticTask];
                    const DynInst &lastin = cur->insts.back();
                    const Instruction &li = prog.inst(lastin.ref);
                    TaskTarget actual;
                    if (li.op == Opcode::Ret) {
                        actual = {TargetKind::Return, {}};
                    } else {
                        actual = {TargetKind::Block,
                                  {blk.func, part.tasks[tid].entry}};
                    }
                    cur->actualKind = actual.kind;
                    cur->actualTargetIdx = st.targetIndex(actual);
                    cur->nextEntry = blk;
                    if (li.op == Opcode::Call) {
                        cur->endsInCall = true;
                        const BasicBlock &cb = prog.block(
                            {lastin.ref.func, lastin.ref.block});
                        cur->callReturnSite =
                            {lastin.ref.func, cb.fallthrough};
                    }
                }
                openTask(blk);
            }
        }

        const Instruction &inst = prog.inst(e.ref);

        DynInst di;
        di.ref = e.ref;
        di.addr = e.addr;
        di.pc = prog.instAddr(e.ref);
        di.taken = e.taken;
        if (depth == 0) {
            di.fwdMask =
                part.fwdSafe[e.ref.func][e.ref.block][e.ref.index];
        } else {
            di.fwdMask = 0;  // Inside an included callee.
        }
        if (inst.isControl())
            cur->ctlInsts++;
        cur->insts.push_back(di);

        if (inst.op == Opcode::Call) {
            if (depth > 0) {
                ++depth;  // Nested call within an included callee.
            } else if (part.callIncluded(blk)) {
                depth = 1;
            }
        } else if (inst.op == Opcode::Ret && depth > 0) {
            --depth;
        }
    }

    if (cur)
        cur->last = true;
    return out;
}

} // namespace arch
} // namespace msc
