/**
 * @file
 * Cuts a dynamic instruction trace into the stream of dynamic tasks a
 * Multiscalar sequencer would dispatch (§2.2): a dynamic task is a
 * contiguous trace fragment beginning at a task entry block; it ends
 * when control reaches a block owned by a different task or re-enters
 * a task entry. Calls marked for inclusion by the task-size heuristic
 * keep the current task open through the entire callee execution.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "profile/trace.h"
#include "tasksel/task.h"

namespace msc {
namespace arch {

/** One dynamic instruction, decorated for the timing model. */
struct DynInst
{
    ir::InstRef ref;
    uint64_t addr = 0;       ///< Effective word address (memory ops).
    uint64_t pc = 0;         ///< Code byte address.
    bool taken = false;      ///< Conditional-branch outcome.

    /** Registers to forward on the ring right after execution
     *  (fwdSafe of the owning static task; zero inside included
     *  callees, whose values release at task end). */
    uint64_t fwdMask = 0;
};

/** One dynamic task instance in program order. */
struct DynTask
{
    tasksel::TaskId staticTask = tasksel::INVALID_TASK;

    /** Instructions of this dynamic task. */
    std::vector<DynInst> insts;

    /** Number of control-transfer instructions (Table 1 "#ct inst"). */
    uint32_t ctlInsts = 0;

    /**
     * Index of the actual successor in the static task's target list;
     * -1 when the successor was not an exposed target (forced
     * misprediction) or when this is the final task.
     */
    int actualTargetIdx = -1;

    /** Kind of the actual successor target. */
    tasksel::TargetKind actualKind = tasksel::TargetKind::Block;

    /** Entry block of the successor dynamic task (invalid at end). */
    ir::BlockRef nextEntry;

    /** True when this task ends the program. */
    bool last = false;

    /** True when this task's final control transfer is a Call whose
     *  callee begins the next task (push a return site). */
    bool endsInCall = false;

    /** Return site pushed when endsInCall (continuation entry). */
    ir::BlockRef callReturnSite;

    size_t size() const { return insts.size(); }
};

/**
 * Builds the dynamic task stream for @p trace under @p part.
 *
 * The program must have a code layout (Program::layout()). Every
 * block boundary in the trace is checked against the partition; a
 * malformed partition (control entering the middle of a task) throws.
 */
std::vector<DynTask> cutTasks(const profile::Trace &trace,
                              const tasksel::TaskPartition &part);

} // namespace arch
} // namespace msc
