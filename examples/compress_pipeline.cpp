/**
 * @file
 * Heuristic shoot-out on the 129.compress analog — the workload the
 * paper's task-size discussion revolves around. Runs all four
 * heuristic stacks on 4 and 8 PUs and prints the per-category cycle
 * breakdown, showing how each heuristic moves cycles between
 * overhead, communication and useful work.
 *
 *   ./compress_pipeline [workload]
 */

#include <cstdio>
#include <string>

#include "arch/stats.h"
#include "pipeline/session.h"
#include "workloads/workload.h"

using namespace msc;

namespace {

void
printResult(const char *label, const arch::SimStats &st)
{
    std::printf("\n%s: IPC %.3f, %llu cycles, %llu tasks "
                "(avg %.1f insts), task mispredict %.1f%%, "
                "mem violations %llu\n",
                label, st.ipc(), (unsigned long long)st.cycles,
                (unsigned long long)st.dynTasks, st.avgTaskSize(),
                st.taskMispredictPct(),
                (unsigned long long)st.memViolations);
    std::printf("%s", arch::formatBuckets(st).c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "compress";
    // One Session for the whole shoot-out: the two PU counts reuse
    // each heuristic stack's frontend artifacts, and the heuristics
    // that share a transform (no task-size unrolling) share that too.
    pipeline::Session session(
        workloads::buildWorkload(name, workloads::Scale::Small));

    for (unsigned pus : {4u, 8u}) {
        std::printf("\n================ %s on %u PUs ================\n",
                    name.c_str(), pus);
        struct Cfg
        {
            const char *label;
            tasksel::Strategy strategy;
            bool size;
        };
        static const Cfg cfgs[] = {
            {"basic-block tasks", tasksel::Strategy::BasicBlock, false},
            {"control-flow tasks", tasksel::Strategy::ControlFlow,
             false},
            {"data-dependence tasks", tasksel::Strategy::DataDependence,
             false},
            {"data-dependence + task-size",
             tasksel::Strategy::DataDependence, true},
        };
        for (const Cfg &c : cfgs) {
            tasksel::SelectionOptions sel;
            sel.strategy = c.strategy;
            sel.taskSizeHeuristic = c.size;
            pipeline::StageOptions o =
                pipeline::StageOptions::fromSelection(sel);
            o.config = arch::SimConfig::paperConfig(pus);
            o.trace.traceInsts = 100'000;
            printResult(c.label, session.simulate(o)->stats);
        }
    }
    return 0;
}
