/**
 * @file
 * Quickstart: build a tiny program with the IR builder, partition it
 * with the paper's heuristics, and run it through the Multiscalar
 * timing model.
 *
 *   ./quickstart
 */

#include <cstdio>

#include "arch/stats.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "pipeline/session.h"
#include "tasksel/selector.h"

using namespace msc;

int
main()
{
    // 1. Author a program: sum of squares over an array, written in
    //    the mini-IR through the fluent builder.
    ir::IRBuilder b("sum-of-squares");
    b.setEntry("main");
    ir::FunctionBuilder &f = b.function("main");

    const ir::RegId i = 16, n = 17, sum = 18, tmp = 8, v = 9;
    ir::BlockId head = f.newBlock(), body = f.newBlock();
    ir::BlockId latch = f.newBlock(), done = f.newBlock();

    f.li(n, 500);
    f.li(sum, 0);
    f.li(i, 0);
    f.fallthroughTo(head);

    f.setBlock(head);
    f.slt(tmp, i, n);
    f.br(tmp, body, done);

    f.setBlock(body);
    f.addi(tmp, i, 1000);
    f.store(i, tmp, 0);      // mem[1000+i] = i
    f.load(v, tmp, 0);
    f.mul(v, v, v);          // v = i^2
    f.add(sum, sum, v);
    f.fallthroughTo(latch);

    f.setBlock(latch);
    f.addi(i, i, 1);
    f.jmp(head);

    f.setBlock(done);
    f.storeAbs(sum, 0);
    f.halt();

    ir::Program prog = b.build();
    std::printf("--- program ---\n%s\n", ir::toString(prog).c_str());

    // 2. Run the full pipeline: IV hoisting, profiling, task
    //    selection with the data-dependence heuristic, and the cycle
    //    timing model on a 4-PU Multiscalar processor. A Session
    //    exposes the stages individually (and caches each artifact);
    //    runAll is the one-call form.
    tasksel::SelectionOptions sel;
    sel.strategy = tasksel::Strategy::DataDependence;
    pipeline::StageOptions opts = pipeline::StageOptions::fromSelection(sel);
    opts.config = arch::SimConfig::paperConfig(4);

    pipeline::Session session(prog);
    pipeline::StageResults r = session.runAll(opts);

    std::printf("--- tasks ---\n");
    for (const auto &t : r.partition->partition.tasks) {
        std::printf("task %u: entry bb%u, %zu blocks, %u static insts, "
                    "%zu targets\n",
                    t.id, t.entry, t.blocks.size(), t.staticInsts,
                    t.targets.size());
    }

    const arch::SimStats &st = r.sim->stats;
    std::printf("\n--- simulation (4 out-of-order PUs) ---\n");
    std::printf("retired %llu instructions in %llu cycles: IPC %.3f\n",
                (unsigned long long)st.retiredInsts,
                (unsigned long long)st.cycles, st.ipc());
    std::printf("dynamic tasks: %llu (avg %.1f insts)\n",
                (unsigned long long)st.dynTasks, st.avgTaskSize());
    std::printf("task misprediction: %.2f%%\n",
                st.taskMispredictPct());
    std::printf("window span: %.0f instructions\n",
                st.measuredWindowSpan);
    std::printf("\ncycle breakdown:\n%s",
                arch::formatBuckets(st).c_str());
    return 0;
}
