/**
 * @file
 * PU-count scaling on the loop-parallel FP analogs — the paper's
 * floating-point benchmarks are where task-level speculation shines
 * (§4.3.1). Sweeps 1..8 PUs with data-dependence tasks and reports
 * speedup over one PU, plus the window span the machine sustains.
 *
 *   ./stencil_scaling [workload]
 */

#include <cstdio>
#include <string>

#include "pipeline/session.h"
#include "workloads/workload.h"

using namespace msc;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "tomcatv";
    ir::Program p = workloads::buildWorkload(name,
                                             workloads::Scale::Small);

    std::printf("%s scaling with data-dependence tasks\n",
                name.c_str());
    std::printf("%4s %10s %8s %9s %10s %10s\n", "PUs", "cycles", "IPC",
                "speedup", "win-span", "tpred%");

    // One Session across the PU sweep: only the SimConfig changes, so
    // the transform/profile/select/trace frontend runs exactly once
    // and each PU count reuses the cached task trace.
    pipeline::Session session(p);
    tasksel::SelectionOptions sel;
    sel.strategy = tasksel::Strategy::DataDependence;
    pipeline::StageOptions o = pipeline::StageOptions::fromSelection(sel);
    o.trace.traceInsts = 100'000;

    uint64_t base = 0;
    for (unsigned pus : {1u, 2u, 4u, 8u}) {
        o.config = arch::SimConfig::paperConfig(pus);
        const arch::SimStats &st = session.simulate(o)->stats;
        if (pus == 1)
            base = st.cycles;
        std::printf("%4u %10llu %8.3f %8.2fx %10.0f %9.1f%%\n", pus,
                    (unsigned long long)st.cycles, st.ipc(),
                    double(base) / double(st.cycles),
                    st.measuredWindowSpan,
                    st.taskMispredictPct());
    }
    std::printf("\nThe window span grows with PU count: the machine\n"
                "speculates across many loop iterations at once —\n"
                "far beyond a branch-predicted superscalar window\n"
                "(§4.3.4).\n");
    return 0;
}
