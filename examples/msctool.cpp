/**
 * @file
 * msctool — command-line front end to the whole library.
 *
 *   msctool list
 *       List bundled workloads.
 *   msctool disasm <workload|file.mir>
 *       Print a program in the textual IR format (parseable back).
 *   msctool run <workload|file.mir> [--pus N] [--strategy bb|cf|dd]
 *               [--in-order] [--size] [--targets N] [--insts N]
 *               [--timeout-ms N] [--max-fuel N] [--max-cycles N]
 *       Full pipeline: transforms, profile, partition, simulate.
 *   msctool exec <workload|file.mir>
 *       Functional execution only; prints the checksum.
 *   msctool sweep [workloads...] [--strategy bb,cf,dd] [--pus 4,8]
 *               [--jobs N] [--json file] [--csv file] [--in-order]
 *               [--size] [--targets N] [--insts N] [--small]
 *               [--cache-dir DIR] [--timeout-ms N] [--max-fuel N]
 *               [--max-cycles N]
 *       Run a workload × strategy × PU grid (all bundled workloads
 *       when none are named), optionally in parallel, and emit the
 *       structured results (schema: docs/METRICS.md). Grid points
 *       share frontend artifacts through a SessionPool; --cache-dir
 *       persists them across invocations (docs/API.md). Failing
 *       cells are isolated: they print as ERROR rows and serialize
 *       as `status: "error"` objects in a `partial: true` document
 *       (docs/ROBUSTNESS.md). Exit code: 0 all cells ok, 1 all
 *       failed, 3 partial (some of each).
 *   msctool fuzz [--count N] [--seed S] [--jobs N] [--size 0..3]
 *               [--max-insts N] [--corpus-dir DIR] [--no-shrink]
 *               [--timeout-ms N] [--max-fuel N]
 *       Differential fuzzing: random programs through three
 *       independent oracles under every selection strategy
 *       (docs/TESTING.md). Nonzero exit on any divergence.
 *       --timeout-ms/--max-fuel bound each seed's whole differential;
 *       exhaustion records the seed as a `timeout` failure (written
 *       to --corpus-dir as timeout-seed<N>.mir, never shrunk)
 *       instead of hanging the campaign.
 *   msctool trace <workload|file.mir> [--out trace.json]
 *               [--taskprof prof.json] [--pus N] [--strategy bb|cf|dd]
 *               [--in-order] [--size] [--targets N] [--insts N]
 *               [--top N] [--phase-times] [--check]
 *       Full pipeline with task-lifecycle tracing: write a
 *       Perfetto/chrome://tracing timeline and a per-static-task
 *       msc.taskprof attribution profile, print the hot-tasks table
 *       (docs/TRACING.md). --check re-parses the emitted trace and
 *       verifies the span-vs-SimStats accounting invariant.
 *   msctool stats (--connect EP | --unix PATH | --tcp PORT | --stdio)
 *               [--json | --prom]
 *       Query a live mscd for its telemetry snapshot via the `stats`
 *       protocol verb (docs/OBSERVABILITY.md): counters, gauges, and
 *       latency histograms as a table, the raw `msc.metrics` JSON
 *       document (--json), or Prometheus text exposition (--prom).
 *   msctool cancel <request-id> --connect EP
 *       Ask a live daemon to cancel the in-flight request whose id is
 *       <request-id>; prints whether the target was found.
 *   msctool version
 *       Print the daemon protocol version and the schema versions of
 *       every structured document this build emits.
 *
 * Remote execution: `run`, `sweep`, `trace`, `stats`, and `cancel`
 * all accept `--connect unix:/path | tcp:host:port | tcp:port |
 * stdio` (src/client endpoint grammar, docs/API.md). With --connect
 * the work happens in the daemon at that endpoint — which may be a
 * `mscd --router` front-end — and the tool becomes a thin protocol
 * client rendering the streamed frames. With `stdio` the wire owns
 * this process's stdin/stdout (for piping through a spawned `mscd
 * --stdio`), so all rendering moves to stderr. Host-side flags
 * (--cache-dir, --jobs, --check, --phase-times) and `.mir` files
 * don't travel over the wire and are rejected with --connect.
 *
 * Files with a `.mir` extension are parsed with ir::parseProgram, so
 * hand-written programs work everywhere a workload name does
 * (locally).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/stats.h"
#include "client/client.h"
#include "fuzz/campaign.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "obs/crosscheck.h"
#include "obs/metrics.h"
#include "obs/perfetto.h"
#include "obs/phase.h"
#include "obs/taskprof.h"
#include "pipeline/session.h"
#include "profile/interpreter.h"
#include "report/record.h"
#include "report/sweep.h"
#include "runtime/budget.h"
#include "serve/frame.h"
#include "serve/protocol.h"
#include "workloads/workload.h"

using namespace msc;

namespace {

ir::Program
loadProgram(const std::string &spec)
{
    if (spec.size() > 4 &&
        spec.compare(spec.size() - 4, 4, ".mir") == 0) {
        std::ifstream in(spec);
        if (!in)
            throw std::runtime_error("cannot open " + spec);
        std::ostringstream ss;
        ss << in.rdbuf();
        return ir::parseProgram(ss.str());
    }
    return workloads::buildWorkload(spec, workloads::Scale::Small);
}

// ---------------------------------------------------------------------------
// Remote execution (--connect): every daemon-facing verb rides the
// src/client API; nothing below hand-rolls sockets or frames.

/** The parsed `--connect ENDPOINT` state of one invocation. */
struct Remote
{
    std::string spec;  ///< Raw endpoint text; empty = run locally.

    bool enabled() const { return !spec.empty(); }

    client::Endpoint endpoint() const
    {
        return client::parseEndpoint(spec);
    }

    /** Rendering stream: with a stdio endpoint the wire owns stdout,
     *  so human output moves to stderr. */
    std::FILE *out() const
    {
        return endpoint().kind == client::Endpoint::Kind::Stdio
                   ? stderr
                   : stdout;
    }

    /** Guards host-side flags that cannot travel over the wire. */
    void reject(bool present, const char *what) const
    {
        if (enabled() && present)
            throw std::runtime_error(std::string(what) +
                                     " is host-side; drop it or drop "
                                     "--connect");
    }
};

/** One sweep-table row from a wire `run` object (msc.sweep schema —
 *  the same row cmdSweep prints for a local RunRecord). */
void
printRunRow(std::FILE *out, const report::Json &run)
{
    const std::string &id = run.get("id").asString();
    if (run.get("status").asString() == "ok") {
        const report::Json &m = run.get("metrics");
        std::fprintf(out, "%-28s %8.3f %9llu %7llu %7.2f %8.0f\n",
                     id.c_str(), m.get("ipc").asDouble(),
                     (unsigned long long)m.get("cycles").asUInt(),
                     (unsigned long long)
                         m.get("tasks").get("dyn_tasks").asUInt(),
                     m.get("prediction")
                         .get("task_mispredict_pct")
                         .asDouble(),
                     m.get("window_span").get("measured").asDouble());
    } else {
        const report::Json &e = run.get("error");
        std::fprintf(out, "%-28s ERROR %s: %s: %s\n", id.c_str(),
                     e.get("stage").asString().c_str(),
                     e.get("kind").asString().c_str(),
                     e.get("detail").asString().c_str());
    }
}

/** Streams one run/sweep request over @p remote: rows print as cell
 *  frames arrive, @p json_path (optional) receives the reassembled
 *  msc.sweep document, and the daemon summary maps straight onto the
 *  local sweep exit-code contract (0 clean / 1 all failed /
 *  3 partial). */
int
streamRemoteSweep(const Remote &remote,
                  const client::RequestBuilder &req,
                  const std::string &json_path)
{
    std::FILE *out = remote.out();
    client::ClientConn conn(remote.endpoint());
    std::fprintf(out, "%-28s %8s %9s %7s %7s %8s\n", "run", "IPC",
                 "cycles", "tasks", "tpred%", "span");
    client::ClientConn::SweepOutcome sw = conn.collectSweep(
        req, [&](const client::ResponseFrame &f) {
            if (f.type == client::ResponseFrame::Type::Cell) {
                printRunRow(out, f.run);
                std::fflush(out);  // rows stream even through a pipe
            }
        });
    if (!sw.ok()) {
        std::fprintf(stderr, "msctool: request failed: %s\n",
                     sw.last.error.render().c_str());
        return 1;
    }
    if (sw.last.via == "router")
        std::fprintf(stderr, "sweep: routed across %zu shards\n",
                     sw.last.shards.size());
    if (sw.last.errors)
        std::fprintf(stderr,
                     "sweep: %llu of %llu runs failed (results are "
                     "partial)\n",
                     (unsigned long long)sw.last.errors,
                     (unsigned long long)sw.last.runs);
    if (!json_path.empty()) {
        size_t n = sw.runs.size();
        report::writeFile(
            json_path,
            report::sweepDocFromRuns(std::move(sw.runs)).dump(2));
        std::fprintf(stderr, "sweep: wrote %zu runs to %s\n", n,
                     json_path.c_str());
    }
    return sw.last.exitCode;
}

int
cmdList()
{
    std::printf("%-10s %-14s %s\n", "name", "models", "suite");
    for (const auto &w : workloads::allWorkloads())
        std::printf("%-10s %-14s %s\n", w.name.c_str(),
                    w.models.c_str(), w.isFp ? "fp" : "int");
    return 0;
}

int
cmdDisasm(const std::string &spec)
{
    ir::Program p = loadProgram(spec);
    std::printf("%s", ir::toString(p).c_str());
    return 0;
}

int
cmdExec(const std::string &spec)
{
    ir::Program p = loadProgram(spec);
    profile::Interpreter in(p);
    uint64_t n = in.runQuiet();
    std::printf("%s: %llu instructions, halted=%d, checksum mem[0]=%lld\n",
                spec.c_str(), (unsigned long long)n, in.halted(),
                (long long)in.mem(0));
    return in.halted() ? 0 : 1;
}

int
cmdRun(int argc, char **argv)
{
    std::string spec = argv[0];
    tasksel::SelectionOptions sel;
    uint64_t trace_insts = 400'000;
    unsigned pus = 4;
    bool ooo = true;
    std::string cache_dir;
    runtime::ExecBudget budget;
    arch::CoreMode core = arch::CoreMode::Event;
    Remote remote;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto arg = [&](const char *name) -> const char * {
            if (a != name)
                return nullptr;
            if (i + 1 >= argc)
                throw std::runtime_error(std::string(name) +
                                         " needs a value");
            return argv[++i];
        };
        if (const char *v = arg("--pus")) {
            pus = unsigned(atoi(v));
        } else if (const char *v2 = arg("--strategy")) {
            std::string s = v2;
            sel.strategy = s == "bb" ? tasksel::Strategy::BasicBlock
                         : s == "cf" ? tasksel::Strategy::ControlFlow
                                     : tasksel::Strategy::DataDependence;
        } else if (const char *v3 = arg("--targets")) {
            sel.maxTargets = unsigned(atoi(v3));
        } else if (const char *v4 = arg("--insts")) {
            trace_insts = uint64_t(atoll(v4));
        } else if (const char *v5 = arg("--cache-dir")) {
            cache_dir = v5;
        } else if (const char *v6 = arg("--timeout-ms")) {
            budget.wallMs = uint32_t(atoll(v6));
        } else if (const char *v7 = arg("--max-fuel")) {
            budget.maxFuel = uint64_t(atoll(v7));
        } else if (const char *v8 = arg("--max-cycles")) {
            budget.maxSimCycles = uint64_t(atoll(v8));
        } else if (const char *v9 = arg("--core")) {
            if (!arch::parseCoreMode(v9, core))
                throw std::runtime_error("bad --core value " +
                                         std::string(v9));
        } else if (const char *v10 = arg("--connect")) {
            remote.spec = v10;
        } else if (a == "--in-order") {
            ooo = false;
        } else if (a == "--size") {
            sel.taskSizeHeuristic = true;
        } else {
            throw std::runtime_error("unknown flag " + a);
        }
    }
    if (remote.enabled()) {
        remote.reject(!cache_dir.empty(), "--cache-dir");
        remote.reject(spec.size() > 4 && spec.compare(spec.size() - 4,
                                                      4, ".mir") == 0,
                      "a .mir file");
        client::RequestBuilder req =
            client::RequestBuilder::run("run-cli", spec);
        req.strategy(report::strategyId(sel.strategy))
            .pusCount(pus)
            .smallScale(true)  // local `run` builds Scale::Small too
            .insts(trace_insts)
            .targets(sel.maxTargets)
            .inOrder(!ooo)
            .sizeHeuristic(sel.taskSizeHeuristic)
            .core(arch::coreModeName(core))
            .budget(budget);
        return streamRemoteSweep(remote, req, "");
    }
    pipeline::StageOptions o = pipeline::StageOptions::fromSelection(sel);
    o.trace.traceInsts = trace_insts;
    o.config = arch::SimConfig::paperConfig(pus, ooo);
    o.config.maxTargets = sel.maxTargets;
    o.config.coreMode = core;
    o.budget = budget;

    pipeline::Session session(loadProgram(spec),
                              pipeline::SessionConfig{cache_dir});
    pipeline::StageResults r = session.runAll(o);
    const tasksel::TaskPartition &partition = r.partition->partition;
    const arch::SimStats &st = r.sim->stats;
    std::printf("%s | %s tasks | %u %s PUs | N=%u%s\n", spec.c_str(),
                tasksel::strategyName(sel.strategy), pus,
                ooo ? "out-of-order" : "in-order", sel.maxTargets,
                sel.taskSizeHeuristic ? " | +size" : "");
    std::printf("  static tasks %zu (avg %.1f insts), unrolled %u, "
                "hoisted %u, included calls %zu\n",
                partition.size(), partition.avgStaticSize(),
                r.transformed->loopsUnrolled, r.transformed->ivsHoisted,
                partition.includedCalls.size());
    std::printf("  IPC %.3f | %llu cycles | %llu insts | %llu tasks "
                "(avg %.1f)\n",
                st.ipc(), (unsigned long long)st.cycles,
                (unsigned long long)st.retiredInsts,
                (unsigned long long)st.dynTasks, st.avgTaskSize());
    std::printf("  task mispred %.2f%% | branch mispred %.2f%% | "
                "mem violations %llu | window span %.0f\n",
                st.taskMispredictPct(),
                st.branchPredictions
                    ? 100.0 * double(st.branchMispredictions) /
                          double(st.branchPredictions)
                    : 0.0,
                (unsigned long long)st.memViolations,
                st.measuredWindowSpan);
    std::printf("%s", arch::formatBuckets(st).c_str());
    return 0;
}

/** Splits "a,b,c" into {"a","b","c"}. */
std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > pos)
            out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

int
cmdSweep(int argc, char **argv)
{
    std::vector<std::string> names;
    std::vector<std::string> strategies = {"bb", "cf", "dd"};
    std::vector<unsigned> pus = {4, 8};
    unsigned jobs = 0;                 // default: all cores
    unsigned targets = 4;
    uint64_t insts = 250'000;
    bool ooo = true, size_heur = false;
    workloads::Scale scale = workloads::Scale::Full;
    std::string json_path, csv_path, cache_dir;
    runtime::ExecBudget budget;
    arch::CoreMode core = arch::CoreMode::Event;
    Remote remote;

    for (int i = 0; i < argc; ++i) {
        std::string a = argv[i];
        auto arg = [&](const char *name) -> const char * {
            if (a != name)
                return nullptr;
            if (i + 1 >= argc)
                throw std::runtime_error(std::string(name) +
                                         " needs a value");
            return argv[++i];
        };
        if (const char *v = arg("--strategy")) {
            strategies = splitList(v);
        } else if (const char *v2 = arg("--pus")) {
            pus.clear();
            for (const auto &p : splitList(v2))
                pus.push_back(unsigned(atoi(p.c_str())));
        } else if (const char *v3 = arg("--jobs")) {
            jobs = unsigned(atoi(v3));
        } else if (const char *v4 = arg("--json")) {
            json_path = v4;
        } else if (const char *v5 = arg("--csv")) {
            csv_path = v5;
        } else if (const char *v6 = arg("--targets")) {
            targets = unsigned(atoi(v6));
        } else if (const char *v7 = arg("--insts")) {
            insts = uint64_t(atoll(v7));
        } else if (const char *v8 = arg("--cache-dir")) {
            cache_dir = v8;
        } else if (const char *v9 = arg("--timeout-ms")) {
            budget.wallMs = uint32_t(atoll(v9));
        } else if (const char *v10 = arg("--max-fuel")) {
            budget.maxFuel = uint64_t(atoll(v10));
        } else if (const char *v11 = arg("--max-cycles")) {
            budget.maxSimCycles = uint64_t(atoll(v11));
        } else if (const char *v12 = arg("--core")) {
            if (!arch::parseCoreMode(v12, core))
                throw std::runtime_error("bad --core value " +
                                         std::string(v12));
        } else if (const char *v13 = arg("--connect")) {
            remote.spec = v13;
        } else if (a == "--in-order") {
            ooo = false;
        } else if (a == "--size") {
            size_heur = true;
        } else if (a == "--small") {
            scale = workloads::Scale::Small;
        } else if (a.size() >= 2 && a[0] == '-' && a[1] == '-') {
            throw std::runtime_error("unknown flag " + a);
        } else {
            names.push_back(a);
        }
    }
    if (remote.enabled()) {
        remote.reject(!cache_dir.empty(), "--cache-dir");
        remote.reject(jobs != 0, "--jobs");
        remote.reject(!csv_path.empty(), "--csv");
        client::RequestBuilder req =
            client::RequestBuilder::sweep("sweep-cli");
        if (!names.empty())
            req.workloads(names);  // else: server default = all
        req.strategies(strategies)
            .pus(pus)
            .smallScale(scale == workloads::Scale::Small)
            .insts(insts)
            .targets(targets)
            .inOrder(!ooo)
            .sizeHeuristic(size_heur)
            .core(arch::coreModeName(core))
            .budget(budget);
        return streamRemoteSweep(remote, req, json_path);
    }
    if (names.empty())
        for (const auto &w : workloads::allWorkloads())
            names.push_back(w.name);

    std::vector<report::RunSpec> specs;
    for (const auto &n : names)
        for (const auto &s : strategies)
            for (unsigned p : pus) {
                report::RunSpec sp = report::makeSpec(
                    n, report::strategyFromId(s), p, ooo, scale, insts,
                    size_heur, targets);
                sp.opts.budget = budget;
                sp.opts.config.coreMode = core;
                specs.push_back(std::move(sp));
            }

    report::SweepRunner runner(jobs);
    std::fprintf(stderr, "sweep: %zu runs (%zu workloads x %zu "
                         "strategies x %zu PU configs) on %u threads\n",
                 specs.size(), names.size(), strategies.size(),
                 pus.size(), runner.jobs());
    pipeline::SessionPool pool(pipeline::SessionConfig{cache_dir});
    std::vector<report::RunRecord> records = runner.run(specs, pool);
    std::fprintf(stderr, "sweep: artifact cache: %s\n",
                 pool.stats().summary().c_str());

    std::printf("%-28s %8s %9s %7s %7s %8s\n", "run", "IPC", "cycles",
                "tasks", "tpred%", "span");
    size_t failed = 0;
    for (const auto &r : records) {
        if (r.ok()) {
            std::printf("%-28s %8.3f %9llu %7llu %7.2f %8.0f\n",
                        r.spec.id.c_str(), r.stats.ipc(),
                        (unsigned long long)r.stats.cycles,
                        (unsigned long long)r.stats.dynTasks,
                        r.stats.taskMispredictPct(),
                        r.stats.measuredWindowSpan);
        } else {
            ++failed;
            std::printf("%-28s ERROR %s\n", r.spec.id.c_str(),
                        r.error.render().c_str());
        }
    }
    if (failed)
        std::fprintf(stderr, "sweep: %zu of %zu runs failed "
                             "(results are partial)\n",
                     failed, records.size());

    if (!json_path.empty()) {
        report::writeFile(json_path,
                          report::sweepToJson(records).dump(2));
        std::fprintf(stderr, "sweep: wrote %zu runs to %s\n",
                     records.size(), json_path.c_str());
    }
    if (!csv_path.empty()) {
        report::writeFile(csv_path, report::sweepToCsv(records));
        std::fprintf(stderr, "sweep: wrote %zu runs to %s\n",
                     records.size(), csv_path.c_str());
    }
    return report::sweepExitCode(records);
}

int
cmdTrace(int argc, char **argv)
{
    std::string spec = argv[0];
    tasksel::SelectionOptions sel;
    uint64_t trace_insts = 400'000;
    unsigned pus = 4;
    bool ooo = true;
    std::string out_path, prof_path;
    unsigned top_n = 10;
    bool phase_spans = false, check = false;
    arch::CoreMode core = arch::CoreMode::Event;
    Remote remote;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto arg = [&](const char *name) -> const char * {
            if (a != name)
                return nullptr;
            if (i + 1 >= argc)
                throw std::runtime_error(std::string(name) +
                                         " needs a value");
            return argv[++i];
        };
        if (const char *v = arg("--pus")) {
            pus = unsigned(atoi(v));
        } else if (const char *v2 = arg("--strategy")) {
            sel.strategy = report::strategyFromId(v2);
        } else if (const char *v3 = arg("--targets")) {
            sel.maxTargets = unsigned(atoi(v3));
        } else if (const char *v4 = arg("--insts")) {
            trace_insts = uint64_t(atoll(v4));
        } else if (const char *v5 = arg("--out")) {
            out_path = v5;
        } else if (const char *v6 = arg("--taskprof")) {
            prof_path = v6;
        } else if (const char *v7 = arg("--top")) {
            top_n = unsigned(atoi(v7));
        } else if (const char *v9 = arg("--connect")) {
            remote.spec = v9;
        } else if (const char *v8 = arg("--core")) {
            if (!arch::parseCoreMode(v8, core))
                throw std::runtime_error("bad --core value " +
                                         std::string(v8));
        } else if (a == "--in-order") {
            ooo = false;
        } else if (a == "--size") {
            sel.taskSizeHeuristic = true;
        } else if (a == "--phase-times") {
            phase_spans = true;
        } else if (a == "--check") {
            check = true;
        } else {
            throw std::runtime_error("unknown flag " + a);
        }
    }
    if (remote.enabled()) {
        remote.reject(check, "--check");
        remote.reject(phase_spans, "--phase-times");
        remote.reject(spec.size() > 4 && spec.compare(spec.size() - 4,
                                                      4, ".mir") == 0,
                      "a .mir file");
        client::RequestBuilder req =
            client::RequestBuilder::trace("trace-cli", spec);
        req.strategy(report::strategyId(sel.strategy))
            .pusCount(pus)
            .smallScale(true)
            .insts(trace_insts)
            .targets(sel.maxTargets)
            .inOrder(!ooo)
            .sizeHeuristic(sel.taskSizeHeuristic)
            .core(arch::coreModeName(core))
            .includeTrace(!out_path.empty());
        client::ClientConn conn(remote.endpoint());
        client::ResponseFrame last = conn.call(req);
        if (last.type == client::ResponseFrame::Type::Error) {
            std::fprintf(stderr, "msctool: trace failed: %s\n",
                         last.error.render().c_str());
            return 1;
        }
        std::FILE *out = remote.out();
        std::fprintf(out, "%-28s %8s %9s %7s %7s %8s\n", "run", "IPC",
                     "cycles", "tasks", "tpred%", "span");
        printRunRow(out, last.raw.get("run"));
        if (!out_path.empty()) {
            report::writeFile(out_path,
                              last.raw.get("trace").dump());
            std::fprintf(stderr, "trace: wrote %s\n",
                         out_path.c_str());
        }
        if (!prof_path.empty()) {
            report::writeFile(prof_path,
                              last.raw.get("taskprof").dump(2));
            std::fprintf(stderr, "trace: wrote %s\n",
                         prof_path.c_str());
        }
        // The hot-task table stays host-side (it needs the partition
        // object); the taskprof file carries the per-task data.
        return 0;
    }
    pipeline::StageOptions o = pipeline::StageOptions::fromSelection(sel);
    o.trace.traceInsts = trace_insts;
    o.config = arch::SimConfig::paperConfig(pus, ooo);
    o.config.maxTargets = sel.maxTargets;
    o.config.coreMode = core;

    obs::PerfettoTraceWriter writer(pus, spec);
    obs::TaskProfiler prof;
    obs::SpanAccounting xcheck(pus);
    obs::TeeSink tee({&writer, &prof, &xcheck});
    obs::PhaseTimes phases;
    o.sink = &tee;
    o.phaseTimes = &phases;

    pipeline::Session session(loadProgram(spec));
    pipeline::StageResults res = session.runAll(o);
    const tasksel::TaskPartition &partition = res.partition->partition;
    const arch::SimStats &st = res.sim->stats;

    // Host-time breakdown goes to stderr (and, on request, into the
    // trace file) — never into structured result documents.
    std::fprintf(stderr, "pipeline wall-clock phases:\n%s",
                 obs::formatPhaseTimes(phases).c_str());
    if (phase_spans)
        writer.addPhaseSpans(phases);

    std::printf("%s | %s tasks | %u %s PUs | %llu cycles | IPC %.3f\n",
                spec.c_str(), tasksel::strategyName(sel.strategy),
                pus, ooo ? "out-of-order" : "in-order",
                (unsigned long long)st.cycles, st.ipc());
    std::printf("%s", arch::formatBuckets(st).c_str());
    std::printf("hot static tasks (of %zu in partition):\n%s",
                partition.size(),
                obs::formatHotTasks(prof, partition, top_n).c_str());

    if (!out_path.empty()) {
        writer.write(out_path);
        std::fprintf(stderr, "trace: wrote %s\n", out_path.c_str());
    }
    if (!prof_path.empty()) {
        report::writeFile(
            prof_path,
            obs::taskProfileToJson(prof, partition, spec).dump(2));
        std::fprintf(stderr, "trace: wrote %s\n", prof_path.c_str());
    }

    if (!check)
        return 0;

    // The timeline must BE the accounting: live event sums first,
    // then the emitted JSON re-parsed and re-summed per PU.
    std::string err = xcheck.verify(st);
    if (!err.empty()) {
        std::fprintf(stderr,
                     "trace: accounting cross-check FAILED: %s\n",
                     err.c_str());
        return 1;
    }

    std::string text;
    if (out_path.empty()) {
        text = writer.str();
    } else {
        std::ifstream in(out_path, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    }
    report::Json doc = report::Json::parse(text);
    const report::Json &events = doc.get("traceEvents");
    std::vector<uint64_t> per_pu(pus, 0);
    for (size_t i = 0; i < events.size(); ++i) {
        const report::Json &e = events.at(i);
        const std::string &ph = e.get("ph").asString();
        if (e.get("ts").asDouble() < 0 ||
            (e.find("dur") && e.get("dur").asDouble() < 0))
            throw std::runtime_error("negative ts/dur in trace event");
        if (ph != "X" ||
            e.get("pid").asInt() != obs::PerfettoTraceWriter::PID_SIM)
            continue;
        per_pu.at(size_t(e.get("tid").asInt())) += e.get("dur").asUInt();
    }
    for (unsigned pu = 0; pu < pus; ++pu) {
        if (per_pu[pu] != st.puOccupiedCycles[pu]) {
            std::fprintf(stderr,
                         "trace: emitted file cross-check FAILED: PU %u "
                         "spans %llu != accounted %llu\n",
                         pu, (unsigned long long)per_pu[pu],
                         (unsigned long long)st.puOccupiedCycles[pu]);
            return 1;
        }
    }
    std::fprintf(stderr,
                 "trace: accounting cross-check passed (%zu events, "
                 "%u PUs)\n",
                 events.size(), pus);
    return 0;
}

int
cmdFuzz(int argc, char **argv)
{
    fuzz::CampaignOptions o;
    o.jobs = 0;                        // default: all cores
    bool quiet = false;

    for (int i = 0; i < argc; ++i) {
        std::string a = argv[i];
        auto arg = [&](const char *name) -> const char * {
            if (a != name)
                return nullptr;
            if (i + 1 >= argc)
                throw std::runtime_error(std::string(name) +
                                         " needs a value");
            return argv[++i];
        };
        if (const char *v = arg("--count")) {
            o.count = uint64_t(atoll(v));
        } else if (const char *v2 = arg("--seed")) {
            o.seedBase = uint64_t(atoll(v2));
        } else if (const char *v3 = arg("--jobs")) {
            o.jobs = unsigned(atoi(v3));
        } else if (const char *v4 = arg("--size")) {
            o.gen.sizeClass = unsigned(atoi(v4));
        } else if (const char *v5 = arg("--max-insts")) {
            o.maxInsts = uint64_t(atoll(v5));
        } else if (const char *v6 = arg("--corpus-dir")) {
            o.corpusDir = v6;
        } else if (const char *v7 = arg("--timeout-ms")) {
            o.budget.wallMs = uint32_t(atoll(v7));
        } else if (const char *v8 = arg("--max-fuel")) {
            o.budget.maxFuel = uint64_t(atoll(v8));
        } else if (a == "--no-shrink") {
            o.shrinkFailures = false;
        } else if (a == "--quiet") {
            quiet = true;
        } else {
            throw std::runtime_error("unknown flag " + a);
        }
    }

    report::SweepRunner pool(o.jobs);
    std::fprintf(stderr,
                 "fuzz: seeds [%llu, %llu) on %u threads, "
                 "%zu configs per seed\n",
                 (unsigned long long)o.seedBase,
                 (unsigned long long)(o.seedBase + o.count),
                 pool.jobs(), fuzz::defaultConfigs().size());

    fuzz::CampaignResult r = fuzz::runCampaign(o);

    if (!quiet) {
        for (const auto &f : r.failures) {
            std::printf("seed %llu: %s", (unsigned long long)f.seed,
                        fuzz::diffKindName(f.diff.kind));
            if (!f.diff.config.empty())
                std::printf(" [%s]", f.diff.config.c_str());
            if (!f.diff.detail.empty())
                std::printf(": %s", f.diff.detail.c_str());
            if (!f.reproPath.empty())
                std::printf(" -> %s", f.reproPath.c_str());
            std::printf("\n");
        }
    }
    std::printf("fuzz: %llu programs, %zu divergence%s\n",
                (unsigned long long)r.executed, r.failures.size(),
                r.failures.size() == 1 ? "" : "s");
    return r.ok() ? 0 : 1;
}

int
cmdVersion()
{
    std::printf("msctool protocol %d\n"
                "  %s schema v%d\n"
                "  %s schema v%d\n"
                "  %s schema v%d\n",
                serve::PROTOCOL_VERSION, report::SCHEMA_NAME,
                report::SCHEMA_VERSION, obs::TASKPROF_SCHEMA_NAME,
                obs::TASKPROF_SCHEMA_VERSION, obs::METRICS_SCHEMA_NAME,
                obs::METRICS_SCHEMA_VERSION);
    return 0;
}

/** Renders a `msc.metrics` document as a human table: counters and
 *  gauges name/value, histograms count/sum/mean. */
void
renderStatsTable(std::FILE *out, const report::Json &m)
{
    std::fprintf(out, "counters:\n");
    for (const auto &kv : m.get("counters").members())
        std::fprintf(out, "  %-40s %12llu\n", kv.first.c_str(),
                     (unsigned long long)kv.second.asUInt());
    std::fprintf(out, "gauges:\n");
    for (const auto &kv : m.get("gauges").members())
        std::fprintf(out, "  %-40s %12lld\n", kv.first.c_str(),
                     (long long)kv.second.asInt());
    std::fprintf(out, "histograms:%36s %12s %12s\n", "count", "sum",
                 "mean");
    for (const auto &kv : m.get("histograms").members()) {
        uint64_t count = kv.second.get("count").asUInt();
        double sum = kv.second.get("sum").asDouble();
        std::fprintf(out, "  %-40s %12llu %12.0f %12.1f\n",
                     kv.first.c_str(), (unsigned long long)count, sum,
                     count ? sum / double(count) : 0.0);
    }
}

int
cmdStats(int argc, char **argv)
{
    Remote remote;
    bool raw_json = false, prom = false;

    for (int i = 0; i < argc; ++i) {
        std::string a = argv[i];
        auto arg = [&](const char *name) -> const char * {
            if (a != name)
                return nullptr;
            if (i + 1 >= argc)
                throw std::runtime_error(std::string(name) +
                                         " needs a value");
            return argv[++i];
        };
        // Legacy spellings desugar onto the endpoint grammar.
        if (const char *v = arg("--unix")) {
            remote.spec = std::string("unix:") + v;
        } else if (const char *v2 = arg("--tcp")) {
            remote.spec = std::string("tcp:") + v2;
        } else if (const char *v3 = arg("--connect")) {
            remote.spec = v3;
        } else if (a == "--stdio") {
            remote.spec = "stdio";
        } else if (a == "--json") {
            raw_json = true;
        } else if (a == "--prom") {
            prom = true;
        } else {
            throw std::runtime_error("unknown flag " + a);
        }
    }
    if (!remote.enabled())
        throw std::runtime_error(
            "stats needs one of --connect ENDPOINT, --unix PATH, "
            "--tcp PORT, --stdio");

    std::FILE *out = remote.out();
    client::ClientConn conn(remote.endpoint());
    client::RequestBuilder req =
        client::RequestBuilder::stats("stats-cli");
    if (prom)
        req.format("prometheus");

    client::ResponseFrame last = conn.call(req);
    if (last.type != client::ResponseFrame::Type::Result) {
        std::fprintf(stderr, "msctool: stats failed: %s\n",
                     last.error.render().c_str());
        return 1;
    }
    if (prom)
        std::fprintf(out, "%s",
                     last.raw.get("prometheus").asString().c_str());
    else if (raw_json)
        std::fprintf(out, "%s\n",
                     last.raw.get("metrics").dump(2).c_str());
    else
        renderStatsTable(out, last.raw.get("metrics"));
    return 0;
}

int
cmdCancel(int argc, char **argv)
{
    std::string target = argv[0];
    Remote remote;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--connect" && i + 1 < argc) {
            remote.spec = argv[++i];
        } else {
            throw std::runtime_error("unknown flag " + a);
        }
    }
    if (!remote.enabled())
        throw std::runtime_error("cancel needs --connect ENDPOINT");

    client::ClientConn conn(remote.endpoint());
    client::ResponseFrame last =
        conn.call(client::RequestBuilder::cancel("cancel-cli", target));
    if (last.type != client::ResponseFrame::Type::Result) {
        std::fprintf(stderr, "msctool: cancel failed: %s\n",
                     last.error.render().c_str());
        return 1;
    }
    bool found = last.raw.get("found").asBool();
    std::fprintf(remote.out(), "cancel %s: %s\n", target.c_str(),
                 found ? "delivered" : "no such in-flight request");
    return found ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        if (argc >= 2 && std::strcmp(argv[1], "list") == 0)
            return cmdList();
        if (argc >= 3 && std::strcmp(argv[1], "disasm") == 0)
            return cmdDisasm(argv[2]);
        if (argc >= 3 && std::strcmp(argv[1], "exec") == 0)
            return cmdExec(argv[2]);
        if (argc >= 3 && std::strcmp(argv[1], "run") == 0)
            return cmdRun(argc - 2, argv + 2);
        if (argc >= 2 && std::strcmp(argv[1], "sweep") == 0)
            return cmdSweep(argc - 2, argv + 2);
        if (argc >= 2 && std::strcmp(argv[1], "fuzz") == 0)
            return cmdFuzz(argc - 2, argv + 2);
        if (argc >= 3 && std::strcmp(argv[1], "trace") == 0)
            return cmdTrace(argc - 2, argv + 2);
        if (argc >= 2 && std::strcmp(argv[1], "stats") == 0)
            return cmdStats(argc - 2, argv + 2);
        if (argc >= 3 && std::strcmp(argv[1], "cancel") == 0)
            return cmdCancel(argc - 2, argv + 2);
        if (argc >= 2 && std::strcmp(argv[1], "version") == 0)
            return cmdVersion();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "msctool: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr,
                 "usage: msctool list\n"
                 "       msctool disasm <workload|file.mir>\n"
                 "       msctool exec   <workload|file.mir>\n"
                 "       msctool run    <workload|file.mir> [--pus N]\n"
                 "              [--strategy bb|cf|dd] [--in-order]\n"
                 "              [--size] [--targets N] [--insts N]\n"
                 "              [--cache-dir DIR] [--timeout-ms N]\n"
                 "              [--max-fuel N] [--max-cycles N]\n"
                 "              [--core cycle|event]\n"
                 "       msctool sweep  [workloads...]\n"
                 "              [--strategy bb,cf,dd] [--pus 4,8]\n"
                 "              [--jobs N] [--json file] [--csv file]\n"
                 "              [--in-order] [--size] [--targets N]\n"
                 "              [--insts N] [--small] [--cache-dir DIR]\n"
                 "              [--timeout-ms N] [--max-fuel N]\n"
                 "              [--max-cycles N] [--core cycle|event]\n"
                 "              exit: 0 clean, 1 all failed, 3 partial\n"
                 "       msctool fuzz   [--count N] [--seed S]\n"
                 "              [--jobs N] [--size 0..3] [--max-insts N]\n"
                 "              [--corpus-dir DIR] [--no-shrink]\n"
                 "              [--timeout-ms N] [--max-fuel N]\n"
                 "       msctool trace  <workload|file.mir>\n"
                 "              [--out trace.json] [--taskprof p.json]\n"
                 "              [--pus N] [--strategy bb|cf|dd]\n"
                 "              [--in-order] [--size] [--targets N]\n"
                 "              [--insts N] [--top N] [--phase-times]\n"
                 "              [--check] [--core cycle|event]\n"
                 "       msctool stats  (--connect EP | --unix PATH |\n"
                 "              --tcp PORT | --stdio) [--json | --prom]\n"
                 "       msctool cancel <request-id> --connect EP\n"
                 "       msctool version\n"
                 "\n"
                 "run/sweep/trace/stats/cancel accept --connect\n"
                 "(unix:/path | tcp:host:port | tcp:port | stdio) to\n"
                 "execute in a live mscd or mscd --router instead of\n"
                 "in-process.\n");
    return 2;
}
