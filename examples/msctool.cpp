/**
 * @file
 * msctool — command-line front end to the whole library.
 *
 *   msctool list
 *       List bundled workloads.
 *   msctool disasm <workload|file.mir>
 *       Print a program in the textual IR format (parseable back).
 *   msctool run <workload|file.mir> [--pus N] [--strategy bb|cf|dd]
 *               [--in-order] [--size] [--targets N] [--insts N]
 *       Full pipeline: transforms, profile, partition, simulate.
 *   msctool exec <workload|file.mir>
 *       Functional execution only; prints the checksum.
 *
 * Files with a `.mir` extension are parsed with ir::parseProgram, so
 * hand-written programs work everywhere a workload name does.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "arch/stats.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "profile/interpreter.h"
#include "sim/runner.h"
#include "workloads/workload.h"

using namespace msc;

namespace {

ir::Program
loadProgram(const std::string &spec)
{
    if (spec.size() > 4 &&
        spec.compare(spec.size() - 4, 4, ".mir") == 0) {
        std::ifstream in(spec);
        if (!in)
            throw std::runtime_error("cannot open " + spec);
        std::ostringstream ss;
        ss << in.rdbuf();
        return ir::parseProgram(ss.str());
    }
    return workloads::buildWorkload(spec, workloads::Scale::Small);
}

int
cmdList()
{
    std::printf("%-10s %-14s %s\n", "name", "models", "suite");
    for (const auto &w : workloads::allWorkloads())
        std::printf("%-10s %-14s %s\n", w.name.c_str(),
                    w.models.c_str(), w.isFp ? "fp" : "int");
    return 0;
}

int
cmdDisasm(const std::string &spec)
{
    ir::Program p = loadProgram(spec);
    std::printf("%s", ir::toString(p).c_str());
    return 0;
}

int
cmdExec(const std::string &spec)
{
    ir::Program p = loadProgram(spec);
    profile::Interpreter in(p);
    uint64_t n = in.runQuiet();
    std::printf("%s: %llu instructions, halted=%d, checksum mem[0]=%lld\n",
                spec.c_str(), (unsigned long long)n, in.halted(),
                (long long)in.mem(0));
    return in.halted() ? 0 : 1;
}

int
cmdRun(int argc, char **argv)
{
    std::string spec = argv[0];
    sim::RunOptions o;
    unsigned pus = 4;
    bool ooo = true;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto arg = [&](const char *name) -> const char * {
            if (a != name)
                return nullptr;
            if (i + 1 >= argc)
                throw std::runtime_error(std::string(name) +
                                         " needs a value");
            return argv[++i];
        };
        if (const char *v = arg("--pus")) {
            pus = unsigned(atoi(v));
        } else if (const char *v2 = arg("--strategy")) {
            std::string s = v2;
            o.sel.strategy = s == "bb" ? tasksel::Strategy::BasicBlock
                           : s == "cf" ? tasksel::Strategy::ControlFlow
                                       : tasksel::Strategy::DataDependence;
        } else if (const char *v3 = arg("--targets")) {
            o.sel.maxTargets = unsigned(atoi(v3));
        } else if (const char *v4 = arg("--insts")) {
            o.traceInsts = uint64_t(atoll(v4));
        } else if (a == "--in-order") {
            ooo = false;
        } else if (a == "--size") {
            o.sel.taskSizeHeuristic = true;
        } else {
            throw std::runtime_error("unknown flag " + a);
        }
    }
    o.config = arch::SimConfig::paperConfig(pus, ooo);
    o.config.maxTargets = o.sel.maxTargets;

    sim::RunResult r = sim::runPipeline(loadProgram(spec), o);
    std::printf("%s | %s tasks | %u %s PUs | N=%u%s\n", spec.c_str(),
                tasksel::strategyName(o.sel.strategy), pus,
                ooo ? "out-of-order" : "in-order", o.sel.maxTargets,
                o.sel.taskSizeHeuristic ? " | +size" : "");
    std::printf("  static tasks %zu (avg %.1f insts), unrolled %u, "
                "hoisted %u, included calls %zu\n",
                r.partition.size(), r.partition.avgStaticSize(),
                r.loopsUnrolled, r.ivsHoisted,
                r.partition.includedCalls.size());
    std::printf("  IPC %.3f | %llu cycles | %llu insts | %llu tasks "
                "(avg %.1f)\n",
                r.stats.ipc(), (unsigned long long)r.stats.cycles,
                (unsigned long long)r.stats.retiredInsts,
                (unsigned long long)r.stats.dynTasks,
                r.stats.avgTaskSize());
    std::printf("  task mispred %.2f%% | branch mispred %.2f%% | "
                "mem violations %llu | window span %.0f\n",
                r.stats.taskMispredictPct(),
                r.stats.branchPredictions
                    ? 100.0 * double(r.stats.branchMispredictions) /
                          double(r.stats.branchPredictions)
                    : 0.0,
                (unsigned long long)r.stats.memViolations,
                r.stats.measuredWindowSpan);
    std::printf("%s", arch::formatBuckets(r.stats).c_str());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        if (argc >= 2 && std::strcmp(argv[1], "list") == 0)
            return cmdList();
        if (argc >= 3 && std::strcmp(argv[1], "disasm") == 0)
            return cmdDisasm(argv[2]);
        if (argc >= 3 && std::strcmp(argv[1], "exec") == 0)
            return cmdExec(argv[2]);
        if (argc >= 3 && std::strcmp(argv[1], "run") == 0)
            return cmdRun(argc - 2, argv + 2);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "msctool: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr,
                 "usage: msctool list\n"
                 "       msctool disasm <workload|file.mir>\n"
                 "       msctool exec   <workload|file.mir>\n"
                 "       msctool run    <workload|file.mir> [--pus N]\n"
                 "              [--strategy bb|cf|dd] [--in-order]\n"
                 "              [--size] [--targets N] [--insts N]\n");
    return 2;
}
