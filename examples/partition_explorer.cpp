/**
 * @file
 * Partition explorer: dump the task partition a heuristic produces
 * for any bundled workload.
 *
 *   ./partition_explorer [workload] [bb|cf|dd] [N]
 *
 * Prints every task with its blocks, exposed targets, create mask and
 * safe forward points — the compiler's entire hand-off to the
 * Multiscalar hardware.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "ir/printer.h"
#include "pipeline/session.h"
#include "workloads/workload.h"

using namespace msc;

namespace {

const char *
kindName(tasksel::TargetKind k)
{
    return k == tasksel::TargetKind::Return ? "return" : "block";
}

std::string
maskToString(cfg::RegSet m)
{
    std::string s;
    for (unsigned r = 0; r < ir::NUM_REGS; ++r) {
        if (m & cfg::regBit(ir::RegId(r))) {
            if (!s.empty())
                s += ",";
            s += ir::regName(ir::RegId(r));
        }
    }
    return s.empty() ? "-" : s;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "compress";
    std::string strat = argc > 2 ? argv[2] : "dd";
    unsigned n = argc > 3 ? unsigned(atoi(argv[3])) : 4;

    tasksel::SelectionOptions sel;
    sel.strategy = strat == "bb" ? tasksel::Strategy::BasicBlock
                 : strat == "cf" ? tasksel::Strategy::ControlFlow
                                 : tasksel::Strategy::DataDependence;
    sel.maxTargets = n;
    pipeline::StageOptions o = pipeline::StageOptions::fromSelection(sel);

    // select() stops after the frontend: no trace, no timing model.
    pipeline::Session session(
        workloads::buildWorkload(name, workloads::Scale::Small));
    auto part = session.select(o);
    const tasksel::TaskPartition &partition = part->partition;
    const ir::Program &p = *part->transformed->prog;

    std::printf("workload %s (%s tasks, N=%u): %zu functions, "
                "%zu static insts, %zu tasks\n\n",
                name.c_str(), tasksel::strategyName(sel.strategy), n,
                p.functions.size(), p.numInsts(), partition.size());

    for (const auto &t : partition.tasks) {
        const ir::Function &f = p.functions[t.func];
        std::printf("task %-3u @%s entry bb%-3u (%u insts)\n", t.id,
                    f.name.c_str(), t.entry, t.staticInsts);
        std::printf("  blocks:");
        for (ir::BlockId b : t.blocks)
            std::printf(" bb%u", b);
        std::printf("\n  targets:");
        for (const auto &tg : t.targets) {
            if (tg.kind == tasksel::TargetKind::Return) {
                std::printf(" [return]");
            } else {
                std::printf(" [@%s bb%u]",
                            p.functions[tg.block.func].name.c_str(),
                            tg.block.block);
            }
            (void)kindName(tg.kind);
        }
        std::printf("\n  create mask: %s\n",
                    maskToString(t.createMask).c_str());
        // Safe forward points.
        for (ir::BlockId b : t.blocks) {
            const auto &bb = f.blocks[b];
            for (size_t i = 0; i < bb.insts.size(); ++i) {
                cfg::RegSet fwd = partition.fwdSafe[t.func][b][i];
                if (fwd) {
                    std::printf("  forward at bb%u[%zu] %-24s -> %s\n",
                                b, i,
                                ir::toString(bb.insts[i]).c_str(),
                                maskToString(fwd).c_str());
                }
            }
        }
    }

    if (!partition.includedCalls.empty()) {
        std::printf("\nincluded calls:");
        for (const auto &c : partition.includedCalls)
            std::printf(" @%s/bb%u", p.functions[c.func].name.c_str(),
                        c.block);
        std::printf("\n");
    }
    return 0;
}
