/**
 * @file
 * mscd — the pipeline daemon (docs/DAEMON.md).
 *
 *   mscd --stdio [options]
 *       Serve exactly one connection over stdin/stdout, then exit.
 *       This is the mode the conformance tests and shell pipelines
 *       use: `mscd --stdio < requests.bin > responses.bin`.
 *   mscd --unix PATH [options]
 *       Listen on a Unix-domain socket (stale socket files are
 *       replaced; the socket is unlinked on clean shutdown).
 *   mscd --tcp PORT [options]
 *       Listen on 127.0.0.1:PORT.
 *
 * Options:
 *   --jobs N         Worker threads executing cells (default:
 *                    hardware concurrency).
 *   --log-json       Emit one structured JSON log line per request
 *                    lifecycle event on stderr
 *                    (docs/OBSERVABILITY.md).
 *   --cache-dir DIR  Persist stage artifacts on disk, shared by every
 *                    request (same format as `msctool sweep
 *                    --cache-dir`).
 *   --max-frame N    Inbound frame-size cap in bytes (default 16 MiB).
 *   --timeout-ms N / --max-fuel N / --max-cycles N
 *                    Default per-cell ExecBudget; a request's
 *                    `budget` object overrides per field.
 *   --version        Print the protocol version and the schema
 *                    versions of every document the daemon can emit,
 *                    then exit 0.
 *
 * Exit code 0 on clean shutdown (end-of-stream in --stdio mode,
 * SIGINT/SIGTERM in listener modes), 1 on setup failure or bad usage.
 *
 * Every response frame is a structured JSON object; nothing a client
 * sends can crash the daemon (src/serve/, tests/test_mscd.cc).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/taskprof.h"
#include "report/record.h"
#include "serve/server.h"

using namespace msc;

namespace {

serve::Server *g_server = nullptr;

extern "C" void
onSignal(int)
{
    // requestStop is async-signal-safe: atomics + close().
    if (g_server)
        g_server->requestStop();
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mscd --stdio | --unix PATH | --tcp PORT\n"
        "            [--jobs N] [--cache-dir DIR] [--max-frame N]\n"
        "            [--timeout-ms N] [--max-fuel N] [--max-cycles N]\n"
        "            [--log-json]\n"
        "       mscd --version\n"
        "\n"
        "Serve msc pipeline requests over a length-prefixed JSON\n"
        "protocol (docs/DAEMON.md).\n");
    return 1;
}

int
printVersion(const char *prog)
{
    std::printf("%s protocol %d\n"
                "  %s schema v%d\n"
                "  %s schema v%d\n"
                "  %s schema v%d\n",
                prog, serve::PROTOCOL_VERSION, report::SCHEMA_NAME,
                report::SCHEMA_VERSION, obs::TASKPROF_SCHEMA_NAME,
                obs::TASKPROF_SCHEMA_VERSION, obs::METRICS_SCHEMA_NAME,
                obs::METRICS_SCHEMA_VERSION);
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    enum class Mode { None, Stdio, Unix, Tcp } mode = Mode::None;
    std::string unix_path;
    long tcp_port = 0;

    serve::ServerConfig cfg;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto arg = [&](const char *name) -> const char * {
            if (a != name)
                return nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "mscd: %s needs a value\n", name);
                std::exit(1);
            }
            return argv[++i];
        };
        if (a == "--version") {
            return printVersion("mscd");
        } else if (a == "--stdio") {
            mode = Mode::Stdio;
        } else if (a == "--log-json") {
            cfg.logJson = true;
        } else if (const char *v = arg("--unix")) {
            mode = Mode::Unix;
            unix_path = v;
        } else if (const char *v1 = arg("--tcp")) {
            mode = Mode::Tcp;
            tcp_port = atol(v1);
            if (tcp_port < 1 || tcp_port > 65535) {
                std::fprintf(stderr, "mscd: bad port %s\n", v1);
                return 1;
            }
        } else if (const char *v2 = arg("--jobs")) {
            cfg.dispatch.jobs = unsigned(atoi(v2));
        } else if (const char *v3 = arg("--cache-dir")) {
            cfg.dispatch.session.cacheDir = v3;
        } else if (const char *v4 = arg("--max-frame")) {
            cfg.maxFrame = uint32_t(atoll(v4));
        } else if (const char *v5 = arg("--timeout-ms")) {
            cfg.defaults.budget.wallMs = uint32_t(atoll(v5));
        } else if (const char *v6 = arg("--max-fuel")) {
            cfg.defaults.budget.maxFuel = uint64_t(atoll(v6));
        } else if (const char *v7 = arg("--max-cycles")) {
            cfg.defaults.budget.maxSimCycles = uint64_t(atoll(v7));
        } else {
            std::fprintf(stderr, "mscd: unknown option %s\n",
                         a.c_str());
            return usage();
        }
    }
    if (mode == Mode::None)
        return usage();

    // A client that disconnects mid-stream must not kill the daemon:
    // writes then fail with EPIPE (a structured Io StageError that
    // tears down only that connection), not SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);

    serve::Server server(std::move(cfg));
    g_server = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    switch (mode) {
      case Mode::Stdio: {
        serve::FdTransport t(0, 1);
        server.serveConnection(t);
        return 0;
      }
      case Mode::Unix:
        return server.serveUnix(unix_path);
      case Mode::Tcp:
        return server.serveTcp(uint16_t(tcp_port));
      case Mode::None:
        break;
    }
    return usage();
}
