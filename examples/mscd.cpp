/**
 * @file
 * mscd — the pipeline daemon (docs/DAEMON.md).
 *
 *   mscd --stdio [options]
 *       Serve exactly one connection over stdin/stdout, then exit.
 *       This is the mode the conformance tests and shell pipelines
 *       use: `mscd --stdio < requests.bin > responses.bin`.
 *   mscd --unix PATH [options]
 *       Listen on a Unix-domain socket (stale socket files are
 *       replaced; the socket is unlinked on clean shutdown).
 *   mscd --tcp PORT [options]
 *       Listen on 127.0.0.1:PORT.
 *   mscd --router --shard EP [--shard EP ...] (--stdio|--unix|--tcp)
 *       Shard mode (docs/DAEMON.md#sharding): serve the same
 *       protocol, but execute nothing locally — fan sweep cells out
 *       to the shard daemons at the given endpoints by content-key
 *       hash, reassemble, and degrade to `partial` summaries when a
 *       shard is lost. Endpoints use the src/client grammar:
 *       unix:/path, tcp:host:port, tcp:port.
 *
 * Options:
 *   --jobs N         Worker threads executing cells (default:
 *                    hardware concurrency; single-daemon mode only).
 *   --log-json       Emit one structured JSON log line per request
 *                    lifecycle event on stderr
 *                    (docs/OBSERVABILITY.md).
 *   --cache-dir DIR  Persist stage artifacts on disk, shared by every
 *                    request (same format as `msctool sweep
 *                    --cache-dir`; single-daemon mode only — shard
 *                    caches belong to the shards).
 *   --max-frame N    Inbound frame-size cap in bytes (default 16 MiB).
 *   --max-inflight N Per-connection backpressure bound: pooled
 *                    requests past N are refused with a structured
 *                    `busy` error frame (default 0 = unlimited).
 *   --timeout-ms N / --max-fuel N / --max-cycles N
 *                    Default per-cell ExecBudget; a request's
 *                    `budget` object overrides per field.
 *   --version        Print the protocol version and the schema
 *                    versions of every document the daemon can emit,
 *                    then exit 0.
 *
 * Exit code 0 on clean shutdown (end-of-stream in --stdio mode,
 * SIGINT/SIGTERM in listener modes), 1 on setup failure or bad usage.
 *
 * Every response frame is a structured JSON object; nothing a client
 * sends can crash the daemon (src/serve/, tests/test_mscd.cc).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "client/endpoint.h"
#include "obs/taskprof.h"
#include "report/record.h"
#include "serve/router.h"
#include "serve/server.h"

using namespace msc;

namespace {

serve::Server *g_server = nullptr;
serve::Router *g_router = nullptr;

extern "C" void
onSignal(int)
{
    // requestStop is async-signal-safe: atomics + close().
    if (g_server)
        g_server->requestStop();
    if (g_router)
        g_router->requestStop();
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mscd --stdio | --unix PATH | --tcp PORT\n"
        "            [--jobs N] [--cache-dir DIR] [--max-frame N]\n"
        "            [--max-inflight N]\n"
        "            [--timeout-ms N] [--max-fuel N] [--max-cycles N]\n"
        "            [--log-json]\n"
        "       mscd --router --shard ENDPOINT [--shard ENDPOINT ...]\n"
        "            (--stdio | --unix PATH | --tcp PORT) [options]\n"
        "       mscd --version\n"
        "\n"
        "Serve msc pipeline requests over a length-prefixed JSON\n"
        "protocol (docs/DAEMON.md). --router fans cells out to shard\n"
        "daemons (unix:/path | tcp:host:port | tcp:port endpoints).\n");
    return 1;
}

int
printVersion(const char *prog)
{
    std::printf("%s protocol %d\n"
                "  %s schema v%d\n"
                "  %s schema v%d\n"
                "  %s schema v%d\n",
                prog, serve::PROTOCOL_VERSION, report::SCHEMA_NAME,
                report::SCHEMA_VERSION, obs::TASKPROF_SCHEMA_NAME,
                obs::TASKPROF_SCHEMA_VERSION, obs::METRICS_SCHEMA_NAME,
                obs::METRICS_SCHEMA_VERSION);
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    enum class Mode { None, Stdio, Unix, Tcp } mode = Mode::None;
    std::string unix_path;
    long tcp_port = 0;
    bool router = false;
    std::vector<client::Endpoint> shards;

    serve::ServerConfig cfg;
    unsigned max_inflight = 0;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto arg = [&](const char *name) -> const char * {
            if (a != name)
                return nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "mscd: %s needs a value\n", name);
                std::exit(1);
            }
            return argv[++i];
        };
        if (a == "--version") {
            return printVersion("mscd");
        } else if (a == "--stdio") {
            mode = Mode::Stdio;
        } else if (a == "--router") {
            router = true;
        } else if (a == "--log-json") {
            cfg.logJson = true;
        } else if (const char *v = arg("--unix")) {
            mode = Mode::Unix;
            unix_path = v;
        } else if (const char *v1 = arg("--tcp")) {
            mode = Mode::Tcp;
            tcp_port = atol(v1);
            if (tcp_port < 1 || tcp_port > 65535) {
                std::fprintf(stderr, "mscd: bad port %s\n", v1);
                return 1;
            }
        } else if (const char *vs = arg("--shard")) {
            try {
                client::Endpoint ep = client::parseEndpoint(vs);
                if (ep.kind == client::Endpoint::Kind::Stdio) {
                    std::fprintf(
                        stderr,
                        "mscd: --shard cannot be stdio (a shard "
                        "needs its own listener)\n");
                    return 1;
                }
                shards.push_back(std::move(ep));
            } catch (const std::exception &e) {
                std::fprintf(stderr, "mscd: %s\n", e.what());
                return 1;
            }
        } else if (const char *v2 = arg("--jobs")) {
            cfg.dispatch.jobs = unsigned(atoi(v2));
        } else if (const char *v3 = arg("--cache-dir")) {
            cfg.dispatch.session.cacheDir = v3;
        } else if (const char *v4 = arg("--max-frame")) {
            cfg.maxFrame = uint32_t(atoll(v4));
        } else if (const char *v8 = arg("--max-inflight")) {
            max_inflight = unsigned(atoll(v8));
        } else if (const char *v5 = arg("--timeout-ms")) {
            cfg.defaults.budget.wallMs = uint32_t(atoll(v5));
        } else if (const char *v6 = arg("--max-fuel")) {
            cfg.defaults.budget.maxFuel = uint64_t(atoll(v6));
        } else if (const char *v7 = arg("--max-cycles")) {
            cfg.defaults.budget.maxSimCycles = uint64_t(atoll(v7));
        } else {
            std::fprintf(stderr, "mscd: unknown option %s\n",
                         a.c_str());
            return usage();
        }
    }
    if (mode == Mode::None)
        return usage();
    if (router && shards.empty()) {
        std::fprintf(stderr,
                     "mscd: --router needs at least one --shard\n");
        return 1;
    }
    if (!router && !shards.empty()) {
        std::fprintf(stderr, "mscd: --shard requires --router\n");
        return 1;
    }

    // A client that disconnects mid-stream must not kill the daemon:
    // writes then fail with EPIPE (a structured Io StageError that
    // tears down only that connection), not SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);

    if (router) {
        serve::RouterConfig rcfg;
        rcfg.shards = std::move(shards);
        rcfg.defaults = cfg.defaults;
        rcfg.maxFrame = cfg.maxFrame;
        rcfg.maxInflight = max_inflight;
        rcfg.logJson = cfg.logJson;

        serve::Router rt(std::move(rcfg));
        g_router = &rt;
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);

        switch (mode) {
          case Mode::Stdio: {
            serve::FdTransport t(0, 1);
            rt.serveConnection(t);
            return 0;
          }
          case Mode::Unix:
            return rt.serveUnix(unix_path);
          case Mode::Tcp:
            return rt.serveTcp(uint16_t(tcp_port));
          case Mode::None:
            break;
        }
        return usage();
    }

    cfg.maxInflight = max_inflight;
    serve::Server server(std::move(cfg));
    g_server = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    switch (mode) {
      case Mode::Stdio: {
        serve::FdTransport t(0, 1);
        server.serveConnection(t);
        return 0;
      }
      case Mode::Unix:
        return server.serveUnix(unix_path);
      case Mode::Tcp:
        return server.serveTcp(uint16_t(tcp_port));
      case Mode::None:
        break;
    }
    return usage();
}
