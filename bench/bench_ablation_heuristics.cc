/**
 * @file
 * Ablations for §3.2/§3.4 design choices:
 *
 *  1. CALL_THRESH / LOOP_THRESH sweep on the two benchmarks the paper
 *     says respond to the task-size heuristic (compress, fpppp).
 *  2. Induction-variable hoisting on/off (the §3.2 register
 *     communication scheduling aid) on loop-parallel codes.
 *  3. The "terminate task at dependence inclusion" reading of the
 *     data-dependence heuristic (ddTerminateAtDependence) versus the
 *     default region-steered growth.
 */

#include "bench_common.h"

using namespace msc;
using namespace msc::bench;
using tasksel::Strategy;

namespace {

sim::RunResult
runCustom(const std::string &w, tasksel::SelectionOptions sel,
          unsigned pus = 4)
{
    ir::Program p = workloads::buildWorkload(w, benchScale());
    sim::RunOptions o;
    o.sel = sel;
    o.config = arch::SimConfig::paperConfig(pus, true);
    o.traceInsts = benchTraceInsts();
    return sim::runPipeline(p, o);
}

} // anonymous namespace

int
main()
{
    printHeader("Ablation: task-size thresholds "
                "(data-dependence tasks, 4 PUs)");
    std::printf("%-10s %9s", "bench", "no-size");
    for (unsigned t : {10u, 30u, 60u})
        std::printf("   THRESH=%-3u      ", t);
    std::printf("\n%-10s %9s", "", "IPC");
    for (int i = 0; i < 3; ++i)
        std::printf("   IPC   size incl");
    std::printf("\n");
    for (const char *name : {"compress", "fpppp", "ijpeg", "li"}) {
        tasksel::SelectionOptions sel;
        sel.strategy = Strategy::DataDependence;
        auto base = runCustom(name, sel);
        std::printf("%-10s %9.3f", name, base.stats.ipc());
        for (unsigned t : {10u, 30u, 60u}) {
            sel.taskSizeHeuristic = true;
            sel.callThresh = t;
            sel.loopThresh = t;
            auto r = runCustom(name, sel);
            std::printf(" %6.3f %5.1f %4zu", r.stats.ipc(),
                        r.stats.avgTaskSize(),
                        r.partition.includedCalls.size());
        }
        std::printf("\n");
    }

    printHeader("Ablation: induction-variable hoisting "
                "(control-flow tasks, 4 PUs)");
    std::printf("%-10s %9s %9s %9s\n", "bench", "hoist-on", "hoist-off",
                "speedup");
    for (const char *name : {"tomcatv", "swim", "ijpeg", "hydro2d",
                             "applu", "m88ksim"}) {
        tasksel::SelectionOptions sel;
        sel.strategy = Strategy::ControlFlow;
        sel.hoistInductionVars = true;
        double on = runCustom(name, sel).stats.ipc();
        sel.hoistInductionVars = false;
        double off = runCustom(name, sel).stats.ipc();
        std::printf("%-10s %9.3f %9.3f %8.2fx\n", name, on, off,
                    off > 0 ? on / off : 0.0);
    }
    std::printf("(the paper moves IV increments to loop tops so later\n"
                " iterations get their values without delay, §3.2)\n");

    printHeader("Ablation: terminate-at-dependence reading of §3.4 "
                "(4 PUs)");
    std::printf("%-10s %16s %16s\n", "bench", "region-steered",
                "terminate-at-dep");
    std::printf("%-10s %8s %7s %8s %7s\n", "", "IPC", "size", "IPC",
                "size");
    for (const char *name : {"go", "gcc", "m88ksim", "li", "swim",
                             "fpppp"}) {
        tasksel::SelectionOptions sel;
        sel.strategy = Strategy::DataDependence;
        auto a = runCustom(name, sel);
        sel.ddTerminateAtDependence = true;
        auto b = runCustom(name, sel);
        std::printf("%-10s %8.3f %7.1f %8.3f %7.1f\n", name,
                    a.stats.ipc(), a.stats.avgTaskSize(), b.stats.ipc(),
                    b.stats.avgTaskSize());
    }
    std::printf("(the aggressive cut yields the paper's smaller DD\n"
                " tasks and helps worklist code the control-flow\n"
                " heuristic overgrows, at a cost on loop bodies)\n");
    return 0;
}
