/**
 * @file
 * Ablations for §3.2/§3.4 design choices:
 *
 *  1. CALL_THRESH / LOOP_THRESH sweep on the two benchmarks the paper
 *     says respond to the task-size heuristic (compress, fpppp).
 *  2. Induction-variable hoisting on/off (the §3.2 register
 *     communication scheduling aid) on loop-parallel codes.
 *  3. The "terminate task at dependence inclusion" reading of the
 *     data-dependence heuristic (ddTerminateAtDependence) versus the
 *     default region-steered growth.
 */

#include "bench_common.h"

using namespace msc;
using namespace msc::bench;
using tasksel::Strategy;

namespace {

report::RunSpec
customSpec(const std::string &id, const std::string &w,
           const tasksel::SelectionOptions &sel, unsigned pus = 4)
{
    report::RunSpec s;
    s.id = id;
    s.workload = w;
    s.scale = benchScale();
    s.opts = pipeline::StageOptions::fromSelection(sel);
    s.opts.config = arch::SimConfig::paperConfig(pus, true);
    s.opts.trace.traceInsts = benchTraceInsts();
    return s;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchArgs(argc, argv);

    static const char *kSizeBenches[] = {"compress", "fpppp", "ijpeg",
                                         "li"};
    static const char *kHoistBenches[] = {"tomcatv", "swim", "ijpeg",
                                          "hydro2d", "applu",
                                          "m88ksim"};
    static const char *kTermBenches[] = {"go", "gcc", "m88ksim", "li",
                                         "swim", "fpppp"};

    Sweep sweep;
    for (const char *name : kSizeBenches) {
        tasksel::SelectionOptions sel;
        sel.strategy = Strategy::DataDependence;
        sweep.addSpec(customSpec(std::string(name) + "/size-off", name,
                                 sel));
        for (unsigned t : {10u, 30u, 60u}) {
            sel.taskSizeHeuristic = true;
            sel.callThresh = t;
            sel.loopThresh = t;
            sweep.addSpec(customSpec(std::string(name) + "/size-" +
                                         std::to_string(t),
                                     name, sel));
        }
    }
    for (const char *name : kHoistBenches) {
        tasksel::SelectionOptions sel;
        sel.strategy = Strategy::ControlFlow;
        sel.hoistInductionVars = true;
        sweep.addSpec(customSpec(std::string(name) + "/hoist-on", name,
                                 sel));
        sel.hoistInductionVars = false;
        sweep.addSpec(customSpec(std::string(name) + "/hoist-off", name,
                                 sel));
    }
    for (const char *name : kTermBenches) {
        tasksel::SelectionOptions sel;
        sel.strategy = Strategy::DataDependence;
        sweep.addSpec(customSpec(std::string(name) + "/dd-region", name,
                                 sel));
        sel.ddTerminateAtDependence = true;
        sweep.addSpec(customSpec(std::string(name) + "/dd-term", name,
                                 sel));
    }
    sweep.run(opts);

    printHeader("Ablation: task-size thresholds "
                "(data-dependence tasks, 4 PUs)");
    std::printf("%-10s %9s", "bench", "no-size");
    for (unsigned t : {10u, 30u, 60u})
        std::printf("   THRESH=%-3u      ", t);
    std::printf("\n%-10s %9s", "", "IPC");
    for (int i = 0; i < 3; ++i)
        std::printf("   IPC   size incl");
    std::printf("\n");
    for (const char *name : kSizeBenches) {
        const auto &base = sweep[std::string(name) + "/size-off"];
        std::printf("%-10s %9.3f", name, base.stats.ipc());
        for (unsigned t : {10u, 30u, 60u}) {
            const auto &r = sweep[std::string(name) + "/size-" +
                                  std::to_string(t)];
            std::printf(" %6.3f %5.1f %4llu", r.stats.ipc(),
                        r.stats.avgTaskSize(),
                        (unsigned long long)r.includedCalls);
        }
        std::printf("\n");
    }

    printHeader("Ablation: induction-variable hoisting "
                "(control-flow tasks, 4 PUs)");
    std::printf("%-10s %9s %9s %9s\n", "bench", "hoist-on", "hoist-off",
                "speedup");
    for (const char *name : kHoistBenches) {
        double on = sweep[std::string(name) + "/hoist-on"].stats.ipc();
        double off =
            sweep[std::string(name) + "/hoist-off"].stats.ipc();
        std::printf("%-10s %9.3f %9.3f %8.2fx\n", name, on, off,
                    off > 0 ? on / off : 0.0);
    }
    std::printf("(the paper moves IV increments to loop tops so later\n"
                " iterations get their values without delay, §3.2)\n");

    printHeader("Ablation: terminate-at-dependence reading of §3.4 "
                "(4 PUs)");
    std::printf("%-10s %16s %16s\n", "bench", "region-steered",
                "terminate-at-dep");
    std::printf("%-10s %8s %7s %8s %7s\n", "", "IPC", "size", "IPC",
                "size");
    for (const char *name : kTermBenches) {
        const auto &a = sweep[std::string(name) + "/dd-region"];
        const auto &b = sweep[std::string(name) + "/dd-term"];
        std::printf("%-10s %8.3f %7.1f %8.3f %7.1f\n", name,
                    a.stats.ipc(), a.stats.avgTaskSize(), b.stats.ipc(),
                    b.stats.avgTaskSize());
    }
    std::printf("(the aggressive cut yields the paper's smaller DD\n"
                " tasks and helps worklist code the control-flow\n"
                " heuristic overgrows, at a cost on loop bodies)\n");
    return 0;
}
