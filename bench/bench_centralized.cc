/**
 * @file
 * The paper's §1 motivation: "unless key performance issues are
 * understood, smaller distributed designs may not always perform
 * better than larger centralized designs, despite clock speed
 * advantages."
 *
 * Compares a centralized 8-wide superscalar (one PU, 64-entry ROB,
 * 32-entry issue window, doubled FUs — no task speculation, no ring,
 * no ARB squashes) against 4x2-wide and 8x2-wide Multiscalar
 * organizations running data-dependence tasks. The centralized core's
 * large structures would clock slower; we report raw cycles plus a
 * 1.25x clock-penalty-adjusted column (the DEC 21264 two-cluster
 * example of §1 implies wide bypass does not fit a cycle).
 */

#include "bench_common.h"

using namespace msc;
using namespace msc::bench;

namespace {

report::RunSpec
centralizedSpec(const std::string &w)
{
    report::RunSpec s;
    s.id = w + "/central";
    s.workload = w;
    s.scale = benchScale();
    // One big window: control-flow tasks on a single wide PU. Task
    // boundaries still exist but there is no speculation across PUs.
    tasksel::SelectionOptions sel;
    sel.strategy = tasksel::Strategy::ControlFlow;
    s.opts = pipeline::StageOptions::fromSelection(sel);
    s.opts.config = arch::SimConfig::paperConfig(1, true);
    s.opts.config.issueWidth = 8;
    s.opts.config.fetchWidth = 8;
    s.opts.config.robSize = 64;
    s.opts.config.issueListSize = 32;
    s.opts.config.numIntFU = 4;
    s.opts.config.numFpFU = 2;
    s.opts.config.numBrFU = 2;
    s.opts.config.numMemFU = 2;
    // No task boundary costs for the superscalar stand-in. Note that
    // the model still cannot overlap execution across task boundaries
    // on one PU (it has no cross-task window), so the centralized IPC
    // is a conservative lower bound; read the columns as a trend.
    s.opts.config.taskStartOverhead = 0;
    s.opts.config.taskEndOverhead = 0;
    s.opts.trace.traceInsts = benchTraceInsts();
    return s;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchArgs(argc, argv);
    printHeader("Centralized 8-wide superscalar vs distributed "
                "Multiscalar (§1)");

    const auto ints = intBenchmarks(), fps = fpBenchmarks();
    Sweep sweep;
    for (const auto *names : {&ints, &fps}) {
        for (const auto &n : *names) {
            sweep.addSpec(centralizedSpec(n));
            sweep.add(n, tasksel::Strategy::DataDependence, 4, true);
            sweep.add(n, tasksel::Strategy::DataDependence, 8, true);
        }
    }
    sweep.run(opts);

    std::printf("%-10s %10s %12s %10s %10s %9s %9s\n", "bench",
                "central", "central/1.25", "4x2 msc", "8x2 msc",
                "msc4/ctr", "msc8/ctr");

    auto suite = [&](const std::vector<std::string> &names) {
        for (const auto &n : names) {
            double c = sweep[n + "/central"].stats.ipc();
            double m4 =
                sweep[runKey(n, tasksel::Strategy::DataDependence, 4,
                             true)]
                    .stats.ipc();
            double m8 =
                sweep[runKey(n, tasksel::Strategy::DataDependence, 8,
                             true)]
                    .stats.ipc();
            // Clock-adjusted: the centralized core pays ~25% cycle
            // time for its wide bypass and large window.
            double cadj = c / 1.25;
            std::printf("%-10s %10.3f %12.3f %10.3f %10.3f %8.2fx "
                        "%8.2fx\n",
                        n.c_str(), c, cadj, m4, m8, m4 / cadj,
                        m8 / cadj);
        }
    };
    suite(ints);
    suite(fps);
    std::printf("\nColumns msc*/ctr compare against the clock-adjusted\n"
                "centralized IPC. Caveat: the centralized stand-in\n"
                "drains its pipeline at task boundaries (this model\n"
                "has no cross-task window on one PU), so its IPC is a\n"
                "lower bound — read the ratios as a trend, not a\n"
                "measurement. The distributed organization wins where\n"
                "tasks are predictable and independent — the paper's\n"
                "point that task selection is pivotal.\n");
    return 0;
}
