/**
 * @file
 * The paper's §1 motivation: "unless key performance issues are
 * understood, smaller distributed designs may not always perform
 * better than larger centralized designs, despite clock speed
 * advantages."
 *
 * Compares a centralized 8-wide superscalar (one PU, 64-entry ROB,
 * 32-entry issue window, doubled FUs — no task speculation, no ring,
 * no ARB squashes) against 4x2-wide and 8x2-wide Multiscalar
 * organizations running data-dependence tasks. The centralized core's
 * large structures would clock slower; we report raw cycles plus a
 * 1.25x clock-penalty-adjusted column (the DEC 21264 two-cluster
 * example of §1 implies wide bypass does not fit a cycle).
 */

#include "bench_common.h"

using namespace msc;
using namespace msc::bench;

namespace {

sim::RunResult
runCentralized(const std::string &w)
{
    ir::Program p = workloads::buildWorkload(w, benchScale());
    sim::RunOptions o;
    // One big window: control-flow tasks on a single wide PU. Task
    // boundaries still exist but there is no speculation across PUs.
    o.sel.strategy = tasksel::Strategy::ControlFlow;
    o.config = arch::SimConfig::paperConfig(1, true);
    o.config.issueWidth = 8;
    o.config.fetchWidth = 8;
    o.config.robSize = 64;
    o.config.issueListSize = 32;
    o.config.numIntFU = 4;
    o.config.numFpFU = 2;
    o.config.numBrFU = 2;
    o.config.numMemFU = 2;
    // No task boundary costs for the superscalar stand-in. Note that
    // the model still cannot overlap execution across task boundaries
    // on one PU (it has no cross-task window), so the centralized IPC
    // is a conservative lower bound; read the columns as a trend.
    o.config.taskStartOverhead = 0;
    o.config.taskEndOverhead = 0;
    o.traceInsts = benchTraceInsts();
    return sim::runPipeline(p, o);
}

} // anonymous namespace

int
main()
{
    printHeader("Centralized 8-wide superscalar vs distributed "
                "Multiscalar (§1)");
    std::printf("%-10s %10s %12s %10s %10s %9s %9s\n", "bench",
                "central", "central/1.25", "4x2 msc", "8x2 msc",
                "msc4/ctr", "msc8/ctr");

    auto suite = [&](const std::vector<std::string> &names) {
        for (const auto &n : names) {
            double c = runCentralized(n).stats.ipc();
            double m4 = runOne(n, tasksel::Strategy::DataDependence, 4,
                               true).stats.ipc();
            double m8 = runOne(n, tasksel::Strategy::DataDependence, 8,
                               true).stats.ipc();
            // Clock-adjusted: the centralized core pays ~25% cycle
            // time for its wide bypass and large window.
            double cadj = c / 1.25;
            std::printf("%-10s %10.3f %12.3f %10.3f %10.3f %8.2fx "
                        "%8.2fx\n",
                        n.c_str(), c, cadj, m4, m8, m4 / cadj,
                        m8 / cadj);
        }
    };
    suite(intBenchmarks());
    suite(fpBenchmarks());
    std::printf("\nColumns msc*/ctr compare against the clock-adjusted\n"
                "centralized IPC. Caveat: the centralized stand-in\n"
                "drains its pipeline at task boundaries (this model\n"
                "has no cross-task window on one PU), so its IPC is a\n"
                "lower bound — read the ratios as a trend, not a\n"
                "measurement. The distributed organization wins where\n"
                "tasks are predictable and independent — the paper's\n"
                "point that task selection is pivotal.\n");
    return 0;
}
