/**
 * @file
 * Reproduces Table 1: "Dynamic task size, control flow misspeculation
 * rate and window span" — per benchmark and per heuristic:
 *   #dyn inst  : average dynamic instructions per task
 *   #ct inst   : average control-transfer instructions per task
 *   task pred  : task misprediction percentage
 *   br pred    : per-branch-normalized misprediction percentage
 *   win span   : window span at 8 PUs (basic-block and
 *                data-dependence columns in the paper)
 *
 * Paper shapes: basic-block tasks are small (int < 10 inst) with only
 * moderate prediction accuracy; control-flow and data-dependence
 * tasks are several times larger while the hardware holds task
 * prediction accuracy, so per-branch accuracy improves; window spans
 * of heuristic tasks dwarf basic-block spans (int ~45-140, fp up to
 * ~800 in the paper).
 */

#include "bench_common.h"

using namespace msc;
using namespace msc::bench;
using tasksel::Strategy;

namespace {

struct Row
{
    double dyn, ct, tpred, brpred, span;
};

Row
rowOf(const Sweep &sweep, const std::string &n, Strategy s)
{
    const auto &r = sweep[runKey(n, s, 8, true)];
    return {r.stats.avgTaskSize(), r.stats.avgTaskCtlInsts(),
            r.stats.taskMispredictPct(), r.stats.perBranchMispredictPct(),
            r.stats.measuredWindowSpan};
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchArgs(argc, argv);
    printHeader("Table 1: task size, misprediction and window span "
                "(8 PUs)");

    static const Strategy kStrategies[] = {Strategy::BasicBlock,
                                           Strategy::ControlFlow,
                                           Strategy::DataDependence};
    const auto ints = intBenchmarks(), fps = fpBenchmarks();
    Sweep sweep;
    for (const auto *names : {&ints, &fps})
        for (const auto &n : *names)
            for (Strategy s : kStrategies)
                sweep.add(n, s, 8, true);
    sweep.run(opts);

    std::printf("%-10s | %6s %6s %6s | %6s %6s %6s %6s | "
                "%6s %6s %6s %6s | %7s %7s\n",
                "bench", "bb", "bb", "bb", "cf", "cf", "cf", "cf", "dd",
                "dd", "dd", "dd", "bb", "dd");
    std::printf("%-10s | %6s %6s %6s | %6s %6s %6s %6s | "
                "%6s %6s %6s %6s | %7s %7s\n",
                "", "#dyn", "tpred%", "span", "#dyn", "#ct", "tpred%",
                "brpr%", "#dyn", "#ct", "tpred%", "brpr%", "span",
                "span");

    auto suite = [&](const std::vector<std::string> &names) {
        for (const auto &n : names) {
            Row bb = rowOf(sweep, n, Strategy::BasicBlock);
            Row cf = rowOf(sweep, n, Strategy::ControlFlow);
            Row dd = rowOf(sweep, n, Strategy::DataDependence);
            std::printf("%-10s | %6.1f %6.1f %6.0f | %6.1f %6.1f %6.1f "
                        "%6.1f | %6.1f %6.1f %6.1f %6.1f | %7.0f %7.0f\n",
                        n.c_str(), bb.dyn, bb.tpred, bb.span, cf.dyn,
                        cf.ct, cf.tpred, cf.brpred, dd.dyn, dd.ct,
                        dd.tpred, dd.brpred, bb.span, dd.span);
        }
    };
    suite(intBenchmarks());
    std::printf("%-10s |\n", "--------");
    suite(fpBenchmarks());
    return 0;
}
