/**
 * @file
 * Reproduces the Figure 2 taxonomy quantitatively: where every
 * PU-cycle goes — task start/end overhead, useful execution,
 * inter-task data communication, intra-task dependence waits, fetch
 * stalls, load imbalance, and the two misspeculation penalties — for
 * data-dependence tasks at 4 and 8 PUs.
 */

#include "arch/stats.h"
#include "bench_common.h"

using namespace msc;
using namespace msc::bench;
using arch::CycleKind;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchArgs(argc, argv);
    printHeader("Figure 2 cycle taxonomy: PU-cycle breakdown "
                "(data-dependence tasks)");
    static const CycleKind kinds[] = {
        CycleKind::TaskStart,     CycleKind::Useful,
        CycleKind::InterTaskComm, CycleKind::IntraTaskDep,
        CycleKind::FetchStall,    CycleKind::LoadImbalance,
        CycleKind::TaskEnd,       CycleKind::CtrlSquash,
        CycleKind::MemSquash,
    };

    const auto ints = intBenchmarks(), fps = fpBenchmarks();
    Sweep sweep;
    for (unsigned pus : {4u, 8u})
        for (const auto *names : {&ints, &fps})
            for (const auto &n : *names)
                sweep.add(n, tasksel::Strategy::DataDependence, pus,
                          true);
    sweep.run(opts);

    for (unsigned pus : {4u, 8u}) {
        std::printf("\n%u PUs (%% of occupied PU-cycles)\n", pus);
        std::printf("%-10s", "bench");
        for (CycleKind k : kinds)
            std::printf(" %9.9s", arch::cycleKindName(k));
        std::printf(" %8s\n", "IPC");

        auto suite = [&](const std::vector<std::string> &names) {
            for (const auto &n : names) {
                const auto &r =
                    sweep[runKey(n, tasksel::Strategy::DataDependence,
                                 pus, true)];
                uint64_t tot = r.stats.buckets.total();
                if (!tot)
                    tot = 1;
                std::printf("%-10s", n.c_str());
                for (CycleKind k : kinds) {
                    std::printf(" %8.1f%%",
                                100.0 *
                                    double(r.stats.buckets
                                               .counts[size_t(k)]) /
                                    double(tot));
                }
                std::printf(" %8.3f\n", r.stats.ipc());
            }
        };
        suite(ints);
        suite(fps);
    }
    return 0;
}
