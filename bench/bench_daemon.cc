/**
 * @file
 * Daemon / router load generator (docs/DAEMON.md#sharding,
 * docs/PERFORMANCE.md). Measures the protocol + dispatch overhead of
 * serving pipeline runs through mscd, and what the shard router adds
 * on top, with the simulation cost itself deduplicated away:
 *
 *   1. an in-process direct Server on a Unix socket: one cold pass
 *      computes every distinct spec, then a timed pass of --requests
 *      warm `run` requests (every one a cache hit — the wire, the
 *      dispatcher, and the cache lookup are what remain);
 *   2. the same pass through a Router fronting --shards in-process
 *      shard daemons (adds a hash decision, a second hop, and the
 *      grid reassembly per request);
 *   3. one timed routed sweep of the full distinct grid, warm, for
 *      the fan-out path.
 *
 * Reports wall clock, requests/sec, and p50/p95/max per-request
 * latency for both topologies, plus the routed-vs-direct overhead
 * ratio — the number scripts/bench_snapshot.sh commits into
 * BENCH_pr10.json. Everything runs in this process over real
 * sockets, so the figures are transport-inclusive but scheduler-free
 * (no fork, no exec, no container noise).
 *
 * Usage:
 *   bench_daemon [--requests N] [--shards K] [--jobs J] [--json file]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <unistd.h>

#include "client/client.h"
#include "report/record.h"
#include "serve/router.h"
#include "serve/server.h"

using namespace msc;
using Clock = std::chrono::steady_clock;

namespace {

namespace fs = std::filesystem;

struct Options
{
    unsigned requests = 64;
    unsigned shards = 4;
    unsigned jobs = 2;
    std::string jsonPath;
};

Options
parseArgs(int argc, char **argv)
{
    Options o;
    auto usage = [&](int code) {
        std::fprintf(
            stderr,
            "usage: %s [--requests N] [--shards K] [--jobs J]"
            " [--json file]\n"
            "  --requests N  warm run requests per topology"
            " (default 64)\n"
            "  --shards K    shard daemons behind the router"
            " (default 4)\n"
            "  --jobs J      worker threads per daemon (default 2)\n"
            "  --json file   write the msc.bench_daemon document\n",
            argv[0]);
        std::exit(code);
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                usage(2);
            }
            return argv[++i];
        };
        if (a == "--requests")
            o.requests = unsigned(atoi(val()));
        else if (a == "--shards")
            o.shards = unsigned(atoi(val()));
        else if (a == "--jobs")
            o.jobs = unsigned(atoi(val()));
        else if (a == "--json")
            o.jsonPath = val();
        else if (a == "--help" || a == "-h")
            usage(0);
        else {
            std::fprintf(stderr, "unknown flag %s\n", a.c_str());
            usage(2);
        }
    }
    if (!o.requests || !o.shards)
        usage(2);
    return o;
}

struct TempDir
{
    std::string dir;

    TempDir()
    {
        std::string tmpl =
            (fs::temp_directory_path() / "msc-bench-daemon-XXXXXX")
                .string();
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        if (!mkdtemp(buf.data()))
            throw std::runtime_error("mkdtemp failed");
        dir = buf.data();
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(dir, ec);
    }

    std::string path(const std::string &name) const
    {
        return (fs::path(dir) / name).string();
    }
};

class ShardDaemon
{
  public:
    ShardDaemon(std::string sock, unsigned jobs)
        : _sock(std::move(sock))
    {
        serve::ServerConfig cfg;
        cfg.dispatch.jobs = jobs;
        _server = std::make_unique<serve::Server>(std::move(cfg));
        _th = std::thread([this] { _server->serveUnix(_sock); });
        for (int i = 0;; ++i) {
            try {
                ::close(client::connectEndpoint(endpoint()));
                return;
            } catch (const std::exception &) {
                if (i >= 200)
                    throw;
                ::usleep(10'000);
            }
        }
    }

    ~ShardDaemon()
    {
        _server->requestStop();
        _th.join();
    }

    client::Endpoint endpoint() const
    {
        return client::parseEndpoint("unix:" + _sock);
    }

  private:
    std::string _sock;
    std::unique_ptr<serve::Server> _server;
    std::thread _th;
};

/** The distinct warm grid: 8 specs, all fast at small scale. */
std::vector<std::pair<std::string, std::string>>
grid()
{
    std::vector<std::pair<std::string, std::string>> g;
    for (const char *w : {"compress", "li", "go", "m88ksim"})
        for (const char *s : {"bb", "cf"})
            g.emplace_back(w, s);
    return g;
}

client::RequestBuilder
runReq(const std::string &id, const std::string &workload,
       const std::string &strategy)
{
    client::RequestBuilder b = client::RequestBuilder::run(id, workload);
    b.strategy(strategy).pusCount(4).smallScale(true).insts(20000);
    return b;
}

struct PassResult
{
    double wallMs = 0;
    double reqPerSec = 0;
    double p50Us = 0;
    double p95Us = 0;
    double maxUs = 0;
};

double
quantile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0;
    size_t i = size_t(q * double(sorted.size() - 1) + 0.5);
    return sorted[std::min(i, sorted.size() - 1)];
}

/** @p n warm run requests round-robin over the grid, one connection,
 *  sequential (per-request latency is the figure of merit). */
PassResult
timedPass(client::ClientConn &conn, unsigned n)
{
    const auto g = grid();
    std::vector<double> lat;
    lat.reserve(n);
    Clock::time_point start = Clock::now();
    for (unsigned i = 0; i < n; ++i) {
        const auto &[w, s] = g[i % g.size()];
        Clock::time_point t0 = Clock::now();
        client::ResponseFrame f =
            conn.call(runReq("b" + std::to_string(i), w, s));
        if (f.type != client::ResponseFrame::Type::Summary ||
            f.status != "ok")
            throw std::runtime_error("bench request failed on " + w);
        lat.push_back(std::chrono::duration<double, std::micro>(
                          Clock::now() - t0)
                          .count());
    }
    double wall = std::chrono::duration<double, std::milli>(
                      Clock::now() - start)
                      .count();
    std::sort(lat.begin(), lat.end());
    PassResult r;
    r.wallMs = wall;
    r.reqPerSec = double(n) * 1000.0 / wall;
    r.p50Us = quantile(lat, 0.50);
    r.p95Us = quantile(lat, 0.95);
    r.maxUs = lat.back();
    return r;
}

/** One cold pass computes every distinct spec so the timed passes
 *  measure the serving stack, not the simulator. */
void
warm(client::ClientConn &conn)
{
    unsigned i = 0;
    for (const auto &[w, s] : grid()) {
        client::ResponseFrame f =
            conn.call(runReq("warm" + std::to_string(i++), w, s));
        if (f.type != client::ResponseFrame::Type::Summary ||
            f.status != "ok")
            throw std::runtime_error("warm-up failed on " + w);
    }
}

double
timedSweep(client::ClientConn &conn)
{
    client::RequestBuilder b = client::RequestBuilder::sweep("sw");
    b.workloads({"compress", "li", "go", "m88ksim"})
        .strategies({"bb", "cf"})
        .pus({4})
        .smallScale(true)
        .insts(20000);
    Clock::time_point t0 = Clock::now();
    client::ClientConn::SweepOutcome sw = conn.collectSweep(b);
    if (!sw.ok() || sw.last.exitCode != 0)
        throw std::runtime_error("bench sweep failed");
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

report::Json
passJson(const PassResult &r)
{
    report::Json j = report::Json::object();
    j["wall_ms"] = r.wallMs;
    j["req_per_sec"] = r.reqPerSec;
    j["p50_us"] = r.p50Us;
    j["p95_us"] = r.p95Us;
    j["max_us"] = r.maxUs;
    return j;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);
    std::signal(SIGPIPE, SIG_IGN);
    try {
        TempDir tmp;

        // Direct topology.
        PassResult direct;
        double directSweepMs = 0;
        {
            ShardDaemon d(tmp.path("direct.sock"), opts.jobs);
            client::ClientConn conn(d.endpoint());
            warm(conn);
            direct = timedPass(conn, opts.requests);
            directSweepMs = timedSweep(conn);
        }

        // Routed topology: the same pass through the shard router.
        PassResult routed;
        double routedSweepMs = 0;
        {
            std::vector<std::unique_ptr<ShardDaemon>> shards;
            serve::RouterConfig rcfg;
            for (unsigned i = 0; i < opts.shards; ++i) {
                shards.push_back(std::make_unique<ShardDaemon>(
                    tmp.path("shard" + std::to_string(i) + ".sock"),
                    opts.jobs));
                rcfg.shards.push_back(shards.back()->endpoint());
            }
            serve::Router router(std::move(rcfg));
            std::string rsock = tmp.path("router.sock");
            std::thread rth([&] { router.serveUnix(rsock); });
            client::Endpoint rep =
                client::parseEndpoint("unix:" + rsock);
            for (int i = 0;; ++i) {
                try {
                    ::close(client::connectEndpoint(rep));
                    break;
                } catch (const std::exception &) {
                    if (i >= 200)
                        throw;
                    ::usleep(10'000);
                }
            }
            {
                client::ClientConn conn(rep);
                warm(conn);
                routed = timedPass(conn, opts.requests);
                routedSweepMs = timedSweep(conn);
            }
            router.requestStop();
            rth.join();
            // `router` (holding the shard links) must go before
            // `shards`: reverse declaration order guarantees it.
        }

        double overhead = routed.p50Us / direct.p50Us;
        std::printf("\n=== bench_daemon (%u requests, %u shards, "
                    "--jobs %u) ===\n",
                    opts.requests, opts.shards, opts.jobs);
        std::printf("%-8s %10s %10s %10s %10s %10s\n", "topology",
                    "wall ms", "req/s", "p50 us", "p95 us", "max us");
        std::printf("%-8s %10.1f %10.0f %10.0f %10.0f %10.0f\n",
                    "direct", direct.wallMs, direct.reqPerSec,
                    direct.p50Us, direct.p95Us, direct.maxUs);
        std::printf("%-8s %10.1f %10.0f %10.0f %10.0f %10.0f\n",
                    "routed", routed.wallMs, routed.reqPerSec,
                    routed.p50Us, routed.p95Us, routed.maxUs);
        std::printf("warm 8-cell sweep: direct %.1fms, routed %.1fms\n",
                    directSweepMs, routedSweepMs);
        std::printf("router overhead: %.2fx p50 per request\n",
                    overhead);

        if (!opts.jsonPath.empty()) {
            report::Json doc = report::Json::object();
            doc["schema"] = "msc.bench_daemon";
            doc["schema_version"] = uint64_t(1);
            report::Json cfg = report::Json::object();
            cfg["requests"] = uint64_t(opts.requests);
            cfg["shards"] = uint64_t(opts.shards);
            cfg["jobs"] = uint64_t(opts.jobs);
            doc["config"] = std::move(cfg);
            doc["direct"] = passJson(direct);
            doc["routed"] = passJson(routed);
            report::Json sweep = report::Json::object();
            sweep["direct_wall_ms"] = directSweepMs;
            sweep["routed_wall_ms"] = routedSweepMs;
            doc["warm_sweep"] = std::move(sweep);
            doc["router_p50_overhead"] = overhead;
            report::writeFile(opts.jsonPath, doc.dump(2) + "\n");
            std::fprintf(stderr, "[bench] wrote %s\n",
                         opts.jsonPath.c_str());
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench_daemon: %s\n", e.what());
        return 1;
    }
}
