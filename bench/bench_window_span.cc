/**
 * @file
 * Checks §4.3.4's window-span model: the paper computes
 *   window span = sum_{i=0..N-1} TaskSize * Pred^i
 * from average task size and inter-task prediction accuracy. We print
 * the formula's value next to the measured time-average of dynamic
 * instructions in flight, for basic-block and data-dependence tasks
 * at 8 PUs, plus the branch-prediction-only baseline the paper argues
 * against (window span of basic-block tasks is "considerably smaller").
 */

#include "bench_common.h"

using namespace msc;
using namespace msc::bench;
using tasksel::Strategy;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchArgs(argc, argv);
    printHeader("Window span: formula vs measurement (8 PUs)");

    const auto ints = intBenchmarks(), fps = fpBenchmarks();
    Sweep sweep;
    for (const auto *names : {&ints, &fps}) {
        for (const auto &n : *names) {
            sweep.add(n, Strategy::BasicBlock, 8, true);
            sweep.add(n, Strategy::DataDependence, 8, true);
        }
    }
    sweep.run(opts);

    std::printf("%-10s | %9s %9s | %9s %9s | %7s\n", "bench",
                "bb-formla", "bb-measrd", "dd-formla", "dd-measrd",
                "ratio");

    auto suite = [&](const std::vector<std::string> &names) {
        for (const auto &n : names) {
            const auto &bb = sweep[runKey(n, Strategy::BasicBlock, 8,
                                          true)];
            const auto &dd = sweep[runKey(n, Strategy::DataDependence,
                                          8, true)];
            double bf = bb.stats.formulaWindowSpan(8);
            double bm = bb.stats.measuredWindowSpan;
            double df = dd.stats.formulaWindowSpan(8);
            double dm = dd.stats.measuredWindowSpan;
            std::printf("%-10s | %9.0f %9.0f | %9.0f %9.0f | %6.1fx\n",
                        n.c_str(), bf, bm, df, dm,
                        bm > 0 ? dm / bm : 0.0);
        }
    };
    suite(ints);
    suite(fps);
    std::printf("\nratio = measured dd span / measured bb span: "
                "task-level speculation exposes a far wider window\n"
                "than basic-block (branch-level) speculation (§4.3.4).\n");
    return 0;
}
