/**
 * @file
 * Smoke test for the sweep/report harness, registered as the
 * `bench_smoke` ctest target so the structured-results pipeline
 * cannot silently rot.
 *
 * Runs a tiny workload × strategy grid twice — serially and with the
 * requested --jobs — then asserts that
 *
 *   1. the two JSON documents are byte-identical (the determinism
 *      contract of report/sweep.h),
 *   2. the emitted file parses back and carries the documented
 *      schema envelope (schema / schema_version / runs),
 *   3. every run has the top-level metric groups docs/METRICS.md
 *      promises, and the cycle breakdown sums to occupied_pu_cycles,
 *   4. the shared-frontend contract holds: a 2-strategy × 4-SimConfig
 *      sweep through a SessionPool computes exactly 2 of each
 *      frontend artifact (transform/profile/select/trace) and 8
 *      timing sims, and re-running the sweep on the warm pool is
 *      all cache hits with byte-identical output.
 *
 * Always runs at MSC_SMALL scale regardless of the environment: this
 * is a harness check, not a measurement.
 */

#include <cstdio>

#include "bench_common.h"

using namespace msc;
using namespace msc::bench;
using report::Json;

namespace {

std::vector<report::RunSpec>
tinyGrid()
{
    std::vector<report::RunSpec> specs;
    for (const char *w : {"compress", "tomcatv"})
        for (auto s : {tasksel::Strategy::BasicBlock,
                       tasksel::Strategy::DataDependence})
            specs.push_back(report::makeSpec(w, s, 2, true,
                                             workloads::Scale::Small,
                                             20'000));
    return specs;
}

int
failed(const char *what)
{
    std::fprintf(stderr, "bench_smoke: FAIL: %s\n", what);
    return 1;
}

/**
 * The ISSUE acceptance grid: 2 strategies × 4 hardware configs on one
 * workload. The strategies differ in the transform stage too (the
 * task-size heuristic unrolls loops), so every frontend stage must
 * compute exactly twice; the 4 SimConfigs per strategy reuse it.
 */
int
checkSharedFrontend(unsigned jobs, arch::CoreMode core)
{
    std::vector<report::RunSpec> specs;
    struct Strat
    {
        tasksel::Strategy s;
        bool size;
    };
    for (Strat st : {Strat{tasksel::Strategy::BasicBlock, false},
                     Strat{tasksel::Strategy::DataDependence, true}})
        for (unsigned pus : {2u, 4u})
            for (bool ooo : {false, true})
                specs.push_back(report::makeSpec(
                    "compress", st.s, pus, ooo,
                    workloads::Scale::Small, 20'000, st.size));
    for (auto &s : specs)
        s.opts.config.coreMode = core;

    pipeline::SessionPool pool;
    report::SweepRunner runner(jobs);
    auto cold = runner.run(specs, pool);
    std::string cold_json = report::sweepToJson(cold).dump(2);

    const pipeline::CacheStats stats = pool.stats();
    using SK = pipeline::StageKind;
    struct Want
    {
        SK stage;
        uint64_t computed;
    };
    for (Want w : {Want{SK::Transform, 2}, Want{SK::Profile, 2},
                   Want{SK::Select, 2}, Want{SK::Trace, 2},
                   Want{SK::Simulate, 8}}) {
        if (stats[w.stage].computed != w.computed) {
            std::fprintf(stderr,
                         "bench_smoke: FAIL: stage %s computed %llu "
                         "times, want %llu\n",
                         pipeline::stageName(w.stage),
                         (unsigned long long)stats[w.stage].computed,
                         (unsigned long long)w.computed);
            return 1;
        }
    }

    // Warm re-run through the same pool: zero new computes, and the
    // document must stay byte-identical (the determinism contract).
    auto warm = runner.run(specs, pool);
    if (report::sweepToJson(warm).dump(2) != cold_json)
        return failed("warm sweep output differs from cold output");
    const pipeline::CacheStats warm_stats = pool.stats();
    if (warm_stats.computed() != stats.computed())
        return failed("warm sweep recomputed an artifact");
    if (warm_stats.hits() <= stats.hits())
        return failed("warm sweep did not hit the cache");

    std::printf("bench_smoke: shared-frontend OK (%zu sweep points, "
                "%s)\n",
                specs.size(), stats.summary().c_str());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchArgs(argc, argv);
    if (opts.jobs <= 1)
        opts.jobs = 2;
    if (opts.jsonPath.empty())
        opts.jsonPath = "bench_smoke.json";

    std::vector<report::RunSpec> specs = tinyGrid();
    // Like Sweep::run: --core selects the simulator core everywhere
    // (outputs are byte-identical either way, so every check below is
    // also a core-equivalence check when run once per mode).
    for (auto &s : specs)
        s.opts.config.coreMode = opts.core;

    std::string serial =
        report::sweepToJson(report::SweepRunner(1).run(specs)).dump(2);
    auto records = report::SweepRunner(opts.jobs).run(specs);
    std::string parallel = report::sweepToJson(records).dump(2);

    if (serial != parallel)
        return failed("--jobs output differs from serial output");

    try {
        report::writeFile(opts.jsonPath, parallel);
        if (!opts.csvPath.empty())
            report::writeFile(opts.csvPath, report::sweepToCsv(records));
    } catch (const std::exception &e) {
        return failed(e.what());
    }

    // Read the file back through the parser, as a consumer would.
    std::string text;
    {
        std::FILE *f = std::fopen(opts.jsonPath.c_str(), "rb");
        if (!f)
            return failed("cannot reopen emitted json");
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    }

    Json doc;
    try {
        doc = Json::parse(text);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench_smoke: FAIL: emitted json does not "
                             "parse: %s\n",
                     e.what());
        return 1;
    }

    try {
        if (doc.get("schema").asString() != report::SCHEMA_NAME)
            return failed("wrong schema name");
        if (doc.get("schema_version").asInt() != report::SCHEMA_VERSION)
            return failed("wrong schema_version");
        const Json &runs = doc.get("runs");
        if (runs.size() != specs.size())
            return failed("wrong run count");
        for (size_t i = 0; i < runs.size(); ++i) {
            const Json &run = runs.at(i);
            if (run.get("id").asString() != specs[i].id)
                return failed("runs out of input order");
            const Json &m = run.get("metrics");
            for (const char *group :
                 {"cycle_breakdown", "prediction", "memory", "tasks",
                  "window_span", "partition"})
                (void)m.get(group);
            if (m.get("retired_insts").asUInt() == 0)
                return failed("run retired no instructions");
            uint64_t sum = 0;
            for (const auto &kv : m.get("cycle_breakdown").members())
                sum += kv.second.asUInt();
            if (sum != m.get("occupied_pu_cycles").asUInt())
                return failed("cycle breakdown does not sum to "
                              "occupied_pu_cycles");
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr,
                     "bench_smoke: FAIL: schema violation: %s\n",
                     e.what());
        return 1;
    }

    if (int rc = checkSharedFrontend(opts.jobs, opts.core))
        return rc;

    std::printf("bench_smoke: OK (%zu runs, %u jobs, %s validated)\n",
                specs.size(), opts.jobs, opts.jsonPath.c_str());
    return 0;
}
