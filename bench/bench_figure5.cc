/**
 * @file
 * Reproduces Figure 5: "Impact of the compiler heuristics on SPEC95
 * benchmarks" — IPC of basic-block, control-flow and data-dependence
 * tasks (plus the task-size heuristic for compress and fpppp, the two
 * benchmarks the paper says respond to it), on 4 and 8 PUs, for
 * out-of-order and in-order processing units.
 *
 * Paper shapes to look for:
 *  - control-flow and data-dependence tasks beat basic-block tasks on
 *    every benchmark (paper: +19-38% int / +21-52% fp at 4 PUs);
 *  - floating-point benchmarks gain more than integer benchmarks;
 *  - 8 PUs gain at least as much as 4 PUs;
 *  - the data-dependence delta over control-flow is modest.
 */

#include "bench_common.h"

using namespace msc;
using namespace msc::bench;
using tasksel::Strategy;

namespace {

bool
respondsToSize(const std::string &n)
{
    return n == "compress" || n == "fpppp";
}

void
enqueueSuite(Sweep &sweep, const std::vector<std::string> &names,
             unsigned pus, bool ooo)
{
    for (const auto &n : names) {
        sweep.add(n, Strategy::BasicBlock, pus, ooo);
        sweep.add(n, Strategy::ControlFlow, pus, ooo);
        sweep.add(n, Strategy::DataDependence, pus, ooo);
        if (respondsToSize(n))
            sweep.add(n, Strategy::DataDependence, pus, ooo,
                      /*size=*/true);
    }
}

void
printSuite(const Sweep &sweep, const std::vector<std::string> &names,
           const char *suite, unsigned pus, bool ooo)
{
    std::printf("\n%s benchmarks, %u PUs, %s PUs "
                "(IPC; improvement over basic-block)\n",
                suite, pus, ooo ? "out-of-order" : "in-order");
    std::printf("%-10s %8s %15s %15s %15s\n", "bench", "bb", "cf", "dd",
                "dd+size");
    double gm_bb = 1, gm_cf = 1, gm_dd = 1;
    auto ipc = [&](const std::string &n, Strategy s,
                   bool size = false) {
        return sweep[runKey(n, s, pus, ooo, size)].stats.ipc();
    };
    for (const auto &n : names) {
        double bb = ipc(n, Strategy::BasicBlock);
        double cf = ipc(n, Strategy::ControlFlow);
        double dd = ipc(n, Strategy::DataDependence);
        std::printf("%-10s %8.3f %8.3f (%+4.0f%%) %8.3f (%+4.0f%%)",
                    n.c_str(), bb, cf, 100 * (cf / bb - 1), dd,
                    100 * (dd / bb - 1));
        if (respondsToSize(n)) {
            double sz = ipc(n, Strategy::DataDependence, true);
            std::printf(" %8.3f (%+4.0f%%)", sz, 100 * (sz / bb - 1));
        }
        std::printf("\n");
        gm_bb *= bb;
        gm_cf *= cf;
        gm_dd *= dd;
    }
    double k = 1.0 / double(names.size());
    gm_bb = std::pow(gm_bb, k);
    gm_cf = std::pow(gm_cf, k);
    gm_dd = std::pow(gm_dd, k);
    std::printf("%-10s %8.3f %8.3f (%+4.0f%%) %8.3f (%+4.0f%%)\n",
                "geomean", gm_bb, gm_cf, 100 * (gm_cf / gm_bb - 1),
                gm_dd, 100 * (gm_dd / gm_bb - 1));
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchArgs(argc, argv);
    printHeader("Figure 5: IPC under the task-selection heuristics");

    Sweep sweep;
    for (bool ooo : {true, false}) {
        for (unsigned pus : {4u, 8u}) {
            enqueueSuite(sweep, intBenchmarks(), pus, ooo);
            enqueueSuite(sweep, fpBenchmarks(), pus, ooo);
        }
    }
    sweep.run(opts);

    for (bool ooo : {true, false}) {
        for (unsigned pus : {4u, 8u}) {
            printSuite(sweep, intBenchmarks(), "Integer", pus, ooo);
            printSuite(sweep, fpBenchmarks(), "Floating-point", pus,
                       ooo);
        }
    }
    return 0;
}
