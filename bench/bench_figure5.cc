/**
 * @file
 * Reproduces Figure 5: "Impact of the compiler heuristics on SPEC95
 * benchmarks" — IPC of basic-block, control-flow and data-dependence
 * tasks (plus the task-size heuristic for compress and fpppp, the two
 * benchmarks the paper says respond to it), on 4 and 8 PUs, for
 * out-of-order and in-order processing units.
 *
 * Paper shapes to look for:
 *  - control-flow and data-dependence tasks beat basic-block tasks on
 *    every benchmark (paper: +19-38% int / +21-52% fp at 4 PUs);
 *  - floating-point benchmarks gain more than integer benchmarks;
 *  - 8 PUs gain at least as much as 4 PUs;
 *  - the data-dependence delta over control-flow is modest.
 */

#include "bench_common.h"

using namespace msc;
using namespace msc::bench;
using tasksel::Strategy;

namespace {

void
runSuite(const std::vector<std::string> &names, const char *suite,
         unsigned pus, bool ooo)
{
    std::printf("\n%s benchmarks, %u PUs, %s PUs "
                "(IPC; improvement over basic-block)\n",
                suite, pus, ooo ? "out-of-order" : "in-order");
    std::printf("%-10s %8s %15s %15s %15s\n", "bench", "bb", "cf", "dd",
                "dd+size");
    double gm_bb = 1, gm_cf = 1, gm_dd = 1;
    for (const auto &n : names) {
        double bb = runOne(n, Strategy::BasicBlock, pus, ooo).stats.ipc();
        double cf = runOne(n, Strategy::ControlFlow, pus, ooo).stats.ipc();
        double dd = runOne(n, Strategy::DataDependence, pus, ooo)
                        .stats.ipc();
        bool responds = (n == "compress" || n == "fpppp");
        std::printf("%-10s %8.3f %8.3f (%+4.0f%%) %8.3f (%+4.0f%%)",
                    n.c_str(), bb, cf, 100 * (cf / bb - 1), dd,
                    100 * (dd / bb - 1));
        if (responds) {
            double sz = runOne(n, Strategy::DataDependence, pus, ooo,
                               /*size=*/true).stats.ipc();
            std::printf(" %8.3f (%+4.0f%%)", sz, 100 * (sz / bb - 1));
        }
        std::printf("\n");
        gm_bb *= bb;
        gm_cf *= cf;
        gm_dd *= dd;
    }
    double k = 1.0 / double(names.size());
    gm_bb = std::pow(gm_bb, k);
    gm_cf = std::pow(gm_cf, k);
    gm_dd = std::pow(gm_dd, k);
    std::printf("%-10s %8.3f %8.3f (%+4.0f%%) %8.3f (%+4.0f%%)\n",
                "geomean", gm_bb, gm_cf, 100 * (gm_cf / gm_bb - 1),
                gm_dd, 100 * (gm_dd / gm_bb - 1));
}

} // anonymous namespace

int
main()
{
    printHeader("Figure 5: IPC under the task-selection heuristics");
    for (bool ooo : {true, false}) {
        for (unsigned pus : {4u, 8u}) {
            runSuite(intBenchmarks(), "Integer", pus, ooo);
            runSuite(fpBenchmarks(), "Floating-point", pus, ooo);
        }
    }
    return 0;
}
