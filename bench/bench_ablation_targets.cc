/**
 * @file
 * Ablation for §2.4.2 / §3.3: sensitivity to the successor-tracking
 * arity N. "Tasks should have at most as many successors as can be
 * tracked by the hardware prediction tables"; tighter N forces smaller
 * tasks, larger N lets reconverging control flow grow them. Sweeps
 * N in {1, 2, 4, 8} with control-flow tasks at 4 PUs.
 */

#include "bench_common.h"

using namespace msc;
using namespace msc::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchArgs(argc, argv);
    printHeader("Ablation: successor-tracking arity N "
                "(control-flow tasks, 4 PUs)");

    std::vector<std::string> picks = {"go", "m88ksim", "compress",
                                      "ijpeg", "perl", "tomcatv",
                                      "hydro2d", "wave5"};
    Sweep sweep;
    for (const auto &name : picks)
        for (unsigned n : {1u, 2u, 4u, 8u})
            sweep.add(name, tasksel::Strategy::ControlFlow, 4, true,
                      false, n);
    sweep.run(opts);

    std::printf("%-10s", "bench");
    for (unsigned n : {1u, 2u, 4u, 8u})
        std::printf("  N=%u: IPC  size tpr%%", n);
    std::printf("\n");

    for (const auto &name : picks) {
        std::printf("%-10s", name.c_str());
        for (unsigned n : {1u, 2u, 4u, 8u}) {
            const auto &r =
                sweep[runKey(name, tasksel::Strategy::ControlFlow, 4,
                             true, false, n)];
            std::printf("  %6.3f %5.1f %4.1f", r.stats.ipc(),
                        r.stats.avgTaskSize(),
                        r.stats.taskMispredictPct());
        }
        std::printf("\n");
    }
    std::printf("\nExpected shape: task size grows with N; IPC "
                "improves up to the paper's N=4 and flattens.\n");
    return 0;
}
