/**
 * @file
 * Component micro-benchmarks (google-benchmark): interpreter
 * throughput, profiling, task selection, dynamic task cutting, the
 * timing model, and the predictor/ARB primitives.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "arch/arb.h"
#include "arch/predictors.h"
#include "arch/processor.h"
#include "arch/taskstream.h"
#include "pipeline/session.h"
#include "profile/interpreter.h"
#include "profile/profiler.h"
#include "tasksel/selector.h"
#include "workloads/workload.h"

using namespace msc;

static void
BM_Interpreter(benchmark::State &state)
{
    ir::Program p = workloads::buildWorkload("m88ksim",
                                             workloads::Scale::Small);
    uint64_t insts = 0;
    for (auto _ : state) {
        profile::Interpreter in(p);
        insts += in.runQuiet(50'000);
    }
    state.SetItemsProcessed(int64_t(insts));
}
BENCHMARK(BM_Interpreter);

static void
BM_Profiler(benchmark::State &state)
{
    ir::Program p = workloads::buildWorkload("compress",
                                             workloads::Scale::Small);
    for (auto _ : state)
        benchmark::DoNotOptimize(profile::profileProgram(p, 50'000));
}
BENCHMARK(BM_Profiler);

static void
BM_TaskSelection(benchmark::State &state)
{
    ir::Program p = workloads::buildWorkload("go",
                                             workloads::Scale::Small);
    profile::Profile prof = profile::profileProgram(p, 50'000);
    tasksel::SelectionOptions opts;
    opts.strategy = tasksel::Strategy(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(tasksel::selectTasks(p, prof, opts));
}
BENCHMARK(BM_TaskSelection)->Arg(0)->Arg(1)->Arg(2);

static void
BM_TaskCutting(benchmark::State &state)
{
    ir::Program p = workloads::buildWorkload("perl",
                                             workloads::Scale::Small);
    profile::Profile prof = profile::profileProgram(p, 50'000);
    tasksel::SelectionOptions opts;
    tasksel::TaskPartition part = tasksel::selectTasks(p, prof, opts);
    profile::Interpreter in(p);
    profile::Trace t = in.trace(50'000);
    for (auto _ : state)
        benchmark::DoNotOptimize(arch::cutTasks(t, part));
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(t.size()));
}
BENCHMARK(BM_TaskCutting);

static void
BM_TimingSimulation(benchmark::State &state)
{
    ir::Program p = workloads::buildWorkload("ijpeg",
                                             workloads::Scale::Small);
    pipeline::StageOptions o;
    o.trace.traceInsts = 50'000;
    o.config = arch::SimConfig::paperConfig(unsigned(state.range(0)));
    uint64_t insts = 0;
    for (auto _ : state) {
        // Fresh Session per iteration: the cold full-pipeline cost.
        pipeline::Session session(p);
        insts += session.runAll(o).sim->stats.retiredInsts;
    }
    state.SetItemsProcessed(int64_t(insts));
}
BENCHMARK(BM_TimingSimulation)->Arg(4)->Arg(8);

static void
BM_WarmSessionSimulation(benchmark::State &state)
{
    ir::Program p = workloads::buildWorkload("ijpeg",
                                             workloads::Scale::Small);
    pipeline::StageOptions o;
    o.trace.traceInsts = 50'000;
    o.config = arch::SimConfig::paperConfig(unsigned(state.range(0)));
    pipeline::Session session(p);
    session.trace(o);  // warm the frontend artifacts once
    uint64_t insts = 0, n = 0;
    for (auto _ : state) {
        // Bump the runaway cap (never reached) so every iteration has
        // a distinct sim key: measures a timing-sim compute against a
        // warm frontend — the marginal cost of one extra sweep point.
        o.config.maxCycles = 2'000'000'000ull + (++n);
        insts += session.simulate(o)->stats.retiredInsts;
    }
    state.SetItemsProcessed(int64_t(insts));
}
BENCHMARK(BM_WarmSessionSimulation)->Arg(4)->Arg(8);

/**
 * Quiescent-heavy timing model: tiny caches and a DRAM-class memory
 * latency make the machine spend most cycles with every PU stalled on
 * the same misses, which is exactly the stretch the event core skips.
 * Arg 0 runs the cycle (reference) core, Arg 1 the event core;
 * items/s is simulated cycles per second, the figure bench_snapshot.sh
 * records in BENCH_pr7.json. The frontend (profile / select / trace /
 * cut) runs once outside the timed loop so the counter isolates
 * arch::simulate.
 */
static void
BM_QuiescentSimulation(benchmark::State &state)
{
    ir::Program p = workloads::buildWorkload("swim",
                                             workloads::Scale::Small);
    profile::Profile prof = profile::profileProgram(p, 50'000);
    tasksel::SelectionOptions opts;
    opts.strategy = tasksel::Strategy::ControlFlow;
    tasksel::TaskPartition part = tasksel::selectTasks(p, prof, opts);
    profile::Interpreter in(p);
    profile::Trace t = in.trace(60'000);
    std::vector<arch::DynTask> tasks = arch::cutTasks(t, part);

    arch::SimConfig cfg = arch::SimConfig::paperConfig(4);
    cfg.coreMode = state.range(0) ? arch::CoreMode::Event
                                  : arch::CoreMode::Cycle;
    cfg.l1i = {4 * 1024, 1, 32, 1, 4};
    cfg.l1d = {4 * 1024, 1, 32, 1, 4};
    cfg.l2 = {16 * 1024, 1, 32, 24, 1};
    cfg.memLatency = 300;

    uint64_t cycles = 0, skipped = 0;
    for (auto _ : state) {
        arch::SimStats s = arch::simulate(part, tasks, cfg);
        cycles += s.cycles;
        skipped += s.eventSkippedCycles;
    }
    state.SetItemsProcessed(int64_t(cycles));
    state.counters["skip_frac"] =
        cycles ? double(skipped) / double(cycles) : 0.0;
}
BENCHMARK(BM_QuiescentSimulation)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("event")
    ->Unit(benchmark::kMillisecond);

static void
BM_TaskPredictor(benchmark::State &state)
{
    arch::TaskPredictor tp(16, 64 * 1024, 4);
    uint64_t addr = 0x1000;
    unsigned i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tp.predict(addr));
        tp.update(addr, i & 3);
        addr = addr * 1664525 + 1013904223;
        ++i;
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_TaskPredictor);

static void
BM_Gshare(benchmark::State &state)
{
    arch::Gshare g(16, 64 * 1024);
    uint64_t pc = 0x4000;
    unsigned i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(g.predict(pc));
        g.update(pc, (i & 3) != 0);
        pc += 4;
        ++i;
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_Gshare);

static void
BM_ArbTraffic(benchmark::State &state)
{
    arch::Arb arb(256);
    uint64_t a = 0;
    arch::TaskSeq t = 0;
    for (auto _ : state) {
        arb.recordLoad(t + 1, a & 1023, a);
        benchmark::DoNotOptimize(arb.recordStore(t, (a + 7) & 1023));
        if ((++a & 63) == 0)
            arb.retireUpTo(t++);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 2);
}
BENCHMARK(BM_ArbTraffic);

/**
 * Accepts the harness-wide --json/--csv/--jobs flags (see
 * bench_common.h) by translating them to google-benchmark's
 * reporters: --json F → --benchmark_out=F in JSON format (gbench's
 * own schema, not docs/METRICS.md — these are component timings, not
 * simulation metrics), --csv F likewise in CSV format. --jobs is
 * accepted and ignored: micro-benchmarks time single-threaded
 * primitives, so parallel dispatch would perturb them.
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    args.emplace_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--json") {
            args.push_back("--benchmark_out=" + val());
            args.push_back("--benchmark_out_format=json");
        } else if (a == "--csv") {
            args.push_back("--benchmark_out=" + val());
            args.push_back("--benchmark_out_format=csv");
        } else if (a == "--jobs") {
            (void)val();
            std::fprintf(stderr,
                         "bench_micro: --jobs ignored (timing "
                         "micro-benchmarks run serially)\n");
        } else {
            args.push_back(a);
        }
    }
    std::vector<char *> cargs;
    for (auto &s : args)
        cargs.push_back(s.data());
    int cargc = int(cargs.size());
    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
