/**
 * @file
 * Shared driver code for the paper-reproduction benchmark binaries.
 *
 * Every binary honours the MSC_SMALL environment variable: when set,
 * workloads run at test scale (seconds instead of minutes) — the
 * shapes survive, absolute numbers shift slightly.
 */

#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "tasksel/options.h"
#include "workloads/workload.h"

namespace msc {
namespace bench {

inline bool
smallMode()
{
    const char *e = std::getenv("MSC_SMALL");
    return e && *e && *e != '0';
}

inline workloads::Scale
benchScale()
{
    return smallMode() ? workloads::Scale::Small : workloads::Scale::Full;
}

inline uint64_t
benchTraceInsts()
{
    return smallMode() ? 60'000 : 250'000;
}

/** Runs one benchmark under one configuration. */
inline sim::RunResult
runOne(const std::string &workload, tasksel::Strategy strategy,
       unsigned pus, bool out_of_order, bool size_heur = false,
       unsigned max_targets = 4)
{
    ir::Program p = workloads::buildWorkload(workload, benchScale());
    sim::RunOptions o;
    o.sel.strategy = strategy;
    o.sel.taskSizeHeuristic = size_heur;
    o.sel.maxTargets = max_targets;
    o.config = arch::SimConfig::paperConfig(pus, out_of_order);
    o.config.maxTargets = max_targets;
    o.traceInsts = benchTraceInsts();
    return sim::runPipeline(p, o);
}

inline void
printHeader(const char *title)
{
    std::printf("\n=== %s%s ===\n", title,
                smallMode() ? " (MSC_SMALL scale)" : "");
}

/** Integer benchmarks in paper order, then floating point. */
inline std::vector<std::string>
intBenchmarks()
{
    return {"go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl",
            "vortex"};
}

inline std::vector<std::string>
fpBenchmarks()
{
    return {"tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu",
            "turb3d", "apsi", "fpppp", "wave5"};
}

} // namespace bench
} // namespace msc
