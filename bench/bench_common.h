/**
 * @file
 * Shared driver code for the paper-reproduction benchmark binaries,
 * built on the src/report sweep subsystem.
 *
 * Every binary follows the same three-phase shape:
 *
 *   1. enqueue its whole workload × strategy × PU grid into a Sweep
 *      under string keys;
 *   2. sweep.run(opts) executes the grid — in parallel when --jobs N
 *      is given — and optionally emits the structured results
 *      (--json / --csv, schema in docs/METRICS.md);
 *   3. print the paper-shaped text tables by key lookup.
 *
 * Results are deterministic and independent of --jobs (see
 * report/sweep.h). Every binary honours the MSC_SMALL environment
 * variable: when set, workloads run at test scale (seconds instead of
 * minutes) — the shapes survive, absolute numbers shift slightly.
 */

#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/config.h"
#include "report/record.h"
#include "report/sweep.h"
#include "tasksel/options.h"
#include "workloads/workload.h"

namespace msc {
namespace bench {

inline bool
smallMode()
{
    const char *e = std::getenv("MSC_SMALL");
    return e && *e && *e != '0';
}

inline workloads::Scale
benchScale()
{
    return smallMode() ? workloads::Scale::Small : workloads::Scale::Full;
}

inline uint64_t
benchTraceInsts()
{
    return smallMode() ? 60'000 : 250'000;
}

/** Command-line options common to every bench binary. */
struct BenchOptions
{
    unsigned jobs = 1;          ///< Sweep worker threads (--jobs N).
    std::string jsonPath;       ///< --json <file>: structured results.
    std::string csvPath;        ///< --csv <file>: flat results.
    std::string cacheDir;       ///< --cache-dir <dir>: artifact cache.
    /// --core cycle|event: simulator core. Outputs are byte-identical
    /// either way (docs/PERFORMANCE.md); cycle is the slow reference.
    arch::CoreMode core = arch::CoreMode::Event;
};

/**
 * Parses --jobs/--json/--csv (and --help) from argv. Exits with a
 * usage message on unknown flags so a typo can't silently run a
 * multi-minute sweep with default settings.
 */
inline BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions o;
    auto usage = [&](int code) {
        std::fprintf(stderr,
                     "usage: %s [--jobs N] [--json file] [--csv file]"
                     " [--cache-dir dir] [--core cycle|event]\n"
                     "  --jobs N        run the sweep on N threads "
                     "(default 1; 0 = all cores)\n"
                     "  --json file     write structured results "
                     "(schema: docs/METRICS.md)\n"
                     "  --csv file      write flat results\n"
                     "  --cache-dir d   persist frontend artifacts "
                     "across runs (docs/API.md)\n"
                     "  --core m        simulator core: event (default)"
                     " or the cycle-stepping reference; results are "
                     "byte-identical (docs/PERFORMANCE.md)\n"
                     "  MSC_SMALL=1     reduced workload scale\n",
                     argv[0]);
        std::exit(code);
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                usage(2);
            }
            return argv[++i];
        };
        if (a == "--jobs")
            o.jobs = unsigned(atoi(val()));
        else if (a == "--json")
            o.jsonPath = val();
        else if (a == "--csv")
            o.csvPath = val();
        else if (a == "--cache-dir")
            o.cacheDir = val();
        else if (a == "--core") {
            const char *v = val();
            if (!arch::parseCoreMode(v, o.core)) {
                std::fprintf(stderr, "bad --core value %s\n", v);
                usage(2);
            }
        } else if (a == "--help" || a == "-h")
            usage(0);
        else {
            std::fprintf(stderr, "unknown flag %s\n", a.c_str());
            usage(2);
        }
    }
    return o;
}

/**
 * A keyed sweep: enqueue the grid, run it once, read results back by
 * key while printing tables. Keys are arbitrary but must be unique.
 */
class Sweep
{
  public:
    /** Enqueues a standard paper-config run (the classic `runOne`
     *  shape). Returns the key (= the spec id). */
    std::string
    add(const std::string &workload, tasksel::Strategy strategy,
        unsigned pus, bool out_of_order, bool size_heur = false,
        unsigned max_targets = 4)
    {
        report::RunSpec s = report::makeSpec(
            workload, strategy, pus, out_of_order, benchScale(),
            benchTraceInsts(), size_heur, max_targets);
        addSpec(s);
        return s.id;
    }

    /** Enqueues a fully custom spec (ablation / centralized configs).
     *  @p spec.id must be set and unique. */
    void
    addSpec(const report::RunSpec &spec)
    {
        if (spec.id.empty())
            throw std::runtime_error("sweep: spec without id");
        if (!_index.emplace(spec.id, _specs.size()).second)
            throw std::runtime_error("sweep: duplicate key " + spec.id);
        _specs.push_back(spec);
    }

    /** Executes the grid and emits --json/--csv files if requested.
     *  Run/write failures exit(1) with a message rather than
     *  escaping main as an uncaught exception. */
    void
    run(const BenchOptions &opts)
    {
        try {
            // One knob for the whole grid: --core selects the
            // simulator core on every spec (it does not change
            // results or spec ids, only how fast they compute).
            for (auto &s : _specs)
                s.opts.config.coreMode = opts.core;
            report::SweepRunner runner(opts.jobs);
            if (runner.jobs() > 1)
                std::fprintf(stderr, "[sweep] %zu runs on %u threads\n",
                             _specs.size(), runner.jobs());
            pipeline::SessionPool pool(
                pipeline::SessionConfig{opts.cacheDir});
            _records = runner.run(_specs, pool);
            _cacheStats = pool.stats();
            std::fprintf(stderr, "[sweep] artifact cache: %s\n",
                         _cacheStats.summary().c_str());
            // Benches print paper tables straight from the records,
            // so any error cell means the tables would be garbage:
            // report it and bail rather than print partial data
            // (msctool sweep is the partial-tolerant driver).
            size_t failed = 0;
            for (const auto &r : _records) {
                if (!r.ok()) {
                    ++failed;
                    std::fprintf(stderr, "[sweep] ERROR %s: %s\n",
                                 r.spec.id.c_str(),
                                 r.error.render().c_str());
                }
            }
            if (failed) {
                std::fprintf(stderr,
                             "[sweep] %zu of %zu runs failed\n",
                             failed, _records.size());
                std::exit(1);
            }
            if (!opts.jsonPath.empty()) {
                report::writeFile(opts.jsonPath,
                                  report::sweepToJson(_records).dump(2));
                std::fprintf(stderr, "[sweep] wrote %zu runs to %s\n",
                             _records.size(), opts.jsonPath.c_str());
            }
            if (!opts.csvPath.empty()) {
                report::writeFile(opts.csvPath,
                                  report::sweepToCsv(_records));
                std::fprintf(stderr, "[sweep] wrote %zu runs to %s\n",
                             _records.size(), opts.csvPath.c_str());
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "[sweep] error: %s\n", e.what());
            std::exit(1);
        }
    }

    /** Result lookup; throws if the key was never enqueued or the
     *  sweep has not run. */
    const report::RunRecord &
    operator[](const std::string &key) const
    {
        auto it = _index.find(key);
        if (it == _index.end())
            throw std::runtime_error("sweep: unknown key " + key);
        if (it->second >= _records.size())
            throw std::runtime_error("sweep: not run yet");
        return _records[it->second];
    }

    const std::vector<report::RunRecord> &records() const
    {
        return _records;
    }

    /** Pooled cache counters from the last run() (bench_smoke asserts
     *  the shared-frontend contract on these). */
    const pipeline::CacheStats &cacheStats() const
    {
        return _cacheStats;
    }

  private:
    std::vector<report::RunSpec> _specs;
    std::vector<report::RunRecord> _records;
    std::unordered_map<std::string, size_t> _index;
    pipeline::CacheStats _cacheStats;
};

/** The key Sweep::add assigned to a standard paper-config run — use
 *  it to look results back up in the printing phase. */
inline std::string
runKey(const std::string &workload, tasksel::Strategy strategy,
       unsigned pus, bool out_of_order, bool size_heur = false,
       unsigned max_targets = 4)
{
    return report::makeSpec(workload, strategy, pus, out_of_order,
                            benchScale(), benchTraceInsts(), size_heur,
                            max_targets)
        .id;
}

inline void
printHeader(const char *title)
{
    std::printf("\n=== %s%s ===\n", title,
                smallMode() ? " (MSC_SMALL scale)" : "");
}

/** Integer benchmarks in paper order, then floating point. */
inline std::vector<std::string>
intBenchmarks()
{
    return {"go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl",
            "vortex"};
}

inline std::vector<std::string>
fpBenchmarks()
{
    return {"tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu",
            "turb3d", "apsi", "fpppp", "wave5"};
}

} // namespace bench
} // namespace msc
