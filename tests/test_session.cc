/**
 * @file
 * Tests for the pipeline::Session staged API and its content-addressed
 * artifact caches (docs/API.md):
 *
 *  - invalidation exactness: each option field re-runs exactly the
 *    stages that read it (SimConfig reuses the trace; strategy reuses
 *    transform + profile; loopThresh with the size heuristic off is
 *    inert);
 *  - compute-once semantics under concurrent stage calls;
 *  - on-disk cache: Profile and Partition artifacts round-trip
 *    losslessly and a fresh process-equivalent Session loads instead
 *    of recomputing;
 *  - sweep byte-determinism: cold vs warm SessionPool runs emit
 *    byte-identical msc.sweep documents, and the ISSUE acceptance
 *    grid (2 strategies x 4 SimConfigs) computes exactly 2 frontends;
 *  - the legacy sim::RunResult is safely copyable/movable now that it
 *    shares ownership of the transformed program.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "helpers.h"
#include "pipeline/pool.h"
#include "pipeline/session.h"
#include "report/record.h"
#include "report/sweep.h"
#include "sim/runner.h"
#include "workloads/workload.h"

using namespace msc;
using pipeline::CacheStats;
using pipeline::Session;
using pipeline::SessionConfig;
using pipeline::StageKind;
using pipeline::StageOptions;

namespace {

StageOptions
ddOptions()
{
    tasksel::SelectionOptions sel;
    sel.strategy = tasksel::Strategy::DataDependence;
    StageOptions o = StageOptions::fromSelection(sel);
    o.profile.profileInsts = 20'000;
    o.trace.traceInsts = 10'000;
    o.config = arch::SimConfig::paperConfig(2);
    return o;
}

uint64_t
computedAt(const Session &s, StageKind k)
{
    return s.cacheStats()[k].computed;
}

/** A unique fresh directory under the test binary's scratch space. */
std::string
freshCacheDir(const char *name)
{
    std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) /
        (std::string("msc-session-") + name);
    std::filesystem::remove_all(dir);
    return dir.string();
}

} // anonymous namespace

// ----------------------------------------------------- invalidation

TEST(SessionCache, SimConfigSweepReusesTrace)
{
    Session s(test::makeLoopProgram(200));
    StageOptions o = ddOptions();

    for (unsigned pus : {1u, 2u, 4u, 8u}) {
        o.config = arch::SimConfig::paperConfig(pus);
        s.simulate(o);
    }

    EXPECT_EQ(computedAt(s, StageKind::Transform), 1u);
    EXPECT_EQ(computedAt(s, StageKind::Profile), 1u);
    EXPECT_EQ(computedAt(s, StageKind::Select), 1u);
    EXPECT_EQ(computedAt(s, StageKind::Trace), 1u);
    EXPECT_EQ(computedAt(s, StageKind::Simulate), 4u);
    // The three warm sweeps hit the cached trace artifact.
    EXPECT_GE(s.cacheStats()[StageKind::Trace].hits, 3u);
}

TEST(SessionCache, RepeatedCallReturnsSameArtifact)
{
    Session s(test::makeLoopProgram(100));
    StageOptions o = ddOptions();
    auto a = s.simulate(o);
    auto b = s.simulate(o);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(computedAt(s, StageKind::Simulate), 1u);
}

TEST(SessionCache, StrategyInvalidatesExactlySelectionAndBelow)
{
    Session s(test::makeCallProgram(60));
    StageOptions o = ddOptions();
    auto dd = s.trace(o);

    o.sel.strategy = tasksel::Strategy::BasicBlock;
    auto bb = s.trace(o);

    EXPECT_NE(dd->key, bb->key);
    EXPECT_EQ(computedAt(s, StageKind::Transform), 1u);
    EXPECT_EQ(computedAt(s, StageKind::Profile), 1u);
    EXPECT_EQ(computedAt(s, StageKind::Select), 2u);
    EXPECT_EQ(computedAt(s, StageKind::Trace), 2u);
    // Both partitions alias the one shared transformed program.
    EXPECT_EQ(dd->partition->transformed.get(),
              bb->partition->transformed.get());
}

TEST(SessionCache, LoopThreshInvalidatesTransformWhenHeuristicOn)
{
    Session s(test::makeLoopProgram(100));
    tasksel::SelectionOptions sel;
    sel.taskSizeHeuristic = true;
    sel.loopThresh = 30;
    StageOptions o = StageOptions::fromSelection(sel);
    o.profile.profileInsts = 20'000;
    s.profile(o);

    sel.loopThresh = 60;
    StageOptions o2 = StageOptions::fromSelection(sel);
    o2.profile.profileInsts = 20'000;
    s.profile(o2);

    EXPECT_EQ(computedAt(s, StageKind::Transform), 2u);
    EXPECT_EQ(computedAt(s, StageKind::Profile), 2u);
}

TEST(SessionCache, InertKnobsAreCanonicalizedOutOfTheKey)
{
    Session s(test::makeLoopProgram(100));
    StageOptions o = ddOptions();          // taskSizeHeuristic off
    s.trace(o);

    // With the size heuristic off, loopThresh and callThresh are
    // never read, so changing them must not miss any cache.
    o.sel.loopThresh = 99;
    o.transform.loopThresh = 99;
    o.sel.callThresh = 99;
    s.trace(o);
    // verifyPartition gates a check, not a result: also not hashed.
    o.verifyPartition = false;
    s.trace(o);

    EXPECT_EQ(computedAt(s, StageKind::Transform), 1u);
    EXPECT_EQ(computedAt(s, StageKind::Profile), 1u);
    EXPECT_EQ(computedAt(s, StageKind::Select), 1u);
    EXPECT_EQ(computedAt(s, StageKind::Trace), 1u);
}

TEST(SessionCache, TraceInstsInvalidatesOnlyTraceAndSim)
{
    Session s(test::makeLoopProgram(100));
    StageOptions o = ddOptions();
    s.simulate(o);
    o.trace.traceInsts = 5'000;
    s.simulate(o);

    EXPECT_EQ(computedAt(s, StageKind::Select), 1u);
    EXPECT_EQ(computedAt(s, StageKind::Trace), 2u);
    EXPECT_EQ(computedAt(s, StageKind::Simulate), 2u);
}

TEST(SessionCache, ComputeOnceUnderConcurrency)
{
    Session s(test::makeLoopProgram(500));
    StageOptions o = ddOptions();

    std::vector<std::thread> threads;
    for (int i = 0; i < 8; ++i)
        threads.emplace_back([&] { s.trace(o); });
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(computedAt(s, StageKind::Transform), 1u);
    EXPECT_EQ(computedAt(s, StageKind::Profile), 1u);
    EXPECT_EQ(computedAt(s, StageKind::Select), 1u);
    EXPECT_EQ(computedAt(s, StageKind::Trace), 1u);
}

// ------------------------------------------------------- disk cache

TEST(SessionDiskCache, RoundTripsProfileAndPartitionLosslessly)
{
    const std::string dir = freshCacheDir("roundtrip");
    ir::Program prog =
        workloads::buildWorkload("compress", workloads::Scale::Small);
    StageOptions o = ddOptions();
    o.sel.taskSizeHeuristic = true;    // exercise includedCalls
    o.transform.taskSizeHeuristic = true;

    Session cold(prog, SessionConfig{dir});
    auto part1 = cold.select(o);
    const profile::Profile &p1 = cold.profile(o)->profile;

    // A second Session over the same directory stands in for a fresh
    // process: everything must come from disk, nothing recomputed.
    Session warm(prog, SessionConfig{dir});
    auto part2 = warm.select(o);
    const profile::Profile &p2 = warm.profile(o)->profile;

    EXPECT_EQ(computedAt(warm, StageKind::Transform), 0u);
    EXPECT_EQ(computedAt(warm, StageKind::Profile), 0u);
    EXPECT_EQ(computedAt(warm, StageKind::Select), 0u);
    EXPECT_GE(warm.cacheStats().diskHits(), 3u);

    // Profile: every map and counter identical.
    EXPECT_EQ(p1.totalInsts, p2.totalInsts);
    EXPECT_EQ(p1.blockCount, p2.blockCount);
    EXPECT_EQ(p1.edgeCount, p2.edgeCount);
    EXPECT_EQ(p1.funcInvocations, p2.funcInvocations);
    EXPECT_EQ(p1.funcInclusiveInsts, p2.funcInclusiveInsts);
    EXPECT_EQ(p1.defUseCount, p2.defUseCount);

    // Partition: task-by-task structural equality.
    const tasksel::TaskPartition &a = part1->partition;
    const tasksel::TaskPartition &b = part2->partition;
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (size_t i = 0; i < a.tasks.size(); ++i) {
        const tasksel::Task &x = a.tasks[i], &y = b.tasks[i];
        EXPECT_EQ(x.id, y.id);
        EXPECT_EQ(x.func, y.func);
        EXPECT_EQ(x.entry, y.entry);
        EXPECT_EQ(x.blocks, y.blocks);
        EXPECT_EQ(x.createMask, y.createMask);
        EXPECT_EQ(x.staticInsts, y.staticInsts);
        ASSERT_EQ(x.targets.size(), y.targets.size());
        for (size_t t = 0; t < x.targets.size(); ++t)
            EXPECT_TRUE(x.targets[t] == y.targets[t]);
    }
    EXPECT_EQ(a.taskOf, b.taskOf);
    EXPECT_EQ(a.includedCalls, b.includedCalls);
    EXPECT_EQ(a.fwdSafe, b.fwdSafe);

    // And the loaded frontend drives the backend to the same result.
    EXPECT_EQ(cold.simulate(o)->stats.cycles,
              warm.simulate(o)->stats.cycles);

    std::filesystem::remove_all(dir);
}

TEST(SessionDiskCache, CorruptEntryFallsBackToRecompute)
{
    const std::string dir = freshCacheDir("corrupt");
    StageOptions o = ddOptions();
    ir::Program prog = test::makeLoopProgram(100);
    {
        Session cold(prog, SessionConfig{dir});
        cold.select(o);
    }
    // Truncate every cached artifact file.
    for (const auto &e : std::filesystem::directory_iterator(dir))
        std::ofstream(e.path(), std::ios::trunc).close();

    Session warm(prog, SessionConfig{dir});
    auto part = warm.select(o);
    EXPECT_GT(part->partition.size(), 0u);
    EXPECT_EQ(warm.cacheStats().diskHits(), 0u);
    EXPECT_EQ(computedAt(warm, StageKind::Select), 1u);

    std::filesystem::remove_all(dir);
}

// --------------------------------------------------- sweep contract

TEST(SessionSweep, ColdVsWarmByteIdentical)
{
    std::vector<report::RunSpec> specs;
    for (auto s : {tasksel::Strategy::BasicBlock,
                   tasksel::Strategy::DataDependence})
        for (unsigned pus : {2u, 4u})
            specs.push_back(report::makeSpec(
                "compress", s, pus, true, workloads::Scale::Small,
                10'000));

    pipeline::SessionPool pool;
    report::SweepRunner runner(2);
    std::string cold =
        report::sweepToJson(runner.run(specs, pool)).dump(2);
    uint64_t cold_computed = pool.stats().computed();

    std::string warm =
        report::sweepToJson(runner.run(specs, pool)).dump(2);
    EXPECT_EQ(cold, warm);
    EXPECT_EQ(pool.stats().computed(), cold_computed);

    // And a pool-less cold run (fresh sessions) says the same bytes.
    std::string fresh =
        report::sweepToJson(report::SweepRunner(1).run(specs)).dump(2);
    EXPECT_EQ(cold, fresh);
}

TEST(SessionSweep, AcceptanceGridComputesExactlyTwoFrontends)
{
    // 2 strategies x 4 SimConfigs; the strategies differ in the
    // transform stage too (task-size heuristic), so every frontend
    // stage computes exactly twice and the sims fan out to 8.
    std::vector<report::RunSpec> specs;
    struct Strat
    {
        tasksel::Strategy s;
        bool size;
    };
    for (Strat st : {Strat{tasksel::Strategy::BasicBlock, false},
                     Strat{tasksel::Strategy::DataDependence, true}})
        for (unsigned pus : {2u, 4u})
            for (bool ooo : {false, true})
                specs.push_back(report::makeSpec(
                    "compress", st.s, pus, ooo,
                    workloads::Scale::Small, 10'000, st.size));

    pipeline::SessionPool pool;
    report::SweepRunner(2).run(specs, pool);
    const CacheStats stats = pool.stats();
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(stats[StageKind::Transform].computed, 2u);
    EXPECT_EQ(stats[StageKind::Profile].computed, 2u);
    EXPECT_EQ(stats[StageKind::Select].computed, 2u);
    EXPECT_EQ(stats[StageKind::Trace].computed, 2u);
    EXPECT_EQ(stats[StageKind::Simulate].computed, 8u);
}

// ------------------------------------------------- legacy RunResult

TEST(RunResultLifetime, CopiesAndMovesKeepPartitionAliasValid)
{
    sim::RunOptions o;
    o.sel.strategy = tasksel::Strategy::DataDependence;
    o.traceInsts = 10'000;
    o.profileInsts = 20'000;
    o.config = arch::SimConfig::paperConfig(2);

    sim::RunResult copy;
    {
        sim::RunResult r = sim::runPipeline(test::makeLoopProgram(100),
                                            o);
        ASSERT_EQ(r.partition.prog, r.prog.get());
        copy = r;                       // copy while original lives
        sim::RunResult moved = std::move(r);
        copy = std::move(moved);        // then move-assign over it
    }
    // Original and intermediate are gone; the alias must still hold.
    ASSERT_NE(copy.prog, nullptr);
    ASSERT_EQ(copy.partition.prog, copy.prog.get());
    EXPECT_GT(copy.partition.size(), 0u);
    EXPECT_FALSE(copy.prog->functions.empty());
    // The partition's block->task map matches the aliased program.
    EXPECT_EQ(copy.partition.taskOf.size(),
              copy.prog->functions.size());
    EXPECT_GT(copy.stats.retiredInsts, 0u);
}

TEST(RunResultLifetime, PartitionOnlySharesOwnershipToo)
{
    sim::RunOptions o;
    sim::RunResult r = sim::partitionOnly(test::makeCallProgram(40), o);
    sim::RunResult copy = r;
    EXPECT_EQ(copy.prog.get(), r.prog.get());
    EXPECT_EQ(copy.partition.prog, copy.prog.get());
    EXPECT_EQ(copy.prog.use_count(), r.prog.use_count());
}
