/**
 * @file
 * Tests for the task-selection machinery: IR transforms, terminal
 * classification, growth/feasibility, the three strategies, register
 * communication metadata, and the partition verifier.
 */

#include <gtest/gtest.h>

#include "cfg/dfs.h"
#include "cfg/dominators.h"
#include "cfg/loops.h"
#include "helpers.h"
#include "profile/interpreter.h"
#include "profile/profiler.h"
#include "tasksel/pverify.h"
#include "tasksel/selector.h"
#include "tasksel/transforms.h"

using namespace msc;
using namespace msc::ir;
using namespace msc::tasksel;

namespace {

TaskPartition
partition(const Program &p, Strategy s, unsigned n_targets = 4,
          bool size_heur = false)
{
    profile::Profile prof = profile::profileProgram(p);
    SelectionOptions opts;
    opts.strategy = s;
    opts.maxTargets = n_targets;
    opts.taskSizeHeuristic = size_heur;
    TaskPartition part = selectTasks(p, prof, opts);
    std::string err;
    EXPECT_TRUE(verifyPartition(part, opts, &err)) << err;
    return part;
}

int64_t
checksumOf(const Program &p)
{
    profile::Interpreter in(p);
    in.runQuiet();
    EXPECT_TRUE(in.halted());
    return in.mem(0);
}

} // anonymous namespace

TEST(Transforms, UnrollPreservesSemantics)
{
    Program p = test::makeLoopProgram(37);
    int64_t before = checksumOf(p);
    unsigned n = unrollSmallLoops(p, 30);
    EXPECT_GE(n, 1u);
    EXPECT_EQ(checksumOf(p), before);
}

TEST(Transforms, UnrollGrowsLoopBody)
{
    Program p = test::makeLoopProgram(37);
    size_t before = p.numInsts();
    unrollSmallLoops(p, 30);
    EXPECT_GT(p.numInsts(), before);
    // The loop now meets the threshold: a second call is a no-op.
    Program q = p;
    EXPECT_EQ(unrollSmallLoops(q, 30), 0u);
}

TEST(Transforms, UnrollRespectsThreshold)
{
    Program p = test::makeLoopProgram(37);
    // A tiny threshold leaves the loop alone.
    EXPECT_EQ(unrollSmallLoops(p, 2), 0u);
}

TEST(Transforms, HoistPreservesSemantics)
{
    for (auto make : {test::makeLoopProgram, test::makeDiamondProgram,
                      test::makeConflictProgram}) {
        Program p = make(41);
        int64_t before = checksumOf(p);
        hoistInductionVariables(p);
        EXPECT_EQ(checksumOf(p), before);
    }
}

TEST(Transforms, HoistMovesIncrementToHeader)
{
    Program p = test::makeLoopProgram(20);
    unsigned n = hoistInductionVariables(p);
    EXPECT_GE(n, 1u);

    // Find the loop header and confirm its first instruction is the
    // increment of the IV.
    const Function &f = p.functions[p.entry];
    cfg::DfsInfo dfs(f);
    cfg::DominatorTree dom(f, dfs);
    cfg::LoopForest forest(f, dfs, dom);
    ASSERT_FALSE(forest.loops().empty());
    const auto &hdr = f.blocks[forest.loops()[0].header];
    const Instruction &first = hdr.insts.front();
    EXPECT_EQ(first.op, Opcode::Add);
    EXPECT_EQ(first.dst, first.src1);
}

TEST(Transforms, HoistPreservesRandomPrograms)
{
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        Program p = test::makeRandomProgram(seed);
        int64_t before = checksumOf(p);
        hoistInductionVariables(p);
        EXPECT_EQ(checksumOf(p), before) << "seed " << seed;
    }
}

TEST(Transforms, UnrollPreservesRandomPrograms)
{
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        Program p = test::makeRandomProgram(seed);
        int64_t before = checksumOf(p);
        unrollSmallLoops(p, 30);
        EXPECT_EQ(checksumOf(p), before) << "seed " << seed;
    }
}

TEST(BasicBlockTasks, OneTaskPerBlock)
{
    Program p = test::makeDiamondProgram();
    TaskPartition part = partition(p, Strategy::BasicBlock);
    size_t blocks = 0;
    for (const auto &f : p.functions)
        blocks += f.blocks.size();
    EXPECT_EQ(part.tasks.size(), blocks);
    for (const auto &t : part.tasks)
        EXPECT_EQ(t.blocks.size(), 1u);
}

TEST(ControlFlowTasks, MultiBlockWithBoundedTargets)
{
    Program p = test::makeDiamondProgram();
    TaskPartition part = partition(p, Strategy::ControlFlow, 4);
    // The diamond reconverges: one task should span several blocks.
    size_t max_blocks = 0;
    for (const auto &t : part.tasks) {
        max_blocks = std::max(max_blocks, t.blocks.size());
        if (t.blocks.size() > 1) {
            EXPECT_LE(t.targets.size(), 4u);
        }
    }
    EXPECT_GE(max_blocks, 3u) << "reconverging diamond not exploited";
    EXPECT_LT(part.tasks.size(),
              p.functions[p.entry].blocks.size());
}

TEST(ControlFlowTasks, TighterTargetBudgetMeansSmallerTasks)
{
    Program p = test::makeRandomProgram(7, 3);
    TaskPartition p1 = partition(p, Strategy::ControlFlow, 1);
    TaskPartition p4 = partition(p, Strategy::ControlFlow, 4);
    EXPECT_GE(p1.tasks.size(), p4.tasks.size());
}

TEST(ControlFlowTasks, LoopBodyBecomesOneTask)
{
    Program p = test::makeLoopProgram();
    TaskPartition part = partition(p, Strategy::ControlFlow);
    // Header and body share a task whose targets include itself.
    const Function &f = p.functions[p.entry];
    cfg::DfsInfo dfs(f);
    cfg::DominatorTree dom(f, dfs);
    cfg::LoopForest forest(f, dfs, dom);
    ASSERT_FALSE(forest.loops().empty());
    BlockId header = forest.loops()[0].header;
    const Task &t = part.taskOfBlock(f.id, header);
    EXPECT_EQ(t.entry, header);
    bool self_target = false;
    for (const auto &tg : t.targets)
        if (tg.kind == TargetKind::Block &&
            tg.block == ir::BlockRef{f.id, header}) {
            self_target = true;
        }
    EXPECT_TRUE(self_target) << "loop task lacks back-edge target";
}

TEST(CallHandling, CallTerminatesTaskWithoutInclusion)
{
    Program p = test::makeCallProgram(40, /*tiny=*/true);
    TaskPartition part = partition(p, Strategy::ControlFlow, 4,
                                   /*size=*/false);
    EXPECT_TRUE(part.includedCalls.empty());
    // Some task targets the callee's entry.
    const Function *callee = p.findFunction("twice");
    bool callee_target = false;
    for (const auto &t : part.tasks)
        for (const auto &tg : t.targets)
            if (tg.kind == TargetKind::Block &&
                tg.block.func == callee->id) {
                callee_target = true;
            }
    EXPECT_TRUE(callee_target);
}

TEST(CallHandling, SizeHeuristicIncludesSmallCalls)
{
    Program p = test::makeCallProgram(40, /*tiny=*/true);
    TaskPartition part = partition(p, Strategy::ControlFlow, 4,
                                   /*size=*/true);
    EXPECT_EQ(part.includedCalls.size(), 1u);
}

TEST(CallHandling, SizeHeuristicSkipsLargeCalls)
{
    Program p = test::makeCallProgram(40, /*tiny=*/false);
    TaskPartition part = partition(p, Strategy::ControlFlow, 4,
                                   /*size=*/true);
    EXPECT_TRUE(part.includedCalls.empty());
}

TEST(DataDependenceTasks, VerifiesOnEveryHelperProgram)
{
    for (auto make : {test::makeLoopProgram, test::makeDiamondProgram,
                      test::makeConflictProgram}) {
        Program p = make(32);
        partition(p, Strategy::DataDependence);
    }
    Program p = test::makeCallProgram(32);
    partition(p, Strategy::DataDependence);
}

TEST(DataDependenceTasks, TerminateAtDependenceShrinksTasks)
{
    Program p = test::makeRandomProgram(11, 3);
    profile::Profile prof = profile::profileProgram(p);
    SelectionOptions a, b;
    a.strategy = b.strategy = Strategy::DataDependence;
    b.ddTerminateAtDependence = true;
    TaskPartition pa = selectTasks(p, prof, a);
    TaskPartition pb = selectTasks(p, prof, b);
    std::string err;
    ASSERT_TRUE(verifyPartition(pa, a, &err)) << err;
    ASSERT_TRUE(verifyPartition(pb, b, &err)) << err;
    EXPECT_LE(pb.avgStaticSize(), pa.avgStaticSize() + 1e-9);
}

TEST(RegComm, ProducedRegisterInCreateMask)
{
    Program p = test::makeLoopProgram();
    TaskPartition part = partition(p, Strategy::ControlFlow);
    // The task holding the loop carries the IV (r16) and sum (r18).
    bool iv_somewhere = false;
    for (const auto &t : part.tasks)
        if (t.createMask & cfg::regBit(16))
            iv_somewhere = true;
    EXPECT_TRUE(iv_somewhere);
}

TEST(RegComm, DeadRegistersPruned)
{
    // r8 (tmp) is recomputed before every use: never live across task
    // boundaries, so no create mask should contain it after pruning
    // in the loop program (all defs are consumed within the block).
    Program p = test::makeLoopProgram();
    hoistInductionVariables(p);
    TaskPartition part = partition(p, Strategy::ControlFlow);
    const Function &f = p.functions[p.entry];
    cfg::DfsInfo dfs(f);
    cfg::DominatorTree dom(f, dfs);
    cfg::LoopForest forest(f, dfs, dom);
    ASSERT_FALSE(forest.loops().empty());
    const Task &t = part.taskOfBlock(f.id, forest.loops()[0].header);
    EXPECT_FALSE(t.createMask & cfg::regBit(9))
        << "scratch register not pruned from create mask";
}

TEST(RegComm, HoistedIvForwardsImmediately)
{
    // Regression: the hoisted IV increment at the loop-header top must
    // be a safe forward point (this serialized all loops when fwdSafe
    // masks truncated to zero).
    Program p = test::makeLoopProgram();
    hoistInductionVariables(p);
    TaskPartition part = partition(p, Strategy::ControlFlow);
    const Function &f = p.functions[p.entry];
    cfg::DfsInfo dfs(f);
    cfg::DominatorTree dom(f, dfs);
    cfg::LoopForest forest(f, dfs, dom);
    ASSERT_FALSE(forest.loops().empty());
    BlockId header = forest.loops()[0].header;
    const Instruction &first = f.blocks[header].insts.front();
    ASSERT_EQ(first.op, Opcode::Add);
    EXPECT_TRUE(part.fwdSafe[f.id][header][0] & cfg::regBit(first.dst))
        << "hoisted IV increment is not a safe forward point";
}

TEST(RegComm, DefFollowedByLaterDefIsNotForwardSafe)
{
    // r18 (sum) is updated in a diamond arm and again in the join's
    // store-feeding path on the next iteration; within a task that
    // contains an arm and a later update, the earlier def must not be
    // a safe forward point. Construct directly: two sequential defs
    // of the same register in one straight-line task.
    IRBuilder b("seq");
    b.setEntry("main");
    auto &f = b.function("main");
    BlockId next = f.newBlock();
    f.li(18, 1);
    f.addi(18, 18, 2);
    f.fallthroughTo(next);
    f.setBlock(next);
    f.storeAbs(18, 0);
    f.halt();
    Program p = b.build();
    TaskPartition part = partition(p, Strategy::ControlFlow);
    const Task &t = part.taskOfBlock(p.entry, 0);
    ASSERT_TRUE(t.contains(0));
    // First def (li r18) is shadowed by the addi: not forward safe.
    EXPECT_FALSE(part.fwdSafe[p.entry][0][0] & cfg::regBit(18));
    // The addi is the last def: forward safe (when r18 is live).
    if (t.contains(next)) {
        EXPECT_TRUE(part.fwdSafe[p.entry][0][1] & cfg::regBit(18));
    }
}

TEST(PartitionVerifier, DetectsDoubleAssignment)
{
    Program p = test::makeLoopProgram();
    TaskPartition part = partition(p, Strategy::BasicBlock);
    SelectionOptions opts;
    // Corrupt: block 0 claimed by two tasks.
    part.tasks[1].blocks.push_back(part.tasks[0].blocks[0]);
    std::string err;
    EXPECT_FALSE(verifyPartition(part, opts, &err));
}

TEST(PartitionVerifier, DetectsTaskOfMismatch)
{
    Program p = test::makeLoopProgram();
    TaskPartition part = partition(p, Strategy::BasicBlock);
    SelectionOptions opts;
    part.taskOf[p.entry][0] = 1;
    std::string err;
    EXPECT_FALSE(verifyPartition(part, opts, &err));
}

TEST(Strategies, NamesAreStable)
{
    EXPECT_STREQ(strategyName(Strategy::BasicBlock), "basic-block");
    EXPECT_STREQ(strategyName(Strategy::ControlFlow), "control-flow");
    EXPECT_STREQ(strategyName(Strategy::DataDependence),
                 "data-dependence");
}

class PartitionAllStrategies
    : public ::testing::TestWithParam<std::tuple<uint64_t, int, unsigned>>
{};

TEST_P(PartitionAllStrategies, RandomProgramsVerify)
{
    auto [seed, strat, n] = GetParam();
    Program p = test::makeRandomProgram(seed, 2);
    hoistInductionVariables(p);
    partition(p, Strategy(strat), n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionAllStrategies,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values(1u, 2u, 4u, 8u)));

namespace {

/** A loop whose body is a single self-looping block. */
Program
makeSelfLoopProgram()
{
    IRBuilder b("selfloop");
    b.setEntry("main");
    auto &f = b.function("main");
    BlockId loop = f.newBlock(), exit = f.newBlock();
    f.li(8, 5);
    f.fallthroughTo(loop);
    f.setBlock(loop);
    f.subi(8, 8, 1);
    f.addi(9, 9, 3);
    f.slei(10, 8, 0);
    f.br(10, exit, loop);
    f.setBlock(exit);
    f.storeAbs(9, 0);
    f.halt();
    return b.build();
}

/** An irreducible region: blocks A and B form a cycle with two entry
 *  edges from the header, so neither dominates the other. */
Program
makeIrreducibleProgram(int64_t which)
{
    IRBuilder b("irreducible");
    b.setEntry("main");
    auto &f = b.function("main");
    BlockId a = f.newBlock(), bb = f.newBlock(), exit = f.newBlock();
    f.li(8, which);   // Entry selector.
    f.li(9, 6);       // Fuel.
    f.br(8, a, bb);
    f.setBlock(a);
    f.addi(10, 10, 1);
    f.subi(9, 9, 1);
    f.slei(11, 9, 0);
    f.br(11, exit, bb);
    f.setBlock(bb);
    f.addi(10, 10, 100);
    f.subi(9, 9, 1);
    f.slei(11, 9, 0);
    f.br(11, exit, a);
    f.setBlock(exit);
    f.storeAbs(10, 0);
    f.halt();
    return b.build();
}

} // anonymous namespace

class AdversarialCfg : public ::testing::TestWithParam<int>
{};

TEST_P(AdversarialCfg, SelfLoopPartitionsVerify)
{
    Program p = makeSelfLoopProgram();
    for (unsigned n : {1u, 2u, 4u})
        partition(p, Strategy(GetParam()), n);
}

TEST_P(AdversarialCfg, IrreduciblePartitionsVerify)
{
    // Both entry edges of the irreducible region get exercised.
    for (int64_t which : {0, 1}) {
        Program p = makeIrreducibleProgram(which);
        for (unsigned n : {1u, 2u, 4u})
            partition(p, Strategy(GetParam()), n);
    }
}

TEST_P(AdversarialCfg, SingleBlockFunctionIsOneTask)
{
    IRBuilder b("tiny");
    b.setEntry("main");
    auto &f = b.function("main");
    f.li(8, 7);
    f.storeAbs(8, 0);
    f.halt();
    Program p = b.build();

    TaskPartition part = partition(p, Strategy(GetParam()));
    ASSERT_EQ(part.tasks.size(), 1u);
    EXPECT_EQ(part.tasks[0].entry, p.functions[p.entry].entry);
}

INSTANTIATE_TEST_SUITE_P(Strategies, AdversarialCfg,
                         ::testing::Values(0, 1, 2));

TEST(PartitionVerifier, DetectsNonAdjacentMember)
{
    // Graft a block into a task it has no edge into: single-entry (or
    // connectivity) must fire.
    Program p = test::makeDiamondProgram();
    TaskPartition part = partition(p, Strategy::ControlFlow);
    ASSERT_GE(part.tasks.size(), 2u);

    // Find a task and a block owned by another task that is not a
    // successor of any member of the first.
    const Function &f = p.functions[p.entry];
    for (auto &dst : part.tasks) {
        for (auto &src : part.tasks) {
            if (src.id == dst.id || src.blocks.size() < 2)
                continue;
            BlockId moved = src.blocks.back();
            if (moved == src.entry)
                continue;
            bool adjacent = false;
            for (BlockId m : dst.blocks)
                for (BlockId s : f.blocks[m].succs)
                    adjacent |= s == moved;
            if (adjacent)
                continue;
            TaskPartition bad = part;
            auto &sb = bad.tasks[src.id].blocks;
            sb.erase(std::find(sb.begin(), sb.end(), moved));
            bad.tasks[dst.id].blocks.push_back(moved);
            bad.taskOf[p.entry][moved] = dst.id;
            SelectionOptions opts;
            std::string err;
            EXPECT_FALSE(verifyPartition(bad, opts, &err));
            EXPECT_FALSE(err.empty());
            return;
        }
    }
    GTEST_SKIP() << "no movable non-adjacent block in this partition";
}

TEST(PartitionVerifier, DetectsTargetArityOverflow)
{
    // A multi-block task with T targets must be rejected once the
    // verifier is asked to enforce N < T; basic-block tasks stay
    // exempt no matter how small N is.
    Program p = test::makeDiamondProgram();
    TaskPartition cf = partition(p, Strategy::ControlFlow);
    size_t max_targets = 0;
    for (const auto &t : cf.tasks)
        if (t.blocks.size() > 1)
            max_targets = std::max(max_targets, t.targets.size());
    ASSERT_GE(max_targets, 1u)
        << "control-flow tasks on a diamond should expose targets";

    SelectionOptions strict;
    strict.maxTargets = unsigned(max_targets - 1);
    std::string err;
    EXPECT_FALSE(verifyPartition(cf, strict, &err));
    EXPECT_NE(err.find("exceed"), std::string::npos) << err;

    TaskPartition bb = partition(p, Strategy::BasicBlock);
    SelectionOptions zero;
    zero.maxTargets = 0;
    EXPECT_TRUE(verifyPartition(bb, zero, &err)) << err;
}

TEST(PartitionVerifier, DetectsEmptyTask)
{
    Program p = test::makeLoopProgram();
    TaskPartition part = partition(p, Strategy::BasicBlock);
    TaskPartition bad = part;
    bad.tasks[0].blocks.clear();
    std::string err;
    EXPECT_FALSE(verifyPartition(bad, SelectionOptions{}, &err));
    EXPECT_NE(err.find("entry not first"), std::string::npos) << err;
}
