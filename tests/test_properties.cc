/**
 * @file
 * Property tests: randomized streams checked against independent
 * oracles — ARB violation semantics, forwarding-ring ordering, cycle
 * conservation in the timing model, and dynamic-task-stream/partition
 * agreement on random programs.
 */

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "arch/arb.h"
#include "arch/processor.h"
#include "arch/ring.h"
#include "arch/taskstream.h"
#include "fuzz/rng.h"
#include "helpers.h"
#include "profile/interpreter.h"
#include "profile/profiler.h"
#include "tasksel/selector.h"
#include "tasksel/transforms.h"

using namespace msc;
using namespace msc::arch;

namespace {

/** Seeded draw source: fuzz::Rng's unbiased bounded() instead of the
 *  old `% mod` reduction (biased for non-power-of-two bounds), with
 *  the seed shifted by MSC_TEST_SEED for reproduction. */
struct Rng
{
    fuzz::Rng r;
    explicit Rng(uint64_t seed) : r(test::effectiveSeed(seed)) {}
    uint64_t next(uint64_t mod) { return r.bounded(mod); }
};

/**
 * Reference oracle for ARB semantics: tracks, per address, every
 * in-flight access with the version each load observed; recomputes
 * violations from first principles.
 */
class ArbOracle
{
  public:
    void
    load(TaskSeq task, uint64_t addr)
    {
        auto &v = _acc[addr];
        // Version observed: youngest store by task' <= task.
        std::optional<TaskSeq> src;
        for (auto &[t, rec] : v)
            if (rec.stored && t <= task && (!src || t > *src))
                src = t;
        auto &rec = v[task];
        if (!rec.loaded && !rec.stored) {
            rec.loaded = true;
            rec.src = src;
        } else if (!rec.loaded) {
            rec.loaded = true;
            rec.src = task;  // Read own store.
        }
    }

    /** Returns the oldest violated task, if any. */
    std::optional<TaskSeq>
    store(TaskSeq task, uint64_t addr)
    {
        auto &v = _acc[addr];
        std::optional<TaskSeq> victim;
        for (auto &[t, rec] : v) {
            if (t > task && rec.loaded &&
                (!rec.src || *rec.src < task)) {
                if (!victim || t < *victim)
                    victim = t;
            }
        }
        v[task].stored = true;
        return victim;
    }

    void
    squashFrom(TaskSeq task)
    {
        for (auto &[a, v] : _acc)
            for (auto it = v.begin(); it != v.end();)
                it = (it->first >= task) ? v.erase(it) : std::next(it);
    }

    void
    retireUpTo(TaskSeq task)
    {
        for (auto &[a, v] : _acc)
            for (auto it = v.begin(); it != v.end();)
                it = (it->first <= task) ? v.erase(it) : std::next(it);
    }

  private:
    struct Rec
    {
        bool loaded = false, stored = false;
        std::optional<TaskSeq> src;
    };
    std::map<uint64_t, std::map<TaskSeq, Rec>> _acc;
};

} // anonymous namespace

class ArbProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ArbProperty, MatchesOracleOnRandomStreams)
{
    Rng rng(GetParam());
    Arb arb(4096);
    ArbOracle oracle;

    TaskSeq head = 0, tail = 0;
    for (int step = 0; step < 3000; ++step) {
        unsigned op = unsigned(rng.next(100));
        if (op < 40) {
            // Load by a random in-flight task.
            TaskSeq t = head + rng.next(tail - head + 1);
            uint64_t a = rng.next(48);
            arb.recordLoad(t, a, 0x100 + a);
            oracle.load(t, a);
        } else if (op < 80) {
            TaskSeq t = head + rng.next(tail - head + 1);
            uint64_t a = rng.next(48);
            auto got = arb.recordStore(t, a);
            auto want = oracle.store(t, a);
            if (want) {
                ASSERT_EQ(got.victim, *want)
                    << "step " << step << " store t=" << t
                    << " a=" << a;
                // A violation squashes the victim and younger.
                arb.squashFrom(*want);
                oracle.squashFrom(*want);
                tail = *want > head ? *want - 1 : head;
            } else {
                ASSERT_EQ(got.victim, NO_TASK) << "step " << step;
            }
        } else if (op < 90) {
            ++tail;  // Dispatch a younger task.
        } else if (head < tail) {
            arb.retireUpTo(head);
            oracle.retireUpTo(head);
            ++head;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArbProperty,
                         ::testing::Range<uint64_t>(1, 9));

TEST(RingProperty, ArrivalsMonotoneAndOrdered)
{
    Rng rng(7);
    Ring ring(6, 2);
    uint64_t now = 10;
    std::vector<uint64_t> prev_arrival(6, 0);
    for (int i = 0; i < 500; ++i) {
        now += rng.next(3);
        unsigned from = unsigned(rng.next(6));
        std::vector<uint64_t> arr;
        ring.broadcast(from, now, arr);
        // Hop-by-hop arrivals never decrease around the ring.
        for (unsigned h = 1; h < 6; ++h) {
            unsigned p_prev = (from + h - 1) % 6;
            unsigned p = (from + h) % 6;
            EXPECT_GE(arr[p], arr[p_prev]);
            EXPECT_GE(arr[p], now);
        }
        EXPECT_EQ(arr[from], now);
    }
}

TEST(RingProperty, BandwidthNeverExceeded)
{
    // With bandwidth 1, k same-cycle broadcasts from one PU reach the
    // neighbour in k distinct cycles.
    Ring ring(4, 1);
    std::vector<uint64_t> seen;
    for (int i = 0; i < 10; ++i) {
        std::vector<uint64_t> arr;
        ring.broadcast(0, 100, arr);
        seen.push_back(arr[1]);
    }
    std::sort(seen.begin(), seen.end());
    for (size_t i = 1; i < seen.size(); ++i)
        EXPECT_GT(seen[i], seen[i - 1]);
}

namespace {

struct SimPrep
{
    ir::Program prog;
    tasksel::TaskPartition part;
    std::vector<DynTask> tasks;
    size_t traceLen = 0;
};

SimPrep
prepRandom(uint64_t seed, tasksel::Strategy s)
{
    SimPrep out{test::makeRandomProgram(seed, 3), {}, {}, 0};
    tasksel::hoistInductionVariables(out.prog);
    auto prof = profile::profileProgram(out.prog);
    tasksel::SelectionOptions opts;
    opts.strategy = s;
    out.part = tasksel::selectTasks(out.prog, prof, opts);
    profile::Interpreter in(out.prog);
    auto trace = in.trace(40'000);
    out.traceLen = trace.size();
    out.tasks = cutTasks(trace, out.part);
    return out;
}

} // anonymous namespace

class ConservationProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ConservationProperty, CyclesAndInstructionsConserved)
{
    for (int s = 0; s < 3; ++s) {
        SimPrep pr = prepRandom(GetParam(), tasksel::Strategy(s));
        SimConfig cfg = SimConfig::paperConfig(4);
        SimStats st = simulate(pr.part, pr.tasks, cfg);

        // Instruction conservation: everything traced retires once.
        ASSERT_EQ(st.retiredInsts, pr.traceLen);
        ASSERT_EQ(st.retiredTasks, pr.tasks.size());

        // Useful cycles can't exceed what the issue width allows nor
        // undercut what the instruction count requires.
        uint64_t useful =
            st.buckets.counts[size_t(CycleKind::Useful)];
        EXPECT_GE(useful * cfg.issueWidth, st.retiredInsts);
        EXPECT_LE(useful, st.cycles * cfg.numPUs);

        // Fixed overheads are exact per retired task.
        EXPECT_EQ(st.buckets.counts[size_t(CycleKind::TaskEnd)],
                  st.retiredTasks * cfg.taskEndOverhead);

        // Occupied + idle PU-cycles cover the whole envelope.
        EXPECT_LE(st.buckets.total(),
                  (st.cycles + 2) * cfg.numPUs +
                      st.retiredTasks * (cfg.taskStartOverhead +
                                         cfg.taskEndOverhead));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationProperty,
                         ::testing::Range<uint64_t>(30, 40));

class StreamProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(StreamProperty, DynamicStreamAgreesWithPartition)
{
    for (int s = 0; s < 3; ++s) {
        SimPrep pr = prepRandom(GetParam(), tasksel::Strategy(s));
        size_t total = 0;
        for (size_t i = 0; i < pr.tasks.size(); ++i) {
            const DynTask &t = pr.tasks[i];
            total += t.insts.size();
            const tasksel::Task &st = pr.part.tasks[t.staticTask];
            // Starts at the static entry.
            ASSERT_EQ(t.insts.front().ref.block, st.entry);
            // Every instruction's block is a member of the static
            // task (included calls aside — random programs have no
            // calls).
            for (const DynInst &di : t.insts)
                ASSERT_TRUE(st.contains(di.ref.block))
                    << "dyn task " << i;
            // The recorded successor matches the next task's entry.
            if (i + 1 < pr.tasks.size()) {
                ASSERT_TRUE(t.nextEntry.valid());
                ASSERT_EQ(t.nextEntry.block,
                          pr.part.tasks[pr.tasks[i + 1].staticTask]
                              .entry);
            }
        }
        ASSERT_EQ(total, pr.traceLen);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamProperty,
                         ::testing::Range<uint64_t>(50, 58));

TEST(StatsProperty, PerBranchNormalizationBounds)
{
    SimStats s;
    s.taskPredictions = 1000;
    s.taskMispredictions = 100;
    s.dynTasks = 1000;
    s.dynTaskInsts = 10000;
    s.dynTaskCtlInsts = 3000;  // 3 branches/task.
    double per_branch = s.perBranchMispredictPct();
    // Normalized rate is below the per-task rate and above rate/b.
    EXPECT_LT(per_branch, s.taskMispredictPct());
    EXPECT_GT(per_branch, s.taskMispredictPct() / 3.5);
}

TEST(StatsProperty, WindowSpanFormulaLimits)
{
    SimStats s;
    s.dynTasks = 100;
    s.dynTaskInsts = 2000;      // 20 insts/task.
    s.taskPredictions = 1000;
    s.taskMispredictions = 0;   // Perfect prediction.
    EXPECT_DOUBLE_EQ(s.formulaWindowSpan(4), 80.0);
    s.taskMispredictions = 1000;  // Never right: window = one task.
    EXPECT_DOUBLE_EQ(s.formulaWindowSpan(4), 20.0);
}
