/**
 * @file
 * Unit tests for the runtime governance layer (src/runtime): the
 * ExecBudget/Governor accounting, the StageError taxonomy and its
 * deterministic rendering, cooperative cancellation, wall-clock
 * deadlines, and the deterministic fault injector.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "runtime/budget.h"
#include "runtime/error.h"
#include "runtime/fault.h"

using namespace msc;
using runtime::CancelToken;
using runtime::ErrorKind;
using runtime::ExecBudget;
using runtime::FaultInjector;
using runtime::Governor;
using runtime::StageError;
using runtime::StageErrorInfo;

// ------------------------------------------------------- ExecBudget

TEST(ExecBudget, DefaultIsUnlimited)
{
    ExecBudget b;
    EXPECT_TRUE(b.unlimited());
    b.maxFuel = 1;
    EXPECT_FALSE(b.unlimited());
}

TEST(Governor, UnlimitedNeverThrows)
{
    Governor g;
    for (int i = 0; i < 1000; ++i) {
        g.chargeFuel(1'000'000);
        g.chargeHeap(1'000'000'000);
        g.checkPulse();
    }
    EXPECT_EQ(g.simCycleLimit(), 0u);
}

TEST(Governor, FuelExhaustionThrowsWithAccounting)
{
    ExecBudget b;
    b.maxFuel = 10'000;
    Governor g(b);
    g.chargeFuel(10'000);  // exactly at the limit: still fine
    try {
        g.chargeFuel(Governor::PULSE_INTERVAL);
        FAIL() << "expected StageError";
    } catch (const StageError &e) {
        EXPECT_EQ(e.info().kind, ErrorKind::BudgetFuel);
        EXPECT_EQ(e.info().limit, 10'000u);
        EXPECT_EQ(e.info().used, 10'000u + Governor::PULSE_INTERVAL);
        EXPECT_TRUE(e.info().budgetExhausted());
        EXPECT_TRUE(e.info().stage.empty());  // annotated at the edge
    }
}

TEST(Governor, HeapWatermarkTracksReleases)
{
    ExecBudget b;
    b.maxHeapBytes = 1000;
    Governor g(b);
    g.chargeHeap(600);
    g.releaseHeap(600);
    g.chargeHeap(900);       // fine: watermark is live bytes, not sum
    EXPECT_EQ(g.heapPeak(), 900u);
    EXPECT_THROW(g.chargeHeap(200), StageError);
    try {
        Governor g2(b);
        g2.chargeHeap(2000);
    } catch (const StageError &e) {
        EXPECT_EQ(e.info().kind, ErrorKind::BudgetHeap);
        EXPECT_EQ(e.info().limit, 1000u);
        EXPECT_EQ(e.info().used, 2000u);
    }
}

TEST(Governor, CycleLimitReportsThroughCyclesExhausted)
{
    ExecBudget b;
    b.maxSimCycles = 5000;
    Governor g(b);
    EXPECT_EQ(g.simCycleLimit(), 5000u);
    try {
        g.cyclesExhausted(5000);
        FAIL() << "expected StageError";
    } catch (const StageError &e) {
        EXPECT_EQ(e.info().kind, ErrorKind::BudgetCycles);
        EXPECT_EQ(e.info().limit, 5000u);
        EXPECT_EQ(e.info().used, 5000u);
    }
}

TEST(Governor, CancellationTripsOnNextPulse)
{
    CancelToken tok;
    Governor g(ExecBudget{}, &tok);
    g.checkPulse();  // not cancelled yet
    tok.requestCancel();
    try {
        g.checkPulse();
        FAIL() << "expected StageError";
    } catch (const StageError &e) {
        EXPECT_EQ(e.info().kind, ErrorKind::Cancelled);
        EXPECT_FALSE(e.info().budgetExhausted());
    }
}

TEST(Governor, DeadlineTripsAfterExpiry)
{
    ExecBudget b;
    b.wallMs = 1;
    Governor g(b);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // The clock is only read every CLOCK_STRIDE pulses, so pulse
    // well past one stride and expect the deadline within it.
    bool tripped = false;
    try {
        for (int i = 0; i < 64 && !tripped; ++i)
            g.checkPulse();
    } catch (const StageError &e) {
        tripped = true;
        EXPECT_EQ(e.info().kind, ErrorKind::Deadline);
        // Deterministic-rendering contract: no elapsed quantities.
        EXPECT_EQ(e.info().used, 0u);
    }
    EXPECT_TRUE(tripped);
}

// -------------------------------------------------------- StageError

TEST(StageErrorTest, KindIdsAreStableKebabCase)
{
    EXPECT_STREQ(runtime::errorKindId(ErrorKind::BudgetFuel),
                 "budget-fuel");
    EXPECT_STREQ(runtime::errorKindId(ErrorKind::InvalidInput),
                 "invalid-input");
    EXPECT_STREQ(runtime::errorKindId(ErrorKind::CacheCorrupt),
                 "cache-corrupt");
    EXPECT_STREQ(runtime::errorKindId(ErrorKind::Deadline), "deadline");
}

TEST(StageErrorTest, BudgetKindClassification)
{
    EXPECT_TRUE(runtime::errorKindIsBudget(ErrorKind::BudgetFuel));
    EXPECT_TRUE(runtime::errorKindIsBudget(ErrorKind::BudgetCycles));
    EXPECT_TRUE(runtime::errorKindIsBudget(ErrorKind::BudgetHeap));
    EXPECT_TRUE(runtime::errorKindIsBudget(ErrorKind::Deadline));
    EXPECT_FALSE(runtime::errorKindIsBudget(ErrorKind::Cancelled));
    EXPECT_FALSE(runtime::errorKindIsBudget(ErrorKind::InvalidInput));
    EXPECT_FALSE(runtime::errorKindIsBudget(ErrorKind::None));
}

TEST(StageErrorTest, SetStageAnnotatesOnlyOnce)
{
    StageError e(ErrorKind::BudgetFuel, "", "fuel gone");
    e.setStage("profile");
    e.setStage("simulate");  // must not overwrite the first annotation
    EXPECT_EQ(e.info().stage, "profile");
}

TEST(StageErrorTest, RenderIsDeterministic)
{
    StageErrorInfo i;
    i.kind = ErrorKind::BudgetFuel;
    i.stage = "profile";
    i.detail = "instruction fuel exhausted";
    i.limit = 100;
    i.used = 4196;
    StageErrorInfo j = i;
    EXPECT_EQ(i.render(), j.render());
    EXPECT_NE(i.render().find("budget-fuel"), std::string::npos);
    EXPECT_NE(i.render().find("profile"), std::string::npos);
    // what() is the rendering, so legacy catch sites see the story.
    StageError e(std::move(i));
    EXPECT_EQ(std::string(e.what()), e.info().render());
}

// ----------------------------------------------------- FaultInjector

TEST(FaultInjectorTest, CountsDownThenSucceeds)
{
    FaultInjector &inj = FaultInjector::instance();
    inj.configure("test-site=2");
    EXPECT_EQ(inj.remaining("test-site"), 2u);
    EXPECT_TRUE(inj.shouldFail("test-site"));
    EXPECT_TRUE(inj.shouldFail("test-site"));
    EXPECT_FALSE(inj.shouldFail("test-site"));
    EXPECT_FALSE(inj.shouldFail("other-site"));
    inj.configure("");
    EXPECT_FALSE(inj.shouldFail("test-site"));
}

TEST(FaultInjectorTest, MalformedEntriesIgnored)
{
    FaultInjector &inj = FaultInjector::instance();
    inj.configure("=3,noequals,ok-site=1,zero=0,junk=x");
    EXPECT_EQ(inj.remaining("ok-site"), 1u);
    EXPECT_EQ(inj.remaining("noequals"), 0u);
    EXPECT_EQ(inj.remaining("zero"), 0u);
    EXPECT_EQ(inj.remaining("junk"), 0u);
    inj.configure("");
}
