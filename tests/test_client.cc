/**
 * @file
 * Unit tests for the src/client library (docs/API.md): the endpoint
 * grammar, the typed RequestBuilder payloads (exact wire bytes), the
 * ResponseFrame decoder, and the ClientConn frame pump over an
 * in-memory transport. Everything here runs with no sockets; the
 * live-daemon paths are covered by test_router and daemon_smoke.
 */

#include <gtest/gtest.h>

#include "client/client.h"
#include "runtime/error.h"
#include "serve/protocol.h"

using namespace msc;
using client::Endpoint;
using client::RequestBuilder;
using client::ResponseFrame;
using runtime::ErrorKind;
using runtime::StageError;

namespace {

// ---------------------------------------------------------------------------
// Endpoint grammar.

TEST(Endpoint, ParsesUnix)
{
    Endpoint ep = client::parseEndpoint("unix:/run/mscd.sock");
    EXPECT_EQ(ep.kind, Endpoint::Kind::Unix);
    EXPECT_EQ(ep.path, "/run/mscd.sock");
}

TEST(Endpoint, ParsesTcpHostPort)
{
    Endpoint ep = client::parseEndpoint("tcp:example.com:7070");
    EXPECT_EQ(ep.kind, Endpoint::Kind::Tcp);
    EXPECT_EQ(ep.host, "example.com");
    EXPECT_EQ(ep.port, 7070);
}

TEST(Endpoint, ParsesTcpPortShorthandAsLoopback)
{
    Endpoint ep = client::parseEndpoint("tcp:7070");
    EXPECT_EQ(ep.kind, Endpoint::Kind::Tcp);
    EXPECT_EQ(ep.host, "127.0.0.1");
    EXPECT_EQ(ep.port, 7070);
}

TEST(Endpoint, ParsesStdio)
{
    EXPECT_EQ(client::parseEndpoint("stdio").kind,
              Endpoint::Kind::Stdio);
}

TEST(Endpoint, RejectsMalformedSpecs)
{
    const char *bad[] = {
        "",          "ftp:/x",     "unix:",         "tcp:",
        "tcp:host:", "tcp:host:0", "tcp:host:junk", "tcp:0",
        "tcp:65536", "unixsocket",
    };
    for (const char *spec : bad) {
        try {
            client::parseEndpoint(spec);
            FAIL() << "accepted malformed endpoint: " << spec;
        } catch (const StageError &e) {
            EXPECT_EQ(e.info().kind, ErrorKind::InvalidInput) << spec;
            EXPECT_EQ(e.info().stage, "endpoint") << spec;
        }
    }
}

TEST(Endpoint, FormatRoundTrips)
{
    const char *specs[] = {"unix:/tmp/a.sock", "tcp:10.0.0.1:81",
                           "stdio"};
    for (const char *spec : specs) {
        Endpoint ep = client::parseEndpoint(spec);
        EXPECT_EQ(client::formatEndpoint(ep), spec);
        EXPECT_EQ(client::parseEndpoint(client::formatEndpoint(ep)),
                  ep);
    }
    // The port shorthand canonicalizes to the explicit loopback form.
    EXPECT_EQ(client::formatEndpoint(client::parseEndpoint("tcp:81")),
              "tcp:127.0.0.1:81");
}

TEST(Endpoint, ConnectRefusesStdioAndDeadSockets)
{
    EXPECT_THROW(client::connectEndpoint(
                     client::parseEndpoint("stdio")),
                 StageError);
    try {
        client::connectEndpoint(
            client::parseEndpoint("unix:/nonexistent/mscd.sock"));
        FAIL() << "connected to a nonexistent socket";
    } catch (const StageError &e) {
        EXPECT_EQ(e.info().kind, ErrorKind::Io);
    }
}

// ---------------------------------------------------------------------------
// RequestBuilder: the payloads are the wire contract, so pin bytes.

TEST(RequestBuilder, RunPayloadBytes)
{
    RequestBuilder b = RequestBuilder::run("r1", "compress");
    b.strategy("bb").pusCount(4).smallScale(true).insts(20000);
    EXPECT_EQ(b.payload(),
              "{\"id\":\"r1\",\"kind\":\"run\","
              "\"workload\":\"compress\",\"strategy\":\"bb\","
              "\"pus\":4,\"scale\":\"small\",\"insts\":20000}");
}

TEST(RequestBuilder, SweepPayloadBytes)
{
    RequestBuilder b = RequestBuilder::sweep("s1");
    b.workloads({"compress", "li"}).strategies({"bb", "cf"}).pus({2});
    EXPECT_EQ(b.payload(),
              "{\"id\":\"s1\",\"kind\":\"sweep\","
              "\"workloads\":[\"compress\",\"li\"],"
              "\"strategies\":[\"bb\",\"cf\"],\"pus\":[2]}");
}

TEST(RequestBuilder, CancelAndStatsPayloads)
{
    EXPECT_EQ(RequestBuilder::cancel("c1", "s9").payload(),
              "{\"id\":\"c1\",\"kind\":\"cancel\",\"target\":\"s9\"}");
    RequestBuilder st = RequestBuilder::stats("m1");
    st.format("prometheus");
    EXPECT_EQ(st.payload(),
              "{\"id\":\"m1\",\"kind\":\"stats\","
              "\"format\":\"prometheus\"}");
}

TEST(RequestBuilder, BudgetOmitsZeroFields)
{
    runtime::ExecBudget b;
    b.maxFuel = 200000;
    RequestBuilder r = RequestBuilder::run("r1", "compress");
    r.budget(b);
    EXPECT_EQ(r.payload(),
              "{\"id\":\"r1\",\"kind\":\"run\","
              "\"workload\":\"compress\","
              "\"budget\":{\"max_fuel\":200000}}");
}

TEST(RequestBuilder, BudgetExactEmitsZeros)
{
    // Exact propagation: explicit zeros must reach the peer so its
    // own defaults cannot alter a routed cell's outcome.
    runtime::ExecBudget b;
    b.maxFuel = 200000;
    RequestBuilder r = RequestBuilder::run("r1", "compress");
    r.budgetExact(b);
    EXPECT_EQ(r.payload(),
              "{\"id\":\"r1\",\"kind\":\"run\","
              "\"workload\":\"compress\","
              "\"budget\":{\"timeout_ms\":0,\"max_fuel\":200000,"
              "\"max_cycles\":0,\"max_heap_bytes\":0}}");
}

TEST(RequestBuilder, PayloadsParseAsValidRequests)
{
    RequestBuilder b = RequestBuilder::trace("t1", "compress");
    b.strategy("cf").pusCount(8).inOrder(true).sizeHeuristic(true)
        .targets(2).core("cycle").includeTrace(true);
    serve::RequestDefaults defaults;
    serve::Request req = serve::parseRequest(b.payload(), defaults);
    EXPECT_EQ(req.kind, serve::RequestKind::Trace);
    ASSERT_EQ(req.specs.size(), 1u);
    EXPECT_EQ(req.specs[0].workload, "compress");
    EXPECT_EQ(req.specs[0].opts.config.numPUs, 8u);
    EXPECT_FALSE(req.specs[0].opts.config.outOfOrder);
    EXPECT_TRUE(req.specs[0].opts.sel.taskSizeHeuristic);
    EXPECT_TRUE(req.includeTrace);
}

// ---------------------------------------------------------------------------
// ResponseFrame decoding.

TEST(ResponseFrame, DecodesCell)
{
    ResponseFrame f = client::parseResponseFrame(
        "{\"id\":\"s1\",\"type\":\"cell\",\"index\":2,\"total\":4,"
        "\"run\":{\"id\":\"x\",\"status\":\"ok\"},\"shard\":1}");
    EXPECT_EQ(f.type, ResponseFrame::Type::Cell);
    EXPECT_EQ(f.id, "s1");
    EXPECT_EQ(f.index, 2u);
    EXPECT_EQ(f.total, 4u);
    EXPECT_EQ(f.run.get("status").asString(), "ok");
    EXPECT_FALSE(f.terminal());
}

TEST(ResponseFrame, DecodesDirectSummary)
{
    ResponseFrame f = client::parseResponseFrame(
        "{\"id\":\"s1\",\"type\":\"summary\",\"protocol_version\":3,"
        "\"status\":\"ok\",\"exit_code\":0,\"partial\":false,"
        "\"errors\":0,\"runs\":4}");
    EXPECT_EQ(f.type, ResponseFrame::Type::Summary);
    EXPECT_EQ(f.protocolVersion, 3);
    EXPECT_EQ(f.status, "ok");
    EXPECT_TRUE(f.via.empty());      // v2 shape: no router provenance
    EXPECT_TRUE(f.shards.empty());
    EXPECT_TRUE(f.terminates("s1"));
    EXPECT_FALSE(f.terminates("s2"));
}

TEST(ResponseFrame, DecodesRoutedSummaryProvenance)
{
    ResponseFrame f = client::parseResponseFrame(
        "{\"id\":\"s1\",\"type\":\"summary\",\"protocol_version\":3,"
        "\"status\":\"partial\",\"exit_code\":3,\"partial\":true,"
        "\"errors\":1,\"runs\":4,\"via\":\"router\","
        "\"shards\":[3,1]}");
    EXPECT_EQ(f.via, "router");
    ASSERT_EQ(f.shards.size(), 2u);
    EXPECT_EQ(f.shards[0], 3u);
    EXPECT_EQ(f.shards[1], 1u);
    EXPECT_EQ(f.exitCode, 3);
    EXPECT_TRUE(f.partial);
}

TEST(ResponseFrame, DecodesErrorIncludingBusy)
{
    ResponseFrame f = client::parseResponseFrame(
        "{\"id\":\"r9\",\"type\":\"error\",\"error\":{"
        "\"kind\":\"busy\",\"stage\":\"server\",\"workload\":\"\","
        "\"detail\":\"too many\",\"budget_exhausted\":false}}");
    EXPECT_EQ(f.type, ResponseFrame::Type::Error);
    EXPECT_EQ(f.error.kind, ErrorKind::Busy);
    EXPECT_EQ(f.error.stage, "server");
    EXPECT_TRUE(f.terminal());
}

TEST(ResponseFrame, RejectsMalformedFrames)
{
    const char *bad[] = {
        "not json",
        "[1,2]",
        "{\"id\":\"x\",\"type\":\"wat\"}",
        "{\"id\":\"x\",\"type\":\"cell\",\"index\":0,\"total\":1}",
        "{\"id\":\"x\",\"type\":\"error\"}",
    };
    for (const char *payload : bad) {
        try {
            client::parseResponseFrame(payload);
            FAIL() << "accepted malformed frame: " << payload;
        } catch (const StageError &e) {
            EXPECT_EQ(e.info().kind, ErrorKind::InvalidInput);
            EXPECT_EQ(e.info().stage, "client");
        }
    }
}

TEST(ErrorKindIds, RoundTripEveryKindIncludingBusy)
{
    for (int k = int(ErrorKind::None); k <= int(ErrorKind::Busy);
         ++k) {
        ErrorKind kind = ErrorKind(k), back = ErrorKind::None;
        ASSERT_TRUE(runtime::errorKindFromId(runtime::errorKindId(kind),
                                             back));
        EXPECT_EQ(back, kind);
    }
    ErrorKind out = ErrorKind::Deadline;
    EXPECT_FALSE(runtime::errorKindFromId("no-such-kind", out));
    EXPECT_EQ(out, ErrorKind::Deadline);  // untouched on failure
}

// ---------------------------------------------------------------------------
// ClientConn over an in-memory transport.

/** Frames @p payloads into one input stream. */
std::string
framed(const std::vector<std::string> &payloads)
{
    serve::StringTransport t("");
    for (const auto &p : payloads)
        serve::writeFrame(t, p);
    return t.written();
}

TEST(ClientConn, CallSkipsOtherIdsAndReturnsTerminal)
{
    serve::StringTransport t(framed({
        "{\"id\":\"other\",\"type\":\"cell\",\"index\":0,"
        "\"total\":1,\"run\":{\"status\":\"ok\"}}",
        "{\"id\":\"s1\",\"type\":\"cell\",\"index\":0,\"total\":1,"
        "\"run\":{\"id\":\"a\",\"status\":\"ok\"}}",
        "{\"id\":\"s1\",\"type\":\"summary\",\"protocol_version\":3,"
        "\"status\":\"ok\",\"exit_code\":0,\"partial\":false,"
        "\"errors\":0,\"runs\":1}",
    }));
    client::ClientConn conn(t);

    RequestBuilder req = RequestBuilder::sweep("s1");
    size_t mine = 0;
    client::ClientConn::SweepOutcome sw =
        conn.collectSweep(req, [&](const ResponseFrame &) { ++mine; });

    EXPECT_EQ(mine, 2u);  // the "other" frame never reaches onFrame
    ASSERT_TRUE(sw.ok());
    ASSERT_EQ(sw.runs.size(), 1u);
    EXPECT_EQ(sw.runs[0].get("id").asString(), "a");
    // The request went out framed, byte-exactly.
    serve::StringTransport echo(t.written());
    EXPECT_EQ(serve::readFrame(echo).payload, req.payload());
}

TEST(ClientConn, NextThrowsIoOnEof)
{
    serve::StringTransport t("");
    client::ClientConn conn(t);
    try {
        conn.next();
        FAIL() << "next() on an empty stream must throw";
    } catch (const StageError &e) {
        EXPECT_EQ(e.info().kind, ErrorKind::Io);
        EXPECT_EQ(e.info().stage, "client");
    }
}

TEST(ClientConn, SweepEndingInErrorIsNotOk)
{
    serve::StringTransport t(framed({
        "{\"id\":\"s1\",\"type\":\"error\",\"error\":{"
        "\"kind\":\"busy\",\"stage\":\"server\",\"workload\":\"\","
        "\"detail\":\"bound\",\"budget_exhausted\":false}}",
    }));
    client::ClientConn conn(t);
    client::ClientConn::SweepOutcome sw =
        conn.collectSweep(RequestBuilder::sweep("s1"));
    EXPECT_FALSE(sw.ok());
    EXPECT_EQ(sw.last.error.kind, ErrorKind::Busy);
}

TEST(ProtocolVersion, PinnedAtThree)
{
    // v3 added the optional router provenance fields (via/shards on
    // summaries, shard on cells). Requests did not change: every v2
    // request payload is still valid — parseRequest has no version
    // gate — so this pin only moves when the wire contract does.
    EXPECT_EQ(serve::PROTOCOL_VERSION, 3);
}

} // anonymous namespace
