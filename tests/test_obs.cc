/**
 * @file
 * Tests of the observability subsystem (src/obs): trace-event output
 * validity and determinism, per-static-task attribution, and the
 * central accounting invariant — the task timeline *is* the cycle
 * accounting (summed span durations reproduce SimStats exactly).
 */

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "obs/crosscheck.h"
#include "obs/perfetto.h"
#include "obs/phase.h"
#include "obs/taskprof.h"
#include "obs/tracesink.h"
#include "report/json.h"
#include "sim/runner.h"
#include "workloads/workload.h"

using namespace msc;
using namespace msc::obs;

namespace {

sim::RunOptions
baseOptions(tasksel::Strategy s, unsigned pus = 4)
{
    sim::RunOptions o;
    o.sel.strategy = s;
    o.config = arch::SimConfig::paperConfig(pus, /*ooo=*/true);
    o.traceInsts = 60'000;
    return o;
}

sim::RunResult
runTraced(const char *workload, tasksel::Strategy s, TraceSink *sink,
          unsigned pus = 4)
{
    ir::Program p = workloads::buildWorkload(workload,
                                             workloads::Scale::Small);
    sim::RunOptions o = baseOptions(s, pus);
    o.sink = sink;
    return sim::runPipeline(p, o);
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Disabled / inert paths.

TEST(TraceSinkTest, NullSinkLeavesStatsUnchanged)
{
    // Attaching an inert sink must not perturb the simulation: the
    // instrumented sites only *observe*.
    NullTraceSink null_sink;
    sim::RunResult plain = runTraced("compress", tasksel::Strategy::ControlFlow,
                                     nullptr);
    sim::RunResult traced = runTraced("compress",
                                      tasksel::Strategy::ControlFlow,
                                      &null_sink);

    EXPECT_EQ(plain.stats.cycles, traced.stats.cycles);
    EXPECT_EQ(plain.stats.retiredInsts, traced.stats.retiredInsts);
    EXPECT_EQ(plain.stats.retiredTasks, traced.stats.retiredTasks);
    EXPECT_EQ(plain.stats.buckets.counts, traced.stats.buckets.counts);
    EXPECT_EQ(plain.stats.puOccupiedCycles, traced.stats.puOccupiedCycles);
}

TEST(TraceSinkTest, TeeFansOutToAllSinks)
{
    TaskProfiler a, b;
    TeeSink tee({&a, &b});
    sim::RunResult r = runTraced("compress", tasksel::Strategy::BasicBlock,
                                 &tee);
    ASSERT_GT(r.stats.retiredTasks, 0u);
    EXPECT_EQ(a.totalCycles(), b.totalCycles());
    EXPECT_GT(a.totalCycles(), 0u);
}

// ---------------------------------------------------------------------
// Trace-event document validity and determinism.

TEST(PerfettoTest, DeterministicAndRoundTrips)
{
    // Same workload, config and seed twice: byte-identical JSON that
    // the in-tree parser accepts.
    PerfettoTraceWriter w1(4, "compress");
    PerfettoTraceWriter w2(4, "compress");
    runTraced("compress", tasksel::Strategy::ControlFlow, &w1);
    runTraced("compress", tasksel::Strategy::ControlFlow, &w2);

    std::string text = w1.str();
    EXPECT_EQ(text, w2.str());

    report::Json doc = report::Json::parse(text);
    ASSERT_TRUE(doc.has("traceEvents"));
    EXPECT_GT(doc.get("traceEvents").size(), 0u);
    // Serializing the parsed document reproduces the file.
    EXPECT_EQ(doc.dump(), text);
}

TEST(PerfettoTest, EventsAreWellFormed)
{
    PerfettoTraceWriter w(4, "tomcatv");
    runTraced("tomcatv", tasksel::Strategy::DataDependence, &w);
    report::Json doc = report::Json::parse(w.str());
    const report::Json &ev = doc.get("traceEvents");
    ASSERT_GT(ev.size(), 0u);

    // Per-(pid,tid) complete spans, for the overlap check below.
    std::map<std::pair<int64_t, int64_t>,
             std::vector<std::pair<int64_t, int64_t>>> spans;

    for (size_t i = 0; i < ev.size(); ++i) {
        const report::Json &e = ev.at(i);
        const std::string &ph = e.get("ph").asString();
        ASSERT_TRUE(ph == "X" || ph == "i" || ph == "C" || ph == "M")
            << "unexpected phase " << ph;
        if (ph == "M")
            continue;
        ASSERT_TRUE(e.has("ts"));
        EXPECT_GE(e.get("ts").asInt(), 0);
        if (ph == "X") {
            ASSERT_TRUE(e.has("dur"));
            EXPECT_GE(e.get("dur").asInt(), 0);
            spans[{e.get("pid").asInt(), e.get("tid").asInt()}]
                .emplace_back(e.get("ts").asInt(),
                              e.get("ts").asInt() + e.get("dur").asInt());
        }
    }

    // A PU runs one task instance at a time, so its spans must tile
    // without overlap.
    for (auto &[track, v] : spans) {
        std::sort(v.begin(), v.end());
        for (size_t i = 1; i < v.size(); ++i)
            EXPECT_LE(v[i - 1].second, v[i].first)
                << "overlapping spans on pid " << track.first
                << " tid " << track.second;
    }
}

TEST(PerfettoTest, PhaseSpansAreOptInAndSeparate)
{
    PerfettoTraceWriter w(2, "compress");
    ir::Program p = workloads::buildWorkload("compress",
                                             workloads::Scale::Small);
    sim::RunOptions o = baseOptions(tasksel::Strategy::BasicBlock, 2);
    o.sink = &w;
    PhaseTimes pt;
    o.phaseTimes = &pt;
    sim::runPipeline(p, o);

    EXPECT_GT(pt.total(), 0.0);
    for (double us : pt.micros)
        EXPECT_GE(us, 0.0);
    // The timing sim dominates any real run enough to register.
    EXPECT_GT(pt.micros[size_t(PipelinePhase::TimingSim)], 0.0);

    std::string without = w.str();
    w.addPhaseSpans(pt);
    std::string with = w.str();
    EXPECT_NE(without, with);

    // The wall-clock track lives in its own process, never pid 1.
    report::Json doc = report::Json::parse(with);
    const report::Json &ev = doc.get("traceEvents");
    bool saw_pipeline = false;
    for (size_t i = 0; i < ev.size(); ++i) {
        const report::Json &e = ev.at(i);
        if (e.get("pid").asInt() == PerfettoTraceWriter::PID_PIPELINE &&
            e.get("ph").asString() == "X")
            saw_pipeline = true;
    }
    EXPECT_TRUE(saw_pipeline);

    std::string table = formatPhaseTimes(pt);
    EXPECT_NE(table.find(pipelinePhaseName(PipelinePhase::TimingSim)),
              std::string::npos);
}

// ---------------------------------------------------------------------
// The killer invariant: summed span durations == SimStats, for every
// strategy on multiple workloads.

class TraceAccountingTest
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{};

TEST_P(TraceAccountingTest, SpansReproduceSimStats)
{
    auto [workload, strat] = GetParam();
    constexpr unsigned PUS = 4;

    PerfettoTraceWriter writer(PUS, workload);
    TaskProfiler prof;
    SpanAccounting xcheck(PUS);
    TeeSink tee({&writer, &prof, &xcheck});
    sim::RunResult r =
        runTraced(workload, tasksel::Strategy(strat), &tee, PUS);
    ASSERT_GT(r.stats.retiredTasks, 0u);

    // 1. The streaming cross-check: per-PU and per-phase sums match
    //    the simulator's own buckets.
    EXPECT_EQ(xcheck.verify(r.stats), "");

    // 2. The same invariant through the serialized file: re-parse the
    //    emitted JSON and sum complete-span durations per PU track.
    report::Json doc = report::Json::parse(writer.str());
    const report::Json &ev = doc.get("traceEvents");
    std::vector<uint64_t> per_pu(PUS, 0);
    for (size_t i = 0; i < ev.size(); ++i) {
        const report::Json &e = ev.at(i);
        if (e.get("ph").asString() != "X" ||
            e.get("pid").asInt() != PerfettoTraceWriter::PID_SIM)
            continue;
        int64_t tid = e.get("tid").asInt();
        ASSERT_GE(tid, 0);
        ASSERT_LT(size_t(tid), per_pu.size());
        per_pu[size_t(tid)] += e.get("dur").asUInt();
    }
    ASSERT_EQ(r.stats.puOccupiedCycles.size(), size_t(PUS));
    for (unsigned pu = 0; pu < PUS; ++pu)
        EXPECT_EQ(per_pu[pu], r.stats.puOccupiedCycles[pu])
            << "PU " << pu << " span sum != occupied cycles";
    uint64_t grand = 0;
    for (uint64_t c : per_pu)
        grand += c;
    EXPECT_EQ(grand, r.stats.buckets.total());

    // 3. The attribution profile accounts for every cycle and every
    //    retirement.
    EXPECT_EQ(prof.totalCycles(), r.stats.buckets.total());
    uint64_t commits = 0, insts = 0;
    arch::CycleBuckets merged;
    for (const StaticTaskProfile &tp : prof.profiles()) {
        commits += tp.commits;
        insts += tp.committedInsts;
        merged.merge(tp.buckets);
    }
    EXPECT_EQ(commits, r.stats.retiredTasks);
    EXPECT_EQ(insts, r.stats.retiredInsts);
    for (size_t i = 0; i < arch::NUM_CYCLE_KINDS; ++i) {
        arch::CycleKind k = arch::CycleKind(i);
        if (k == arch::CycleKind::CtrlSquash ||
            k == arch::CycleKind::MemSquash)
            continue;   // Penalties live in squashPenaltyCycles.
        EXPECT_EQ(merged.counts[i], r.stats.buckets.counts[i])
            << arch::cycleKindName(k);
    }
}

namespace {

std::string
accountingName(
    const ::testing::TestParamInfo<std::tuple<const char *, int>> &info)
{
    static const char *sn[] = {"bb", "cf", "dd"};
    return std::string(std::get<0>(info.param)) + "_" +
           sn[std::get<1>(info.param)];
}

} // anonymous namespace

INSTANTIATE_TEST_SUITE_P(
    Suite, TraceAccountingTest,
    ::testing::Combine(::testing::Values("compress", "tomcatv", "go"),
                       ::testing::Values(0, 1, 2)),
    accountingName);

// ---------------------------------------------------------------------
// msc.taskprof document.

TEST(TaskProfTest, SchemaAndRoundTrip)
{
    TaskProfiler prof;
    sim::RunResult r = runTraced("compress",
                                 tasksel::Strategy::ControlFlow, &prof);

    report::Json doc = taskProfileToJson(prof, r.partition, "compress");
    EXPECT_EQ(doc.get("schema").asString(), TASKPROF_SCHEMA_NAME);
    EXPECT_EQ(doc.get("schema_version").asInt(), TASKPROF_SCHEMA_VERSION);
    EXPECT_EQ(doc.get("workload").asString(), "compress");

    const report::Json &tasks = doc.get("tasks");
    ASSERT_GT(tasks.size(), 0u);
    uint64_t total = 0;
    int64_t prev_id = -1;
    for (size_t i = 0; i < tasks.size(); ++i) {
        const report::Json &t = tasks.at(i);
        for (const char *field :
             {"task", "func", "entry_block", "static_insts", "dispatches",
              "commits", "ctrl_squashes", "mem_squashes", "committed_insts",
              "squash_penalty_cycles", "cycle_breakdown", "total_cycles"})
            EXPECT_TRUE(t.has(field)) << field;
        // Ascending static-task order, only dispatched tasks.
        EXPECT_GT(t.get("task").asInt(), prev_id);
        prev_id = t.get("task").asInt();
        EXPECT_GT(t.get("dispatches").asUInt(), 0u);
        total += t.get("total_cycles").asUInt();
        // cycle_breakdown keys are the stable snake_case kind ids.
        const report::Json &br = t.get("cycle_breakdown");
        EXPECT_TRUE(br.has(arch::cycleKindId(arch::CycleKind::Useful)));
    }
    total += doc.get("bogus").get("squash_penalty_cycles").asUInt();
    EXPECT_EQ(total, r.stats.buckets.total());

    // Dump → parse → dump is stable.
    std::string text = doc.dump(2);
    EXPECT_EQ(report::Json::parse(text).dump(2), text);
}

TEST(TaskProfTest, HotTasksTableRanksByCycles)
{
    TaskProfiler prof;
    sim::RunResult r = runTraced("compress",
                                 tasksel::Strategy::BasicBlock, &prof);
    std::string table = formatHotTasks(prof, r.partition, 5);
    EXPECT_NE(table.find("task"), std::string::npos);
    // The hottest task's cycle count appears in the table.
    uint64_t hottest = 0;
    for (const StaticTaskProfile &tp : prof.profiles())
        hottest = std::max(hottest, tp.totalCycles());
    EXPECT_NE(table.find(std::to_string(hottest)), std::string::npos);
}
